// Heap tuning study (the shape of Fig. 14): how heap size trades GC
// frequency against per-collection cost, and how the optimized JVM shifts
// that trade-off — it reaches a given total time at a much smaller memory
// footprint than the vanilla JVM.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	tab := stats.NewTable("lusearch across heap sizes",
		"heap(MB)", "vanilla-total(ms)", "opt-total(ms)", "vanilla-gc(ms)", "opt-gc(ms)", "minor-GCs")
	type point struct {
		mb          int
		vanillaTot  float64
		optimizeTot float64
	}
	var pts []point
	for _, mb := range []int{30, 60, 90, 180, 360, 900} {
		van, opt, err := core.Compare(core.Config{
			Benchmark: "lusearch",
			Mutators:  16,
			HeapMB:    mb,
			Seed:      31,
		})
		if err != nil {
			log.Fatal(err)
		}
		tab.AddRow(mb, van.TotalTime.Millis(), opt.TotalTime.Millis(),
			van.GCTime.Millis(), opt.GCTime.Millis(), van.MinorGCs)
		pts = append(pts, point{mb, van.TotalTime.Millis(), opt.TotalTime.Millis()})
	}
	tab.Render(os.Stdout)

	// Memory-for-time: for each optimized point, find the smallest vanilla
	// heap that achieves a comparable (within 5%) total time — the paper's
	// "the vanilla JVM can achieve comparable performance with the
	// optimized JVM only with a much larger memory footprint".
	fmt.Println()
	for _, p := range pts {
		equiv := -1
		for _, v := range pts {
			if v.vanillaTot <= p.optimizeTot*1.05 {
				equiv = v.mb
				break
			}
		}
		if equiv > p.mb {
			fmt.Printf("optimized @ %3d MB (%.0f ms)  ≈  vanilla needs %d MB (%.1fx the footprint)\n",
				p.mb, p.optimizeTot, equiv, float64(equiv)/float64(p.mb))
		}
	}
}
