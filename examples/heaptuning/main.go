// Heap tuning study (the shape of Fig. 14): how heap size trades GC
// frequency against per-collection cost, and how the optimized JVM shifts
// that trade-off — it reaches a given total time at a much smaller memory
// footprint than the vanilla JVM.
//
// By default the study simulates in-process. With -server it becomes a
// gcsimd client instead, POSTing the whole grid to the daemon's /sweep
// endpoint — the second run of the study is answered entirely from the
// response cache:
//
//	go run ./cmd/gcsimd &
//	go run ./examples/heaptuning -server http://127.0.0.1:8379
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/stats"
)

var heapsMB = []int{30, 60, 90, 180, 360, 900}

// point is one table row: vanilla and optimized predictions at one heap.
type point struct {
	mb                 int
	vanillaTot, optTot float64
	vanillaGC, optGC   float64
	minorGCs           int
}

func main() {
	server := flag.String("server", "", "gcsimd base URL; empty simulates in-process")
	flag.Parse()

	var (
		pts []point
		err error
	)
	if *server != "" {
		pts, err = sweepViaServer(*server)
	} else {
		pts, err = sweepInProcess()
	}
	if err != nil {
		log.Fatal(err)
	}

	tab := stats.NewTable("lusearch across heap sizes",
		"heap(MB)", "vanilla-total(ms)", "opt-total(ms)", "vanilla-gc(ms)", "opt-gc(ms)", "minor-GCs")
	for _, p := range pts {
		tab.AddRow(p.mb, p.vanillaTot, p.optTot, p.vanillaGC, p.optGC, p.minorGCs)
	}
	tab.Render(os.Stdout)

	// Memory-for-time: for each optimized point, find the smallest vanilla
	// heap that achieves a comparable (within 5%) total time — the paper's
	// "the vanilla JVM can achieve comparable performance with the
	// optimized JVM only with a much larger memory footprint".
	fmt.Println()
	for _, p := range pts {
		equiv := -1
		for _, v := range pts {
			if v.vanillaTot <= p.optTot*1.05 {
				equiv = v.mb
				break
			}
		}
		if equiv > p.mb {
			fmt.Printf("optimized @ %3d MB (%.0f ms)  ≈  vanilla needs %d MB (%.1fx the footprint)\n",
				p.mb, p.optTot, equiv, float64(equiv)/float64(p.mb))
		}
	}
}

func sweepInProcess() ([]point, error) {
	var pts []point
	for _, mb := range heapsMB {
		van, opt, err := core.Compare(core.Config{
			Benchmark: "lusearch",
			Mutators:  16,
			HeapMB:    mb,
			Seed:      31,
		})
		if err != nil {
			return nil, err
		}
		pts = append(pts, point{
			mb:         mb,
			vanillaTot: van.TotalTime.Millis(), optTot: opt.TotalTime.Millis(),
			vanillaGC: van.GCTime.Millis(), optGC: opt.GCTime.Millis(),
			minorGCs: van.MinorGCs,
		})
	}
	return pts, nil
}

// sweepViaServer asks a running gcsimd for the same grid: heap axis ×
// {vanilla, optimized}. Cells come back in row-major order (optimizations
// axis fastest), so cell index = heapIdx*2 + optIdx.
func sweepViaServer(base string) ([]point, error) {
	req := service.SweepRequest{
		Base:          service.Scenario{Benchmark: "lusearch", Mutators: 16, Seed: 31},
		HeapMB:        heapsMB,
		Optimizations: []string{"none", "all"},
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("is gcsimd running? %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("sweep: HTTP %d", resp.StatusCode)
	}

	preds := make([]service.Prediction, 2*len(heapsMB))
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	seen := 0
	for sc.Scan() {
		var cell service.SweepCell
		if err := json.Unmarshal(sc.Bytes(), &cell); err != nil {
			return nil, fmt.Errorf("bad sweep line: %w", err)
		}
		if cell.Error != "" {
			return nil, fmt.Errorf("cell %d: %s", cell.Index, cell.Error)
		}
		if err := json.Unmarshal(cell.Prediction, &preds[cell.Index]); err != nil {
			return nil, err
		}
		seen++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if seen != len(preds) {
		return nil, fmt.Errorf("sweep returned %d of %d cells", seen, len(preds))
	}

	pts := make([]point, len(heapsMB))
	for i, mb := range heapsMB {
		van, opt := preds[i*2], preds[i*2+1]
		pts[i] = point{
			mb:         mb,
			vanillaTot: van.TotalMs, optTot: opt.TotalMs,
			vanillaGC: van.GCMs, optGC: opt.GCMs,
			minorGCs: van.MinorGCs,
		}
	}
	return pts, nil
}
