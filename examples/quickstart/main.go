// Quickstart: run one benchmark on the simulated 20-core testbed, vanilla
// vs optimized, and print the headline numbers — the smallest useful
// program against the library's public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// The vanilla HotSpot configuration: Parallel Scavenge with the unfair
	// task-manager monitor, unbound GC threads, best-of-2 stealing.
	vanilla, optimized, err := core.Compare(core.Config{
		Benchmark: "lusearch",
		Mutators:  16,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("lusearch on the simulated dual-socket 20-core testbed")
	fmt.Printf("%-12s total=%-10v gc=%-10v gc-ratio=%4.1f%%  gc-cores(avg)=%.1f\n",
		"vanilla", vanilla.TotalTime, vanilla.GCTime, 100*vanilla.GCRatio(), avgCores(vanilla))
	fmt.Printf("%-12s total=%-10v gc=%-10v gc-ratio=%4.1f%%  gc-cores(avg)=%.1f\n",
		"optimized", optimized.TotalTime, optimized.GCTime, 100*optimized.GCRatio(), avgCores(optimized))

	fmt.Printf("\nGC time reduced %.1f%%, total time %.1f%%\n",
		100*(1-float64(optimized.GCTime)/float64(vanilla.GCTime)),
		100*(1-float64(optimized.TotalTime)/float64(vanilla.TotalTime)))

	// The mechanism, visible in the lock statistics: the vanilla monitor's
	// fast path lets the previous owner re-acquire the GCTaskQueue lock
	// over and over while the OnDeck thread starves (§3.2 of the paper).
	fmt.Printf("\nGCTaskManager monitor: owner re-acquisitions %d (vanilla) vs %d (optimized)\n",
		vanilla.Monitor.OwnerReacquires, optimized.Monitor.OwnerReacquires)
	fmt.Printf("steal failure rate: %.0f%% (vanilla) vs %.0f%% (optimized)\n",
		100*vanilla.Steal.FailureRate(), 100*optimized.Steal.FailureRate())
}

func avgCores(r *core.Result) float64 {
	if len(r.Reports) == 0 {
		return 0
	}
	s := 0
	for _, rep := range r.Reports {
		s += rep.CoresUsed()
	}
	return float64(s) / float64(len(r.Reports))
}
