// Futex-wake study (§5.8 "Beyond garbage collection"): the paper observed
// the same thread-stacking serialization in the futex-wake perf benchmark —
// any program with fine-grained blocking synchronization suffers when the
// OS balancer cannot see its blocked threads.
//
// This example reproduces that observation without any GC: worker threads
// contend a HotSpot-style monitor on the simulated kernel. Stacked on one
// core (as blocked threads end up), they serialize; spread one per core,
// the same program speeds up — the wake chain is the whole difference.
package main

import (
	"fmt"
	"os"

	"repro/internal/cfs"
	"repro/internal/jmutex"
	"repro/internal/ostopo"
	"repro/internal/simkit"
	"repro/internal/stats"
)

const (
	workers  = 12
	sections = 200                      // critical sections per worker
	hold     = 20 * simkit.Microsecond  // lock hold time
	outside  = 120 * simkit.Microsecond // work outside the lock
)

// run executes the contention benchmark with the given thread placement
// and monitor policy, returning the makespan.
func run(spread bool, policy jmutex.Policy) simkit.Time {
	sim := simkit.New(7)
	defer sim.Close()
	k := cfs.NewKernel(sim, ostopo.PaperTestbed(), cfs.DefaultParams())
	mon := jmutex.New(k, "futex", policy)
	var ths []*cfs.Thread
	for i := 0; i < workers; i++ {
		core := ostopo.CoreID(0)
		if spread {
			core = ostopo.CoreID(i % k.NumCPUs())
		}
		bind := core
		ths = append(ths, k.Spawn(fmt.Sprintf("worker#%d", i), core, func(e *cfs.Env) {
			if spread {
				e.SetAffinity(bind)
			}
			for n := 0; n < sections; n++ {
				mon.Lock(e)
				e.Compute(hold)
				mon.Unlock(e)
				e.Compute(outside)
			}
		}))
	}
	for {
		done := true
		for _, th := range ths {
			if th.State() != cfs.StateDone {
				done = false
				break
			}
		}
		if done || !sim.Step() {
			break
		}
	}
	return sim.Now()
}

func main() {
	fmt.Println("§5.8: fine-grained blocking synchronization without any GC")
	fmt.Printf("%d workers, %d critical sections each, %v held / %v outside\n\n",
		workers, sections, hold, outside)

	tab := stats.NewTable("makespan by placement and monitor policy",
		"placement", "policy", "makespan(ms)", "vs ideal")
	// The lock-free ideal: every worker on its own core, no contention.
	ideal := float64(sections) * (hold + outside).Millis()
	for _, pol := range []jmutex.Policy{jmutex.PolicyHotSpot, jmutex.PolicyFairFIFO} {
		for _, spread := range []bool{false, true} {
			place := "stacked (1 core)"
			if spread {
				place = "spread (1/core)"
			}
			total := run(spread, pol)
			tab.AddRow(place, pol.String(), total.Millis(), stats.Ratio(total.Millis(), ideal))
		}
	}
	tab.Render(os.Stdout)
	fmt.Println("\nStacked threads serialize behind the wake chain regardless of the")
	fmt.Println("monitor's fairness policy; placement — not locking — is the fix,")
	fmt.Println("which is the paper's closing argument: the OS should balance blocked")
	fmt.Println("threads, or let applications hint their placement.")
}
