// Cassandra tail-latency study: a request-serving JVM behind closed-loop
// clients (the shape of Figs. 3d and 13b/c). Stop-the-world pauses stall
// every in-flight request, so GC behaviour shows up almost entirely in the
// tail percentiles — and the paper's optimizations mostly buy back p99.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	// Part 1 (Fig. 3d): latency vs client concurrency on the vanilla JVM.
	sweep := stats.NewTable("vanilla read latency vs clients (ms)",
		"clients", "median", "mean", "p95", "p99", "p99.9", "gc-ratio")
	for _, clients := range []int{1, 4, 16, 64, 256} {
		r, err := core.Run(core.Config{
			Benchmark: "cassandra",
			Mutators:  16,
			Clients:   clients,
			Requests:  8000,
			Seed:      11,
		})
		if err != nil {
			log.Fatal(err)
		}
		sweep.AddRow(clients, r.Latency.Median(), r.Latency.Mean(),
			r.Latency.Percentile(95), r.Latency.Percentile(99),
			r.Latency.Percentile(99.9), r.GCRatio())
	}
	sweep.Render(os.Stdout)
	fmt.Println()

	// Part 2 (Fig. 13c): vanilla vs optimized at saturating concurrency.
	cmp := stats.NewTable("read latency at 256 clients (ms)",
		"config", "median", "mean", "p95", "p99", "throughput(ops/s)")
	van, opt, err := core.Compare(core.Config{
		Benchmark: "cassandra",
		Mutators:  16,
		Clients:   256,
		Requests:  12000,
		Seed:      12,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range []struct {
		name string
		r    *core.Result
	}{{"vanilla", van}, {"optimized", opt}} {
		cmp.AddRow(row.name, row.r.Latency.Median(), row.r.Latency.Mean(),
			row.r.Latency.Percentile(95), row.r.Latency.Percentile(99),
			row.r.ThroughputOPS)
	}
	cmp.Render(os.Stdout)

	fmt.Printf("\np99 improvement: %.1f%% (the paper reports up to 43%% on reads)\n",
		100*(1-opt.Latency.Percentile(99)/van.Latency.Percentile(99)))
}
