// Multi-tenant study (the shape of Fig. 15): how the GC optimizations hold
// up when the machine is shared — a JVM alongside pinned busy loops, and
// two JVMs co-running. Static core binding collides with the interference;
// the dynamic, load-aware binding of Algorithm 1 steers around it.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/affinity"
	"repro/internal/jvm"
	"repro/internal/stats"
	"repro/internal/taskq"
	"repro/internal/workload"
)

func main() {
	lus := workload.Lusearch()
	lus.TotalItems /= 2 // keep the example snappy

	// Scenario 1: lusearch sharing the machine with ten pinned busy loops.
	tab := stats.NewTable("lusearch + 10 busy loops", "gc-binding", "total(ms)", "gc(ms)", "rebinds")
	for _, mode := range []affinity.Mode{affinity.ModeNone, affinity.ModeStatic, affinity.ModeDynamic} {
		cfg := jvm.Config{
			Profile: lus, Mutators: 16, Seed: 21,
			Affinity: mode, TaskAffinity: mode != affinity.ModeNone,
			Steal: taskq.KindSemiRandom, FastTerminator: true,
		}
		r, err := jvm.Run(jvm.RunSpec{Config: cfg, Seed: 21, BusyLoops: 10})
		if err != nil {
			log.Fatal(err)
		}
		tab.AddRow(mode.String(), r.TotalTime.Millis(), r.GCTime.Millis(), r.Rebinds)
	}
	tab.Render(os.Stdout)
	fmt.Println()

	// Scenario 2: two lusearch JVMs co-running on one machine.
	co := stats.NewTable("2 x lusearch co-running", "config", "jvm0-total(ms)", "jvm1-total(ms)", "mean-gc(ms)")
	for _, optimized := range []bool{false, true} {
		cfgA := jvm.Config{Profile: lus, Mutators: 16, Seed: 22}
		cfgB := jvm.Config{Profile: lus, Mutators: 16, Seed: 23, SpawnCore: 10}
		name := "vanilla"
		if optimized {
			cfgA = cfgA.WithOptimizations()
			cfgB = cfgB.WithOptimizations()
			name = "optimized"
		}
		rs, err := jvm.RunMulti(22, nil, nil, 0, 0, cfgA, cfgB)
		if err != nil {
			log.Fatal(err)
		}
		meanGC := (rs[0].GCTime + rs[1].GCTime) / 2
		co.AddRow(name, rs[0].TotalTime.Millis(), rs[1].TotalTime.Millis(), meanGC.Millis())
	}
	co.Render(os.Stdout)
	fmt.Println("\nDynamic binding reads per-core load (including sleeping threads, the")
	fmt.Println("paper's kernel fix) at each GC start and rebinds contended GC threads")
	fmt.Println("to lightly loaded cores, so co-tenants and background work are avoided.")
}
