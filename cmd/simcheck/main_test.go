package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCleanSweepExitsZero runs a tiny clean sweep through realMain.
func TestCleanSweepExitsZero(t *testing.T) {
	var buf bytes.Buffer
	if code := realMain([]string{"-cells", "2", "-jobs", "1"}, &buf); code != 0 {
		t.Fatalf("clean sweep exit code = %d, want 0\noutput:\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "all invariants hold") {
		t.Fatalf("missing success line in output:\n%s", buf.String())
	}
}

// TestFailureExitFlushesViolationWindow is the regression test for the
// exit-path bug: a failing sweep with -out used to reach os.Exit with the
// window file's buffers unflushed. The injected failure forces the failure
// path; the written window must be complete, parseable Perfetto JSON.
func TestFailureExitFlushesViolationWindow(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	code := realMain([]string{"-cells", "2", "-jobs", "1", "-inject-fail", "-out", dir}, &buf)
	if code != 1 {
		t.Fatalf("failing sweep exit code = %d, want 1\noutput:\n%s", code, buf.String())
	}
	path := filepath.Join(dir, "violation-cell-000.json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("violation window not written: %v", err)
	}
	var win struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &win); err != nil {
		t.Fatalf("violation window is not complete JSON (unflushed exit?): %v\n%d bytes: %.200s",
			err, len(b), b)
	}
	if !strings.Contains(buf.String(), "injected failure") {
		t.Fatalf("failure summary missing injected violation:\n%s", buf.String())
	}
}
