// Command simcheck is the seed-sweep property harness: it runs randomized
// simulation configurations (topology × thread counts × mutex policy ×
// steal policy × affinity × terminator options) with the cross-layer
// invariant checker attached, and replays each cell uninstrumented to
// verify byte-identical output (same-seed determinism, and proof that the
// checker never perturbs a run).
//
// On failure it reports the minimal failing cell — the lowest-index one,
// which reproduces from the base seed alone — and, when -out is given,
// writes the pre-violation window of that cell's event bus as Perfetto
// trace-event JSON for triage in ui.perfetto.dev. All exits route through
// cmdutil.Exit so that file is flushed and closed even on the failure
// path.
//
// Exit status: 0 when every cell is clean, 1 otherwise.
//
// Usage:
//
//	simcheck [-cells 256] [-seed 42] [-jobs N] [-out DIR] [-v]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/check"
	"repro/internal/cmdutil"
	"repro/internal/evtrace"
	"repro/internal/runner"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout))
}

func realMain(argv []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("simcheck", flag.ContinueOnError)
	var (
		cells      = fs.Int("cells", 256, "number of sweep cells to run")
		seed       = fs.Int64("seed", 42, "base seed of the sweep (cell i uses seed+i)")
		jobs       = fs.Int("jobs", 0, "concurrent cells (0 = GOMAXPROCS)")
		out        = fs.String("out", "", "directory for violation-window Perfetto traces (must exist)")
		window     = fs.Uint64("window", 400, "pre-violation context, in bus sequence numbers")
		verbose    = fs.Bool("v", false, "print every cell, not just failures")
		injectFail = fs.Bool("inject-fail", false, "testing: force cell 0 to fail, exercising the failure exit path")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	matrix := check.Cells(*seed, *cells)
	pool := runner.New(*jobs)
	start := time.Now()
	results := runner.Map(pool, len(matrix), func(i int) *check.CellResult {
		return check.RunCell(matrix[i])
	})
	if *injectFail && len(results) > 0 {
		results[0].BlameViolations = append(results[0].BlameViolations,
			"injected failure (-inject-fail)")
		if results[0].Tracer == nil {
			results[0].Tracer = evtrace.New(0)
		}
	}

	var failed []*check.CellResult
	var events, drops uint64
	for _, r := range results {
		events += r.Events
		drops += r.Drops
		if r.Failed() {
			failed = append(failed, r)
		} else if *verbose {
			fmt.Fprintln(stdout, r.Summary())
		}
	}
	fmt.Fprintf(stdout, "simcheck: %d cells, %d bus events validated, %d dropped in %v (%d workers)\n",
		len(results), events, drops, time.Since(start).Round(time.Millisecond), pool.Workers())
	if len(failed) == 0 {
		fmt.Fprintln(stdout, "simcheck: all invariants hold; all replays byte-identical")
		return 0
	}

	// The minimal failing cell: lowest index, hence smallest seed offset.
	sort.Slice(failed, func(i, j int) bool { return failed[i].Cell.Index < failed[j].Cell.Index })
	fmt.Fprintf(stdout, "simcheck: %d of %d cells FAILED\n", len(failed), len(results))
	for _, r := range failed {
		fmt.Fprintln(stdout, r.Summary())
	}
	min := failed[0]
	fmt.Fprintf(stdout, "minimal failing cell: %s\n", min.Cell)
	fmt.Fprintf(stdout, "reproduce: simcheck -seed %d -cells %d\n", *seed, min.Cell.Index+1)

	if *out == "" || min.Tracer == nil {
		return 1
	}
	v := check.Violation{} // determinism-only failures export the full tail
	if len(min.Violations) > 0 {
		v = min.Violations[0]
	}
	path := filepath.Join(*out, fmt.Sprintf("violation-cell-%03d.json", min.Cell.Index))
	win, err := cmdutil.NewOutput(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simcheck: %v\n", err)
		return 1
	}
	if err := check.WriteViolationWindow(win, min.Tracer, v, *window); err != nil {
		fmt.Fprintf(os.Stderr, "simcheck: %v\n", err)
		return cmdutil.Exit(1, win)
	}
	fmt.Fprintf(stdout, "pre-violation window written to %s (load in ui.perfetto.dev)\n", path)
	return cmdutil.Exit(1, win)
}
