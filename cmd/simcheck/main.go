// Command simcheck is the seed-sweep property harness: it runs randomized
// simulation configurations (topology × thread counts × mutex policy ×
// steal policy × affinity × terminator options) with the cross-layer
// invariant checker attached, and replays each cell uninstrumented to
// verify byte-identical output (same-seed determinism, and proof that the
// checker never perturbs a run).
//
// On failure it reports the minimal failing cell — the lowest-index one,
// which reproduces from the base seed alone — and, when -out is given,
// writes the pre-violation window of that cell's event bus as Perfetto
// trace-event JSON for triage in ui.perfetto.dev.
//
// Exit status: 0 when every cell is clean, 1 otherwise.
//
// Usage:
//
//	simcheck [-cells 256] [-seed 42] [-jobs N] [-out DIR] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/check"
	"repro/internal/runner"
)

func main() {
	var (
		cells   = flag.Int("cells", 256, "number of sweep cells to run")
		seed    = flag.Int64("seed", 42, "base seed of the sweep (cell i uses seed+i)")
		jobs    = flag.Int("jobs", 0, "concurrent cells (0 = GOMAXPROCS)")
		out     = flag.String("out", "", "directory for violation-window Perfetto traces (must exist)")
		window  = flag.Uint64("window", 400, "pre-violation context, in bus sequence numbers")
		verbose = flag.Bool("v", false, "print every cell, not just failures")
	)
	flag.Parse()

	matrix := check.Cells(*seed, *cells)
	pool := runner.New(*jobs)
	start := time.Now()
	results := runner.Map(pool, len(matrix), func(i int) *check.CellResult {
		return check.RunCell(matrix[i])
	})

	var failed []*check.CellResult
	var events, drops uint64
	for _, r := range results {
		events += r.Events
		drops += r.Drops
		if r.Failed() {
			failed = append(failed, r)
		} else if *verbose {
			fmt.Println(r.Summary())
		}
	}
	fmt.Printf("simcheck: %d cells, %d bus events validated, %d dropped in %v (%d workers)\n",
		len(results), events, drops, time.Since(start).Round(time.Millisecond), pool.Workers())
	if len(failed) == 0 {
		fmt.Println("simcheck: all invariants hold; all replays byte-identical")
		return
	}

	// The minimal failing cell: lowest index, hence smallest seed offset.
	sort.Slice(failed, func(i, j int) bool { return failed[i].Cell.Index < failed[j].Cell.Index })
	fmt.Printf("simcheck: %d of %d cells FAILED\n", len(failed), len(results))
	for _, r := range failed {
		fmt.Println(r.Summary())
	}
	min := failed[0]
	fmt.Printf("minimal failing cell: %s\n", min.Cell)
	fmt.Printf("reproduce: simcheck -seed %d -cells %d\n", *seed, min.Cell.Index+1)

	if *out != "" && min.Tracer != nil {
		v := check.Violation{} // determinism-only failures export the full tail
		if len(min.Violations) > 0 {
			v = min.Violations[0]
		}
		path := filepath.Join(*out, fmt.Sprintf("violation-cell-%03d.json", min.Cell.Index))
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simcheck: %v\n", err)
		} else {
			if err := check.WriteViolationWindow(f, min.Tracer, v, *window); err != nil {
				fmt.Fprintf(os.Stderr, "simcheck: %v\n", err)
			}
			f.Close()
			fmt.Printf("pre-violation window written to %s (load in ui.perfetto.dev)\n", path)
		}
	}
	os.Exit(1)
}
