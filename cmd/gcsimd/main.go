// Command gcsimd serves cached what-if GC tuning queries over HTTP.
//
// Serve mode (the default) answers POST /run and POST /sweep with
// GC/pause/throughput predictions, caching responses by canonical config
// digest so repeated and concurrent identical scenarios cost one
// simulation:
//
//	gcsimd -addr 127.0.0.1:8379
//	curl -s localhost:8379/run -d '{"benchmark":"lusearch","mutators":8,"seed":1}'
//
// Load-generator mode drives an already running server through a cold
// phase (distinct scenarios, every one a simulation) and a cached phase
// (the same scenarios again) and reports the RPS of each:
//
//	gcsimd -loadgen http://127.0.0.1:8379 -n 200 -c 8
//
// Self-test mode starts an in-process server on an ephemeral port and
// runs the smoke contract against it: second identical POST is a cache
// hit with a byte-identical body, sweeps stream every cell, and the
// cached loadgen path is at least 10x faster than the cold path. It
// exits nonzero on any violation (wired into `make serve-smoke`).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync"
	"time"

	fleetpkg "repro/internal/fleet"
	"repro/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8379", "listen address for serve mode")
		workers   = flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
		cacheSize = flag.Int("cache", 1024, "response cache capacity (entries)")
		queueCap  = flag.Int("queue", 64, "admission bound on in-flight scenarios (429 beyond)")
		timeout   = flag.Duration("timeout", 60*time.Second, "per-request simulation timeout")

		loadgen = flag.String("loadgen", "", "base URL: run as a load generator instead of serving")
		n       = flag.Int("n", 200, "loadgen/selftest: scenarios per phase")
		c       = flag.Int("c", 8, "loadgen/selftest: concurrent clients")
		items   = flag.Int("items", 1500, "loadgen/selftest: work items per scenario")

		selftest = flag.Bool("selftest", false, "start an in-process server and verify the cache contract")

		fleet       = flag.Int("fleet", 0, "serve mode: dispatch uncached /sweep cells to this many worker processes (0 = in-process pool)")
		fleetWorker = flag.Bool("fleet-worker", false, "run as a fleet sweep worker (internal; speaks the fleet protocol on stdin/stdout)")
	)
	flag.Parse()

	opts := service.Options{
		Workers:   *workers,
		CacheSize: *cacheSize,
		QueueCap:  *queueCap,
		Timeout:   *timeout,
	}
	switch {
	case *fleetWorker:
		if err := service.ServeFleetWorker(os.Stdin, os.Stdout, fleetpkg.WorkerOptions{}); err != nil {
			fmt.Fprintln(os.Stderr, "gcsimd fleet worker:", err)
			os.Exit(1)
		}
	case *selftest:
		if err := runSelftest(opts, *n, *c, *items); err != nil {
			fmt.Fprintln(os.Stderr, "selftest FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("selftest PASS")
	case *loadgen != "":
		cold, warm, err := runLoadgen(*loadgen, *n, *c, *items)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		fmt.Printf("cold  %8.1f req/s\ncached %7.1f req/s (%.1fx)\n", cold, warm, warm/cold)
	default:
		if err := serve(*addr, opts, *fleet); err != nil {
			log.Fatal(err)
		}
	}
}

func serve(addr string, opts service.Options, fleetWorkers int) error {
	s := service.New(opts)
	defer s.Close()
	if fleetWorkers > 0 {
		exe, err := os.Executable()
		if err != nil {
			return err
		}
		s.SetFleetBackend(fleetWorkers, func(int) (*exec.Cmd, error) {
			cmd := exec.Command(exe, "-fleet-worker")
			cmd.Stderr = os.Stderr
			return cmd, nil
		})
		log.Printf("gcsimd: /sweep fleet backend enabled (%d worker processes)", fleetWorkers)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shctx)
	}()
	log.Printf("gcsimd listening on http://%s (workers=%d cache=%d queue=%d)",
		ln.Addr(), opts.Workers, opts.CacheSize, opts.QueueCap)
	if err := srv.Serve(ln); err != http.ErrServerClosed {
		return err
	}
	return nil
}

// scenarioBody builds the i-th loadgen scenario: same shape, distinct
// seed, so every cold-phase request is a distinct simulation while the
// cached phase replays the identical set.
func scenarioBody(i, items int) []byte {
	b, _ := json.Marshal(service.Scenario{
		Benchmark: "lusearch", Items: items, Mutators: 4, GCThreads: 4, Seed: int64(i + 1),
	})
	return b
}

// firePhase POSTs every body with conc concurrent clients and returns the
// wall time plus a tally of X-Gcsimd-Cache outcomes.
func firePhase(base string, bodies [][]byte, conc int) (time.Duration, map[string]int, error) {
	if conc < 1 {
		conc = 1
	}
	client := &http.Client{Timeout: 2 * time.Minute}
	var (
		mu       sync.Mutex
		outcomes = map[string]int{}
		firstErr error
	)
	idx := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				resp, err := client.Post(base+"/run", "application/json", bytes.NewReader(bodies[i]))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						err = fmt.Errorf("scenario %d: HTTP %d", i, resp.StatusCode)
					}
				}
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
				} else {
					outcomes[resp.Header.Get(service.HeaderCache)]++
				}
				mu.Unlock()
			}
		}()
	}
	for i := range bodies {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return time.Since(start), outcomes, firstErr
}

// runLoadgen drives base through a cold phase (distinct scenarios) and a
// cached phase (the same scenarios again), returning the RPS of each.
func runLoadgen(base string, n, conc, items int) (cold, warm float64, err error) {
	bodies := make([][]byte, n)
	for i := range bodies {
		bodies[i] = scenarioBody(i, items)
	}
	coldDur, coldOut, err := firePhase(base, bodies, conc)
	if err != nil {
		return 0, 0, fmt.Errorf("cold phase: %w", err)
	}
	warmDur, warmOut, err := firePhase(base, bodies, conc)
	if err != nil {
		return 0, 0, fmt.Errorf("cached phase: %w", err)
	}
	log.Printf("loadgen: cold outcomes %v in %v, cached outcomes %v in %v",
		coldOut, coldDur.Round(time.Millisecond), warmOut, warmDur.Round(time.Microsecond))
	return float64(n) / coldDur.Seconds(), float64(n) / warmDur.Seconds(), nil
}

// runSelftest boots an in-process server and checks the smoke contract.
func runSelftest(opts service.Options, n, conc, items int) error {
	s := service.New(opts)
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	log.Printf("selftest server on %s", base)

	// 1. Liveness.
	if err := expectOK(base + "/healthz"); err != nil {
		return err
	}

	// 2. Second identical POST is a cache hit with a byte-identical body.
	scn := scenarioBody(0, items)
	st1, hdr1, body1, err := post(base+"/run", scn)
	if err != nil {
		return err
	}
	st2, hdr2, body2, err := post(base+"/run", scn)
	if err != nil {
		return err
	}
	if st1 != 200 || st2 != 200 {
		return fmt.Errorf("run statuses %d/%d", st1, st2)
	}
	if o := hdr1.Get(service.HeaderCache); o != string(service.OutcomeMiss) {
		return fmt.Errorf("first POST outcome %q, want miss", o)
	}
	if o := hdr2.Get(service.HeaderCache); o != string(service.OutcomeHit) {
		return fmt.Errorf("second POST outcome %q, want hit", o)
	}
	if !bytes.Equal(body1, body2) {
		return fmt.Errorf("cache hit body differs from cold body:\n%s\nvs\n%s", body2, body1)
	}
	if hdr1.Get(service.HeaderDigest) == "" {
		return fmt.Errorf("missing %s header", service.HeaderDigest)
	}

	// ... and both bodies carry the pause-postmortem blame summary (the
	// byte-identity check above already proved miss and hit agree on it).
	var pred struct {
		Blame *service.BlameSummary `json:"blame"`
	}
	if err := json.Unmarshal(body1, &pred); err != nil {
		return fmt.Errorf("run body not JSON: %w", err)
	}
	if pred.Blame == nil {
		return fmt.Errorf("run response carries no blame summary: %s", body1)
	}
	if pred.Blame.Pathology == "" || len(pred.Blame.Buckets) == 0 {
		return fmt.Errorf("blame summary incomplete: %+v", pred.Blame)
	}

	// ... and the counters agree: one simulation ran, one hit served.
	var metrics []struct {
		Name  string  `json:"name"`
		Value float64 `json:"value"`
	}
	st, _, mbody, err := get(base + "/metrics")
	if err != nil || st != 200 {
		return fmt.Errorf("metrics: status %d err %v", st, err)
	}
	if err := json.Unmarshal(mbody, &metrics); err != nil {
		return fmt.Errorf("metrics not JSON: %w", err)
	}
	counters := map[string]float64{}
	for _, m := range metrics {
		counters[m.Name] = m.Value
	}
	if counters["service.runs"] != 1 || counters["service.cache_hits"] != 1 {
		return fmt.Errorf("after miss+hit: runs=%v cache_hits=%v, want 1/1",
			counters["service.runs"], counters["service.cache_hits"])
	}
	for _, q := range []string{".p50", ".p95", ".p99"} {
		if _, ok := counters["service.latency_cold_ms"+q]; !ok {
			return fmt.Errorf("metrics missing service.latency_cold_ms%s (have %d entries)", q, len(metrics))
		}
		if _, ok := counters["service.latency_hit_ms"+q]; !ok {
			return fmt.Errorf("metrics missing service.latency_hit_ms%s", q)
		}
	}

	// ... and the same snapshot is available as Prometheus text with
	// latency summary quantiles when the client asks for text/plain.
	st, ctype, pbody, err := getText(base + "/metrics")
	if err != nil || st != 200 {
		return fmt.Errorf("prometheus metrics: status %d err %v", st, err)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		return fmt.Errorf("prometheus metrics content-type %q, want text/plain", ctype)
	}
	for _, want := range []string{
		"# TYPE service_runs counter",
		`service_latency_cold_ms{quantile="0.99"}`,
		"service_latency_cold_ms_count",
	} {
		if !bytes.Contains(pbody, []byte(want)) {
			return fmt.Errorf("prometheus exposition missing %q:\n%s", want, pbody)
		}
	}

	// 3. A sweep streams one line per cell and replays entirely from cache.
	sweep, _ := json.Marshal(service.SweepRequest{
		Base:     service.Scenario{Benchmark: "lusearch", Items: items, Seed: 1},
		Mutators: []int{2, 4}, GCThreads: []int{2, 4},
	})
	passes := []struct {
		pass    string
		wantHit bool
	}{{"cold", false}, {"replay", true}}
	for _, p := range passes {
		pass, wantHit := p.pass, p.wantHit
		st, _, body, err := post(base+"/sweep", sweep)
		if err != nil {
			return fmt.Errorf("sweep %s: %w", pass, err)
		}
		if st != 200 {
			return fmt.Errorf("sweep %s: HTTP %d", pass, st)
		}
		lines := bytes.Count(bytes.TrimSpace(body), []byte("\n")) + 1
		if lines != 4 {
			return fmt.Errorf("sweep %s: %d NDJSON lines, want 4", pass, lines)
		}
		if wantHit && bytes.Count(body, []byte(`"cache":"hit"`)) != 4 {
			return fmt.Errorf("sweep replay not fully cached: %s", body)
		}
		if got := bytes.Count(body, []byte(`"blame"`)); got != 4 {
			return fmt.Errorf("sweep %s: %d of 4 cells carry a blame summary", pass, got)
		}
	}

	// 4. Cached loadgen path must be at least 10x faster than cold.
	cold, warm, err := runLoadgen(base, n, conc, items)
	if err != nil {
		return err
	}
	ratio := warm / cold
	log.Printf("selftest loadgen: cold %.1f req/s, cached %.1f req/s (%.1fx)", cold, warm, ratio)
	if ratio < 10 {
		return fmt.Errorf("cached path only %.1fx cold RPS, want >= 10x", ratio)
	}
	return nil
}

func post(url string, body []byte) (int, http.Header, []byte, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, b, err
}

func get(url string) (int, http.Header, []byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, b, err
}

// getText GETs url asking for text/plain (the Prometheus scrape shape)
// and returns the status, Content-Type, and body.
func getText(url string) (int, string, []byte, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return 0, "", nil, err
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get("Content-Type"), b, err
}

func expectOK(url string) error {
	st, _, _, err := get(url)
	if err != nil {
		return err
	}
	if st != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, st)
	}
	return nil
}
