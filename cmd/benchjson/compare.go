package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"
)

// agg is one benchmark's aggregated (mean over repeated -count runs)
// columns from a snapshot.
type agg struct {
	ns     float64
	bytes  *float64
	allocs *float64
}

// compareMain implements `benchjson compare OLD.json NEW.json`. It returns
// the process exit code: 2 on usage or read errors, 1 when a benchmark's
// ns/op regressed past the -regress threshold, 0 otherwise.
func compareMain(args []string, w io.Writer) int {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	regress := fs.Float64("regress", 10, "fail when any benchmark's ns/op regresses by more than this percent")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson compare [-regress PCT] OLD.json NEW.json")
		return 2
	}
	oldArt, err := readArtifact(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	newArt, err := readArtifact(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	oldAgg, newAgg := aggregate(oldArt), aggregate(newArt)

	names := make([]string, 0, len(newAgg))
	for name := range newAgg {
		names = append(names, name)
	}
	sort.Strings(names)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "benchmark\tns/op old\tns/op new\tΔ%%\tB/op old\tB/op new\tΔ%%\tallocs/op old\tallocs/op new\tΔ%%\n")
	failed := []string{}
	for _, name := range names {
		n := newAgg[name]
		o, both := oldAgg[name]
		if !both {
			fmt.Fprintf(tw, "%s\t-\t%.0f\t(new)\t-\t%s\t\t-\t%s\t\n",
				name, n.ns, fmtPtr(n.bytes), fmtPtr(n.allocs))
			continue
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			name, o.ns, n.ns, fmtDelta(o.ns, n.ns),
			fmtPtr(o.bytes), fmtPtr(n.bytes), fmtPtrDelta(o.bytes, n.bytes),
			fmtPtr(o.allocs), fmtPtr(n.allocs), fmtPtrDelta(o.allocs, n.allocs))
		if o.ns > 0 && (n.ns-o.ns)/o.ns*100 > *regress {
			failed = append(failed, name)
		}
	}
	for name := range oldAgg {
		if _, ok := newAgg[name]; !ok {
			fmt.Fprintf(tw, "%s\t%.0f\t-\t(gone)\t\t\t\t\t\t\n", name, oldAgg[name].ns)
		}
	}
	tw.Flush()
	if len(failed) > 0 {
		sort.Strings(failed)
		fmt.Fprintf(os.Stderr, "benchjson: ns/op regression over %.0f%%: %v\n", *regress, failed)
		return 1
	}
	return 0
}

func readArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(art.Bench) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return &art, nil
}

// aggregate means repeated -count runs of the same benchmark. Pkg is
// folded into the key only when two packages share a benchmark name.
func aggregate(art *Artifact) map[string]agg {
	type acc struct {
		ns, bytes, allocs float64
		n, nb, na         int
	}
	accs := map[string]*acc{}
	for _, r := range art.Bench {
		a := accs[r.Name]
		if a == nil {
			a = &acc{}
			accs[r.Name] = a
		}
		a.ns += r.NsPerOp
		a.n++
		if r.BytesPerOp != nil {
			a.bytes += *r.BytesPerOp
			a.nb++
		}
		if r.AllocsPerOp != nil {
			a.allocs += *r.AllocsPerOp
			a.na++
		}
	}
	out := make(map[string]agg, len(accs))
	for name, a := range accs {
		g := agg{ns: a.ns / float64(a.n)}
		if a.nb > 0 {
			v := a.bytes / float64(a.nb)
			g.bytes = &v
		}
		if a.na > 0 {
			v := a.allocs / float64(a.na)
			g.allocs = &v
		}
		out[name] = g
	}
	return out
}

func fmtPtr(v *float64) string {
	if v == nil {
		return "-"
	}
	return fmt.Sprintf("%.0f", *v)
}

func fmtDelta(o, n float64) string {
	if o == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", (n-o)/o*100)
}

func fmtPtrDelta(o, n *float64) string {
	if o == nil || n == nil {
		return "-"
	}
	return fmtDelta(*o, *n)
}
