// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON artifact, so benchmark history can accumulate in
// version control (`make bench-json` writes BENCH_<yyyymmdd>.json) and be
// diffed or plotted without re-parsing the text format. It understands the
// standard -benchmem columns (ns/op, B/op, allocs/op) and every custom
// b.ReportMetric column the harness emits (simGC-ms, simPause-ms,
// minorGCs, tables, jobs, ...). The format is documented in
// EXPERIMENTS.md.
//
// The compare subcommand diffs two such snapshots:
//
//	benchjson compare [-regress PCT] OLD.json NEW.json
//
// printing per-benchmark ns/op, B/op and allocs/op deltas, and exiting
// non-zero when any benchmark present in both snapshots regressed its
// ns/op by more than PCT percent (default 10). `make bench-compare` wires
// it to the two most recent committed BENCH_<date>.json files.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"

	"repro/internal/cmdutil"
	"strings"
	"time"
)

// Result is one benchmark result line. Repeated -count runs of the same
// benchmark produce one Result each, in input order; consumers aggregate.
type Result struct {
	// Name is the benchmark name with the -<GOMAXPROCS> suffix stripped
	// (BenchmarkCoroSwitch-8 → CoroSwitch).
	Name string `json:"name"`
	// Pkg is the import path from the preceding "pkg:" header line.
	Pkg string `json:"pkg,omitempty"`
	// Iterations is b.N for this run.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp, AllocsPerOp mirror the -benchmem columns.
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds every other unit → value column (b.ReportMetric).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Artifact is the top-level JSON document.
type Artifact struct {
	Schema string   `json:"schema"` // "gcsim-bench/v1"
	Date   string   `json:"date"`   // yyyy-mm-dd, local time of capture
	Go     string   `json:"go"`
	GOOS   string   `json:"goos"`
	GOARCH string   `json:"goarch"`
	Bench  []Result `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(compareMain(os.Args[2:], os.Stdout))
	}
	os.Exit(realMain(os.Args[1:]))
}

func realMain(argv []string) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "", "write JSON here instead of stdout")
	force := fs.Bool("force", false, "overwrite an existing -o file (by default an existing snapshot is preserved)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	art, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	if len(art.Bench) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		return 1
	}
	w := io.Writer(os.Stdout)
	var outs []*cmdutil.Output
	if *out != "" {
		f, err := openOut(*out, *force)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			return 1
		}
		o := cmdutil.WrapFile(f)
		outs = append(outs, o)
		w = o
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return cmdutil.Exit(1, outs...)
	}
	return cmdutil.Exit(0, outs...)
}

// openOut opens the -o target. Benchmark snapshots are history (a same-day
// `make bench-json` rerun used to clobber the committed BENCH_<date>.json
// silently), so an existing file is refused unless -force is given.
func openOut(path string, force bool) (*os.File, error) {
	if force {
		return os.Create(path)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if errors.Is(err, os.ErrExist) {
		return nil, fmt.Errorf("%s already exists; pass -force to overwrite the snapshot", path)
	}
	return f, err
}

// parse consumes `go test -bench` text and extracts every result line.
// Non-benchmark lines (headers, PASS, ok) are skipped; "pkg:" headers set
// the package attributed to subsequent results.
func parse(r io.Reader) (*Artifact, error) {
	art := &Artifact{
		Schema: "gcsim-bench/v1",
		Date:   time.Now().Format("2006-01-02"),
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		res, ok := parseLine(line)
		if !ok {
			continue
		}
		res.Pkg = pkg
		art.Bench = append(art.Bench, res)
	}
	return art, sc.Err()
}

// parseLine parses one "BenchmarkName-N  iters  v unit  v unit ..." line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	name, ok := strings.CutPrefix(fields[0], "Benchmark")
	if !ok || name == "" {
		return Result{}, false
	}
	// Strip the -<GOMAXPROCS> suffix if present.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var res Result
	res.Name = name
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res.Iterations = n
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp, sawNs = v, true
		case "B/op":
			val := v
			res.BytesPerOp = &val
		case "allocs/op":
			val := v
			res.AllocsPerOp = &val
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
	}
	return res, sawNs
}
