package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/simkit
cpu: Intel(R) Xeon(R)
BenchmarkCoroSwitch-8   	 9599090	       120.5 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/simkit	2.1s
pkg: repro
BenchmarkFig10-8        	       2	1470123456 ns/op	        55.1 minorGCs	       812.4 simGC-ms	       101.2 simPause-ms	452000000 B/op	 1198540 allocs/op
BenchmarkFig10-8        	       2	1481000000 ns/op	        55.1 minorGCs	       812.4 simGC-ms	       101.2 simPause-ms	452000001 B/op	 1198541 allocs/op
ok  	repro	9.9s
`

func TestParse(t *testing.T) {
	art, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if art.Schema != "gcsim-bench/v1" {
		t.Errorf("schema = %q", art.Schema)
	}
	if len(art.Bench) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(art.Bench), art.Bench)
	}

	coro := art.Bench[0]
	if coro.Name != "CoroSwitch" || coro.Pkg != "repro/internal/simkit" {
		t.Errorf("first result = %q in %q, want CoroSwitch in repro/internal/simkit", coro.Name, coro.Pkg)
	}
	if coro.Iterations != 9599090 || coro.NsPerOp != 120.5 {
		t.Errorf("CoroSwitch iters=%d ns/op=%v", coro.Iterations, coro.NsPerOp)
	}
	if coro.AllocsPerOp == nil || *coro.AllocsPerOp != 0 {
		t.Errorf("CoroSwitch allocs/op = %v, want 0", coro.AllocsPerOp)
	}

	fig := art.Bench[1]
	if fig.Name != "Fig10" || fig.Pkg != "repro" {
		t.Errorf("second result = %q in %q, want Fig10 in repro", fig.Name, fig.Pkg)
	}
	if fig.NsPerOp != 1470123456 {
		t.Errorf("Fig10 ns/op = %v", fig.NsPerOp)
	}
	for unit, want := range map[string]float64{"minorGCs": 55.1, "simGC-ms": 812.4, "simPause-ms": 101.2} {
		if got := fig.Metrics[unit]; got != want {
			t.Errorf("Fig10 metric %s = %v, want %v", unit, got, want)
		}
	}
	// Repeated -count samples stay separate entries.
	if art.Bench[2].Name != "Fig10" || art.Bench[2].NsPerOp != 1481000000 {
		t.Errorf("third result = %+v, want second Fig10 sample", art.Bench[2])
	}
}

// An existing snapshot must survive a rerun: openOut refuses to overwrite
// without -force and leaves the original bytes intact.
func TestOpenOutRefusesClobberWithoutForce(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_20260808.json")

	f, err := openOut(path, false)
	if err != nil {
		t.Fatalf("fresh openOut: %v", err)
	}
	if _, err := f.WriteString("original snapshot"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := openOut(path, false); err == nil {
		t.Fatal("openOut overwrote an existing snapshot without -force")
	} else if !strings.Contains(err.Error(), "-force") {
		t.Errorf("refusal error does not mention -force: %v", err)
	}
	if got, err := os.ReadFile(path); err != nil || string(got) != "original snapshot" {
		t.Fatalf("existing snapshot damaged: %q, %v", got, err)
	}

	f, err = openOut(path, true)
	if err != nil {
		t.Fatalf("openOut -force: %v", err)
	}
	if _, err := f.WriteString("new"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if got, _ := os.ReadFile(path); string(got) != "new" {
		t.Fatalf("-force did not replace the snapshot: %q", got)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"Benchmark",                       // no name, no fields
		"BenchmarkX-8 notanumber 1 ns/op", // bad iteration count
		"BenchmarkX-8 10 twelve ns/op",    // bad value
		"--- FAIL: TestSomething",
		"",
	} {
		if res, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted: %+v", line, res)
		}
	}
}
