package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/simkit
cpu: Intel(R) Xeon(R)
BenchmarkCoroSwitch-8   	 9599090	       120.5 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/simkit	2.1s
pkg: repro
BenchmarkFig10-8        	       2	1470123456 ns/op	        55.1 minorGCs	       812.4 simGC-ms	       101.2 simPause-ms	452000000 B/op	 1198540 allocs/op
BenchmarkFig10-8        	       2	1481000000 ns/op	        55.1 minorGCs	       812.4 simGC-ms	       101.2 simPause-ms	452000001 B/op	 1198541 allocs/op
ok  	repro	9.9s
`

func TestParse(t *testing.T) {
	art, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if art.Schema != "gcsim-bench/v1" {
		t.Errorf("schema = %q", art.Schema)
	}
	if len(art.Bench) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(art.Bench), art.Bench)
	}

	coro := art.Bench[0]
	if coro.Name != "CoroSwitch" || coro.Pkg != "repro/internal/simkit" {
		t.Errorf("first result = %q in %q, want CoroSwitch in repro/internal/simkit", coro.Name, coro.Pkg)
	}
	if coro.Iterations != 9599090 || coro.NsPerOp != 120.5 {
		t.Errorf("CoroSwitch iters=%d ns/op=%v", coro.Iterations, coro.NsPerOp)
	}
	if coro.AllocsPerOp == nil || *coro.AllocsPerOp != 0 {
		t.Errorf("CoroSwitch allocs/op = %v, want 0", coro.AllocsPerOp)
	}

	fig := art.Bench[1]
	if fig.Name != "Fig10" || fig.Pkg != "repro" {
		t.Errorf("second result = %q in %q, want Fig10 in repro", fig.Name, fig.Pkg)
	}
	if fig.NsPerOp != 1470123456 {
		t.Errorf("Fig10 ns/op = %v", fig.NsPerOp)
	}
	for unit, want := range map[string]float64{"minorGCs": 55.1, "simGC-ms": 812.4, "simPause-ms": 101.2} {
		if got := fig.Metrics[unit]; got != want {
			t.Errorf("Fig10 metric %s = %v, want %v", unit, got, want)
		}
	}
	// Repeated -count samples stay separate entries.
	if art.Bench[2].Name != "Fig10" || art.Bench[2].NsPerOp != 1481000000 {
		t.Errorf("third result = %+v, want second Fig10 sample", art.Bench[2])
	}
}

// An existing snapshot must survive a rerun: openOut refuses to overwrite
// without -force and leaves the original bytes intact.
func TestOpenOutRefusesClobberWithoutForce(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_20260808.json")

	f, err := openOut(path, false)
	if err != nil {
		t.Fatalf("fresh openOut: %v", err)
	}
	if _, err := f.WriteString("original snapshot"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := openOut(path, false); err == nil {
		t.Fatal("openOut overwrote an existing snapshot without -force")
	} else if !strings.Contains(err.Error(), "-force") {
		t.Errorf("refusal error does not mention -force: %v", err)
	}
	if got, err := os.ReadFile(path); err != nil || string(got) != "original snapshot" {
		t.Fatalf("existing snapshot damaged: %q, %v", got, err)
	}

	f, err = openOut(path, true)
	if err != nil {
		t.Fatalf("openOut -force: %v", err)
	}
	if _, err := f.WriteString("new"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if got, _ := os.ReadFile(path); string(got) != "new" {
		t.Fatalf("-force did not replace the snapshot: %q", got)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"Benchmark",                       // no name, no fields
		"BenchmarkX-8 notanumber 1 ns/op", // bad iteration count
		"BenchmarkX-8 10 twelve ns/op",    // bad value
		"--- FAIL: TestSomething",
		"",
	} {
		if res, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted: %+v", line, res)
		}
	}
}

func writeArtifact(t *testing.T, dir, name string, bench []Result) string {
	t.Helper()
	art := Artifact{Schema: "gcsim-bench/v1", Date: "2026-08-08", Bench: bench}
	data, err := json.Marshal(art)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func fp(v float64) *float64 { return &v }

func TestCompareReportsDeltasAndRegressions(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeArtifact(t, dir, "old.json", []Result{
		{Name: "Fig10", Iterations: 3, NsPerOp: 1000, BytesPerOp: fp(500), AllocsPerOp: fp(50)},
		{Name: "Fig10", Iterations: 3, NsPerOp: 1200, BytesPerOp: fp(500), AllocsPerOp: fp(50)}, // -count rerun, mean 1100
		{Name: "Gone", Iterations: 1, NsPerOp: 10},
	})
	newPath := writeArtifact(t, dir, "new.json", []Result{
		{Name: "Fig10", Iterations: 3, NsPerOp: 550, BytesPerOp: fp(250), AllocsPerOp: fp(25)},
		{Name: "Fresh", Iterations: 1, NsPerOp: 42},
	})

	var buf bytes.Buffer
	if code := compareMain([]string{oldPath, newPath}, &buf); code != 0 {
		t.Fatalf("compare exit = %d, want 0\n%s", code, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"Fig10", "1100", "550", "-50.0%", "(new)", "(gone)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Swapped order: a 100% ns/op regression must fail the default 10% gate.
	buf.Reset()
	if code := compareMain([]string{newPath, oldPath}, &buf); code != 1 {
		t.Errorf("regressed compare exit = %d, want 1\n%s", code, buf.String())
	}
	// A generous threshold lets it pass.
	buf.Reset()
	if code := compareMain([]string{"-regress", "150", newPath, oldPath}, &buf); code != 0 {
		t.Errorf("compare -regress 150 exit = %d, want 0\n%s", code, buf.String())
	}
}

func TestCompareRejectsBadInputs(t *testing.T) {
	dir := t.TempDir()
	good := writeArtifact(t, dir, "good.json", []Result{{Name: "X", Iterations: 1, NsPerOp: 1}})
	var buf bytes.Buffer
	if code := compareMain([]string{good}, &buf); code != 2 {
		t.Errorf("one-arg compare exit = %d, want 2", code)
	}
	if code := compareMain([]string{good, filepath.Join(dir, "missing.json")}, &buf); code != 2 {
		t.Errorf("missing-file compare exit = %d, want 2", code)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := compareMain([]string{good, bad}, &buf); code != 2 {
		t.Errorf("bad-json compare exit = %d, want 2", code)
	}
}
