// Command tracecheck validates Perfetto trace-event JSON files produced
// by gcsim -evtrace or experiments -evtrace-dir: each file must parse and
// contain at least one event from every instrumented layer (simkit, cfs,
// jmutex, taskq, pscavenge). Exits non-zero on any failure, so it works
// as a smoke-test gate (see the Makefile's trace-smoke target).
//
// Usage:
//
//	tracecheck out.json traces/fig3a/cell-000.json ...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/evtrace"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json> [more.json ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// check parses one exported trace and requires every layer's category.
func check(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("not valid trace-event JSON: %v", err)
	}
	counts := map[string]int{}
	var drops []string
	for _, e := range doc.TraceEvents {
		if e.Cat != "" {
			counts[e.Cat]++
		}
		// WritePerfetto records per-layer ring overflow as evtrace_drops
		// metadata; surface it so a truncated export is never mistaken for
		// a complete one.
		if e.Ph == "M" && e.Name == "evtrace_drops" {
			drops = append(drops, fmt.Sprintf("%v=%v", e.Args["layer"], e.Args["drops"]))
		}
	}
	var missing, have []string
	for _, l := range evtrace.Layers() {
		name := l.String()
		if counts[name] == 0 {
			missing = append(missing, name)
		} else {
			have = append(have, fmt.Sprintf("%s=%d", name, counts[name]))
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("missing layers: %s (present: %s)",
			strings.Join(missing, ", "), strings.Join(have, " "))
	}
	if len(drops) > 0 {
		fmt.Printf("%s: ok (%d events; %s) — WARNING: dropped events per layer: %s\n",
			path, len(doc.TraceEvents), strings.Join(have, " "), strings.Join(drops, " "))
		return nil
	}
	fmt.Printf("%s: ok (%d events; %s)\n", path, len(doc.TraceEvents), strings.Join(have, " "))
	return nil
}
