// Command sweepd runs fleet-scale check sweeps: a coordinator that shards
// the prefix-stable cell space across worker processes (re-invocations of
// this binary with -worker) with work stealing, heartbeat/deadline failure
// detection, and bounded re-dispatch. The merged gcsim-sweep/v1 report is
// byte-identical regardless of sharding, worker count, steal interleaving,
// or injected worker kills.
//
// Coordinator:
//
//	sweepd -cells 100000 -workers 8 -out report.json
//
// Fault-injection harness (worker 0 only):
//
//	sweepd -cells 1000 -workers 4 -kill-worker-after 5   # crash, no goodbye
//	sweepd -cells 1000 -workers 4 -hang-worker 5         # alive but stuck
//
// SIGTERM/SIGINT triggers a graceful drain: in-flight cells finish, the
// partial report is written (with "partial" set), and sweepd exits 3.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/check"
	"repro/internal/cmdutil"
	"repro/internal/fleet"
)

func main() {
	os.Exit(realMain(os.Args[1:]))
}

func realMain(argv []string) int {
	fs := flag.NewFlagSet("sweepd", flag.ContinueOnError)
	var (
		worker    = fs.Bool("worker", false, "run as a worker process (internal; speaks the fleet protocol on stdin/stdout)")
		cells     = fs.Int("cells", 1000, "number of sweep cells")
		seed      = fs.Int64("seed", 42, "base seed of the cell space")
		items     = fs.Int("items", 0, "per-cell workload items (0 = check.DefaultItems)")
		skipBare  = fs.Bool("skip-bare", false, "skip the bare determinism replay (one simulation per cell instead of two)")
		workers   = fs.Int("workers", 2, "worker processes")
		shards    = fs.Int("shards", 0, "shard count (0 = 4x workers)")
		inflight  = fs.Int("inflight", 0, "max shards in flight per worker (0 = 2)")
		noSteal   = fs.Bool("no-steal", false, "disable cross-shard work stealing")
		heartbeat = fs.Duration("heartbeat", 0, "ping interval (0 = 500ms)")
		deadline  = fs.Duration("deadline", 0, "per-worker progress deadline (0 = 30s)")
		retries   = fs.Int("retries", 0, "max re-dispatches per shard (0 = 3)")
		out       = fs.String("out", "", "write the gcsim-sweep/v1 report to this file (default stdout)")
		quiet     = fs.Bool("quiet", false, "suppress coordinator progress on stderr")
		killAfter = fs.Int("kill-worker-after", 0, "fault injection: worker 0 exits without goodbye after N cells")
		hangAfter = fs.Int("hang-worker", 0, "fault injection: worker 0 hangs (pings still answered) after N cells")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	runOpts := check.RunOptions{Items: *items, SkipBare: *skipBare}
	if *worker {
		// Workers receive their fault injections via argv too (the
		// coordinator only appends them for worker 0).
		wopts := fleet.WorkerOptions{KillAfter: *killAfter, HangAfter: *hangAfter}
		if err := fleet.ServeWorker(os.Stdin, os.Stdout, fleet.CheckRunner(*seed, runOpts), wopts); err != nil {
			fmt.Fprintln(os.Stderr, "sweepd worker:", err)
			return 1
		}
		return 0
	}

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		return 1
	}

	output, err := cmdutil.NewOutput(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		return 1
	}

	cfg := fleet.Config{
		Cells:        *cells,
		Workers:      *workers,
		Shards:       *shards,
		Inflight:     *inflight,
		DisableSteal: *noSteal,
		Heartbeat:    *heartbeat,
		Deadline:     *deadline,
		Retries:      *retries,
		Command: func(i int) (*exec.Cmd, error) {
			args := []string{"-worker",
				"-seed", strconv.FormatInt(*seed, 10),
				"-items", strconv.Itoa(*items)}
			if *skipBare {
				args = append(args, "-skip-bare")
			}
			if i == 0 {
				if *killAfter > 0 {
					args = append(args, "-kill-worker-after", strconv.Itoa(*killAfter))
				}
				if *hangAfter > 0 {
					args = append(args, "-hang-worker", strconv.Itoa(*hangAfter))
				}
			}
			cmd := exec.Command(exe, args...)
			cmd.Stderr = os.Stderr
			return cmd, nil
		},
	}
	if !*quiet {
		cfg.Log = os.Stderr
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	start := time.Now()
	res, runErr := fleet.Run(ctx, cfg)
	elapsed := time.Since(start)

	code := 0
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", runErr)
		code = 1
		if res != nil && res.Stats.Drained {
			code = 3
		}
		if res == nil {
			return cmdutil.Exit(code, output)
		}
	}

	rep := fleet.BuildReport(*seed, *cells, *items, !*skipBare, res.Records)
	if err := rep.WriteJSON(output); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		return cmdutil.Exit(1, output)
	}
	if !*quiet {
		st := res.Stats
		fmt.Fprintf(os.Stderr,
			"sweepd: %d/%d cells in %v (%.1f cells/s) workers=%d shards=%d steals=%d redispatches=%d deaths=%d hangs=%d\n",
			len(res.Records), *cells, elapsed.Round(time.Millisecond),
			float64(len(res.Records))/elapsed.Seconds(),
			st.Workers, st.Shards, st.Steals, st.Redispatches, st.WorkerDeaths, st.WorkerHangs)
	}
	if code == 0 && (rep.Failed > 0 || rep.Violations > 0 || rep.Drops > 0) {
		fmt.Fprintf(os.Stderr, "sweepd: sweep found problems: %d failed cells, %d violations, %d drops\n",
			rep.Failed, rep.Violations, rep.Drops)
		code = 1
	}
	return cmdutil.Exit(code, output)
}
