// Command gcreport consumes pause-postmortem JSON files written by
// `gcsim -postmortem-json` or `experiments -postmortem-dir`.
//
// With two files it attributes the pause-time delta between the runs to
// blame buckets — the postmortem twin of `benchjson compare`:
//
//	gcreport vanilla.json optimized.json
//
// With -verify it checks one file's internal invariants (schema, and
// buckets summing to each collection's pause within tolerance), exiting
// non-zero on violation:
//
//	gcreport -verify run.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/postmortem"
)

func main() {
	verify := flag.Bool("verify", false, "verify one postmortem file's sum invariant instead of comparing two")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gcreport A.json B.json   (compare)\n")
		fmt.Fprintf(os.Stderr, "       gcreport -verify F.json (check invariants)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *verify {
		if flag.NArg() != 1 {
			flag.Usage()
			os.Exit(2)
		}
		ex := load(flag.Arg(0))
		if bad := ex.Verify(); len(bad) != 0 {
			for _, v := range bad {
				fmt.Fprintf(os.Stderr, "gcreport: %s: %s\n", flag.Arg(0), v)
			}
			os.Exit(1)
		}
		fmt.Printf("%s: ok (%d collections, total pause %.2fms, pathology: %s)\n",
			flag.Arg(0), ex.Collections, float64(ex.TotalPauseNs)/1e6, ex.Pathology)
		return
	}

	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	a, b := load(flag.Arg(0)), load(flag.Arg(1))
	postmortem.Compare(os.Stdout, flag.Arg(0), a, flag.Arg(1), b)
}

func load(path string) *postmortem.Export {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	ex, err := postmortem.ParseJSON(data)
	if err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
	return ex
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gcreport:", err)
	os.Exit(1)
}
