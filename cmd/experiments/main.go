// Command experiments regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	experiments -list
//	experiments -run fig10
//	experiments -run all -scale 4 -jobs 8 -o results.txt
//
// Simulation cells fan out across a bounded worker pool (-jobs, default
// GOMAXPROCS); output is byte-identical for any -jobs value because every
// cell derives its own seed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"time"

	"repro/internal/cmdutil"
	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/schedtrace"
)

func main() {
	if err := realMain(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func realMain() error {
	var (
		runID = flag.String("run", "all", "experiment id, or 'all'")
		list  = flag.Bool("list", false, "list experiments and exit")
		seed  = flag.Int64("seed", 42, "simulation seed")
		scale = flag.Int("scale", 1, "divide workload sizes by this (1 = full evaluation)")
		jobs  = flag.Int("jobs", 0, "max concurrent simulation cells (0 = GOMAXPROCS, 1 = serial)")
		out   = flag.String("o", "", "write output to file (default stdout)")
		csv   = flag.String("csv", "", "also write each table as CSV into this directory")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
		traceFile  = flag.String("trace", "", "write a runtime execution trace to this file")

		evtraceDir    = flag.String("evtrace-dir", "", "write per-cell Perfetto traces into <dir>/<experiment>/cell-NNN.json")
		postmortemDir = flag.String("postmortem-dir", "", "write per-cell pause postmortems into <dir>/<experiment>/postmortem-NNN.json")
		timeline      = flag.Int("timeline", -1, "render a scheduling timeline for this cell index (single -run only)")
		checkF        = flag.Bool("check", false, "attach the cross-layer invariant checker to every cell (exit 1 on violation)")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			return err
		}
		defer trace.Stop()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC() // flush accurate allocation stats before the snapshot
			if werr := pprof.Lookup("allocs").WriteTo(f, 0); werr != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", werr)
			}
			f.Close()
		}()
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return nil
	}

	var todo []experiments.Experiment
	if *runID == "all" {
		todo = experiments.All()
	} else {
		e, err := experiments.ByID(*runID)
		if err != nil {
			return err
		}
		todo = []experiments.Experiment{e}
	}

	if *csv != "" {
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			return err
		}
	}
	if *timeline >= 0 && len(todo) > 1 {
		return fmt.Errorf("-timeline needs a single experiment (use -run <id>)")
	}
	ropt := runOptions{
		seed: *seed, scale: *scale, jobs: *jobs,
		csvDir: *csv, evtraceDir: *evtraceDir, postmortemDir: *postmortemDir,
		timeline: *timeline,
	}
	if *checkF {
		ropt.check = &experiments.CheckCollector{}
	}

	if *out != "" {
		// Close on every exit path (including experiment errors) and
		// surface write and Close errors so a full disk is not reported
		// as success (table rendering itself ignores fmt errors; the
		// buffered Output retains the first failure and Close reports it).
		o, err := cmdutil.NewOutput(*out)
		if err != nil {
			return err
		}
		err = runExperiments(o, todo, ropt)
		if cerr := o.Close(); err == nil {
			err = cerr
		}
		return err
	}
	return runExperiments(os.Stdout, todo, ropt)
}

// runOptions carries the CLI knobs that shape an experiment batch.
type runOptions struct {
	seed          int64
	scale, jobs   int
	csvDir        string
	evtraceDir    string
	postmortemDir string
	timeline      int                         // cell index to render, -1 = off
	check         *experiments.CheckCollector // non-nil when -check is set
}

func runExperiments(w io.Writer, todo []experiments.Experiment, ro runOptions) error {
	pool := runner.New(ro.jobs)
	opt := experiments.Options{Seed: ro.seed, Scale: ro.scale, Jobs: ro.jobs, Pool: pool, Check: ro.check}
	start := time.Now()
	for _, e := range todo {
		eopt := opt
		if ro.evtraceDir != "" {
			eopt.TraceDir = filepath.Join(ro.evtraceDir, e.ID)
			if err := os.MkdirAll(eopt.TraceDir, 0o755); err != nil {
				return err
			}
		}
		if ro.postmortemDir != "" {
			eopt.PostmortemDir = filepath.Join(ro.postmortemDir, e.ID)
			if err := os.MkdirAll(eopt.PostmortemDir, 0o755); err != nil {
				return err
			}
		}
		if ro.timeline >= 0 {
			eopt.Timeline = &experiments.TimelineCapture{Cell: ro.timeline}
		}
		t0 := time.Now()
		snap := pool.Snapshot()
		res := e.Run(eopt)
		wall := time.Since(t0)
		cells, busy := pool.StatsSince(snap)
		res.Render(w)
		if ro.csvDir != "" {
			if err := res.WriteCSV(ro.csvDir); err != nil {
				return err
			}
		}
		if eopt.Timeline != nil {
			if err := renderTimeline(w, e.ID, eopt.Timeline); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "%s done in %.1fs (%d cells, %.1fx speedup, jobs=%d)\n",
			e.ID, wall.Seconds(), cells, speedup(busy, wall), pool.Workers())
	}
	if len(todo) > 1 {
		wall := time.Since(start)
		cells, busy := pool.Stats()
		fmt.Fprintf(os.Stderr, "total: %d cells in %.1fs wall (%.1fs cpu, %.1fx speedup)\n",
			cells, wall.Seconds(), busy.Seconds(), speedup(busy, wall))
	}
	if ro.check != nil {
		fmt.Fprint(os.Stderr, ro.check.Report())
		if n := ro.check.Total(); n > 0 {
			return fmt.Errorf("invariant checker found %d violation(s)", n)
		}
	}
	return nil
}

// renderTimeline draws the captured cell's scheduling around a mid-run
// GC — the same view as gcsim -timeline, but for an experiment cell.
func renderTimeline(w io.Writer, id string, tc *experiments.TimelineCapture) error {
	r := tc.Result
	if r == nil {
		return fmt.Errorf("-timeline %d: experiment %s has no such cell", tc.Cell, id)
	}
	if len(r.Reports) == 0 || r.Trace == nil {
		return fmt.Errorf("-timeline %d: cell recorded no collections", tc.Cell)
	}
	rep := r.Reports[len(r.Reports)/2]
	pad := rep.Pause() / 4
	from, to := rep.Start-pad, rep.End+pad
	if from < 0 {
		from = 0
	}
	fmt.Fprintf(w, "timeline: %s cell %d (%s): GC #%d %s, pause %v, %d cores used\n",
		id, tc.Cell, r.Benchmark, rep.Seq, rep.Kind, rep.Pause(), rep.CoresUsed())
	schedtrace.Render(w, r.Trace, r.NumCPUs, from, to, schedtrace.Options{Width: 100, Legend: true})
	return nil
}

// speedup is aggregate in-cell time over wall time: ~1.0 when serial,
// approaching the worker count when the fan-out keeps every worker busy.
func speedup(busy, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(busy) / float64(wall)
}
