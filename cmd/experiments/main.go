// Command experiments regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	experiments -list
//	experiments -run fig10
//	experiments -run all -scale 4 -o results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		runID = flag.String("run", "all", "experiment id, or 'all'")
		list  = flag.Bool("list", false, "list experiments and exit")
		seed  = flag.Int64("seed", 42, "simulation seed")
		scale = flag.Int("scale", 1, "divide workload sizes by this (1 = full evaluation)")
		out   = flag.String("o", "", "write output to file (default stdout)")
		csv   = flag.String("csv", "", "also write each table as CSV into this directory")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}

	opt := experiments.Options{Seed: *seed, Scale: *scale}
	var todo []experiments.Experiment
	if *runID == "all" {
		todo = experiments.All()
	} else {
		e, err := experiments.ByID(*runID)
		if err != nil {
			fail(err)
		}
		todo = []experiments.Experiment{e}
	}

	if *csv != "" {
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			fail(err)
		}
	}
	for _, e := range todo {
		t0 := time.Now()
		res := e.Run(opt)
		res.Render(w)
		if *csv != "" {
			if err := res.WriteCSV(*csv); err != nil {
				fail(err)
			}
		}
		fmt.Fprintf(os.Stderr, "%s done in %.1fs\n", e.ID, time.Since(t0).Seconds())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
