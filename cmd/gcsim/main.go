// Command gcsim runs one benchmark on the simulated testbed and prints a
// GC-log-style summary, optionally comparing the vanilla JVM with the
// paper's optimizations.
//
// Usage:
//
//	gcsim -bench lusearch -mutators 16 -opt all
//	gcsim -bench cassandra -clients 256 -requests 20000 -compare
//	gcsim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/check"
	"repro/internal/cmdutil"
	"repro/internal/core"
	"repro/internal/evtrace"
	"repro/internal/gclog"
	"repro/internal/jvm"
	"repro/internal/postmortem"
	"repro/internal/schedtrace"
	"repro/internal/stats"
)

func main() {
	os.Exit(realMain(os.Args[1:]))
}

func realMain(argv []string) int {
	fs := flag.NewFlagSet("gcsim", flag.ContinueOnError)
	var (
		bench    = fs.String("bench", "lusearch", "benchmark name (see -list)")
		list     = fs.Bool("list", false, "list available benchmarks and exit")
		mutators = fs.Int("mutators", 16, "number of mutator threads")
		gcth     = fs.Int("gcthreads", 0, "GC threads (0 = HotSpot heuristic)")
		heapMB   = fs.Int("heap", 0, "heap size in MB (0 = Table-2 default)")
		opt      = fs.String("opt", "none", "optimizations: none|affinity|steal|all")
		compare  = fs.Bool("compare", false, "run vanilla and optimized, print both")
		clients  = fs.Int("clients", 64, "closed-loop clients (server benchmarks)")
		requests = fs.Int("requests", 10000, "total requests (server benchmarks)")
		busy     = fs.Int("busyloops", 0, "interfering busy-loop threads")
		smt      = fs.Bool("smt", false, "enable SMT (40 logical CPUs)")
		seed     = fs.Int64("seed", 42, "simulation seed")
		gclogF   = fs.Bool("gclog", false, "print a HotSpot-style GC log")
		gcjson   = fs.String("gcjson", "", "write the run (GC log + monitor/steal/metrics counters) as JSON to a file")
		timeline = fs.Bool("timeline", false, "render a scheduling timeline around a mid-run GC")
		runs     = fs.Int("runs", 1, "average over this many seeds (the paper averages 10 runs)")

		evtraceOut = fs.String("evtrace", "", "write a Perfetto trace-event JSON file (load in ui.perfetto.dev)")
		evtraceCap = fs.Int("evtrace-cap", evtrace.DefaultSinkCap, "event-ring capacity per layer (oldest events are dropped beyond this)")
		lockprof   = fs.Bool("lockprofile", false, "print the GCTaskManager lock-contention profile (ownership transitions, reacquisition runs)")
		metricsF   = fs.Bool("metrics", false, "print the unified metrics registry after the run")
		checkF     = fs.Bool("check", false, "run the cross-layer invariant checker online (exit 1 on violation)")

		postmortemF    = fs.Bool("postmortem", false, "attribute every pause to blame buckets and print the run postmortem")
		postmortemJSON = fs.String("postmortem-json", "", "write the pause postmortem as JSON to a file (compare with cmd/gcreport)")
		postmortemWin  = fs.String("postmortem-trace", "", "write a Perfetto trace window around the worst pause to a file")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	// Every file output registers here, and every exit path funnels
	// through exit/fail, so buffered artifacts are flushed and closed no
	// matter which branch ends the run — the old direct os.Exit calls
	// skipped the deferred closes.
	var outs []*cmdutil.Output
	newOut := func(path string) (*cmdutil.Output, error) {
		o, err := cmdutil.NewOutput(path)
		if err == nil {
			outs = append(outs, o)
		}
		return o, err
	}
	exit := func(code int) int { return cmdutil.Exit(code, outs...) }
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "gcsim:", err)
		return exit(1)
	}

	if *list {
		tab := stats.NewTable("benchmarks", "name", "suite", "heap(MB)", "class")
		for _, b := range core.Benchmarks() {
			class := "batch"
			if b.ServiceCompute > 0 {
				class = "server"
			}
			tab.AddRow(b.Name, b.Suite, b.HeapMB, class)
		}
		tab.Render(os.Stdout)
		return 0
	}

	levels := map[string]core.Optimizations{
		"none": core.OptNone, "affinity": core.OptAffinity,
		"steal": core.OptSteal, "all": core.OptAll,
	}
	level, ok := levels[*opt]
	if !ok {
		fmt.Fprintf(os.Stderr, "gcsim: unknown -opt %q (none|affinity|steal|all)\n", *opt)
		return 2
	}

	cfg := core.Config{
		Benchmark: *bench, Mutators: *mutators, GCThreads: *gcth,
		HeapMB: *heapMB, Optimizations: level,
		Clients: *clients, Requests: *requests,
		BusyLoops: *busy, SMT: *smt, Seed: *seed,
	}

	if *timeline {
		if err := renderTimeline(cfg); err != nil {
			return fail(err)
		}
		return 0
	}

	if *compare {
		if *runs > 1 {
			if err := compareRuns(cfg, *runs); err != nil {
				return fail(err)
			}
			return 0
		}
		van, optres, err := core.Compare(cfg)
		if err != nil {
			return fail(err)
		}
		report("vanilla", van, *gclogF)
		report("optimized", optres, *gclogF)
		fmt.Printf("improvement: total %.1f%%, GC %.1f%%\n",
			100*stats.Improvement(float64(van.TotalTime), float64(optres.TotalTime)),
			100*stats.Improvement(float64(van.GCTime), float64(optres.GCTime)))
		return 0
	}

	spec, err := core.BuildRunSpec(cfg)
	if err != nil {
		return fail(err)
	}
	// Observability hooks: the event tracer feeds both the Perfetto export
	// and the lock profiler; the registry feeds -metrics and -gcjson.
	wantPostmortem := *postmortemF || *postmortemJSON != "" || *postmortemWin != ""
	var tracer *evtrace.Tracer
	if *evtraceOut != "" || *lockprof || *checkF || wantPostmortem {
		tracer = evtrace.New(*evtraceCap)
		spec.EvTracer = tracer
	}
	var checker *check.Checker
	if *checkF {
		checker = check.New()
		checker.Attach(tracer)
	}
	var analyzer *postmortem.Analyzer
	if wantPostmortem {
		analyzer = postmortem.New()
		analyzer.Attach(tracer)
	}
	var reg *evtrace.Registry
	if *metricsF || *gcjson != "" {
		reg = evtrace.NewRegistry()
		spec.Metrics = reg
	}
	res, err := jvm.Run(spec)
	if err != nil {
		return fail(err)
	}
	report(*opt, res, *gclogF)
	if checker != nil {
		checker.Finish()
		fmt.Print(checker.Report())
	}
	if analyzer != nil {
		analyzer.Finish()
	}
	if *postmortemF {
		analyzer.Postmortem().Render(os.Stdout)
	}
	if *postmortemJSON != "" {
		f, err := newOut(*postmortemJSON)
		if err != nil {
			return fail(err)
		}
		if err := gclog.WritePostmortemJSON(f, analyzer); err != nil {
			return fail(err)
		}
	}
	if *postmortemWin != "" {
		reports := analyzer.Postmortem().Worst
		if len(reports) == 0 {
			return fail(fmt.Errorf("-postmortem-trace: no collections observed"))
		}
		worst := reports[0]
		f, err := newOut(*postmortemWin)
		if err != nil {
			return fail(err)
		}
		if err := evtrace.WritePerfettoWindow(f, tracer, worst.SeqLo, worst.SeqHi); err != nil {
			return fail(err)
		}
		fmt.Printf("wrote worst-pause window (gc=%d pause=%.3fms events=[%d..%d]) to %s\n",
			worst.Seq, float64(worst.PauseNs())/1e6, worst.SeqLo, worst.SeqHi, *postmortemWin)
	}
	if *evtraceOut != "" {
		f, err := newOut(*evtraceOut)
		if err != nil {
			return fail(err)
		}
		if err := evtrace.WritePerfetto(f, tracer); err != nil {
			return fail(err)
		}
		fmt.Printf("wrote %d trace events to %s (open in https://ui.perfetto.dev)\n", tracer.Len(), *evtraceOut)
		drops := tracer.Drops()
		for _, l := range evtrace.Layers() {
			if d := drops[l]; d > 0 {
				fmt.Printf("  warning: %s ring dropped %d events (raise -evtrace-cap for a complete export)\n", l, d)
			}
		}
	}
	if *lockprof {
		evtrace.BuildLockProfile(tracer, "GCTaskManager").Render(os.Stdout)
	}
	if *metricsF {
		fmt.Println("metrics:")
		reg.Render(os.Stdout)
	}
	if *gcjson != "" {
		f, err := newOut(*gcjson)
		if err != nil {
			return fail(err)
		}
		if err := gclog.WriteRunJSON(f, res.Reports, res.Monitor, res.Steal, reg.Current()); err != nil {
			return fail(err)
		}
	}
	if checker != nil && checker.Total() > 0 {
		// The -gcjson artifact of a violating run is still flushed whole:
		// a checker failure must not truncate the evidence.
		return exit(1)
	}
	return exit(0)
}

func report(label string, r *core.Result, printLog bool) {
	fmt.Printf("[%s] %s: mutators=%d gcthreads=%d\n", label, r.Benchmark, r.Mutators, r.GCThreads)
	fmt.Printf("  total=%v mutator=%v gc=%v (%.1f%%)\n",
		r.TotalTime, r.MutatorTime, r.GCTime, 100*r.GCRatio())
	fmt.Printf("  collections: %d minor (%v), %d major (%v)\n",
		r.MinorGCs, r.MinorGCTime, r.MajorGCs, r.MajorGCTime)
	fmt.Printf("  steals: %d attempts, %.1f%% failed; monitor: %d fast, %d slow, %d owner-reacquires; rebinds: %d; mutator deep-wakes: %d\n",
		r.Steal.TotalAttempts(), 100*r.Steal.FailureRate(),
		r.Monitor.FastAcquires, r.Monitor.SlowAcquires, r.Monitor.OwnerReacquires, r.Rebinds, r.MutatorDeepWakes)
	if r.Latency.N() > 0 {
		fmt.Printf("  latency(ms): median=%.2f mean=%.2f p95=%.2f p99=%.2f p99.9=%.2f (%.0f ops/s)\n",
			r.Latency.Median(), r.Latency.Mean(), r.Latency.Percentile(95),
			r.Latency.Percentile(99), r.Latency.Percentile(99.9), r.ThroughputOPS)
	}
	if r.Err != nil {
		fmt.Printf("  ERROR: %v\n", r.Err)
	}
	if printLog {
		gclog.Write(os.Stdout, r.Reports)
	}
}

// renderTimeline runs the configuration with scheduling tracing and draws
// the timeline around a representative mid-run minor GC — the stacked
// vanilla collection and the spread optimized one are plainly visible.
func renderTimeline(cfg core.Config) error {
	spec, err := core.BuildRunSpec(cfg)
	if err != nil {
		return err
	}
	spec.Trace = true
	r, err := jvm.Run(spec)
	if err != nil {
		return err
	}
	if len(r.Reports) == 0 || r.Trace == nil {
		return fmt.Errorf("no collections recorded")
	}
	rep := r.Reports[len(r.Reports)/2]
	pad := rep.Pause() / 4
	from, to := rep.Start-pad, rep.End+pad
	if from < 0 {
		from = 0
	}
	fmt.Printf("%s (%s): GC #%d %s, pause %v, %d cores used\n",
		r.Benchmark, cfg.Optimizations, rep.Seq, rep.Kind, rep.Pause(), rep.CoresUsed())
	schedtrace.Render(os.Stdout, r.Trace, r.NumCPUs, from, to, schedtrace.Options{Width: 100, Legend: true})
	return nil
}

// compareRuns averages vanilla and optimized over several seeds — the
// paper's methodology ("each result was the average of 10 runs").
func compareRuns(cfg core.Config, runs int) error {
	var vanTot, vanGC, optTot, optGC stats.Histogram
	for i := 0; i < runs; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		van, opt, err := core.Compare(c)
		if err != nil {
			return err
		}
		vanTot.Add(van.TotalTime.Millis())
		vanGC.Add(van.GCTime.Millis())
		optTot.Add(opt.TotalTime.Millis())
		optGC.Add(opt.GCTime.Millis())
	}
	tab := stats.NewTable(fmt.Sprintf("%s, mean of %d runs (min..max)", cfg.Benchmark, runs),
		"config", "total(ms)", "total-range", "gc(ms)", "gc-range")
	row := func(name string, tot, gc *stats.Histogram) {
		tab.AddRow(name, tot.Mean(),
			fmt.Sprintf("%.0f..%.0f", tot.Percentile(0), tot.Percentile(100)),
			gc.Mean(),
			fmt.Sprintf("%.0f..%.0f", gc.Percentile(0), gc.Percentile(100)))
	}
	row("vanilla", &vanTot, &vanGC)
	row("optimized", &optTot, &optGC)
	tab.Render(os.Stdout)
	fmt.Printf("mean improvement: total %.1f%%, GC %.1f%%\n",
		100*stats.Improvement(vanTot.Mean(), optTot.Mean()),
		100*stats.Improvement(vanGC.Mean(), optGC.Mean()))
	return nil
}
