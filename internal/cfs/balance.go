package cfs

import (
	"repro/internal/evtrace"
	"repro/internal/ostopo"
	"repro/internal/simkit"
)

// This file implements the three load-balancing paths of §2.5:
//
//  1. new-idle balancing — a core becoming idle pulls a runnable thread
//     from a busy core;
//  2. periodic balancing — each core balances its domains at coarse
//     intervals (64 ms SMT, doubling with distance);
//  3. wake balancing — a waking thread may be placed on an idle core near
//     its previous or its waker's core, but deep-idle cores are skipped.
//
// Only *runnable* threads are ever migrated: blocked threads are invisible
// to all three paths, which is the heart of the paper's pathology.

// selectWakeCore implements select_task_rq_fair: wake-affine choice between
// the previous and the waker's core, followed by an idle-sibling search in
// the target's LLC (node) domain.
func (k *Kernel) selectWakeCore(t *Thread) ostopo.CoreID {
	now := k.Sim.Now()
	prev := t.core
	waker := prev
	if k.active != nil {
		waker = k.active.core
	}
	target := prev
	if !t.allowed(prev) {
		target = k.allowedTarget(t)
	}
	if waker != target && t.allowed(waker) && k.cores[waker].load() < k.cores[target].load() {
		target = waker
	}
	tc := k.cores[target]
	if tc.idle() {
		if target == prev {
			k.Stats.WakesToPrev++
		}
		return target
	}
	// Idle-sibling search: like select_idle_core, prefer a fully idle
	// physical core (both hyperthreads idle) over a hyperthread whose
	// sibling is busy, which would halve both threads' speed.
	pick := ostopo.CoreID(-1)
	pickWholeIdle := false
	for _, cand := range k.domain(target, ostopo.DomainNode) {
		if !t.allowed(cand) {
			continue
		}
		cc := k.cores[cand]
		if !cc.idle() {
			continue
		}
		if k.P.AvoidDeepIdleWake && cc.deepIdle(now) {
			k.Stats.DeepIdleSkips++
			continue
		}
		wholeIdle := true
		if sib, ok := k.Topo.Sibling(cand); ok && !k.cores[sib].idle() {
			wholeIdle = false
		}
		if pick < 0 || (wholeIdle && !pickWholeIdle) {
			pick, pickWholeIdle = cand, wholeIdle
		}
		if pickWholeIdle {
			break
		}
	}
	if pick >= 0 {
		k.Stats.WakesToIdleCore++
		return pick
	}
	if target == prev {
		k.Stats.WakesToPrev++
	}
	return target
}

// newIdleBalance runs when a core is about to go idle: it pulls one
// runnable thread from the busiest overloaded core, same node first, and
// dispatches it (afterPull) so the migrated thread never waits for an
// unrelated event.
func (k *Kernel) newIdleBalance(c *core) bool {
	now := k.Sim.Now()
	for _, lvl := range []ostopo.DomainLevel{ostopo.DomainNode, ostopo.DomainSystem} {
		if src := k.busiest(c, lvl, 2); src != nil {
			if t := k.pullOne(src, c, now); t != nil {
				k.Stats.NewIdlePulls++
				if k.etr != nil {
					k.etr.Emit(evtrace.Event{Kind: evtrace.KNewIdlePull, At: int64(now),
						Core: int32(c.id), TID: int32(t.ID), Name: t.Name,
						Arg1: int64(src.id), Arg2: int64(lvl)})
				}
				k.afterPull(c)
				return true
			}
		}
	}
	return false
}

// afterPull is the single post-pull dispatch point shared by both balance
// paths: a destination core that was idle dispatches the pulled thread
// immediately; a busy one only reprograms its timer (the pull changed its
// queue occupancy and hence its slice length). Without this, a thread
// migrated to an idle core would sit runnable until some unrelated event
// happened to call pickNext there.
func (k *Kernel) afterPull(dst *core) {
	if dst.curr == nil {
		dst.pickNext()
	} else {
		dst.reprogram()
	}
}

// busiest returns the most loaded core in c's lvl domain with at least
// minLoad runnable threads, or nil.
func (k *Kernel) busiest(c *core, lvl ostopo.DomainLevel, minLoad int) *core {
	var best *core
	for _, id := range k.domain(c.id, lvl) {
		cc := k.cores[id]
		if cc.load() >= minLoad && (best == nil || cc.load() > best.load()) {
			best = cc
		}
	}
	return best
}

// pullOne migrates one eligible queued (not running, not cache-hot,
// affinity-permitting) thread from src to dst, returning the migrated
// thread or nil. The caller must follow a successful pull with afterPull.
func (k *Kernel) pullOne(src, dst *core, now simkit.Time) *Thread {
	var best *Thread
	for _, t := range src.rq {
		if !t.allowed(dst.id) {
			continue
		}
		if now-t.lastRanAt < k.P.MigrationCost && t.lastRanAt > 0 {
			continue // cache hot
		}
		if best == nil || t.seq < best.seq {
			best = t
		}
	}
	if best == nil {
		return nil
	}
	src.remove(best)
	src.reprogram()
	best.vruntime = best.vruntime - src.minVr + dst.minVr
	best.Migrations++
	dst.push(best)
	return best
}

// balanceLevels lists the domain levels a topology actually has.
func (k *Kernel) balanceLevels() []ostopo.DomainLevel {
	lvls := []ostopo.DomainLevel{ostopo.DomainNode, ostopo.DomainSystem}
	if k.Topo.SMTWays == 2 {
		lvls = append([]ostopo.DomainLevel{ostopo.DomainSMT}, lvls...)
	}
	return lvls
}

func (k *Kernel) balanceInterval(lvl ostopo.DomainLevel) simkit.Time {
	switch lvl {
	case ostopo.DomainSMT:
		return k.P.BalanceIntervalSMT
	case ostopo.DomainNode:
		return k.P.BalanceIntervalNode
	default:
		return k.P.BalanceIntervalSystem
	}
}

// balancer is one recurring per-core, per-level balance timer. It owns a
// single prebuilt callback (fire) so that rearming each period does not
// allocate a new closure.
type balancer struct {
	k     *Kernel
	c     *core
	lvl   ostopo.DomainLevel
	every simkit.Time
	fire  func()
}

func (b *balancer) run() {
	if b.k.shutdown {
		return
	}
	b.k.periodicBalance(b.c, b.lvl)
	b.k.schedBalance(b, b.k.Sim.Now()+b.every)
}

// startPeriodicBalance arms the recurring per-core balance timers, staggered
// per core so they do not all fire at the same instant.
func (k *Kernel) startPeriodicBalance() {
	for _, c := range k.cores {
		for _, lvl := range k.balanceLevels() {
			every := k.balanceInterval(lvl)
			if every <= 0 {
				continue
			}
			b := &balancer{k: k, c: c, lvl: lvl, every: every}
			b.fire = b.run
			k.balancers = append(k.balancers, b)
			stagger := simkit.Time(int64(c.id)) * 17 * simkit.Microsecond
			k.schedBalance(b, every+stagger)
		}
	}
}

func (k *Kernel) schedBalance(b *balancer, at simkit.Time) {
	ev := k.Sim.At(at, b.fire)
	k.balEvents = append(k.balEvents, ev)
	// Keep the cancel list from growing without bound: drop fired events.
	if len(k.balEvents) > 4*len(k.cores)*3 {
		live := k.balEvents[:0]
		for _, e := range k.balEvents {
			if e.Pending() {
				live = append(live, e)
			}
		}
		k.balEvents = live
	}
}

// periodicBalance pulls toward c from the busiest core in the domain when
// the imbalance is at least two runnable threads.
func (k *Kernel) periodicBalance(c *core, lvl ostopo.DomainLevel) {
	src := k.busiest(c, lvl, c.load()+2)
	if src == nil {
		return
	}
	if t := k.pullOne(src, c, k.Sim.Now()); t != nil {
		k.Stats.PeriodicPulls++
		if k.etr != nil {
			k.etr.Emit(evtrace.Event{Kind: evtrace.KPeriodicPull, At: int64(k.Sim.Now()),
				Core: int32(c.id), TID: int32(t.ID), Name: t.Name,
				Arg1: int64(src.id), Arg2: int64(lvl)})
		}
		k.afterPull(c)
	}
}
