package cfs

import (
	"testing"

	"repro/internal/simkit"
)

// forged builds a trace from raw segments (Window never touches Thread).
func forged(segs ...Segment) *Trace {
	tr := NewTrace()
	tr.Segments = segs
	return tr
}

func TestWindowClipsToBounds(t *testing.T) {
	tr := forged(
		Segment{Core: 0, Start: 0, End: 10},  // straddles the left edge
		Segment{Core: 0, Start: 10, End: 20}, // straddles the right edge
		Segment{Core: 1, Start: 12, End: 14}, // fully inside
		Segment{Core: 2, Start: 20, End: 30}, // fully after
		Segment{Core: 3, Start: 0, End: 8},   // fully before
		Segment{Core: 4, Start: 15, End: -1}, // still open
		Segment{Core: 5, Start: 4, End: -1},  // open, starts before the window
	)
	got := tr.Window(8, 18)
	want := []Segment{
		{Core: 0, Start: 8, End: 10},
		{Core: 0, Start: 10, End: 18},
		{Core: 1, Start: 12, End: 14},
		{Core: 4, Start: 15, End: 18},
		{Core: 5, Start: 8, End: 18},
	}
	if len(got) != len(want) {
		t.Fatalf("Window returned %d segments, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i].Core != w.Core || got[i].Start != w.Start || got[i].End != w.End {
			t.Errorf("segment %d = {core %d, %v..%v}, want {core %d, %v..%v}",
				i, got[i].Core, got[i].Start, got[i].End, w.Core, w.Start, w.End)
		}
	}
	// Clipping must not mutate the recorded segments.
	if tr.Segments[0].End != 10 || tr.Segments[5].End != -1 {
		t.Error("Window mutated the underlying trace")
	}
}

func TestWindowDegenerate(t *testing.T) {
	tr := forged(Segment{Core: 0, Start: 0, End: 10})
	if got := tr.Window(5, 5); got != nil {
		t.Errorf("zero-length window returned %+v, want nil", got)
	}
	if got := tr.Window(7, 3); got != nil {
		t.Errorf("inverted window returned %+v, want nil", got)
	}
	// A zero-length segment clips away entirely.
	tr = forged(Segment{Core: 0, Start: 4, End: 4})
	if got := tr.Window(0, 10); got != nil {
		t.Errorf("zero-length segment survived clipping: %+v", got)
	}
	// An open segment starting exactly at the right edge is excluded
	// ([from, to) is half-open).
	tr = forged(Segment{Core: 0, Start: 10, End: -1})
	if got := tr.Window(0, 10); got != nil {
		t.Errorf("segment at the window edge survived: %+v", got)
	}
	// Empty trace.
	if got := NewTrace().Window(0, 10); got != nil {
		t.Errorf("empty trace returned %+v, want nil", got)
	}
}

func TestBusyTimeCountsClosedOnce(t *testing.T) {
	th := &Thread{}
	tr := NewTrace()
	tr.onDispatch(0, th, 0)
	tr.onDeschedule(0, 10)
	tr.onDispatch(1, th, 20)
	// The open segment is excluded until closed.
	if got := tr.BusyTime(th); got != 10 {
		t.Errorf("BusyTime with open segment = %v, want 10", got)
	}
	tr.CloseOpen(25)
	if got := tr.BusyTime(th); got != 15 {
		t.Errorf("BusyTime after CloseOpen = %v, want 15", got)
	}
	// CloseOpen is idempotent: a second call must not re-close (and
	// thereby extend) already-closed segments.
	tr.CloseOpen(simkit.Time(100))
	if got := tr.BusyTime(th); got != 15 {
		t.Errorf("BusyTime after second CloseOpen = %v, want 15 (double-counted?)", got)
	}
}
