package cfs

import "repro/internal/simkit"

// Batcher coalesces fine-grained compute charges into chunked Compute
// requests, so a simulated thread yields to the scheduler once per chunk
// (one scheduling decision) instead of once per cost increment. Every
// Compute is a full coroutine round trip plus a kernel timer event, so for
// bodies that account work in nanosecond-scale increments (a GC thread
// charging per object copied, per reference scanned) batching is the
// difference between one event per increment and one event per chunk.
//
// The chunk size also bounds how long the thread runs without a scheduling
// point, which keeps preemption and work stealing interleaving at a
// realistic granularity: callers pick the chunk to match the modeled
// system's natural quantum (e.g. the GC engine's ChunkWork calibration).
//
// Charges are deferred, so between a Charge and the flush that submits it
// the simulated clock has not advanced past the charged work. Callers that
// need exact time accounting around a block of work must Flush first.
type Batcher struct {
	env   *Env
	acc   simkit.Time
	chunk simkit.Time // flush threshold; must be positive
}

// NewBatcher creates a batcher submitting to e in chunks of at least chunk.
func NewBatcher(e *Env, chunk simkit.Time) Batcher {
	return Batcher{env: e, chunk: chunk}
}

// Env returns the environment the batcher submits to.
func (b *Batcher) Env() *Env { return b.env }

// Charge accrues d nanoseconds of compute work, yielding to the scheduler
// once the accumulated work reaches the chunk size.
func (b *Batcher) Charge(d simkit.Time) {
	b.acc += d
	if b.acc >= b.chunk {
		b.env.Compute(b.acc)
		b.acc = 0
	}
}

// Flush submits any accrued work immediately.
func (b *Batcher) Flush() {
	if b.acc > 0 {
		b.env.Compute(b.acc)
		b.acc = 0
	}
}
