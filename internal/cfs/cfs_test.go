package cfs

import (
	"testing"

	"repro/internal/ostopo"
	"repro/internal/simkit"
)

const (
	us = simkit.Microsecond
	ms = simkit.Millisecond
)

// newTestKernel builds a kernel on a small SMT-less machine.
func newTestKernel(t *testing.T, cores int, seed int64) (*simkit.Sim, *Kernel) {
	t.Helper()
	sim := simkit.New(seed)
	t.Cleanup(sim.Close)
	// A well-formed kernel model never schedules into the past; a nonzero
	// clamp count means some path computed a stale deadline.
	t.Cleanup(func() {
		if n := sim.Clamped(); n != 0 {
			t.Errorf("simulation clamped %d past-scheduled events, want 0", n)
		}
	})
	topo := &ostopo.Topology{PhysCores: cores, SMTWays: 1, Nodes: 1}
	return sim, NewKernel(sim, topo, DefaultParams())
}

// drain runs the simulation until all listed threads are done (or the time
// cap passes, which fails the test).
func drain(t *testing.T, sim *simkit.Sim, k *Kernel, cap simkit.Time, threads ...*Thread) {
	t.Helper()
	for sim.Now() < cap {
		alive := false
		for _, th := range threads {
			if th.State() != StateDone {
				alive = true
				break
			}
		}
		if !alive {
			return
		}
		if !sim.Step() {
			break
		}
	}
	for _, th := range threads {
		if th.State() != StateDone {
			t.Fatalf("thread %s not done at %v (state %v)", th.Name, sim.Now(), th.State())
		}
	}
}

func TestSingleThreadCompute(t *testing.T) {
	sim, k := newTestKernel(t, 2, 1)
	var end simkit.Time
	th := k.Spawn("worker", 0, func(e *Env) {
		e.Compute(5 * ms)
		end = e.Now()
	})
	drain(t, sim, k, simkit.Second, th)
	if end < 5*ms || end > 5*ms+100*us {
		t.Errorf("5ms of work finished at %v, want ~5ms", end)
	}
	if th.CPUTime < 5*ms {
		t.Errorf("CPUTime = %v, want >= 5ms", th.CPUTime)
	}
}

func TestTwoThreadsShareOneCore(t *testing.T) {
	sim, k := newTestKernel(t, 1, 1)
	var endA, endB simkit.Time
	a := k.Spawn("a", 0, func(e *Env) { e.Compute(30 * ms); endA = e.Now() })
	b := k.Spawn("b", 0, func(e *Env) { e.Compute(30 * ms); endB = e.Now() })
	drain(t, sim, k, simkit.Second, a, b)
	// 60ms total work on one core: both finish near 60ms, interleaved
	// (30ms exceeds the 12ms slice, so slicing must kick in).
	last := endA
	if endB > last {
		last = endB
	}
	if last < 60*ms || last > 61*ms {
		t.Errorf("combined completion at %v, want ~60ms", last)
	}
	first := endA
	if endB < first {
		first = endB
	}
	if first > 55*ms {
		t.Errorf("first completion at %v; threads did not interleave", first)
	}
	if k.Stats.Preemptions == 0 {
		t.Error("expected slice preemptions when sharing a core")
	}
}

func TestThreadsRunInParallelOnSeparateCores(t *testing.T) {
	sim, k := newTestKernel(t, 4, 1)
	var ends [4]simkit.Time
	var ths []*Thread
	for i := 0; i < 4; i++ {
		i := i
		ths = append(ths, k.Spawn("w", ostopo.CoreID(i), func(e *Env) {
			e.Compute(10 * ms)
			ends[i] = e.Now()
		}))
	}
	drain(t, sim, k, simkit.Second, ths...)
	for i, end := range ends {
		if end > 10*ms+100*us {
			t.Errorf("thread %d on own core finished at %v, want ~10ms", i, end)
		}
	}
}

func TestFairnessOnSharedCore(t *testing.T) {
	// Two infinite-ish workers on one core should accumulate similar CPU time.
	sim, k := newTestKernel(t, 1, 1)
	body := func(e *Env) {
		for i := 0; i < 1000; i++ {
			e.Compute(1 * ms)
		}
	}
	a := k.Spawn("a", 0, body)
	b := k.Spawn("b", 0, body)
	sim.RunUntil(200 * ms)
	diff := a.CPUTime - b.CPUTime
	if diff < 0 {
		diff = -diff
	}
	if diff > 30*ms {
		t.Errorf("unfair sharing: a=%v b=%v", a.CPUTime, b.CPUTime)
	}
	_ = a
	_ = b
}

func TestSleepDuration(t *testing.T) {
	sim, k := newTestKernel(t, 2, 1)
	var woke simkit.Time
	th := k.Spawn("sleeper", 0, func(e *Env) {
		e.Sleep(7 * ms)
		woke = e.Now()
	})
	drain(t, sim, k, simkit.Second, th)
	if woke < 7*ms || woke > 7*ms+200*us {
		t.Errorf("woke at %v, want ~7ms (+wake latency)", woke)
	}
}

func TestParkUnpark(t *testing.T) {
	sim, k := newTestKernel(t, 2, 1)
	var waiter *Thread
	var wokeAt simkit.Time
	waiter = k.Spawn("waiter", 0, func(e *Env) {
		e.Park()
		wokeAt = e.Now()
	})
	signaler := k.Spawn("signaler", 1, func(e *Env) {
		e.Compute(5 * ms)
		e.Kernel().Unpark(waiter)
	})
	drain(t, sim, k, simkit.Second, waiter, signaler)
	if wokeAt < 5*ms {
		t.Errorf("waiter woke at %v before unpark at 5ms", wokeAt)
	}
}

func TestUnparkPermitBeforePark(t *testing.T) {
	sim, k := newTestKernel(t, 2, 1)
	var target *Thread
	var order []string
	target = k.Spawn("target", 0, func(e *Env) {
		e.Compute(10 * ms) // still running when the permit arrives
		order = append(order, "pre-park")
		e.Park() // must not block: permit stored
		order = append(order, "post-park")
	})
	sig := k.Spawn("sig", 1, func(e *Env) {
		e.Compute(1 * ms)
		e.Kernel().Unpark(target) // target is running, not parked
	})
	drain(t, sim, k, simkit.Second, target, sig)
	if len(order) != 2 || order[1] != "post-park" {
		t.Fatalf("park with stored permit blocked: %v", order)
	}
}

func TestYieldCPU(t *testing.T) {
	sim, k := newTestKernel(t, 1, 1)
	var order []string
	a := k.Spawn("a", 0, func(e *Env) {
		e.Compute(1 * ms)
		order = append(order, "a1")
		e.YieldCPU()
		order = append(order, "a2")
	})
	b := k.Spawn("b", 0, func(e *Env) {
		e.Compute(1 * ms)
		order = append(order, "b1")
	})
	drain(t, sim, k, simkit.Second, a, b)
	// After a yields, b should get the core before a2.
	want := map[string]bool{"a1 b1 a2": true, "b1 a1 a2": true}
	got := order[0] + " " + order[1] + " " + order[2]
	if !want[got] {
		t.Errorf("order %q not a valid yield interleaving", got)
	}
}

func TestSetAffinityMigrates(t *testing.T) {
	sim, k := newTestKernel(t, 4, 1)
	var coreAfter ostopo.CoreID
	th := k.Spawn("bound", 0, func(e *Env) {
		e.Compute(1 * ms)
		e.SetAffinity(3)
		e.Compute(1 * ms)
		coreAfter = e.Core()
	})
	drain(t, sim, k, simkit.Second, th)
	if coreAfter != 3 {
		t.Errorf("after SetAffinity(3) thread ran on core %d", coreAfter)
	}
	if th.Migrations == 0 {
		t.Error("no migration recorded")
	}
}

func TestAffinityKeepsThreadOnCore(t *testing.T) {
	// A bound thread must not be pulled away by balancing even when its
	// core is overloaded.
	sim, k := newTestKernel(t, 2, 1)
	var ths []*Thread
	for i := 0; i < 3; i++ {
		th := k.Spawn("bound", 0, func(e *Env) {
			e.SetAffinity(0)
			for j := 0; j < 50; j++ {
				e.Compute(1 * ms)
				if e.Core() != 0 {
					t.Errorf("bound thread migrated to core %d", e.Core())
				}
			}
		})
		ths = append(ths, th)
	}
	drain(t, sim, k, 2*simkit.Second, ths...)
}

func TestNewIdleBalancePullsWork(t *testing.T) {
	sim, k := newTestKernel(t, 2, 1)
	// Three long workers spawned on core 0; core 1 runs a short task then
	// goes idle and should pull one of them.
	var ths []*Thread
	for i := 0; i < 3; i++ {
		ths = append(ths, k.Spawn("w", 0, func(e *Env) { e.Compute(30 * ms) }))
	}
	short := k.Spawn("short", 1, func(e *Env) { e.Compute(1 * ms) })
	ths = append(ths, short)
	drain(t, sim, k, simkit.Second, ths...)
	if k.Stats.NewIdlePulls == 0 {
		t.Error("expected a new-idle pull from the overloaded core")
	}
	// 90ms of work over 2 cores: finish well before the serial 91ms.
	if sim.Now() > 70*ms {
		t.Errorf("finished at %v; balancing should beat serial 91ms substantially", sim.Now())
	}
}

func TestPeriodicBalance(t *testing.T) {
	// Workers stacked runnable on one core, nothing triggering new-idle on
	// the other cores (they never run anything): periodic balance must
	// eventually spread them.
	sim := simkit.New(3)
	defer sim.Close()
	topo := &ostopo.Topology{PhysCores: 4, SMTWays: 1, Nodes: 1}
	p := DefaultParams()
	k := NewKernel(sim, topo, p)
	var ths []*Thread
	for i := 0; i < 4; i++ {
		ths = append(ths, k.Spawn("w", 0, func(e *Env) {
			for j := 0; j < 400; j++ {
				e.Compute(1 * ms)
			}
		}))
	}
	sim.RunUntil(400 * ms)
	cores := map[ostopo.CoreID]bool{}
	for _, th := range ths {
		cores[th.Core()] = true
	}
	if len(cores) < 2 {
		t.Errorf("periodic balance never spread threads: all on %v", cores)
	}
	if k.Stats.PeriodicPulls+k.Stats.NewIdlePulls == 0 {
		t.Error("no balancing pulls recorded")
	}
}

func TestWakeupPreemptionFailsWhenBothJustWoke(t *testing.T) {
	// The paper's §3.2: the OnDeck thread cannot preempt the previous
	// owner because both just woke — their sleeper credits leave a
	// vruntime difference below the wakeup granularity.
	sim, k := newTestKernel(t, 1, 1)
	var owner, waiter *Thread
	var waiterRanAt simkit.Time
	waiter = k.Spawn("waiter", 0, func(e *Env) {
		e.Park()
		waiterRanAt = e.Now()
		e.Compute(100 * us)
	})
	owner = k.Spawn("owner", 0, func(e *Env) {
		e.Park() // wait to be woken so we carry sleeper credit too
		e.Compute(100 * us)
		e.Kernel().Unpark(waiter) // similar credit: no preemption
		e.Compute(5 * ms)         // waiter must wait for this
	})
	helper := k.Spawn("helper", 0, func(e *Env) {
		e.Compute(1 * ms)
		e.Kernel().Unpark(owner)
	})
	drain(t, sim, k, simkit.Second, waiter, owner, helper)
	if waiterRanAt < 6*ms {
		t.Errorf("waiter ran at %v; want blocked behind owner's 5ms (no preemption)", waiterRanAt)
	}
	if k.Stats.WakePreemptFailed == 0 {
		t.Error("expected a failed wakeup preemption")
	}
}

func TestWakeupPreemptsLongRunningHog(t *testing.T) {
	// A woken thread with full sleeper credit must preempt a CPU hog whose
	// vruntime has advanced far past it (the busy-loop interference case).
	sim, k := newTestKernel(t, 1, 1)
	var waiter *Thread
	var waiterRanAt simkit.Time
	waiter = k.Spawn("waiter", 0, func(e *Env) {
		e.Park()
		waiterRanAt = e.Now()
		e.Compute(100 * us)
	})
	hog := k.Spawn("hog", 0, func(e *Env) {
		e.Compute(8 * ms) // builds up vruntime
		e.Kernel().Unpark(waiter)
		e.Compute(8 * ms) // the waiter should NOT wait for this
	})
	drain(t, sim, k, simkit.Second, waiter, hog)
	if waiterRanAt > 9*ms {
		t.Errorf("waiter ran at %v; want immediate preemption of the hog near 8ms", waiterRanAt)
	}
	if k.Stats.WakePreemptions == 0 {
		t.Error("expected a successful wakeup preemption")
	}
}

func TestDeepIdleWakeLatency(t *testing.T) {
	sim, k := newTestKernel(t, 2, 1)
	var waiter *Thread
	var wokeAt simkit.Time
	waiter = k.Spawn("waiter", 1, func(e *Env) {
		e.Park() // parks immediately; core 1 goes deep idle
		wokeAt = e.Now()
	})
	sig := k.Spawn("sig", 0, func(e *Env) {
		e.Compute(10 * ms) // long past DeepIdleAfter
		e.Kernel().Unpark(waiter)
	})
	drain(t, sim, k, simkit.Second, waiter, sig)
	lat := wokeAt - 10*ms
	if lat < k.P.DeepIdleWakeLatency {
		t.Errorf("deep-idle wake latency %v, want >= %v", lat, k.P.DeepIdleWakeLatency)
	}
	if waiter.DeepWakes == 0 {
		t.Error("DeepWakes not counted")
	}
}

func TestWakePlacementAvoidsDeepIdleCores(t *testing.T) {
	// The stacking mechanism: a wakee whose previous core is busy stays
	// there when every idle core is in a deep C-state.
	sim, k := newTestKernel(t, 4, 1)
	var waiter *Thread
	var wokeOn ostopo.CoreID = -1
	waiter = k.Spawn("waiter", 0, func(e *Env) {
		e.Park()
		wokeOn = e.Core()
		e.Compute(10 * us)
	})
	busy := k.Spawn("busy", 0, func(e *Env) {
		e.Compute(5 * ms) // cores 1-3 deep idle by now; core 0 busy
		e.Kernel().Unpark(waiter)
		e.Compute(5 * ms)
	})
	drain(t, sim, k, simkit.Second, waiter, busy)
	if wokeOn != 0 {
		t.Errorf("wakee placed on core %d; want stacked on busy core 0 (deep-idle avoidance)", wokeOn)
	}
	if k.Stats.DeepIdleSkips == 0 {
		t.Error("no deep-idle skips recorded")
	}
}

func TestWakePlacementUsesShallowIdleCore(t *testing.T) {
	// With a shallow-idle core available, the idle-sibling search uses it.
	sim, k := newTestKernel(t, 2, 1)
	var waiter *Thread
	var wokeOn ostopo.CoreID = -1
	waiter = k.Spawn("waiter", 0, func(e *Env) {
		e.Park()
		wokeOn = e.Core()
		e.Compute(10 * us)
	})
	// keeper keeps core 1 out of deep idle with tiny sleep/compute pulses.
	keeper := k.Spawn("keeper", 1, func(e *Env) {
		for i := 0; i < 200; i++ {
			e.Compute(50 * us)
			e.Sleep(100 * us)
		}
	})
	busy := k.Spawn("busy", 0, func(e *Env) {
		e.Compute(5 * ms)
		e.Kernel().Unpark(waiter)
		e.Compute(2 * ms)
	})
	drain(t, sim, k, simkit.Second, waiter, busy)
	_ = keeper
	if wokeOn != 1 {
		t.Errorf("wakee placed on core %d; want shallow-idle core 1", wokeOn)
	}
}

func TestSMTSlowdown(t *testing.T) {
	sim := simkit.New(5)
	defer sim.Close()
	topo := &ostopo.Topology{PhysCores: 2, SMTWays: 2, Nodes: 1}
	k := NewKernel(sim, topo, DefaultParams())
	// Two threads on sibling hyperthreads 0 and 2 (phys core 0).
	var endA, endB simkit.Time
	a := k.Spawn("a", 0, func(e *Env) { e.Compute(10 * ms); endA = e.Now() })
	b := k.Spawn("b", 2, func(e *Env) { e.Compute(10 * ms); endB = e.Now() })
	drain(t, sim, k, simkit.Second, a, b)
	// At 0.65 speed each, 10ms of work takes ~15.4ms.
	if endA < 14*ms || endB < 14*ms {
		t.Errorf("SMT siblings finished at %v/%v; want ~15.4ms each", endA, endB)
	}
	if endA > 17*ms || endB > 17*ms {
		t.Errorf("SMT siblings finished at %v/%v; too slow", endA, endB)
	}
}

func TestSMTSpeedRecoversWhenSiblingIdles(t *testing.T) {
	sim := simkit.New(5)
	defer sim.Close()
	topo := &ostopo.Topology{PhysCores: 1, SMTWays: 2, Nodes: 1}
	k := NewKernel(sim, topo, DefaultParams())
	var endA simkit.Time
	a := k.Spawn("a", 0, func(e *Env) { e.Compute(10 * ms); endA = e.Now() })
	b := k.Spawn("b", 1, func(e *Env) { e.Compute(2 * ms) })
	drain(t, sim, k, simkit.Second, a, b)
	// a runs ~2ms (wall ~3.1ms) contended, the rest at full speed:
	// expected ≈ 3.08 + 8 = 11.1ms; allow slack.
	if endA < 10*ms+500*us || endA > 13*ms {
		t.Errorf("a finished at %v; want ~11.1ms (slowdown then recovery)", endA)
	}
}

func TestCoreLoadsBlockedVisibility(t *testing.T) {
	sim, k := newTestKernel(t, 2, 1)
	ths := make([]*Thread, 3)
	for i := range ths {
		ths[i] = k.Spawn("p", 0, func(e *Env) { e.Park() })
	}
	runner := k.Spawn("r", 1, func(e *Env) { e.Compute(2 * ms) })
	sim.RunUntil(1 * ms)
	loads := k.CoreLoads()
	if loads[0] != 0 {
		t.Errorf("vanilla load on core 0 = %v; blocked threads must be invisible", loads[0])
	}
	k.P.LoadAvgCountsBlocked = true
	loads = k.CoreLoads()
	want := 3 * k.P.BlockedLoadWeight
	if loads[0] < want-1e-9 || loads[0] > want+1e-9 {
		t.Errorf("fixed load on core 0 = %v, want %v (3 blocked residents)", loads[0], want)
	}
	for _, th := range ths {
		k.Unpark(th)
	}
	drain(t, sim, k, simkit.Second, append(ths, runner)...)
}

func TestDeterminism(t *testing.T) {
	run := func() (simkit.Time, int) {
		sim := simkit.New(99)
		defer sim.Close()
		topo := &ostopo.Topology{PhysCores: 4, SMTWays: 1, Nodes: 2}
		k := NewKernel(sim, topo, DefaultParams())
		var ths []*Thread
		for i := 0; i < 8; i++ {
			d := simkit.Time(i+1) * ms
			ths = append(ths, k.Spawn("w", ostopo.CoreID(i%2), func(e *Env) {
				for j := 0; j < 20; j++ {
					e.Compute(d / 4)
					e.Sleep(d / 8)
				}
			}))
		}
		for {
			done := true
			for _, th := range ths {
				if th.State() != StateDone {
					done = false
				}
			}
			if done || !sim.Step() {
				break
			}
		}
		return sim.Now(), k.Stats.Preemptions + k.Stats.NewIdlePulls + k.Stats.PeriodicPulls
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Errorf("non-deterministic: (%v,%d) vs (%v,%d)", t1, s1, t2, s2)
	}
}

func TestShutdownDrainsSimulator(t *testing.T) {
	sim, k := newTestKernel(t, 2, 1)
	th := k.Spawn("w", 0, func(e *Env) { e.Compute(1 * ms) })
	drain(t, sim, k, simkit.Second, th)
	k.Shutdown()
	// After shutdown, the event queue must drain completely.
	for i := 0; i < 1000 && sim.Step(); i++ {
	}
	if sim.Step() {
		t.Error("events still pending after Shutdown")
	}
}

func TestSpawnedThreadsStackOnOneCore(t *testing.T) {
	// §3.2: threads spawned on one core that immediately block stay there.
	sim, k := newTestKernel(t, 8, 1)
	var ths []*Thread
	for i := 0; i < 6; i++ {
		ths = append(ths, k.Spawn("gc", 2, func(e *Env) { e.Park() }))
	}
	sim.RunUntil(50 * ms)
	for _, th := range ths {
		if th.Core() != 2 {
			t.Errorf("blocked thread migrated to core %d; blocked threads must be invisible to balancing", th.Core())
		}
		if th.State() != StateBlocked {
			t.Errorf("thread state %v, want blocked", th.State())
		}
	}
	for _, th := range ths {
		k.Unpark(th)
	}
	drain(t, sim, k, simkit.Second, ths...)
}

func TestMigrationRenormalizesVruntime(t *testing.T) {
	// A thread migrating from a long-running core to a fresh core must not
	// monopolize or starve: rough completion-time sanity.
	sim, k := newTestKernel(t, 2, 1)
	long := k.Spawn("long", 0, func(e *Env) {
		for i := 0; i < 100; i++ {
			e.Compute(1 * ms)
		}
	})
	var ths []*Thread
	for i := 0; i < 2; i++ {
		ths = append(ths, k.Spawn("w", 0, func(e *Env) {
			for j := 0; j < 50; j++ {
				e.Compute(1 * ms)
			}
		}))
	}
	// A short task on core 1 makes it go through pickNext and trigger
	// new-idle balancing (a core that never dispatches stays out of the
	// new-idle path, like a CPU that never left its boot-idle loop).
	ths = append(ths, k.Spawn("starter", 1, func(e *Env) { e.Compute(100 * us) }))
	drain(t, sim, k, simkit.Second, append(ths, long)...)
	// 200ms work on 2 cores => ~100ms; generous bound checks no livelock.
	if sim.Now() > 160*ms {
		t.Errorf("finished at %v, suggests starvation after migration", sim.Now())
	}
}

// TestNoThreadStrandedAfterPull is the regression test for the unified
// post-pull dispatch (afterPull): after every event, a core with queued
// runnable threads must be executing one of them. Before the balance paths
// shared afterPull, a new-idle pull could leave the migrated thread sitting
// runnable on the idle destination core until an unrelated event happened
// to call pickNext there — exactly the stranded schedule this walks into:
// long workers stacked on core 0, core 1 going idle and pulling.
func TestNoThreadStrandedAfterPull(t *testing.T) {
	sim, k := newTestKernel(t, 2, 5)
	var ths []*Thread
	for i := 0; i < 3; i++ {
		ths = append(ths, k.Spawn("w", 0, func(e *Env) { e.Compute(30 * ms) }))
	}
	// Core 1 idles after 1ms, forcing the new-idle path; the short cycle of
	// sleeps re-enters idle repeatedly so the pull happens under several
	// different queue shapes.
	ths = append(ths, k.Spawn("blinker", 1, func(e *Env) {
		for i := 0; i < 5; i++ {
			e.Compute(200 * us)
			e.Sleep(1 * ms)
		}
	}))
	deadline := simkit.Time(simkit.Second)
	for sim.Now() < deadline {
		alive := false
		for _, th := range ths {
			if th.State() != StateDone {
				alive = true
			}
		}
		if !alive {
			break
		}
		if !sim.Step() {
			break
		}
		// The stranded-thread assertion: between events, a non-empty
		// runqueue implies a dispatched current thread.
		for _, c := range k.cores {
			if c.curr == nil && len(c.rq) > 0 {
				t.Fatalf("t=%v: core %d stranded %d runnable thread(s) with no current",
					sim.Now(), c.id, len(c.rq))
			}
		}
	}
	if k.Stats.NewIdlePulls == 0 {
		t.Error("scenario never exercised the new-idle pull path")
	}
	for _, th := range ths {
		if th.State() != StateDone {
			t.Fatalf("thread %s not done at %v", th.Name, sim.Now())
		}
	}
}
