package cfs

import (
	"reflect"
	"testing"

	"repro/internal/evtrace"
	"repro/internal/ostopo"
	"repro/internal/simkit"
)

// planScenario builds a one-node machine, spawns a worker whose compute
// work is issued by issue, optionally spawns a competitor on the same core
// to force preemption mid-plan, runs to completion, and returns the
// observables that must not depend on how the work was issued.
type planResult struct {
	events  []evtrace.Event
	fired   uint64
	end     simkit.Time
	cpu     simkit.Time
	vrun    simkit.Time
	stats   KernelStats
	compCPU simkit.Time
}

func planScenario(t *testing.T, competitor bool, issue func(e *Env)) planResult {
	t.Helper()
	sim := simkit.New(7)
	t.Cleanup(sim.Close)
	topo := &ostopo.Topology{PhysCores: 2, SMTWays: 1, Nodes: 1}
	tr := evtrace.New(1 << 18)
	sim.SetTracer(tr)
	k := NewKernel(sim, topo, DefaultParams())
	k.SetEvTracer(tr)

	var end simkit.Time
	worker := k.Spawn("worker", 0, func(e *Env) {
		e.SetAffinity(0)
		issue(e)
		end = e.Now()
	})
	threads := []*Thread{worker}
	var comp *Thread
	if competitor {
		comp = k.Spawn("rival", 0, func(e *Env) {
			e.SetAffinity(0)
			for i := 0; i < 40; i++ {
				e.Compute(3 * ms)
				e.Sleep(2 * ms)
			}
		})
		threads = append(threads, comp)
	}
	drain(t, sim, k, simkit.Time(60)*simkit.Second, threads...)
	k.Shutdown()

	res := planResult{
		events: append([]evtrace.Event(nil), tr.Events()...),
		fired:  sim.Fired(),
		end:    end,
		cpu:    worker.CPUTime,
		vrun:   worker.vruntime,
		stats:  k.Stats,
	}
	if comp != nil {
		res.compCPU = comp.CPUTime
	}
	return res
}

// TestComputePlanElidesResumes is the tentpole's contract: issuing N
// identical slices as one ComputeN plan must leave every simulation
// observable — the fired-event stream, virtual end time, CPU accounting —
// byte-identical to N sequential Compute calls, while resuming the body
// far fewer times.
func TestComputePlanElidesResumes(t *testing.T) {
	const n = 200
	const slice = 1 * ms
	for _, tc := range []struct {
		name       string
		competitor bool
	}{
		{"uncontended", false},
		{"preempted-mid-plan", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			loop := planScenario(t, tc.competitor, func(e *Env) {
				for i := 0; i < n; i++ {
					e.Compute(slice)
				}
			})
			plan := planScenario(t, tc.competitor, func(e *Env) {
				e.ComputeN(slice, n)
			})

			if loop.end != plan.end {
				t.Errorf("end time diverged: loop %v, plan %v", loop.end, plan.end)
			}
			if loop.cpu != plan.cpu || loop.vrun != plan.vrun {
				t.Errorf("accounting diverged: loop cpu=%v vrun=%v, plan cpu=%v vrun=%v",
					loop.cpu, loop.vrun, plan.cpu, plan.vrun)
			}
			if loop.compCPU != plan.compCPU {
				t.Errorf("competitor CPU diverged: loop %v, plan %v", loop.compCPU, plan.compCPU)
			}
			if loop.fired != plan.fired {
				t.Errorf("fired-event count diverged: loop %d, plan %d", loop.fired, plan.fired)
			}
			if !reflect.DeepEqual(loop.events, plan.events) {
				i := 0
				for i < len(loop.events) && i < len(plan.events) &&
					loop.events[i] == plan.events[i] {
					i++
				}
				t.Fatalf("event streams diverged at index %d of %d/%d:\nloop: %+v\nplan: %+v",
					i, len(loop.events), len(plan.events),
					at(loop.events, i), at(plan.events, i))
			}

			if got := plan.stats.PlanElisions; got != n-1 {
				t.Errorf("PlanElisions = %d, want %d", got, n-1)
			}
			if loop.stats.PlanElisions != 0 {
				t.Errorf("loop run recorded %d PlanElisions, want 0", loop.stats.PlanElisions)
			}
			// The loop body resumes at least once per slice; the plan body
			// resumes a constant handful of times regardless of n.
			if loop.stats.BodyResumes < n {
				t.Errorf("loop BodyResumes = %d, want >= %d", loop.stats.BodyResumes, n)
			}
			if plan.stats.BodyResumes > loop.stats.BodyResumes-(n-1) {
				t.Errorf("plan BodyResumes = %d, want <= %d (loop %d minus %d elided)",
					plan.stats.BodyResumes, loop.stats.BodyResumes-(n-1), loop.stats.BodyResumes, n-1)
			}
		})
	}
}

func at(evs []evtrace.Event, i int) any {
	if i < len(evs) {
		return evs[i]
	}
	return "<end of stream>"
}

// TestComputeForeverMatchesBusyLoop checks the endless-plan variant against
// the busy-loop idiom it replaces, using a finite thread sharing the core
// as the clock: when it finishes, both machines must agree on every
// observable, and the endless plan must not have resumed its body.
func TestComputeForeverMatchesBusyLoop(t *testing.T) {
	// planScenario drains until all listed threads are done, but an endless
	// body never finishes — drive on the competitor instead.
	scenario := func(t *testing.T, busy func(e *Env)) (planResult, simkit.Time) {
		t.Helper()
		sim := simkit.New(11)
		t.Cleanup(sim.Close)
		topo := &ostopo.Topology{PhysCores: 1, SMTWays: 1, Nodes: 1}
		tr := evtrace.New(1 << 18)
		sim.SetTracer(tr)
		k := NewKernel(sim, topo, DefaultParams())
		k.SetEvTracer(tr)
		looper := k.Spawn("busy", 0, busy)
		rival := k.Spawn("rival", 0, func(e *Env) {
			for i := 0; i < 25; i++ {
				e.Compute(4 * ms)
				e.Sleep(1 * ms)
			}
		})
		drain(t, sim, k, simkit.Time(10)*simkit.Second, rival)
		k.Shutdown()
		return planResult{
			events: append([]evtrace.Event(nil), tr.Events()...),
			fired:  sim.Fired(),
			cpu:    looper.CPUTime,
			vrun:   looper.vruntime,
			stats:  k.Stats,
		}, sim.Now()
	}

	loop, loopNow := scenario(t, func(e *Env) {
		for {
			e.Compute(1 * ms)
		}
	})
	plan, planNow := scenario(t, func(e *Env) {
		e.ComputeForever(1 * ms)
	})

	if loopNow != planNow {
		t.Errorf("final time diverged: loop %v, plan %v", loopNow, planNow)
	}
	if loop.cpu != plan.cpu || loop.vrun != plan.vrun {
		t.Errorf("accounting diverged: loop cpu=%v vrun=%v, plan cpu=%v vrun=%v",
			loop.cpu, loop.vrun, plan.cpu, plan.vrun)
	}
	if loop.fired != plan.fired {
		t.Errorf("fired-event count diverged: loop %d, plan %d", loop.fired, plan.fired)
	}
	if !reflect.DeepEqual(loop.events, plan.events) {
		t.Errorf("event streams diverged (%d vs %d events)", len(loop.events), len(plan.events))
	}
	if plan.stats.PlanElisions == 0 {
		t.Error("endless plan recorded no elisions")
	}
	// One resume starts the endless body; it never needs another.
	if d := loop.stats.BodyResumes - plan.stats.BodyResumes; d < 100 {
		t.Errorf("expected the endless plan to elide most resumes; loop=%d plan=%d",
			loop.stats.BodyResumes, plan.stats.BodyResumes)
	}
}

// TestComputePlanCallbackMatchesLoop checks the callback-plan form against
// the equivalent Compute loop: varying slice durations, zero-length slices
// (skipped like Compute(0)), and driver-side work between slices must leave
// every observable identical while eliding the per-slice resumes.
func TestComputePlanCallbackMatchesLoop(t *testing.T) {
	const n = 120
	slices := func(i int) simkit.Time {
		switch i % 4 {
		case 0:
			return 50 * simkit.Nanosecond
		case 1:
			return 0 // must be skipped, like Compute(0)
		case 2:
			return 2 * ms
		default:
			return 700 * simkit.Microsecond
		}
	}
	for _, tc := range []struct {
		name       string
		competitor bool
	}{
		{"uncontended", false},
		{"preempted-mid-plan", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var loopSum, planSum int64
			loop := planScenario(t, tc.competitor, func(e *Env) {
				for i := 0; i < n; i++ {
					loopSum += int64(i) // between-slice work
					e.Compute(slices(i))
				}
			})
			plan := planScenario(t, tc.competitor, func(e *Env) {
				i := 0
				e.ComputePlan(func() (simkit.Time, bool) {
					if i >= n {
						return 0, false
					}
					planSum += int64(i)
					d := slices(i)
					i++
					return d, true
				})
			})

			if loopSum != planSum {
				t.Errorf("between-slice work diverged: loop %d, plan %d", loopSum, planSum)
			}
			if loop.end != plan.end {
				t.Errorf("end time diverged: loop %v, plan %v", loop.end, plan.end)
			}
			if loop.cpu != plan.cpu || loop.vrun != plan.vrun {
				t.Errorf("accounting diverged: loop cpu=%v vrun=%v, plan cpu=%v vrun=%v",
					loop.cpu, loop.vrun, plan.cpu, plan.vrun)
			}
			if loop.compCPU != plan.compCPU {
				t.Errorf("competitor CPU diverged: loop %v, plan %v", loop.compCPU, plan.compCPU)
			}
			if loop.fired != plan.fired {
				t.Errorf("fired-event count diverged: loop %d, plan %d", loop.fired, plan.fired)
			}
			if !reflect.DeepEqual(loop.events, plan.events) {
				i := 0
				for i < len(loop.events) && i < len(plan.events) &&
					loop.events[i] == plan.events[i] {
					i++
				}
				t.Fatalf("event streams diverged at index %d of %d/%d:\nloop: %+v\nplan: %+v",
					i, len(loop.events), len(plan.events),
					at(loop.events, i), at(plan.events, i))
			}
			// 90 positive slices; all but the first elide a resume.
			if got := plan.stats.BurstElisions; got != 89 {
				t.Errorf("BurstElisions = %d, want 89", got)
			}
			if loop.stats.BurstElisions != 0 {
				t.Errorf("loop run recorded %d BurstElisions, want 0", loop.stats.BurstElisions)
			}
		})
	}
}
