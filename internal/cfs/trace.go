package cfs

import (
	"repro/internal/ostopo"
	"repro/internal/simkit"
)

// Segment is one contiguous stretch of a thread running on a core.
type Segment struct {
	Core   ostopo.CoreID
	Thread *Thread
	Start  simkit.Time
	End    simkit.Time
}

// Trace records per-core execution segments. Enable it with
// Kernel.SetTrace before spawning threads; the overhead is one append per
// dispatch. Traces power the scheduling-timeline visualization
// (internal/schedtrace) and the kernel's invariant tests.
type Trace struct {
	Segments []Segment
	open     map[ostopo.CoreID]int // core -> index of its open segment
}

// NewTrace creates an empty trace.
func NewTrace() *Trace {
	return &Trace{open: make(map[ostopo.CoreID]int)}
}

func (tr *Trace) onDispatch(c ostopo.CoreID, t *Thread, now simkit.Time) {
	tr.Segments = append(tr.Segments, Segment{Core: c, Thread: t, Start: now, End: -1})
	tr.open[c] = len(tr.Segments) - 1
}

func (tr *Trace) onDeschedule(c ostopo.CoreID, now simkit.Time) {
	if i, ok := tr.open[c]; ok {
		tr.Segments[i].End = now
		delete(tr.open, c)
	}
}

// CloseOpen ends all still-open segments at time now (call when the
// simulation stops mid-flight).
func (tr *Trace) CloseOpen(now simkit.Time) {
	for c, i := range tr.open {
		tr.Segments[i].End = now
		delete(tr.open, c)
	}
}

// Window returns copies of the segments overlapping [from, to), clipped
// to the window: starts are clamped to from, and ends — including the
// sentinel End of still-open segments — are clamped to to. An empty or
// inverted window returns nil, as do segments that clip to zero length,
// so callers can sum returned durations without re-clamping.
func (tr *Trace) Window(from, to simkit.Time) []Segment {
	if to <= from {
		return nil
	}
	var out []Segment
	for _, s := range tr.Segments {
		end := s.End
		if end < 0 || end > to {
			end = to
		}
		if s.Start < from {
			s.Start = from
		}
		if s.Start >= end {
			continue
		}
		s.End = end
		out = append(out, s)
	}
	return out
}

// BusyTime sums the recorded run time of a thread (equals the thread's
// CPUTime once all segments are closed).
func (tr *Trace) BusyTime(t *Thread) simkit.Time {
	var sum simkit.Time
	for _, s := range tr.Segments {
		if s.Thread == t && s.End >= 0 {
			sum += s.End - s.Start
		}
	}
	return sum
}

// SetTrace installs (or removes, with nil) a trace on the kernel.
func (k *Kernel) SetTrace(tr *Trace) { k.trace = tr }

// TraceOf returns the kernel's installed trace, if any.
func (k *Kernel) TraceOf() *Trace { return k.trace }
