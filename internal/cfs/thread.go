package cfs

import (
	"math/rand"

	"repro/internal/ostopo"
	"repro/internal/simkit"
)

// State is a simulated thread's scheduling state.
type State int

const (
	// StateRunnable means the thread is on a runqueue waiting for CPU.
	StateRunnable State = iota
	// StateRunning means the thread is current on some core.
	StateRunning
	// StateBlocked means the thread is parked or sleeping.
	StateBlocked
	// StateDone means the thread's body returned.
	StateDone
)

func (s State) String() string {
	switch s {
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateBlocked:
		return "blocked"
	case StateDone:
		return "done"
	}
	return "?"
}

// request is what a thread body yields to the kernel. It is a small value
// (not an interface) so that yielding never allocates: the old interface
// encoding boxed every reqCompute on the heap, one allocation per
// scheduling point.
//
// A compute request may carry a plan: n > 1 asks for n back-to-back slices
// of d nanoseconds each, and n < 0 for an endless supply of them. The
// kernel services the follow-on slices from the driver side — same timer
// events, same accounting, same preemption — without resuming the body
// between slices (see Kernel.onTimer), so a body that would yield N
// identical computes in a row pays one coroutine switch instead of N.
type request struct {
	d    simkit.Time // compute or sleep duration
	n    int32       // compute slice count: 0/1 single, >1 plan, <0 endless
	fn   PlanFn      // callback plan: produces follow-on slices driver-side
	kind reqKind
}

type reqKind uint8

const (
	reqCompute reqKind = iota
	reqSleep
	reqPark
	reqYield
	reqMigrate
)

// Thread is a simulated OS thread.
type Thread struct {
	ID   int
	Name string

	k    *Kernel
	coro *simkit.Coro[request]

	state State
	core  ostopo.CoreID // current core, or residence core while blocked
	seq   uint64        // runqueue tiebreak

	vruntime  simkit.Time
	remaining simkit.Time // work left in the current compute slice

	// Compute-plan state: when the current slice completes and planLeft is
	// non-zero, the kernel starts the next planSlice-long slice itself
	// instead of resuming the body (planLeft < 0 means endless). Preemption
	// and migration leave the plan intact; it resumes with the thread.
	// planFn is the callback form (ComputePlan): consulted for the next
	// slice each time one completes, until it reports the plan done.
	planSlice simkit.Time
	planLeft  int32
	planFn    PlanFn

	dispatchedAt simkit.Time // when the current stint on CPU began
	lastAccount  simkit.Time // last time CPU accounting ran for this thread
	lastRanAt    simkit.Time // last time it was descheduled (cache-hot test)

	affinity    []bool // nil = any core; else allowed mask by CoreID
	permit      bool   // LockSupport-style unpark permit
	parked      bool   // blocked via Park (vs Sleep)
	wakePending bool   // a wake event is in flight
	sleepEv     simkit.Event

	// Prebuilt event callbacks, allocated once at Spawn so the hot
	// sleep/wake/migrate paths never build closures. Each is safe to share
	// across uses because at most one instance is ever in flight per
	// thread: sleepFn via sleepEv, enqFn via the wakePending flag (wake
	// path) or the thread being off-queue (spawn and migrate paths).
	sleepFn   func()
	enqFn     func()
	enqTarget ostopo.CoreID // pending enqFn destination
	enqWake   bool          // pending enqFn is a wakeup

	// Statistics.
	CPUTime    simkit.Time
	Wakeups    int
	Migrations int
	DeepWakes  int
}

// State returns the thread's current scheduling state.
func (t *Thread) State() State { return t.state }

// Core returns the thread's current (or, while blocked, last) core.
func (t *Thread) Core() ostopo.CoreID { return t.core }

// allowed reports whether the thread may run on core c.
func (t *Thread) allowed(c ostopo.CoreID) bool {
	return t.affinity == nil || t.affinity[c]
}

// Env is the interface a thread body uses to interact with the simulated
// kernel. It is only valid inside the body it was created for.
type Env struct {
	T     *Thread
	yield func(request)
}

// Now returns the current virtual time.
func (e *Env) Now() simkit.Time { return e.T.k.Sim.Now() }

// Rand returns the simulation RNG.
func (e *Env) Rand() *rand.Rand { return e.T.k.Sim.Rand() }

// Kernel returns the kernel this thread runs on.
func (e *Env) Kernel() *Kernel { return e.T.k }

// Core returns the core the thread is currently running on.
func (e *Env) Core() ostopo.CoreID { return e.T.core }

// Compute consumes d nanoseconds of CPU work. The thread may be preempted
// and migrated while computing; Compute returns once the work is done.
func (e *Env) Compute(d simkit.Time) {
	if d <= 0 {
		return
	}
	e.yield(request{d: d, kind: reqCompute})
}

// ComputeN consumes n back-to-back slices of d nanoseconds of CPU work
// each. It is observably identical to calling Compute(d) n times in a row
// — the same timer events fire, the same vruntime is charged, preemption
// interleaves at the same slice boundaries — but the kernel services the
// follow-on slices itself, so the body pays one coroutine switch for the
// whole plan instead of one per slice. Use it when nothing needs to happen
// between the slices; a body that must observe state between slices (check
// a flag, take a lock) still calls Compute per slice.
func (e *Env) ComputeN(d simkit.Time, n int) {
	if d <= 0 || n <= 0 {
		return
	}
	e.yield(request{d: d, n: int32(n), kind: reqCompute})
}

// ComputeForever consumes d-nanosecond slices of CPU work until the end of
// the simulation; it never returns. It replaces the busy-loop idiom
// `for { e.Compute(d) }` with a single yield whose endless plan the kernel
// services driver-side — same slices, same preemption, no per-slice
// coroutine switch.
func (e *Env) ComputeForever(d simkit.Time) {
	if d <= 0 {
		panic("cfs: ComputeForever needs a positive slice")
	}
	e.yield(request{d: d, n: -1, kind: reqCompute})
	panic("cfs: ComputeForever resumed") // unreachable: only Stop unwinds it
}

// PlanFn produces the slices of a callback compute plan. Each call returns
// the next slice's duration and true, or false when the plan is finished.
// The kernel calls it from the driver side (inside the completion timer of
// the previous slice), so it runs at exactly the virtual time the body
// would have resumed at — it may therefore read and write simulation state
// (draw from the Sim RNG, take fast-path locks, allocate) exactly as the
// body would, but it must not block: anything that needs Park/Sleep/a
// contended lock ends the plan with false and lets the body take over.
// Slices must be positive; a non-positive duration is skipped and the plan
// is consulted again, mirroring how Compute treats d <= 0 as a no-op.
type PlanFn func() (simkit.Time, bool)

// ComputePlan runs a callback compute plan: fn is consulted for each slice
// in turn, and the kernel services the follow-on slices driver-side — the
// same timer events, vruntime accounting and preemption as the equivalent
// chain of Compute calls, without resuming the body between slices. It
// returns once fn reports the plan done. Use it when the work *between*
// slices is simple enough to run from the driver (bump a counter, check a
// flag, try an allocation); see ComputeN for the fixed-shape variant.
func (e *Env) ComputePlan(fn PlanFn) {
	for {
		d, ok := fn()
		if !ok {
			return
		}
		if d > 0 {
			e.yield(request{d: d, fn: fn, kind: reqCompute})
			return
		}
	}
}

// Sleep blocks the thread for d nanoseconds of virtual time.
func (e *Env) Sleep(d simkit.Time) {
	if d <= 0 {
		return
	}
	e.yield(request{d: d, kind: reqSleep})
}

// Park blocks the thread until another thread calls Kernel.Unpark on it.
// Like java.util.concurrent.LockSupport, an Unpark that arrives while the
// thread is not parked stores a permit that makes the next Park return
// immediately.
func (e *Env) Park() {
	if e.T.permit {
		e.T.permit = false
		return
	}
	e.yield(request{kind: reqPark})
}

// YieldCPU gives up the CPU (sched_yield). If other threads are runnable on
// this core, one of them is dispatched.
func (e *Env) YieldCPU() { e.yield(request{kind: reqYield}) }

// SetAffinity binds the thread to the given cores (empty clears the mask,
// allowing all cores). If the thread is currently on a disallowed core it
// migrates immediately.
func (e *Env) SetAffinity(cores ...ostopo.CoreID) {
	t := e.T
	if len(cores) == 0 {
		t.affinity = nil
		return
	}
	mask := make([]bool, t.k.Topo.NumCPUs())
	ok := false
	for _, c := range cores {
		if int(c) >= 0 && int(c) < len(mask) {
			mask[c] = true
			ok = true
		}
	}
	if !ok {
		return
	}
	t.affinity = mask
	if !t.allowed(t.core) {
		e.yield(request{kind: reqMigrate})
	}
}
