package cfs

import (
	"fmt"

	"repro/internal/evtrace"
	"repro/internal/ostopo"
	"repro/internal/simkit"
)

// Kernel is the simulated multicore OS: per-core CFS runqueues plus the
// load-balancing machinery in balance.go.
type Kernel struct {
	Sim  *simkit.Sim
	Topo *ostopo.Topology
	P    Params

	cores   []*core
	threads []*Thread
	nextTID int
	active  *Thread // thread whose body is currently executing, if any

	// doms caches Topo.Domain for every (level, core) pair: the balancer
	// and wake placement walk domains on every wake and idle transition,
	// and Topo.Domain builds a fresh slice per call.
	doms [3][][]ostopo.CoreID

	balEvents []simkit.Event
	balancers []*balancer
	shutdown  bool
	trace     *Trace
	etr       *evtrace.Tracer

	Stats KernelStats
}

// KernelStats aggregates scheduler-level counters across a run.
type KernelStats struct {
	Preemptions       int // slice expirations
	WakePreemptions   int // successful wakeup preemptions
	WakePreemptFailed int // wakeups that could not preempt the current thread
	NewIdlePulls      int
	PeriodicPulls     int
	WakesToPrev       int // wake placed on the thread's previous core
	WakesToIdleCore   int // wake placed on an idle core found by the sibling search
	DeepIdleSkips     int // idle cores skipped by wake placement because deep idle
	ContextSwitches   int
	BodyResumes       int // coroutine resumes (Coro.Next) across all threads
	PlanElisions      int // compute-plan slices serviced without resuming a body
	BurstElisions     int // callback-plan (ComputePlan) slices serviced driver-side
}

type timerKind int

const (
	timerComplete timerKind = iota
	timerSlice
	timerResched
)

type core struct {
	id ostopo.CoreID
	k  *Kernel

	rq   []*Thread
	curr *Thread

	timer     simkit.Event
	timerKind timerKind // kind of the pending timer event
	timerFn   func()    // prebuilt callback invoking onTimer(timerKind)
	minVr     simkit.Time
	idleSince simkit.Time
	lastRun   *Thread // last thread that ran here (context-switch cost)
}

// NewKernel creates a kernel on the given simulator and topology.
func NewKernel(sim *simkit.Sim, topo *ostopo.Topology, p Params) *Kernel {
	if err := topo.Validate(); err != nil {
		panic(err)
	}
	k := &Kernel{Sim: sim, Topo: topo, P: p}
	n := topo.NumCPUs()
	k.cores = make([]*core, n)
	for i := 0; i < n; i++ {
		c := &core{id: ostopo.CoreID(i), k: k}
		c.timerFn = func() { c.onTimer(c.timerKind) }
		k.cores[i] = c
	}
	for lvl := ostopo.DomainSMT; lvl <= ostopo.DomainSystem; lvl++ {
		k.doms[lvl] = make([][]ostopo.CoreID, n)
		for i := 0; i < n; i++ {
			k.doms[lvl][i] = topo.Domain(ostopo.CoreID(i), lvl)
		}
	}
	k.startPeriodicBalance()
	return k
}

// domain returns the cached Topo.Domain(c, lvl) set.
func (k *Kernel) domain(c ostopo.CoreID, lvl ostopo.DomainLevel) []ostopo.CoreID {
	return k.doms[lvl][c]
}

// SetEvTracer installs the structured event-bus tracer (nil disables it).
// Tracing is record-only — it never alters scheduling decisions — so runs
// are byte-identical with tracing on or off. Install before spawning
// threads so their names reach the trace's thread registry.
func (k *Kernel) SetEvTracer(t *evtrace.Tracer) { k.etr = t }

// EvTracer returns the installed event-bus tracer, or nil.
func (k *Kernel) EvTracer() *evtrace.Tracer { return k.etr }

// Threads returns all threads ever spawned.
func (k *Kernel) Threads() []*Thread { return k.threads }

// NumCPUs returns the number of logical CPUs.
func (k *Kernel) NumCPUs() int { return k.Topo.NumCPUs() }

// Shutdown cancels the kernel's recurring events so the simulator can drain.
func (k *Kernel) Shutdown() {
	k.shutdown = true
	for _, e := range k.balEvents {
		k.Sim.Cancel(e)
	}
	k.balEvents = nil
	for _, c := range k.cores {
		k.Sim.Cancel(c.timer)
		c.timer = simkit.Event{}
	}
	for _, t := range k.threads {
		k.Sim.Cancel(t.sleepEv)
		t.sleepEv = simkit.Event{}
	}
}

// Spawn creates a thread running body on the given core (like clone(2), the
// child starts on the core it was created on; Linux fork-balancing is not
// modeled because the paper's GC threads demonstrably start stacked).
func (k *Kernel) Spawn(name string, on ostopo.CoreID, body func(*Env)) *Thread {
	if int(on) < 0 || int(on) >= len(k.cores) {
		panic(fmt.Sprintf("cfs: Spawn on invalid core %d", on))
	}
	t := &Thread{ID: k.nextTID, Name: name, k: k, core: on, state: StateBlocked}
	k.nextTID++
	k.threads = append(k.threads, t)
	if k.etr != nil {
		k.etr.RegisterThread(int32(t.ID), name)
	}
	t.coro = simkit.NewCoro(k.Sim, func(yield func(request)) {
		env := &Env{T: t, yield: yield}
		body(env)
	})
	t.sleepFn = func() {
		t.sleepEv = simkit.Event{}
		k.wake(t)
	}
	t.enqFn = func() { k.enqueue(t, t.enqTarget, t.enqWake) }
	// Enqueue via an event so bodies never nest inside one another.
	t.enqTarget, t.enqWake = on, false
	k.Sim.After(0, t.enqFn)
	return t
}

// Unpark wakes t if it is parked; otherwise it stores a permit making the
// next Park return immediately.
func (k *Kernel) Unpark(t *Thread) {
	if t.state == StateBlocked && t.parked && !t.wakePending {
		t.parked = false
		k.wake(t)
		return
	}
	if t.state != StateDone && !t.wakePending {
		t.permit = true
	}
}

// --- core helpers ---

func (c *core) idle() bool { return c.curr == nil && len(c.rq) == 0 }

func (c *core) deepIdle(now simkit.Time) bool {
	return c.idle() && now-c.idleSince >= c.k.P.DeepIdleAfter
}

// load is the instantaneous runnable load (running + queued).
func (c *core) load() int {
	n := len(c.rq)
	if c.curr != nil {
		n++
	}
	return n
}

// speed returns the execution speed of this core as a fraction num/den,
// reduced when the SMT sibling is also busy.
func (c *core) speed() (num, den int64) {
	if sib, ok := c.k.Topo.Sibling(c.id); ok {
		if c.k.cores[sib].curr != nil {
			return c.k.P.SMTSpeedNum, c.k.P.SMTSpeedDen
		}
	}
	return 1, 1
}

// wallFor converts work-ns to wall-ns at the current speed, rounding up.
func (c *core) wallFor(work simkit.Time) simkit.Time {
	num, den := c.speed()
	if num == den {
		return work
	}
	return simkit.Time((int64(work)*den + num - 1) / num)
}

// account charges CPU time to the current thread since its last accounting.
func (c *core) account(now simkit.Time) {
	t := c.curr
	if t == nil {
		return
	}
	delta := now - t.lastAccount
	if delta <= 0 {
		return
	}
	num, den := c.speed()
	t.remaining -= simkit.Time(int64(delta) * num / den)
	t.vruntime += delta
	t.CPUTime += delta
	t.lastAccount = now
	if t.vruntime > c.minVr {
		c.minVr = t.vruntime
	}
}

// sliceLen returns the current thread's slice given queue occupancy.
func (c *core) sliceLen() simkit.Time {
	nr := simkit.Time(len(c.rq) + 1)
	s := c.k.P.SchedLatency / nr
	if s < c.k.P.MinGranularity {
		s = c.k.P.MinGranularity
	}
	return s
}

// reprogram recomputes this core's next timer event (work completion or
// slice expiry), cancelling any previous one.
func (c *core) reprogram() {
	k := c.k
	k.Sim.Cancel(c.timer)
	c.timer = simkit.Event{}
	if c.curr == nil || k.shutdown {
		return
	}
	now := k.Sim.Now()
	at := now + c.wallFor(c.curr.remaining)
	kind := timerComplete
	if len(c.rq) > 0 {
		sliceEnd := c.curr.dispatchedAt + c.sliceLen()
		if sliceEnd < now {
			sliceEnd = now
		}
		if sliceEnd < at {
			at, kind = sliceEnd, timerSlice
		}
	}
	// The timer chain is the continuation-slot fast path: during a plan
	// burst this core cancels and reschedules its own timer once per slice,
	// and the staged event usually fires next, so the whole chain bypasses
	// the event heap (see simkit.AtNext — observably identical to At).
	c.timerKind = kind
	c.timer = k.Sim.AtNext(at, c.timerFn)
}

func (c *core) onTimer(kind timerKind) {
	k := c.k
	now := k.Sim.Now()
	c.timer = simkit.Event{}
	t := c.curr
	if t == nil {
		return
	}
	c.account(now)
	switch {
	case kind == timerComplete || t.remaining <= 0:
		// Batch-dispatch loop: arm the next plan slice and, when its
		// completion would be the next event to fire anyway (uncontended
		// core, nothing staged or queued at or before it), fire it inline
		// via Sim.FireInline instead of staging a timer and returning to
		// the event loop. A run of same-core plan slices then executes as
		// one onTimer activation. FireInline preserves the (at, seq) order
		// and the trace stream exactly, and refuses whenever any other
		// event could interleave, so this is observably identical to the
		// stage-and-fire path.
		for {
			if !c.planArm(t) {
				// Plan exhausted: ask the body for its next request.
				k.advance(t)
				return
			}
			if !k.shutdown && len(c.rq) == 0 && c.curr == t {
				if k.Sim.FireInline(now + c.wallFor(t.remaining)) {
					now = k.Sim.Now()
					c.account(now)
					continue
				}
			}
			c.reprogram()
			return
		}
	default:
		// Preempt: requeue and pick the next thread.
		if kind == timerSlice {
			k.Stats.Preemptions++
			if k.etr != nil {
				k.etr.Emit(evtrace.Event{Kind: evtrace.KPreempt, At: int64(now),
					Core: int32(c.id), TID: int32(t.ID), Name: t.Name})
			}
		}
		c.deschedule(t, StateRunnable)
		c.push(t)
		c.pickNext()
	}
}

// deschedule removes the running thread from the core without enqueueing it.
func (c *core) deschedule(t *Thread, newState State) {
	now := c.k.Sim.Now()
	sc := c.siblingCheckpoint() // account the sibling at the pre-flip speed
	if c.k.trace != nil {
		c.k.trace.onDeschedule(c.id, now)
	}
	if c.k.etr != nil {
		// The whole on-CPU interval becomes one dispatch span; Arg1 carries
		// the core's min-vruntime for the monotonicity invariant.
		c.k.etr.Emit(evtrace.Event{
			Kind: evtrace.KDispatch, At: int64(t.dispatchedAt), Dur: int64(now - t.dispatchedAt),
			Core: int32(c.id), TID: int32(t.ID), Name: t.Name, Arg1: int64(c.minVr),
		})
	}
	t.lastRanAt = now
	t.state = newState
	c.curr = nil
	c.k.Sim.Cancel(c.timer)
	c.timer = simkit.Event{}
	if sc != nil {
		sc.reprogram() // sibling now runs at full speed
	}
}

// push adds a runnable thread to this core's queue.
func (c *core) push(t *Thread) {
	t.core = c.id
	t.seq = c.k.Sim.Fired()
	c.rq = append(c.rq, t)
	if c.k.etr != nil {
		c.k.etr.Emit(evtrace.Event{Kind: evtrace.KRunqPush, At: int64(c.k.Sim.Now()),
			Core: int32(c.id), TID: int32(t.ID), Name: t.Name,
			Arg1: int64(len(c.rq)), Arg2: int64(c.load())})
	}
}

// popMin removes and returns the minimum-vruntime runnable thread.
func (c *core) popMin() *Thread {
	best := -1
	for i, t := range c.rq {
		if best < 0 || t.vruntime < c.rq[best].vruntime ||
			(t.vruntime == c.rq[best].vruntime && t.seq < c.rq[best].seq) {
			best = i
		}
	}
	t := c.rq[best]
	c.rq[best] = c.rq[len(c.rq)-1]
	c.rq = c.rq[:len(c.rq)-1]
	if c.k.etr != nil {
		c.k.etr.Emit(evtrace.Event{Kind: evtrace.KRunqPop, At: int64(c.k.Sim.Now()),
			Core: int32(c.id), TID: int32(t.ID), Name: t.Name,
			Arg1: int64(len(c.rq)), Arg2: 0})
	}
	return t
}

// remove deletes a specific thread from the runqueue (for migration).
func (c *core) remove(t *Thread) bool {
	for i, q := range c.rq {
		if q == t {
			c.rq[i] = c.rq[len(c.rq)-1]
			c.rq = c.rq[:len(c.rq)-1]
			if c.k.etr != nil {
				c.k.etr.Emit(evtrace.Event{Kind: evtrace.KRunqPop, At: int64(c.k.Sim.Now()),
					Core: int32(c.id), TID: int32(t.ID), Name: t.Name,
					Arg1: int64(len(c.rq)), Arg2: 1})
			}
			return true
		}
	}
	return false
}

// pickNext dispatches the next thread, or goes idle (after attempting a
// new-idle balance pull).
func (c *core) pickNext() {
	k := c.k
	now := k.Sim.Now()
	if c.curr != nil {
		return
	}
	if len(c.rq) == 0 {
		// Becoming idle: try to steal work from a busy core first. A
		// successful pull dispatches on this core inside newIdleBalance
		// (post-pull dispatch is unified in afterPull), so this call is
		// done either way.
		if !k.newIdleBalance(c) {
			c.idleSince = now
		}
		return
	}
	sc := c.siblingCheckpoint() // account the sibling at the pre-flip speed
	t := c.popMin()
	t.state = StateRunning
	t.dispatchedAt = now
	t.lastAccount = now
	c.curr = t
	if c.lastRun != t {
		k.Stats.ContextSwitches++
		// Context-switch cost is charged as extra work at full speed.
		t.remaining += k.P.CtxSwitchCost
	}
	c.lastRun = t
	if k.trace != nil {
		k.trace.onDispatch(c.id, t, now)
	}
	if sc != nil {
		sc.reprogram() // sibling now runs at reduced speed
	}
	if t.remaining > 0 {
		c.reprogram()
		return
	}
	// A plan thread dispatched with its slice already exhausted continues
	// its plan driver-side, exactly as the completion timer would.
	if c.planContinue(t) {
		return
	}
	k.advance(t)
}

// planContinue starts the current thread's next compute-plan slice from the
// driver side, if it has one. The timer and accounting sequence is exactly
// what a body-yielded Compute would produce (any sub-slice accounting
// residue is discarded, as advance does via remaining = 0 → remaining = d);
// only the coroutine round trip is elided. Returns false when the thread
// has no plan (the caller resumes the body instead).
func (c *core) planContinue(t *Thread) bool {
	if !c.planArm(t) {
		return false
	}
	c.reprogram()
	return true
}

// planArm loads the current thread's next compute-plan slice into
// t.remaining without programming a timer. onTimer's inline batch loop uses
// it directly so a successful FireInline can skip the timer round trip;
// every other caller goes through planContinue, which arms and reprograms.
// Returns false when the thread has no plan left.
func (c *core) planArm(t *Thread) bool {
	k := c.k
	if t.planLeft != 0 {
		if t.planLeft > 0 {
			t.planLeft--
		}
		t.remaining = t.planSlice
		k.Stats.PlanElisions++
		return true
	}
	if fn := t.planFn; fn != nil {
		// The callback acts on the thread's behalf (it may Unpark waiters,
		// whose wake-affine placement consults the waker), so it runs with
		// the thread active, exactly like the body it replaces.
		prev := k.active
		k.active = t
		for {
			d, ok := fn()
			if !ok {
				break
			}
			if d > 0 {
				k.active = prev
				t.remaining = d
				k.Stats.BurstElisions++
				return true
			}
		}
		k.active = prev
		t.planFn = nil
	}
	return false
}

// siblingCheckpoint accounts the SMT sibling's current thread at the speed
// in effect so far, ahead of a busy-state flip on this core that will change
// that speed. It returns the sibling core if it has a current thread the
// caller must reprogram after the flip.
func (c *core) siblingCheckpoint() *core {
	sib, ok := c.k.Topo.Sibling(c.id)
	if !ok {
		return nil
	}
	sc := c.k.cores[sib]
	if sc.curr == nil {
		return nil
	}
	sc.account(c.k.Sim.Now())
	return sc
}

// advance resumes t's body for its next timed request. t must be current on
// its core. advance loops so that zero-length requests cannot stall time.
func (k *Kernel) advance(t *Thread) {
	c := k.cores[t.core]
	if c.curr != t {
		panic("cfs: advance on non-current thread " + t.Name)
	}
	for {
		t.remaining = 0
		t.planSlice, t.planLeft, t.planFn = 0, 0, nil
		prev := k.active
		k.active = t
		k.Stats.BodyResumes++
		req, ok := t.coro.Next()
		k.active = prev
		now := k.Sim.Now()
		if !ok {
			c.deschedule(t, StateDone)
			c.pickNext()
			return
		}
		switch req.kind {
		case reqCompute:
			t.remaining = req.d
			if req.n > 1 {
				t.planSlice, t.planLeft = req.d, req.n-1
			} else if req.n < 0 {
				t.planSlice, t.planLeft = req.d, -1
			}
			t.planFn = req.fn
			c.reprogram()
			return
		case reqSleep:
			c.deschedule(t, StateBlocked)
			t.parked = false
			t.sleepEv = k.Sim.After(req.d, t.sleepFn)
			c.pickNext()
			return
		case reqPark:
			if t.permit {
				// A permit arrived between the check in Env.Park and now
				// (possible when Unpark targets the running thread).
				t.permit = false
				continue
			}
			t.parked = true
			c.deschedule(t, StateBlocked)
			c.pickNext()
			return
		case reqYield:
			if len(c.rq) == 0 {
				continue // nothing else to run; keep going
			}
			c.deschedule(t, StateRunnable)
			// sched_yield: fall behind every currently queued thread.
			for _, q := range c.rq {
				if q.vruntime > t.vruntime {
					t.vruntime = q.vruntime
				}
			}
			t.vruntime++
			c.push(t)
			c.pickNext()
			return
		case reqMigrate:
			c.deschedule(t, StateRunnable)
			t.enqTarget, t.enqWake = k.allowedTarget(t), false
			k.Sim.At(now, t.enqFn)
			c.pickNext()
			return
		}
	}
}

// allowedTarget picks the least-loaded core permitted by t's affinity mask.
func (k *Kernel) allowedTarget(t *Thread) ostopo.CoreID {
	best, bestLoad := ostopo.CoreID(-1), 1<<30
	for i, c := range k.cores {
		if !t.allowed(ostopo.CoreID(i)) {
			continue
		}
		if l := c.load(); l < bestLoad {
			best, bestLoad = ostopo.CoreID(i), l
		}
	}
	if best < 0 {
		best = t.core // degenerate mask; stay put
	}
	return best
}

// enqueue makes t runnable on core id, applying vruntime renormalization,
// optional sleeper credit, and the wakeup-preemption check.
func (k *Kernel) enqueue(t *Thread, id ostopo.CoreID, wakeup bool) {
	if t.state == StateDone {
		return
	}
	t.wakePending = false
	c := k.cores[id]
	now := k.Sim.Now()
	if t.core != id {
		// Renormalize vruntime across runqueues.
		t.vruntime = t.vruntime - k.cores[t.core].minVr + c.minVr
		t.Migrations++
		if k.etr != nil {
			k.etr.Emit(evtrace.Event{Kind: evtrace.KMigrate, At: int64(now),
				Core: int32(id), TID: int32(t.ID), Name: t.Name,
				Arg1: int64(t.core), Arg2: int64(id)})
		}
	}
	if wakeup {
		floor := c.minVr - k.P.SleeperCredit
		if t.vruntime < floor {
			t.vruntime = floor
		}
		t.Wakeups++
	} else if t.vruntime < c.minVr {
		t.vruntime = c.minVr
	}
	t.state = StateRunnable
	wasIdle := c.curr == nil && len(c.rq) == 0
	c.push(t)
	if wasIdle {
		c.pickNext()
		return
	}
	if c.curr == nil {
		// Another enqueue is racing at the same instant; dispatch.
		c.pickNext()
		return
	}
	if wakeup && k.wakePreempts(c, t, now) {
		k.Stats.WakePreemptions++
		// Preempt via a zero-delay timer so we never unwind a running body.
		k.Sim.Cancel(c.timer)
		c.timerKind = timerResched
		c.timer = k.Sim.AtNext(now, c.timerFn)
		return
	}
	if wakeup {
		k.Stats.WakePreemptFailed++
	}
	c.reprogram()
}

// wakePreempts implements check_preempt_wakeup: the wakee preempts the
// current thread only with a sufficient vruntime lead, and (per the paper's
// minimum-runtime guarantee) only once the current thread has run for at
// least MinGranularity.
func (k *Kernel) wakePreempts(c *core, wakee *Thread, now simkit.Time) bool {
	curr := c.curr
	if curr == nil {
		return true
	}
	c.account(now)
	if k.P.WakePreemptMinRun && now-curr.dispatchedAt < k.P.MinGranularity {
		return false
	}
	return curr.vruntime-wakee.vruntime > k.P.WakeupGranularity
}

// wake routes a wakeup through wake placement and C-state exit latency.
func (k *Kernel) wake(t *Thread) {
	now := k.Sim.Now()
	target := k.selectWakeCore(t)
	c := k.cores[target]
	var lat simkit.Time
	if c.idle() {
		if c.deepIdle(now) {
			lat = k.P.DeepIdleWakeLatency
			t.DeepWakes++
		} else {
			lat = k.P.ShallowWakeLatency
		}
	}
	t.wakePending = true
	t.enqTarget, t.enqWake = target, true
	if k.etr != nil {
		k.etr.Emit(evtrace.Event{Kind: evtrace.KWakeup, At: int64(now),
			Core: int32(target), TID: int32(t.ID), Name: t.Name,
			Arg1: int64(target), Arg2: int64(lat)})
	}
	k.Sim.After(lat, t.enqFn)
}

// CoreLoads returns the per-core load_avg as visible to user space via
// /proc. Running and runnable threads contribute 1.0 each. With the paper's
// kernel fix (LoadAvgCountsBlocked) blocked threads contribute
// BlockedLoadWeight toward the core they reside on; otherwise they are
// invisible, which is why vanilla OS load balancing cannot see stacked
// sleeping GC threads.
func (k *Kernel) CoreLoads() []float64 {
	loads := make([]float64, len(k.cores))
	for i, c := range k.cores {
		loads[i] = float64(c.load())
	}
	if k.P.LoadAvgCountsBlocked {
		for _, t := range k.threads {
			if t.state == StateBlocked {
				loads[t.core] += k.P.BlockedLoadWeight
			}
		}
	}
	return loads
}

// RunnableLoads always returns only runnable counts (the balancer's view).
func (k *Kernel) RunnableLoads() []int {
	loads := make([]int, len(k.cores))
	for i, c := range k.cores {
		loads[i] = c.load()
	}
	return loads
}

// CoreOf returns the core a thread currently resides on.
func (k *Kernel) CoreOf(t *Thread) ostopo.CoreID { return t.core }

// Active returns the thread whose body is currently executing, or nil.
func (k *Kernel) Active() *Thread { return k.active }
