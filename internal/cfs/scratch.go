package cfs

import (
	"repro/internal/ostopo"
	"repro/internal/simkit"
)

// Scratch holds a retired kernel's backing arrays — the thread table and
// one runqueue backing per core — for reuse by a later NewKernelWith. Like
// simkit.Scratch and heap.Scratch it is plain data, one per in-flight
// kernel; the experiment runner keeps one per pool worker. The zero value
// is ready to use.
type Scratch struct {
	threads []*Thread
	rqs     [][]*Thread
}

// NewKernelWith creates a kernel like NewKernel, adopting sc's backing
// arrays (sc may be nil). The scratch is emptied; harvest it back with
// Reclaim after Shutdown. Adopted storage only changes slice capacities —
// nothing in the scheduler branches on capacity — so runs are
// byte-identical with or without scratch.
func NewKernelWith(sim *simkit.Sim, topo *ostopo.Topology, p Params, sc *Scratch) *Kernel {
	k := NewKernel(sim, topo, p)
	if sc != nil {
		k.threads = sc.threads[:0]
		sc.threads = nil
		for i, c := range k.cores {
			if i >= len(sc.rqs) {
				break
			}
			c.rq = sc.rqs[i][:0]
			sc.rqs[i] = nil
		}
	}
	return k
}

// Reclaim harvests the kernel's thread table and runqueue backings into sc
// for a later NewKernelWith. Call after Shutdown (and after the simulation
// is done); the kernel is unusable afterwards. All pooled pointer slots
// are cleared so retired threads — and the coroutine state they hang onto
// — are not kept alive by the pooled storage.
func (k *Kernel) Reclaim(sc *Scratch) {
	ths := k.threads[:cap(k.threads)]
	clear(ths)
	sc.threads = ths[:0]
	k.threads = nil
	if cap(sc.rqs) < len(k.cores) {
		sc.rqs = make([][]*Thread, len(k.cores))
	}
	sc.rqs = sc.rqs[:len(k.cores)]
	for i, c := range k.cores {
		rq := c.rq[:cap(c.rq)]
		clear(rq)
		sc.rqs[i] = rq[:0]
		c.rq = nil
		c.curr, c.lastRun = nil, nil
	}
	k.cores = nil
}
