// Package cfs implements a deterministic discrete-event model of the Linux
// Completely Fair Scheduler on a multicore machine, faithful to the
// mechanisms the paper identifies (§2.5, §3.2):
//
//   - per-core runqueues ordered by vruntime, with slices derived from
//     sched_latency / nr_running clamped by sched_min_granularity;
//   - wakeup preemption that fails when the current thread also just woke
//     (sleeper credit makes the vruntime difference small) or has not yet
//     run for its minimum granularity;
//   - wake placement (wake_affine + idle-sibling search) that skips cores
//     in deep C-states to save energy;
//   - load balancing that only ever migrates runnable threads — blocked
//     threads are invisible — via new-idle pulls and coarse periodic
//     balancing (64 ms at the SMT level, doubling with domain distance);
//   - optional SMT: sibling hyperthreads slow each other down when both
//     are busy, and are balanced at a shorter interval.
//
// Simulated threads are written as ordinary Go functions receiving an *Env
// whose primitives (Compute, Park, Sleep, ...) advance virtual time.
package cfs

import "repro/internal/simkit"

// Params holds the scheduler model's tunables. Defaults follow Linux 4.9
// CFS on a ~20-CPU machine (sysctl kernel.sched_* values) plus the C-state
// model constants.
type Params struct {
	// SchedLatency is the targeted preemption latency: every runnable
	// thread should run once within this period. A thread's slice is
	// SchedLatency / nr_running, clamped below by MinGranularity.
	SchedLatency simkit.Time
	// MinGranularity is the minimum time a thread runs before it can be
	// preempted (sched_min_granularity_ns).
	MinGranularity simkit.Time
	// WakeupGranularity is the vruntime lead a waking thread must have over
	// the current thread to preempt it (sched_wakeup_granularity_ns).
	WakeupGranularity simkit.Time
	// SleeperCredit is the vruntime credit granted on wakeup
	// (GENTLE_FAIR_SLEEPERS: half of SchedLatency).
	SleeperCredit simkit.Time
	// WakePreemptMinRun, when true, additionally requires the current
	// thread to have run at least MinGranularity before a wakeup may
	// preempt it. Off by default: in CFS (and in the paper's §3.2 account)
	// the OnDeck thread fails to preempt the previous owner because both
	// just woke with similar sleeper credit — a vruntime-difference effect,
	// not a hard guard — and a hard guard would also wrongly shield
	// CPU-bound threads from waking GC threads.
	WakePreemptMinRun bool

	// BalanceIntervalSMT/Node/System are the periodic load-balancing
	// intervals at each domain level (the paper: 64 ms between
	// hyperthreads, doubling as CPU distance increases).
	BalanceIntervalSMT    simkit.Time
	BalanceIntervalNode   simkit.Time
	BalanceIntervalSystem simkit.Time
	// MigrationCost makes recently-run threads "cache hot" and ineligible
	// for migration (sched_migration_cost_ns).
	MigrationCost simkit.Time

	// DeepIdleAfter is the idle residency after which a core is considered
	// to have entered a deep C-state (menu-governor model).
	DeepIdleAfter simkit.Time
	// DeepIdleWakeLatency is the exit latency of the deep C-state; waking a
	// thread onto a deep-idle core delays its start by this much.
	DeepIdleWakeLatency simkit.Time
	// ShallowWakeLatency is the wakeup latency onto a shallow-idle core.
	ShallowWakeLatency simkit.Time
	// AvoidDeepIdleWake makes wake placement skip deep-idle cores (energy
	// awareness, §2.5 reason 3). The stacked-GC-thread pathology depends
	// on it; it is on by default as in production kernels.
	AvoidDeepIdleWake bool
	// CtxSwitchCost is charged (as extra work) when a core switches to a
	// different thread than it last ran.
	CtxSwitchCost simkit.Time

	// LoadAvgCountsBlocked is the paper's kernel modification (§4.1): when
	// true, the per-core load reported to the JVM's GC load analyzer also
	// counts blocked threads residing on the core. Vanilla load_avg only
	// measures ready/running tasks.
	LoadAvgCountsBlocked bool
	// BlockedLoadWeight is the load_avg contribution of one blocked
	// resident thread (PELT decays sleepers well below a running thread's
	// contribution of 1.0).
	BlockedLoadWeight float64

	// SMTSpeedNum/SMTSpeedDen give the per-thread throughput factor when
	// both hyperthreads of a physical core are busy (e.g. 13/20 = 0.65,
	// i.e. a combined 1.3x over one thread).
	SMTSpeedNum, SMTSpeedDen int64
}

// DefaultParams returns the Linux-4.9-like defaults used throughout the
// evaluation.
func DefaultParams() Params {
	return Params{
		SchedLatency:      24 * simkit.Millisecond,
		MinGranularity:    3 * simkit.Millisecond,
		WakeupGranularity: 4 * simkit.Millisecond,
		SleeperCredit:     12 * simkit.Millisecond,
		WakePreemptMinRun: false,

		BalanceIntervalSMT:    64 * simkit.Millisecond,
		BalanceIntervalNode:   128 * simkit.Millisecond,
		BalanceIntervalSystem: 256 * simkit.Millisecond,
		MigrationCost:         500 * simkit.Microsecond,

		DeepIdleAfter:       200 * simkit.Microsecond,
		DeepIdleWakeLatency: 25 * simkit.Microsecond,
		ShallowWakeLatency:  3 * simkit.Microsecond,
		AvoidDeepIdleWake:   true,
		CtxSwitchCost:       2 * simkit.Microsecond,

		LoadAvgCountsBlocked: false,
		BlockedLoadWeight:    0.5,

		SMTSpeedNum: 13,
		SMTSpeedDen: 20,
	}
}
