// Package affinity implements the paper's GC thread placement schemes
// (§4.1): static one-to-one core binding (the BindGCTaskThreadsToCPUs
// backend that OpenJDK never implemented for Linux), the dynamic load-aware
// rebalancing of Algorithm 1 (bind to a randomly chosen low-load core when
// the current core is contended), and the NUMA node-affinity baseline of
// Gidra et al.
//
// Dynamic mode relies on the paper's kernel-side fix: per-core load that
// also counts sleeping threads (cfs.Params.LoadAvgCountsBlocked); package
// jvm enables the two together.
package affinity

import (
	"fmt"

	"repro/internal/cfs"
	"repro/internal/ostopo"
)

// Mode selects the placement scheme.
type Mode int

const (
	// ModeNone leaves GC threads unbound (vanilla HotSpot on Linux).
	ModeNone Mode = iota
	// ModeStatic binds GC thread i to core i at creation.
	ModeStatic
	// ModeDynamic is Algorithm 1: at each GC start a thread on a high-load
	// core rebinds to a random low-load core.
	ModeDynamic
	// ModeNUMANode binds GC threads to NUMA nodes round-robin (Gidra).
	ModeNUMANode
)

func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeStatic:
		return "static"
	case ModeDynamic:
		return "dynamic"
	case ModeNUMANode:
		return "numa-node"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Balancer applies a placement mode through the pscavenge engine hooks.
type Balancer struct {
	Mode Mode
	K    *cfs.Kernel
	// HighFactor/LowFactor classify core load against the system average
	// (Algorithm 1 lines 4-9: high ≥ 2·avg, low ≤ 0.5·avg).
	HighFactor float64
	LowFactor  float64
	// CoRunner is an absolute high watermark: a core is also considered
	// contended when the competing load on it reaches this value (one full
	// co-running thread, or two blocked residents). Algorithm 1 uses PELT
	// load_avg, where a co-resident GC thread contributes ~1.0 throughout
	// a collection; our instantaneous proxy sees it as blocked half the
	// time, so the relative test alone would miss stacking pairs.
	CoRunner float64

	// Rebinds counts dynamic rebind operations; Unbinds counts bindings
	// released because no light core existed (for analysis).
	Rebinds int
	Unbinds int

	bound map[int]ostopo.CoreID // worker -> core currently bound by GCWake
}

// New creates a balancer for the kernel.
func New(mode Mode, k *cfs.Kernel) *Balancer {
	return &Balancer{Mode: mode, K: k, HighFactor: 2.0, LowFactor: 0.5, CoRunner: 0.9,
		bound: make(map[int]ostopo.CoreID)}
}

// WorkerStart is the engine's OnWorkerStart hook: static and node binding
// happen once, when the GC thread is created.
func (b *Balancer) WorkerStart(e *cfs.Env, w int) {
	switch b.Mode {
	case ModeStatic:
		e.SetAffinity(ostopo.CoreID(w % b.K.NumCPUs()))
	case ModeNUMANode:
		node := w % b.K.Topo.Nodes
		e.SetAffinity(b.K.Topo.NodeCPUs(node)...)
	}
}

// GCWake is the engine's OnGCWake hook: Algorithm 1, run by each GC thread
// when it wakes for a new collection.
func (b *Balancer) GCWake(e *cfs.Env, w int) {
	if b.Mode != ModeDynamic {
		return
	}
	loads := b.K.CoreLoads() // includes sleepers when the kernel fix is on
	var sum float64
	for _, l := range loads {
		sum += l
	}
	avg := sum / float64(len(loads))
	if avg <= 0 {
		return
	}
	my := int(e.Core())
	// Measure the load this thread contends with: its own running
	// contribution (1.0) does not make its core contended.
	contended := loads[my] - 1
	if contended < 0 {
		contended = 0
	}
	high := b.HighFactor * avg
	if b.CoRunner > 0 && b.CoRunner < high {
		high = b.CoRunner
	}
	if contended < high {
		return // current core not contended; stay
	}
	// Collect low-load cores and rebind to a random one (Algorithm 1
	// lines 17-21). When no core is below the low watermark, fall back to
	// the minimum-load cores — but only if they are genuinely light:
	// hard-binding onto a core that already runs something (a busy loop,
	// another JVM's mutator) is worse than leaving placement to the OS, so
	// in that case the thread unbinds instead.
	var low []ostopo.CoreID
	for c, l := range loads {
		if l <= b.LowFactor*avg {
			low = append(low, ostopo.CoreID(c))
		}
	}
	if len(low) == 0 {
		min := loads[0]
		for _, l := range loads[1:] {
			if l < min {
				min = l
			}
		}
		if min >= b.CoRunner {
			// Machine saturated: release the binding and float.
			if _, wasBound := b.bound[w]; wasBound {
				delete(b.bound, w)
				b.Unbinds++
				e.SetAffinity()
			}
			return
		}
		for c, l := range loads {
			if l <= min+1e-9 {
				low = append(low, ostopo.CoreID(c))
			}
		}
	}
	if len(low) == 0 {
		return
	}
	// Avoid re-stacking: among the low-load candidates, prefer cores no
	// other GC thread is currently bound to (the even 1:1 distribution of
	// Fig. 8a); pick randomly within the least-claimed tier. A claim on a
	// core's SMT sibling counts too — binding two GC threads onto one
	// physical core would halve both.
	claims := make(map[ostopo.CoreID]int)
	for ow, oc := range b.bound {
		if ow == w {
			continue
		}
		claims[oc] += 2
		if sib, ok := b.K.Topo.Sibling(oc); ok {
			claims[sib]++
		}
	}
	minClaims := -1
	for _, c := range low {
		if minClaims < 0 || claims[c] < minClaims {
			minClaims = claims[c]
		}
	}
	tier := low[:0:0]
	for _, c := range low {
		if claims[c] == minClaims {
			tier = append(tier, c)
		}
	}
	target := tier[e.Rand().Intn(len(tier))]
	b.Rebinds++
	b.bound[w] = target
	e.SetAffinity(target)
}

// NodeOf returns the worker→node map used to configure NUMA-restricted
// stealing consistently with node binding.
func (b *Balancer) NodeOf(workers int) []int {
	nodeOf := make([]int, workers)
	for w := range nodeOf {
		nodeOf[w] = w % b.K.Topo.Nodes
	}
	return nodeOf
}
