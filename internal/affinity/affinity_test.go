package affinity

import (
	"testing"

	"repro/internal/cfs"
	"repro/internal/ostopo"
	"repro/internal/simkit"
)

func newKernel(t *testing.T, blockedLoads bool) (*simkit.Sim, *cfs.Kernel) {
	t.Helper()
	sim := simkit.New(1)
	t.Cleanup(sim.Close)
	p := cfs.DefaultParams()
	p.LoadAvgCountsBlocked = blockedLoads
	return sim, cfs.NewKernel(sim, ostopo.PaperTestbed(), p)
}

func TestModeStrings(t *testing.T) {
	want := map[Mode]string{
		ModeNone: "none", ModeStatic: "static", ModeDynamic: "dynamic",
		ModeNUMANode: "numa-node", Mode(7): "Mode(7)",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), m.String(), s)
		}
	}
}

func TestStaticBindingPinsWorker(t *testing.T) {
	sim, k := newKernel(t, false)
	b := New(ModeStatic, k)
	var core ostopo.CoreID = -1
	th := k.Spawn("gc", 0, func(e *cfs.Env) {
		b.WorkerStart(e, 7)
		e.Compute(simkit.Millisecond)
		core = e.Core()
	})
	for th.State() != cfs.StateDone && sim.Step() {
	}
	if core != 7 {
		t.Errorf("worker 7 bound to core %d, want 7", core)
	}
}

func TestNUMANodeBindingStaysOnNode(t *testing.T) {
	sim, k := newKernel(t, false)
	b := New(ModeNUMANode, k)
	var core ostopo.CoreID = -1
	th := k.Spawn("gc", 0, func(e *cfs.Env) {
		b.WorkerStart(e, 3) // odd worker -> node 1
		e.Compute(simkit.Millisecond)
		core = e.Core()
	})
	for th.State() != cfs.StateDone && sim.Step() {
	}
	if k.Topo.Node(core) != 1 {
		t.Errorf("worker 3 ran on node %d, want 1", k.Topo.Node(core))
	}
}

func TestDynamicRebindsAwayFromContendedCore(t *testing.T) {
	sim, k := newKernel(t, true)
	b := New(ModeDynamic, k)
	// Park a pile of threads on core 0 to make it look contended.
	for i := 0; i < 10; i++ {
		k.Spawn("sleeper", 0, func(e *cfs.Env) { e.Park() })
	}
	var before, after ostopo.CoreID
	th := k.Spawn("gc", 0, func(e *cfs.Env) {
		e.Compute(100 * simkit.Microsecond)
		before = e.Core()
		b.GCWake(e, 0)
		e.Compute(100 * simkit.Microsecond)
		after = e.Core()
	})
	for th.State() != cfs.StateDone && sim.Step() {
	}
	if before != 0 {
		t.Fatalf("setup: thread not on core 0 (%d)", before)
	}
	if after == 0 {
		t.Error("dynamic rebalancing left the thread on the contended core")
	}
	if b.Rebinds != 1 {
		t.Errorf("Rebinds = %d, want 1", b.Rebinds)
	}
}

func TestDynamicStaysOnUncontendedCore(t *testing.T) {
	sim, k := newKernel(t, true)
	b := New(ModeDynamic, k)
	// Spread some blocked threads so the average is not zero.
	for i := 0; i < 8; i++ {
		k.Spawn("sleeper", ostopo.CoreID(i+2), func(e *cfs.Env) { e.Park() })
	}
	var after ostopo.CoreID = -1
	th := k.Spawn("gc", 1, func(e *cfs.Env) {
		e.Compute(100 * simkit.Microsecond)
		b.GCWake(e, 0)
		e.Compute(100 * simkit.Microsecond)
		after = e.Core()
	})
	for th.State() != cfs.StateDone && sim.Step() {
	}
	if after != 1 {
		t.Errorf("thread moved from uncontended core 1 to %d", after)
	}
	if b.Rebinds != 0 {
		t.Errorf("Rebinds = %d, want 0", b.Rebinds)
	}
}

func TestNonDynamicGCWakeIsNoop(t *testing.T) {
	sim, k := newKernel(t, true)
	b := New(ModeStatic, k)
	th := k.Spawn("gc", 0, func(e *cfs.Env) {
		b.GCWake(e, 0)
		e.Compute(simkit.Microsecond)
	})
	for th.State() != cfs.StateDone && sim.Step() {
	}
	if b.Rebinds != 0 {
		t.Error("static mode rebound on GCWake")
	}
}

func TestNodeOfMapping(t *testing.T) {
	_, k := newKernel(t, false)
	b := New(ModeNUMANode, k)
	nodeOf := b.NodeOf(6)
	want := []int{0, 1, 0, 1, 0, 1}
	for i, n := range nodeOf {
		if n != want[i] {
			t.Errorf("NodeOf[%d] = %d, want %d", i, n, want[i])
		}
	}
}
