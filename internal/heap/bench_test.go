package heap

import "testing"

// BenchmarkHeapAlloc measures the eden allocation hot path — slot reuse,
// SoA bookkeeping and the shared refs arena — the per-cluster cost every
// mutator burst pays. Eden wipes (scavenge with no roots) run off the
// timer.
func BenchmarkHeapAlloc(b *testing.B) {
	h, err := New(Config{
		EdenBytes:     8 << 20,
		SurvivorBytes: 1 << 20,
		OldBytes:      1 << 30,
		TenureAge:     15,
	})
	if err != nil {
		b.Fatal(err)
	}
	var prev, prev2 ObjID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, ok := h.Alloc(128, prev, prev2)
		if !ok {
			b.StopTimer()
			h.BeginMinorGC()
			h.FinishMinorGC()
			prev, prev2 = 0, 0
			b.StartTimer()
			id, _ = h.Alloc(128, prev, prev2)
		}
		prev2, prev = prev, id
	}
}

// BenchmarkMinorGCTrace measures one scavenge of a fixed young working set:
// the CopyYoung transitive trace plus the FinishMinorGC sweep — the
// per-pause cost driver behind the Fig10 GC columns. The working set is
// rebuilt off the timer each iteration (TenureAge 1 promotes every
// survivor, so from-space stays empty and iterations stay identical); a
// rootless major GC wipes the accumulated old generation off the timer
// whenever it grows large.
func BenchmarkMinorGCTrace(b *testing.B) {
	const objects = 2048
	h, err := New(Config{
		EdenBytes:     1 << 20,
		SurvivorBytes: 1 << 20,
		OldBytes:      1 << 30,
		TenureAge:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	roots := make([]ObjID, 0, objects/8)
	work := make([]ObjID, 0, objects)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if _, _, old := h.Usage(); old > 256<<20 {
			h.BeginMajorGC()
			h.FinishMajorGC()
		}
		// Chains of 8: one root per chain, the rest reached by tracing.
		roots = roots[:0]
		var prev ObjID
		for j := 0; j < objects; j++ {
			var id ObjID
			var ok bool
			if j%8 == 0 {
				id, ok = h.Alloc(128)
			} else {
				id, ok = h.Alloc(128, prev)
			}
			if !ok {
				b.Fatal("eden full during setup")
			}
			if j%8 == 7 {
				roots = append(roots, id)
			}
			prev = id
		}
		b.StartTimer()

		h.BeginMinorGC()
		work = append(work[:0], roots...)
		for len(work) > 0 {
			id := work[len(work)-1]
			work = work[:len(work)-1]
			if _, _, first := h.CopyYoung(id); first {
				for _, c := range h.Refs(id) {
					if c != 0 && !h.Visited(c) {
						work = append(work, c)
					}
				}
			}
		}
		h.FinishMinorGC()
	}
}
