// Package heap implements a generational Java-style heap: an eden space,
// two survivor semispaces (from/to), and an old generation, with object
// ages, tenuring, a remembered set maintained by a write barrier, and the
// bookkeeping a scavenging collector needs (§2.1 of the paper).
//
// Object identity is stable: a "copy" during scavenging retags the object's
// space rather than moving bytes, so references never need rewriting. The
// collector still pays the copying *cost* (the cost model lives in package
// pscavenge); what matters for fidelity here is the reachability and
// promotion behaviour, which is real.
package heap

import "fmt"

// ObjID identifies a heap object. 0 is the nil reference.
type ObjID int32

// Space tags which space an object currently lives in.
type Space uint8

const (
	// SpaceNone marks a free (dead) object slot.
	SpaceNone Space = iota
	// SpaceEden is the allocation space of the young generation.
	SpaceEden
	// SpaceFrom is the occupied survivor semispace.
	SpaceFrom
	// SpaceTo is the empty survivor semispace (only populated during GC).
	SpaceTo
	// SpaceOld is the old (tenured) generation.
	SpaceOld
)

func (s Space) String() string {
	switch s {
	case SpaceNone:
		return "free"
	case SpaceEden:
		return "eden"
	case SpaceFrom:
		return "from"
	case SpaceTo:
		return "to"
	case SpaceOld:
		return "old"
	}
	return fmt.Sprintf("Space(%d)", uint8(s))
}

// Object is a heap object. Size is in (model) bytes. Node is the NUMA
// node whose memory backs the object (set from the allocating thread's
// node; updated when a GC thread copies it).
type Object struct {
	Size  int32
	Age   uint8
	Space Space
	Node  uint8
	Refs  []ObjID
	InRS  bool   // old object registered in the remembered set
	mark  uint32 // GC epoch visited stamp
}

// Config sizes the heap. All byte figures are model bytes.
type Config struct {
	EdenBytes     int64
	SurvivorBytes int64 // each survivor semispace
	OldBytes      int64
	TenureAge     uint8 // promote to old after surviving this many minor GCs
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.EdenBytes <= 0 || c.SurvivorBytes <= 0 || c.OldBytes <= 0 {
		return fmt.Errorf("heap: all space sizes must be positive: %+v", c)
	}
	if c.TenureAge == 0 {
		return fmt.Errorf("heap: TenureAge must be >= 1")
	}
	return nil
}

// Stats tracks cumulative heap activity.
type Stats struct {
	AllocatedObjects int64
	AllocatedBytes   int64
	PromotedObjects  int64
	PromotedBytes    int64
	SurvivedObjects  int64
	FreedYoungBytes  int64
	FreedOldBytes    int64
	BarrierHits      int64 // old→young pointer stores (remembered-set adds)
}

// Heap is a generational heap instance. It is not safe for concurrent use;
// within the simulation, GC threads interleave deterministically.
type Heap struct {
	cfg  Config
	objs []Object
	free []ObjID

	edenUsed, fromUsed, toUsed, oldUsed int64

	eden []ObjID // objects currently in eden
	from []ObjID // objects currently in the from-survivor space
	to   []ObjID // objects copied to the to-space during the current GC
	old  []ObjID // objects in the old generation

	remembered []ObjID // old objects that may hold young refs (dedup by InRS)

	allocNode uint8 // NUMA node tag for new allocations

	epoch     uint32
	inMinorGC bool

	Stats Stats
}

// New creates a heap.
func New(cfg Config) (*Heap, error) {
	return NewWith(cfg, nil)
}

// Scratch holds a retired heap's backing arrays (the object table, free
// list, and per-space index slices) for reuse by a later NewWith. The
// object table is the largest single allocation of a simulation cell —
// millions of Object records per run — so recycling it per worker is the
// bulk of the experiment runner's steady-state allocation savings. The
// zero value is ready to use.
type Scratch struct {
	objs []Object
	free []ObjID

	eden, from, to, old, remembered []ObjID
}

// NewWith creates a heap like New, adopting sc's backing arrays (sc may be
// nil). The scratch is emptied; reclaim the heap back into it with Reclaim
// once the run is over. Adopted storage differs from a cold start only in
// slice capacity, and object slots are fully reinitialized as they are
// handed out (see newObject), so runs are byte-identical with or without
// scratch.
func NewWith(cfg Config, sc *Scratch) (*Heap, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Heap{cfg: cfg}
	if sc != nil && cap(sc.objs) > 0 {
		h.objs = sc.objs[:1]
		h.objs[0] = Object{Refs: h.objs[0].Refs[:0]} // slot 0 is the nil object
		h.free = sc.free[:0]
		h.eden, h.from, h.to = sc.eden[:0], sc.from[:0], sc.to[:0]
		h.old, h.remembered = sc.old[:0], sc.remembered[:0]
		*sc = Scratch{}
	} else {
		h.objs = make([]Object, 1, 1024) // slot 0 is the nil object
	}
	return h, nil
}

// Reclaim harvests the heap's backing arrays into sc for a later NewWith.
// The heap is unusable afterwards. Object records keep their Refs backing
// arrays (ObjIDs, not pointers — nothing is retained through them), which
// NewWith's resurrect path reuses.
func (h *Heap) Reclaim(sc *Scratch) {
	sc.objs = h.objs[:0]
	sc.free = h.free[:0]
	sc.eden, sc.from, sc.to = h.eden[:0], h.from[:0], h.to[:0]
	sc.old, sc.remembered = h.old[:0], h.remembered[:0]
	h.objs, h.free = nil, nil
	h.eden, h.from, h.to, h.old, h.remembered = nil, nil, nil, nil, nil
}

// Config returns the heap's configuration.
func (h *Heap) Config() Config { return h.cfg }

// SetConfig replaces the space sizes (used by adaptive resizing between
// GCs). Shrinking below current occupancy is rejected.
func (h *Heap) SetConfig(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.EdenBytes < h.edenUsed || cfg.SurvivorBytes < h.fromUsed || cfg.OldBytes < h.oldUsed {
		return fmt.Errorf("heap: cannot shrink below occupancy")
	}
	h.cfg = cfg
	return nil
}

// Usage returns current occupancy of eden, from-survivor and old spaces.
func (h *Heap) Usage() (eden, from, old int64) { return h.edenUsed, h.fromUsed, h.oldUsed }

// Get returns the object for id. The pointer is invalidated by frees.
func (h *Heap) Get(id ObjID) *Object { return &h.objs[id] }

// LiveObjects returns the number of live (non-free) objects.
func (h *Heap) LiveObjects() int {
	return len(h.eden) + len(h.from) + len(h.to) + len(h.old)
}

// EdenFull reports whether an allocation of size bytes would overflow eden.
func (h *Heap) EdenFull(size int32) bool { return h.edenUsed+int64(size) > h.cfg.EdenBytes }

// OldOccupancy returns the old generation's fill fraction.
func (h *Heap) OldOccupancy() float64 { return float64(h.oldUsed) / float64(h.cfg.OldBytes) }

// SetAllocNode tags subsequent allocations with the NUMA node whose local
// memory backs them (first-touch policy: the allocating thread's node).
func (h *Heap) SetAllocNode(node int) {
	if node >= 0 && node < 256 {
		h.allocNode = uint8(node)
	}
}

// Alloc allocates a new object of the given size in eden, referencing refs.
// It returns false when eden is full (a minor GC is needed first).
func (h *Heap) Alloc(size int32, refs ...ObjID) (ObjID, bool) {
	if size <= 0 {
		panic("heap: Alloc with non-positive size")
	}
	if h.edenUsed+int64(size) > h.cfg.EdenBytes {
		return 0, false
	}
	id := h.newObject(size, SpaceEden)
	h.eden = append(h.eden, id)
	h.edenUsed += int64(size)
	o := &h.objs[id]
	o.Refs = append(o.Refs, refs...)
	return id, true
}

// AllocOld allocates directly in the old generation (humongous or cached
// data such as Spark RDD partitions). Returns false when old is full.
func (h *Heap) AllocOld(size int32, refs ...ObjID) (ObjID, bool) {
	if size <= 0 {
		panic("heap: AllocOld with non-positive size")
	}
	if h.oldUsed+int64(size) > h.cfg.OldBytes {
		return 0, false
	}
	id := h.newObject(size, SpaceOld)
	h.old = append(h.old, id)
	h.oldUsed += int64(size)
	o := &h.objs[id]
	for _, r := range refs {
		o.Refs = append(o.Refs, r)
		h.barrier(id, r)
	}
	return id, true
}

func (h *Heap) newObject(size int32, sp Space) ObjID {
	var id ObjID
	if n := len(h.free); n > 0 {
		id = h.free[n-1]
		h.free = h.free[:n-1]
		o := &h.objs[id]
		*o = Object{Size: size, Space: sp, Node: h.allocNode, Refs: o.Refs[:0]}
	} else if len(h.objs) < cap(h.objs) {
		// Growing into capacity adopted from a Scratch: resurrect the stale
		// record like a free-list slot, keeping its Refs backing array.
		h.objs = h.objs[:len(h.objs)+1]
		id = ObjID(len(h.objs) - 1)
		o := &h.objs[id]
		*o = Object{Size: size, Space: sp, Node: h.allocNode, Refs: o.Refs[:0]}
	} else {
		h.objs = append(h.objs, Object{Size: size, Space: sp, Node: h.allocNode})
		id = ObjID(len(h.objs) - 1)
	}
	h.Stats.AllocatedObjects++
	h.Stats.AllocatedBytes += int64(size)
	return id
}

// AddRef appends a reference from parent to child, applying the write
// barrier (old parent + young child → remembered set).
func (h *Heap) AddRef(parent, child ObjID) {
	if parent == 0 || child == 0 {
		return
	}
	p := &h.objs[parent]
	p.Refs = append(p.Refs, child)
	h.barrier(parent, child)
}

// SetRef overwrites reference slot i of parent, applying the write barrier.
func (h *Heap) SetRef(parent ObjID, i int, child ObjID) {
	p := &h.objs[parent]
	p.Refs[i] = child
	if child != 0 {
		h.barrier(parent, child)
	}
}

// ClearRefs drops all outgoing references of an object (e.g. a mutator
// releasing a transient data structure).
func (h *Heap) ClearRefs(id ObjID) {
	if id == 0 {
		return
	}
	h.objs[id].Refs = h.objs[id].Refs[:0]
}

func (h *Heap) barrier(parent, child ObjID) {
	p := &h.objs[parent]
	if p.Space != SpaceOld || p.InRS {
		return
	}
	c := &h.objs[child]
	if c.Space == SpaceEden || c.Space == SpaceFrom || c.Space == SpaceTo {
		p.InRS = true
		h.remembered = append(h.remembered, parent)
		h.Stats.BarrierHits++
	}
}

// RememberedSet returns the old objects registered as possibly holding
// young references, in deterministic (insertion) order.
func (h *Heap) RememberedSet() []ObjID { return h.remembered }

// AgeTable returns survivor-space bytes by object age (index = age), the
// input to HotSpot's adaptive tenuring-threshold computation.
func (h *Heap) AgeTable() []int64 {
	table := make([]int64, 16)
	for _, id := range h.from {
		o := &h.objs[id]
		age := int(o.Age)
		if age > 15 {
			age = 15
		}
		table[age] += int64(o.Size)
	}
	return table
}

// young reports whether an object currently lives in the young generation.
func (h *Heap) young(id ObjID) bool {
	sp := h.objs[id].Space
	return sp == SpaceEden || sp == SpaceFrom
}

// --- Minor (scavenge) GC support -----------------------------------------

// BeginMinorGC starts a scavenge cycle: a fresh visited epoch and an empty
// to-space. Collector threads then call CopyYoung on reachable objects.
func (h *Heap) BeginMinorGC() {
	if h.inMinorGC {
		panic("heap: nested BeginMinorGC")
	}
	h.inMinorGC = true
	h.epoch++
	h.to = h.to[:0]
	h.toUsed = 0
}

// Visited reports whether id was already processed in this GC cycle.
func (h *Heap) Visited(id ObjID) bool { return h.objs[id].mark == h.epoch }

// CopyYoung processes one young object during a scavenge: it "copies" the
// object to the to-space (incrementing its age) or promotes it to the old
// generation when it has reached tenure age or the to-space is full. It
// returns the object's size (the copy cost driver), whether the object was
// promoted, and whether this call was the first visit.
func (h *Heap) CopyYoung(id ObjID) (size int32, promoted, first bool) {
	if !h.inMinorGC {
		panic("heap: CopyYoung outside a minor GC")
	}
	o := &h.objs[id]
	if o.mark == h.epoch {
		return o.Size, o.Space == SpaceOld, false
	}
	if o.Space != SpaceEden && o.Space != SpaceFrom {
		// Old (or already-moved) objects are not scavenged.
		o.mark = h.epoch
		return o.Size, o.Space == SpaceOld, false
	}
	o.mark = h.epoch
	sz := int64(o.Size)
	if o.Age+1 >= h.cfg.TenureAge || h.toUsed+sz > h.cfg.SurvivorBytes {
		// Promote. The old generation may transiently overflow; the
		// caller watches OldOccupancy and schedules a major GC.
		o.Space = SpaceOld
		o.Age = 0
		h.old = append(h.old, id)
		h.oldUsed += sz
		h.Stats.PromotedObjects++
		h.Stats.PromotedBytes += sz
		// A promoted object with young children must enter the RS.
		for _, r := range o.Refs {
			if r != 0 {
				h.barrier(id, r)
			}
		}
		return o.Size, true, true
	}
	o.Space = SpaceTo
	o.Age++
	h.to = append(h.to, id)
	h.toUsed += sz
	h.Stats.SurvivedObjects++
	return o.Size, false, true
}

// FinishMinorGC sweeps eden and the from-space (everything unvisited is
// garbage), swaps the survivor semispaces, and prunes the remembered set.
// It returns the number of bytes freed.
func (h *Heap) FinishMinorGC() int64 {
	if !h.inMinorGC {
		panic("heap: FinishMinorGC without BeginMinorGC")
	}
	var freed int64
	for _, id := range h.eden {
		if o := &h.objs[id]; o.Space == SpaceEden {
			freed += int64(o.Size)
			h.release(id)
		}
	}
	for _, id := range h.from {
		if o := &h.objs[id]; o.Space == SpaceFrom {
			freed += int64(o.Size)
			h.release(id)
		}
	}
	h.eden = h.eden[:0]
	h.edenUsed = 0
	// Swap semispaces: to becomes from.
	for _, id := range h.to {
		h.objs[id].Space = SpaceFrom
	}
	h.from, h.to = h.to, h.from[:0]
	h.fromUsed = h.toUsed
	h.toUsed = 0
	h.Stats.FreedYoungBytes += freed
	h.pruneRememberedSet()
	h.inMinorGC = false
	return freed
}

// pruneRememberedSet drops RS entries that died or no longer reference the
// young generation.
func (h *Heap) pruneRememberedSet() {
	live := h.remembered[:0]
	for _, id := range h.remembered {
		o := &h.objs[id]
		if o.Space != SpaceOld {
			o.InRS = false
			continue
		}
		keep := false
		for _, r := range o.Refs {
			if r != 0 && h.young(r) {
				keep = true
				break
			}
		}
		if keep {
			live = append(live, id)
		} else {
			o.InRS = false
		}
	}
	h.remembered = live
}

// --- Major (full) GC support ----------------------------------------------

// BeginMajorGC starts a full-heap mark cycle with a fresh epoch.
func (h *Heap) BeginMajorGC() {
	h.epoch++
}

// Mark marks one object live in the major GC, returning (size, first visit).
func (h *Heap) Mark(id ObjID) (int32, bool) {
	o := &h.objs[id]
	if o.mark == h.epoch {
		return o.Size, false
	}
	o.mark = h.epoch
	return o.Size, true
}

// FinishMajorGC sweeps every unmarked object in all spaces (a full GC in
// Parallel Scavenge collects the whole heap) and returns (bytes freed from
// old, live bytes in old) — the inputs to the compaction cost model.
func (h *Heap) FinishMajorGC() (freedOld, liveOld int64) {
	sweep := func(list []ObjID, used *int64, freed *int64) []ObjID {
		out := list[:0]
		for _, id := range list {
			o := &h.objs[id]
			if o.mark == h.epoch {
				out = append(out, id)
				continue
			}
			*used -= int64(o.Size)
			*freed += int64(o.Size)
			h.release(id)
		}
		return out
	}
	var freedYoung int64
	h.eden = sweep(h.eden, &h.edenUsed, &freedYoung)
	h.from = sweep(h.from, &h.fromUsed, &freedYoung)
	h.old = sweep(h.old, &h.oldUsed, &freedOld)
	h.Stats.FreedYoungBytes += freedYoung
	h.Stats.FreedOldBytes += freedOld
	h.pruneRememberedSet()
	return freedOld, h.oldUsed
}

func (h *Heap) release(id ObjID) {
	o := &h.objs[id]
	o.Space = SpaceNone
	o.Age = 0
	o.InRS = false
	o.Refs = o.Refs[:0]
	h.free = append(h.free, id)
}

// --- Verification helpers (used by tests as an oracle) ---------------------

// ReachableFrom returns the set of objects reachable from the given roots,
// as a map. It is the sequential oracle the parallel collector is checked
// against.
func (h *Heap) ReachableFrom(roots []ObjID) map[ObjID]bool {
	seen := make(map[ObjID]bool)
	stack := make([]ObjID, 0, len(roots))
	for _, r := range roots {
		if r != 0 && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, r := range h.objs[id].Refs {
			if r != 0 && !seen[r] {
				seen[r] = true
				stack = append(stack, r)
			}
		}
	}
	return seen
}

// CheckInvariants verifies internal accounting; tests call it after
// operations. It returns an error describing the first violation.
func (h *Heap) CheckInvariants() error {
	var eden, from, to, old int64
	count := map[Space]int{}
	for id := 1; id < len(h.objs); id++ {
		o := &h.objs[id]
		count[o.Space]++
		switch o.Space {
		case SpaceEden:
			eden += int64(o.Size)
		case SpaceFrom:
			from += int64(o.Size)
		case SpaceTo:
			to += int64(o.Size)
		case SpaceOld:
			old += int64(o.Size)
		}
	}
	if eden != h.edenUsed {
		return fmt.Errorf("edenUsed=%d but objects sum to %d", h.edenUsed, eden)
	}
	if from != h.fromUsed {
		return fmt.Errorf("fromUsed=%d but objects sum to %d", h.fromUsed, from)
	}
	if to != h.toUsed {
		return fmt.Errorf("toUsed=%d but objects sum to %d", h.toUsed, to)
	}
	if old != h.oldUsed {
		return fmt.Errorf("oldUsed=%d but objects sum to %d", h.oldUsed, old)
	}
	if count[SpaceEden] != len(h.eden) {
		return fmt.Errorf("eden list has %d entries, %d objects tagged eden", len(h.eden), count[SpaceEden])
	}
	if count[SpaceOld] != len(h.old) {
		return fmt.Errorf("old list has %d entries, %d objects tagged old", len(h.old), count[SpaceOld])
	}
	// Remembered-set completeness: every old→young edge is covered.
	for id := 1; id < len(h.objs); id++ {
		o := &h.objs[id]
		if o.Space != SpaceOld {
			continue
		}
		for _, r := range o.Refs {
			if r != 0 && h.young(r) && !o.InRS {
				return fmt.Errorf("old object %d references young %d but is not in RS", id, r)
			}
		}
	}
	return nil
}
