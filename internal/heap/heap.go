// Package heap implements a generational Java-style heap: an eden space,
// two survivor semispaces (from/to), and an old generation, with object
// ages, tenuring, a remembered set maintained by a write barrier, and the
// bookkeeping a scavenging collector needs (§2.1 of the paper).
//
// Object identity is stable: a "copy" during scavenging retags the object's
// space rather than moving bytes, so references never need rewriting. The
// collector still pays the copying *cost* (the cost model lives in package
// pscavenge); what matters for fidelity here is the reachability and
// promotion behaviour, which is real.
//
// Layout: the object table is one flat slice of packed per-object records
// indexed by ObjID, and outgoing references live in one shared arena
// addressed by (offset, length, capacity) triples rather than per-object Go
// slices. GC tracing therefore walks cache-linear memory, and — because the
// table holds no pointers — the *host* Go GC never scans the simulated
// heaps at all. See DESIGN.md §7.
package heap

import "fmt"

// ObjID identifies a heap object. 0 is the nil reference.
type ObjID int32

// Space tags which space an object currently lives in.
type Space uint8

const (
	// SpaceNone marks a free (dead) object slot.
	SpaceNone Space = iota
	// SpaceEden is the allocation space of the young generation.
	SpaceEden
	// SpaceFrom is the occupied survivor semispace.
	SpaceFrom
	// SpaceTo is the empty survivor semispace (only populated during GC).
	SpaceTo
	// SpaceOld is the old (tenured) generation.
	SpaceOld
)

func (s Space) String() string {
	switch s {
	case SpaceNone:
		return "free"
	case SpaceEden:
		return "eden"
	case SpaceFrom:
		return "from"
	case SpaceTo:
		return "to"
	case SpaceOld:
		return "old"
	}
	return fmt.Sprintf("Space(%d)", uint8(s))
}

// Config sizes the heap. All byte figures are model bytes.
type Config struct {
	EdenBytes     int64
	SurvivorBytes int64 // each survivor semispace
	OldBytes      int64
	TenureAge     uint8 // promote to old after surviving this many minor GCs
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.EdenBytes <= 0 || c.SurvivorBytes <= 0 || c.OldBytes <= 0 {
		return fmt.Errorf("heap: all space sizes must be positive: %+v", c)
	}
	if c.TenureAge == 0 {
		return fmt.Errorf("heap: TenureAge must be >= 1")
	}
	return nil
}

// Stats tracks cumulative heap activity.
type Stats struct {
	AllocatedObjects int64
	AllocatedBytes   int64
	PromotedObjects  int64
	PromotedBytes    int64
	SurvivedObjects  int64
	FreedYoungBytes  int64
	FreedOldBytes    int64
	BarrierHits      int64 // old→young pointer stores (remembered-set adds)
	RefCompactions   int64 // refs-arena compactions (GC-time housekeeping)
}

// objMeta is one object's packed record in the object table: identity
// fields, the visited mark, and the refs-arena reservation, sized to 24
// bytes so consecutive ObjIDs share cache lines.
type objMeta struct {
	size   int32
	mark   uint32
	refOff uint32
	refLen uint32
	refCap uint32
	age    uint8
	space  Space
	node   uint8 // NUMA node backing the object's memory
	inRS   bool  // old object registered in the remembered set
}

// Heap is a generational heap instance. It is not safe for concurrent use;
// within the simulation, GC threads interleave deterministically.
type Heap struct {
	cfg Config

	// Object table: index i holds object i's packed record. Slot 0 is the
	// nil object. The table holds no Go pointers, so the host GC skips it
	// entirely. One record per object (instead of nine parallel arrays)
	// means an allocation or a tracing visit touches one cache line, not
	// nine — the dominant memory-traffic saving of the Fig10 hot path.
	meta []objMeta

	// Outgoing references live in one shared arena: object i's refs are
	// refs[meta[i].refOff : +refLen], with refCap arena slots reserved.
	// Blocks are allocated at the arena tail and relocated (doubling) when
	// they outgrow their reservation; dead blocks are reclaimed by
	// compactRefs at GC boundaries.
	refs []ObjID

	refsLive int64   // sum of refLen over live objects (compaction trigger)
	refsBack []ObjID // spare arena buffer, swapped in by compactRefs

	free []ObjID

	edenUsed, fromUsed, toUsed, oldUsed int64

	eden []ObjID // objects currently in eden
	from []ObjID // objects currently in the from-survivor space
	to   []ObjID // objects copied to the to-space during the current GC
	old  []ObjID // objects in the old generation

	remembered []ObjID // old objects that may hold young refs (dedup by InRS)

	allocNode uint8 // NUMA node tag for new allocations

	epoch     uint32
	inMinorGC bool

	Stats Stats
}

// New creates a heap.
func New(cfg Config) (*Heap, error) {
	return NewWith(cfg, nil)
}

// Scratch holds a retired heap's backing arrays (the object table, refs
// arena, free list, and per-space index slices) for reuse by a later
// NewWith. The object table and arena are the largest allocations of a
// simulation cell — millions of object records per run — so recycling them
// per worker is the bulk of the experiment runner's steady-state allocation
// savings. The zero value is ready to use.
type Scratch struct {
	meta []objMeta

	refs, refsBack []ObjID

	free []ObjID

	eden, from, to, old, remembered []ObjID
}

// NewWith creates a heap like New, adopting sc's backing arrays (sc may be
// nil). The scratch is emptied; reclaim the heap back into it with Reclaim
// once the run is over. Adopted storage differs from a cold start only in
// slice capacity, and object slots are fully reinitialized as they are
// handed out (see newObject), so runs are byte-identical with or without
// scratch.
func NewWith(cfg Config, sc *Scratch) (*Heap, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Heap{cfg: cfg}
	if sc != nil && cap(sc.meta) > 0 {
		h.meta = append(sc.meta[:0], objMeta{space: SpaceNone}) // slot 0 is the nil object
		h.refs, h.refsBack = sc.refs[:0], sc.refsBack[:0]
		h.free = sc.free[:0]
		h.eden, h.from, h.to = sc.eden[:0], sc.from[:0], sc.to[:0]
		h.old, h.remembered = sc.old[:0], sc.remembered[:0]
		*sc = Scratch{}
	} else {
		h.meta = make([]objMeta, 1, 1024)
	}
	return h, nil
}

// Reclaim harvests the heap's backing arrays into sc for a later NewWith.
// The heap is unusable afterwards. Everything is ObjIDs and scalars — no
// pointers — so truncation alone recycles the storage.
func (h *Heap) Reclaim(sc *Scratch) {
	*sc = Scratch{
		meta: h.meta[:0],
		refs: h.refs[:0], refsBack: h.refsBack[:0],
		free: h.free[:0],
		eden: h.eden[:0], from: h.from[:0], to: h.to[:0],
		old: h.old[:0], remembered: h.remembered[:0],
	}
	*h = Heap{cfg: h.cfg}
}

// Config returns the heap's configuration.
func (h *Heap) Config() Config { return h.cfg }

// SetConfig replaces the space sizes (used by adaptive resizing between
// GCs). Shrinking below current occupancy is rejected.
func (h *Heap) SetConfig(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.EdenBytes < h.edenUsed || cfg.SurvivorBytes < h.fromUsed || cfg.OldBytes < h.oldUsed {
		return fmt.Errorf("heap: cannot shrink below occupancy")
	}
	h.cfg = cfg
	return nil
}

// Usage returns current occupancy of eden, from-survivor and old spaces.
func (h *Heap) Usage() (eden, from, old int64) { return h.edenUsed, h.fromUsed, h.oldUsed }

// --- Per-object accessors --------------------------------------------------

// Refs returns object id's outgoing references as a view into the shared
// arena. The view is invalidated by any operation that can grow or compact
// the arena (Alloc, AllocOld, AddRef, FinishMinorGC, FinishMajorGC); don't
// hold it across those. In-place writes through the view are visible to the
// heap (TrimAnchor-style filtering relies on this).
func (h *Heap) Refs(id ObjID) []ObjID {
	m := &h.meta[id]
	return h.refs[m.refOff : m.refOff+m.refLen : m.refOff+m.refCap]
}

// RefLen returns the number of outgoing references of id without
// materializing the view.
func (h *Heap) RefLen(id ObjID) int { return int(h.meta[id].refLen) }

// SizeOf returns object id's size in model bytes.
func (h *Heap) SizeOf(id ObjID) int32 { return h.meta[id].size }

// AgeOf returns object id's age (minor GCs survived).
func (h *Heap) AgeOf(id ObjID) uint8 { return h.meta[id].age }

// SpaceOf returns the space object id currently lives in.
func (h *Heap) SpaceOf(id ObjID) Space { return h.meta[id].space }

// NodeOf returns the NUMA node whose memory backs object id.
func (h *Heap) NodeOf(id ObjID) uint8 { return h.meta[id].node }

// SetNode retags object id's backing NUMA node (a GC thread copying the
// object to its own node's memory).
func (h *Heap) SetNode(id ObjID, node uint8) { h.meta[id].node = node }

// InRS reports whether old object id is registered in the remembered set.
func (h *Heap) InRS(id ObjID) bool { return h.meta[id].inRS }

// LiveObjects returns the number of live (non-free) objects.
func (h *Heap) LiveObjects() int {
	return len(h.eden) + len(h.from) + len(h.to) + len(h.old)
}

// EdenFull reports whether an allocation of size bytes would overflow eden.
func (h *Heap) EdenFull(size int32) bool { return h.edenUsed+int64(size) > h.cfg.EdenBytes }

// OldOccupancy returns the old generation's fill fraction.
func (h *Heap) OldOccupancy() float64 { return float64(h.oldUsed) / float64(h.cfg.OldBytes) }

// SetAllocNode tags subsequent allocations with the NUMA node whose local
// memory backs them (first-touch policy: the allocating thread's node).
func (h *Heap) SetAllocNode(node int) {
	if node >= 0 && node < 256 {
		h.allocNode = uint8(node)
	}
}

// Alloc allocates a new object of the given size in eden, referencing refs.
// It returns false when eden is full (a minor GC is needed first).
func (h *Heap) Alloc(size int32, refs ...ObjID) (ObjID, bool) {
	if size <= 0 {
		panic("heap: Alloc with non-positive size")
	}
	if h.edenUsed+int64(size) > h.cfg.EdenBytes {
		return 0, false
	}
	id := h.newObject(size, SpaceEden)
	h.eden = append(h.eden, id)
	h.edenUsed += int64(size)
	h.initRefs(id, refs)
	return id, true
}

// AllocOld allocates directly in the old generation (humongous or cached
// data such as Spark RDD partitions). Returns false when old is full.
func (h *Heap) AllocOld(size int32, refs ...ObjID) (ObjID, bool) {
	if size <= 0 {
		panic("heap: AllocOld with non-positive size")
	}
	if h.oldUsed+int64(size) > h.cfg.OldBytes {
		return 0, false
	}
	id := h.newObject(size, SpaceOld)
	h.old = append(h.old, id)
	h.oldUsed += int64(size)
	h.initRefs(id, refs)
	for _, r := range refs {
		h.barrier(id, r)
	}
	return id, true
}

func (h *Heap) newObject(size int32, sp Space) ObjID {
	var id ObjID
	if n := len(h.free); n > 0 {
		// A recycled slot keeps its refs-arena reservation (refOff/refCap,
		// with refLen already zeroed by release) — the moral equivalent of
		// the old per-object Refs[:0] reuse.
		id = h.free[n-1]
		h.free = h.free[:n-1]
	} else {
		id = ObjID(len(h.meta))
		h.meta = append(h.meta, objMeta{})
	}
	rec := &h.meta[id]
	rec.size = size
	rec.age = 0
	rec.space = sp
	rec.node = h.allocNode
	rec.mark = 0
	rec.inRS = false
	h.Stats.AllocatedObjects++
	h.Stats.AllocatedBytes += int64(size)
	return id
}

// initRefs installs a fresh object's initial reference list.
func (h *Heap) initRefs(id ObjID, refs []ObjID) {
	n := uint32(len(refs))
	if n == 0 {
		return
	}
	if h.meta[id].refCap < n {
		h.growRefs(id, n)
	}
	m := &h.meta[id]
	copy(h.refs[m.refOff:m.refOff+n], refs)
	m.refLen = n
	h.refsLive += int64(n)
}

// growRefs relocates id's reference block to the arena tail with capacity
// at least need (amortized doubling). Existing refs are carried over.
func (h *Heap) growRefs(id ObjID, need uint32) {
	newCap := h.meta[id].refCap * 2
	if newCap < need {
		newCap = need
	}
	if newCap < 4 {
		newCap = 4
	}
	off := uint32(len(h.refs))
	total := int(off) + int(newCap)
	if total > cap(h.refs) {
		grown := make([]ObjID, total, max(total, 2*cap(h.refs)))
		copy(grown, h.refs)
		h.refs = grown
	} else {
		h.refs = h.refs[:total]
	}
	if n := h.meta[id].refLen; n > 0 {
		copy(h.refs[off:off+n], h.refs[h.meta[id].refOff:h.meta[id].refOff+n])
	}
	h.meta[id].refOff, h.meta[id].refCap = off, newCap
}

// AddRef appends a reference from parent to child, applying the write
// barrier (old parent + young child → remembered set).
func (h *Heap) AddRef(parent, child ObjID) {
	if parent == 0 || child == 0 {
		return
	}
	h.appendRef(parent, child)
	h.barrier(parent, child)
}

func (h *Heap) appendRef(parent, child ObjID) {
	if h.meta[parent].refLen == h.meta[parent].refCap {
		h.growRefs(parent, h.meta[parent].refLen+1)
	}
	m := &h.meta[parent]
	h.refs[m.refOff+m.refLen] = child
	m.refLen++
	h.refsLive++
}

// AddRefUnsafe appends a reference without applying the write barrier. It
// exists so tests can corrupt the heap deliberately (VerifyHeap coverage);
// simulation code must use AddRef.
func (h *Heap) AddRefUnsafe(parent, child ObjID) { h.appendRef(parent, child) }

// SetRef overwrites reference slot i of parent, applying the write barrier.
func (h *Heap) SetRef(parent ObjID, i int, child ObjID) {
	if uint32(i) >= h.meta[parent].refLen {
		panic("heap: SetRef index out of range")
	}
	h.refs[h.meta[parent].refOff+uint32(i)] = child
	if child != 0 {
		h.barrier(parent, child)
	}
}

// ClearRefs drops all outgoing references of an object (e.g. a mutator
// releasing a transient data structure).
func (h *Heap) ClearRefs(id ObjID) {
	if id == 0 {
		return
	}
	h.refsLive -= int64(h.meta[id].refLen)
	h.meta[id].refLen = 0
}

// TruncateRefs keeps only the first n outgoing references of id. Callers
// that filter a Refs view in place finish with this (see
// objgraph.TrimAnchor).
func (h *Heap) TruncateRefs(id ObjID, n int) {
	if uint32(n) > h.meta[id].refLen {
		panic("heap: TruncateRefs beyond current length")
	}
	h.refsLive -= int64(h.meta[id].refLen) - int64(n)
	h.meta[id].refLen = uint32(n)
}

func (h *Heap) barrier(parent, child ObjID) {
	p := &h.meta[parent]
	if p.space != SpaceOld || p.inRS {
		return
	}
	if sp := h.meta[child].space; sp == SpaceEden || sp == SpaceFrom || sp == SpaceTo {
		p.inRS = true
		h.remembered = append(h.remembered, parent)
		h.Stats.BarrierHits++
	}
}

// RememberedSet returns the old objects registered as possibly holding
// young references, in deterministic (insertion) order.
func (h *Heap) RememberedSet() []ObjID { return h.remembered }

// AgeTable returns survivor-space bytes by object age (index = age), the
// input to HotSpot's adaptive tenuring-threshold computation.
func (h *Heap) AgeTable() []int64 {
	table := make([]int64, 16)
	for _, id := range h.from {
		age := int(h.meta[id].age)
		if age > 15 {
			age = 15
		}
		table[age] += int64(h.meta[id].size)
	}
	return table
}

// young reports whether an object currently lives in the young generation.
func (h *Heap) young(id ObjID) bool {
	sp := h.meta[id].space
	return sp == SpaceEden || sp == SpaceFrom
}

// --- Minor (scavenge) GC support -----------------------------------------

// BeginMinorGC starts a scavenge cycle: a fresh visited epoch and an empty
// to-space. Collector threads then call CopyYoung on reachable objects.
func (h *Heap) BeginMinorGC() {
	if h.inMinorGC {
		panic("heap: nested BeginMinorGC")
	}
	h.inMinorGC = true
	h.epoch++
	h.to = h.to[:0]
	h.toUsed = 0
}

// Visited reports whether id was already processed in this GC cycle.
func (h *Heap) Visited(id ObjID) bool { return h.meta[id].mark == h.epoch }

// CopyYoung processes one young object during a scavenge: it "copies" the
// object to the to-space (incrementing its age) or promotes it to the old
// generation when it has reached tenure age or the to-space is full. It
// returns the object's size (the copy cost driver), whether the object was
// promoted, and whether this call was the first visit.
func (h *Heap) CopyYoung(id ObjID) (size int32, promoted, first bool) {
	if !h.inMinorGC {
		panic("heap: CopyYoung outside a minor GC")
	}
	m := &h.meta[id]
	if m.mark == h.epoch {
		return m.size, m.space == SpaceOld, false
	}
	if sp := m.space; sp != SpaceEden && sp != SpaceFrom {
		// Old (or already-moved) objects are not scavenged.
		m.mark = h.epoch
		return m.size, sp == SpaceOld, false
	}
	m.mark = h.epoch
	sz := int64(m.size)
	if m.age+1 >= h.cfg.TenureAge || h.toUsed+sz > h.cfg.SurvivorBytes {
		// Promote. The old generation may transiently overflow; the
		// caller watches OldOccupancy and schedules a major GC.
		m.space = SpaceOld
		m.age = 0
		h.old = append(h.old, id)
		h.oldUsed += sz
		h.Stats.PromotedObjects++
		h.Stats.PromotedBytes += sz
		// A promoted object with young children must enter the RS.
		off, n := m.refOff, m.refLen
		for _, r := range h.refs[off : off+n] {
			if r != 0 {
				h.barrier(id, r)
			}
		}
		return m.size, true, true
	}
	m.space = SpaceTo
	m.age++
	h.to = append(h.to, id)
	h.toUsed += sz
	h.Stats.SurvivedObjects++
	return m.size, false, true
}

// FinishMinorGC sweeps eden and the from-space (everything unvisited is
// garbage), swaps the survivor semispaces, and prunes the remembered set.
// It returns the number of bytes freed.
func (h *Heap) FinishMinorGC() int64 {
	if !h.inMinorGC {
		panic("heap: FinishMinorGC without BeginMinorGC")
	}
	var freed int64
	for _, id := range h.eden {
		if m := &h.meta[id]; m.space == SpaceEden {
			freed += int64(m.size)
			h.release(id)
		}
	}
	for _, id := range h.from {
		if m := &h.meta[id]; m.space == SpaceFrom {
			freed += int64(m.size)
			h.release(id)
		}
	}
	h.eden = h.eden[:0]
	h.edenUsed = 0
	// Swap semispaces: to becomes from.
	for _, id := range h.to {
		h.meta[id].space = SpaceFrom
	}
	h.from, h.to = h.to, h.from[:0]
	h.fromUsed = h.toUsed
	h.toUsed = 0
	h.Stats.FreedYoungBytes += freed
	h.pruneRememberedSet()
	h.inMinorGC = false
	h.maybeCompactRefs()
	return freed
}

// pruneRememberedSet drops RS entries that died or no longer reference the
// young generation.
func (h *Heap) pruneRememberedSet() {
	live := h.remembered[:0]
	for _, id := range h.remembered {
		m := &h.meta[id]
		if m.space != SpaceOld {
			m.inRS = false
			continue
		}
		keep := false
		off, n := m.refOff, m.refLen
		for _, r := range h.refs[off : off+n] {
			if r != 0 && h.young(r) {
				keep = true
				break
			}
		}
		if keep {
			live = append(live, id)
		} else {
			m.inRS = false
		}
	}
	h.remembered = live
}

// --- Refs-arena compaction -------------------------------------------------

// maybeCompactRefs compacts the shared refs arena when dead and
// over-reserved blocks dominate it. It runs only at GC boundaries — a
// deterministic point where no Refs views are outstanding — so arena
// housekeeping is invisible to the simulation.
func (h *Heap) maybeCompactRefs() {
	if int64(len(h.refs)) > 4*h.refsLive+4096 {
		h.compactRefs()
	}
}

// compactRefs rewrites every live object's reference block contiguously
// into the spare arena buffer and swaps it in. Reservations shrink to the
// live length; free slots lose their (now dangling) reservations.
func (h *Heap) compactRefs() {
	dst := h.refsBack[:0]
	for _, list := range [][]ObjID{h.eden, h.from, h.to, h.old} {
		for _, id := range list {
			n := h.meta[id].refLen
			if n == 0 {
				h.meta[id].refOff, h.meta[id].refCap = 0, 0
				continue
			}
			off := h.meta[id].refOff
			newOff := uint32(len(dst))
			dst = append(dst, h.refs[off:off+n]...)
			h.meta[id].refOff, h.meta[id].refCap = newOff, n
		}
	}
	for _, id := range h.free {
		h.meta[id].refOff, h.meta[id].refLen, h.meta[id].refCap = 0, 0, 0
	}
	h.refs, h.refsBack = dst, h.refs[:0]
	h.Stats.RefCompactions++
}

// --- Major (full) GC support ----------------------------------------------

// BeginMajorGC starts a full-heap mark cycle with a fresh epoch.
func (h *Heap) BeginMajorGC() {
	h.epoch++
}

// Mark marks one object live in the major GC, returning (size, first visit).
func (h *Heap) Mark(id ObjID) (int32, bool) {
	m := &h.meta[id]
	if m.mark == h.epoch {
		return m.size, false
	}
	m.mark = h.epoch
	return m.size, true
}

// FinishMajorGC sweeps every unmarked object in all spaces (a full GC in
// Parallel Scavenge collects the whole heap) and returns (bytes freed from
// old, live bytes in old) — the inputs to the compaction cost model.
func (h *Heap) FinishMajorGC() (freedOld, liveOld int64) {
	sweep := func(list []ObjID, used *int64, freed *int64) []ObjID {
		out := list[:0]
		for _, id := range list {
			m := &h.meta[id]
			if m.mark == h.epoch {
				out = append(out, id)
				continue
			}
			*used -= int64(m.size)
			*freed += int64(m.size)
			h.release(id)
		}
		return out
	}
	var freedYoung int64
	h.eden = sweep(h.eden, &h.edenUsed, &freedYoung)
	h.from = sweep(h.from, &h.fromUsed, &freedYoung)
	h.old = sweep(h.old, &h.oldUsed, &freedOld)
	h.Stats.FreedYoungBytes += freedYoung
	h.Stats.FreedOldBytes += freedOld
	h.pruneRememberedSet()
	h.maybeCompactRefs()
	return freedOld, h.oldUsed
}

func (h *Heap) release(id ObjID) {
	m := &h.meta[id]
	m.space = SpaceNone
	m.age = 0
	m.inRS = false
	h.refsLive -= int64(m.refLen)
	m.refLen = 0
	h.free = append(h.free, id)
}

// --- Verification helpers (used by tests as an oracle) ---------------------

// ReachableFrom returns the set of objects reachable from the given roots,
// as a map. It is the sequential oracle the parallel collector is checked
// against.
func (h *Heap) ReachableFrom(roots []ObjID) map[ObjID]bool {
	seen := make(map[ObjID]bool)
	stack := make([]ObjID, 0, len(roots))
	for _, r := range roots {
		if r != 0 && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, r := range h.Refs(id) {
			if r != 0 && !seen[r] {
				seen[r] = true
				stack = append(stack, r)
			}
		}
	}
	return seen
}

// CheckInvariants verifies internal accounting; tests call it after
// operations. It returns an error describing the first violation.
func (h *Heap) CheckInvariants() error {
	var eden, from, to, old int64
	count := map[Space]int{}
	for id := 1; id < len(h.meta); id++ {
		count[h.meta[id].space]++
		switch h.meta[id].space {
		case SpaceEden:
			eden += int64(h.meta[id].size)
		case SpaceFrom:
			from += int64(h.meta[id].size)
		case SpaceTo:
			to += int64(h.meta[id].size)
		case SpaceOld:
			old += int64(h.meta[id].size)
		}
	}
	if eden != h.edenUsed {
		return fmt.Errorf("edenUsed=%d but objects sum to %d", h.edenUsed, eden)
	}
	if from != h.fromUsed {
		return fmt.Errorf("fromUsed=%d but objects sum to %d", h.fromUsed, from)
	}
	if to != h.toUsed {
		return fmt.Errorf("toUsed=%d but objects sum to %d", h.toUsed, to)
	}
	if old != h.oldUsed {
		return fmt.Errorf("oldUsed=%d but objects sum to %d", h.oldUsed, old)
	}
	if count[SpaceEden] != len(h.eden) {
		return fmt.Errorf("eden list has %d entries, %d objects tagged eden", len(h.eden), count[SpaceEden])
	}
	if count[SpaceOld] != len(h.old) {
		return fmt.Errorf("old list has %d entries, %d objects tagged old", len(h.old), count[SpaceOld])
	}
	// Remembered-set completeness: every old→young edge is covered.
	for id := 1; id < len(h.meta); id++ {
		if h.meta[id].space != SpaceOld {
			continue
		}
		for _, r := range h.Refs(ObjID(id)) {
			if r != 0 && h.young(r) && !h.meta[id].inRS {
				return fmt.Errorf("old object %d references young %d but is not in RS", id, r)
			}
		}
	}
	// Refs-arena block accounting: live lengths sum to refsLive, and no
	// block escapes the arena.
	var live int64
	for id := 1; id < len(h.meta); id++ {
		if h.meta[id].space != SpaceNone {
			live += int64(h.meta[id].refLen)
		}
		if h.meta[id].refLen > h.meta[id].refCap {
			return fmt.Errorf("object %d refLen %d > refCap %d", id, h.meta[id].refLen, h.meta[id].refCap)
		}
		if int(h.meta[id].refOff)+int(h.meta[id].refCap) > len(h.refs) {
			return fmt.Errorf("object %d refs block [%d,+%d) escapes arena of %d", id, h.meta[id].refOff, h.meta[id].refCap, len(h.refs))
		}
	}
	if live != h.refsLive {
		return fmt.Errorf("refsLive=%d but live blocks sum to %d", h.refsLive, live)
	}
	return nil
}
