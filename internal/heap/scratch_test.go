package heap

import (
	"math/rand"
	"testing"
)

// churn allocates, links, and collects with a seeded RNG, returning a
// fingerprint of the heap's observable state.
func churn(h *Heap, seed int64) (Stats, int, int64, int64, int64) {
	rng := rand.New(rand.NewSource(seed))
	var live []ObjID
	for i := 0; i < 4000; i++ {
		id, ok := h.Alloc(64 + int32(rng.Intn(256)))
		if !ok {
			h.BeginMinorGC()
			keep := live[:0]
			for _, r := range live {
				if rng.Intn(3) > 0 {
					h.CopyYoung(r)
					keep = append(keep, r)
				}
			}
			for _, r := range h.RememberedSet() {
				for _, c := range h.Refs(r) {
					if h.young(c) && !h.Visited(c) {
						h.CopyYoung(c)
					}
				}
			}
			live = keep
			h.FinishMinorGC()
			id, ok = h.Alloc(64 + int32(rng.Intn(256)))
			if !ok {
				break
			}
		}
		if len(live) > 0 && rng.Intn(4) == 0 {
			h.AddRef(live[rng.Intn(len(live))], id)
		}
		if len(live) < 300 || rng.Intn(2) == 0 {
			live = append(live, id)
		}
	}
	eden, from, old := h.Usage()
	return h.Stats, h.LiveObjects(), eden, from, old
}

// TestHeapScratchReuseIsInvisible runs the same seeded churn on a cold
// heap and on one built from another run's reclaimed object table; all
// observables must match, because the resurrect paths fully reinitialize
// every adopted record.
func TestHeapScratchReuseIsInvisible(t *testing.T) {
	cfg := Config{EdenBytes: 1 << 18, SurvivorBytes: 1 << 16, OldBytes: 1 << 20, TenureAge: 3}

	cold, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s0, l0, e0, f0, o0 := churn(cold, 5)

	var sc Scratch
	warmup, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	churn(warmup, 77) // different seed: nothing carries over but capacity
	warmup.Reclaim(&sc)
	if cap(sc.meta) < 2 {
		t.Fatal("reclaim harvested no object table")
	}

	warm, err := NewWith(cfg, &sc)
	if err != nil {
		t.Fatal(err)
	}
	s1, l1, e1, f1, o1 := churn(warm, 5)

	if s0 != s1 {
		t.Errorf("stats diverged:\ncold %+v\nwarm %+v", s0, s1)
	}
	if l0 != l1 || e0 != e1 || f0 != f1 || o0 != o1 {
		t.Errorf("occupancy diverged: cold live=%d eden=%d from=%d old=%d, warm live=%d eden=%d from=%d old=%d",
			l0, e0, f0, o0, l1, e1, f1, o1)
	}
}
