package heap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{EdenBytes: 10000, SurvivorBytes: 2000, OldBytes: 50000, TenureAge: 3}
}

func mustNew(t *testing.T, cfg Config) *Heap {
	t.Helper()
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{EdenBytes: 0, SurvivorBytes: 1, OldBytes: 1, TenureAge: 1},
		{EdenBytes: 1, SurvivorBytes: -1, OldBytes: 1, TenureAge: 1},
		{EdenBytes: 1, SurvivorBytes: 1, OldBytes: 0, TenureAge: 1},
		{EdenBytes: 1, SurvivorBytes: 1, OldBytes: 1, TenureAge: 0},
	}
	for _, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("New accepted invalid config %+v", c)
		}
	}
}

func TestAllocBasics(t *testing.T) {
	h := mustNew(t, testConfig())
	a, ok := h.Alloc(100)
	if !ok || a == 0 {
		t.Fatal("Alloc failed on empty heap")
	}
	b, ok := h.Alloc(50, a)
	if !ok {
		t.Fatal("second Alloc failed")
	}
	if got := h.Refs(b); len(got) != 1 || got[0] != a {
		t.Errorf("refs = %v, want [a]", got)
	}
	eden, _, _ := h.Usage()
	if eden != 150 {
		t.Errorf("eden usage = %d, want 150", eden)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAllocFailsWhenEdenFull(t *testing.T) {
	h := mustNew(t, Config{EdenBytes: 100, SurvivorBytes: 100, OldBytes: 100, TenureAge: 2})
	if _, ok := h.Alloc(60); !ok {
		t.Fatal("first alloc should fit")
	}
	if _, ok := h.Alloc(60); ok {
		t.Error("alloc beyond eden capacity succeeded")
	}
	if !h.EdenFull(60) {
		t.Error("EdenFull(60) = false")
	}
	if h.EdenFull(40) {
		t.Error("EdenFull(40) = true, but it fits")
	}
}

func TestMinorGCCollectsGarbage(t *testing.T) {
	h := mustNew(t, testConfig())
	live, _ := h.Alloc(100)
	dead, _ := h.Alloc(200)
	_ = dead
	h.BeginMinorGC()
	h.CopyYoung(live)
	freed := h.FinishMinorGC()
	if freed != 200 {
		t.Errorf("freed = %d, want 200 (the dead object)", freed)
	}
	if h.SpaceOf(live) != SpaceFrom {
		t.Errorf("survivor in space %v, want from", h.SpaceOf(live))
	}
	if h.AgeOf(live) != 1 {
		t.Errorf("survivor age = %d, want 1", h.AgeOf(live))
	}
	eden, from, _ := h.Usage()
	if eden != 0 || from != 100 {
		t.Errorf("after GC eden=%d from=%d, want 0/100", eden, from)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestTenuringPromotesAfterAge(t *testing.T) {
	h := mustNew(t, testConfig()) // TenureAge 3
	obj, _ := h.Alloc(100)
	for i := 0; i < 2; i++ {
		h.BeginMinorGC()
		if _, promoted, _ := h.CopyYoung(obj); promoted {
			t.Fatalf("promoted on GC %d, want survivor copy", i)
		}
		h.FinishMinorGC()
	}
	h.BeginMinorGC()
	_, promoted, _ := h.CopyYoung(obj)
	h.FinishMinorGC()
	if !promoted {
		t.Error("object not promoted at tenure age")
	}
	if h.SpaceOf(obj) != SpaceOld {
		t.Errorf("space = %v, want old", h.SpaceOf(obj))
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSurvivorOverflowPromotes(t *testing.T) {
	h := mustNew(t, Config{EdenBytes: 10000, SurvivorBytes: 150, OldBytes: 10000, TenureAge: 10})
	a, _ := h.Alloc(100)
	b, _ := h.Alloc(100)
	h.BeginMinorGC()
	_, p1, _ := h.CopyYoung(a)
	_, p2, _ := h.CopyYoung(b)
	h.FinishMinorGC()
	if p1 {
		t.Error("first object promoted although survivor space had room")
	}
	if !p2 {
		t.Error("second object not promoted on survivor overflow")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCopyYoungIdempotent(t *testing.T) {
	h := mustNew(t, testConfig())
	a, _ := h.Alloc(100)
	h.BeginMinorGC()
	_, _, first := h.CopyYoung(a)
	if !first {
		t.Error("first visit not reported")
	}
	_, _, again := h.CopyYoung(a)
	if again {
		t.Error("second visit reported as first")
	}
	h.FinishMinorGC()
	_, fromUsed, _ := h.Usage()
	if fromUsed != 100 {
		t.Errorf("double copy changed accounting: from=%d, want 100", fromUsed)
	}
}

func TestWriteBarrierMaintainsRememberedSet(t *testing.T) {
	h := mustNew(t, testConfig())
	oldObj, ok := h.AllocOld(500)
	if !ok {
		t.Fatal("AllocOld failed")
	}
	young, _ := h.Alloc(50)
	h.AddRef(oldObj, young)
	if !h.InRS(oldObj) {
		t.Error("old→young store did not enter the remembered set")
	}
	rs := h.RememberedSet()
	if len(rs) != 1 || rs[0] != oldObj {
		t.Errorf("RememberedSet = %v, want [oldObj]", rs)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRememberedSetPrunedAfterGC(t *testing.T) {
	h := mustNew(t, testConfig())
	oldObj, _ := h.AllocOld(500)
	young, _ := h.Alloc(50)
	h.AddRef(oldObj, young)
	// GC promotes the young object directly? No: age 0 < 3, so it survives
	// to from-space; the RS entry must be kept.
	h.BeginMinorGC()
	h.CopyYoung(young)
	h.FinishMinorGC()
	if len(h.RememberedSet()) != 1 {
		t.Errorf("RS pruned although child still young: %v", h.RememberedSet())
	}
	// Drop the reference; the next GC prunes the entry (child dies).
	h.ClearRefs(oldObj)
	h.BeginMinorGC()
	h.FinishMinorGC()
	if len(h.RememberedSet()) != 0 {
		t.Errorf("RS not pruned after reference cleared: %v", h.RememberedSet())
	}
	if h.InRS(oldObj) {
		t.Error("InRS flag not cleared")
	}
}

func TestPromotedObjectWithYoungChildrenEntersRS(t *testing.T) {
	h := mustNew(t, Config{EdenBytes: 10000, SurvivorBytes: 2000, OldBytes: 50000, TenureAge: 1})
	child, _ := h.Alloc(10)
	parent, _ := h.Alloc(100, child)
	h.BeginMinorGC()
	// Scavenge parent first: it promotes (tenure age 1) while child is
	// still young at that moment — classic RS update case. Child then
	// promotes too; the prune at FinishMinorGC drops the stale entry.
	h.CopyYoung(parent)
	if !h.InRS(parent) {
		t.Error("promoted parent with young child missing from RS")
	}
	h.CopyYoung(child)
	h.FinishMinorGC()
	if len(h.RememberedSet()) != 0 {
		t.Error("RS entry kept although child promoted as well")
	}
}

func TestMajorGCSweepsAllSpaces(t *testing.T) {
	h := mustNew(t, testConfig())
	liveOld, _ := h.AllocOld(300)
	deadOld, _ := h.AllocOld(400)
	liveYoung, _ := h.Alloc(30)
	deadYoung, _ := h.Alloc(70)
	_ = deadOld
	_ = deadYoung
	h.BeginMajorGC()
	h.Mark(liveOld)
	h.Mark(liveYoung)
	freedOld, liveOldBytes := h.FinishMajorGC()
	if freedOld != 400 {
		t.Errorf("freedOld = %d, want 400", freedOld)
	}
	if liveOldBytes != 300 {
		t.Errorf("liveOld = %d, want 300", liveOldBytes)
	}
	eden, _, old := h.Usage()
	if eden != 30 || old != 300 {
		t.Errorf("after full GC eden=%d old=%d, want 30/300", eden, old)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSlotReuseAfterFree(t *testing.T) {
	h := mustNew(t, testConfig())
	a, _ := h.Alloc(100)
	h.BeginMinorGC()
	h.FinishMinorGC() // a dies
	b, _ := h.Alloc(60)
	if b != a {
		t.Errorf("slot not reused: got %d, want %d", b, a)
	}
	if h.SizeOf(b) != 60 || h.AgeOf(b) != 0 || h.RefLen(b) != 0 || h.InRS(b) {
		t.Errorf("reused slot not reset: size=%d age=%d refs=%d inRS=%v",
			h.SizeOf(b), h.AgeOf(b), h.RefLen(b), h.InRS(b))
	}
}

func TestReachableFromOracle(t *testing.T) {
	h := mustNew(t, testConfig())
	a, _ := h.Alloc(10)
	b, _ := h.Alloc(10, a)
	c, _ := h.Alloc(10, b)
	d, _ := h.Alloc(10) // unreachable
	reach := h.ReachableFrom([]ObjID{c})
	if !reach[a] || !reach[b] || !reach[c] {
		t.Error("transitively reachable objects missing")
	}
	if reach[d] {
		t.Error("unreachable object reported reachable")
	}
	// Cycles must terminate.
	h.AddRef(a, c)
	reach = h.ReachableFrom([]ObjID{a})
	if len(reach) != 3 {
		t.Errorf("cycle reachability = %d objects, want 3", len(reach))
	}
}

func TestSetConfigResizing(t *testing.T) {
	h := mustNew(t, testConfig())
	if _, ok := h.Alloc(5000); !ok {
		t.Fatal("alloc failed")
	}
	cfg := h.Config()
	cfg.EdenBytes = 4000 // below occupancy
	if err := h.SetConfig(cfg); err == nil {
		t.Error("SetConfig allowed shrinking below occupancy")
	}
	cfg.EdenBytes = 20000
	if err := h.SetConfig(cfg); err != nil {
		t.Errorf("SetConfig rejected valid grow: %v", err)
	}
	if h.Config().EdenBytes != 20000 {
		t.Error("config not applied")
	}
}

// TestScavengeEquivalentToOracle is the central property test: a random
// object graph, scavenged via CopyYoung over the reachable young set,
// preserves exactly the oracle's reachable objects and frees the rest.
func TestScavengeEquivalentToOracle(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, _ := New(Config{EdenBytes: 1 << 20, SurvivorBytes: 1 << 18, OldBytes: 1 << 20, TenureAge: 4})
		var ids []ObjID
		for i := 0; i < 200; i++ {
			nrefs := rng.Intn(4)
			refs := make([]ObjID, 0, nrefs)
			for j := 0; j < nrefs && len(ids) > 0; j++ {
				refs = append(refs, ids[rng.Intn(len(ids))])
			}
			id, ok := h.Alloc(int32(8+rng.Intn(256)), refs...)
			if !ok {
				return false
			}
			ids = append(ids, id)
		}
		// Random roots.
		var roots []ObjID
		for _, id := range ids {
			if rng.Intn(4) == 0 {
				roots = append(roots, id)
			}
		}
		want := h.ReachableFrom(roots)
		// Sequential scavenge (BFS from roots).
		h.BeginMinorGC()
		queue := append([]ObjID{}, roots...)
		for len(queue) > 0 {
			id := queue[0]
			queue = queue[1:]
			if _, _, first := h.CopyYoung(id); !first {
				continue
			}
			for _, r := range h.Refs(id) {
				if r != 0 && !h.Visited(r) {
					queue = append(queue, r)
				}
			}
		}
		h.FinishMinorGC()
		if err := h.CheckInvariants(); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		// Every oracle-live object survived; everything else is free.
		liveCount := 0
		for _, id := range ids {
			alive := h.SpaceOf(id) != SpaceNone
			if want[id] != alive {
				t.Logf("object %d: oracle live=%v, heap alive=%v", id, want[id], alive)
				return false
			}
			if alive {
				liveCount++
			}
		}
		return liveCount == len(want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	h := mustNew(t, testConfig())
	a, _ := h.Alloc(100)
	h.AllocOld(200)
	if h.Stats.AllocatedObjects != 2 || h.Stats.AllocatedBytes != 300 {
		t.Errorf("alloc stats wrong: %+v", h.Stats)
	}
	h.BeginMinorGC()
	h.CopyYoung(a)
	h.FinishMinorGC()
	if h.Stats.SurvivedObjects != 1 {
		t.Errorf("SurvivedObjects = %d, want 1", h.Stats.SurvivedObjects)
	}
}

func TestSpaceString(t *testing.T) {
	for sp, want := range map[Space]string{
		SpaceNone: "free", SpaceEden: "eden", SpaceFrom: "from",
		SpaceTo: "to", SpaceOld: "old", Space(9): "Space(9)",
	} {
		if sp.String() != want {
			t.Errorf("Space(%d).String() = %q, want %q", uint8(sp), sp.String(), want)
		}
	}
}
