package heap

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// This file checks the SoA arena heap against an independent reference
// model: a plain map of per-object structs (each with its own refs slice —
// the layout the arena replaced) driven through the same randomized
// alloc / addref / minor-GC / major-GC op sequence. The reference
// recomputes every collection decision (tenuring, survivor overflow,
// write-barrier membership, sweeps) from its own state, so any divergence
// in the arena bookkeeping — offsets, reservations, compaction, free-slot
// recycling — shows up as an observable mismatch.

type refObj struct {
	size int32
	age  uint8
	sp   Space
	refs []ObjID
	inRS bool
}

type refModel struct {
	cfg        Config
	objs       map[ObjID]*refObj
	eden, from []ObjID
	to, old    []ObjID
	edenUsed   int64
	fromUsed   int64
	toUsed     int64
	oldUsed    int64
	remembered []ObjID
	marked     map[ObjID]bool
}

func newRefModel(cfg Config) *refModel {
	return &refModel{cfg: cfg, objs: map[ObjID]*refObj{}}
}

func (r *refModel) alloc(id ObjID, size int32, refs []ObjID) {
	if _, dup := r.objs[id]; dup {
		panic(fmt.Sprintf("heap handed out live id %d again", id))
	}
	r.objs[id] = &refObj{size: size, sp: SpaceEden, refs: append([]ObjID(nil), refs...)}
	r.eden = append(r.eden, id)
	r.edenUsed += int64(size)
}

func (r *refModel) allocOld(id ObjID, size int32, refs []ObjID) {
	if _, dup := r.objs[id]; dup {
		panic(fmt.Sprintf("heap handed out live id %d again", id))
	}
	r.objs[id] = &refObj{size: size, sp: SpaceOld, refs: append([]ObjID(nil), refs...)}
	r.old = append(r.old, id)
	r.oldUsed += int64(size)
	for _, c := range refs {
		r.barrier(id, c)
	}
}

func (r *refModel) barrier(parent, child ObjID) {
	p := r.objs[parent]
	if p.sp != SpaceOld || p.inRS {
		return
	}
	if c, ok := r.objs[child]; ok && (c.sp == SpaceEden || c.sp == SpaceFrom || c.sp == SpaceTo) {
		p.inRS = true
		r.remembered = append(r.remembered, parent)
	}
}

func (r *refModel) addRef(parent, child ObjID) {
	r.objs[parent].refs = append(r.objs[parent].refs, child)
	r.barrier(parent, child)
}

func (r *refModel) setRef(parent ObjID, i int, child ObjID) {
	r.objs[parent].refs[i] = child
	r.barrier(parent, child)
}

func (r *refModel) copyYoung(id ObjID) (promoted, first bool) {
	o := r.objs[id]
	if r.marked[id] {
		return o.sp == SpaceOld, false
	}
	if o.sp != SpaceEden && o.sp != SpaceFrom {
		r.marked[id] = true
		return o.sp == SpaceOld, false
	}
	r.marked[id] = true
	sz := int64(o.size)
	if o.age+1 >= r.cfg.TenureAge || r.toUsed+sz > r.cfg.SurvivorBytes {
		o.sp = SpaceOld
		o.age = 0
		r.old = append(r.old, id)
		r.oldUsed += sz
		for _, c := range o.refs {
			if c != 0 {
				r.barrier(id, c)
			}
		}
		return true, true
	}
	o.sp = SpaceTo
	o.age++
	r.to = append(r.to, id)
	r.toUsed += sz
	return false, true
}

func (r *refModel) finishMinor() {
	sweepYoung := func(list []ObjID, sp Space) {
		for _, id := range list {
			if o := r.objs[id]; o.sp == sp {
				delete(r.objs, id)
			}
		}
	}
	sweepYoung(r.eden, SpaceEden)
	sweepYoung(r.from, SpaceFrom)
	r.eden, r.edenUsed = nil, 0
	for _, id := range r.to {
		r.objs[id].sp = SpaceFrom
	}
	r.from, r.to = r.to, nil
	r.fromUsed, r.toUsed = r.toUsed, 0
	r.pruneRS()
	r.marked = nil
}

func (r *refModel) pruneRS() {
	live := r.remembered[:0]
	for _, id := range r.remembered {
		o, ok := r.objs[id]
		if !ok || o.sp != SpaceOld {
			if ok {
				o.inRS = false
			}
			continue
		}
		keep := false
		for _, c := range o.refs {
			if c == 0 {
				continue
			}
			if co, live := r.objs[c]; live && (co.sp == SpaceEden || co.sp == SpaceFrom) {
				keep = true
				break
			}
		}
		if keep {
			live = append(live, id)
		} else {
			o.inRS = false
		}
	}
	r.remembered = live
}

func (r *refModel) mark(id ObjID) bool {
	if r.marked[id] {
		return false
	}
	r.marked[id] = true
	return true
}

func (r *refModel) finishMajor() (freedOld int64) {
	sweep := func(list []ObjID, used *int64, old bool) []ObjID {
		var out []ObjID
		for _, id := range list {
			if r.marked[id] {
				out = append(out, id)
				continue
			}
			*used -= int64(r.objs[id].size)
			if old {
				freedOld += int64(r.objs[id].size)
			}
			delete(r.objs, id)
		}
		return out
	}
	r.eden = sweep(r.eden, &r.edenUsed, false)
	r.from = sweep(r.from, &r.fromUsed, false)
	r.old = sweep(r.old, &r.oldUsed, true)
	r.pruneRS()
	r.marked = nil
	return freedOld
}

// liveYoungRefChildren lists the young objects referenced from RS entries,
// in RS order — the remembered-set scan of a scavenge.
func (r *refModel) rsChildren() []ObjID {
	var out []ObjID
	for _, id := range r.remembered {
		for _, c := range r.objs[id].refs {
			if c == 0 {
				continue
			}
			if co, ok := r.objs[c]; ok && (co.sp == SpaceEden || co.sp == SpaceFrom) {
				out = append(out, c)
			}
		}
	}
	return out
}

func sortedIDs(ids []ObjID) []ObjID {
	out := append([]ObjID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// compareState checks every observable the simulation reads off the heap
// against the reference model.
func compareState(t *testing.T, step string, h *Heap, r *refModel) {
	t.Helper()
	eden, from, old := h.Usage()
	if eden != r.edenUsed || from != r.fromUsed || old != r.oldUsed {
		t.Fatalf("%s: usage (%d,%d,%d) != reference (%d,%d,%d)",
			step, eden, from, old, r.edenUsed, r.fromUsed, r.oldUsed)
	}
	if h.LiveObjects() != len(r.objs) {
		t.Fatalf("%s: %d live objects, reference has %d", step, h.LiveObjects(), len(r.objs))
	}
	for id, o := range r.objs {
		if h.SpaceOf(id) != o.sp || h.AgeOf(id) != o.age || h.SizeOf(id) != o.size {
			t.Fatalf("%s: obj %d = (%v, age %d, size %d), reference (%v, age %d, size %d)",
				step, id, h.SpaceOf(id), h.AgeOf(id), h.SizeOf(id), o.sp, o.age, o.size)
		}
		if h.InRS(id) != o.inRS {
			t.Fatalf("%s: obj %d InRS = %v, reference %v", step, id, h.InRS(id), o.inRS)
		}
		refs := h.Refs(id)
		if len(refs) != len(o.refs) {
			t.Fatalf("%s: obj %d has %d refs, reference %d", step, id, len(refs), len(o.refs))
		}
		for i := range refs {
			if refs[i] != o.refs[i] {
				t.Fatalf("%s: obj %d ref[%d] = %d, reference %d", step, id, i, refs[i], o.refs[i])
			}
		}
	}
	hrs, rrs := sortedIDs(h.RememberedSet()), sortedIDs(r.remembered)
	if len(hrs) != len(rrs) {
		t.Fatalf("%s: RS size %d != reference %d", step, len(hrs), len(rrs))
	}
	for i := range hrs {
		if hrs[i] != rrs[i] {
			t.Fatalf("%s: RS[%d] = %d, reference %d", step, i, hrs[i], rrs[i])
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("%s: %v", step, err)
	}
}

func TestHeapMatchesReferenceModel(t *testing.T) {
	for _, seed := range []int64{1, 7, 1234, 99} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := Config{EdenBytes: 60_000, SurvivorBytes: 12_000, OldBytes: 400_000, TenureAge: 3}
			h, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r := newRefModel(cfg)
			rng := rand.New(rand.NewSource(seed))

			// live ids the driver aims refs and roots at.
			var live []ObjID
			refreshLive := func() {
				live = live[:0]
				for id := range r.objs {
					live = append(live, id)
				}
				live = sortedIDs(live)
			}
			randRefs := func() []ObjID {
				n := rng.Intn(4)
				if n > len(live) {
					n = len(live)
				}
				refs := make([]ObjID, 0, n)
				for i := 0; i < n; i++ {
					refs = append(refs, live[rng.Intn(len(live))])
				}
				return refs
			}

			minorGC := func(step string) {
				// Root set: a random subset of live objects plus every
				// young object reachable from the remembered set, exactly
				// like a scavenge's thread-roots + RS tasks.
				refreshLive()
				var work []ObjID
				for _, id := range live {
					if rng.Intn(3) == 0 {
						work = append(work, id)
					}
				}
				work = append(work, r.rsChildren()...)

				h.BeginMinorGC()
				r.marked = map[ObjID]bool{}
				for len(work) > 0 {
					id := work[0]
					work = work[1:]
					wantProm, wantFirst := r.copyYoung(id)
					_, gotProm, gotFirst := h.CopyYoung(id)
					if gotProm != wantProm || gotFirst != wantFirst {
						t.Fatalf("%s: CopyYoung(%d) = (%v,%v), reference (%v,%v)",
							step, id, gotProm, gotFirst, wantProm, wantFirst)
					}
					if wantFirst {
						for _, c := range r.objs[id].refs {
							if c != 0 {
								work = append(work, c)
							}
						}
					}
				}
				h.FinishMinorGC()
				r.finishMinor()
				compareState(t, step+"/minor", h, r)
			}

			majorGC := func(step string) {
				refreshLive()
				var work []ObjID
				for _, id := range live {
					if rng.Intn(2) == 0 {
						work = append(work, id)
					}
				}
				h.BeginMajorGC()
				r.marked = map[ObjID]bool{}
				for len(work) > 0 {
					id := work[0]
					work = work[1:]
					if !r.mark(id) {
						h.Mark(id)
						continue
					}
					if _, first := h.Mark(id); !first {
						t.Fatalf("%s: Mark(%d) not first visit, reference disagrees", step, id)
					}
					for _, c := range r.objs[id].refs {
						if _, ok := r.objs[c]; ok {
							work = append(work, c)
						}
					}
				}
				freedOld, liveOld := h.FinishMajorGC()
				wantFreed := r.finishMajor()
				if freedOld != wantFreed || liveOld != r.oldUsed {
					t.Fatalf("%s: FinishMajorGC = (%d,%d), reference (%d,%d)",
						step, freedOld, liveOld, wantFreed, r.oldUsed)
				}
				compareState(t, step+"/major", h, r)
			}

			for round := 0; round < 60; round++ {
				step := fmt.Sprintf("round%d", round)
				for op := 0; op < 120; op++ {
					refreshLive()
					switch k := rng.Intn(10); {
					case k < 5: // eden alloc
						size := int32(64 + rng.Intn(512))
						refs := randRefs()
						id, ok := h.Alloc(size, refs...)
						if !ok {
							minorGC(fmt.Sprintf("%s/op%d-allocfail", step, op))
							continue
						}
						r.alloc(id, size, refs)
					case k < 6: // old alloc
						size := int32(256 + rng.Intn(1024))
						refs := randRefs()
						id, ok := h.AllocOld(size, refs...)
						if !ok {
							majorGC(fmt.Sprintf("%s/op%d-oldfull", step, op))
							continue
						}
						r.allocOld(id, size, refs)
					case k < 8: // add a reference
						if len(live) == 0 {
							continue
						}
						p := live[rng.Intn(len(live))]
						c := live[rng.Intn(len(live))]
						h.AddRef(p, c)
						r.addRef(p, c)
					case k < 9: // overwrite a reference slot
						if len(live) == 0 {
							continue
						}
						p := live[rng.Intn(len(live))]
						if n := h.RefLen(p); n > 0 {
							c := live[rng.Intn(len(live))]
							i := rng.Intn(n)
							h.SetRef(p, i, c)
							r.setRef(p, i, c)
						}
					default: // drop references
						if len(live) == 0 {
							continue
						}
						p := live[rng.Intn(len(live))]
						if n := h.RefLen(p); n > 0 && rng.Intn(2) == 0 {
							keep := rng.Intn(n)
							h.TruncateRefs(p, keep)
							r.objs[p].refs = r.objs[p].refs[:keep]
						} else {
							h.ClearRefs(p)
							r.objs[p].refs = r.objs[p].refs[:0]
						}
					}
				}
				minorGC(step)
				if round%7 == 6 {
					majorGC(step)
				}
			}
		})
	}
}
