package postmortem

import (
	"encoding/json"
	"fmt"
	"io"
)

// ExportSchema versions the postmortem JSON format.
const ExportSchema = "gcsim-postmortem/v1"

// SumToleranceNs is the permitted |sum(buckets) - pause| slack when
// verifying a report. The decomposition is exact by construction, so the
// tolerance only absorbs event-granularity rounding in hand-built or
// future streams.
const SumToleranceNs = 1000

// Export is the machine-readable postmortem. Field order is fixed so
// repeated marshals of the same run are byte-identical.
type Export struct {
	Schema       string         `json:"schema"`
	Collections  int            `json:"collections"`
	TotalPauseNs int64          `json:"total_pause_ns"`
	Pathology    string         `json:"pathology"`
	BucketNames  []string       `json:"bucket_names"`
	PauseMs      Quantiles      `json:"pause_ms"`
	Buckets      []BucketExport `json:"buckets"`
	Worst        []ReportExport `json:"worst"`
	Reports      []ReportExport `json:"reports"`
}

// Quantiles is one distribution summary in milliseconds.
type Quantiles struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// BucketExport is one bucket's run-level totals.
type BucketExport struct {
	Name    string    `json:"name"`
	TotalNs int64     `json:"total_ns"`
	Share   float64   `json:"share"`
	Ms      Quantiles `json:"ms"`
}

// ReportExport is one collection's blame decomposition. Buckets is
// indexed by the top-level BucketNames order.
type ReportExport struct {
	Engine   int     `json:"engine"`
	Seq      int     `json:"seq"`
	Kind     string  `json:"kind"`
	StartNs  int64   `json:"start_ns"`
	EndNs    int64   `json:"end_ns"`
	PauseNs  int64   `json:"pause_ns"`
	Workers  int     `json:"workers"`
	Buckets  []int64 `json:"buckets"`
	Dominant string  `json:"dominant"`
	SeqLo    uint64  `json:"seq_lo"`
	SeqHi    uint64  `json:"seq_hi"`
}

func quantiles(h interface {
	Percentile(p float64) float64
}) Quantiles {
	return Quantiles{
		P50: h.Percentile(50), P95: h.Percentile(95),
		P99: h.Percentile(99), Max: h.Percentile(100),
	}
}

func exportReport(r *PauseReport) ReportExport {
	return ReportExport{
		Engine: r.Engine, Seq: r.Seq, Kind: r.Kind,
		StartNs: r.StartNs, EndNs: r.EndNs, PauseNs: r.PauseNs(),
		Workers: r.Workers, Buckets: append([]int64(nil), r.Buckets[:]...),
		Dominant: r.Dominant().String(), SeqLo: r.SeqLo, SeqHi: r.SeqHi,
	}
}

// Export builds the machine-readable form of the analyzer's results.
func (an *Analyzer) Export() *Export {
	pm := an.Postmortem()
	ex := &Export{
		Schema:       ExportSchema,
		Collections:  pm.Collections,
		TotalPauseNs: pm.TotalPauseNs,
		Pathology:    pm.Pathology,
		BucketNames:  BucketNames(),
		PauseMs:      quantiles(&pm.PauseMs),
		Buckets:      make([]BucketExport, NumBuckets),
		Worst:        make([]ReportExport, 0, len(pm.Worst)),
	}
	for b := Bucket(0); b < NumBuckets; b++ {
		share := 0.0
		if pm.TotalPauseNs > 0 {
			share = float64(pm.Totals[b]) / float64(pm.TotalPauseNs)
		}
		ex.Buckets[b] = BucketExport{
			Name: b.String(), TotalNs: pm.Totals[b], Share: share,
			Ms: quantiles(&pm.BucketMs[b]),
		}
	}
	for i := range pm.Worst {
		ex.Worst = append(ex.Worst, exportReport(&pm.Worst[i]))
	}
	reports := an.Reports()
	ex.Reports = make([]ReportExport, 0, len(reports))
	for i := range reports {
		ex.Reports = append(ex.Reports, exportReport(&reports[i]))
	}
	return ex
}

// WriteJSON writes the export as indented JSON.
func (ex *Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ex)
}

// ParseJSON decodes and validates a postmortem export.
func ParseJSON(data []byte) (*Export, error) {
	var ex Export
	if err := json.Unmarshal(data, &ex); err != nil {
		return nil, fmt.Errorf("postmortem: bad JSON: %w", err)
	}
	if ex.Schema != ExportSchema {
		return nil, fmt.Errorf("postmortem: schema %q, want %q", ex.Schema, ExportSchema)
	}
	return &ex, nil
}

// Verify checks the per-report sum invariant: each collection's buckets
// must sum to its pause wall time within SumToleranceNs. Returns the
// violations as error strings (empty = clean).
func (ex *Export) Verify() []string {
	var bad []string
	for i := range ex.Reports {
		r := &ex.Reports[i]
		var sum int64
		for _, v := range r.Buckets {
			sum += v
		}
		diff := sum - r.PauseNs
		if diff < 0 {
			diff = -diff
		}
		if diff > SumToleranceNs {
			bad = append(bad, fmt.Sprintf(
				"engine %d gc %d: buckets sum %d != pause %d (|diff| %d > %d)",
				r.Engine, r.Seq, sum, r.PauseNs, diff, int64(SumToleranceNs)))
		}
	}
	return bad
}

// Compare renders the bucket-attributed delta between two postmortems —
// the observability twin of `benchjson compare`: where did the pause time
// go (or come from) between run a and run b?
func Compare(w io.Writer, labelA string, a *Export, labelB string, b *Export) {
	fmt.Fprintf(w, "postmortem compare: %s -> %s\n", labelA, labelB)
	fmt.Fprintf(w, "  collections: %d -> %d\n", a.Collections, b.Collections)
	dTot := b.TotalPauseNs - a.TotalPauseNs
	fmt.Fprintf(w, "  total pause: %.2fms -> %.2fms (%+.2fms, %+.1f%%)\n",
		float64(a.TotalPauseNs)/1e6, float64(b.TotalPauseNs)/1e6,
		float64(dTot)/1e6, pct(dTot, a.TotalPauseNs))
	fmt.Fprintf(w, "  pause p99: %.3fms -> %.3fms\n", a.PauseMs.P99, b.PauseMs.P99)
	fmt.Fprintf(w, "  per-bucket delta (share of total pause delta):\n")
	for i := range a.Buckets {
		if i >= len(b.Buckets) {
			break
		}
		ba, bb := &a.Buckets[i], &b.Buckets[i]
		d := bb.TotalNs - ba.TotalNs
		attr := 0.0
		if dTot != 0 {
			attr = 100 * float64(d) / float64(dTot)
		}
		fmt.Fprintf(w, "    %-10s %10.2fms -> %10.2fms  %+10.2fms  %6.1f%%\n",
			ba.Name, float64(ba.TotalNs)/1e6, float64(bb.TotalNs)/1e6,
			float64(d)/1e6, attr)
	}
	if a.Pathology != b.Pathology {
		fmt.Fprintf(w, "  pathology changed:\n    %s: %s\n    %s: %s\n",
			labelA, a.Pathology, labelB, b.Pathology)
	} else {
		fmt.Fprintf(w, "  pathology (both): %s\n", a.Pathology)
	}
}

func pct(d, base int64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(d) / float64(base)
}
