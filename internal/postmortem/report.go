package postmortem

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/stats"
)

// Postmortem is the run-level roll-up of every PauseReport: totals,
// distributions, the worst pauses, and the dominant pathology per the
// paper's §3 taxonomy.
type Postmortem struct {
	Collections  int
	TotalPauseNs int64
	Totals       [NumBuckets]int64

	// PauseMs is the pause distribution; BucketMs the per-bucket
	// distributions (both in milliseconds).
	PauseMs  stats.Histogram
	BucketMs [NumBuckets]stats.Histogram

	// Worst ranks the top pauses by wall time, descending.
	Worst []PauseReport

	// Pathology names the dominant §3 failure family for the run.
	Pathology string
}

// WorstN is how many worst pauses a Postmortem retains.
const WorstN = 8

// Postmortem rolls the analyzer's reports up into the run-level view.
func (an *Analyzer) Postmortem() *Postmortem {
	if an == nil {
		return buildPostmortem(nil)
	}
	return buildPostmortem(an.reports)
}

func buildPostmortem(reports []PauseReport) *Postmortem {
	pm := &Postmortem{Collections: len(reports)}
	for i := range reports {
		r := &reports[i]
		pm.TotalPauseNs += r.PauseNs()
		pm.PauseMs.Add(float64(r.PauseNs()) / 1e6)
		for b := Bucket(0); b < NumBuckets; b++ {
			pm.Totals[b] += r.Buckets[b]
			pm.BucketMs[b].Add(float64(r.Buckets[b]) / 1e6)
		}
	}
	pm.Worst = append(pm.Worst, reports...)
	sort.SliceStable(pm.Worst, func(i, j int) bool {
		return pm.Worst[i].PauseNs() > pm.Worst[j].PauseNs()
	})
	if len(pm.Worst) > WorstN {
		pm.Worst = pm.Worst[:WorstN]
	}
	pm.Pathology = Classify(pm.Totals)
	return pm
}

// pathology families: buckets that share a §3 root cause. Classification
// works on families rather than single buckets because the same root
// cause splits across two observables (e.g. the serialized wake chain
// shows up as handoff blame on parked workers and as idle stacking once
// the queue drains).
var families = []struct {
	Name    string
	Buckets []Bucket
}{
	{"productive work (healthy: pause dominated by scan/copy and serial phases)",
		[]Bucket{BucketWork, BucketSerial}},
	{"serialized task fetch / thread stacking (jmutex handoff, paper §3.2-3.3)",
		[]Bucket{BucketHandoff, BucketIdle}},
	{"steal + termination overhead (work starvation, paper §2.3)",
		[]Bucket{BucketStealSpin, BucketTerm}},
	{"CFS interference (preemption and migration gaps, paper §3.3)",
		[]Bucket{BucketCFSWait}},
}

// Classify names the dominant pathology family for a bucket total vector.
func Classify(totals [NumBuckets]int64) string {
	best, bestSum := 0, int64(-1)
	for i, f := range families {
		var s int64
		for _, b := range f.Buckets {
			s += totals[b]
		}
		if s > bestSum {
			best, bestSum = i, s
		}
	}
	return families[best].Name
}

// Render writes the human postmortem report.
func (pm *Postmortem) Render(w io.Writer) {
	fmt.Fprintf(w, "pause postmortem: %d collections, total pause %.2fms\n",
		pm.Collections, float64(pm.TotalPauseNs)/1e6)
	if pm.Collections == 0 {
		fmt.Fprintln(w, "  no completed collections observed (was tracing attached?)")
		return
	}
	fmt.Fprintf(w, "  dominant pathology: %s\n", pm.Pathology)
	fmt.Fprintf(w, "  pause(ms): p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
		pm.PauseMs.Percentile(50), pm.PauseMs.Percentile(95),
		pm.PauseMs.Percentile(99), pm.PauseMs.Percentile(100))
	fmt.Fprintf(w, "  blame buckets (share of total pause; per-collection p95 in ms):\n")
	for b := Bucket(0); b < NumBuckets; b++ {
		share := 0.0
		if pm.TotalPauseNs > 0 {
			share = 100 * float64(pm.Totals[b]) / float64(pm.TotalPauseNs)
		}
		fmt.Fprintf(w, "    %-10s %10.2fms  %5.1f%%  p95=%.3f\n",
			b.String(), float64(pm.Totals[b])/1e6, share,
			pm.BucketMs[b].Percentile(95))
	}
	fmt.Fprintf(w, "  worst pauses:\n")
	for i := range pm.Worst {
		r := &pm.Worst[i]
		fmt.Fprintf(w, "    #%d %s gc=%d pause=%.3fms dominant=%s (%.1f%%) events=[%d..%d]\n",
			i+1, r.Kind, r.Seq, float64(r.PauseNs())/1e6,
			r.Dominant().String(),
			100*float64(r.Buckets[r.Dominant()])/float64(max64(r.PauseNs(), 1)),
			r.SeqLo, r.SeqHi)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
