package postmortem

import (
	"bytes"
	"testing"

	"repro/internal/evtrace"
)

// stream builds the canonical hand-built single-collection event stream:
// one engine (instance 0), two workers, a 1700ns pause with 200ns init,
// a 1400ns parallel window and a 100ns final-sync. Every interval's
// expected bucket is computed by hand in TestHandBuiltAttribution.
func emitHandBuiltStream(tr *evtrace.Tracer) {
	emit := func(e evtrace.Event) { tr.Emit(e) }
	const mgr = "GCTaskManager"

	// Worker spawn: bind tids 100/101 to workers 0/1 of instance 0.
	emit(evtrace.Event{Kind: evtrace.KWorkerBind, At: 0, Core: 0, TID: 100, Arg1: 0, Arg2: 0, Name: mgr})
	emit(evtrace.Event{Kind: evtrace.KWorkerBind, At: 0, Core: 0, TID: 101, Arg1: 1, Arg2: 0, Name: mgr})
	// Both park on the manager before the first collection.
	emit(evtrace.Event{Kind: evtrace.KLockBlock, At: 10, TID: 100, Name: mgr})
	emit(evtrace.Event{Kind: evtrace.KLockBlock, At: 10, TID: 101, Name: mgr})

	// Collection: Start=1000, init until 1200, 4 tasks enqueued.
	for id := int64(1); id <= 4; id++ {
		emit(evtrace.Event{Kind: evtrace.KTaskEnqueue, At: 1200, TID: -1, Arg1: id, Name: "task"})
	}
	// Worker 0: woken 1250, dispatched+reacquire 1300, fetches task 1 at
	// 1320, works until 2000, fetches the steal task at 2050, fails twice,
	// offers termination at 2200.
	emit(evtrace.Event{Kind: evtrace.KLockUnblock, At: 1250, TID: 100, Name: mgr})
	emit(evtrace.Event{Kind: evtrace.KLockHandoff, At: 1300, TID: 100, Name: mgr})
	emit(evtrace.Event{Kind: evtrace.KGetTask, At: 1320, TID: 0, Arg2: 1, Name: "ScavengeRootsTask"})
	// Worker 1: the serialized wake chain reaches it later (stacking).
	emit(evtrace.Event{Kind: evtrace.KLockUnblock, At: 1400, TID: 101, Name: mgr})
	emit(evtrace.Event{Kind: evtrace.KLockHandoff, At: 1450, TID: 101, Name: mgr})
	emit(evtrace.Event{Kind: evtrace.KGetTask, At: 1470, TID: 1, Arg2: 2, Name: "ScavengeRootsTask"})
	// Worker 0 finishes its root task (span emitted at task end).
	emit(evtrace.Event{Kind: evtrace.KGCTask, At: 1320, Dur: 680, TID: 0, Arg1: 1, Name: "ScavengeRootsTask"})
	emit(evtrace.Event{Kind: evtrace.KGetTask, At: 2050, TID: 0, Arg2: 3, Name: "StealTask"})
	emit(evtrace.Event{Kind: evtrace.KStealFail, At: 2100, TID: 0, Arg1: 1})
	emit(evtrace.Event{Kind: evtrace.KStealFail, At: 2150, TID: 0, Arg1: 1})
	emit(evtrace.Event{Kind: evtrace.KTermOffer, At: 2200, TID: 0, Arg1: 1})
	// Worker 1 finishes, steals briefly, offers termination.
	emit(evtrace.Event{Kind: evtrace.KGCTask, At: 1470, Dur: 930, TID: 1, Arg1: 2, Name: "ScavengeRootsTask"})
	emit(evtrace.Event{Kind: evtrace.KGetTask, At: 2450, TID: 1, Arg2: 4, Name: "StealTask"})
	emit(evtrace.Event{Kind: evtrace.KTermOffer, At: 2500, TID: 1, Arg1: 2})
	// Termination completes; the parallel phase ends here.
	emit(evtrace.Event{Kind: evtrace.KTermDone, At: 2600, TID: -1, Arg1: 4, Arg2: 4, Name: mgr})
	// Workers return to the manager and park again after the pause.
	emit(evtrace.Event{Kind: evtrace.KLockHandoff, At: 2620, TID: 100, Name: mgr})
	emit(evtrace.Event{Kind: evtrace.KLockBlock, At: 2620, TID: 100, Name: mgr})
	emit(evtrace.Event{Kind: evtrace.KLockHandoff, At: 2630, TID: 101, Name: mgr})
	emit(evtrace.Event{Kind: evtrace.KLockBlock, At: 2630, TID: 101, Name: mgr})

	// Retrospective phase group (emitted by the VM thread after End=2700).
	emit(evtrace.Event{Kind: evtrace.KGCSpan, At: 1000, Dur: 1700, TID: -1, Name: "minor", Arg1: 1, Arg2: 0})
	emit(evtrace.Event{Kind: evtrace.KGCPhase, At: 1000, Dur: 200, TID: -1, Name: "init", Arg1: 1, Arg2: 0})
	emit(evtrace.Event{Kind: evtrace.KGCPhase, At: 1200, Dur: 1400, TID: -1, Name: "parallel", Arg1: 1, Arg2: 0})
	emit(evtrace.Event{Kind: evtrace.KGCPhase, At: 2600, Dur: 100, TID: -1, Name: "final-sync", Arg1: 1, Arg2: 0})
}

func TestHandBuiltAttribution(t *testing.T) {
	tr := evtrace.New(0)
	an := New()
	an.Attach(tr)
	emitHandBuiltStream(tr)
	an.Finish()

	reports := an.Reports()
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(reports))
	}
	r := &reports[0]
	if r.Engine != 0 || r.Seq != 1 || r.Kind != "minor" {
		t.Errorf("report identity = engine %d seq %d kind %q", r.Engine, r.Seq, r.Kind)
	}
	if r.PauseNs() != 1700 {
		t.Errorf("pause = %d, want 1700", r.PauseNs())
	}
	if r.Workers != 2 {
		t.Errorf("workers = %d, want 2", r.Workers)
	}
	if r.Sum() != r.PauseNs() {
		t.Errorf("buckets sum %d != pause %d", r.Sum(), r.PauseNs())
	}

	// Hand-computed decomposition (per-worker totals averaged over 2):
	//   worker0: handoff 120, cfs 50, work 680, steal 150, term 400
	//   worker1: handoff 270, cfs 50, work 930, steal  50, term 100
	want := [NumBuckets]int64{
		BucketWork:      805,
		BucketHandoff:   195,
		BucketStealSpin: 100,
		BucketTerm:      250,
		BucketCFSWait:   50,
		BucketIdle:      0,
		BucketSerial:    300,
	}
	if r.Buckets != want {
		t.Errorf("buckets = %v, want %v", r.Buckets, want)
	}
	if r.Dominant() != BucketWork {
		t.Errorf("dominant = %v, want work", r.Dominant())
	}
	if r.SeqLo == 0 || r.SeqHi <= r.SeqLo {
		t.Errorf("bad event window [%d..%d]", r.SeqLo, r.SeqHi)
	}
}

func TestPostmortemRollupAndExport(t *testing.T) {
	tr := evtrace.New(0)
	an := New()
	an.Attach(tr)
	emitHandBuiltStream(tr)

	pm := an.Postmortem()
	if pm.Collections != 1 {
		t.Fatalf("collections = %d", pm.Collections)
	}
	if pm.TotalPauseNs != 1700 {
		t.Errorf("total pause = %d", pm.TotalPauseNs)
	}
	if len(pm.Worst) != 1 {
		t.Errorf("worst len = %d", len(pm.Worst))
	}
	if pm.Pathology == "" {
		t.Error("empty pathology")
	}

	ex := an.Export()
	if bad := ex.Verify(); len(bad) != 0 {
		t.Errorf("verify violations: %v", bad)
	}
	var buf bytes.Buffer
	if err := ex.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	buf.Reset()
	if err := an.Export().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != first {
		t.Error("repeated export not byte-identical")
	}
	parsed, err := ParseJSON([]byte(first))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Collections != 1 || parsed.TotalPauseNs != 1700 {
		t.Errorf("parsed roundtrip: collections %d, total %d", parsed.Collections, parsed.TotalPauseNs)
	}
	if bad := parsed.Verify(); len(bad) != 0 {
		t.Errorf("parsed verify violations: %v", bad)
	}

	// Render must not panic and must carry the headline numbers.
	var out bytes.Buffer
	pm.Render(&out)
	if !bytes.Contains(out.Bytes(), []byte("pause postmortem: 1 collections")) {
		t.Errorf("render missing headline:\n%s", out.String())
	}
}

// TestMultiEngineAttribution interleaves two engines' streams and checks
// that each collection's sum invariant holds independently.
func TestMultiEngineAttribution(t *testing.T) {
	tr := evtrace.New(0)
	an := New()
	an.Attach(tr)
	emit := func(e evtrace.Event) { tr.Emit(e) }

	const mgr0, mgr1 = "GCTaskManager", "GCTaskManager#1"
	id := func(inst, n int64) int64 { return inst<<32 | n }

	emit(evtrace.Event{Kind: evtrace.KWorkerBind, At: 0, TID: 100, Arg1: 0, Arg2: 0, Name: mgr0})
	emit(evtrace.Event{Kind: evtrace.KWorkerBind, At: 0, TID: 200, Arg1: 0, Arg2: 1, Name: mgr1})
	emit(evtrace.Event{Kind: evtrace.KLockBlock, At: 5, TID: 100, Name: mgr0})
	emit(evtrace.Event{Kind: evtrace.KLockBlock, At: 5, TID: 200, Name: mgr1})

	// Engine 0 collects [1000,2000]; engine 1 overlaps at [1500,2500].
	emit(evtrace.Event{Kind: evtrace.KTaskEnqueue, At: 1100, TID: -1, Arg1: id(0, 1), Name: "task"})
	emit(evtrace.Event{Kind: evtrace.KLockUnblock, At: 1150, TID: 100, Name: mgr0})
	emit(evtrace.Event{Kind: evtrace.KLockHandoff, At: 1200, TID: 100, Name: mgr0})
	emit(evtrace.Event{Kind: evtrace.KGetTask, At: 1220, TID: 0, Arg2: id(0, 1), Name: "ScavengeRootsTask"})

	emit(evtrace.Event{Kind: evtrace.KTaskEnqueue, At: 1600, TID: -1, Arg1: id(1, 1), Name: "task"})
	emit(evtrace.Event{Kind: evtrace.KLockUnblock, At: 1650, TID: 200, Name: mgr1})
	emit(evtrace.Event{Kind: evtrace.KLockHandoff, At: 1700, TID: 200, Name: mgr1})
	emit(evtrace.Event{Kind: evtrace.KGetTask, At: 1720, TID: 0, Arg2: id(1, 1), Name: "ScavengeRootsTask"})

	emit(evtrace.Event{Kind: evtrace.KGCTask, At: 1220, Dur: 630, TID: 0, Arg1: id(0, 1), Name: "ScavengeRootsTask"})
	emit(evtrace.Event{Kind: evtrace.KTermDone, At: 1900, TID: -1, Name: mgr0})
	emit(evtrace.Event{Kind: evtrace.KLockBlock, At: 1910, TID: 100, Name: mgr0})
	emit(evtrace.Event{Kind: evtrace.KGCSpan, At: 1000, Dur: 1000, TID: -1, Name: "minor", Arg1: 1, Arg2: 0})
	emit(evtrace.Event{Kind: evtrace.KGCPhase, At: 1000, Dur: 100, TID: -1, Name: "init", Arg1: 1, Arg2: 0})
	emit(evtrace.Event{Kind: evtrace.KGCPhase, At: 1100, Dur: 800, TID: -1, Name: "parallel", Arg1: 1, Arg2: 0})
	emit(evtrace.Event{Kind: evtrace.KGCPhase, At: 1900, Dur: 100, TID: -1, Name: "final-sync", Arg1: 1, Arg2: 0})

	emit(evtrace.Event{Kind: evtrace.KGCTask, At: 1720, Dur: 680, TID: 0, Arg1: id(1, 1), Name: "ScavengeRootsTask"})
	emit(evtrace.Event{Kind: evtrace.KTermDone, At: 2400, TID: -1, Name: mgr1})
	emit(evtrace.Event{Kind: evtrace.KLockBlock, At: 2410, TID: 200, Name: mgr1})
	emit(evtrace.Event{Kind: evtrace.KGCSpan, At: 1500, Dur: 1000, TID: -1, Name: "minor", Arg1: 1, Arg2: 1})
	emit(evtrace.Event{Kind: evtrace.KGCPhase, At: 1500, Dur: 100, TID: -1, Name: "init", Arg1: 1, Arg2: 1})
	emit(evtrace.Event{Kind: evtrace.KGCPhase, At: 1600, Dur: 800, TID: -1, Name: "parallel", Arg1: 1, Arg2: 1})
	emit(evtrace.Event{Kind: evtrace.KGCPhase, At: 2400, Dur: 100, TID: -1, Name: "final-sync", Arg1: 1, Arg2: 1})

	reports := an.Reports()
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	for i := range reports {
		r := &reports[i]
		if r.Sum() != r.PauseNs() {
			t.Errorf("engine %d: sum %d != pause %d", r.Engine, r.Sum(), r.PauseNs())
		}
		if r.PauseNs() != 1000 {
			t.Errorf("engine %d: pause %d, want 1000", r.Engine, r.PauseNs())
		}
		// Single-worker engines: productive work must appear.
		if r.Buckets[BucketWork] == 0 {
			t.Errorf("engine %d: no work attributed: %v", r.Engine, r.Buckets)
		}
	}
	if reports[0].Engine != 0 || reports[1].Engine != 1 {
		t.Errorf("engine order: %d, %d", reports[0].Engine, reports[1].Engine)
	}
}

// TestDisabledPathZeroAlloc asserts the when-disabled contract on the
// layers' hot paths: with no analyzer attached, emitting the event kinds
// the attribution consumes — simkit dispatch, cfs preemption, jmutex
// handoff, taskq fetch, and the GC worker-bind — allocates nothing once
// the rings are warm. (A nil tracer is free by evtrace's own tests; this
// covers the enabled-tracer/no-subscriber configuration every gcsim run
// without -postmortem uses.)
func TestDisabledPathZeroAlloc(t *testing.T) {
	tr := evtrace.New(64)
	events := []evtrace.Event{
		{Kind: evtrace.KEvFire, At: 1},
		{Kind: evtrace.KPreempt, At: 2, TID: 3},
		{Kind: evtrace.KRunqPop, At: 3, TID: 3, Arg1: 1},
		{Kind: evtrace.KLockHandoff, At: 4, TID: 3, Name: "GCTaskManager"},
		{Kind: evtrace.KGetTask, At: 5, TID: 0, Arg1: 1},
		{Kind: evtrace.KWorkerBind, At: 6, TID: 3, Arg1: 0, Name: "GCTaskManager"},
	}
	for i := 0; i < 100; i++ { // warm the per-layer rings
		for _, e := range events {
			tr.Emit(e)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for _, e := range events {
			tr.Emit(e)
		}
	})
	if allocs != 0 {
		t.Errorf("disabled-path emit allocates %.1f per round, want 0", allocs)
	}
}

// BenchmarkPostmortemAttribution replays the hand-built collection stream
// through an attached analyzer; steady state must not allocate per event
// (amortized report growth only).
func BenchmarkPostmortemAttribution(b *testing.B) {
	tr := evtrace.New(64)
	an := New()
	an.Attach(tr)
	emitHandBuiltStream(tr) // warm up engine/worker state
	events := tr.Events()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range events {
			an.OnEvent(e)
		}
	}
}

// BenchmarkPostmortemDisabled is the bench-guard's 0-allocs-when-disabled
// contract: emitting on a tracer without an attached analyzer must not
// allocate in steady state.
func BenchmarkPostmortemDisabled(b *testing.B) {
	tr := evtrace.New(64)
	emitHandBuiltStream(tr) // allocate the rings up front
	ev := evtrace.Event{Kind: evtrace.KStealFail, At: 1, TID: 0, Arg1: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(ev)
	}
}
