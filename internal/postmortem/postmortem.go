// Package postmortem answers the paper's §3 question automatically: why
// was this pause long, and which layer is to blame? It subscribes to the
// evtrace bus (the same pattern as internal/check) and reconstructs, for
// every collection, the pause critical path — decomposing wall time into
// named blame buckets: productive scan/copy work, jmutex handoff/block
// stalls, taskq steal-fail spin, termination-protocol wait, CFS
// preemption/migration gaps, and idle stacking.
//
// The decomposition is exact by construction. A pause is the serial init
// and final-sync phases plus the parallel window W = [parallel start,
// final-sync start]; within W, each GC worker's charge segments tile the
// window (the attribution state machine charges every interval between
// consecutive worker events to exactly one bucket), so the per-worker
// sums each equal |W| and the bucket decomposition — per-worker totals
// averaged over the worker count, with the integer-division residue
// folded into the largest bucket — sums to the measured pause wall time
// exactly. Misclassifying an interval can shift blame between buckets
// but can never break the sum.
//
// Like the checker, an Analyzer only observes: it never emits, never
// touches the simulation's RNG or event queue, and so cannot perturb
// behaviour — golden outputs are byte-identical with attribution on and
// off. A nil *Analyzer is valid and inert, preserving the bus's
// zero-alloc-when-disabled contract.
package postmortem

import "repro/internal/evtrace"

// Bucket names one blame category of pause wall time.
type Bucket uint8

const (
	// BucketWork is productive on-CPU collection work: root scanning,
	// object copy/mark, local-queue drain (§2.2's useful work).
	BucketWork Bucket = iota
	// BucketHandoff is time lost to the GCTaskManager monitor: parked
	// waiting for the serialized wake chain while tasks were pending, plus
	// the get_task critical sections themselves (§3.2's serialized
	// get_task / ownership-handoff pathology).
	BucketHandoff
	// BucketStealSpin is time burned in failed steal attempts (§2.3).
	BucketStealSpin
	// BucketTerm is time inside the termination protocol: offers, spins
	// and termination sleeps (§2.3, §4.2).
	BucketTerm
	// BucketCFSWait is runnable-but-not-running time: preemption gaps and
	// wakeup-to-dispatch latency charged to the OS scheduler (§3.3-3.4).
	BucketCFSWait
	// BucketIdle is asleep-with-nothing-to-fetch time while the collection
	// runs — fewer runnable GC threads than work sources (thread stacking
	// stragglers and serial sub-phases inside the parallel window).
	BucketIdle
	// BucketSerial is the VM thread's serial init and final-sync phases.
	BucketSerial

	// NumBuckets is the bucket count; PauseReport.Buckets is indexed by
	// Bucket.
	NumBuckets
)

var bucketNames = [NumBuckets]string{
	"work", "handoff", "steal_spin", "term_wait", "cfs_wait", "idle", "serial",
}

func (b Bucket) String() string {
	if int(b) < len(bucketNames) {
		return bucketNames[b]
	}
	return "?"
}

// BucketNames returns the bucket display names in Bucket index order.
func BucketNames() []string { return bucketNames[:] }

// PauseReport is the blame decomposition of one collection's pause.
type PauseReport struct {
	Engine  int    // Options.Instance of the collecting engine
	Seq     int    // collection sequence number within the engine
	Kind    string // "minor" | "major"
	StartNs int64
	EndNs   int64
	Workers int
	Buckets [NumBuckets]int64
	// SeqLo/SeqHi bound the collection on the event bus (first activation
	// event to the retrospective phase group) for Perfetto window export.
	SeqLo, SeqHi uint64
}

// PauseNs returns the measured pause wall time.
func (r *PauseReport) PauseNs() int64 { return r.EndNs - r.StartNs }

// Sum returns the bucket total (equal to PauseNs by construction).
func (r *PauseReport) Sum() int64 {
	var s int64
	for _, v := range r.Buckets {
		s += v
	}
	return s
}

// Dominant returns the largest bucket.
func (r *PauseReport) Dominant() Bucket {
	best := Bucket(0)
	for b := Bucket(1); b < NumBuckets; b++ {
		if r.Buckets[b] > r.Buckets[best] {
			best = b
		}
	}
	return best
}

// workerCtx is what a GC worker is doing between events.
type workerCtx uint8

const (
	ctxAsleep       workerCtx = iota // parked on the manager monitor
	ctxRunnableWait                  // woken, waiting to run + reacquire
	ctxFetch                         // inside the get_task critical section
	ctxWork                          // executing a task / draining
	ctxSteal                         // attempting steals
	ctxTerm                          // inside the termination protocol
)

// segment is one contiguous charge of a worker's time to a bucket.
type segment struct {
	bucket Bucket
	lo, hi int64
}

type workerState struct {
	eng       *engineState
	index     int   // worker index within the engine
	tid       int32 // cfs thread id
	ctx       workerCtx
	preempted bool // preempted off-CPU; intervals charge to CFSWait
	lastAt    int64
	stealTask int64 // active steal-task id (0 = none)
	segs      []segment
}

type engineState struct {
	instance int
	mgrName  string
	workers  []*workerState // indexed by worker index

	// pending counts enqueued-but-not-fetched tasks; the transition
	// timestamps drive the asleep handoff/idle split.
	pending        int
	pendingSinceAt int64 // when pending last became > 0
	zeroSinceAt    int64 // when pending last became 0

	active       bool
	activationAt int64
	seqLo        uint64

	// Retrospective phase group, captured just before finalize.
	spanStart, spanEnd int64
	spanKind           string
	spanSeq            int
	initNs, fsNs       int64
	parStart, parEnd   int64
}

// Analyzer is the online attribution engine. Create with New, wire with
// Attach, read results with Reports/Postmortem after the run.
type Analyzer struct {
	tr      *evtrace.Tracer
	engines map[int]*engineState
	byName  map[string]*engineState
	byTID   map[int32]*workerState
	order   []*engineState // engines sorted by instance
	reports []PauseReport
}

// New creates an empty Analyzer.
func New() *Analyzer {
	return &Analyzer{
		engines: make(map[int]*engineState),
		byName:  make(map[string]*engineState),
		byTID:   make(map[int32]*workerState),
	}
}

// Attach subscribes the analyzer to the tracer's event stream. Safe on a
// nil tracer (no-op).
func (an *Analyzer) Attach(tr *evtrace.Tracer) {
	if an == nil || tr == nil {
		return
	}
	an.tr = tr
	tr.Subscribe(an.OnEvent)
}

// Tracer returns the attached tracer (for Perfetto window export of
// worst pauses).
func (an *Analyzer) Tracer() *evtrace.Tracer { return an.tr }

// Reports returns one PauseReport per completed collection, in order.
func (an *Analyzer) Reports() []PauseReport {
	if an == nil {
		return nil
	}
	return an.reports
}

// Finish flushes the analyzer at end of run. A collection still open
// (activation seen, phase group not yet emitted) is dropped — its pause
// never completed, so there is nothing exact to report.
func (an *Analyzer) Finish() {}

// OnEvent consumes one bus event. It is the Tracer.Subscribe callback;
// steady-state processing performs no allocation beyond amortized
// segment/report growth.
func (an *Analyzer) OnEvent(e evtrace.Event) {
	switch e.Kind {
	case evtrace.KWorkerBind:
		an.bind(e)
	case evtrace.KTaskEnqueue:
		an.taskEnqueue(e)
	case evtrace.KGetTask:
		an.getTask(e)
	case evtrace.KStealOK:
		if ws := an.workerByIndex(e.TID); ws != nil {
			an.charge(ws, e.At)
			ws.ctx = ctxWork
		}
	case evtrace.KStealFail:
		if ws := an.workerByIndex(e.TID); ws != nil {
			an.charge(ws, e.At)
			ws.ctx = ctxSteal
		}
	case evtrace.KTermOffer, evtrace.KTermSpin:
		if ws := an.workerByIndex(e.TID); ws != nil {
			an.charge(ws, e.At)
			ws.ctx = ctxTerm
		}
	case evtrace.KTermDone:
		an.termDone(e)
	case evtrace.KGCTask:
		an.taskDone(e)
	case evtrace.KLockBlock:
		if ws := an.managerWorker(e); ws != nil {
			an.charge(ws, e.At)
			ws.ctx = ctxAsleep
			ws.preempted = false
		}
	case evtrace.KLockUnblock:
		if ws := an.managerWorker(e); ws != nil && ws.ctx == ctxAsleep {
			an.charge(ws, e.At)
			ws.ctx = ctxRunnableWait
		}
	case evtrace.KLockHandoff, evtrace.KLockFast:
		if ws := an.managerWorker(e); ws != nil {
			an.charge(ws, e.At)
			ws.ctx = ctxFetch
		}
	case evtrace.KPreempt:
		if ws := an.byTID[e.TID]; ws != nil {
			an.charge(ws, e.At)
			ws.preempted = true
		}
	case evtrace.KRunqPop:
		// A dispatch pop ends a preemption gap; migration removals do not.
		if e.Arg2 == 0 {
			if ws := an.byTID[e.TID]; ws != nil && ws.preempted {
				an.charge(ws, e.At)
				ws.preempted = false
			}
		}
	case evtrace.KGCSpan:
		if eng := an.engines[int(e.Arg2)]; eng != nil {
			eng.spanStart, eng.spanEnd = e.At, e.At+e.Dur
			eng.spanKind, eng.spanSeq = e.Name, int(e.Arg1)
		}
	case evtrace.KGCPhase:
		an.phase(e)
	}
}

func (an *Analyzer) bind(e evtrace.Event) {
	inst, idx := int(e.Arg2), int(e.Arg1)
	eng := an.engines[inst]
	if eng == nil {
		eng = &engineState{instance: inst, mgrName: e.Name}
		an.engines[inst] = eng
		an.byName[e.Name] = eng
		// Keep the resolution order sorted by instance so the rare
		// worker-index ambiguity in multi-JVM runs resolves deterministically.
		pos := len(an.order)
		for i, o := range an.order {
			if o.instance > inst {
				pos = i
				break
			}
		}
		an.order = append(an.order, nil)
		copy(an.order[pos+1:], an.order[pos:])
		an.order[pos] = eng
	}
	for len(eng.workers) <= idx {
		eng.workers = append(eng.workers, nil)
	}
	if ws := eng.workers[idx]; ws != nil && ws.tid == e.TID {
		return // already bound (replayed stream)
	}
	ws := &workerState{eng: eng, index: idx, tid: e.TID, ctx: ctxFetch, lastAt: e.At}
	eng.workers[idx] = ws
	an.byTID[e.TID] = ws
}

// engineOf resolves an engine from a namespaced task id (instance in the
// high 32 bits, per pscavenge.finishTasks).
func (an *Analyzer) engineOf(taskID int64) *engineState {
	return an.engines[int(taskID>>32)]
}

// workerByIndex resolves taskq events, which carry only the worker index.
// Unambiguous with one engine; with several, prefer the engine whose
// worker at that index has an active steal task (ties break toward the
// lowest instance). A wrong pick shifts blame between two engines' spin
// buckets but cannot break either sum.
func (an *Analyzer) workerByIndex(idx int32) *workerState {
	if len(an.order) == 1 {
		eng := an.order[0]
		if int(idx) < len(eng.workers) {
			return eng.workers[idx]
		}
		return nil
	}
	var fallback *workerState
	for _, eng := range an.order {
		if int(idx) >= len(eng.workers) {
			continue
		}
		ws := eng.workers[idx]
		if ws == nil {
			continue
		}
		if ws.stealTask != 0 {
			return ws
		}
		if fallback == nil && eng.active {
			fallback = ws
		}
	}
	return fallback
}

// managerWorker resolves a jmutex event to a GC worker, requiring that the
// monitor is the worker's own engine's GCTaskManager (the VM thread and
// application locks fall out here).
func (an *Analyzer) managerWorker(e evtrace.Event) *workerState {
	ws := an.byTID[e.TID]
	if ws == nil || an.byName[e.Name] != ws.eng {
		return nil
	}
	return ws
}

func (an *Analyzer) taskEnqueue(e evtrace.Event) {
	eng := an.engineOf(e.Arg1)
	if eng == nil {
		return
	}
	if eng.pending == 0 {
		eng.pendingSinceAt = e.At
		if !eng.active {
			an.activate(eng, e)
		}
	}
	eng.pending++
}

// activate opens a collection: the first enqueue of a quiet engine. The
// activation instant coincides with the start of the parallel phase (the
// VM thread enqueues right after charging init), so worker charge cursors
// reset here and the segments recorded until the retrospective phase
// group tile the parallel window.
func (an *Analyzer) activate(eng *engineState, e evtrace.Event) {
	eng.active = true
	eng.activationAt = e.At
	eng.zeroSinceAt = e.At
	eng.seqLo = e.Seq
	for _, ws := range eng.workers {
		if ws == nil {
			continue
		}
		ws.lastAt = e.At
		ws.segs = ws.segs[:0]
	}
}

func (an *Analyzer) getTask(e evtrace.Event) {
	eng := an.engineOf(e.Arg2)
	if eng == nil || int(e.TID) >= len(eng.workers) {
		return
	}
	ws := eng.workers[e.TID]
	if ws == nil {
		return
	}
	an.charge(ws, e.At)
	if eng.pending > 0 {
		eng.pending--
		if eng.pending == 0 {
			eng.zeroSinceAt = e.At
		}
	}
	if isStealKind(e.Name) {
		ws.ctx = ctxSteal
		ws.stealTask = e.Arg2
	} else {
		ws.ctx = ctxWork
		ws.stealTask = 0
	}
}

func isStealKind(name string) bool {
	return name == "StealTask" || name == "MarkStealTask"
}

func (an *Analyzer) termDone(e evtrace.Event) {
	eng := an.byName[e.Name]
	if eng == nil {
		return
	}
	for _, ws := range eng.workers {
		if ws == nil {
			continue
		}
		an.charge(ws, e.At)
		if ws.ctx == ctxTerm || ws.ctx == ctxSteal {
			ws.ctx = ctxFetch
		}
		ws.stealTask = 0
	}
}

// taskDone handles the retrospective per-task span: it closes a work
// interval for ordinary tasks. Steal tasks are ignored — their interior
// is already attributed by the steal/termination machine.
func (an *Analyzer) taskDone(e evtrace.Event) {
	if isStealKind(e.Name) {
		return
	}
	eng := an.engineOf(e.Arg1)
	if eng == nil || int(e.TID) >= len(eng.workers) {
		return
	}
	ws := eng.workers[e.TID]
	if ws == nil {
		return
	}
	an.charge(ws, e.At+e.Dur)
	ws.ctx = ctxFetch
}

// charge attributes [ws.lastAt, now] to the bucket implied by the
// worker's context and advances the cursor. Outside an active collection
// only the cursor moves.
func (an *Analyzer) charge(ws *workerState, now int64) {
	if now < ws.lastAt {
		return
	}
	lo, hi := ws.lastAt, now
	ws.lastAt = now
	eng := ws.eng
	if !eng.active || hi == lo {
		return
	}
	if ws.preempted {
		ws.addSeg(BucketCFSWait, lo, hi)
		return
	}
	switch ws.ctx {
	case ctxAsleep:
		// Split park time by the pending-task state: asleep while tasks
		// were fetchable is handoff blame (the §3.2-3.3 serialized wake
		// chain / stacking), asleep with nothing pending is idle.
		if eng.pending > 0 {
			ps := clamp(eng.pendingSinceAt, lo, hi)
			ws.addSeg(BucketIdle, lo, ps)
			ws.addSeg(BucketHandoff, ps, hi)
		} else {
			zs := clamp(eng.zeroSinceAt, lo, hi)
			ws.addSeg(BucketHandoff, lo, zs)
			ws.addSeg(BucketIdle, zs, hi)
		}
	case ctxRunnableWait:
		ws.addSeg(BucketCFSWait, lo, hi)
	case ctxFetch:
		ws.addSeg(BucketHandoff, lo, hi)
	case ctxWork:
		ws.addSeg(BucketWork, lo, hi)
	case ctxSteal:
		ws.addSeg(BucketStealSpin, lo, hi)
	case ctxTerm:
		ws.addSeg(BucketTerm, lo, hi)
	}
}

func (ws *workerState) addSeg(b Bucket, lo, hi int64) {
	if hi <= lo {
		return
	}
	// Merge with the previous segment when contiguous and same-bucket, so
	// steal-fail storms collapse instead of growing the slice per event.
	if n := len(ws.segs); n > 0 && ws.segs[n-1].bucket == b && ws.segs[n-1].hi == lo {
		ws.segs[n-1].hi = hi
		return
	}
	ws.segs = append(ws.segs, segment{bucket: b, lo: lo, hi: hi})
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// phase consumes the retrospective phase group emitted after a collection
// ends (KGCSpan, then init/parallel/final-sync KGCPhase). The final-sync
// phase is the last of the group and triggers finalization.
func (an *Analyzer) phase(e evtrace.Event) {
	eng := an.engines[int(e.Arg2)]
	if eng == nil {
		return
	}
	switch e.Name {
	case "init":
		eng.initNs = e.Dur
	case "parallel":
		eng.parStart, eng.parEnd = e.At, e.At+e.Dur
	case "final-sync":
		eng.fsNs = e.Dur
		an.finalize(eng, e.Seq)
	}
}

// finalize clips every worker's charge segments to the parallel window,
// averages the per-bucket totals over the worker count, folds the
// integer-division residue into the largest bucket, and adds the serial
// phases — producing a PauseReport whose buckets sum to the pause wall
// time exactly.
func (an *Analyzer) finalize(eng *engineState, seqHi uint64) {
	if !eng.active {
		return
	}
	lo, hi := eng.parStart, eng.parEnd
	var totals [NumBuckets]int64
	workers := 0
	for _, ws := range eng.workers {
		if ws == nil {
			continue
		}
		workers++
		an.charge(ws, hi) // flush the tail up to the window end
		first := -1
		var covered int64
		for _, s := range ws.segs {
			a, b := s.lo, s.hi
			if a < lo {
				a = lo
			}
			if b > hi {
				b = hi
			}
			if b <= a {
				continue
			}
			if first < 0 {
				first = int(s.bucket)
			}
			totals[s.bucket] += b - a
			covered += b - a
		}
		// Segments are contiguous from activation to the flush, and
		// activation coincides with the window start, so any shortfall is
		// sub-event-granularity; extend the first covered bucket (or idle
		// for an eventless worker) so each worker tiles the window exactly.
		if gap := (hi - lo) - covered; gap > 0 {
			if first < 0 {
				first = int(BucketIdle)
			}
			totals[first] += gap
		}
	}

	rep := PauseReport{
		Engine: eng.instance, Seq: eng.spanSeq, Kind: eng.spanKind,
		StartNs: eng.spanStart, EndNs: eng.spanEnd,
		Workers: workers, SeqLo: eng.seqLo, SeqHi: seqHi,
	}
	window := hi - lo
	if workers > 0 {
		var sum int64
		largest := 0
		for b := 0; b < int(BucketSerial); b++ {
			rep.Buckets[b] = totals[b] / int64(workers)
			sum += rep.Buckets[b]
			if rep.Buckets[b] > rep.Buckets[largest] {
				largest = b
			}
		}
		rep.Buckets[largest] += window - sum
	} else {
		rep.Buckets[BucketIdle] = window
	}
	rep.Buckets[BucketSerial] = eng.initNs + eng.fsNs
	an.reports = append(an.reports, rep)

	eng.active = false
	for _, ws := range eng.workers {
		if ws != nil {
			ws.segs = ws.segs[:0]
		}
	}
}
