package postmortem_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/evtrace"
	"repro/internal/jvm"
	"repro/internal/postmortem"
)

func runWithAttribution(t *testing.T, cfg core.Config) (*jvm.Result, *postmortem.Analyzer) {
	t.Helper()
	spec, err := core.BuildRunSpec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A small ring is fine: the analyzer subscribes, so it sees the whole
	// stream regardless of ring retention.
	tr := evtrace.New(64)
	spec.EvTracer = tr
	an := postmortem.New()
	an.Attach(tr)
	res, err := jvm.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	an.Finish()
	return res, an
}

// TestRealRunSumInvariant runs a real simulation and asserts the sum
// invariant holds for every collection: buckets sum to pause wall time
// exactly, with one report per collection.
func TestRealRunSumInvariant(t *testing.T) {
	res, an := runWithAttribution(t, core.Config{
		Benchmark: "lusearch", Mutators: 8, GCThreads: 4, Seed: core.DefaultSeed,
	})
	reports := an.Reports()
	if want := int(res.MinorGCs + res.MajorGCs); len(reports) != want {
		t.Fatalf("got %d reports, want %d (minor %d + major %d)",
			len(reports), want, res.MinorGCs, res.MajorGCs)
	}
	for i := range reports {
		r := &reports[i]
		if r.PauseNs() <= 0 {
			t.Errorf("gc %d: non-positive pause %d", r.Seq, r.PauseNs())
		}
		if got, want := r.Sum(), r.PauseNs(); got != want {
			t.Errorf("gc %d (%s): buckets sum %d != pause %d (diff %d)",
				r.Seq, r.Kind, got, want, got-want)
		}
		if r.Workers != res.GCThreads {
			t.Errorf("gc %d: workers %d, want %d", r.Seq, r.Workers, res.GCThreads)
		}
	}
	if bad := an.Export().Verify(); len(bad) != 0 {
		t.Errorf("export verify: %v", bad)
	}
}

// TestFig10PathologyDiagnosis reproduces the paper's §3 diagnosis on the
// Fig. 10 vanilla workload: the pause is dominated by the serialized
// jmutex handoff / thread stacking family, not by productive work.
func TestFig10PathologyDiagnosis(t *testing.T) {
	_, an := runWithAttribution(t, core.Config{
		Benchmark: "lusearch", Mutators: 16,
		Optimizations: core.OptNone, Seed: core.DefaultSeed,
	})
	pm := an.Postmortem()
	if pm.Collections == 0 {
		t.Fatal("no collections observed")
	}
	var buf bytes.Buffer
	pm.Render(&buf)
	t.Logf("vanilla lusearch postmortem:\n%s", buf.String())

	serialization := pm.Totals[postmortem.BucketHandoff] + pm.Totals[postmortem.BucketIdle]
	productive := pm.Totals[postmortem.BucketWork] + pm.Totals[postmortem.BucketSerial]
	if serialization <= productive {
		t.Errorf("expected handoff+idle (%d) to dominate work+serial (%d) on the vanilla workload",
			serialization, productive)
	}
	if got := postmortem.Classify(pm.Totals); got != pm.Pathology {
		t.Errorf("classify mismatch: %q vs %q", got, pm.Pathology)
	}
}
