package jmutex

import (
	"testing"

	"repro/internal/cfs"
	"repro/internal/ostopo"
	"repro/internal/simkit"
)

const (
	us = simkit.Microsecond
	ms = simkit.Millisecond
)

func newKernel(t *testing.T, cores int, seed int64) (*simkit.Sim, *cfs.Kernel) {
	t.Helper()
	sim := simkit.New(seed)
	t.Cleanup(sim.Close)
	topo := &ostopo.Topology{PhysCores: cores, SMTWays: 1, Nodes: 1}
	return sim, cfs.NewKernel(sim, topo, cfs.DefaultParams())
}

func drain(t *testing.T, sim *simkit.Sim, cap simkit.Time, threads ...*cfs.Thread) {
	t.Helper()
	for sim.Now() < cap {
		done := true
		for _, th := range threads {
			if th.State() != cfs.StateDone {
				done = false
				break
			}
		}
		if done {
			return
		}
		if !sim.Step() {
			break
		}
	}
	for _, th := range threads {
		if th.State() != cfs.StateDone {
			t.Fatalf("thread %s stuck in state %v at %v", th.Name, th.State(), sim.Now())
		}
	}
}

func TestMutualExclusionAllPolicies(t *testing.T) {
	for _, pol := range []Policy{PolicyHotSpot, PolicyFairFIFO, PolicyNoFastPath, PolicyWakeAll} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			sim, k := newKernel(t, 4, int64(pol)+1)
			m := New(k, "m", pol)
			inside := 0
			violations := 0
			total := 0
			var ths []*cfs.Thread
			for i := 0; i < 6; i++ {
				core := ostopo.CoreID(i % 4)
				ths = append(ths, k.Spawn("w", core, func(e *cfs.Env) {
					for j := 0; j < 25; j++ {
						m.Lock(e)
						inside++
						if inside != 1 {
							violations++
						}
						e.Compute(simkit.Time(10+e.Rand().Intn(40)) * us)
						total++
						inside--
						m.Unlock(e)
						e.Compute(simkit.Time(e.Rand().Intn(30)) * us)
					}
				}))
			}
			drain(t, sim, 10*simkit.Second, ths...)
			if violations != 0 {
				t.Errorf("%d mutual-exclusion violations", violations)
			}
			if total != 150 {
				t.Errorf("total critical sections = %d, want 150", total)
			}
		})
	}
}

func TestOwnerReacquisitionOnSharedCore(t *testing.T) {
	// §3.2: contenders stacked on one core — the previous owner keeps
	// winning via the fast path; acquisitions concentrate on 1-2 threads.
	sim, k := newKernel(t, 8, 7)
	m := New(k, "gc", PolicyHotSpot)
	const nthreads = 6
	const tasks = 120
	acquired := make([]int, nthreads)
	remaining := tasks
	var ths []*cfs.Thread
	for i := 0; i < nthreads; i++ {
		i := i
		// All spawned on core 0 (like GC threads) while the rest of the
		// machine is idle and will be deep idle once contention starts.
		ths = append(ths, k.Spawn("gc", 0, func(e *cfs.Env) {
			for {
				m.Lock(e)
				if remaining == 0 {
					m.Unlock(e)
					return
				}
				remaining--
				acquired[i]++
				m.Unlock(e)
				e.Compute(30 * us) // the "GC task" outside the lock
			}
		}))
	}
	drain(t, sim, 10*simkit.Second, ths...)
	max := 0
	for _, a := range acquired {
		if a > max {
			max = a
		}
	}
	if max < tasks/2 {
		t.Errorf("acquisition distribution %v: expected one dominant thread (>%d)", acquired, tasks/2)
	}
	if m.Stats.OwnerReacquires < tasks/2 {
		t.Errorf("OwnerReacquires = %d, want most of %d (unfair fast path)", m.Stats.OwnerReacquires, tasks)
	}
}

func TestFairFIFOBalancesAcquisitions(t *testing.T) {
	sim, k := newKernel(t, 4, 7)
	m := New(k, "gc", PolicyFairFIFO)
	const nthreads = 4
	acquired := make([]int, nthreads)
	var ths []*cfs.Thread
	for i := 0; i < nthreads; i++ {
		i := i
		ths = append(ths, k.Spawn("w", ostopo.CoreID(i), func(e *cfs.Env) {
			for j := 0; j < 30; j++ {
				m.Lock(e)
				acquired[i]++
				e.Compute(20 * us)
				m.Unlock(e)
				e.Compute(5 * us)
			}
		}))
	}
	drain(t, sim, 10*simkit.Second, ths...)
	for i, a := range acquired {
		if a != 30 {
			t.Errorf("thread %d acquired %d times, want 30", i, a)
		}
	}
	if m.Stats.Handoffs == 0 {
		t.Error("FIFO policy recorded no handoffs")
	}
}

func TestWaitNotifyAll(t *testing.T) {
	sim, k := newKernel(t, 4, 3)
	m := New(k, "cond", PolicyHotSpot)
	woke := 0
	var ths []*cfs.Thread
	for i := 0; i < 5; i++ {
		ths = append(ths, k.Spawn("waiter", 0, func(e *cfs.Env) {
			m.Lock(e)
			m.Wait(e)
			woke++
			m.Unlock(e)
		}))
	}
	notifier := k.Spawn("notifier", 1, func(e *cfs.Env) {
		e.Compute(2 * ms) // let all waiters get onto the WaitSet
		m.Lock(e)
		m.NotifyAll(e)
		m.Unlock(e)
	})
	ths = append(ths, notifier)
	drain(t, sim, 10*simkit.Second, ths...)
	if woke != 5 {
		t.Errorf("woke = %d, want 5", woke)
	}
	if m.WaitSetLen() != 0 {
		t.Errorf("WaitSet still has %d threads", m.WaitSetLen())
	}
}

func TestNotifySingle(t *testing.T) {
	sim, k := newKernel(t, 2, 3)
	m := New(k, "cond", PolicyHotSpot)
	woke := 0
	var waiters []*cfs.Thread
	for i := 0; i < 3; i++ {
		waiters = append(waiters, k.Spawn("waiter", 0, func(e *cfs.Env) {
			m.Lock(e)
			m.Wait(e)
			woke++
			m.Unlock(e)
		}))
	}
	notifier := k.Spawn("notifier", 1, func(e *cfs.Env) {
		e.Compute(1 * ms)
		m.Lock(e)
		m.Notify(e)
		m.Unlock(e)
	})
	sim.RunUntil(500 * ms)
	if woke != 1 {
		t.Errorf("woke = %d after single Notify, want 1", woke)
	}
	if m.WaitSetLen() != 2 {
		t.Errorf("WaitSet has %d threads, want 2", m.WaitSetLen())
	}
	_ = notifier
	_ = waiters
}

func TestNotifyAllWakesSequentially(t *testing.T) {
	// §2.4/§3.2: after NotifyAll, waiters are transferred asleep and only
	// the unlock chain wakes them, one OnDeck at a time.
	sim, k := newKernel(t, 8, 3)
	m := New(k, "gc", PolicyHotSpot)
	var wakeTimes []simkit.Time
	var ths []*cfs.Thread
	for i := 0; i < 6; i++ {
		ths = append(ths, k.Spawn("gc", 0, func(e *cfs.Env) {
			m.Lock(e)
			m.Wait(e)
			wakeTimes = append(wakeTimes, e.Now())
			m.Unlock(e)
			e.Compute(100 * us)
		}))
	}
	vm := k.Spawn("vm", 1, func(e *cfs.Env) {
		e.Compute(2 * ms)
		m.Lock(e)
		m.NotifyAll(e)
		m.Unlock(e)
	})
	ths = append(ths, vm)
	drain(t, sim, 10*simkit.Second, ths...)
	if len(wakeTimes) != 6 {
		t.Fatalf("only %d waiters woke", len(wakeTimes))
	}
	// Strictly increasing: the chain is sequential, not a thundering herd.
	for i := 1; i < len(wakeTimes); i++ {
		if wakeTimes[i] <= wakeTimes[i-1] {
			t.Errorf("wake %d at %v not after wake %d at %v", i, wakeTimes[i], i-1, wakeTimes[i-1])
		}
	}
}

func TestBypassCounting(t *testing.T) {
	sim, k := newKernel(t, 4, 11)
	m := New(k, "m", PolicyHotSpot)
	var waiter, holder, bypasser *cfs.Thread
	waiter = k.Spawn("waiter", 1, func(e *cfs.Env) {
		e.Compute(100 * us)
		m.Lock(e) // will queue behind holder
		m.Unlock(e)
	})
	holder = k.Spawn("holder", 0, func(e *cfs.Env) {
		m.Lock(e)
		e.Compute(3 * ms) // long critical section; waiter queues
		m.Unlock(e)
		e.Compute(5 * ms) // lock free; waiter is OnDeck but parked/waking
	})
	bypasser = k.Spawn("bypasser", 2, func(e *cfs.Env) {
		// Arrive just after release, inside the queued waiter's deep-idle
		// wake window (50µs), and steal the lock through the fast path.
		e.Compute(3*ms + 20*us)
		m.Lock(e)
		e.Compute(50 * us)
		m.Unlock(e)
	})
	drain(t, sim, 10*simkit.Second, waiter, holder, bypasser)
	if m.Stats.Bypasses == 0 {
		t.Error("expected at least one bypass acquisition")
	}
}

func TestNoFastPathPreventsBypass(t *testing.T) {
	sim, k := newKernel(t, 4, 11)
	m := New(k, "m", PolicyNoFastPath)
	var ths []*cfs.Thread
	for i := 0; i < 4; i++ {
		ths = append(ths, k.Spawn("w", ostopo.CoreID(i), func(e *cfs.Env) {
			for j := 0; j < 20; j++ {
				m.Lock(e)
				e.Compute(20 * us)
				m.Unlock(e)
				e.Compute(10 * us)
			}
		}))
	}
	drain(t, sim, 10*simkit.Second, ths...)
	if m.Stats.Bypasses != 0 {
		t.Errorf("no-fast-path policy recorded %d bypasses", m.Stats.Bypasses)
	}
}

func TestWakeAllLetsManyCompete(t *testing.T) {
	sim, k := newKernel(t, 4, 13)
	m := New(k, "m", PolicyWakeAll)
	done := 0
	var ths []*cfs.Thread
	for i := 0; i < 5; i++ {
		ths = append(ths, k.Spawn("w", ostopo.CoreID(i%4), func(e *cfs.Env) {
			m.Lock(e)
			e.Compute(50 * us)
			done++
			m.Unlock(e)
		}))
	}
	drain(t, sim, 10*simkit.Second, ths...)
	if done != 5 {
		t.Errorf("done = %d, want 5", done)
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	sim, k := newKernel(t, 2, 1)
	m := New(k, "m", PolicyHotSpot)
	recovered := 0
	a := k.Spawn("a", 0, func(e *cfs.Env) {
		func() {
			defer func() {
				if r := recover(); r != nil {
					recovered++
				}
			}()
			m.Unlock(e) // not owner
		}()
		func() {
			defer func() {
				if r := recover(); r != nil {
					recovered++
				}
			}()
			m.Wait(e) // not owner
		}()
		func() {
			defer func() {
				if r := recover(); r != nil {
					recovered++
				}
			}()
			m.Lock(e)
			m.Lock(e) // recursive
		}()
	})
	drain(t, sim, simkit.Second, a)
	if recovered != 3 {
		t.Errorf("recovered %d panics, want 3", recovered)
	}
}

func TestPolicyString(t *testing.T) {
	want := map[Policy]string{
		PolicyHotSpot:    "hotspot",
		PolicyFairFIFO:   "fair-fifo",
		PolicyNoFastPath: "no-fast-path",
		PolicyWakeAll:    "wake-all",
		Policy(42):       "Policy(42)",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Policy(%d).String() = %q, want %q", int(p), p.String(), s)
		}
	}
}

func TestStressRandomSchedules(t *testing.T) {
	// Property-style stress: across seeds and policies, no exclusion
	// violation and no lost thread.
	for seed := int64(1); seed <= 6; seed++ {
		for _, pol := range []Policy{PolicyHotSpot, PolicyFairFIFO, PolicyNoFastPath, PolicyWakeAll} {
			sim, k := newKernel(t, 3, seed)
			m := New(k, "m", pol)
			inside, viol, count := 0, 0, 0
			var ths []*cfs.Thread
			for i := 0; i < 5; i++ {
				ths = append(ths, k.Spawn("w", ostopo.CoreID(i%3), func(e *cfs.Env) {
					for j := 0; j < 10; j++ {
						m.Lock(e)
						inside++
						if inside > 1 {
							viol++
						}
						e.Compute(simkit.Time(1+e.Rand().Intn(100)) * us)
						inside--
						count++
						m.Unlock(e)
						if e.Rand().Intn(2) == 0 {
							e.Sleep(simkit.Time(e.Rand().Intn(200)) * us)
						}
					}
				}))
			}
			drain(t, sim, 20*simkit.Second, ths...)
			if viol != 0 {
				t.Fatalf("seed %d policy %v: %d violations", seed, pol, viol)
			}
			if count != 50 {
				t.Fatalf("seed %d policy %v: %d sections, want 50", seed, pol, count)
			}
		}
	}
}
