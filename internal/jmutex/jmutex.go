// Package jmutex models the HotSpot JVM's native monitor (§2.4 of the
// paper): a mutex with a CAS fast path and a queue-based slow path (cxq,
// EntryList, OnDeck), a WaitSet condition queue, and the competitive
// handoff policy. The model reproduces HotSpot's deliberate short-term
// unfairness:
//
//  1. the previous owner may re-acquire the lock through the fast path,
//     starving the OnDeck thread and the cxq waiters;
//  2. newly arrived threads can bypass all queued waiters;
//  3. at most one queued waiter (OnDeck) is ever awake, so blocked waiters
//     are invisible to OS load balancing.
//
// Alternative policies reproduce the fixes the paper tried and rejected in
// §4.1: a fair FIFO handoff, disabling the fast path, and waking all
// contenders.
package jmutex

import (
	"fmt"

	"repro/internal/cfs"
	"repro/internal/evtrace"
	"repro/internal/simkit"
)

// Policy selects the lock acquisition/handoff discipline.
type Policy int

const (
	// PolicyHotSpot is the default HotSpot monitor: CAS fast path with
	// bypass, single OnDeck heir, competitive handoff.
	PolicyHotSpot Policy = iota
	// PolicyFairFIFO hands the lock directly to the oldest waiter; new
	// arrivals never bypass the queue. (§4.1: "enforcing fair (FIFO) mutex
	// acquisition".)
	PolicyFairFIFO
	// PolicyNoFastPath keeps competitive handoff but disables the bypassing
	// fast path: arrivals queue behind existing waiters. (§4.1: "disabling
	// all fast paths in locking".)
	PolicyNoFastPath
	// PolicyWakeAll wakes every queued contender at unlock and lets them
	// race. (§4.1: "allowing multiple active lock contenders".)
	PolicyWakeAll
)

func (p Policy) String() string {
	switch p {
	case PolicyHotSpot:
		return "hotspot"
	case PolicyFairFIFO:
		return "fair-fifo"
	case PolicyNoFastPath:
		return "no-fast-path"
	case PolicyWakeAll:
		return "wake-all"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Stats counts lock events for the paper's §3.2 analysis.
type Stats struct {
	FastAcquires    int // acquisitions through the CAS fast path
	SlowAcquires    int // acquisitions after queuing at least once
	OwnerReacquires int // fast acquisitions by the previous owner
	Bypasses        int // fast acquisitions that jumped over queued waiters
	Handoffs        int // acquisitions by the OnDeck heir / FIFO successor
	Notifies        int
	ParkEvents      int // times a contender had to park
	// MaxConcurrentSeekers is the most threads ever simultaneously awake
	// and competing for the lock (§3.2: at most two during a stacked GC —
	// the previous owner and the OnDeck thread).
	MaxConcurrentSeekers int
}

// AcqEvent records one lock acquisition (when logging is enabled).
type AcqEvent struct {
	At        simkit.Time
	Thread    string
	Fast      bool // won through the CAS fast path
	Reacquire bool // the previous owner re-acquired
	Queued    int  // waiters queued (cxq + EntryList + OnDeck) at that instant
}

// Monitor is a HotSpot native monitor: mutual exclusion plus a WaitSet.
type Monitor struct {
	Name   string
	k      *cfs.Kernel
	policy Policy

	owner     *cfs.Thread
	lastOwner *cfs.Thread
	cxq       []*cfs.Thread // LIFO: index 0 is the most recent arrival
	entryList []*cfs.Thread // FIFO: index 0 is the next OnDeck
	onDeck    *cfs.Thread
	waitSet   []*cfs.Thread // FIFO

	casCost    simkit.Time
	unlockCost simkit.Time

	seekers int // threads awake and competing right now

	Stats Stats
	// RecordLog enables the acquisition log (Log) for §3.2-style traces.
	RecordLog bool
	Log       []AcqEvent

	etr *evtrace.Tracer // captured from the kernel at construction
}

// New creates a monitor with the given policy on kernel k.
func New(k *cfs.Kernel, name string, policy Policy) *Monitor {
	return &Monitor{
		Name:       name,
		k:          k,
		policy:     policy,
		casCost:    50 * simkit.Nanosecond,
		unlockCost: 100 * simkit.Nanosecond,
		etr:        k.EvTracer(),
	}
}

// emit publishes one lock event on the bus (no-op when tracing is off).
// m.Name is a preexisting string, so this path never allocates.
func (m *Monitor) emit(kind evtrace.Kind, t *cfs.Thread, arg1, arg2 int64) {
	m.etr.Emit(evtrace.Event{
		Kind: kind, At: int64(m.k.Sim.Now()), Core: -1,
		TID: int32(t.ID), Name: m.Name, Arg1: arg1, Arg2: arg2,
	})
}

// Policy returns the monitor's acquisition policy.
func (m *Monitor) Policy() Policy { return m.policy }

// Owner returns the current lock holder (nil when free).
func (m *Monitor) Owner() *cfs.Thread { return m.owner }

// QueuedWaiters returns the number of threads blocked on the lock
// (cxq + EntryList + OnDeck).
func (m *Monitor) QueuedWaiters() int {
	n := len(m.cxq) + len(m.entryList)
	if m.onDeck != nil {
		n++
	}
	return n
}

// WaitSetLen returns the number of threads sleeping on the condition.
func (m *Monitor) WaitSetLen() int { return len(m.waitSet) }

// HeldBy reports whether t owns the monitor.
func (m *Monitor) HeldBy(t *cfs.Thread) bool { return m.owner == t }

// seek tracks how many contenders are awake and competing (§3.2).
func (m *Monitor) seek(delta int) {
	m.seekers += delta
	if m.seekers > m.Stats.MaxConcurrentSeekers {
		m.Stats.MaxConcurrentSeekers = m.seekers
	}
}

// logAcq appends to the acquisition log when enabled.
func (m *Monitor) logAcq(t *cfs.Thread, fast bool) {
	if !m.RecordLog {
		return
	}
	m.Log = append(m.Log, AcqEvent{
		At:        m.k.Sim.Now(),
		Thread:    t.Name,
		Fast:      fast,
		Reacquire: m.lastOwner == t,
		Queued:    m.QueuedWaiters(),
	})
}

// Lock acquires the monitor, blocking as needed. It is composed of the
// three fold-friendly pieces below (LockBegin / TryLockFast /
// LockContended) so that a driver-serviced compute plan can run the
// uncontended acquisition without resuming the thread's body; calling Lock
// and calling the pieces in that order are observably identical.
func (m *Monitor) Lock(e *cfs.Env) {
	e.Compute(m.LockBegin(e.T))
	if m.TryLockFast(e.T) {
		return
	}
	m.LockContended(e)
}

// LockBegin registers t as a lock seeker and returns the CAS cost the
// caller must consume (via Compute or a plan slice) before deciding the
// acquisition with TryLockFast.
func (m *Monitor) LockBegin(t *cfs.Thread) simkit.Time {
	if m.owner == t {
		panic("jmutex: recursive Lock on " + m.Name + " by " + t.Name)
	}
	m.seek(1)
	return m.casCost
}

// TryLockFast attempts the post-CAS fast path for t, performing the full
// fast-acquisition bookkeeping (stats, trace events, acquisition log,
// ownership) on success. On failure the thread remains a seeker and must
// finish the acquisition with LockContended.
func (m *Monitor) TryLockFast(t *cfs.Thread) bool {
	switch m.policy {
	case PolicyHotSpot, PolicyWakeAll:
		if m.owner != nil {
			return false
		}
		m.Stats.FastAcquires++
		reacq := int64(0)
		if m.lastOwner == t {
			m.Stats.OwnerReacquires++
			reacq = 1
		}
		if q := m.QueuedWaiters(); q > 0 {
			m.Stats.Bypasses++
			if m.etr != nil {
				m.emit(evtrace.KLockBypass, t, int64(q), reacq)
			}
		}
		if m.etr != nil {
			m.emit(evtrace.KLockFast, t, int64(m.QueuedWaiters()), reacq)
		}
		m.logAcq(t, true)
		m.owner = t
		m.seek(-1)
		return true
	default: // PolicyNoFastPath, PolicyFairFIFO: no bypassing fast path
		if m.owner != nil || m.QueuedWaiters() != 0 {
			return false
		}
		m.Stats.FastAcquires++
		if m.etr != nil {
			m.emit(evtrace.KLockFast, t, 0, reacquireArg(m, t))
		}
		m.logAcq(t, true)
		m.owner = t
		m.seek(-1)
		return true
	}
}

// LockContended finishes an acquisition whose fast path failed, queuing
// and parking per the policy. Must run in the thread's body (it blocks).
func (m *Monitor) LockContended(e *cfs.Env) {
	defer m.seek(-1)
	if m.policy == PolicyFairFIFO {
		m.fifoSlow(e)
		return
	}
	m.competitiveSlow(e)
}

// competitiveSlow queues the thread and retries the CAS whenever it is
// woken (competitive handoff: being OnDeck grants no ownership).
func (m *Monitor) competitiveSlow(e *cfs.Env) {
	t := e.T
	for {
		if m.owner == nil {
			// Won the race. Clear our queue presence.
			if m.onDeck == t {
				m.onDeck = nil
				m.Stats.Handoffs++
			}
			m.removeQueued(t)
			if m.etr != nil {
				m.emit(evtrace.KLockHandoff, t, int64(m.QueuedWaiters()), 0)
			}
			m.logAcq(t, false)
			m.owner = t
			m.Stats.SlowAcquires++
			return
		}
		if m.onDeck != t && !m.isQueued(t) {
			m.cxq = pushHead(m.cxq, t)
		}
		m.Stats.ParkEvents++
		if m.etr != nil {
			m.emit(evtrace.KLockBlock, t, int64(m.QueuedWaiters()), 0)
		}
		m.seek(-1)
		e.Park()
		m.seek(1)
		e.Compute(m.casCost) // retry CAS after wakeup
	}
}

// fifoSlow queues the thread; ownership is assigned by the unlocker.
func (m *Monitor) fifoSlow(e *cfs.Env) {
	t := e.T
	m.cxq = pushHead(m.cxq, t)
	for m.owner != t {
		m.Stats.ParkEvents++
		if m.etr != nil {
			m.emit(evtrace.KLockBlock, t, int64(m.QueuedWaiters()), 0)
		}
		e.Park()
	}
	m.Stats.SlowAcquires++
	m.Stats.Handoffs++
	if m.etr != nil {
		m.emit(evtrace.KLockHandoff, t, int64(m.QueuedWaiters()), 0)
	}
}

// Unlock releases the monitor and wakes successor(s) per policy. Like
// Lock, it decomposes into UnlockBegin (cost) + UnlockFinish (release) so
// compute plans can drive it without a body resume.
func (m *Monitor) Unlock(e *cfs.Env) {
	e.Compute(m.UnlockBegin(e.T))
	m.UnlockFinish(e.T)
}

// UnlockBegin validates ownership and returns the release cost the caller
// must consume before completing the release with UnlockFinish.
func (m *Monitor) UnlockBegin(t *cfs.Thread) simkit.Time {
	if m.owner != t {
		panic("jmutex: Unlock of " + m.Name + " by non-owner " + t.Name)
	}
	return m.unlockCost
}

// UnlockFinish releases the monitor and wakes successor(s) per policy. It
// never blocks, so it is safe to call from the driver side.
func (m *Monitor) UnlockFinish(t *cfs.Thread) { m.unlockFrom(t) }

// unlockFrom implements the release path (shared with Wait).
func (m *Monitor) unlockFrom(t *cfs.Thread) {
	m.owner = nil
	m.lastOwner = t
	if m.etr != nil {
		m.emit(evtrace.KLockRelease, t, int64(m.QueuedWaiters()), 0)
	}
	switch m.policy {
	case PolicyFairFIFO:
		if next := m.popOldest(); next != nil {
			m.owner = next // direct handoff
			if m.etr != nil {
				m.emit(evtrace.KLockUnblock, next, int64(t.ID), 0)
			}
			m.k.Unpark(next)
		}
	case PolicyWakeAll:
		// Wake everyone; they race for the CAS when scheduled.
		wake := append([]*cfs.Thread{}, m.entryList...)
		wake = append(wake, m.cxq...)
		if m.onDeck != nil {
			wake = append([]*cfs.Thread{m.onDeck}, wake...)
		}
		for _, w := range wake {
			if m.etr != nil {
				m.emit(evtrace.KLockUnblock, w, int64(t.ID), 0)
			}
			m.k.Unpark(w)
		}
	default: // PolicyHotSpot, PolicyNoFastPath
		if m.onDeck == nil {
			if len(m.entryList) == 0 && len(m.cxq) > 0 {
				// Drain cxq into EntryList, oldest arrival first. Both
				// backings are kept for reuse: this runs once per wake in
				// the sequential GC-startup chain.
				for i := len(m.cxq) - 1; i >= 0; i-- {
					m.entryList = append(m.entryList, m.cxq[i])
					m.cxq[i] = nil
				}
				m.cxq = m.cxq[:0]
			}
			if len(m.entryList) > 0 {
				m.onDeck = m.entryList[0]
				n := copy(m.entryList, m.entryList[1:])
				m.entryList[n] = nil
				m.entryList = m.entryList[:n]
			}
		}
		if m.onDeck != nil {
			// Competitive handoff: wake the heir; it must win the CAS
			// by itself.
			if m.etr != nil {
				m.emit(evtrace.KLockUnblock, m.onDeck, int64(t.ID), 0)
			}
			m.k.Unpark(m.onDeck)
		}
	}
}

// Wait releases the monitor, sleeps on the WaitSet, and re-acquires after
// being selected. The owner must hold the lock. Like Lock and Unlock it
// decomposes into a plan-callable prefix (WaitBegin: WaitSet registration
// plus the release cost) and a body-only remainder (WaitFinish: the release
// itself and the park/re-acquire loop), so a compute plan can run the
// thread right up to the point where it must actually sleep.
func (m *Monitor) Wait(e *cfs.Env) {
	e.Compute(m.WaitBegin(e.T))
	m.WaitFinish(e)
}

// WaitBegin registers t on the WaitSet and returns the release cost the
// caller must consume (via Compute or a plan slice) before finishing with
// WaitFinish. The registration happens here — before the cost is consumed —
// exactly as in the fused Wait.
func (m *Monitor) WaitBegin(t *cfs.Thread) simkit.Time {
	if m.owner != t {
		panic("jmutex: Wait on " + m.Name + " by non-owner " + t.Name)
	}
	m.waitSet = append(m.waitSet, t)
	return m.unlockCost
}

// WaitFinish releases the monitor and blocks until the thread is selected
// out of the WaitSet and wins the lock. Must run in the thread's body.
func (m *Monitor) WaitFinish(e *cfs.Env) {
	t := e.T
	m.unlockFrom(t)
	// Sleep until this thread is out of the WaitSet AND wins the lock.
	if m.policy == PolicyFairFIFO {
		for m.owner != t {
			m.Stats.ParkEvents++
			if m.etr != nil {
				m.emit(evtrace.KLockBlock, t, int64(m.QueuedWaiters()), 1)
			}
			e.Park()
		}
		m.Stats.SlowAcquires++
		if m.etr != nil {
			m.emit(evtrace.KLockHandoff, t, int64(m.QueuedWaiters()), 1)
		}
		return
	}
	// HotSpot: a notify moves us to cxq without waking; we are unparked
	// only when an unlocker selects us as OnDeck (or wake-all fires).
	for {
		m.Stats.ParkEvents++
		if m.etr != nil {
			m.emit(evtrace.KLockBlock, t, int64(m.QueuedWaiters()), 1)
		}
		e.Park()
		if m.inWaitSet(t) {
			continue // spurious permit while still waiting
		}
		e.Compute(m.casCost)
		if m.owner == nil {
			if m.onDeck == t {
				m.onDeck = nil
				m.Stats.Handoffs++
			}
			m.removeQueued(t)
			m.owner = t
			m.Stats.SlowAcquires++
			if m.etr != nil {
				m.emit(evtrace.KLockHandoff, t, int64(m.QueuedWaiters()), 1)
			}
			return
		}
		if m.onDeck != t && !m.isQueued(t) {
			m.cxq = pushHead(m.cxq, t)
		}
	}
}

// Notify moves the oldest WaitSet thread to the lock queue (without waking
// it, per HotSpot). The caller must hold the monitor.
func (m *Monitor) Notify(e *cfs.Env) {
	if m.owner != e.T {
		panic("jmutex: Notify on " + m.Name + " by non-owner " + e.T.Name)
	}
	m.Stats.Notifies++
	if len(m.waitSet) == 0 {
		return
	}
	w := m.waitSet[0]
	n := copy(m.waitSet, m.waitSet[1:])
	m.waitSet[n] = nil
	m.waitSet = m.waitSet[:n]
	m.transferNotified(w)
}

// NotifyAll moves every WaitSet thread to the lock queue. With the HotSpot
// policy none of them is woken here — they are transferred asleep and wake
// one at a time through the unlock chain (§2.4), which is the root of the
// sequential-wake behaviour during GC startup.
func (m *Monitor) NotifyAll(e *cfs.Env) {
	if m.owner != e.T {
		panic("jmutex: NotifyAll on " + m.Name + " by non-owner " + e.T.Name)
	}
	m.Stats.Notifies++
	// Transfers only ever append to cxq, so the WaitSet backing can be
	// truncated up front and reused by the next Wait without reallocating
	// (this runs once per collection on the hot enqueueAll path).
	ws := m.waitSet
	m.waitSet = m.waitSet[:0]
	for _, w := range ws {
		m.transferNotified(w)
	}
}

func (m *Monitor) transferNotified(w *cfs.Thread) {
	m.cxq = pushHead(m.cxq, w)
	if m.policy == PolicyWakeAll {
		m.k.Unpark(w)
	}
}

// pushHead inserts t at the head of q in place. The queues here see a
// head-push per wait/notify of every collection, so they must reuse their
// backing arrays rather than allocate a fresh slice per push.
func pushHead(q []*cfs.Thread, t *cfs.Thread) []*cfs.Thread {
	q = append(q, nil)
	copy(q[1:], q)
	q[0] = t
	return q
}

func (m *Monitor) isQueued(t *cfs.Thread) bool {
	for _, q := range m.cxq {
		if q == t {
			return true
		}
	}
	for _, q := range m.entryList {
		if q == t {
			return true
		}
	}
	return false
}

func (m *Monitor) inWaitSet(t *cfs.Thread) bool {
	for _, q := range m.waitSet {
		if q == t {
			return true
		}
	}
	return false
}

func (m *Monitor) removeQueued(t *cfs.Thread) {
	m.cxq = removeFrom(m.cxq, t)
	m.entryList = removeFrom(m.entryList, t)
}

// popOldest removes the oldest queued waiter (EntryList head, else cxq
// tail), for the FIFO policy.
func (m *Monitor) popOldest() *cfs.Thread {
	if m.onDeck != nil {
		w := m.onDeck
		m.onDeck = nil
		return w
	}
	if len(m.entryList) > 0 {
		w := m.entryList[0]
		n := copy(m.entryList, m.entryList[1:])
		m.entryList[n] = nil
		m.entryList = m.entryList[:n]
		return w
	}
	if len(m.cxq) > 0 {
		w := m.cxq[len(m.cxq)-1]
		m.cxq = m.cxq[:len(m.cxq)-1]
		return w
	}
	return nil
}

// reacquireArg is 1 when t was also the previous owner (for trace args).
func reacquireArg(m *Monitor, t *cfs.Thread) int64 {
	if m.lastOwner == t {
		return 1
	}
	return 0
}

func removeFrom(q []*cfs.Thread, t *cfs.Thread) []*cfs.Thread {
	for i, v := range q {
		if v == t {
			return append(q[:i], q[i+1:]...)
		}
	}
	return q
}
