// Package ostopo models multicore machine topology: logical CPUs, SMT
// sibling pairs, NUMA nodes, and the scheduling-domain ladder used by the
// load balancer (SMT domain, node/LLC domain, system domain).
//
// The default topology mirrors the paper's testbed: a Dell PowerEdge T430
// with two 10-core Intel Xeon E5-2640 v4 packages (20 physical cores, 40
// logical CPUs with SMT enabled).
package ostopo

import "fmt"

// CoreID identifies a logical CPU.
type CoreID int

// DomainLevel identifies a rung of the scheduling-domain ladder.
type DomainLevel int

const (
	// DomainSMT spans the sibling hyperthreads of one physical core.
	DomainSMT DomainLevel = iota
	// DomainNode spans the logical CPUs of one NUMA node (shared LLC).
	DomainNode
	// DomainSystem spans the whole machine.
	DomainSystem
)

func (d DomainLevel) String() string {
	switch d {
	case DomainSMT:
		return "SMT"
	case DomainNode:
		return "Node"
	case DomainSystem:
		return "System"
	}
	return fmt.Sprintf("DomainLevel(%d)", int(d))
}

// Topology describes a machine. Logical CPU numbering follows Linux
// convention: CPUs [0, PhysCores) are the first hyperthread of each physical
// core, CPUs [PhysCores, 2*PhysCores) are their SMT siblings. Physical cores
// are split evenly across NUMA nodes, lowest IDs on node 0.
type Topology struct {
	PhysCores int // number of physical cores
	SMTWays   int // hyperthreads per physical core: 1 or 2
	Nodes     int // NUMA nodes; must divide PhysCores
}

// New validates and returns a topology.
func New(physCores, smtWays, nodes int) (*Topology, error) {
	t := &Topology{PhysCores: physCores, SMTWays: smtWays, Nodes: nodes}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// PaperTestbed returns the paper's machine: dual 10-core sockets, SMT off.
func PaperTestbed() *Topology { return &Topology{PhysCores: 20, SMTWays: 1, Nodes: 2} }

// PaperTestbedSMT returns the paper's machine with SMT enabled (40 CPUs).
func PaperTestbedSMT() *Topology { return &Topology{PhysCores: 20, SMTWays: 2, Nodes: 2} }

// Validate checks structural invariants.
func (t *Topology) Validate() error {
	if t.PhysCores <= 0 {
		return fmt.Errorf("ostopo: PhysCores must be positive, got %d", t.PhysCores)
	}
	if t.SMTWays != 1 && t.SMTWays != 2 {
		return fmt.Errorf("ostopo: SMTWays must be 1 or 2, got %d", t.SMTWays)
	}
	if t.Nodes <= 0 || t.PhysCores%t.Nodes != 0 {
		return fmt.Errorf("ostopo: Nodes (%d) must be positive and divide PhysCores (%d)", t.Nodes, t.PhysCores)
	}
	return nil
}

// NumCPUs returns the number of logical CPUs.
func (t *Topology) NumCPUs() int { return t.PhysCores * t.SMTWays }

// PhysCore returns the physical core index of a logical CPU.
func (t *Topology) PhysCore(c CoreID) int { return int(c) % t.PhysCores }

// Node returns the NUMA node of a logical CPU.
func (t *Topology) Node(c CoreID) int {
	perNode := t.PhysCores / t.Nodes
	return t.PhysCore(c) / perNode
}

// Sibling returns the SMT sibling of c, if SMT is enabled.
func (t *Topology) Sibling(c CoreID) (CoreID, bool) {
	if t.SMTWays != 2 {
		return 0, false
	}
	if int(c) < t.PhysCores {
		return c + CoreID(t.PhysCores), true
	}
	return c - CoreID(t.PhysCores), true
}

// NodeCPUs returns the logical CPUs of NUMA node n, in increasing order.
func (t *Topology) NodeCPUs(n int) []CoreID {
	var out []CoreID
	for c := 0; c < t.NumCPUs(); c++ {
		if t.Node(CoreID(c)) == n {
			out = append(out, CoreID(c))
		}
	}
	return out
}

// Domain returns the set of logical CPUs sharing the given domain level with
// c, excluding c itself. For DomainSMT on a non-SMT machine it is empty.
func (t *Topology) Domain(c CoreID, lvl DomainLevel) []CoreID {
	var out []CoreID
	switch lvl {
	case DomainSMT:
		if s, ok := t.Sibling(c); ok {
			out = append(out, s)
		}
	case DomainNode:
		for _, o := range t.NodeCPUs(t.Node(c)) {
			if o != c {
				out = append(out, o)
			}
		}
	case DomainSystem:
		for o := 0; o < t.NumCPUs(); o++ {
			if CoreID(o) != c {
				out = append(out, CoreID(o))
			}
		}
	}
	return out
}

// Distance returns the smallest domain level containing both CPUs: SMT if
// they are hyperthread siblings (or identical), Node if they share a NUMA
// node, System otherwise.
func (t *Topology) Distance(a, b CoreID) DomainLevel {
	if t.PhysCore(a) == t.PhysCore(b) {
		return DomainSMT
	}
	if t.Node(a) == t.Node(b) {
		return DomainNode
	}
	return DomainSystem
}
