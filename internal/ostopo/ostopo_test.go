package ostopo

import (
	"testing"
	"testing/quick"
)

func TestPaperTestbed(t *testing.T) {
	topo := PaperTestbed()
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.NumCPUs() != 20 {
		t.Errorf("NumCPUs() = %d, want 20", topo.NumCPUs())
	}
	if _, ok := topo.Sibling(3); ok {
		t.Error("SMT-off topology reported a sibling")
	}
	if topo.Node(0) != 0 || topo.Node(9) != 0 || topo.Node(10) != 1 || topo.Node(19) != 1 {
		t.Error("node assignment wrong for dual-socket 10-core layout")
	}
}

func TestPaperTestbedSMT(t *testing.T) {
	topo := PaperTestbedSMT()
	if topo.NumCPUs() != 40 {
		t.Fatalf("NumCPUs() = %d, want 40", topo.NumCPUs())
	}
	s, ok := topo.Sibling(3)
	if !ok || s != 23 {
		t.Errorf("Sibling(3) = (%d,%v), want (23,true)", s, ok)
	}
	s, ok = topo.Sibling(23)
	if !ok || s != 3 {
		t.Errorf("Sibling(23) = (%d,%v), want (3,true)", s, ok)
	}
	// Siblings share physical core and node.
	if topo.PhysCore(3) != topo.PhysCore(23) {
		t.Error("siblings on different physical cores")
	}
	if topo.Node(3) != topo.Node(23) {
		t.Error("siblings on different NUMA nodes")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Topology{
		{PhysCores: 0, SMTWays: 1, Nodes: 1},
		{PhysCores: -4, SMTWays: 1, Nodes: 1},
		{PhysCores: 8, SMTWays: 3, Nodes: 1},
		{PhysCores: 8, SMTWays: 1, Nodes: 0},
		{PhysCores: 10, SMTWays: 1, Nodes: 3},
	}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("Validate accepted invalid topology %+v", b)
		}
	}
	if _, err := New(10, 3, 2); err == nil {
		t.Error("New accepted invalid SMTWays")
	}
	if _, err := New(10, 2, 2); err != nil {
		t.Errorf("New rejected valid topology: %v", err)
	}
}

func TestNodeCPUs(t *testing.T) {
	topo := PaperTestbedSMT()
	n0 := topo.NodeCPUs(0)
	if len(n0) != 20 {
		t.Fatalf("node 0 has %d CPUs, want 20 (10 phys × 2 SMT)", len(n0))
	}
	for _, c := range n0 {
		if topo.Node(c) != 0 {
			t.Errorf("CPU %d listed in node 0 but Node() = %d", c, topo.Node(c))
		}
	}
}

func TestDomain(t *testing.T) {
	topo := PaperTestbed()
	if d := topo.Domain(0, DomainSMT); len(d) != 0 {
		t.Errorf("SMT domain on non-SMT machine = %v, want empty", d)
	}
	if d := topo.Domain(0, DomainNode); len(d) != 9 {
		t.Errorf("node domain size = %d, want 9", len(d))
	}
	if d := topo.Domain(0, DomainSystem); len(d) != 19 {
		t.Errorf("system domain size = %d, want 19", len(d))
	}
	smt := PaperTestbedSMT()
	if d := smt.Domain(5, DomainSMT); len(d) != 1 || d[0] != 25 {
		t.Errorf("SMT domain of CPU 5 = %v, want [25]", d)
	}
}

func TestDistance(t *testing.T) {
	topo := PaperTestbedSMT()
	if d := topo.Distance(5, 25); d != DomainSMT {
		t.Errorf("Distance(5,25) = %v, want SMT", d)
	}
	if d := topo.Distance(0, 9); d != DomainNode {
		t.Errorf("Distance(0,9) = %v, want Node", d)
	}
	if d := topo.Distance(0, 10); d != DomainSystem {
		t.Errorf("Distance(0,10) = %v, want System", d)
	}
	if d := topo.Distance(7, 7); d != DomainSMT {
		t.Errorf("Distance(7,7) = %v, want SMT (same core)", d)
	}
}

func TestDomainLevelString(t *testing.T) {
	if DomainSMT.String() != "SMT" || DomainNode.String() != "Node" || DomainSystem.String() != "System" {
		t.Error("DomainLevel.String() wrong")
	}
	if DomainLevel(9).String() != "DomainLevel(9)" {
		t.Error("unknown DomainLevel.String() wrong")
	}
}

func TestSiblingInvolution(t *testing.T) {
	// Property: Sibling is an involution and never maps a CPU to itself.
	topo := PaperTestbedSMT()
	check := func(raw uint8) bool {
		c := CoreID(int(raw) % topo.NumCPUs())
		s, ok := topo.Sibling(c)
		if !ok || s == c {
			return false
		}
		s2, ok := topo.Sibling(s)
		return ok && s2 == c
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestNodePartition(t *testing.T) {
	// Property: NodeCPUs partitions the CPU set.
	topo := &Topology{PhysCores: 12, SMTWays: 2, Nodes: 3}
	seen := map[CoreID]int{}
	for n := 0; n < topo.Nodes; n++ {
		for _, c := range topo.NodeCPUs(n) {
			seen[c]++
		}
	}
	if len(seen) != topo.NumCPUs() {
		t.Fatalf("nodes cover %d CPUs, want %d", len(seen), topo.NumCPUs())
	}
	for c, n := range seen {
		if n != 1 {
			t.Errorf("CPU %d appears in %d nodes", c, n)
		}
	}
}
