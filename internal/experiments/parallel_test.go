package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/postmortem"
	"repro/internal/runner"
)

// renderAll renders the given experiments under opt into one string.
func renderAll(t *testing.T, opt Options, ids []string) string {
	t.Helper()
	var b strings.Builder
	for _, id := range ids {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		e.Run(opt).Render(&b)
	}
	return b.String()
}

// quickParallelIDs covers every fan-out shape in the suite: interleaved
// cell batches (fig9), multi-table batches (fig10), nested sweeps (fig12),
// mixed single/RunMulti closures (fig15), custom-topology RunSpecs
// (fig16), and a policy ablation (abl2).
var quickParallelIDs = []string{"fig9", "fig10", "fig12", "fig15", "fig16", "abl2"}

// TestParallelRenderIdentical asserts the tentpole invariant: the worker
// pool may execute cells in any order on any number of goroutines, yet the
// rendered tables are byte-identical to a serial run, because every cell
// derives its own seed.
func TestParallelRenderIdentical(t *testing.T) {
	opt := Options{Seed: 7, Scale: 20}
	opt.Jobs = 1
	serial := renderAll(t, opt, quickParallelIDs)
	opt.Jobs = 4
	parallel := renderAll(t, opt, quickParallelIDs)
	if serial != parallel {
		t.Fatalf("parallel render differs from serial:\n%s", firstDiff(serial, parallel))
	}
	opt.Jobs = 16
	if wide := renderAll(t, opt, quickParallelIDs); wide != serial {
		t.Fatalf("jobs=16 render differs from serial:\n%s", firstDiff(serial, wide))
	}
}

// TestParallelRenderIdenticalFullScale4 is the acceptance check:
// `experiments -run all -scale 4` with any -jobs value matches the
// committed golden fixture byte for byte. The fixture
// (testdata/golden_scale4_seed42.txt) was generated before the kernel's
// hot paths were rewritten (event pooling, 4-ary heap, single-channel
// coroutines), so it pins the whole-simulation behaviour across those
// optimizations, not just serial-vs-parallel agreement. The test reruns
// the whole evaluation several times, so it is skipped under -short and
// under the race detector (TestParallelRenderIdentical covers the
// ordering property quickly).
func TestParallelRenderIdenticalFullScale4(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite determinism check skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("full-suite determinism check skipped under -race (quick variant still runs)")
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "golden_scale4_seed42.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	opt := Options{Seed: 42, Scale: 4}
	for _, jobs := range []int{1, 4, 16} {
		opt.Jobs = jobs
		got := renderAll(t, opt, ids)
		if got != string(golden) {
			t.Fatalf("scale-4 render with jobs=%d differs from golden fixture:\n%s",
				jobs, firstDiff(string(golden), got))
		}
	}
}

// TestGoldenScale4TracingEnabled asserts the observability contract: the
// full scale-4 evaluation with per-cell event tracing enabled still
// renders byte-identically to the committed golden fixture — tracing only
// records, it never perturbs scheduling, RNG draws, or event order. It
// also spot-checks that the per-cell Perfetto exports were written and
// parse. Skipped under -short and -race like the plain golden check.
func TestGoldenScale4TracingEnabled(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite tracing determinism check skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("full-suite tracing determinism check skipped under -race")
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "golden_scale4_seed42.txt"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var b strings.Builder
	for _, e := range All() {
		opt := Options{Seed: 42, Scale: 4, Jobs: 4, TraceDir: filepath.Join(dir, e.ID)}
		if err := os.MkdirAll(opt.TraceDir, 0o755); err != nil {
			t.Fatal(err)
		}
		e.Run(opt).Render(&b)
	}
	if b.String() != string(golden) {
		t.Fatalf("scale-4 render with tracing enabled differs from golden fixture:\n%s",
			firstDiff(string(golden), b.String()))
	}
	// Every experiment must have produced at least one cell trace, and the
	// exports must be valid Perfetto trace-event JSON.
	for _, e := range All() {
		cells, err := filepath.Glob(filepath.Join(dir, e.ID, "cell-*.json"))
		if err != nil {
			t.Fatal(err)
		}
		if len(cells) == 0 {
			t.Errorf("%s wrote no cell traces", e.ID)
			continue
		}
		data, err := os.ReadFile(cells[0])
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Errorf("%s: %s is not valid trace JSON: %v", e.ID, cells[0], err)
		} else if len(doc.TraceEvents) == 0 {
			t.Errorf("%s: %s holds no events", e.ID, cells[0])
		}
	}
}

// TestGoldenScale4CheckEnabled asserts the correctness-harness contract:
// the full scale-4 evaluation with the cross-layer invariant checker
// attached to every cell renders byte-identically to the committed golden
// fixture — checking only observes, it never perturbs a run — and the
// checker stays silent across the entire evaluation. Skipped under -short
// and -race like the other golden checks.
func TestGoldenScale4CheckEnabled(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite invariant check skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("full-suite invariant check skipped under -race")
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "golden_scale4_seed42.txt"))
	if err != nil {
		t.Fatal(err)
	}
	cc := &CheckCollector{}
	var b strings.Builder
	for _, e := range All() {
		e.Run(Options{Seed: 42, Scale: 4, Jobs: 4, Check: cc}).Render(&b)
	}
	if cc.Total() > 0 {
		t.Errorf("invariant violations on the scale-4 evaluation:\n%s", cc.Report())
	}
	if cc.events == 0 {
		t.Error("checker saw no events; per-cell attachment broken")
	}
	if b.String() != string(golden) {
		t.Fatalf("scale-4 render with checking enabled differs from golden fixture:\n%s",
			firstDiff(string(golden), b.String()))
	}
}

// TestGoldenScale4PostmortemEnabled asserts the postmortem contract: the
// full scale-4 evaluation with pause-postmortem attribution attached to
// every cell renders byte-identically to the committed golden fixture —
// attribution only subscribes to the event bus, it never perturbs a run.
// It also spot-checks the per-cell exports: every experiment wrote at
// least one postmortem, and each sampled file parses under the schema and
// passes the bucket-sum invariant. Skipped under -short and -race like
// the other golden checks.
func TestGoldenScale4PostmortemEnabled(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite postmortem determinism check skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("full-suite postmortem determinism check skipped under -race")
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "golden_scale4_seed42.txt"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var b strings.Builder
	for _, e := range All() {
		opt := Options{Seed: 42, Scale: 4, Jobs: 4, PostmortemDir: filepath.Join(dir, e.ID)}
		if err := os.MkdirAll(opt.PostmortemDir, 0o755); err != nil {
			t.Fatal(err)
		}
		e.Run(opt).Render(&b)
	}
	if b.String() != string(golden) {
		t.Fatalf("scale-4 render with postmortem enabled differs from golden fixture:\n%s",
			firstDiff(string(golden), b.String()))
	}
	for _, e := range All() {
		files, err := filepath.Glob(filepath.Join(dir, e.ID, "postmortem-*.json"))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) == 0 {
			t.Errorf("%s wrote no cell postmortems", e.ID)
			continue
		}
		data, err := os.ReadFile(files[0])
		if err != nil {
			t.Fatal(err)
		}
		ex, err := postmortem.ParseJSON(data)
		if err != nil {
			t.Errorf("%s: %s: %v", e.ID, files[0], err)
			continue
		}
		if bad := ex.Verify(); len(bad) != 0 {
			t.Errorf("%s: %s: sum invariant: %v", e.ID, files[0], bad)
		}
	}
}

// TestGoldenScale4PooledWorkers asserts the scratch-pooling contract: the
// full scale-4 evaluation run on one shared worker pool — so every cell
// after the first few starts from backing arrays harvested from earlier
// cells, across experiment boundaries — renders byte-identically to the
// committed golden fixture. Scratch reuse only changes slice capacities,
// never values (jvm.Scratch); this test pins that across the whole suite.
// Skipped under -short and -race like the other golden checks.
func TestGoldenScale4PooledWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite pooling determinism check skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("full-suite pooling determinism check skipped under -race")
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "golden_scale4_seed42.txt"))
	if err != nil {
		t.Fatal(err)
	}
	pool := runner.New(2)
	var b strings.Builder
	for _, e := range All() {
		e.Run(Options{Seed: 42, Scale: 4, Pool: pool}).Render(&b)
	}
	if b.String() != string(golden) {
		t.Fatalf("scale-4 render on a shared scratch pool differs from golden fixture:\n%s",
			firstDiff(string(golden), b.String()))
	}
}

// firstDiff returns the first differing line pair for a readable failure.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  serial:   %s\n  parallel: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
