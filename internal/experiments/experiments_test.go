package experiments

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// quick options keep experiment tests fast.
func quick() Options { return Options{Seed: 7, Scale: 20} }

func TestCatalogComplete(t *testing.T) {
	want := []string{
		"fig3a", "fig3b", "fig3c", "fig3d", "fig4", "fig5", "fig6", "tab1",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "abl1", "abl2", "abl3",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("catalog has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("catalog[%d] = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s: incomplete entry", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig10")
	if err != nil || e.ID != "fig10" {
		t.Errorf("ByID(fig10) = (%v, %v)", e.ID, err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("ByID accepted unknown id")
	}
}

func TestOptionsNormalization(t *testing.T) {
	o := Options{}.norm()
	if o.Seed != 42 || o.Scale != 1 {
		t.Errorf("norm() = %+v, want seed 42 scale 1", o)
	}
}

func TestScaledFloorsItems(t *testing.T) {
	o := Options{Scale: 1000}.norm()
	p := o.scaled(profileWithItems(5000))
	if p.TotalItems != 200 {
		t.Errorf("scaled floor = %d, want 200", p.TotalItems)
	}
	if o.requests(1000) != 300 {
		t.Errorf("requests floor = %d, want 300", o.requests(1000))
	}
}

func TestFig4VersusFig8Balance(t *testing.T) {
	// The headline qualitative result: optimized lusearch uses far more
	// cores and spreads root tasks over far more threads than vanilla.
	f4 := Fig4(quick())
	f8 := Fig8(quick())
	if len(f4.Tables) != 3 || len(f8.Tables) != 3 {
		t.Fatalf("distribution experiments returned %d/%d tables", len(f4.Tables), len(f8.Tables))
	}
	v := f4.String()
	o := f8.String()
	if !strings.Contains(v, "balance summary") || !strings.Contains(o, "balance summary") {
		t.Error("missing balance summary tables")
	}
}

func TestTable1Rows(t *testing.T) {
	r := Table1(quick())
	out := r.String()
	for _, name := range []string{"h2", "jython", "lusearch", "sunflow", "xalan",
		"compiler.compiler", "compress", "crypto.signverify", "xml.transform", "xml.validation"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table 1 missing row for %s", name)
		}
	}
}

func TestFig6SharesSumToOne(t *testing.T) {
	r := Fig6(quick())
	// Parse is overkill; sanity: the table rendered and mentions the phase
	// columns of the paper's figure.
	out := r.String()
	for _, col := range []string{"init", "steal(steal)", "steal(term)", "other-tasks", "final-sync"} {
		if !strings.Contains(out, col) {
			t.Errorf("Fig 6 missing column %s", col)
		}
	}
}

func TestFig10Structure(t *testing.T) {
	r := Fig10(quick())
	if len(r.Tables) != 3 {
		t.Fatalf("fig10 produced %d tables, want 3 (a, b, c)", len(r.Tables))
	}
	out := r.String()
	for _, s := range []string{"DaCapo execution time", "SPECjvm2008 throughput", "GC time relative"} {
		if !strings.Contains(out, s) {
			t.Errorf("fig10 missing table %q", s)
		}
	}
}

func TestRenderIncludesNotes(t *testing.T) {
	r := &Result{ID: "x", Title: "T", Notes: []string{"hello"}}
	if !strings.Contains(r.String(), "note: hello") {
		t.Error("notes not rendered")
	}
}

func profileWithItems(n int) workload.Profile {
	p := workload.Lusearch()
	p.TotalItems = n
	return p
}

func TestFig5LockTraceShowsUnfairness(t *testing.T) {
	r := Fig5(quick())
	out := r.String()
	if !strings.Contains(out, "owner-reacquire-fraction") {
		t.Fatalf("fig5 missing summary:\n%s", out)
	}
	if len(r.Tables) != 2 {
		t.Fatalf("fig5 produced %d tables, want 2", len(r.Tables))
	}
}
