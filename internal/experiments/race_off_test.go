//go:build !race

package experiments

// raceEnabled reports whether the race detector is compiled in; the heavy
// full-suite determinism test skips under -race (the detector multiplies
// simulation time ~10x; the quick variant still runs and covers the same
// code paths).
const raceEnabled = false
