// Package experiments regenerates every table and figure of the paper's
// evaluation (§3, §5) on the simulated testbed. Each experiment returns a
// Result holding plain-text tables whose rows mirror the paper's series;
// EXPERIMENTS.md records the paper-vs-measured comparison.
//
// All experiments are deterministic given Options.Seed. Options.Scale
// divides the workloads' item counts so quick runs (tests, benchmarks)
// finish fast; Scale=1 reproduces the full configuration.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/jvm"
	"repro/internal/runner"
	"repro/internal/simkit"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options configure an experiment run.
type Options struct {
	// Seed drives all randomness (default 42).
	Seed int64
	// Scale divides batch workloads' TotalItems and server request counts
	// (1 = the full evaluation configuration; tests use 4-10).
	Scale int
	// Jobs bounds how many simulation cells run concurrently: 0 means
	// GOMAXPROCS, 1 forces serial execution. Every cell derives its own
	// seed, so the rendered output is identical for any Jobs value.
	Jobs int
	// Pool, when non-nil, executes the cells instead of a pool built from
	// Jobs. The CLI shares one pool across experiments so per-experiment
	// speedup can be reported from its aggregate stats.
	Pool *runner.Pool
}

func (o Options) norm() Options {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Pool == nil {
		o.Pool = runner.New(o.Jobs)
	}
	return o
}

// scaled returns the profile with its work divided by the scale factor.
func (o Options) scaled(p workload.Profile) workload.Profile {
	if p.TotalItems > 0 {
		p.TotalItems /= o.Scale
		if p.TotalItems < 200 {
			p.TotalItems = 200
		}
	}
	return p
}

func (o Options) requests(full int) int {
	r := full / o.Scale
	if r < 300 {
		r = 300
	}
	return r
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*stats.Table
	Notes  []string
}

// Render writes the experiment's tables and notes to w.
func (r *Result) Render(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		t.Render(w)
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	if len(r.Notes) > 0 {
		fmt.Fprintln(w)
	}
}

// String renders the result.
func (r *Result) String() string {
	var b strings.Builder
	r.Render(&b)
	return b.String()
}

// WriteCSV writes each of the experiment's tables as a CSV file named
// <id>-<n>.csv under dir.
func (r *Result) WriteCSV(dir string) error {
	for i, t := range r.Tables {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("%s-%d.csv", r.ID, i)))
		if err != nil {
			return err
		}
		err = t.RenderCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Experiment couples an identifier with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) *Result
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig3a", "Impact of GC: DaCapo time breakdown vs mutators", Fig3a},
		{"fig3b", "Impact of GC: kmeans small/large vs mutators", Fig3b},
		{"fig3c", "GC scalability vs number of GC threads", Fig3c},
		{"fig3d", "Cassandra read latency and GC ratio vs clients", Fig3d},
		{"fig4", "Task and thread load imbalance (vanilla lusearch)", Fig4},
		{"fig5", "Lock acquisition trace: unfair mutex dynamics (§3.2)", Fig5},
		{"fig6", "Decomposition of minor GC time", Fig6},
		{"tab1", "Total and failed steal attempts (steal_best_of_2)", Table1},
		{"fig8", "Improved thread and task balance (optimized lusearch)", Fig8},
		{"fig9", "Steal attempts and failure rate: default vs optimized", Fig9},
		{"fig10", "Overall and GC improvement on DaCapo and SPECjvm2008", Fig10},
		{"fig11", "Comparison with NUMA node affinity and NUMA-aware stealing", Fig11},
		{"fig12", "Overall and GC scalability (DaCapo, 1-16 mutators)", Fig12},
		{"fig13", "Application results: Spark jobs and Cassandra latency", Fig13},
		{"fig14", "Heap-size sweeps: lusearch and kmeans", Fig14},
		{"fig15", "Multi-application environments", Fig15},
		{"fig16", "Effect of simultaneous multithreading", Fig16},
		{"abl1", "Ablation: rejected mutex fixes vs thread affinity (§4.1)", AblationMutex},
		{"abl2", "Ablation: stealing policies incl. SmartStealing (§6.1)", AblationSteal},
		{"abl3", "Ablation: NUMA memory-locality cost model (extension)", AblationNUMA},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %s)", id, idList())
}

func idList() string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return strings.Join(ids, ", ")
}

// --- shared helpers ---------------------------------------------------------

// run executes one JVM configuration; failures panic (experiments are
// expected to be well-formed; the CLI recovers).
func run(opt Options, cfg jvm.Config, seedOff int64, busy int) *jvm.Result {
	cfg.Seed = opt.Seed + seedOff
	r, err := jvm.Run(jvm.RunSpec{Config: cfg, Seed: opt.Seed + seedOff, BusyLoops: busy})
	if err != nil {
		panic(fmt.Sprintf("experiment run failed: %v", err))
	}
	return r
}

// cell is one simulation of an experiment: a configuration, its seed
// offset, and the number of interfering busy loops. Cells are independent
// by construction — each seeds its own simulation from Options.Seed plus
// the offset — so a figure's cells can run in any order.
type cell struct {
	cfg  jvm.Config
	off  int64
	busy int
}

// runCells executes cells on the options' worker pool and returns results
// in submission order. Figures collect their cells first, fan them out
// here, then assemble tables from the index-ordered results; the rendered
// output is byte-identical to a serial run.
func runCells(opt Options, cells []cell) []*jvm.Result {
	return runner.Map(opt.Pool, len(cells), func(i int) *jvm.Result {
		return run(opt, cells[i].cfg, cells[i].off, cells[i].busy)
	})
}

func ms(t simkit.Time) float64 { return t.Millis() }

// fourConfigs returns the paper's Fig. 10 configuration ladder.
func fourConfigs(base jvm.Config) []struct {
	Name string
	Cfg  jvm.Config
} {
	return []struct {
		Name string
		Cfg  jvm.Config
	}{
		{"vanilla", base},
		{"w/ GC-affinity", base.WithAffinityOnly()},
		{"w/ steal", base.WithStealOnly()},
		{"together", base.WithOptimizations()},
	}
}
