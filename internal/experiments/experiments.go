// Package experiments regenerates every table and figure of the paper's
// evaluation (§3, §5) on the simulated testbed. Each experiment returns a
// Result holding plain-text tables whose rows mirror the paper's series;
// EXPERIMENTS.md records the paper-vs-measured comparison.
//
// All experiments are deterministic given Options.Seed. Options.Scale
// divides the workloads' item counts so quick runs (tests, benchmarks)
// finish fast; Scale=1 reproduces the full configuration.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/check"
	"repro/internal/evtrace"
	"repro/internal/gclog"
	"repro/internal/jvm"
	"repro/internal/postmortem"
	"repro/internal/runner"
	"repro/internal/simkit"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options configure an experiment run.
type Options struct {
	// Seed drives all randomness (default 42).
	Seed int64
	// Scale divides batch workloads' TotalItems and server request counts
	// (1 = the full evaluation configuration; tests use 4-10).
	Scale int
	// Jobs bounds how many simulation cells run concurrently: 0 means
	// GOMAXPROCS, 1 forces serial execution. Every cell derives its own
	// seed, so the rendered output is identical for any Jobs value.
	Jobs int
	// Pool, when non-nil, executes the cells instead of a pool built from
	// Jobs. The CLI shares one pool across experiments so per-experiment
	// speedup can be reported from its aggregate stats.
	Pool *runner.Pool
	// TraceDir, when non-empty, writes one Perfetto trace-event JSON file
	// per simulation cell (cell-NNN.json) into this directory (which must
	// exist). Cells fanned out through runCells are numbered in submission
	// order, so their indexes are identical for any Jobs value; tracing
	// only records and never perturbs the rendered tables.
	TraceDir string
	// Timeline, when non-nil, additionally records the scheduling trace of
	// the requested cell and publishes its result for timeline rendering.
	Timeline *TimelineCapture
	// Check, when non-nil, attaches a fresh cross-layer invariant checker
	// to every cell that runs through the shared plumbing (the same cells
	// TraceDir covers) and merges each cell's findings into the collector.
	// Like tracing, checking is record-only: the rendered tables are
	// byte-identical with or without it.
	Check *CheckCollector
	// PostmortemDir, when non-empty, attaches a pause-postmortem analyzer
	// to every cell and writes its blame decomposition as
	// postmortem-NNN.json into this directory (which must exist). Cell
	// numbering matches TraceDir's, so cell-007.json and
	// postmortem-007.json describe the same simulation. Record-only, like
	// tracing and checking.
	PostmortemDir string

	// cellSeq numbers the experiment's cells; created by norm().
	cellSeq *int64
}

// TimelineCapture selects one simulation cell (by submission index) whose
// cfs scheduling trace should be kept. After the experiment returns,
// Result holds that cell's run for schedtrace rendering.
type TimelineCapture struct {
	Cell   int
	Result *jvm.Result
}

// CheckCollector accumulates invariant-checker outcomes across all the
// cells of an experiment batch. Cells run concurrently on the worker
// pool, so merging is mutex-protected; retained violation messages are
// capped at check.DefaultMaxViolations (the totals keep counting).
type CheckCollector struct {
	mu         sync.Mutex
	cells      int
	events     uint64
	total      int
	violations []string
}

// merge folds one finished cell's checker into the collector.
func (cc *CheckCollector) merge(idx int, ck *check.Checker) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.cells++
	cc.events += ck.EventsSeen()
	cc.total += ck.Total()
	for _, v := range ck.Violations() {
		if len(cc.violations) >= check.DefaultMaxViolations {
			break
		}
		cc.violations = append(cc.violations, fmt.Sprintf("cell %d: %s", idx, v))
	}
}

// Total is the number of invariant violations found across all cells.
func (cc *CheckCollector) Total() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.total
}

// Report renders a one-line summary plus any violations.
func (cc *CheckCollector) Report() string {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	s := fmt.Sprintf("check: %d cells, %d events, %d violation(s)\n",
		cc.cells, cc.events, cc.total)
	for _, v := range cc.violations {
		s += "  " + v + "\n"
	}
	if cc.total > len(cc.violations) {
		s += fmt.Sprintf("  ... %d more suppressed\n", cc.total-len(cc.violations))
	}
	return s
}

func (o Options) norm() Options {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Pool == nil {
		o.Pool = runner.New(o.Jobs)
	}
	if o.cellSeq == nil {
		o.cellSeq = new(int64)
	}
	return o
}

// nextCells reserves n consecutive cell indexes and returns the first.
// Batch reservation happens on the submitting goroutine, so runCells
// numbering is deterministic; stray run() calls from inside pool workers
// still get unique (atomically allocated) indexes.
func (o Options) nextCells(n int) int {
	if o.cellSeq == nil {
		return -1
	}
	return int(atomic.AddInt64(o.cellSeq, int64(n))) - n
}

// scaled returns the profile with its work divided by the scale factor.
func (o Options) scaled(p workload.Profile) workload.Profile {
	if p.TotalItems > 0 {
		p.TotalItems /= o.Scale
		if p.TotalItems < 200 {
			p.TotalItems = 200
		}
	}
	return p
}

func (o Options) requests(full int) int {
	r := full / o.Scale
	if r < 300 {
		r = 300
	}
	return r
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*stats.Table
	Notes  []string
}

// Render writes the experiment's tables and notes to w.
func (r *Result) Render(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		t.Render(w)
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	if len(r.Notes) > 0 {
		fmt.Fprintln(w)
	}
}

// String renders the result.
func (r *Result) String() string {
	var b strings.Builder
	r.Render(&b)
	return b.String()
}

// WriteCSV writes each of the experiment's tables as a CSV file named
// <id>-<n>.csv under dir.
func (r *Result) WriteCSV(dir string) error {
	for i, t := range r.Tables {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("%s-%d.csv", r.ID, i)))
		if err != nil {
			return err
		}
		err = t.RenderCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Experiment couples an identifier with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) *Result
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig3a", "Impact of GC: DaCapo time breakdown vs mutators", Fig3a},
		{"fig3b", "Impact of GC: kmeans small/large vs mutators", Fig3b},
		{"fig3c", "GC scalability vs number of GC threads", Fig3c},
		{"fig3d", "Cassandra read latency and GC ratio vs clients", Fig3d},
		{"fig4", "Task and thread load imbalance (vanilla lusearch)", Fig4},
		{"fig5", "Lock acquisition trace: unfair mutex dynamics (§3.2)", Fig5},
		{"fig6", "Decomposition of minor GC time", Fig6},
		{"tab1", "Total and failed steal attempts (steal_best_of_2)", Table1},
		{"fig8", "Improved thread and task balance (optimized lusearch)", Fig8},
		{"fig9", "Steal attempts and failure rate: default vs optimized", Fig9},
		{"fig10", "Overall and GC improvement on DaCapo and SPECjvm2008", Fig10},
		{"fig11", "Comparison with NUMA node affinity and NUMA-aware stealing", Fig11},
		{"fig12", "Overall and GC scalability (DaCapo, 1-16 mutators)", Fig12},
		{"fig13", "Application results: Spark jobs and Cassandra latency", Fig13},
		{"fig14", "Heap-size sweeps: lusearch and kmeans", Fig14},
		{"fig15", "Multi-application environments", Fig15},
		{"fig16", "Effect of simultaneous multithreading", Fig16},
		{"abl1", "Ablation: rejected mutex fixes vs thread affinity (§4.1)", AblationMutex},
		{"abl2", "Ablation: stealing policies incl. SmartStealing (§6.1)", AblationSteal},
		{"abl3", "Ablation: NUMA memory-locality cost model (extension)", AblationNUMA},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %s)", id, idList())
}

func idList() string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return strings.Join(ids, ", ")
}

// --- shared helpers ---------------------------------------------------------

// run executes one JVM configuration; failures panic (experiments are
// expected to be well-formed; the CLI recovers).
func run(opt Options, cfg jvm.Config, seedOff int64, busy int) *jvm.Result {
	return runIndexed(opt, opt.nextCells(1), cfg, seedOff, busy)
}

// runIndexed executes cell idx of the experiment, attaching the
// observability hooks the options ask for: a per-cell event tracer
// (exported as TraceDir/cell-NNN.json) and the one-cell scheduling trace
// behind Timeline. Both are record-only, so results are unchanged.
func runIndexed(opt Options, idx int, cfg jvm.Config, seedOff int64, busy int) *jvm.Result {
	cfg.Seed = opt.Seed + seedOff
	spec := jvm.RunSpec{Config: cfg, Seed: opt.Seed + seedOff, BusyLoops: busy}
	return runSpec(opt, idx, spec)
}

// runSpec executes one prepared RunSpec as cell idx with the options'
// observability hooks attached. The cell's machine is built from (and
// harvested back into) a per-worker scratch held on the pool's free-list,
// so a sweep rebuilds its event arenas, runqueues, and heap object tables
// once per worker instead of once per cell.
func runSpec(opt Options, idx int, spec jvm.RunSpec) *jvm.Result {
	sc, _ := opt.Pool.GetScratch().(*jvm.Scratch)
	if sc == nil {
		sc = new(jvm.Scratch)
	}
	spec.Scratch = sc
	defer opt.Pool.PutScratch(sc)
	var tr *evtrace.Tracer
	if ((opt.TraceDir != "" || opt.PostmortemDir != "") && idx >= 0) || opt.Check != nil {
		tr = evtrace.New(evtrace.DefaultSinkCap)
		spec.EvTracer = tr
	}
	var ck *check.Checker
	if opt.Check != nil {
		ck = check.New()
		ck.Attach(tr)
	}
	var an *postmortem.Analyzer
	if opt.PostmortemDir != "" && idx >= 0 {
		an = postmortem.New()
		an.Attach(tr)
	}
	capture := opt.Timeline != nil && idx == opt.Timeline.Cell
	if capture {
		spec.Trace = true
	}
	r, err := jvm.Run(spec)
	if err != nil {
		panic(fmt.Sprintf("experiment run failed: %v", err))
	}
	if ck != nil {
		ck.Finish()
		opt.Check.merge(idx, ck)
	}
	if tr != nil && opt.TraceDir != "" && idx >= 0 {
		if err := writeCellTrace(opt.TraceDir, idx, tr); err != nil {
			panic(fmt.Sprintf("experiment trace export failed: %v", err))
		}
	}
	if an != nil {
		an.Finish()
		if err := writeCellPostmortem(opt.PostmortemDir, idx, an); err != nil {
			panic(fmt.Sprintf("experiment postmortem export failed: %v", err))
		}
	}
	if capture {
		opt.Timeline.Result = r
	}
	return r
}

// runSpecCells fans prepared RunSpecs out on the pool with the same
// per-cell numbering and tracing as runCells (for figures that build
// their specs directly, e.g. custom topologies).
func runSpecCells(opt Options, specs []jvm.RunSpec) []*jvm.Result {
	base := opt.nextCells(len(specs))
	return runner.Map(opt.Pool, len(specs), func(i int) *jvm.Result {
		idx := -1
		if base >= 0 {
			idx = base + i
		}
		return runSpec(opt, idx, specs[i])
	})
}

// writeCellTrace exports one cell's events as TraceDir/cell-NNN.json.
func writeCellTrace(dir string, idx int, tr *evtrace.Tracer) error {
	f, err := os.Create(filepath.Join(dir, fmt.Sprintf("cell-%03d.json", idx)))
	if err != nil {
		return err
	}
	err = evtrace.WritePerfetto(f, tr)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeCellPostmortem exports one cell's pause postmortem as
// PostmortemDir/postmortem-NNN.json (cell numbering shared with
// writeCellTrace).
func writeCellPostmortem(dir string, idx int, an *postmortem.Analyzer) error {
	f, err := os.Create(filepath.Join(dir, fmt.Sprintf("postmortem-%03d.json", idx)))
	if err != nil {
		return err
	}
	err = gclog.WritePostmortemJSON(f, an)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// GridIndexes enumerates the cross product of axis lengths in row-major
// order — the last axis varies fastest — which is the deterministic
// submission-order cell numbering runCells gives a figure's fan-out.
// cmd/gcsimd's sweep endpoint derives its grid cells through this, so a
// sweep's cell i means the same configuration on every server and run.
// Zero-length axes are treated as one-point axes (index 0 = "hold the
// base value"), so callers can pass only the axes they sweep.
func GridIndexes(dims []int) [][]int {
	n := 1
	eff := make([]int, len(dims))
	for i, d := range dims {
		if d <= 0 {
			d = 1
		}
		eff[i] = d
		n *= d
	}
	out := make([][]int, n)
	for c := 0; c < n; c++ {
		idx := make([]int, len(eff))
		rem := c
		for i := len(eff) - 1; i >= 0; i-- {
			idx[i] = rem % eff[i]
			rem /= eff[i]
		}
		out[c] = idx
	}
	return out
}

// cell is one simulation of an experiment: a configuration, its seed
// offset, and the number of interfering busy loops. Cells are independent
// by construction — each seeds its own simulation from Options.Seed plus
// the offset — so a figure's cells can run in any order.
type cell struct {
	cfg  jvm.Config
	off  int64
	busy int
}

// runCells executes cells on the options' worker pool and returns results
// in submission order. Figures collect their cells first, fan them out
// here, then assemble tables from the index-ordered results; the rendered
// output is byte-identical to a serial run.
func runCells(opt Options, cells []cell) []*jvm.Result {
	base := opt.nextCells(len(cells))
	return runner.Map(opt.Pool, len(cells), func(i int) *jvm.Result {
		idx := -1
		if base >= 0 {
			idx = base + i
		}
		return runIndexed(opt, idx, cells[i].cfg, cells[i].off, cells[i].busy)
	})
}

func ms(t simkit.Time) float64 { return t.Millis() }

// fourConfigs returns the paper's Fig. 10 configuration ladder.
func fourConfigs(base jvm.Config) []struct {
	Name string
	Cfg  jvm.Config
} {
	return []struct {
		Name string
		Cfg  jvm.Config
	}{
		{"vanilla", base},
		{"w/ GC-affinity", base.WithAffinityOnly()},
		{"w/ steal", base.WithStealOnly()},
		{"together", base.WithOptimizations()},
	}
}
