package experiments

// This file regenerates the evaluation-section artifacts: Figs. 8-16 and
// the two ablations (§4.1's rejected mutex fixes, §6.1's SmartStealing).

import (
	"repro/internal/affinity"
	"repro/internal/jmutex"
	"repro/internal/jvm"
	"repro/internal/ostopo"
	"repro/internal/runner"
	"repro/internal/simkit"
	"repro/internal/stats"
	"repro/internal/taskq"
	"repro/internal/workload"
)

// Fig8 reproduces Figure 8: thread and task balance of a lusearch minor GC
// with the affinity optimizations enabled.
func Fig8(opt Options) *Result {
	opt = opt.norm()
	p := opt.scaled(workload.Lusearch())
	r := run(opt, jvm.Config{Profile: p, Mutators: 16}.WithAffinityOnly(), 8000, 0)
	res := &Result{ID: "fig8", Title: "Optimized lusearch: improved thread and task balance"}
	res.Tables = distributionTables(r, "optimized")
	res.Notes = append(res.Notes,
		"shape check vs fig4: GC threads spread across cores and all of them fetch root tasks")
	return res
}

// Fig9 reproduces Figure 9: steal attempts (relative to the default) and
// failure rates for the default and optimized stealing algorithms.
func Fig9(opt Options) *Result {
	opt = opt.norm()
	res := &Result{ID: "fig9", Title: "Optimized stealing: attempts and failure rate"}
	attempts := stats.NewTable("steal attempts relative to default (lower is better)",
		"benchmark", "default", "optimized", "ratio")
	failures := stats.NewTable("steal failure rate (lower is better)",
		"benchmark", "default", "optimized", "failed-attempts-reduction")
	benches := workload.Table1Benchmarks()
	var cells []cell
	for bi := range benches {
		benches[bi] = opt.scaled(benches[bi])
		base := jvm.Config{Profile: benches[bi], Mutators: 16}
		cells = append(cells,
			cell{base, int64(9000 + bi), 0},
			cell{base.WithStealOnly(), int64(9100 + bi), 0})
	}
	rs := runCells(opt, cells)
	for bi, p := range benches {
		d, o := rs[2*bi], rs[2*bi+1]
		attempts.AddRow(p.Name, d.Steal.TotalAttempts(), o.Steal.TotalAttempts(),
			stats.Ratio(float64(o.Steal.TotalAttempts()), float64(d.Steal.TotalAttempts())))
		failures.AddRow(p.Name, d.Steal.FailureRate(), o.Steal.FailureRate(),
			stats.Improvement(float64(d.Steal.TotalFailures()), float64(o.Steal.TotalFailures())))
	}
	res.Tables = append(res.Tables, attempts, failures)
	res.Notes = append(res.Notes, "paper: failed attempts drop by 18.3%-56.8% across benchmarks")
	return res
}

// Fig10 reproduces Figure 10: DaCapo execution time and SPECjvm2008
// throughput under vanilla / affinity-only / steal-only / together, plus
// the GC-time improvement of the combined optimizations.
func Fig10(opt Options) *Result {
	opt = opt.norm()
	res := &Result{ID: "fig10", Title: "Overall and GC performance improvement"}

	dacapoB, specB, gctB := workload.DaCapo(), workload.SPECjvm(), workload.Table1Benchmarks()
	var cells []cell
	for bi := range dacapoB {
		dacapoB[bi] = opt.scaled(dacapoB[bi])
		for ci, c := range fourConfigs(jvm.Config{Profile: dacapoB[bi], Mutators: 16}) {
			cells = append(cells, cell{c.Cfg, int64(10000 + bi*10 + ci), 0})
		}
	}
	specStart := len(cells)
	for bi := range specB {
		specB[bi] = opt.scaled(specB[bi])
		for ci, c := range fourConfigs(jvm.Config{Profile: specB[bi], Mutators: 16}) {
			cells = append(cells, cell{c.Cfg, int64(10500 + bi*10 + ci), 0})
		}
	}
	gctStart := len(cells)
	for bi := range gctB {
		gctB[bi] = opt.scaled(gctB[bi])
		base := jvm.Config{Profile: gctB[bi], Mutators: 16}
		cells = append(cells,
			cell{base, int64(11000 + bi), 0},
			cell{base.WithOptimizations(), int64(11100 + bi), 0})
	}
	rs := runCells(opt, cells)

	dacapo := stats.NewTable("(a) DaCapo execution time relative to vanilla (lower is better)",
		"benchmark", "vanilla", "w/ GC-affinity", "w/ steal", "together")
	for bi, p := range dacapoB {
		var vals []float64
		for ci := 0; ci < 4; ci++ {
			vals = append(vals, ms(rs[bi*4+ci].TotalTime))
		}
		dacapo.AddRow(p.Name, 1.0, stats.Ratio(vals[1], vals[0]),
			stats.Ratio(vals[2], vals[0]), stats.Ratio(vals[3], vals[0]))
	}

	spec := stats.NewTable("(b) SPECjvm2008 throughput relative to vanilla (higher is better)",
		"benchmark", "vanilla", "w/ GC-affinity", "w/ steal", "together")
	for bi, p := range specB {
		var vals []float64
		for ci := 0; ci < 4; ci++ {
			vals = append(vals, rs[specStart+bi*4+ci].ThroughputOPS)
		}
		spec.AddRow(p.Name, 1.0, stats.Ratio(vals[1], vals[0]),
			stats.Ratio(vals[2], vals[0]), stats.Ratio(vals[3], vals[0]))
	}

	gct := stats.NewTable("(c) GC time relative to vanilla (lower is better)",
		"benchmark", "vanilla(ms)", "optimized(ms)", "ratio", "improvement")
	for bi, p := range gctB {
		v, o := rs[gctStart+2*bi], rs[gctStart+2*bi+1]
		gct.AddRow(p.Name, ms(v.GCTime), ms(o.GCTime),
			stats.Ratio(ms(o.GCTime), ms(v.GCTime)),
			stats.Improvement(ms(v.GCTime), ms(o.GCTime)))
	}

	res.Tables = append(res.Tables, dacapo, spec, gct)
	res.Notes = append(res.Notes,
		"paper: GC-time improvement ranges from 20% (compiler.compiler) to 87.1% (sunflow); benchmarks with low Table-1 failure rates improve least")
	return res
}

// Fig11 reproduces Figure 11: the paper's optimizations vs the ported
// NUMA-aware baselines of Gidra et al. (node affinity; NUMA-restricted
// stealing).
func Fig11(opt Options) *Result {
	opt = opt.norm()
	res := &Result{ID: "fig11", Title: "Comparison with NUMA node affinity and NUMA-aware stealing"}

	benches := workload.Table1Benchmarks()
	var cells []cell
	for bi := range benches {
		benches[bi] = opt.scaled(benches[bi])
		base := jvm.Config{Profile: benches[bi], Mutators: 16}
		node := base
		node.Affinity = affinity.ModeNUMANode
		cells = append(cells,
			cell{base, int64(12000 + bi), 0},
			cell{node, int64(12100 + bi), 0},
			cell{base.WithAffinityOnly(), int64(12200 + bi), 0})
	}
	stlStart := len(cells)
	for bi := range benches {
		base := jvm.Config{Profile: benches[bi], Mutators: 16}
		numa := base
		numa.Steal = taskq.KindNUMARestricted
		numa.Affinity = affinity.ModeNUMANode // stealing within the node requires node binding
		cells = append(cells,
			cell{base, int64(12300 + bi), 0},
			cell{numa, int64(12400 + bi), 0},
			cell{base.WithStealOnly(), int64(12500 + bi), 0})
	}
	rs := runCells(opt, cells)

	aff := stats.NewTable("(a) affinity schemes: total time relative to vanilla (lower is better)",
		"benchmark", "vanilla", "node-affinity", "optimized-affinity")
	for bi, p := range benches {
		v, n, o := rs[3*bi], rs[3*bi+1], rs[3*bi+2]
		aff.AddRow(p.Name, 1.0,
			stats.Ratio(ms(n.TotalTime), ms(v.TotalTime)),
			stats.Ratio(ms(o.TotalTime), ms(v.TotalTime)))
	}

	stl := stats.NewTable("(b) stealing schemes: total time relative to vanilla (lower is better)",
		"benchmark", "vanilla", "numa-aware-stealing", "optimized-stealing")
	for bi, p := range benches {
		v, n, o := rs[stlStart+3*bi], rs[stlStart+3*bi+1], rs[stlStart+3*bi+2]
		stl.AddRow(p.Name, 1.0,
			stats.Ratio(ms(n.TotalTime), ms(v.TotalTime)),
			stats.Ratio(ms(o.TotalTime), ms(v.TotalTime)))
	}

	res.Tables = append(res.Tables, aff, stl)
	res.Notes = append(res.Notes,
		"paper: node affinity helps but stacking persists within a node, so per-core dynamic affinity wins; NUMA-restricted stealing is matched or beaten by semi-random stealing")
	return res
}

// Fig12 reproduces Figure 12: total and GC time for the five DaCapo
// benchmarks over 1-16 mutators, vanilla vs optimized.
func Fig12(opt Options) *Result {
	opt = opt.norm()
	res := &Result{ID: "fig12", Title: "DaCapo overall and GC scalability (vanilla vs optimized)"}
	benches := workload.DaCapo()
	var cells []cell
	for bi := range benches {
		benches[bi] = opt.scaled(benches[bi])
		for mi, m := range mutatorSweep {
			base := jvm.Config{Profile: benches[bi], Mutators: m}
			cells = append(cells,
				cell{base, int64(13000 + bi*100 + mi), 0},
				cell{base.WithOptimizations(), int64(13050 + bi*100 + mi), 0})
		}
	}
	rs := runCells(opt, cells)
	for bi, p := range benches {
		tab := stats.NewTable(p.Name,
			"mutators", "vanilla-total(ms)", "opt-total(ms)", "vanilla-gc(ms)", "opt-gc(ms)")
		for mi, m := range mutatorSweep {
			k := 2 * (bi*len(mutatorSweep) + mi)
			v, o := rs[k], rs[k+1]
			tab.AddRow(m, ms(v.TotalTime), ms(o.TotalTime), ms(v.GCTime), ms(o.GCTime))
		}
		res.Tables = append(res.Tables, tab)
	}
	res.Notes = append(res.Notes,
		"shape checks: h2/jython stagnate with more mutators; lusearch/sunflow/xalan scale; optimized GC time stays low and insensitive to mutator count")
	return res
}

// Fig13 reproduces Figure 13: Spark job times (small/large/huge), Cassandra
// read and write latency percentiles, and application GC time.
func Fig13(opt Options) *Result {
	opt = opt.norm()
	res := &Result{ID: "fig13", Title: "Application results: HiBench on Spark and Cassandra"}

	spark := stats.NewTable("(a) Spark total time, optimized relative to vanilla (lower is better)",
		"job", "vanilla(ms)", "optimized(ms)", "ratio", "status")
	gct := stats.NewTable("(d) application GC time, optimized relative to vanilla",
		"job", "vanilla-gc(ms)", "optimized-gc(ms)", "ratio", "major-share(vanilla)")
	jobs := []workload.Profile{
		workload.Wordcount(workload.SizeSmall), workload.Wordcount(workload.SizeLarge), workload.Wordcount(workload.SizeHuge),
		workload.Kmeans(workload.SizeSmall), workload.Kmeans(workload.SizeLarge), workload.Kmeans(workload.SizeHuge),
		workload.Pagerank(workload.SizeSmall), workload.Pagerank(workload.SizeLarge), workload.Pagerank(workload.SizeHuge),
	}
	var cells []cell
	for bi := range jobs {
		jobs[bi] = opt.scaled(jobs[bi])
		base := jvm.Config{Profile: jobs[bi], Mutators: 16}
		cells = append(cells,
			cell{base, int64(14000 + bi), 0},
			cell{base.WithOptimizations(), int64(14100 + bi), 0})
	}
	cassStart := len(cells)
	kinds := []string{"write", "read"}
	for i, kind := range kinds {
		p := workload.Cassandra()
		if kind == "write" {
			// Writes carry commit-log work: heavier service and allocation.
			p.ServiceCompute = p.ServiceCompute * 13 / 10
			p.ServiceClusters++
		}
		base := jvm.Config{Profile: p, Mutators: 16, Clients: 256, Requests: opt.requests(20000)}
		cells = append(cells,
			cell{base, int64(14500 + i*10), 0},
			cell{base.WithOptimizations(), int64(14500 + i*10 + 1), 0})
	}
	rs := runCells(opt, cells)

	for bi, p := range jobs {
		v, o := rs[2*bi], rs[2*bi+1]
		status := "ok"
		if v.Err != nil || o.Err != nil {
			status = "OOM (as in the paper)"
		}
		spark.AddRow(p.Name, ms(v.TotalTime), ms(o.TotalTime),
			stats.Ratio(ms(o.TotalTime), ms(v.TotalTime)), status)
		majorShare := 0.0
		if v.GCTime > 0 {
			majorShare = float64(v.MajorGCTime) / float64(v.GCTime)
		}
		gct.AddRow(p.Name, ms(v.GCTime), ms(o.GCTime),
			stats.Ratio(ms(o.GCTime), ms(v.GCTime)), majorShare)
	}

	res.Tables = append(res.Tables, spark)
	for i, kind := range kinds {
		tab := stats.NewTable("(b/c) Cassandra "+kind+" latency (ms)",
			"config", "median", "mean", "p95", "p99")
		for vi, name := range []string{"vanilla", "optimized"} {
			r := rs[cassStart+2*i+vi]
			tab.AddRow(name, r.Latency.Median(), r.Latency.Mean(),
				r.Latency.Percentile(95), r.Latency.Percentile(99))
		}
		res.Tables = append(res.Tables, tab)
	}
	res.Tables = append(res.Tables, gct)
	res.Notes = append(res.Notes,
		"paper: biggest Spark gain 15.3% (kmeans/huge); optimizations mostly reduce minor GC, so full-GC-bound jobs improve less; Cassandra p99 read latency improves up to 43%")
	return res
}

// Fig14 reproduces Figure 14: total and GC time across heap sizes for
// lusearch (30-900 MB) and kmeans (8-32 GB).
func Fig14(opt Options) *Result {
	opt = opt.norm()
	res := &Result{ID: "fig14", Title: "Heap-size sweeps (vanilla vs optimized)"}

	heapsMB := []int{30, 90, 180, 360, 600, 900}
	heapsGB := []int{8, 16, 32}
	p := opt.scaled(workload.Lusearch())
	kp := opt.scaled(workload.Kmeans(workload.SizeLarge))
	var cells []cell
	for hi, mb := range heapsMB {
		base := jvm.Config{Profile: p, Mutators: 16, HeapMB: mb}
		cells = append(cells,
			cell{base, int64(15000 + hi), 0},
			cell{base.WithOptimizations(), int64(15050 + hi), 0})
	}
	for hi, gb := range heapsGB {
		base := jvm.Config{Profile: kp, Mutators: 16, HeapMB: gb * 1024}
		cells = append(cells,
			cell{base, int64(15100 + hi), 0},
			cell{base.WithOptimizations(), int64(15150 + hi), 0})
	}
	rs := runCells(opt, cells)

	lusearch := stats.NewTable("lusearch", "heap(MB)", "vanilla-total(ms)", "opt-total(ms)", "vanilla-gc(ms)", "opt-gc(ms)")
	for hi, mb := range heapsMB {
		v, o := rs[2*hi], rs[2*hi+1]
		lusearch.AddRow(mb, ms(v.TotalTime), ms(o.TotalTime), ms(v.GCTime), ms(o.GCTime))
	}

	kmeans := stats.NewTable("kmeans", "heap(GB)", "vanilla-total(ms)", "opt-total(ms)", "vanilla-gc(ms)", "opt-gc(ms)")
	for hi, gb := range heapsGB {
		k := 2 * (len(heapsMB) + hi)
		v, o := rs[k], rs[k+1]
		kmeans.AddRow(gb, ms(v.TotalTime), ms(o.TotalTime), ms(v.GCTime), ms(o.GCTime))
	}
	res.Tables = append(res.Tables, lusearch, kmeans)
	res.Notes = append(res.Notes,
		"shape checks: larger lusearch heaps mean fewer GCs and less total GC time; the optimized JVM matches vanilla-at-much-larger-heap; kmeans' gain shrinks as GC stops dominating")
	return res
}

// Fig15 reproduces Figure 15: mixed-application environments — lusearch
// with ten busy loops, two lusearch instances, and two sunflow instances.
func Fig15(opt Options) *Result {
	opt = opt.norm()
	res := &Result{ID: "fig15", Title: "Multi-application environments (vanilla vs optimized)"}
	total := stats.NewTable("(a) total time (ms)", "scenario", "vanilla", "optimized", "ratio")
	gc := stats.NewTable("(b) GC time (ms)", "scenario", "vanilla", "optimized", "ratio")

	lus := opt.scaled(workload.Lusearch())
	sun := opt.scaled(workload.Sunflow())

	// Each scenario half (vanilla or optimized) is an independent
	// simulation, so the six halves fan out as one batch: two single-JVM
	// runs with busy loops and four co-running RunMulti pairs.
	type tg struct{ total, gc simkit.Time }
	busyLoop := func(cfg jvm.Config, off int64) func() tg {
		return func() tg {
			r := run(opt, cfg, off, 10)
			return tg{r.TotalTime, r.GCTime}
		}
	}
	coRun := func(p workload.Profile, seedOff int64, optimized bool) func() tg {
		return func() tg {
			cfgA := jvm.Config{Profile: p, Mutators: 16}
			cfgB := jvm.Config{Profile: p, Mutators: 16, SpawnCore: 10}
			if optimized {
				cfgA = cfgA.WithOptimizations()
				cfgB = cfgB.WithOptimizations()
			}
			rs, err := jvm.RunMulti(opt.Seed+seedOff, nil, nil, 0, 0, cfgA, cfgB)
			if err != nil {
				panic(err)
			}
			var slowest, gcSum simkit.Time
			for _, r := range rs {
				if r.TotalTime > slowest {
					slowest = r.TotalTime
				}
				gcSum += r.GCTime
			}
			return tg{slowest, gcSum / simkit.Time(len(rs))}
		}
	}
	tasks := []func() tg{
		busyLoop(jvm.Config{Profile: lus, Mutators: 16}, 16000),
		busyLoop(jvm.Config{Profile: lus, Mutators: 16}.WithOptimizations(), 16001),
		coRun(lus, 16100, false), coRun(lus, 16100, true),
		coRun(sun, 16200, false), coRun(sun, 16200, true),
	}
	rs := runner.Map(opt.Pool, len(tasks), func(i int) tg { return tasks[i]() })
	addRows := func(name string, v, o tg) {
		total.AddRow(name, ms(v.total), ms(o.total), stats.Ratio(ms(o.total), ms(v.total)))
		gc.AddRow(name, ms(v.gc), ms(o.gc), stats.Ratio(ms(o.gc), ms(v.gc)))
	}
	addRows("lusearch w/ loop", rs[0], rs[1])
	addRows("2*lusearch", rs[2], rs[3])
	addRows("2*sunflow", rs[4], rs[5])

	res.Tables = append(res.Tables, total, gc)
	res.Notes = append(res.Notes,
		"paper: dynamic GC thread balancing cuts lusearch-with-loop total/GC time by 49.6%/77.2%; co-running JVMs still benefit under constrained resources")
	return res
}

// Fig16 reproduces Figure 16: the effect of SMT (15 GC threads fixed to
// match the SMT-off heuristic).
func Fig16(opt Options) *Result {
	opt = opt.norm()
	res := &Result{ID: "fig16", Title: "Vanilla and optimized JVM with and without SMT"}
	tab := stats.NewTable("total time relative to vanilla SMT-off (lower is better)",
		"benchmark", "vanilla", "optimized", "vanilla w/ SMT", "optimized w/ SMT")
	benches := workload.DaCapo()
	var specs []jvm.RunSpec
	for bi := range benches {
		benches[bi] = opt.scaled(benches[bi])
		for ci, c := range []struct {
			smt bool
			cfg jvm.Config
		}{
			{false, jvm.Config{Profile: benches[bi], Mutators: 16, GCThreads: 15}},
			{false, jvm.Config{Profile: benches[bi], Mutators: 16, GCThreads: 15}.WithOptimizations()},
			{true, jvm.Config{Profile: benches[bi], Mutators: 16, GCThreads: 15}},
			{true, jvm.Config{Profile: benches[bi], Mutators: 16, GCThreads: 15}.WithOptimizations()},
		} {
			topo := ostopo.PaperTestbed()
			if c.smt {
				topo = ostopo.PaperTestbedSMT()
			}
			specs = append(specs, jvm.RunSpec{
				Config: withSeed(c.cfg, opt.Seed+int64(17000+bi*10+ci)),
				Topo:   topo, Seed: opt.Seed + int64(17000+bi*10+ci),
			})
		}
	}
	rs := runSpecCells(opt, specs)
	for bi, p := range benches {
		var vals []float64
		for ci := 0; ci < 4; ci++ {
			vals = append(vals, ms(rs[bi*4+ci].TotalTime))
		}
		tab.AddRow(p.Name, 1.0, stats.Ratio(vals[1], vals[0]),
			stats.Ratio(vals[2], vals[0]), stats.Ratio(vals[3], vals[0]))
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes,
		"paper: SMT mitigates (but does not eliminate) thread stacking via cheaper, more frequent sibling balancing; the optimizations still help on top")
	return res
}

func withSeed(c jvm.Config, seed int64) jvm.Config {
	c.Seed = seed
	return c
}

// AblationMutex evaluates the mutex-side fixes the paper tried and
// rejected in §4.1 against dynamic thread affinity.
func AblationMutex(opt Options) *Result {
	opt = opt.norm()
	res := &Result{ID: "abl1", Title: "Rejected mutex fixes vs GC thread affinity (§4.1)"}
	tab := stats.NewTable("lusearch, 16 mutators",
		"configuration", "total(ms)", "gc(ms)", "gc-ratio", "owner-reacquires")
	p := opt.scaled(workload.Lusearch())
	base := jvm.Config{Profile: p, Mutators: 16}
	cases := []struct {
		name string
		cfg  jvm.Config
	}{
		{"vanilla (unfair mutex)", base},
		{"fair FIFO mutex", withMutex(base, jmutex.PolicyFairFIFO)},
		{"no fast path", withMutex(base, jmutex.PolicyNoFastPath)},
		{"wake all contenders", withMutex(base, jmutex.PolicyWakeAll)},
		{"dynamic GC thread affinity", base.WithAffinityOnly()},
	}
	var cells []cell
	for ci, c := range cases {
		cells = append(cells, cell{c.cfg, int64(18000 + ci), 0})
	}
	rs := runCells(opt, cells)
	for ci, c := range cases {
		r := rs[ci]
		tab.AddRow(c.name, ms(r.TotalTime), ms(r.GCTime), r.GCRatio(), r.Monitor.OwnerReacquires)
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes,
		"paper: without OS help the locking-side fixes 'either had no effect or led to degraded performance'; affinity is the fix that works")
	return res
}

func withMutex(c jvm.Config, pol jmutex.Policy) jvm.Config {
	c.MutexPolicy = pol
	return c
}

// AblationSteal compares stealing policies, including Qian et al.'s
// SmartStealing baseline (§6.1).
func AblationSteal(opt Options) *Result {
	opt = opt.norm()
	res := &Result{ID: "abl2", Title: "Stealing policy ablation incl. SmartStealing (§6.1)"}
	tab := stats.NewTable("DaCapo, 16 mutators, affinity enabled",
		"benchmark", "policy", "gc(ms)", "attempts", "failure-rate")
	kinds := []taskq.PolicyKind{taskq.KindBestOf2, taskq.KindSmartStealing, taskq.KindSemiRandom}
	benches := workload.DaCapo()
	var cells []cell
	for bi := range benches {
		benches[bi] = opt.scaled(benches[bi])
		for pi, kind := range kinds {
			cfg := jvm.Config{Profile: benches[bi], Mutators: 16}.WithAffinityOnly()
			cfg.Steal = kind
			if kind == taskq.KindSemiRandom {
				cfg.FastTerminator = true
			}
			cells = append(cells, cell{cfg, int64(19000 + bi*10 + pi), 0})
		}
	}
	rs := runCells(opt, cells)
	for bi, p := range benches {
		for pi, kind := range kinds {
			r := rs[bi*len(kinds)+pi]
			tab.AddRow(p.Name, kind.String(), ms(r.GCTime), r.Steal.TotalAttempts(), r.Steal.FailureRate())
		}
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes,
		"paper §6.1: SmartStealing reduces failed attempts but 'undermines concurrency during work stealing'; the semi-random policy keeps concurrency while cutting futile attempts")
	return res
}

// AblationNUMA evaluates the affinity/stealing schemes under the NUMA
// memory-locality cost model (remote accesses cost 1.6x, objects rehome on
// copy) — the dimension Gidra et al.'s designs optimize for. It extends
// Fig. 11 beyond the paper: node-restricted schemes regain ground when
// memory locality is priced, but dynamic per-core affinity remains ahead.
func AblationNUMA(opt Options) *Result {
	opt = opt.norm()
	res := &Result{ID: "abl3", Title: "NUMA memory-locality ablation (extension)"}
	tab := stats.NewTable("lusearch & sunflow, 16 mutators, remote factor 1.6",
		"benchmark", "configuration", "total(ms)", "gc(ms)", "remote-access-ratio")
	caseNames := []string{"vanilla", "node-affinity + NUMA-steal (Gidra)", "dynamic affinity + semi-random (paper)"}
	benches := []workload.Profile{workload.Lusearch(), workload.Sunflow()}
	var cells []cell
	for bi := range benches {
		benches[bi] = opt.scaled(benches[bi])
		base := jvm.Config{Profile: benches[bi], Mutators: 16, NUMARemoteFactor: 1.6}
		node := base
		node.Affinity = affinity.ModeNUMANode
		node.Steal = taskq.KindNUMARestricted
		for ci, cfg := range []jvm.Config{base, node, base.WithOptimizations()} {
			cells = append(cells, cell{cfg, int64(20000 + bi*10 + ci), 0})
		}
	}
	rs := runCells(opt, cells)
	for bi, p := range benches {
		for ci, name := range caseNames {
			r := rs[bi*len(caseNames)+ci]
			var local, remote int64
			for _, rep := range r.Reports {
				local += rep.LocalAccesses
				remote += rep.RemoteAccesses
			}
			ratio := 0.0
			if local+remote > 0 {
				ratio = float64(remote) / float64(local+remote)
			}
			tab.AddRow(p.Name, name, ms(r.TotalTime), ms(r.GCTime), ratio)
		}
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes,
		"the ported baseline binds threads and restricts stealing but does not partition tracing by node (NumaGiC's full design), so its remote ratio is no lower than the optimized scheme's; even with remote accesses priced, dynamic per-core affinity keeps the lower GC time")
	return res
}
