package experiments

// This file regenerates the analysis-section artifacts: Fig. 3 (impact of
// GC on application performance and scalability), Fig. 4 (load imbalance),
// Fig. 6 (minor GC time decomposition), and Table 1 (steal attempts).

import (
	"fmt"
	"strings"

	"repro/internal/jvm"
	"repro/internal/pscavenge"
	"repro/internal/stats"
	"repro/internal/workload"
)

var mutatorSweep = []int{1, 2, 4, 8, 16}

// Fig3a reproduces Figure 3(a): lusearch and xalan execution-time breakdown
// (mutator vs GC) with 1-16 mutator threads, normalized to the 1-mutator
// total.
func Fig3a(opt Options) *Result {
	opt = opt.norm()
	res := &Result{ID: "fig3a", Title: "DaCapo mutator/GC time vs mutator threads (vanilla JVM)"}
	profiles := []workload.Profile{workload.Lusearch(), workload.Xalan()}
	var cells []cell
	for bi := range profiles {
		profiles[bi] = opt.scaled(profiles[bi])
		for mi, m := range mutatorSweep {
			cells = append(cells, cell{jvm.Config{Profile: profiles[bi], Mutators: m}, int64(bi*100 + mi), 0})
		}
	}
	rs := runCells(opt, cells)
	for bi, p := range profiles {
		tab := stats.NewTable(p.Name, "mutators", "total(ms)", "mutator(ms)", "gc(ms)", "gc-ratio", "norm-total")
		var base float64
		for mi, m := range mutatorSweep {
			r := rs[bi*len(mutatorSweep)+mi]
			if base == 0 {
				base = ms(r.TotalTime)
			}
			tab.AddRow(m, ms(r.TotalTime), ms(r.MutatorTime), ms(r.GCTime),
				r.GCRatio(), stats.Ratio(ms(r.TotalTime), base))
		}
		res.Tables = append(res.Tables, tab)
	}
	res.Notes = append(res.Notes,
		"shape check: mutator time drops with more mutators while GC time holds, so the GC share of total time grows (43.2% for lusearch@16 in the paper)")
	return res
}

// Fig3b reproduces Figure 3(b): kmeans with small and large datasets.
func Fig3b(opt Options) *Result {
	opt = opt.norm()
	res := &Result{ID: "fig3b", Title: "HiBench kmeans time breakdown vs mutator threads (vanilla JVM)"}
	sizes := []workload.DataSize{workload.SizeSmall, workload.SizeLarge}
	profiles := make([]workload.Profile, len(sizes))
	var cells []cell
	for si, size := range sizes {
		profiles[si] = opt.scaled(workload.Kmeans(size))
		for mi, m := range mutatorSweep {
			cells = append(cells, cell{jvm.Config{Profile: profiles[si], Mutators: m}, int64(1000 + si*100 + mi), 0})
		}
	}
	rs := runCells(opt, cells)
	for si, p := range profiles {
		tab := stats.NewTable(p.Name, "mutators", "total(ms)", "mutator(ms)", "gc(ms)", "gc-ratio")
		for mi, m := range mutatorSweep {
			r := rs[si*len(mutatorSweep)+mi]
			tab.AddRow(m, ms(r.TotalTime), ms(r.MutatorTime), ms(r.GCTime), r.GCRatio())
		}
		res.Tables = append(res.Tables, tab)
	}
	res.Notes = append(res.Notes, "the large dataset incurs a higher GC ratio than the small one at every mutator count")
	return res
}

// Fig3c reproduces Figure 3(c): GC scalability — 16 mutators, 1-16 GC
// threads; in the vanilla JVM GC time fails to fall (and can rise) as GC
// threads are added.
func Fig3c(opt Options) *Result {
	opt = opt.norm()
	res := &Result{ID: "fig3c", Title: "GC scalability: 16 mutators, varying GC threads (vanilla JVM)"}
	profiles := []workload.Profile{workload.Lusearch(), workload.Xalan()}
	var cells []cell
	for bi := range profiles {
		profiles[bi] = opt.scaled(profiles[bi])
		for gi, g := range mutatorSweep {
			cells = append(cells, cell{jvm.Config{Profile: profiles[bi], Mutators: 16, GCThreads: g}, int64(2000 + bi*100 + gi), 0})
		}
	}
	rs := runCells(opt, cells)
	for bi, p := range profiles {
		tab := stats.NewTable(p.Name, "gc-threads", "total(ms)", "mutator(ms)", "gc(ms)")
		for gi, g := range mutatorSweep {
			r := rs[bi*len(mutatorSweep)+gi]
			tab.AddRow(g, ms(r.TotalTime), ms(r.MutatorTime), ms(r.GCTime))
		}
		res.Tables = append(res.Tables, tab)
	}
	res.Notes = append(res.Notes, "shape check: with stacking, extra GC threads add steal/termination overhead without adding concurrency")
	return res
}

// Fig3d reproduces Figure 3(d): Cassandra read latency percentiles and the
// GC share of execution as client concurrency grows.
func Fig3d(opt Options) *Result {
	opt = opt.norm()
	res := &Result{ID: "fig3d", Title: "Cassandra read latency vs client threads (vanilla JVM)"}
	tab := stats.NewTable("cassandra read", "clients", "mean(ms)", "p95(ms)", "p99(ms)", "p99.9(ms)", "gc-ratio")
	clientSweep := []int{1, 4, 16, 64, 256}
	var cells []cell
	for ci, clients := range clientSweep {
		cells = append(cells, cell{jvm.Config{
			Profile: workload.Cassandra(), Mutators: 16,
			Clients: clients, Requests: opt.requests(20000),
		}, int64(3000 + ci), 0})
	}
	rs := runCells(opt, cells)
	for ci, clients := range clientSweep {
		r := rs[ci]
		tab.AddRow(clients, r.Latency.Mean(), r.Latency.Percentile(95),
			r.Latency.Percentile(99), r.Latency.Percentile(99.9), r.GCRatio())
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes, "latency climbs steeply with concurrency; STW pauses dominate the tail")
	return res
}

// distributionTables renders the Fig. 4/8 content for one run: the GC-task
// distribution across GC threads by type, and the thread-to-core get_task
// matrix, both for a representative (median-pause) minor GC.
func distributionTables(r *jvm.Result, label string) []*stats.Table {
	var reps []*pscavenge.GCReport
	for _, rep := range r.Reports {
		if rep.Kind == pscavenge.Minor {
			reps = append(reps, rep)
		}
	}
	if len(reps) == 0 {
		return nil
	}
	rep := reps[len(reps)/2]

	tasks := stats.NewTable(label+": GC task distribution (GC #"+fmt.Sprint(rep.Seq)+")",
		"gc-thread", "OldToYoungRoots", "ScavengeRoots", "ThreadRoots", "Steal")
	for w, row := range rep.TasksByThread {
		tasks.AddRow(w, row[pscavenge.TaskOldToYoungRoots], row[pscavenge.TaskScavengeRoots],
			row[pscavenge.TaskThreadRoots], row[pscavenge.TaskSteal])
	}

	cores := stats.NewTable(label+": get_task calls by core (GC #"+fmt.Sprint(rep.Seq)+")",
		"gc-thread", "core(s) used", "get_task calls")
	for w, row := range rep.GetTaskByCore {
		var used []string
		total := 0
		for c, n := range row {
			if n > 0 {
				used = append(used, fmt.Sprintf("cpu%d:%d", c, n))
				total += n
			}
		}
		if len(used) == 0 {
			used = []string{"-"}
		}
		cores.AddRow(w, joinMax(used, 6), total)
	}

	summary := stats.NewTable(label+": balance summary (all minor GCs)",
		"metric", "mean", "min", "max")
	addSpread := func(name string, f func(*pscavenge.GCReport) int) {
		sum, min, max := 0, 1<<30, 0
		for _, rp := range reps {
			v := f(rp)
			sum += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		summary.AddRow(name, float64(sum)/float64(len(reps)), min, max)
	}
	addSpread("cores running GC threads", (*pscavenge.GCReport).CoresUsed)
	addSpread("threads with root tasks", (*pscavenge.GCReport).RootTaskSpread)
	return []*stats.Table{tasks, cores, summary}
}

func joinMax(ss []string, n int) string {
	if len(ss) > n {
		ss = append(ss[:n:n], "...")
	}
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += " "
		}
		out += s
	}
	return out
}

// Fig4 reproduces Figure 4: task and thread imbalance during a vanilla
// lusearch minor GC (16 mutators, 15 GC threads).
func Fig4(opt Options) *Result {
	opt = opt.norm()
	p := opt.scaled(workload.Lusearch())
	r := run(opt, jvm.Config{Profile: p, Mutators: 16}, 4000, 0)
	res := &Result{ID: "fig4", Title: "Vanilla lusearch: task and thread load imbalance"}
	res.Tables = distributionTables(r, "vanilla")
	res.Notes = append(res.Notes,
		"shape check: one or two GC threads execute all root tasks; most GC threads only run their StealTask; GC activity concentrates on a few cores")
	return res
}

// Fig6 reproduces Figure 6: the decomposition of minor GC time into
// initialization, steal (stealing), steal (termination), all other tasks,
// and final synchronization, as fractions of aggregate minor GC time.
func Fig6(opt Options) *Result {
	opt = opt.norm()
	res := &Result{ID: "fig6", Title: "Decomposition of minor GC time (vanilla JVM)"}
	tab := stats.NewTable("minor GC phase shares",
		"benchmark", "init", "steal(steal)", "steal(term)", "other-tasks", "final-sync")
	benches := workload.Table1Benchmarks()
	var cells []cell
	for bi := range benches {
		benches[bi] = opt.scaled(benches[bi])
		cells = append(cells, cell{jvm.Config{Profile: benches[bi], Mutators: 16}, int64(6000 + bi), 0})
	}
	rs := runCells(opt, cells)
	for bi, p := range benches {
		r := rs[bi]
		t := pscavenge.Aggregate(r.Reports, pscavenge.Minor)
		total := float64(t.InitTime + t.StealWorkTime + t.TerminationTime + t.RootTaskTime + t.FinalSyncTime)
		if total == 0 {
			total = 1
		}
		tab.AddRow(p.Name,
			float64(t.InitTime)/total, float64(t.StealWorkTime)/total,
			float64(t.TerminationTime)/total, float64(t.RootTaskTime)/total,
			float64(t.FinalSyncTime)/total)
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes,
		"shares are aggregated across GC threads (as in the paper, they do not reflect the GC timeline); StealTask time dominates")
	return res
}

// Table1 reproduces Table 1: total and failed steal attempts under the
// default steal_best_of_2 policy.
func Table1(opt Options) *Result {
	opt = opt.norm()
	res := &Result{ID: "tab1", Title: "Steal attempts in steal_best_of_2 (vanilla JVM)"}
	tab := stats.NewTable("steal attempts", "benchmark", "total", "failure", "failure-rate")
	benches := workload.Table1Benchmarks()
	var cells []cell
	for bi := range benches {
		benches[bi] = opt.scaled(benches[bi])
		cells = append(cells, cell{jvm.Config{Profile: benches[bi], Mutators: 16}, int64(7000 + bi), 0})
	}
	rs := runCells(opt, cells)
	for bi, p := range benches {
		r := rs[bi]
		tab.AddRow(p.Name, r.Steal.TotalAttempts(), r.Steal.TotalFailures(), r.Steal.FailureRate())
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes, "paper failure rates range from 28.9% (xml.validation) to 93.6% (crypto.signverify); balanced-live-set benchmarks fail least")
	return res
}

// Fig5 reproduces the dynamics of Figure 5 / the §3.2 root-cause trace: the
// GCTaskManager lock acquisition log during a stacked minor GC shows the
// previous owner re-acquiring through the fast path over and over while the
// queued waiters starve, and at most two threads ever actively competing.
func Fig5(opt Options) *Result {
	opt = opt.norm()
	p := opt.scaled(workload.Lusearch())
	cfg := jvm.Config{Profile: p, Mutators: 16, RecordLockLog: true}
	r := run(opt, cfg, 5000, 0)
	res := &Result{ID: "fig5", Title: "GCTaskManager lock acquisitions during a stacked GC (§3.2)"}

	// Pick a representative mid-run minor GC window.
	var rep *pscavenge.GCReport
	for _, gc := range r.Reports {
		if gc.Kind == pscavenge.Minor {
			rep = gc
		}
		if rep != nil && gc.Seq > len(r.Reports)/2 {
			break
		}
	}
	if rep == nil {
		res.Notes = append(res.Notes, "no minor GC recorded")
		return res
	}
	tab := stats.NewTable(fmt.Sprintf("acquisition log, GC #%d (first 24 events)", rep.Seq),
		"t-into-GC", "thread", "path", "owner-reacquire", "queued-waiters")
	shown, reacq, total := 0, 0, 0
	for _, ev := range r.LockLog {
		if ev.At < rep.Start || ev.At > rep.End {
			continue
		}
		total++
		if ev.Reacquire {
			reacq++
		}
		if shown < 24 {
			path := "slow"
			if ev.Fast {
				path = "fast"
			}
			tab.AddRow((ev.At - rep.Start).String(), ev.Thread, path, ev.Reacquire, ev.Queued)
			shown++
		}
	}
	res.Tables = append(res.Tables, tab)
	// Distinct GC threads acquiring during the root-task phase (the first
	// half of the pause): the paper's "at most two GC threads actively
	// competing". The later steal phase necessarily involves every thread
	// (each must fetch its StealTask through the wake chain).
	half := rep.Start + rep.Pause()/2
	distinct := map[string]bool{}
	for _, ev := range r.LockLog {
		if ev.At >= rep.Start && ev.At <= half && strings.HasPrefix(ev.Thread, "GCTaskThread") {
			distinct[ev.Thread] = true
		}
	}
	sum := stats.NewTable("summary",
		"acquisitions-in-GC", "distinct-acquirers-root-phase", "owner-reacquire-fraction", "max-simultaneous-attempts")
	frac := 0.0
	if total > 0 {
		frac = float64(reacq) / float64(total)
	}
	sum.AddRow(total, len(distinct), frac, r.Monitor.MaxConcurrentSeekers)
	res.Tables = append(res.Tables, sum)
	res.Notes = append(res.Notes,
		"§3.2: 'at any point in time, there were at most two GC threads actively competing for the mutex lock and the previous owner thread (almost) always won'")
	return res
}
