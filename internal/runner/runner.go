// Package runner provides the bounded worker pool that fans independent
// simulation cells out across CPUs. The evaluation suite replays every
// figure as a set of deterministic simulations; each cell derives its own
// seed, so cells may execute in any order and on any goroutine without
// changing the assembled output. The pool bounds in-flight cells (by
// default to GOMAXPROCS) so a large fan-out never oversubscribes the
// machine.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Pool is a bounded worker pool. The zero value is not usable; construct
// with New. A Pool keeps no goroutines alive between calls — workers are
// spawned per ForEach/Map call and bounded by the pool's size — so it is
// cheap to create and needs no shutdown. Stats accumulate across calls,
// letting a caller that shares one Pool report aggregate speedup.
type Pool struct {
	workers int
	tasks   atomic.Int64
	busy    atomic.Int64 // nanoseconds spent inside task functions
}

// New creates a pool running at most jobs tasks concurrently.
// jobs <= 0 means GOMAXPROCS; jobs == 1 executes everything serially on
// the calling goroutine.
func New(jobs int) *Pool {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: jobs}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Stats returns the number of tasks executed so far and the aggregate time
// spent inside them. busy divided by wall-clock time is the achieved
// speedup.
func (p *Pool) Stats() (tasks int64, busy time.Duration) {
	return p.tasks.Load(), time.Duration(p.busy.Load())
}

// ForEach invokes fn(i) for every i in [0,n), distributing indices across
// the pool's workers, and returns once all invocations have finished.
// Indices are handed out in order but may complete out of order. If any
// fn panics, ForEach stops handing out new indices, waits for in-flight
// tasks, and re-panics the first panic value on the caller's goroutine.
func (p *Pool) ForEach(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	timed := func(i int) {
		t0 := time.Now()
		defer func() {
			p.busy.Add(int64(time.Since(t0)))
			p.tasks.Add(1)
		}()
		fn(i)
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			timed(i)
		}
		return
	}
	var (
		next     atomic.Int64
		aborted  atomic.Bool
		panicMu  sync.Mutex
		panicked any
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
					aborted.Store(true)
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || aborted.Load() {
					return
				}
				timed(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Map runs fn over [0,n) on p's workers and returns the results in index
// order, regardless of execution order.
func Map[T any](p *Pool, n int, fn func(int) T) []T {
	out := make([]T, n)
	p.ForEach(n, func(i int) { out[i] = fn(i) })
	return out
}
