// Package runner provides the bounded worker pool that fans independent
// simulation cells out across CPUs. The evaluation suite replays every
// figure as a set of deterministic simulations; each cell derives its own
// seed, so cells may execute in any order and on any goroutine without
// changing the assembled output. The pool bounds in-flight cells (by
// default to GOMAXPROCS) so a large fan-out never oversubscribes the
// machine.
//
// # Per-worker scratch
//
// A Pool also carries a bounded free-list of opaque scratch values
// (GetScratch/PutScratch) so tasks can recycle expensive per-cell state —
// event arenas, heap object tables, runqueue backings — across the cells a
// sweep runs. The contract: a task takes one value (or starts fresh when
// the list is empty), uses it exclusively while it runs, and returns it
// only when done with it; values are never shared between in-flight tasks.
// The list is capped at the pool's worker count, so steady state holds one
// warm scratch per worker and the pool never hoards more. Scratch values
// must make reuse observationally invisible (cells stay deterministic and
// order-independent); see jvm.Scratch for the canonical implementation.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Pool is a bounded worker pool. The zero value is not usable; construct
// with New. A Pool keeps no goroutines alive between calls — workers are
// spawned per ForEach/Map call and bounded by the pool's size — so it is
// cheap to create and needs no shutdown. Stats accumulate across calls,
// letting a caller that shares one Pool report aggregate speedup.
type Pool struct {
	workers int
	tasks   atomic.Int64
	busy    atomic.Int64 // nanoseconds spent inside task functions

	mu      sync.Mutex
	scratch []any // free-list of per-worker scratch values, capped at workers
}

// New creates a pool running at most jobs tasks concurrently.
// jobs <= 0 means GOMAXPROCS; jobs == 1 executes everything serially on
// the calling goroutine.
func New(jobs int) *Pool {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: jobs}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Stats returns the number of tasks executed so far and the aggregate time
// spent inside them. busy divided by wall-clock time is the achieved
// speedup. The counters accumulate over the pool's whole lifetime; for a
// single batch on a shared pool, use Snapshot and StatsSince.
func (p *Pool) Stats() (tasks int64, busy time.Duration) {
	return p.tasks.Load(), time.Duration(p.busy.Load())
}

// Snapshot is a point-in-time copy of a pool's cumulative counters, taken
// with Pool.Snapshot and differenced with StatsSince.
type Snapshot struct {
	Tasks int64
	Busy  time.Duration
}

// Snapshot captures the pool's cumulative counters so a later StatsSince
// can report just the work in between — e.g. one experiment's cells on a
// pool shared by a whole evaluation.
func (p *Pool) Snapshot() Snapshot {
	tasks, busy := p.Stats()
	return Snapshot{Tasks: tasks, Busy: busy}
}

// StatsSince returns the tasks executed and busy time accrued since the
// snapshot was taken.
func (p *Pool) StatsSince(s Snapshot) (tasks int64, busy time.Duration) {
	tasks, busy = p.Stats()
	return tasks - s.Tasks, busy - s.Busy
}

// GetScratch pops a pooled scratch value, or returns nil when none is
// available (the caller then builds a fresh one). The value is owned by
// the caller until handed back with PutScratch.
func (p *Pool) GetScratch() any {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.scratch); n > 0 {
		v := p.scratch[n-1]
		p.scratch[n-1] = nil
		p.scratch = p.scratch[:n-1]
		return v
	}
	return nil
}

// PutScratch returns a scratch value to the pool's free-list for a later
// GetScratch. Values beyond one per worker are dropped (left to the Go
// GC) so the pool never retains more warm state than its concurrency can
// use. nil values are ignored.
func (p *Pool) PutScratch(v any) {
	if v == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.scratch) < p.workers {
		p.scratch = append(p.scratch, v)
	}
}

// ForEach invokes fn(i) for every i in [0,n), distributing indices across
// the pool's workers, and returns once all invocations have finished.
// Indices are handed out in order but may complete out of order. If any
// fn panics, ForEach stops handing out new indices, waits for in-flight
// tasks, and re-panics the first panic value on the caller's goroutine.
//
// Scratch under panic: sibling in-flight tasks run to completion, so
// scratch they hold is returned by their own PutScratch calls — the
// free-list never loses the survivors' entries. The panicking task's own
// scratch is returned only if the task defers its PutScratch; otherwise
// that one value (and only that one — the leak bound is one scratch per
// panicking task) falls out of the free-list to the Go GC. Deferring the
// return is always safe: the scratch contract requires reuse to be
// observationally invisible, so a value abandoned mid-run must
// reinitialize on its next acquisition (jvm.Scratch does).
func (p *Pool) ForEach(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	timed := func(i int) {
		t0 := time.Now()
		defer func() {
			p.busy.Add(int64(time.Since(t0)))
			p.tasks.Add(1)
		}()
		fn(i)
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			timed(i)
		}
		return
	}
	var (
		next     atomic.Int64
		aborted  atomic.Bool
		panicMu  sync.Mutex
		panicked any
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
					aborted.Store(true)
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || aborted.Load() {
					return
				}
				timed(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Map runs fn over [0,n) on p's workers and returns the results in index
// order, regardless of execution order.
func Map[T any](p *Pool, n int, fn func(int) T) []T {
	out := make([]T, n)
	p.ForEach(n, func(i int) { out[i] = fn(i) })
	return out
}
