package runner

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("New(0).Workers() = %d, want %d", got, want)
	}
	if got := New(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(-3).Workers() = %d, want GOMAXPROCS", got)
	}
	if got := New(7).Workers(); got != 7 {
		t.Errorf("New(7).Workers() = %d, want 7", got)
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, jobs := range []int{1, 2, 4, 16} {
		p := New(jobs)
		const n = 200
		var counts [n]atomic.Int32
		p.ForEach(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("jobs=%d: index %d ran %d times", jobs, i, c)
			}
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	p := New(4)
	ran := false
	p.ForEach(0, func(int) { ran = true })
	p.ForEach(-5, func(int) { ran = true })
	if ran {
		t.Error("ForEach ran tasks for n <= 0")
	}
}

func TestMapOrdersResults(t *testing.T) {
	p := New(8)
	got := Map(p, 100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapSerialEqualsParallel(t *testing.T) {
	f := func(i int) int { return 31*i + 7 }
	serial := Map(New(1), 64, f)
	parallel := Map(New(8), 64, f)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("index %d: serial %d != parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		p := New(jobs)
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Errorf("jobs=%d: recovered %v, want boom", jobs, r)
				}
			}()
			p.ForEach(50, func(i int) {
				if i == 13 {
					panic("boom")
				}
			})
			t.Errorf("jobs=%d: ForEach returned instead of panicking", jobs)
		}()
	}
}

func TestStatsAccumulate(t *testing.T) {
	p := New(4)
	p.ForEach(10, func(int) {})
	tasks, _ := p.Stats()
	if tasks != 10 {
		t.Errorf("Stats tasks = %d, want 10", tasks)
	}
	p.ForEach(5, func(int) {})
	if tasks, _ = p.Stats(); tasks != 15 {
		t.Errorf("Stats tasks after second call = %d, want 15", tasks)
	}
}

// TestStatsSinceReportsDeltas is the regression test for per-experiment
// speedup reporting: cumulative Stats on a shared pool must not leak one
// batch's work into the next batch's numbers.
func TestStatsSinceReportsDeltas(t *testing.T) {
	p := New(4)
	p.ForEach(10, func(int) { time.Sleep(time.Millisecond) })

	snap := p.Snapshot()
	p.ForEach(7, func(int) { time.Sleep(time.Millisecond) })
	tasks, busy := p.StatsSince(snap)
	if tasks != 7 {
		t.Errorf("StatsSince tasks = %d, want 7 (cumulative leak)", tasks)
	}
	if busy < 7*time.Millisecond {
		t.Errorf("StatsSince busy = %v, want >= 7ms", busy)
	}
	// The delta must be a strict subset of the lifetime counters.
	totalTasks, totalBusy := p.Stats()
	if totalTasks != 17 || busy >= totalBusy {
		t.Errorf("StatsSince busy %v not below lifetime busy %v (tasks %d)", busy, totalBusy, totalTasks)
	}
}

// TestScratchFreeList exercises the Get/Put contract: LIFO reuse, nil
// rejection, and the one-per-worker cap.
func TestScratchFreeList(t *testing.T) {
	p := New(2)
	if v := p.GetScratch(); v != nil {
		t.Fatalf("empty pool returned scratch %v", v)
	}
	a, b, c := new(int), new(int), new(int)
	p.PutScratch(a)
	p.PutScratch(b)
	p.PutScratch(c) // beyond the worker cap: dropped
	p.PutScratch(nil)
	got := []any{p.GetScratch(), p.GetScratch()}
	if got[0] != b || got[1] != a {
		t.Errorf("expected LIFO [b a], got %v", got)
	}
	if v := p.GetScratch(); v != nil {
		t.Errorf("free-list should be drained, got %v", v)
	}
}

// TestScratchConcurrentTasksNeverShare asserts exclusivity: values taken
// inside concurrently running tasks are never handed to two tasks at once.
func TestScratchConcurrentTasksNeverShare(t *testing.T) {
	p := New(8)
	p.ForEach(200, func(i int) {
		v, _ := p.GetScratch().(*atomic.Int32)
		if v == nil {
			v = new(atomic.Int32)
		}
		if !v.CompareAndSwap(0, 1) {
			t.Error("scratch value handed to two tasks at once")
		}
		time.Sleep(100 * time.Microsecond)
		v.Store(0)
		p.PutScratch(v)
	})
}

// TestForEachPanicScratchLeakBound pins the scratch-under-panic contract:
// sibling in-flight tasks run to completion and return their scratch, so a
// panicking task leaks at most its own value — and leaks nothing at all
// when it defers the return, which the contract makes always-safe.
func TestForEachPanicScratchLeakBound(t *testing.T) {
	pool := New(4)
	refill := func() {
		for i := 0; i < 4; i++ {
			pool.PutScratch(fmt.Sprintf("scratch-%d", i))
		}
	}
	drain := func() int {
		n := 0
		for pool.GetScratch() != nil {
			n++
		}
		return n
	}

	// Undeferred return: the panicking task's scratch (and only that one)
	// falls out of the free-list.
	refill()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("ForEach did not propagate the panic")
			}
		}()
		pool.ForEach(32, func(i int) {
			v := pool.GetScratch()
			if v == nil {
				t.Error("free-list empty: more concurrent holders than workers")
			}
			if i == 0 {
				panic("injected")
			}
			pool.PutScratch(v)
		})
	}()
	if got := drain(); got != 3 {
		t.Fatalf("free-list holds %d entries after undeferred panic, want 3 (leak bound is one per panicking task)", got)
	}

	// Deferred return: nothing is stranded, not even by the panicking task.
	refill()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("ForEach did not propagate the panic")
			}
		}()
		pool.ForEach(32, func(i int) {
			v := pool.GetScratch()
			defer pool.PutScratch(v)
			if i == 0 {
				panic("injected")
			}
		})
	}()
	if got := drain(); got != 4 {
		t.Fatalf("free-list holds %d entries after deferred-return panic, want all 4", got)
	}
}
