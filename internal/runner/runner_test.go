package runner

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("New(0).Workers() = %d, want %d", got, want)
	}
	if got := New(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(-3).Workers() = %d, want GOMAXPROCS", got)
	}
	if got := New(7).Workers(); got != 7 {
		t.Errorf("New(7).Workers() = %d, want 7", got)
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, jobs := range []int{1, 2, 4, 16} {
		p := New(jobs)
		const n = 200
		var counts [n]atomic.Int32
		p.ForEach(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("jobs=%d: index %d ran %d times", jobs, i, c)
			}
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	p := New(4)
	ran := false
	p.ForEach(0, func(int) { ran = true })
	p.ForEach(-5, func(int) { ran = true })
	if ran {
		t.Error("ForEach ran tasks for n <= 0")
	}
}

func TestMapOrdersResults(t *testing.T) {
	p := New(8)
	got := Map(p, 100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapSerialEqualsParallel(t *testing.T) {
	f := func(i int) int { return 31*i + 7 }
	serial := Map(New(1), 64, f)
	parallel := Map(New(8), 64, f)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("index %d: serial %d != parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		p := New(jobs)
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Errorf("jobs=%d: recovered %v, want boom", jobs, r)
				}
			}()
			p.ForEach(50, func(i int) {
				if i == 13 {
					panic("boom")
				}
			})
			t.Errorf("jobs=%d: ForEach returned instead of panicking", jobs)
		}()
	}
}

func TestStatsAccumulate(t *testing.T) {
	p := New(4)
	p.ForEach(10, func(int) {})
	tasks, _ := p.Stats()
	if tasks != 10 {
		t.Errorf("Stats tasks = %d, want 10", tasks)
	}
	p.ForEach(5, func(int) {})
	if tasks, _ = p.Stats(); tasks != 15 {
		t.Errorf("Stats tasks after second call = %d, want 15", tasks)
	}
}
