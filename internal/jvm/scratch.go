package jvm

// This file implements per-cell scratch pooling. A figure's sweep runs 60+
// independent cells, and each cell used to rebuild the simulator's event
// arena, the scheduler's thread table and runqueues, the JVM heap's object
// table, and every mutator's working buffers from nothing — the dominant
// steady-state allocation cost of an experiment run. A Scratch carries all
// of those backing arrays from a finished cell to the next one on the same
// pool worker (runner.Pool's GetScratch/PutScratch free-list).

import (
	"repro/internal/cfs"
	"repro/internal/heap"
	"repro/internal/objgraph"
	"repro/internal/simkit"
)

// Scratch aggregates one worker's pooled backing arrays across every layer
// a cell rebuilds: the simulation kernel, the scheduler, and (per JVM
// instance on the machine) the heap and mutator graphs. One Scratch serves
// one in-flight machine at a time; Machine.Close harvests the storage back
// automatically. The zero value is ready to use.
//
// Reuse is observationally invisible: every sub-scratch only changes slice
// capacities, never values (stale records are fully reinitialized on
// resurrection and pooled pointer slots are cleared), so a cell's output
// is byte-identical whether its machine started cold or from scratch
// storage. The golden-fixture suite pins this down.
type Scratch struct {
	sim simkit.Scratch
	k   cfs.Scratch
	per []instanceScratch // indexed by JVM instance on the machine
}

// instanceScratch is the per-JVM-instance slice of a Scratch: heap object
// table plus mutator buffers, keyed by the instance's position on the
// machine so multi-JVM cells (§5.7) pool each instance separately.
type instanceScratch struct {
	heap  heap.Scratch
	graph objgraph.Scratch
}

// inst returns the instance-i sub-scratch, growing the table as needed.
func (sc *Scratch) inst(i int) *instanceScratch {
	for len(sc.per) <= i {
		sc.per = append(sc.per, instanceScratch{})
	}
	return &sc.per[i]
}
