// Package jvm assembles the full system: a simulated multicore machine
// running one or more JVMs, each with a generational heap, a Parallel
// Scavenge collector, mutator threads driven by a workload profile, a VM
// thread coordinating stop-the-world safepoints, and (optionally) the
// paper's optimizations — dynamic GC thread affinity and adaptive
// semi-random work stealing.
package jvm

import (
	"fmt"

	"repro/internal/cfs"
	"repro/internal/evtrace"
	"repro/internal/ostopo"
	"repro/internal/simkit"
)

// Machine is one simulated host: a simulator plus a kernel, able to run
// several JVMs and interfering busy-loop workloads side by side (§5.7).
type Machine struct {
	Sim *simkit.Sim
	K   *cfs.Kernel

	// Metrics, when set before AddJVM, is handed to every JVM's collector
	// as the unified metrics registry.
	Metrics *evtrace.Registry

	jvms    []*JVM
	busy    []*cfs.Thread
	scratch *Scratch // pooled backing arrays; harvested back by Close
}

// SetEvTracer installs the structured event-bus tracer on both the
// simulation kernel and the scheduler. Call before AddBusyLoops/AddJVM so
// spawned threads register their names with the trace.
func (m *Machine) SetEvTracer(t *evtrace.Tracer) {
	m.Sim.SetTracer(t)
	m.K.SetEvTracer(t)
}

// NewMachine creates a machine. params may be nil for defaults.
func NewMachine(seed int64, topo *ostopo.Topology, params *cfs.Params) *Machine {
	return NewMachineTraced(seed, topo, params, nil)
}

// NewMachineTraced creates a machine with the event tracer installed
// before the kernel is constructed, so even the kernel's own setup work
// (arming the periodic balance timers) lands on the bus. Stream-complete
// consumers — internal/check's simkit conservation law counts every
// schedule against later fires and cancels — need this; installing the
// tracer after construction (SetEvTracer) would silently miss those
// events. tr may be nil (tracing disabled).
func NewMachineTraced(seed int64, topo *ostopo.Topology, params *cfs.Params, tr *evtrace.Tracer) *Machine {
	return NewMachineScratch(seed, topo, params, tr, nil)
}

// NewMachineScratch is NewMachineTraced building the simulator and kernel
// from pooled scratch storage (nil runs cold). The machine owns sc until
// Close, which harvests the backing arrays back into it; see Scratch for
// the reuse contract.
func NewMachineScratch(seed int64, topo *ostopo.Topology, params *cfs.Params, tr *evtrace.Tracer, sc *Scratch) *Machine {
	p := cfs.DefaultParams()
	if params != nil {
		p = *params
	}
	var sim *simkit.Sim
	var k *cfs.Kernel
	if sc != nil {
		sim = simkit.NewWith(seed, &sc.sim)
		sim.SetTracer(tr)
		k = cfs.NewKernelWith(sim, topo, p, &sc.k)
	} else {
		sim = simkit.New(seed)
		sim.SetTracer(tr)
		k = cfs.NewKernel(sim, topo, p)
	}
	m := &Machine{Sim: sim, K: k, scratch: sc}
	m.K.SetEvTracer(tr)
	return m
}

// AddBusyLoops spawns n CPU-bound interference threads pinned to cores
// 0..n-1 (the paper's "ten busy loops on ten cores").
func (m *Machine) AddBusyLoops(n int) {
	for i := 0; i < n; i++ {
		core := ostopo.CoreID(i % m.K.NumCPUs())
		th := m.K.Spawn(fmt.Sprintf("busyloop#%d", i), core, func(e *cfs.Env) {
			e.SetAffinity(core)
			// An endless compute plan: same 1 ms slices and preemption
			// points as `for { e.Compute(1ms) }`, but the kernel services
			// the slices without a coroutine switch per millisecond.
			e.ComputeForever(1 * simkit.Millisecond)
		})
		m.busy = append(m.busy, th)
	}
}

// Run steps the simulation until every JVM has finished (or maxTime is
// reached, which returns an error).
func (m *Machine) Run(maxTime simkit.Time) error {
	for m.Sim.Now() < maxTime {
		done := true
		for _, j := range m.jvms {
			if !j.done {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		if !m.Sim.Step() {
			return fmt.Errorf("jvm: simulation deadlocked at %v", m.Sim.Now())
		}
	}
	return fmt.Errorf("jvm: simulation exceeded %v", maxTime)
}

// Close releases kernel timers and coroutine goroutines. If the machine
// was built from a Scratch, its backing arrays are harvested back into the
// scratch for the next cell.
func (m *Machine) Close() {
	m.K.Shutdown()
	m.Sim.Close()
	if sc := m.scratch; sc != nil {
		m.scratch = nil
		for i, j := range m.jvms {
			is := sc.inst(i)
			for _, ms := range j.muts {
				ms.graph.Reclaim(&is.graph)
			}
			j.H.Reclaim(&is.heap)
		}
		m.K.Reclaim(&sc.k)
		m.Sim.Reclaim(&sc.sim)
	}
}
