package jvm

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/affinity"
	"repro/internal/cfs"
	"repro/internal/heap"
	"repro/internal/jmutex"
	"repro/internal/objgraph"
	"repro/internal/ostopo"
	"repro/internal/pscavenge"
	"repro/internal/simkit"
	"repro/internal/stats"
	"repro/internal/taskq"
	"repro/internal/workload"
)

// ErrOutOfMemory is reported when a major GC cannot free enough old-
// generation space (pagerank/huge reproduces it, §5.5).
var ErrOutOfMemory = errors.New("jvm: java.lang.OutOfMemoryError: old generation exhausted")

// Config describes one JVM instance.
type Config struct {
	Profile  workload.Profile
	Mutators int
	// GCThreads overrides HotSpot's heuristic (0 = heuristic).
	GCThreads int
	// HeapMB overrides the profile's Table-2 heap size (0 = profile).
	HeapMB int

	// The paper's optimizations (all off = vanilla HotSpot).
	Affinity       affinity.Mode
	TaskAffinity   bool
	Steal          taskq.PolicyKind
	FastTerminator bool
	MutexPolicy    jmutex.Policy
	AdaptiveSizing bool
	// VerifyHeap enables -XX:+VerifyAfterGC-style invariant checking.
	VerifyHeap bool
	// RecordLockLog captures the GCTaskManager monitor's acquisition log
	// into Result.LockLog (§3.2's root-cause trace).
	RecordLockLog bool
	// LoopGCWorkers runs GC worker bodies as the legacy Compute-per-step
	// coroutine loops instead of kernel-serviced plans. The two paths are
	// byte-identical (see pscavenge's loop-vs-plan identity test); this
	// switch exists as the comparison oracle and costs a coroutine round
	// trip per worker step.
	LoopGCWorkers bool
	// NUMARemoteFactor, when > 1, enables the NUMA memory-locality cost
	// model: objects are homed on the allocating thread's node
	// (first-touch) and remote accesses during GC cost this factor more.
	NUMARemoteFactor float64

	// SpawnCore is where the JVM process starts; its GC threads are
	// created there and stay stacked while blocked (§3.2).
	SpawnCore ostopo.CoreID

	// Server mode (Class == Server): Clients closed-loop clients issuing
	// Requests requests in total.
	Clients  int
	Requests int

	// Seed offsets this JVM's RNG streams on a shared machine.
	Seed int64
}

// WithOptimizations returns the configuration with the paper's combined
// optimizations enabled ("Together" in Fig. 10): dynamic GC thread
// affinity + task affinity, semi-random stealing + fast termination.
func (c Config) WithOptimizations() Config {
	c.Affinity = affinity.ModeDynamic
	c.TaskAffinity = true
	c.Steal = taskq.KindSemiRandom
	c.FastTerminator = true
	return c
}

// WithAffinityOnly enables only the GC-thread/task affinity optimization.
func (c Config) WithAffinityOnly() Config {
	c.Affinity = affinity.ModeDynamic
	c.TaskAffinity = true
	return c
}

// WithStealOnly enables only the stealing optimization.
func (c Config) WithStealOnly() Config {
	c.Steal = taskq.KindSemiRandom
	c.FastTerminator = true
	return c
}

// Result summarizes one JVM run.
type Result struct {
	Benchmark string
	Mutators  int
	GCThreads int

	TotalTime   simkit.Time
	GCTime      simkit.Time
	MutatorTime simkit.Time // TotalTime - GCTime (wall)

	MinorGCs    int
	MajorGCs    int
	MinorGCTime simkit.Time
	MajorGCTime simkit.Time

	Reports []*pscavenge.GCReport
	Steal   *taskq.Stats
	Monitor jmutex.Stats
	LockLog []jmutex.AcqEvent
	Kernel  cfs.KernelStats
	Heap    heap.Stats
	Rebinds int

	// Server metrics.
	Latency       *stats.Histogram // milliseconds
	ThroughputOPS float64

	// Trace is the scheduling timeline (when RunSpec.Trace was set) and
	// NumCPUs the machine size, for rendering with internal/schedtrace.
	Trace   *cfs.Trace
	NumCPUs int

	// MutatorDeepWakes counts mutator wake-ups that paid a deep C-state
	// exit. §5.4: optimized GC keeps cores active during the pause, so
	// resuming mutators start faster — this counter shows it.
	MutatorDeepWakes int

	// Event-kernel throughput counters: total events fired and the subset
	// batch-dispatched inline (simkit.Sim.Inlined) without an event record.
	EventsFired   uint64
	EventsInlined uint64

	ItemsDone int64
	Err       error
}

// GCRatio returns GC time / total time.
func (r *Result) GCRatio() float64 {
	if r.TotalTime == 0 {
		return 0
	}
	return float64(r.GCTime) / float64(r.TotalTime)
}

const (
	causeNone = iota
	causeMinor
	causeMajor
)

// JVM is one running JVM instance on a Machine.
type JVM struct {
	M   *Machine
	Cfg Config
	H   *heap.Heap
	Eng *pscavenge.Engine
	Bal *affinity.Balancer

	appMon *jmutex.Monitor
	rng    *rand.Rand

	muts []*mutatorState
	vm   *cfs.Thread

	// Safepoint protocol state.
	safepoint      bool
	gcCause        int
	activeMutators int

	// Big-data RDD cache.
	cache []heap.ObjID

	// Server state.
	pending          []*request
	issued, answered int

	// Results.
	startTime, endTime   simkit.Time
	gcTime               simkit.Time
	minorTime, majorTime simkit.Time
	minorGCs, majorGCs   int
	itemsDone            int64
	latency              *stats.Histogram
	oomErr               error
	done                 bool
}

type mutatorState struct {
	th          *cfs.Thread
	graph       *objgraph.Mutator
	atSafepoint bool
	idle        bool
	finished    bool

	// Burst-plan state. The mutator's steady-state item loop (compute,
	// lock/serial/unlock, allocation burst) is expressed as a compute plan
	// (planStep) the kernel services driver-side, so back-to-back slices
	// cost no coroutine switches. Anything that can block — safepoints,
	// contended locks, GC requests, phase transitions — is handed back to
	// the body through action.
	j          *JVM
	plan       cfs.PlanFn
	pc         planPC
	batch      bool // multi-item (batch) vs single-item (server) plan
	items      int  // batch: item target
	n          int  // batch: items completed
	phaseEvery int
	clusters   int // clusters per item
	cluster    int // clusters completed in the current item
	serial     simkit.Time
	rest       simkit.Time
	action     planAction
}

// planPC is the mutator plan's resume point.
type planPC uint8

const (
	pcIdle planPC = iota
	pcItemStart
	pcPhaseCheck
	pcItemCompute
	pcLockTry
	pcLockAcquired
	pcUnlockBegin
	pcUnlockFinish
	pcAllocStart
	pcClusters
	pcClusterAttempt
	pcItemEnd
)

// planAction is what the body must do when the plan hands control back.
type planAction uint8

const (
	actionNone planAction = iota
	actionFinished
	actionSafepoint
	actionPhase
	actionLockContended
	actionGC
	actionItemDone
)

// planStep is the mutator's compute plan (cfs.PlanFn). Each call either
// returns the next CPU slice or stops the plan with an action for the body.
// The control flow is the state-machine transcription of the old
// batchMutatorBody/runItem loops: every heap access, RNG draw and monitor
// operation happens at the same virtual instant and in the same order as
// the body-resident original, so simulation results are byte-identical.
func (ms *mutatorState) planStep() (simkit.Time, bool) {
	j := ms.j
	p := &j.Cfg.Profile
	for {
		switch ms.pc {
		case pcItemStart: // batch only: per-item loop header
			if ms.n >= ms.items || j.oomErr != nil {
				ms.pc = pcIdle
				ms.action = actionFinished
				return 0, false
			}
			ms.pc = pcPhaseCheck
			if j.safepoint {
				ms.action = actionSafepoint
				return 0, false
			}
		case pcPhaseCheck:
			ms.pc = pcItemCompute
			if ms.phaseEvery > 0 && ms.n%ms.phaseEvery == 0 {
				ms.action = actionPhase
				return 0, false
			}
		case pcItemCompute:
			// ±25% jitter decorrelates mutators.
			compute := p.ItemCompute
			if p.Class == workload.Server {
				compute = p.ServiceCompute
			}
			compute = compute*3/4 + simkit.Time(j.M.K.Sim.Rand().Int63n(int64(compute)/2+1))
			if p.SerialFrac > 0 {
				ms.serial = simkit.Time(float64(compute) * p.SerialFrac)
				ms.rest = compute - ms.serial
				ms.pc = pcLockTry
				return j.appMon.LockBegin(ms.th), true
			}
			ms.pc = pcAllocStart
			return compute, true
		case pcLockTry:
			if j.appMon.TryLockFast(ms.th) {
				ms.pc = pcUnlockBegin
				return ms.serial, true
			}
			ms.pc = pcLockAcquired
			ms.action = actionLockContended
			return 0, false
		case pcLockAcquired:
			ms.pc = pcUnlockBegin
			return ms.serial, true
		case pcUnlockBegin:
			ms.pc = pcUnlockFinish
			return j.appMon.UnlockBegin(ms.th), true
		case pcUnlockFinish:
			j.appMon.UnlockFinish(ms.th)
			ms.pc = pcAllocStart
			return ms.rest, true
		case pcAllocStart:
			// First-touch NUMA policy: new objects are homed on this
			// thread's node.
			j.H.SetAllocNode(j.M.K.Topo.Node(ms.th.Core()))
			ms.cluster = 0
			ms.pc = pcClusters
		case pcClusters: // per-cluster loop header
			if ms.cluster < ms.clusters && j.oomErr == nil {
				ms.pc = pcClusterAttempt
				continue
			}
			ms.pc = pcItemEnd
		case pcClusterAttempt:
			if j.safepoint {
				ms.action = actionSafepoint
				return 0, false
			}
			if _, ok := ms.graph.AllocCluster(); ok {
				ms.cluster++
				ms.pc = pcClusters
				continue
			}
			ms.action = actionGC
			return 0, false
		case pcItemEnd:
			if !ms.batch {
				ms.pc = pcIdle
				ms.action = actionItemDone
				return 0, false
			}
			ms.n++
			j.itemsDone++
			ms.pc = pcItemStart
		default:
			panic("jvm: mutator plan stepped while idle")
		}
	}
}

type request struct {
	issued simkit.Time
}

// AddJVM creates a JVM on the machine and spawns its threads. The run
// starts when Machine.Run is called.
func (m *Machine) AddJVM(cfg Config) (*JVM, error) {
	if err := cfg.Profile.Validate(); err != nil {
		return nil, err
	}
	if cfg.Mutators <= 0 {
		cfg.Mutators = 16
	}
	heapMB := cfg.HeapMB
	if heapMB <= 0 {
		heapMB = cfg.Profile.HeapMB
	}
	var isc *instanceScratch
	if m.scratch != nil {
		isc = m.scratch.inst(len(m.jvms))
	}
	var hsc *heap.Scratch
	if isc != nil {
		hsc = &isc.heap
	}
	h, err := heap.NewWith(cfg.Profile.HeapConfigMB(heapMB), hsc)
	if err != nil {
		return nil, err
	}
	j := &JVM{
		M: m, Cfg: cfg, H: h,
		rng:     rand.New(rand.NewSource(cfg.Seed + 7919)),
		latency: &stats.Histogram{},
	}
	// Later JVMs on a shared machine get suffixed lock names, so the event
	// bus never conflates two monitors' ownership streams (§5.7 runs).
	instance := len(m.jvms)
	appLock := "appLock"
	if instance > 0 {
		appLock = fmt.Sprintf("appLock#%d", instance)
	}
	j.appMon = jmutex.New(m.K, appLock, cfg.MutexPolicy)
	j.Bal = affinity.New(cfg.Affinity, m.K)
	if cfg.Affinity == affinity.ModeDynamic {
		// Algorithm 1 depends on the paper's kernel fix: load_avg that
		// counts sleeping threads (§4.1).
		m.K.P.LoadAvgCountsBlocked = true
	}

	gcThreads := cfg.GCThreads
	if gcThreads <= 0 {
		gcThreads = pscavenge.DefaultGCThreads(m.K.NumCPUs())
	}
	opt := pscavenge.Options{
		Threads:        gcThreads,
		Instance:       instance,
		SpawnCore:      cfg.SpawnCore,
		MutexPolicy:    cfg.MutexPolicy,
		StealKind:      cfg.Steal,
		FastTerminator: cfg.FastTerminator,
		TaskAffinity:   cfg.TaskAffinity,
		AdaptiveSizing: cfg.AdaptiveSizing,
		VerifyHeap:     cfg.VerifyHeap,
		RecordLockLog:  cfg.RecordLockLog,
		LoopWorkers:    cfg.LoopGCWorkers,
		OnWorkerStart:  j.Bal.WorkerStart,
		OnGCWake:       j.Bal.GCWake,
		Metrics:        m.Metrics,
	}
	if cfg.NUMARemoteFactor > 1 {
		opt.NUMA = &pscavenge.NUMAModel{Topo: m.K.Topo, RemoteFactor: cfg.NUMARemoteFactor}
	}
	if cfg.Steal == taskq.KindNUMARestricted {
		opt.NodeOf = j.Bal.NodeOf(gcThreads)
	}
	j.Eng = pscavenge.New(m.K, h, opt)

	// Mutator threads. Unlike the GC threads (which block immediately and
	// stay stacked on the spawn core), mutators are runnable from the
	// start, so fork balancing spreads them; we model that by spawning
	// them round-robin.
	ncpu := m.K.NumCPUs()
	// The profile's RetainWindow is the application-wide medium-lived live
	// set; split it across mutators so the live set does not scale with
	// thread count (workload.Profile docs).
	gp := cfg.Profile.Graph
	gp.RetainWindow = gp.RetainWindow / cfg.Mutators
	if gp.RetainWindow < 2 {
		gp.RetainWindow = 2
	}
	var gsc *objgraph.Scratch
	if isc != nil {
		gsc = &isc.graph
	}
	for i := 0; i < cfg.Mutators; i++ {
		g, err := objgraph.NewMutatorWith(i, h, gp, j.rng, gsc)
		if err != nil {
			return nil, err
		}
		ms := &mutatorState{graph: g, j: j}
		ms.plan = ms.planStep
		j.muts = append(j.muts, ms)
		core := ostopo.CoreID((int(cfg.SpawnCore) + i) % ncpu)
		body := j.batchMutatorBody(i)
		if cfg.Profile.Class == workload.Server {
			body = j.serverWorkerBody(i)
		}
		ms.th = m.K.Spawn(fmt.Sprintf("mutator#%d", i), core, body)
	}
	j.activeMutators = len(j.muts)

	// VM thread on the spawn core (it mostly sleeps).
	j.vm = m.K.Spawn("VMThread", cfg.SpawnCore, j.vmBody)

	if cfg.Profile.Class == workload.Server {
		j.seedClients()
	}
	m.jvms = append(m.jvms, j)
	return j, nil
}

// Result collects the run's metrics. Valid after Machine.Run returns.
func (j *JVM) Result() *Result {
	r := &Result{
		Benchmark: j.Cfg.Profile.Name,
		Mutators:  len(j.muts),
		GCThreads: j.Eng.Threads(),

		TotalTime: j.endTime - j.startTime,
		GCTime:    j.gcTime,

		MinorGCs: j.minorGCs, MajorGCs: j.majorGCs,
		MinorGCTime: j.minorTime, MajorGCTime: j.majorTime,

		Reports: j.Eng.Reports,
		Steal:   j.Eng.Steal,
		Monitor: j.Eng.MonitorStats(),
		LockLog: j.Eng.LockLog(),
		Kernel:  j.M.K.Stats,
		Heap:    j.H.Stats,
		Rebinds: j.Bal.Rebinds,

		Latency:   j.latency,
		ItemsDone: j.itemsDone,
		Err:       j.oomErr,

		EventsFired:   j.M.K.Sim.Fired(),
		EventsInlined: j.M.K.Sim.Inlined(),
	}
	for _, ms := range j.muts {
		r.MutatorDeepWakes += ms.th.DeepWakes
	}
	r.MutatorTime = r.TotalTime - r.GCTime
	if r.TotalTime > 0 {
		if j.Cfg.Profile.Class == workload.Server {
			r.ThroughputOPS = float64(j.answered) / r.TotalTime.Seconds()
		} else {
			r.ThroughputOPS = float64(j.itemsDone) / r.TotalTime.Seconds()
		}
	}
	return r
}

// --- safepoint protocol -----------------------------------------------------

func (j *JVM) stoppedOrIdle() int {
	n := 0
	for _, ms := range j.muts {
		if !ms.finished && (ms.atSafepoint || ms.idle) {
			n++
		}
	}
	return n
}

// checkSafepoint parks the mutator while a stop-the-world pause is pending
// or in progress.
func (j *JVM) checkSafepoint(e *cfs.Env, i int) {
	ms := j.muts[i]
	for j.safepoint {
		ms.atSafepoint = true
		if j.stoppedOrIdle() >= j.activeMutators {
			j.M.K.Unpark(j.vm)
		}
		for j.safepoint {
			e.Park()
		}
		ms.atSafepoint = false
	}
}

// requestGC initiates a collection (allocation failure) and waits for it.
func (j *JVM) requestGC(e *cfs.Env, i int, cause int) {
	if !j.safepoint {
		j.safepoint = true
		j.gcCause = cause
		j.M.K.Unpark(j.vm)
	} else if cause > j.gcCause {
		j.gcCause = cause
	}
	j.checkSafepoint(e, i)
}

func (j *JVM) mutatorFinished(e *cfs.Env, i int) {
	j.muts[i].finished = true
	j.activeMutators--
	j.M.K.Unpark(j.vm)
}

// vmBody coordinates safepoints and runs collections.
func (j *JVM) vmBody(e *cfs.Env) {
	j.startTime = e.Now()
	for {
		for !j.safepoint && j.activeMutators > 0 {
			e.Park()
		}
		if j.activeMutators <= 0 {
			break
		}
		// Wait for every active mutator to reach the safepoint.
		for j.stoppedOrIdle() < j.activeMutators {
			e.Park()
		}
		t0 := e.Now()
		if j.gcCause != causeMajor {
			rep := j.Eng.RunMinorGC(e, j.gatherRoots(false))
			j.minorGCs++
			j.minorTime += rep.Pause()
		}
		if j.gcCause == causeMajor || j.H.OldOccupancy() > 0.88 {
			rep := j.Eng.RunMajorGC(e, j.gatherRoots(true))
			j.majorGCs++
			j.majorTime += rep.Pause()
			if j.H.OldOccupancy() > 0.98 {
				j.oomErr = ErrOutOfMemory
			}
		}
		j.gcTime += e.Now() - t0
		j.safepoint = false
		j.gcCause = causeNone
		for _, ms := range j.muts {
			if ms.atSafepoint {
				j.M.K.Unpark(ms.th)
			}
		}
	}
	j.Eng.Shutdown(e)
	j.endTime = e.Now()
	j.done = true
}

// gatherRoots builds the collection's root set from the live mutators.
// Static roots (anchors, cached partitions — the "universe" of classes and
// globals) feed the ScavengeRootsTasks; being old objects, a minor GC only
// scans them (their young referents arrive through the remembered set),
// while a major GC marks through them.
func (j *JVM) gatherRoots(major bool) pscavenge.RootSet {
	rs := pscavenge.RootSet{}
	for _, ms := range j.muts {
		if ms.finished {
			continue
		}
		rs.ThreadRoots = append(rs.ThreadRoots, ms.graph.Roots())
		rs.StaticRoots = append(rs.StaticRoots, ms.graph.Anchor())
	}
	if major {
		rs.StaticRoots = append(rs.StaticRoots, j.cache...)
	}
	return rs
}

// --- batch mutators ----------------------------------------------------------

func (j *JVM) batchMutatorBody(i int) func(*cfs.Env) {
	return func(e *cfs.Env) {
		ms := j.muts[i]
		p := j.Cfg.Profile
		items := p.TotalItems / len(j.muts)
		if i < p.TotalItems%len(j.muts) {
			items++
		}
		phaseEvery := 0
		if i == 0 && p.Phases > 0 {
			phaseEvery = items / p.Phases
			if phaseEvery == 0 {
				phaseEvery = 1
			}
		}
		ms.batch = true
		ms.items = items
		ms.n = 0
		ms.phaseEvery = phaseEvery
		ms.clusters = p.ItemClusters
		if p.Class == workload.Server {
			ms.clusters = p.ServiceClusters
		}
		ms.pc = pcItemStart
		for {
			e.ComputePlan(ms.plan)
			switch ms.action {
			case actionFinished:
				j.mutatorFinished(e, i)
				return
			case actionSafepoint:
				j.checkSafepoint(e, i)
			case actionPhase:
				j.phaseTransition(e, i)
			case actionLockContended:
				j.appMon.LockContended(e)
			case actionGC:
				j.requestGC(e, i, causeMinor)
			}
		}
	}
}

// runItem performs one work item: compute (partially under the application
// lock for non-scalable workloads) plus allocation. It drives the mutator's
// compute plan in single-item mode; only the blocking pieces run here in
// the body.
func (j *JVM) runItem(e *cfs.Env, i int) {
	ms := j.muts[i]
	p := j.Cfg.Profile
	ms.batch = false
	ms.clusters = p.ItemClusters
	if p.Class == workload.Server {
		ms.clusters = p.ServiceClusters
	}
	ms.pc = pcItemCompute
	for {
		e.ComputePlan(ms.plan)
		switch ms.action {
		case actionItemDone:
			return
		case actionSafepoint:
			j.checkSafepoint(e, i)
		case actionLockContended:
			j.appMon.LockContended(e)
		case actionGC:
			j.requestGC(e, i, causeMinor)
		}
	}
}

// phaseTransition models a Spark stage boundary: drop part of the cached
// RDD partitions, then cache new ones until the configured old-generation
// occupancy is reached (§5.5).
func (j *JVM) phaseTransition(e *cfs.Env, i int) {
	p := j.Cfg.Profile
	// Drop PhaseDropFrac of the cache.
	keep := j.cache[:0]
	for _, id := range j.cache {
		if j.rng.Float64() >= p.PhaseDropFrac {
			keep = append(keep, id)
		}
	}
	j.cache = keep
	// Cache new partitions (homed on the caching thread's node).
	j.H.SetAllocNode(j.M.K.Topo.Node(e.Core()))
	cfgOld := j.H.Config().OldBytes
	part := int32(cfgOld / 256)
	if part < 1024 {
		part = 1024
	}
	target := float64(cfgOld) * p.PhaseCacheFrac
	for j.oomErr == nil {
		_, _, old := j.H.Usage()
		if float64(old) >= target {
			break
		}
		id, ok := j.H.AllocOld(part)
		if !ok {
			// Old generation exhausted: full GC, then retry once.
			j.requestGC(e, i, causeMajor)
			if id2, ok2 := j.H.AllocOld(part); ok2 {
				j.cache = append(j.cache, id2)
				e.Compute(20 * simkit.Microsecond)
				continue
			}
			j.oomErr = ErrOutOfMemory
			return
		}
		j.cache = append(j.cache, id)
		e.Compute(20 * simkit.Microsecond) // I/O+deserialize per partition
	}
}
