package jvm

import (
	"testing"

	"repro/internal/workload"
)

// TestGCWorkersRunAsPlans asserts that on a stock run the GC worker bodies
// are serviced as kernel compute plans: the run must record driver-side
// slice elisions and inline-fired events, and resume far fewer coroutine
// bodies than the legacy loop-worker oracle on the same cell. Result
// equality between the two modes is asserted structurally here and
// event-by-event in pscavenge's TestWorkerPlanMatchesLoop.
func TestGCWorkersRunAsPlans(t *testing.T) {
	p := workload.Lusearch()
	p.TotalItems /= 8 // reduced cell: a few GCs is enough
	base := Config{Profile: p, Mutators: 16, Seed: 1}

	plan, err := Run(RunSpec{Config: base, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	loopCfg := base
	loopCfg.LoopGCWorkers = true
	loop, err := Run(RunSpec{Config: loopCfg, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	if plan.MinorGCs == 0 {
		t.Fatal("reduced cell ran no minor GCs; cannot exercise workers")
	}
	if plan.Kernel.BurstElisions == 0 {
		t.Error("plan workers recorded no burst elisions")
	}
	if plan.EventsInlined == 0 {
		t.Error("no events were batch-dispatched inline")
	}
	if plan.Kernel.BodyResumes >= loop.Kernel.BodyResumes {
		t.Errorf("plan workers did not reduce body resumes: plan=%d loop=%d",
			plan.Kernel.BodyResumes, loop.Kernel.BodyResumes)
	}

	// The two modes must simulate the same execution.
	if plan.TotalTime != loop.TotalTime || plan.GCTime != loop.GCTime {
		t.Errorf("timings diverged: plan total=%v gc=%v, loop total=%v gc=%v",
			plan.TotalTime, plan.GCTime, loop.TotalTime, loop.GCTime)
	}
	if plan.MinorGCs != loop.MinorGCs || plan.MajorGCs != loop.MajorGCs {
		t.Errorf("GC counts diverged: plan=%d/%d loop=%d/%d",
			plan.MinorGCs, plan.MajorGCs, loop.MinorGCs, loop.MajorGCs)
	}
	if plan.ItemsDone != loop.ItemsDone || plan.Heap != loop.Heap {
		t.Errorf("work diverged: plan items=%d heap=%+v, loop items=%d heap=%+v",
			plan.ItemsDone, plan.Heap, loop.ItemsDone, loop.Heap)
	}
	if plan.Steal.TotalAttempts() != loop.Steal.TotalAttempts() {
		t.Errorf("steal attempts diverged: plan=%d loop=%d",
			plan.Steal.TotalAttempts(), loop.Steal.TotalAttempts())
	}
}
