package jvm

import (
	"testing"

	"repro/internal/workload"
)

// TestSmokeLusearch logs headline numbers for manual calibration. It keeps
// loose assertions; the tight behavioural tests live in jvm_test.go.
func TestSmokeLusearch(t *testing.T) {
	p := workload.Lusearch()
	p.TotalItems /= 4 // keep the smoke test quick
	base := Config{Profile: p, Mutators: 16, Seed: 1}

	van, err := Run(RunSpec{Config: base, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Run(RunSpec{Config: base.WithOptimizations(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]*Result{"vanilla": van, "optimized": opt} {
		t.Logf("%s: total=%v gc=%v (ratio %.2f) mutator=%v minor=%d major=%d attempts=%d failrate=%.2f reacq=%d rebinds=%d",
			name, r.TotalTime, r.GCTime, r.GCRatio(), r.MutatorTime,
			r.MinorGCs, r.MajorGCs, r.Steal.TotalAttempts(), r.Steal.FailureRate(),
			r.Monitor.OwnerReacquires, r.Rebinds)
		for i, rep := range r.Reports {
			if i > 8 {
				break
			}
			t.Logf("  GC#%d %s: pause=%v cores=%d rootSpread=%d steal=%v term=%v",
				i, rep.Kind, rep.Pause(), rep.CoresUsed(), rep.RootTaskSpread(),
				rep.StealWorkTime, rep.TerminationTime)
		}
	}
	if van.GCTime <= 0 || opt.GCTime <= 0 {
		t.Fatal("no GC activity")
	}
}
