package jvm

import (
	"repro/internal/cfs"
	"repro/internal/simkit"
)

// This file implements the Cassandra-style server mode (§3.1, §5.5): a
// fixed pool of worker (mutator) threads services requests from closed-loop
// clients on a separate machine (modeled as zero-cost events, since the
// paper's client box does not consume server CPU). Request latency includes
// queueing delay and any stop-the-world pause that hits mid-flight, which
// is what drives the paper's tail-latency results.

// seedClients issues the initial window of requests (one per client).
func (j *JVM) seedClients() {
	clients := j.Cfg.Clients
	if clients <= 0 {
		clients = 16
	}
	if j.Cfg.Requests <= 0 {
		j.Cfg.Requests = 10000
	}
	for c := 0; c < clients && j.issued < j.Cfg.Requests; c++ {
		// Stagger arrivals by a microsecond so they do not all land on the
		// same instant.
		d := simkit.Time(c) * simkit.Microsecond
		j.M.Sim.After(d, j.issueRequest)
	}
}

// issueRequest enqueues one request and wakes an idle worker.
func (j *JVM) issueRequest() {
	if j.issued >= j.Cfg.Requests {
		return
	}
	j.issued++
	j.pending = append(j.pending, &request{issued: j.M.Sim.Now()})
	for _, ms := range j.muts {
		if ms.idle && !ms.finished {
			j.M.K.Unpark(ms.th)
			break
		}
	}
}

func (j *JVM) popRequest() *request {
	if len(j.pending) == 0 {
		return nil
	}
	r := j.pending[0]
	j.pending = j.pending[1:]
	return r
}

// completeRequest records latency and, closed-loop, issues the successor.
func (j *JVM) completeRequest(e *cfs.Env, r *request) {
	lat := e.Now() - r.issued
	j.latency.Add(lat.Millis())
	j.answered++
	if j.answered >= j.Cfg.Requests {
		// All done: wake idle workers so they can exit.
		for _, ms := range j.muts {
			if ms.idle && !ms.finished {
				j.M.K.Unpark(ms.th)
			}
		}
		return
	}
	j.issueRequest()
}

// serverWorkerBody is one worker thread's loop.
func (j *JVM) serverWorkerBody(i int) func(*cfs.Env) {
	return func(e *cfs.Env) {
		ms := j.muts[i]
		for j.oomErr == nil {
			j.checkSafepoint(e, i)
			if j.answered >= j.Cfg.Requests {
				break
			}
			req := j.popRequest()
			if req == nil {
				if j.safepoint {
					continue // count ourselves via checkSafepoint
				}
				ms.idle = true
				if j.safepoint && j.stoppedOrIdle() >= j.activeMutators {
					j.M.K.Unpark(j.vm)
				}
				e.Park()
				ms.idle = false
				continue
			}
			j.runItem(e, i)
			j.itemsDone++
			j.completeRequest(e, req)
		}
		j.mutatorFinished(e, i)
	}
}
