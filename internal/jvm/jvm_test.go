package jvm

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/affinity"
	"repro/internal/objgraph"
	"repro/internal/ostopo"
	"repro/internal/simkit"
	"repro/internal/taskq"
	"repro/internal/workload"
)

// shrink scales a batch profile down for fast tests.
func shrink(p workload.Profile, factor int) workload.Profile {
	p.TotalItems /= factor
	if p.TotalItems < 200 {
		p.TotalItems = 200
	}
	return p
}

func mustRun(t *testing.T, spec RunSpec) *Result {
	t.Helper()
	r, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestOptimizationsImproveGCAndTotalTime(t *testing.T) {
	base := Config{Profile: shrink(workload.Lusearch(), 4), Mutators: 16, Seed: 1}
	van := mustRun(t, RunSpec{Config: base, Seed: 1})
	opt := mustRun(t, RunSpec{Config: base.WithOptimizations(), Seed: 1})
	if opt.GCTime >= van.GCTime*7/10 {
		t.Errorf("GC time: optimized %v vs vanilla %v — want >= 30%% reduction", opt.GCTime, van.GCTime)
	}
	if opt.TotalTime >= van.TotalTime {
		t.Errorf("total time: optimized %v vs vanilla %v — want improvement", opt.TotalTime, van.TotalTime)
	}
	if van.MinorGCs == 0 {
		t.Fatal("no GCs happened")
	}
}

func TestVanillaGCIsStacked(t *testing.T) {
	base := Config{Profile: shrink(workload.Lusearch(), 8), Mutators: 16, Seed: 2}
	van := mustRun(t, RunSpec{Config: base, Seed: 2})
	opt := mustRun(t, RunSpec{Config: base.WithOptimizations(), Seed: 2})
	avgCores := func(r *Result) float64 {
		if len(r.Reports) == 0 {
			return 0
		}
		s := 0
		for _, rep := range r.Reports {
			s += rep.CoresUsed()
		}
		return float64(s) / float64(len(r.Reports))
	}
	vc, oc := avgCores(van), avgCores(opt)
	if vc > 5 {
		t.Errorf("vanilla GC used %.1f cores on average; expected stacking (<= 5)", vc)
	}
	if oc < 8 {
		t.Errorf("optimized GC used %.1f cores on average; expected wide spread (>= 8)", oc)
	}
	if van.Monitor.OwnerReacquires < 20 {
		t.Errorf("vanilla owner reacquisitions = %d; the unfair fast path should dominate", van.Monitor.OwnerReacquires)
	}
}

func TestIndividualOptimizationsHelp(t *testing.T) {
	base := Config{Profile: shrink(workload.Sunflow(), 6), Mutators: 16, Seed: 3}
	van := mustRun(t, RunSpec{Config: base, Seed: 3})
	aff := mustRun(t, RunSpec{Config: base.WithAffinityOnly(), Seed: 3})
	stl := mustRun(t, RunSpec{Config: base.WithStealOnly(), Seed: 3})
	both := mustRun(t, RunSpec{Config: base.WithOptimizations(), Seed: 3})
	if aff.GCTime >= van.GCTime {
		t.Errorf("affinity-only GC %v not better than vanilla %v", aff.GCTime, van.GCTime)
	}
	// The stealing optimization's first-order effect is on futile steal
	// attempts (Fig. 9); under full stacking its GC-time effect is small,
	// so assert the attempt reduction and that GC time does not regress.
	if stl.Steal.TotalFailures() >= van.Steal.TotalFailures() {
		t.Errorf("steal-only failed attempts %d not below vanilla %d",
			stl.Steal.TotalFailures(), van.Steal.TotalFailures())
	}
	if stl.GCTime > van.GCTime*12/10 {
		t.Errorf("steal-only GC %v regressed past vanilla %v", stl.GCTime, van.GCTime)
	}
	// §5.2: affinity contributes more than optimized stealing.
	if aff.GCTime >= stl.GCTime {
		t.Logf("note: affinity GC %v vs steal GC %v (paper expects affinity stronger)", aff.GCTime, stl.GCTime)
	}
	if both.GCTime >= van.GCTime*8/10 {
		t.Errorf("together GC %v vs vanilla %v: want >= 20%% reduction", both.GCTime, van.GCTime)
	}
}

func TestScalableWorkloadSpeedsUpWithMutators(t *testing.T) {
	p := shrink(workload.Lusearch(), 8)
	one := mustRun(t, RunSpec{Config: Config{Profile: p, Mutators: 1, Seed: 4}, Seed: 4})
	sixteen := mustRun(t, RunSpec{Config: Config{Profile: p, Mutators: 16, Seed: 4}, Seed: 4})
	speedup := float64(one.TotalTime) / float64(sixteen.TotalTime)
	if speedup < 4 {
		t.Errorf("lusearch 16-mutator speedup = %.1fx, want >= 4x (scalable workload)", speedup)
	}
}

func TestNonScalableWorkloadStagnates(t *testing.T) {
	p := shrink(workload.H2(), 6)
	four := mustRun(t, RunSpec{Config: Config{Profile: p, Mutators: 4, Seed: 5}, Seed: 5})
	sixteen := mustRun(t, RunSpec{Config: Config{Profile: p, Mutators: 16, Seed: 5}, Seed: 5})
	speedup := float64(four.TotalTime) / float64(sixteen.TotalTime)
	if speedup > 2.0 {
		t.Errorf("h2 4->16 mutators speedup %.2fx; SerialFrac=0.55 should cap scaling well below 2x", speedup)
	}
}

func TestGCRatioGrowsWithMutators(t *testing.T) {
	// Fig. 3(a): with more mutators, mutator time shrinks and the GC share
	// of total time grows.
	p := shrink(workload.Lusearch(), 8)
	r2 := mustRun(t, RunSpec{Config: Config{Profile: p, Mutators: 2, Seed: 6}, Seed: 6})
	r16 := mustRun(t, RunSpec{Config: Config{Profile: p, Mutators: 16, Seed: 6}, Seed: 6})
	if r16.GCRatio() <= r2.GCRatio() {
		t.Errorf("GC ratio: 16 mutators %.2f <= 2 mutators %.2f; want growth", r16.GCRatio(), r2.GCRatio())
	}
}

func TestCassandraServerCompletesAndTailImproves(t *testing.T) {
	base := Config{
		Profile: workload.Cassandra(), Mutators: 16,
		Clients: 64, Requests: 3000, Seed: 7,
	}
	van := mustRun(t, RunSpec{Config: base, Seed: 7})
	opt := mustRun(t, RunSpec{Config: base.WithOptimizations(), Seed: 7})
	if van.Latency.N() != 3000 || opt.Latency.N() != 3000 {
		t.Fatalf("requests answered: vanilla %d, optimized %d, want 3000", van.Latency.N(), opt.Latency.N())
	}
	v99, o99 := van.Latency.Percentile(99), opt.Latency.Percentile(99)
	if o99 >= v99 {
		t.Errorf("p99 latency: optimized %.2fms vs vanilla %.2fms — want tail improvement", o99, v99)
	}
	if van.Latency.Percentile(99) <= van.Latency.Median() {
		t.Error("p99 <= median: GC pauses should create a tail")
	}
	if van.ThroughputOPS <= 0 {
		t.Error("no throughput recorded")
	}
}

func TestCassandraLatencyGrowsWithClients(t *testing.T) {
	// Fig. 3(d): closed-loop concurrency inflates mean latency.
	lat := func(clients int) float64 {
		r := mustRun(t, RunSpec{Config: Config{
			Profile: workload.Cassandra(), Mutators: 16,
			Clients: clients, Requests: 1500, Seed: 8,
		}, Seed: 8})
		return r.Latency.Mean()
	}
	l4, l128 := lat(4), lat(128)
	if l128 <= l4*2 {
		t.Errorf("mean latency at 128 clients (%.2fms) not much above 4 clients (%.2fms)", l128, l4)
	}
}

func TestPagerankHugeOOMs(t *testing.T) {
	r := mustRun(t, RunSpec{Config: Config{
		Profile: shrink(workload.Pagerank(workload.SizeHuge), 8), Mutators: 16, Seed: 9,
	}, Seed: 9})
	if !errors.Is(r.Err, ErrOutOfMemory) {
		t.Errorf("pagerank(huge) finished with err=%v, want OutOfMemoryError (§5.5)", r.Err)
	}
}

func TestKmeansRunsMajorGCs(t *testing.T) {
	r := mustRun(t, RunSpec{Config: Config{
		Profile: shrink(workload.Kmeans(workload.SizeLarge), 4), Mutators: 16, Seed: 10,
	}, Seed: 10})
	if r.Err != nil {
		t.Fatalf("kmeans failed: %v", r.Err)
	}
	if r.MajorGCs == 0 {
		t.Error("kmeans(large) ran no major GCs; RDD caching should pressure the old generation")
	}
	if r.MajorGCTime <= 0 {
		t.Error("no major GC time recorded")
	}
}

func TestInterferenceDynamicAffinityWins(t *testing.T) {
	// §5.7: with busy loops pinned on half the cores, dynamic binding must
	// beat static binding (which collides with the interference).
	p := shrink(workload.Lusearch(), 8)
	run := func(mode affinity.Mode) *Result {
		cfg := Config{Profile: p, Mutators: 16, Seed: 11, TaskAffinity: true,
			Steal: taskq.KindSemiRandom, FastTerminator: true}
		cfg.Affinity = mode
		return mustRun(t, RunSpec{Config: cfg, Seed: 11, BusyLoops: 10})
	}
	dyn := run(affinity.ModeDynamic)
	sta := run(affinity.ModeStatic)
	van := run(affinity.ModeNone)
	if dyn.TotalTime >= van.TotalTime {
		t.Errorf("dynamic affinity total %v not better than unbound %v under interference",
			dyn.TotalTime, van.TotalTime)
	}
	if dyn.GCTime > van.GCTime*12/10 {
		t.Errorf("dynamic affinity GC %v regressed past unbound %v under interference",
			dyn.GCTime, van.GCTime)
	}
	t.Logf("interference GC: dynamic=%v static=%v vanilla=%v", dyn.GCTime, sta.GCTime, van.GCTime)
	if dyn.Rebinds == 0 {
		t.Error("dynamic mode never rebound under interference")
	}
}

func TestMultiJVMCoRun(t *testing.T) {
	p := shrink(workload.Lusearch(), 8)
	cfgA := Config{Profile: p, Mutators: 16, Seed: 12}
	cfgB := Config{Profile: p, Mutators: 16, Seed: 13, SpawnCore: 10}
	results, err := RunMulti(12, nil, nil, 0, 0, cfgA, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	solo := mustRun(t, RunSpec{Config: cfgA, Seed: 12})
	for i, r := range results {
		if r.MinorGCs == 0 || r.TotalTime <= 0 {
			t.Errorf("JVM %d: empty result %+v", i, r)
		}
		if r.TotalTime <= solo.TotalTime {
			t.Errorf("co-run JVM %d (%v) not slower than solo (%v)", i, r.TotalTime, solo.TotalTime)
		}
	}
}

func TestSmallerHeapMoreGCs(t *testing.T) {
	p := shrink(workload.Lusearch(), 8)
	small := mustRun(t, RunSpec{Config: Config{Profile: p, Mutators: 16, HeapMB: 30, Seed: 14}, Seed: 14})
	large := mustRun(t, RunSpec{Config: Config{Profile: p, Mutators: 16, HeapMB: 360, Seed: 14}, Seed: 14})
	if small.MinorGCs <= large.MinorGCs {
		t.Errorf("GCs: 30MB heap %d <= 360MB heap %d; smaller heap must collect more often",
			small.MinorGCs, large.MinorGCs)
	}
}

func TestGCThreadOverrideAndHeuristic(t *testing.T) {
	p := shrink(workload.Lusearch(), 10)
	r := mustRun(t, RunSpec{Config: Config{Profile: p, Mutators: 8, GCThreads: 4, Seed: 15}, Seed: 15})
	if r.GCThreads != 4 {
		t.Errorf("GCThreads = %d, want 4", r.GCThreads)
	}
	r = mustRun(t, RunSpec{Config: Config{Profile: p, Mutators: 8, Seed: 15}, Seed: 15})
	if r.GCThreads != 15 {
		t.Errorf("heuristic GCThreads = %d, want 15 on 20 cores", r.GCThreads)
	}
}

func TestSMTTopologyRuns(t *testing.T) {
	p := shrink(workload.Lusearch(), 10)
	r := mustRun(t, RunSpec{
		Config: Config{Profile: p, Mutators: 16, GCThreads: 15, Seed: 16},
		Topo:   ostopo.PaperTestbedSMT(),
		Seed:   16,
	})
	if r.MinorGCs == 0 {
		t.Fatal("no GCs on SMT topology")
	}
}

func TestDeterministicResults(t *testing.T) {
	p := shrink(workload.Xalan(), 10)
	run := func() (simkit.Time, simkit.Time, int64) {
		r := mustRun(t, RunSpec{Config: Config{Profile: p, Mutators: 16, Seed: 17}, Seed: 17})
		return r.TotalTime, r.GCTime, r.Steal.TotalAttempts()
	}
	t1, g1, a1 := run()
	t2, g2, a2 := run()
	if t1 != t2 || g1 != g2 || a1 != a2 {
		t.Errorf("non-deterministic: (%v,%v,%d) vs (%v,%v,%d)", t1, g1, a1, t2, g2, a2)
	}
}

func TestMutatorItemsAllExecuted(t *testing.T) {
	p := shrink(workload.Jython(), 10)
	r := mustRun(t, RunSpec{Config: Config{Profile: p, Mutators: 7, Seed: 18}, Seed: 18})
	if r.ItemsDone != int64(p.TotalItems) {
		t.Errorf("items done = %d, want %d", r.ItemsDone, p.TotalItems)
	}
}

func TestRunRejectsInvalidProfile(t *testing.T) {
	if _, err := Run(RunSpec{Config: Config{Profile: workload.Profile{}}}); err == nil {
		t.Error("Run accepted an empty profile")
	}
}

func TestHeapInvariantsAfterFullRun(t *testing.T) {
	p := shrink(workload.Lusearch(), 10)
	m := NewMachine(19, ostopo.PaperTestbed(), nil)
	defer m.Close()
	j, err := m.AddJVM(Config{Profile: p, Mutators: 8, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1e12); err != nil {
		t.Fatal(err)
	}
	if err := j.H.CheckInvariants(); err != nil {
		t.Errorf("heap invariants violated after run: %v", err)
	}
}

func TestVerifyHeapAcrossBenchmarks(t *testing.T) {
	// -XX:+VerifyAfterGC analogue: heap invariants (accounting, space
	// lists, remembered-set completeness) must hold after every collection
	// of representative workloads, including ones with frequent major GCs.
	for _, p := range []workload.Profile{
		shrink(workload.Lusearch(), 8),
		shrink(workload.H2(), 8),
		shrink(workload.Kmeans(workload.SizeLarge), 8),
	} {
		cfg := Config{Profile: p, Mutators: 8, Seed: 33, VerifyHeap: true}
		if _, err := Run(RunSpec{Config: cfg, Seed: 33}); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		cfg = cfg.WithOptimizations()
		if _, err := Run(RunSpec{Config: cfg, Seed: 33}); err != nil {
			t.Errorf("%s optimized: %v", p.Name, err)
		}
	}
}

func TestSafepointStopsEveryMutator(t *testing.T) {
	// During every STW pause, no mutator may allocate: allocation counts
	// must be flat across each GC window. We approximate by checking that
	// heap invariants hold and every GC saw all live mutators' roots
	// (ThreadRootsTask count == active mutators).
	p := shrink(workload.Lusearch(), 10)
	m := NewMachine(41, ostopo.PaperTestbed(), nil)
	defer m.Close()
	j, err := m.AddJVM(Config{Profile: p, Mutators: 5, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1e12); err != nil {
		t.Fatal(err)
	}
	for _, rep := range j.Eng.Reports {
		threadRoots := 0
		for _, row := range rep.TasksByThread {
			threadRoots += row[2] // TaskThreadRoots
		}
		if threadRoots > 5 {
			t.Errorf("GC %d saw %d ThreadRootsTasks for 5 mutators", rep.Seq, threadRoots)
		}
		if threadRoots == 0 {
			t.Errorf("GC %d saw no ThreadRootsTasks", rep.Seq)
		}
	}
}

func TestMutatorsFinishDuringPendingSafepoint(t *testing.T) {
	// A mutator hitting its last item while another requests a GC must not
	// deadlock the safepoint protocol: uneven item splits exercise this.
	p := shrink(workload.Lusearch(), 10)
	p.TotalItems = 501 // uneven across 7 mutators
	r := mustRun(t, RunSpec{Config: Config{Profile: p, Mutators: 7, Seed: 42}, Seed: 42})
	if r.ItemsDone != 501 {
		t.Errorf("items done = %d, want 501", r.ItemsDone)
	}
}

func TestServerIdleWorkersDoNotBlockSafepoints(t *testing.T) {
	// Few clients + many workers: most workers sit idle-parked; GCs must
	// still start and finish.
	r := mustRun(t, RunSpec{Config: Config{
		Profile: workload.Cassandra(), Mutators: 16,
		Clients: 2, Requests: 2500, Seed: 43,
	}, Seed: 43})
	if r.Latency.N() != 2500 {
		t.Fatalf("answered %d of 2500", r.Latency.N())
	}
	if r.MinorGCs == 0 {
		t.Error("no GCs despite allocation; safepoints blocked by idle workers?")
	}
}

func TestOptimizedGCReducesMutatorDeepWakes(t *testing.T) {
	// §5.4 observation 3: with load-balanced GC the cores stay active
	// during the pause, so resuming mutators pay fewer deep C-state exits.
	base := Config{Profile: shrink(workload.Lusearch(), 6), Mutators: 16, Seed: 44}
	van := mustRun(t, RunSpec{Config: base, Seed: 44})
	opt := mustRun(t, RunSpec{Config: base.WithOptimizations(), Seed: 44})
	if opt.MutatorDeepWakes >= van.MutatorDeepWakes {
		t.Errorf("mutator deep wakes: optimized %d >= vanilla %d; spread GC should keep cores warm",
			opt.MutatorDeepWakes, van.MutatorDeepWakes)
	}
}

func TestFuzzRandomProfiles(t *testing.T) {
	// Integration fuzz: random (valid) workload profiles across random
	// machine shapes must complete with heap invariants intact, for every
	// optimization level, and deterministically.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		p := workload.Profile{
			Name: fmt.Sprintf("fuzz-%d", trial), Suite: "fuzz",
			HeapMB: 32 + rng.Intn(256), ScalePerMB: 8192 + rng.Int63n(65536),
			Graph: objgraph.Params{
				MeanObjectSize: int32(32 + rng.Intn(512)),
				ClusterFanout:  rng.Intn(10),
				StackWindow:    1 + rng.Intn(24),
				RetainProb:     rng.Float64() * 0.4,
				RetainWindow:   rng.Intn(256),
				OldAttachProb:  rng.Float64() * 0.5,
				AnchorWindow:   8 + rng.Intn(64),
				CrossRefProb:   rng.Float64() * 0.5,
			},
			TotalItems:   400 + rng.Intn(1200),
			ItemCompute:  simkit.Time(20+rng.Intn(400)) * simkit.Microsecond,
			ItemClusters: 1 + rng.Intn(6),
			SerialFrac:   rng.Float64() * 0.7,
		}
		if rng.Intn(3) == 0 {
			p.Phases = 1 + rng.Intn(4)
			p.PhaseCacheFrac = rng.Float64() * 0.5
			p.PhaseDropFrac = rng.Float64()
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid profile: %v", trial, err)
		}
		cfg := Config{
			Profile: p, Mutators: 1 + rng.Intn(20),
			GCThreads: 1 + rng.Intn(16), Seed: int64(trial),
			VerifyHeap: true, AdaptiveSizing: rng.Intn(2) == 0,
		}
		switch trial % 4 {
		case 1:
			cfg = cfg.WithAffinityOnly()
		case 2:
			cfg = cfg.WithStealOnly()
		case 3:
			cfg = cfg.WithOptimizations()
		}
		r1, err := Run(RunSpec{Config: cfg, Seed: int64(trial)})
		if err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, cfg.Profile, err)
		}
		if r1.Err != nil && !errors.Is(r1.Err, ErrOutOfMemory) {
			t.Fatalf("trial %d: unexpected error %v", trial, r1.Err)
		}
		r2, err := Run(RunSpec{Config: cfg, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if r1.TotalTime != r2.TotalTime || r1.GCTime != r2.GCTime {
			t.Fatalf("trial %d: non-deterministic (%v/%v vs %v/%v)",
				trial, r1.TotalTime, r1.GCTime, r2.TotalTime, r2.GCTime)
		}
	}
}

// TestMutatorBurstsRunAsPlans asserts the steady-state mutator loop is
// serviced as a driver-side compute plan: the kernel must record burst
// elisions (slices started without a body resume) on both the plain
// allocation profile (whose plans chain one item's compute into the next
// without resuming the body) and the lock-heavy one (whose plans also fold
// the monitor's CAS/serial/unlock sequence).
func TestMutatorBurstsRunAsPlans(t *testing.T) {
	cases := []struct {
		name    string
		perItem int // minimum elisions per item completed
		cfg     Config
	}{
		// One elision per steady-state item boundary (next item's compute
		// slice starts driver-side); GC pauses interrupt a few chains.
		{"lusearch", 1, Config{Profile: shrink(workload.Lusearch(), 8), Mutators: 16, Seed: 51}},
		// SerialFrac > 0 adds serial/unlock/rest slices to every item.
		{"xalan-serial", 3, Config{Profile: shrink(workload.Xalan(), 8), Mutators: 16, Seed: 52}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := mustRun(t, RunSpec{Config: tc.cfg, Seed: tc.cfg.Seed})
			if r.Kernel.BurstElisions == 0 {
				t.Fatal("run recorded no burst elisions; mutator plans are not being serviced driver-side")
			}
			if want := int(r.ItemsDone) * tc.perItem / 2; r.Kernel.BurstElisions < want {
				t.Errorf("burst elisions = %d for %d items; want >= %d",
					r.Kernel.BurstElisions, r.ItemsDone, want)
			}
		})
	}

	// Server mode folds each request's allocation burst into the service
	// compute slice's completion, driver-side; with SerialFrac = 0 the plan
	// has a single slice, so the fold shows up as completed requests, not
	// elisions.
	t.Run("cassandra", func(t *testing.T) {
		cfg := Config{Profile: workload.Cassandra(), Mutators: 8, Clients: 16, Requests: 1200, Seed: 53}
		r := mustRun(t, RunSpec{Config: cfg, Seed: 53})
		if r.ItemsDone != 1200 {
			t.Errorf("server answered %d of 1200 requests", r.ItemsDone)
		}
	})
}
