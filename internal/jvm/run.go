package jvm

import (
	"repro/internal/cfs"
	"repro/internal/evtrace"
	"repro/internal/ostopo"
	"repro/internal/simkit"
)

// RunSpec is a one-shot run description: one machine, one JVM, optional
// interference.
type RunSpec struct {
	Config
	// Topo defaults to the paper's testbed (20 cores, SMT off).
	Topo *ostopo.Topology
	// Sched overrides scheduler parameters (nil = defaults).
	Sched *cfs.Params
	// Seed seeds the whole simulation.
	Seed int64
	// BusyLoops adds interfering CPU hogs pinned to the first cores.
	BusyLoops int
	// MaxSim bounds virtual time (0 = 20 minutes).
	MaxSim simkit.Time
	// Trace records a scheduling timeline (cfs.Trace) into Result.Trace.
	Trace bool
	// EvTracer, when non-nil, receives structured events from every layer
	// (simkit, cfs, jmutex, taskq, pscavenge) for Perfetto export and lock
	// profiling. Tracing never perturbs the simulation.
	EvTracer *evtrace.Tracer
	// Metrics, when non-nil, is the unified counter registry, snapshotted
	// after each collection.
	Metrics *evtrace.Registry
	// Scratch, when non-nil, supplies pooled backing arrays for the
	// machine; Run harvests them back before returning. Reuse never
	// changes results (see Scratch).
	Scratch *Scratch
}

// Run executes a single-JVM simulation to completion and returns its
// result. An ErrOutOfMemory run still returns a Result (with Err set);
// other failures return an error.
func Run(spec RunSpec) (*Result, error) {
	topo := spec.Topo
	if topo == nil {
		topo = ostopo.PaperTestbed()
	}
	maxSim := spec.MaxSim
	if maxSim <= 0 {
		maxSim = 20 * 60 * simkit.Second
	}
	m := NewMachineScratch(spec.Seed, topo, spec.Sched, spec.EvTracer, spec.Scratch)
	defer m.Close()
	m.Metrics = spec.Metrics
	var tr *cfs.Trace
	if spec.Trace {
		tr = cfs.NewTrace()
		m.K.SetTrace(tr)
	}
	if spec.BusyLoops > 0 {
		m.AddBusyLoops(spec.BusyLoops)
	}
	j, err := m.AddJVM(spec.Config)
	if err != nil {
		return nil, err
	}
	if err := m.Run(maxSim); err != nil {
		return nil, err
	}
	res := j.Result()
	if tr != nil {
		tr.CloseOpen(m.Sim.Now())
		res.Trace = tr
		res.NumCPUs = m.K.NumCPUs()
	}
	return res, nil
}

// RunMulti executes several JVMs sharing one machine (§5.7) and returns
// their results in order.
func RunMulti(seed int64, topo *ostopo.Topology, sched *cfs.Params, busyLoops int, maxSim simkit.Time, cfgs ...Config) ([]*Result, error) {
	return RunMultiTraced(seed, topo, sched, busyLoops, maxSim, nil, cfgs...)
}

// RunMultiTraced is RunMulti with a shared event-bus tracer attached from
// machine construction on (nil disables tracing). Each JVM's monitors and
// task ids are namespaced by its instance, so one bus carries all of them
// unambiguously.
func RunMultiTraced(seed int64, topo *ostopo.Topology, sched *cfs.Params, busyLoops int, maxSim simkit.Time, tr *evtrace.Tracer, cfgs ...Config) ([]*Result, error) {
	if topo == nil {
		topo = ostopo.PaperTestbed()
	}
	if maxSim <= 0 {
		maxSim = 20 * 60 * simkit.Second
	}
	m := NewMachineTraced(seed, topo, sched, tr)
	defer m.Close()
	if busyLoops > 0 {
		m.AddBusyLoops(busyLoops)
	}
	jvms := make([]*JVM, 0, len(cfgs))
	for i, cfg := range cfgs {
		cfg.Seed += int64(i * 1000003)
		j, err := m.AddJVM(cfg)
		if err != nil {
			return nil, err
		}
		jvms = append(jvms, j)
	}
	if err := m.Run(maxSim); err != nil {
		return nil, err
	}
	out := make([]*Result, len(jvms))
	for i, j := range jvms {
		out[i] = j.Result()
	}
	return out, nil
}
