package jvm_test

// Scratch reuse must be invisible: a worker's scratch carries arenas and
// tables from cell to cell, and the service/experiment layers hand it
// cells of completely different shapes (batch vs server, SMT vs not,
// different thread counts, heaps, and scales) in whatever order the pool
// schedules. This test drives mixed-shape cells through a shared
// runner.Pool with GetScratch/PutScratch recycling and asserts every
// result is byte-identical to a fresh-scratch run of the same cell.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/gclog"
	"repro/internal/jvm"
	"repro/internal/runner"
	"repro/internal/workload"
)

// mixedCells is a deliberately heterogeneous set: consecutive pool work
// items differ in workload class, topology, heap, and thread counts.
func mixedCells(t *testing.T) []core.Config {
	t.Helper()
	withItems := func(name string, items int) workload.Profile {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p.TotalItems = items
		return p
	}
	return []core.Config{
		{Profile: withItems("lusearch", 2000), Mutators: 16, GCThreads: 8, Seed: 1},
		{Profile: withItems("cassandra", 0), Mutators: 8, Clients: 2, Requests: 120, Seed: 2},
		{Profile: withItems("kmeans", 1200), Mutators: 4, HeapMB: 64, Seed: 3},
		{Profile: withItems("lusearch", 800), Mutators: 2, GCThreads: 2, SMT: true, Seed: 4},
		{Profile: withItems("xalan", 1500), Mutators: 12, Optimizations: core.OptAll, Seed: 5},
		{Profile: withItems("pagerank", 900), Mutators: 6, HeapMB: 200, Seed: 6},
	}
}

// runDigest fingerprints everything a run exports: headline totals plus
// the full gclog JSON export (per-GC phase breakdowns, monitor and steal
// stats).
func runDigest(t *testing.T, res *jvm.Result) string {
	t.Helper()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%v|%v|%v|%d|%d|%d|%d|",
		res.TotalTime, res.GCTime, res.MutatorTime,
		res.MinorGCs, res.MajorGCs, res.ItemsDone, res.Rebinds)
	if err := gclog.WriteRunJSON(&buf, res.Reports, res.Monitor, res.Steal, nil); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

func TestMixedShapeScratchReuseThroughSharedPool(t *testing.T) {
	cells := mixedCells(t)
	specs := make([]jvm.RunSpec, len(cells))
	for i, cfg := range cells {
		spec, err := core.BuildRunSpec(cfg)
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		specs[i] = spec
	}

	// Reference pass: every cell on a fresh scratch, sequentially.
	want := make([]string, len(specs))
	for i, spec := range specs {
		spec.Scratch = new(jvm.Scratch)
		res, err := jvm.Run(spec)
		if err != nil {
			t.Fatalf("fresh cell %d: %v", i, err)
		}
		want[i] = runDigest(t, res)
	}

	// Shared-pool passes: 2 workers, 3 rounds, each round a different
	// interleaving, scratches recycled across every shape transition.
	pool := runner.New(2)
	orders := [][]int{
		{0, 1, 2, 3, 4, 5},
		{5, 3, 1, 4, 2, 0}, // server cell lands on a scratch warmed by batch cells, and vice versa
		{2, 5, 0, 4, 1, 3},
	}
	for round, order := range orders {
		got := make([]string, len(specs))
		errs := make([]error, len(specs))
		pool.ForEach(len(order), func(k int) {
			i := order[k]
			sc, _ := pool.GetScratch().(*jvm.Scratch)
			if sc == nil {
				sc = new(jvm.Scratch)
			}
			spec := specs[i]
			spec.Scratch = sc
			res, err := jvm.Run(spec)
			pool.PutScratch(sc)
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = runDigest(t, res)
		})
		for i := range specs {
			if errs[i] != nil {
				t.Fatalf("round %d cell %d: %v", round, i, errs[i])
			}
			if got[i] != want[i] {
				t.Errorf("round %d cell %d (seed %d): pooled-scratch run diverges from fresh-scratch run",
					round, i, cells[i].Seed)
			}
		}
	}
}
