package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/evtrace"
	"repro/internal/jvm"
	"repro/internal/postmortem"
	"repro/internal/runner"
	"repro/internal/stats"
)

// ErrQueueFull is returned (and mapped to HTTP 429) when the admission
// queue has no room for another scenario: the server sheds load instead
// of building an unbounded backlog — concurrency restriction applied to
// our own worker pool, per Dice & Kogan.
var ErrQueueFull = errors.New("service: scenario queue full, retry later")

// ErrClosed is returned for requests submitted after Close.
var ErrClosed = errors.New("service: shutting down")

// Options configure a Service. The zero value is usable: GOMAXPROCS
// workers, a 1024-entry cache, a 64-deep queue, 60 s timeout.
type Options struct {
	// Workers bounds concurrently simulating scenarios (0 = GOMAXPROCS).
	Workers int
	// CacheSize is the LRU response cache capacity in entries.
	CacheSize int
	// QueueCap is the admission bound: distinct scenarios admitted but
	// not yet finished beyond this are rejected with ErrQueueFull.
	QueueCap int
	// Timeout bounds one request's wait for its simulation (queueing
	// included). The simulation itself is not cancelled — it completes
	// and populates the cache for the retry.
	Timeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.CacheSize <= 0 {
		o.CacheSize = 1024
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.Timeout <= 0 {
		o.Timeout = 60 * time.Second
	}
	return o
}

// job is one admitted scenario on its way through the batch executor.
type job struct {
	spec   jvm.RunSpec
	digest string
	done   chan struct{} // closed when body/err are final
	body   []byte
	err    error
}

// Service is the cached what-if engine. Construct with New, serve it over
// HTTP via Handler (see http.go), stop it with Close.
type Service struct {
	opts  Options
	pool  *runner.Pool
	cache *lruCache

	mu       sync.Mutex
	inflight map[string]*job // digest → the single job computing it
	queue    chan *job
	closed   bool

	// Fleet sweep backend (SetFleetBackend): when fleetCmd is non-nil,
	// /sweep dispatches uncached cells to worker processes instead of the
	// in-process pool. fleetGate serializes fleet launches: each fleet
	// sweep forks its own worker processes, so N concurrent requests would
	// otherwise fork N*workers children — unbounded process amplification
	// the in-process backend's shared pool never had.
	fleetWorkers int
	fleetCmd     func(i int) (*exec.Cmd, error)
	fleetGate    chan struct{}

	dispatcherDone chan struct{}
	started        time.Time

	// Counters for /metrics (atomics: requests arrive concurrently).
	requests  atomic.Int64 // scenario requests (run + sweep cells)
	hits      atomic.Int64 // served from the LRU
	coalesced atomic.Int64 // joined an in-flight identical scenario
	runs      atomic.Int64 // simulations executed
	rejected  atomic.Int64 // 429s from the admission bound
	timeouts  atomic.Int64 // requests that gave up waiting
	sweeps    atomic.Int64 // sweep grids expanded
	runErrors atomic.Int64 // simulations that failed outright

	// Per-request service time, milliseconds: overall plus one histogram
	// per outcome — a cold run costs a whole simulation, a hit costs an
	// LRU probe, coalesced waiters pay the tail of someone else's run, so
	// lumping them into one distribution hides the service's actual
	// behaviour.
	latency      stats.Histogram
	latCold      stats.Histogram // OutcomeMiss: executed the simulation
	latHit       stats.Histogram // OutcomeHit: served from the LRU
	latCoalesced stats.Histogram // OutcomeCoalesced: joined an in-flight run
}

// New starts a Service: one dispatcher goroutine batching admitted
// scenarios through a bounded worker pool.
func New(opts Options) *Service {
	opts = opts.withDefaults()
	s := &Service{
		opts:           opts,
		pool:           runner.New(opts.Workers),
		cache:          newLRUCache(opts.CacheSize),
		inflight:       make(map[string]*job),
		queue:          make(chan *job, opts.QueueCap),
		fleetGate:      make(chan struct{}, 1),
		dispatcherDone: make(chan struct{}),
		started:        time.Now(),
	}
	go s.dispatch()
	return s
}

// Close drains the queue (every admitted job still completes, so no
// waiter is stranded) and stops the dispatcher. Requests arriving after
// Close get ErrClosed.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.dispatcherDone
		return
	}
	s.closed = true
	close(s.queue) // enqueues happen under mu, so this cannot race a send
	s.mu.Unlock()
	<-s.dispatcherDone
}

// Outcome labels how a request was satisfied (the X-Gcsimd-Cache header).
type Outcome string

const (
	OutcomeHit       Outcome = "hit"       // served from the LRU
	OutcomeMiss      Outcome = "miss"      // ran the simulation
	OutcomeCoalesced Outcome = "coalesced" // joined an identical in-flight run
)

// Run answers one scenario: cache hit, coalesce onto an identical
// in-flight simulation, or admit a new job into the batch executor. The
// returned body is the exact cached byte slice — callers must not mutate
// it.
func (s *Service) Run(ctx context.Context, scn Scenario) (body []byte, out Outcome, err error) {
	t0 := time.Now()
	defer func() {
		ms := float64(time.Since(t0)) / 1e6
		s.latency.Add(ms)
		switch out {
		case OutcomeMiss:
			s.latCold.Add(ms)
		case OutcomeHit:
			s.latHit.Add(ms)
		case OutcomeCoalesced:
			s.latCoalesced.Add(ms)
		}
	}()
	s.requests.Add(1)

	cfg, err := scn.Config()
	if err != nil {
		return nil, "", &BadScenarioError{Err: err}
	}
	digest := cfg.Digest()
	if body, ok := s.cache.Get(digest); ok {
		s.hits.Add(1)
		return body, OutcomeHit, nil
	}

	spec, err := core.BuildRunSpec(cfg)
	if err != nil {
		return nil, "", &BadScenarioError{Err: err}
	}

	if ctx == nil {
		ctx = context.Background()
	}
	// A dead caller must not admit new work: a canceled sweep stream used
	// to keep feeding uncached cells into the pool, simulating for nobody.
	// (Cells admitted before the cancel still finish and cache.)
	if err := ctx.Err(); err != nil {
		return nil, "", err
	}
	j, outcome, err := s.admit(digest, spec)
	if err != nil {
		return nil, "", err
	}
	ctx, cancel := context.WithTimeout(ctx, s.opts.Timeout)
	defer cancel()
	select {
	case <-j.done:
		return j.body, outcome, j.err
	case <-ctx.Done():
		s.timeouts.Add(1)
		return nil, "", ctx.Err()
	}
}

// admit coalesces onto an in-flight job for digest or enqueues a new one,
// enforcing the admission bound.
func (s *Service) admit(digest string, spec jvm.RunSpec) (*job, Outcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, "", ErrClosed
	}
	if j, ok := s.inflight[digest]; ok {
		s.coalesced.Add(1)
		return j, OutcomeCoalesced, nil
	}
	if len(s.inflight) >= s.opts.QueueCap {
		s.rejected.Add(1)
		return nil, "", ErrQueueFull
	}
	j := &job{spec: spec, digest: digest, done: make(chan struct{})}
	// Each in-flight job occupies the channel at most once and admission
	// is gated on the in-flight count, so this send cannot block; the
	// default branch is a belt-and-suspenders reject, not a code path.
	select {
	case s.queue <- j:
	default:
		s.rejected.Add(1)
		return nil, "", ErrQueueFull
	}
	s.inflight[digest] = j
	return j, OutcomeMiss, nil
}

// dispatch is the batch executor: it blocks for one admitted job, drains
// whatever else is already queued into the same batch, and fans the batch
// across the worker pool. Per-worker scratch (runner.Pool's free-list)
// carries event arenas and heap tables from cell to cell, so a busy
// server rebuilds its expensive state once per worker, not once per
// request — even when consecutive cells have completely different
// topologies and scales.
func (s *Service) dispatch() {
	defer close(s.dispatcherDone)
	for {
		j, ok := <-s.queue
		if !ok {
			return
		}
		batch := []*job{j}
	drain:
		for {
			select {
			case next, ok := <-s.queue:
				if !ok {
					break drain
				}
				batch = append(batch, next)
			default:
				break drain
			}
		}
		s.pool.ForEach(len(batch), func(i int) { s.runJob(batch[i]) })
	}
}

// simulate executes one run spec. A package variable so tests can inject
// simulation failures (panics included) without building a pathological
// scenario.
var simulate = jvm.Run

// runJob simulates one admitted scenario on a pool worker, publishes the
// marshaled response into the cache, and releases every waiter.
func (s *Service) runJob(j *job) {
	defer func() {
		if r := recover(); r != nil {
			j.err = fmt.Errorf("service: simulation panicked: %v", r)
			s.finish(j)
		}
	}()
	sc, _ := s.pool.GetScratch().(*jvm.Scratch)
	if sc == nil {
		sc = new(jvm.Scratch)
	}
	// Deferred, not inline after jvm.Run: a panicking simulation used to
	// leak its scratch out of the free-list, and a long-lived server lost
	// one warm arena per panic. Returning a scratch that died mid-run is
	// safe — jvm.Scratch fully reinitializes its tables on acquisition.
	defer s.pool.PutScratch(sc)
	j.spec.Scratch = sc
	body, err := computeBody(j.digest, j.spec)
	s.runs.Add(1)
	if err != nil {
		s.runErrors.Add(1)
		j.err = err
		s.finish(j)
		return
	}
	j.body = body
	s.cache.Add(j.digest, body)
	s.finish(j)
}

// computeBody simulates one spec and marshals the Prediction body the
// cache stores. It is the single compute path shared by the in-process
// executor and fleet sweep workers (ServeFleetWorker), so a cell's bytes
// are identical whichever backend ran it. Every simulation carries a
// pause-postmortem analyzer: blame attribution subscribes to the event
// bus (a small ring suffices — the subscriber sees the whole stream) and
// never perturbs the run, so the body stays deterministic per digest.
func computeBody(digest string, spec jvm.RunSpec) ([]byte, error) {
	tr := evtrace.New(64)
	spec.EvTracer = tr
	an := postmortem.New()
	an.Attach(tr)
	res, err := simulate(spec)
	if err != nil {
		return nil, err
	}
	an.Finish()
	p := predict(digest, res)
	p.Blame = blameOf(an)
	return json.Marshal(p)
}

// finish publishes the job's outcome: cache first (done in runJob), then
// drop it from the in-flight table, then wake the waiters.
func (s *Service) finish(j *job) {
	s.mu.Lock()
	delete(s.inflight, j.digest)
	s.mu.Unlock()
	close(j.done)
}

// BadScenarioError marks client errors (HTTP 400).
type BadScenarioError struct{ Err error }

func (e *BadScenarioError) Error() string { return e.Err.Error() }
func (e *BadScenarioError) Unwrap() error { return e.Err }

// Metrics snapshots the service counters into the unified metrics
// registry's export shape (sorted []evtrace.Metric), the same namespace
// convention the simulator's own layers publish under. Latency histograms
// expand into .p50/.p95/.p99/.count/.sum entries.
func (s *Service) Metrics() []evtrace.Metric {
	return s.registry().Current()
}

// WritePrometheus writes the same snapshot in Prometheus text exposition
// format (counters, gauges, and latency summaries with quantile labels).
func (s *Service) WritePrometheus(w io.Writer) error {
	return s.registry().WritePrometheus(w)
}

// registry snapshots the counters, gauges, and latency histograms into a
// fresh metrics registry — the single source both exposition formats
// (JSON via Metrics, Prometheus text via WritePrometheus) render from.
func (s *Service) registry() *evtrace.Registry {
	reg := evtrace.NewRegistry()
	reg.Counter("service.requests").Set(s.requests.Load())
	reg.Counter("service.cache_hits").Set(s.hits.Load())
	reg.Counter("service.coalesced").Set(s.coalesced.Load())
	reg.Counter("service.runs").Set(s.runs.Load())
	reg.Counter("service.run_errors").Set(s.runErrors.Load())
	reg.Counter("service.rejected").Set(s.rejected.Load())
	reg.Counter("service.timeouts").Set(s.timeouts.Load())
	reg.Counter("service.sweeps").Set(s.sweeps.Load())
	reg.Counter("service.cache_entries").Set(int64(s.cache.Len()))
	reg.Counter("service.workers").Set(int64(s.pool.Workers()))

	s.mu.Lock()
	depth := len(s.queue) + len(s.inflight)
	s.mu.Unlock()
	reg.Gauge("service.queue_depth").Set(float64(depth))

	if n := s.latency.N(); n > 0 {
		reg.Gauge("service.latency_p50_ms").Set(s.latency.Percentile(50))
		reg.Gauge("service.latency_p99_ms").Set(s.latency.Percentile(99))
		reg.Gauge("service.rps").Set(float64(s.requests.Load()) / time.Since(s.started).Seconds())
	}
	hist := func(name string, h *stats.Histogram) {
		if h.N() == 0 {
			return
		}
		eh := reg.Histogram(name)
		h.Each(eh.Observe)
	}
	hist("service.latency_ms", &s.latency)
	hist("service.latency_cold_ms", &s.latCold)
	hist("service.latency_hit_ms", &s.latHit)
	hist("service.latency_coalesced_ms", &s.latCoalesced)
	_, busy := s.pool.Stats()
	wall := time.Since(s.started)
	if wall > 0 && s.pool.Workers() > 0 {
		reg.Gauge("service.worker_busy_frac").Set(
			float64(busy) / (float64(wall) * float64(s.pool.Workers())))
	}
	return reg
}
