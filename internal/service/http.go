package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/internal/experiments"
)

// Wire protocol:
//
//	POST /run     one Scenario  → one Prediction (JSON)
//	POST /sweep   a SweepRequest → NDJSON, one SweepCell line per grid
//	              cell, streamed as cells complete
//	GET  /metrics service counters as sorted JSON metrics
//	GET  /healthz liveness probe
//
// Every /run response carries X-Gcsimd-Cache (hit|miss|coalesced) and
// X-Gcsimd-Digest (the canonical config digest, i.e. the cache key).
// Cache-hit bodies are byte-identical to the cold response that populated
// them — the determinism contract callers can assert against.

const (
	// HeaderCache reports how the response was satisfied.
	HeaderCache = "X-Gcsimd-Cache"
	// HeaderDigest reports the canonical config digest of the scenario.
	HeaderDigest = "X-Gcsimd-Digest"
)

// maxSweepCells bounds one sweep grid; bigger grids are client errors
// (split the sweep) rather than a way to monopolize the server.
const maxSweepCells = 4096

// Handler returns the HTTP interface of the service.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("POST /sweep", s.handleSweep)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	return mux
}

// httpError writes a JSON error body with the status mapped from err.
func httpError(w http.ResponseWriter, err error) {
	var bad *BadScenarioError
	status := http.StatusInternalServerError
	switch {
	case errors.As(err, &bad):
		status = http.StatusBadRequest
	case errors.Is(err, ErrQueueFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		status = http.StatusGatewayTimeout
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func decodeStrict(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func (s *Service) handleRun(w http.ResponseWriter, r *http.Request) {
	var scn Scenario
	if err := decodeStrict(r, &scn); err != nil {
		httpError(w, &BadScenarioError{Err: fmt.Errorf("bad scenario: %w", err)})
		return
	}
	body, outcome, err := s.Run(r.Context(), scn)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(HeaderCache, string(outcome))
	if cfg, cfgErr := scn.Config(); cfgErr == nil {
		w.Header().Set(HeaderDigest, cfg.Digest())
	}
	w.Write(body)
}

// SweepRequest describes a scenario grid: the base scenario plus the axes
// to sweep. Cells are derived in row-major order (the last axis varies
// fastest) via experiments.GridIndexes — the same deterministic
// submission-order numbering the figure harness gives its cells — so
// "cell 17 of this sweep" names the same configuration everywhere.
type SweepRequest struct {
	Base          Scenario `json:"base"`
	Mutators      []int    `json:"mutators,omitempty"`
	GCThreads     []int    `json:"gc_threads,omitempty"`
	HeapMB        []int    `json:"heap_mb,omitempty"`
	Optimizations []string `json:"optimizations,omitempty"`
	Seeds         []int64  `json:"seeds,omitempty"`
}

// Cells expands the grid into scenarios in deterministic cell order.
func (sr SweepRequest) Cells() []Scenario {
	dims := []int{
		len(sr.Mutators), len(sr.GCThreads), len(sr.HeapMB),
		len(sr.Optimizations), len(sr.Seeds),
	}
	grid := experiments.GridIndexes(dims)
	cells := make([]Scenario, len(grid))
	for c, idx := range grid {
		scn := sr.Base
		if len(sr.Mutators) > 0 {
			scn.Mutators = sr.Mutators[idx[0]]
		}
		if len(sr.GCThreads) > 0 {
			scn.GCThreads = sr.GCThreads[idx[1]]
		}
		if len(sr.HeapMB) > 0 {
			scn.HeapMB = sr.HeapMB[idx[2]]
		}
		if len(sr.Optimizations) > 0 {
			scn.Optimizations = sr.Optimizations[idx[3]]
		}
		if len(sr.Seeds) > 0 {
			scn.Seed = sr.Seeds[idx[4]]
		}
		cells[c] = scn
	}
	return cells
}

// SweepCell is one NDJSON progress line of a sweep response. Lines are
// emitted as cells complete (so their order varies with scheduling), but
// each line's content is deterministic for its Index.
type SweepCell struct {
	Index int    `json:"index"`
	Of    int    `json:"of"`
	Cache string `json:"cache,omitempty"`
	// Prediction is the raw cached response body for the cell.
	Prediction json.RawMessage `json:"prediction,omitempty"`
	Error      string          `json:"error,omitempty"`
}

func (s *Service) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeStrict(r, &req); err != nil {
		httpError(w, &BadScenarioError{Err: fmt.Errorf("bad sweep: %w", err)})
		return
	}
	cells := req.Cells()
	if len(cells) > maxSweepCells {
		httpError(w, &BadScenarioError{Err: fmt.Errorf(
			"sweep expands to %d cells, max %d — split it", len(cells), maxSweepCells)})
		return
	}
	if workers, cmd := s.fleetBackend(); cmd != nil {
		s.fleetSweep(w, r, cells, workers, cmd)
		return
	}
	s.sweeps.Add(1)
	w.Header().Set("Content-Type", "application/x-ndjson")

	flusher, _ := w.(http.Flusher)
	var out sync.Mutex
	enc := json.NewEncoder(w)
	emit := func(line SweepCell) {
		out.Lock()
		defer out.Unlock()
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}

	// Fan the cells out through Run — each benefits from the cache and
	// coalescing — but bound the sweep's own concurrency below the
	// admission cap so one grid cannot 429 itself (or starve /run).
	conc := s.pool.Workers()
	if conc > s.opts.QueueCap {
		conc = s.opts.QueueCap
	}
	if conc < 1 {
		conc = 1
	}
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	ctx := r.Context()
	for i, scn := range cells {
		if ctx.Err() != nil {
			// Client disconnected: the remaining cells would simulate
			// into a stream nobody reads. Cells already admitted finish
			// and populate the cache (the documented /run timeout
			// contract); the rest are never admitted. Run also refuses
			// admission on a canceled context, so the guard holds even
			// for a goroutine already past this check.
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, scn Scenario) {
			defer wg.Done()
			defer func() { <-sem }()
			body, outcome, err := s.Run(r.Context(), scn)
			line := SweepCell{Index: i, Of: len(cells)}
			if err != nil {
				line.Error = err.Error()
			} else {
				line.Cache = string(outcome)
				line.Prediction = body
			}
			emit(line)
		}(i, scn)
	}
	wg.Wait()
}

// handleMetrics serves the metrics snapshot. JSON is the default; a
// client whose Accept header asks for text/plain (the convention of
// Prometheus scrapers) gets the text exposition format with latency
// summaries instead.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if accept := r.Header.Get("Accept"); strings.Contains(accept, "text/plain") {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Metrics())
}
