// Package service is the what-if GC tuning daemon behind cmd/gcsimd: an
// HTTP/JSON front end over the deterministic simulator. Clients POST a
// scenario (benchmark, thread counts, heap size, optimization level,
// interference, seed) and get back GC/pause/throughput predictions.
//
// Determinism is the superpower: one scenario always simulates to the
// same result, so responses are cached in an LRU keyed by the canonical
// config digest (core.Config.Digest), identical concurrent requests are
// coalesced onto one simulation (singleflight), and queued scenarios are
// batched through a shared runner.Pool whose per-worker scratch reuse
// keeps marginal cost low. Admission control bounds the queue — a full
// queue rejects rather than collapses (429) — and every request carries a
// timeout.
package service

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/jvm"
	"repro/internal/postmortem"
	"repro/internal/workload"
)

// Scenario is the wire form of one what-if query. The zero value of every
// field means "the default" except Seed, which is a real seed (seed 0 and
// seed 42 are different simulations; there is no implicit default).
type Scenario struct {
	// Benchmark names a built-in workload ("lusearch", "cassandra", ...).
	Benchmark string `json:"benchmark"`
	// Items overrides the benchmark's total work items (quick what-ifs
	// simulate a scaled-down run of the same workload shape).
	Items int `json:"items,omitempty"`

	Mutators  int `json:"mutators,omitempty"`
	GCThreads int `json:"gc_threads,omitempty"`
	HeapMB    int `json:"heap_mb,omitempty"`

	// Optimizations is one of "", "none", "affinity", "steal", "all".
	Optimizations string `json:"optimizations,omitempty"`

	Clients  int `json:"clients,omitempty"`
	Requests int `json:"requests,omitempty"`

	BusyLoops int  `json:"busy_loops,omitempty"`
	SMT       bool `json:"smt,omitempty"`

	Seed int64 `json:"seed,omitempty"`
}

// optLevels maps the wire names onto core's optimization ladder.
var optLevels = map[string]core.Optimizations{
	"":         core.OptNone,
	"none":     core.OptNone,
	"affinity": core.OptAffinity,
	"steal":    core.OptSteal,
	"all":      core.OptAll,
}

// Config resolves the scenario into the core configuration it simulates.
// The error covers everything a client can get wrong: unknown benchmark,
// unknown optimization level, nonsensical counts.
func (s Scenario) Config() (core.Config, error) {
	level, ok := optLevels[s.Optimizations]
	if !ok {
		return core.Config{}, fmt.Errorf("unknown optimizations %q (none|affinity|steal|all)", s.Optimizations)
	}
	if s.Benchmark == "" {
		return core.Config{}, fmt.Errorf("benchmark is required")
	}
	if s.Mutators < 0 || s.GCThreads < 0 || s.HeapMB < 0 || s.Items < 0 ||
		s.Clients < 0 || s.Requests < 0 || s.BusyLoops < 0 {
		return core.Config{}, fmt.Errorf("negative counts are not a thing the testbed simulates")
	}
	cfg := core.Config{
		Mutators:      s.Mutators,
		GCThreads:     s.GCThreads,
		HeapMB:        s.HeapMB,
		Optimizations: level,
		Clients:       s.Clients,
		Requests:      s.Requests,
		BusyLoops:     s.BusyLoops,
		SMT:           s.SMT,
		Seed:          s.Seed,
	}
	if s.Items > 0 {
		p, err := workload.ByName(s.Benchmark)
		if err != nil {
			return core.Config{}, err
		}
		p.TotalItems = s.Items
		cfg.Profile = p
	} else {
		if _, err := workload.ByName(s.Benchmark); err != nil {
			return core.Config{}, err
		}
		cfg.Benchmark = s.Benchmark
	}
	return cfg, nil
}

// Prediction is the response body for one scenario: the predicted GC,
// pause, and throughput behaviour of the configuration. Its JSON encoding
// is deterministic (struct field order, no maps), which is what lets the
// cache serve byte-identical bodies.
type Prediction struct {
	// Digest is the canonical config digest the response is cached under.
	Digest string `json:"digest"`

	// Benchmark/Mutators/GCThreads echo the resolved run parameters —
	// GCThreads in particular reports the HotSpot heuristic's choice when
	// the scenario left it 0.
	Benchmark string `json:"benchmark"`
	Mutators  int    `json:"mutators"`
	GCThreads int    `json:"gc_threads"`

	TotalMs   float64 `json:"total_ms"`
	GCMs      float64 `json:"gc_ms"`
	MutatorMs float64 `json:"mutator_ms"`
	GCRatio   float64 `json:"gc_ratio"`

	MinorGCs   int     `json:"minor_gcs"`
	MajorGCs   int     `json:"major_gcs"`
	PauseAvgMs float64 `json:"pause_avg_ms"`
	PauseMaxMs float64 `json:"pause_max_ms"`

	// Server benchmarks only.
	ThroughputOPS float64 `json:"throughput_ops,omitempty"`
	LatencyP50Ms  float64 `json:"latency_p50_ms,omitempty"`
	LatencyP99Ms  float64 `json:"latency_p99_ms,omitempty"`

	// RunError reports a simulation-level outcome (e.g. OutOfMemoryError)
	// — itself deterministic, hence cacheable.
	RunError string `json:"run_error,omitempty"`

	// Blame is the pause-postmortem summary: where the collections' wall
	// time went (blame buckets) and the dominant §3 pathology family.
	// Deterministic per digest like every other field, so cached bodies
	// carry it byte-identically.
	Blame *BlameSummary `json:"blame,omitempty"`
}

// BlameSummary condenses a run's pause postmortem for the wire: total
// milliseconds and share of pause per blame bucket, the dominant bucket,
// and the classified pathology family.
type BlameSummary struct {
	Pathology string       `json:"pathology"`
	Dominant  string       `json:"dominant"`
	Buckets   []BlameShare `json:"buckets"`
}

// BlameShare is one bucket's slice of the run's total pause.
type BlameShare struct {
	Name  string  `json:"name"`
	Ms    float64 `json:"ms"`
	Share float64 `json:"share"`
}

// blameOf folds the analyzer's roll-up into the wire summary (nil when no
// collection completed — e.g. a run that OOMed before its first GC).
func blameOf(an *postmortem.Analyzer) *BlameSummary {
	pm := an.Postmortem()
	if pm.Collections == 0 {
		return nil
	}
	dominant := postmortem.Bucket(0)
	for b := postmortem.Bucket(1); b < postmortem.NumBuckets; b++ {
		if pm.Totals[b] > pm.Totals[dominant] {
			dominant = b
		}
	}
	bs := &BlameSummary{
		Pathology: pm.Pathology,
		Dominant:  dominant.String(),
		Buckets:   make([]BlameShare, postmortem.NumBuckets),
	}
	for b := postmortem.Bucket(0); b < postmortem.NumBuckets; b++ {
		share := 0.0
		if pm.TotalPauseNs > 0 {
			share = float64(pm.Totals[b]) / float64(pm.TotalPauseNs)
		}
		bs.Buckets[b] = BlameShare{
			Name:  b.String(),
			Ms:    float64(pm.Totals[b]) / 1e6,
			Share: share,
		}
	}
	return bs
}

// predict folds a finished run into its response shape.
func predict(digest string, res *jvm.Result) Prediction {
	p := Prediction{
		Digest:    digest,
		Benchmark: res.Benchmark,
		Mutators:  res.Mutators,
		GCThreads: res.GCThreads,
		TotalMs:   res.TotalTime.Millis(),
		GCMs:      res.GCTime.Millis(),
		MutatorMs: res.MutatorTime.Millis(),
		GCRatio:   res.GCRatio(),
		MinorGCs:  res.MinorGCs,
		MajorGCs:  res.MajorGCs,
	}
	var worst, sum float64
	for _, rep := range res.Reports {
		ms := rep.Pause().Millis()
		sum += ms
		if ms > worst {
			worst = ms
		}
	}
	if n := len(res.Reports); n > 0 {
		p.PauseAvgMs = sum / float64(n)
		p.PauseMaxMs = worst
	}
	if res.Latency != nil && res.Latency.N() > 0 {
		p.ThroughputOPS = res.ThroughputOPS
		p.LatencyP50Ms = res.Latency.Median()
		p.LatencyP99Ms = res.Latency.Percentile(99)
	}
	if res.Err != nil {
		p.RunError = res.Err.Error()
	}
	return p
}
