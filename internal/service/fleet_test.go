package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"sync/atomic"
	"testing"

	"repro/internal/fleet"
)

// TestMain turns the test binary into a fleet sweep worker when
// GCSIMD_TEST_FLEET_WORKER is set, mirroring how cmd/gcsimd re-invokes
// itself with -fleet-worker — the fleet backend tests re-exec the test
// binary as their worker processes.
func TestMain(m *testing.M) {
	if os.Getenv("GCSIMD_TEST_FLEET_WORKER") == "1" {
		if err := ServeFleetWorker(os.Stdin, os.Stdout, fleet.WorkerOptions{}); err != nil {
			fmt.Fprintln(os.Stderr, "fleet worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func selfFleetCommand(t *testing.T) func(int) (*exec.Cmd, error) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	return func(int) (*exec.Cmd, error) {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), "GCSIMD_TEST_FLEET_WORKER=1")
		cmd.Stderr = os.Stderr
		return cmd, nil
	}
}

// sweepPredictions POSTs one sweep and decodes the NDJSON stream into
// per-index prediction bodies (and per-index cache outcomes).
func sweepPredictions(t *testing.T, url string, req SweepRequest) (map[int]string, map[int]string) {
	t.Helper()
	resp := postJSON(t, url+"/sweep", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}
	preds := make(map[int]string)
	caches := make(map[int]string)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line SweepCell
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Error != "" {
			t.Fatalf("cell %d error: %s", line.Index, line.Error)
		}
		preds[line.Index] = string(line.Prediction)
		caches[line.Index] = line.Cache
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return preds, caches
}

// TestFleetSweepMatchesInProcess is the backend byte-identity oracle:
// /sweep answered by worker processes must stream per-cell prediction
// bodies byte-identical to the in-process pool's, and the cells it
// computes must land in the cache (a second sweep is all hits).
func TestFleetSweepMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	req := SweepRequest{
		Base:     tinyScenario(),
		Mutators: []int{2, 4},
		Seeds:    []int64{7, 11, 13},
	}

	inproc := newTestService(t, Options{Workers: 2})
	inprocSrv := httptest.NewServer(inproc.Handler())
	defer inprocSrv.Close()
	want, _ := sweepPredictions(t, inprocSrv.URL, req)

	fleetSvc := newTestService(t, Options{Workers: 2})
	fleetSvc.SetFleetBackend(2, selfFleetCommand(t))
	fleetSrv := httptest.NewServer(fleetSvc.Handler())
	defer fleetSrv.Close()
	got, caches := sweepPredictions(t, fleetSrv.URL, req)

	if len(got) != len(want) || len(got) != 6 {
		t.Fatalf("got %d cells, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("cell %d: fleet prediction differs from in-process\nfleet:     %s\ninprocess: %s", i, got[i], w)
		}
		if caches[i] != string(OutcomeMiss) {
			t.Errorf("cell %d: first fleet sweep cache=%q, want miss", i, caches[i])
		}
	}

	// The fleet-computed bodies populated the cache: sweep again and every
	// cell must come back a byte-identical hit without touching a worker.
	again, caches := sweepPredictions(t, fleetSrv.URL, req)
	for i, w := range got {
		if again[i] != w {
			t.Errorf("cell %d: cached body differs from fleet body", i)
		}
		if caches[i] != string(OutcomeHit) {
			t.Errorf("cell %d: second sweep cache=%q, want hit", i, caches[i])
		}
	}
}

// TestFleetSweepGateShedsDisconnectedWaiter covers the fleet-launch gate:
// while another sweep holds the gate, a request whose client has already
// disconnected must give up without forking a single worker process —
// the cap on process amplification the in-process backend never needed.
func TestFleetSweepGateShedsDisconnectedWaiter(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	s.fleetGate <- struct{}{} // another sweep's fleet is running
	defer func() { <-s.fleetGate }()

	var spawned atomic.Int32
	cmd := func(int) (*exec.Cmd, error) {
		spawned.Add(1)
		return nil, fmt.Errorf("gate test: must not spawn")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // client already gone
	req := httptest.NewRequest(http.MethodPost, "/sweep", nil).WithContext(ctx)
	s.fleetSweep(httptest.NewRecorder(), req, []Scenario{tinyScenario()}, 1, cmd)
	if n := spawned.Load(); n != 0 {
		t.Fatalf("fleet forked %d workers while the gate was held and the client gone", n)
	}
}

// TestFleetWorkerRejectsGarbagePayload exercises the worker-side payload
// decode path: a payload that is not a Scenario folds into a Failed
// record (an error line downstream), never a worker crash.
func TestFleetWorkerRejectsGarbagePayload(t *testing.T) {
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	done := make(chan error, 1)
	go func() { done <- ServeFleetWorker(inR, outW, fleet.WorkerOptions{}) }()

	read := func(want fleet.MsgType) *fleet.Envelope {
		t.Helper()
		var env fleet.Envelope
		for {
			if err := fleet.ReadMsg(outR, &env); err != nil {
				t.Fatalf("reading worker output: %v", err)
			}
			if env.Type == fleet.MsgPong {
				continue
			}
			if env.Type != want {
				t.Fatalf("got %s frame, want %s", env.Type, want)
			}
			return &env
		}
	}
	read(fleet.MsgHello)
	fleet.WriteMsg(inW, &fleet.Envelope{Type: fleet.MsgShard, Shard: 0, Lo: 0, Hi: 1,
		Payloads: []json.RawMessage{json.RawMessage(`{"benchmark":42}`)}})
	cell := read(fleet.MsgCell)
	if cell.Record == nil || !cell.Record.Failed {
		t.Fatalf("garbage payload produced %+v, want a Failed record", cell.Record)
	}
	read(fleet.MsgShardDone)
	fleet.WriteMsg(inW, &fleet.Envelope{Type: fleet.MsgDrain})
	read(fleet.MsgBye)
	inW.Close()
	if err := <-done; err != nil {
		t.Fatalf("ServeFleetWorker: %v", err)
	}
}
