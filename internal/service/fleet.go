package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"sync"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/jvm"
)

// SetFleetBackend routes /sweep's uncached cells through the fleet
// coordinator instead of the in-process pool: cells are marshaled as
// opaque payloads and dispatched to workers worker processes built by
// cmd (each must speak the fleet protocol on stdin/stdout —
// ServeFleetWorker is the worker side; cmd/gcsimd wires it up as a
// re-invocation of itself with -fleet-worker). Cache probing, NDJSON
// streaming, and the response shape are unchanged; cell bodies are
// byte-identical to the in-process backend because both run computeBody.
// workers <= 0 disables the backend.
func (s *Service) SetFleetBackend(workers int, cmd func(i int) (*exec.Cmd, error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if workers <= 0 || cmd == nil {
		s.fleetWorkers, s.fleetCmd = 0, nil
		return
	}
	s.fleetWorkers, s.fleetCmd = workers, cmd
}

// fleetBackend snapshots the configured backend (nil cmd = disabled).
func (s *Service) fleetBackend() (int, func(i int) (*exec.Cmd, error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fleetWorkers, s.fleetCmd
}

// ServeFleetWorker is the worker side of the fleet sweep backend: it
// executes scenario payloads with the same compute path the in-process
// executor uses and streams prediction bodies back as cell records. One
// scratch lives for the whole process and is reused across cells —
// scratch pooling stays per-process; the free-list never crosses the
// protocol.
func ServeFleetWorker(in io.Reader, out io.Writer, opts fleet.WorkerOptions) error {
	sc := new(jvm.Scratch)
	run := func(index int, payload json.RawMessage) (fleet.CellRecord, error) {
		var scn Scenario
		if err := json.Unmarshal(payload, &scn); err != nil {
			return fleet.CellRecord{}, fmt.Errorf("bad scenario payload: %w", err)
		}
		cfg, err := scn.Config()
		if err != nil {
			return fleet.CellRecord{}, err
		}
		digest := cfg.Digest()
		spec, err := core.BuildRunSpec(cfg)
		if err != nil {
			return fleet.CellRecord{}, err
		}
		spec.Scratch = sc
		body, err := computeBody(digest, spec)
		if err != nil {
			return fleet.CellRecord{}, err
		}
		return fleet.CellRecord{Index: index, Digest: digest, Body: body}, nil
	}
	return fleet.ServeWorker(in, out, run, opts)
}

// fleetSweep answers one /sweep request through the fleet backend: cache
// hits are streamed immediately, the uncached remainder is dispatched to
// worker processes, and each record streams (and caches) as it lands.
// Client disconnect cancels the request context, which drains the fleet —
// in-flight cells finish and cache, undispatched cells never run.
func (s *Service) fleetSweep(w http.ResponseWriter, r *http.Request, cells []Scenario, workers int, cmd func(i int) (*exec.Cmd, error)) {
	s.sweeps.Add(1)
	w.Header().Set("Content-Type", "application/x-ndjson")

	flusher, _ := w.(http.Flusher)
	var out sync.Mutex
	enc := json.NewEncoder(w)
	emit := func(line SweepCell) {
		out.Lock()
		defer out.Unlock()
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}

	// Probe the cache first: hits stream immediately and never reach the
	// fleet. The misses keep their original sweep indexes so lines are
	// indistinguishable from the in-process backend's.
	type miss struct {
		orig    int
		digest  string
		payload json.RawMessage
	}
	var misses []miss
	var payloads []json.RawMessage
	for i, scn := range cells {
		s.requests.Add(1)
		cfg, err := scn.Config()
		if err != nil {
			emit(SweepCell{Index: i, Of: len(cells), Error: (&BadScenarioError{Err: err}).Error()})
			continue
		}
		digest := cfg.Digest()
		if body, ok := s.cache.Get(digest); ok {
			s.hits.Add(1)
			emit(SweepCell{Index: i, Of: len(cells), Cache: string(OutcomeHit), Prediction: body})
			continue
		}
		payload, err := json.Marshal(scn)
		if err != nil {
			emit(SweepCell{Index: i, Of: len(cells), Error: err.Error()})
			continue
		}
		misses = append(misses, miss{orig: i, digest: digest})
		payloads = append(payloads, payload)
	}
	if len(misses) == 0 {
		return
	}

	// One fleet at a time: each launch forks its own worker processes, so
	// concurrent requests would multiply children without bound. Cache hits
	// already streamed above; the uncached remainder waits its turn (or
	// gives up with the disconnecting client).
	select {
	case s.fleetGate <- struct{}{}:
		defer func() { <-s.fleetGate }()
	case <-r.Context().Done():
		return
	}

	cfg := fleet.Config{
		Cells:    len(misses),
		Payloads: payloads,
		Workers:  workers,
		Command:  cmd,
		OnRecord: func(rec fleet.CellRecord) {
			m := misses[rec.Index]
			line := SweepCell{Index: m.orig, Of: len(cells)}
			if rec.Failed {
				s.runErrors.Add(1)
				line.Error = rec.Summary
			} else {
				s.runs.Add(1)
				line.Cache = string(OutcomeMiss)
				line.Prediction = rec.Body
				s.cache.Add(m.digest, rec.Body)
			}
			emit(line)
		},
	}
	if _, err := fleet.Run(r.Context(), cfg); err != nil && !errors.Is(err, fleet.ErrDrained) {
		// Worker-infrastructure failure: cells already emitted stand; the
		// stream just ends early. There is no way to signal a late error
		// on a 200 NDJSON stream beyond that. A drain (client gone) is
		// the cancellation contract working, not an error.
		s.runErrors.Add(1)
	}
}
