package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/jvm"
)

func tinyScenario() Scenario {
	return Scenario{Benchmark: "lusearch", Items: 1500, Mutators: 4, GCThreads: 4, Seed: 7}
}

func newTestService(t *testing.T, opts Options) *Service {
	t.Helper()
	s := New(opts)
	t.Cleanup(s.Close)
	return s
}

func postJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// A cache hit must return the byte-identical body of the cold run that
// populated it, flagged by the X-Gcsimd-Cache header.
func TestCacheHitByteIdenticalOverHTTP(t *testing.T) {
	s := newTestService(t, Options{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func() (string, []byte) {
		resp := postJSON(t, srv.URL+"/run", tinyScenario())
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("status %d: %s", resp.StatusCode, b)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Header.Get(HeaderDigest) == "" {
			t.Error("missing digest header")
		}
		return resp.Header.Get(HeaderCache), body
	}

	outcome1, cold := get()
	outcome2, warm := get()
	if outcome1 != string(OutcomeMiss) {
		t.Errorf("first request outcome = %q, want miss", outcome1)
	}
	if outcome2 != string(OutcomeHit) {
		t.Errorf("second request outcome = %q, want hit", outcome2)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("cache hit body differs from cold run:\n%s\nvs\n%s", warm, cold)
	}

	var p Prediction
	if err := json.Unmarshal(cold, &p); err != nil {
		t.Fatalf("body is not a Prediction: %v", err)
	}
	if p.TotalMs <= 0 || p.MinorGCs == 0 || p.Digest == "" {
		t.Errorf("implausible prediction: %+v", p)
	}
}

// Identical concurrent scenarios must coalesce onto one simulation.
func TestInFlightCoalescing(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	const n = 8
	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, outcome, err := s.Run(context.Background(), tinyScenario())
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			outcomes[i], bodies[i] = outcome, body
		}(i)
	}
	wg.Wait()

	if got := s.runs.Load(); got != 1 {
		t.Errorf("%d identical concurrent scenarios ran %d simulations, want 1", n, got)
	}
	var miss, other int
	for i, o := range outcomes {
		if o == OutcomeMiss {
			miss++
		} else {
			other++
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d body differs", i)
		}
	}
	if miss != 1 {
		t.Errorf("%d misses, want exactly 1 (rest coalesced/hit)", miss)
	}
	_ = other
}

// The admission bound must shed load with ErrQueueFull (HTTP 429)
// instead of queueing without limit. Deterministic: wedge the in-flight
// table to capacity with jobs that never finish, then knock.
func TestQueueFullRejects(t *testing.T) {
	s := newTestService(t, Options{Workers: 1, QueueCap: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	wedge := func() {
		s.mu.Lock()
		s.inflight["wedge-a"] = &job{done: make(chan struct{})}
		s.inflight["wedge-b"] = &job{done: make(chan struct{})}
		s.mu.Unlock()
	}
	unwedge := func() {
		s.mu.Lock()
		delete(s.inflight, "wedge-a")
		delete(s.inflight, "wedge-b")
		s.mu.Unlock()
	}

	wedge()
	if _, _, err := s.Run(context.Background(), tinyScenario()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	resp := postJSON(t, srv.URL+"/run", tinyScenario())
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("full queue over HTTP: status %d, want 429", resp.StatusCode)
	}
	if got := s.rejected.Load(); got != 2 {
		t.Errorf("rejected counter = %d, want 2", got)
	}

	unwedge()
	body, outcome, err := s.Run(context.Background(), tinyScenario())
	if err != nil {
		t.Fatalf("after queue drained: %v", err)
	}
	if outcome != OutcomeMiss || len(body) == 0 {
		t.Errorf("after queue drained: outcome %q, %d body bytes", outcome, len(body))
	}
}

func TestRequestTimeout(t *testing.T) {
	s := newTestService(t, Options{Timeout: time.Nanosecond})
	_, _, err := s.Run(context.Background(), tinyScenario())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if s.timeouts.Load() == 0 {
		t.Error("timeout not counted")
	}
}

func TestBadScenarioIs400(t *testing.T) {
	s := newTestService(t, Options{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	for name, scn := range map[string]any{
		"unknown benchmark": Scenario{Benchmark: "nope"},
		"no benchmark":      Scenario{},
		"bad opt level":     Scenario{Benchmark: "lusearch", Optimizations: "warp-speed"},
		"unknown field":     map[string]any{"benchmark": "lusearch", "warp": 9},
	} {
		resp := postJSON(t, srv.URL+"/run", scn)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// A sweep streams one NDJSON line per grid cell; rerunning the sweep
// serves every cell from the cache with byte-identical predictions.
func TestSweepNDJSONAndCacheReplay(t *testing.T) {
	s := newTestService(t, Options{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	req := SweepRequest{
		Base:          tinyScenario(),
		Mutators:      []int{2, 4},
		Optimizations: []string{"none", "all"},
	}
	collect := func() map[int]SweepCell {
		resp := postJSON(t, srv.URL+"/sweep", req)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("sweep status %d: %s", resp.StatusCode, b)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Errorf("content type %q", ct)
		}
		lines := map[int]SweepCell{}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			var cell SweepCell
			if err := json.Unmarshal(sc.Bytes(), &cell); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
			}
			if cell.Error != "" {
				t.Errorf("cell %d failed: %s", cell.Index, cell.Error)
			}
			lines[cell.Index] = cell
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		return lines
	}

	first := collect()
	if len(first) != 4 {
		t.Fatalf("sweep returned %d cells, want 4", len(first))
	}
	for i := 0; i < 4; i++ {
		if _, ok := first[i]; !ok {
			t.Fatalf("cell %d missing from sweep", i)
		}
		if first[i].Of != 4 {
			t.Errorf("cell %d Of = %d, want 4", i, first[i].Of)
		}
	}
	// Distinct cells are distinct configurations.
	if bytes.Equal(first[0].Prediction, first[3].Prediction) {
		t.Error("corner cells returned identical predictions")
	}

	second := collect()
	for i := 0; i < 4; i++ {
		if second[i].Cache != string(OutcomeHit) {
			t.Errorf("replayed cell %d outcome = %q, want hit", i, second[i].Cache)
		}
		if !bytes.Equal(first[i].Prediction, second[i].Prediction) {
			t.Errorf("cell %d replay differs:\n%s\nvs\n%s", i, second[i].Prediction, first[i].Prediction)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTestService(t, Options{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	postJSON(t, srv.URL+"/run", tinyScenario()).Body.Close()
	postJSON(t, srv.URL+"/run", tinyScenario()).Body.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var metrics []struct {
		Name  string  `json:"name"`
		Value float64 `json:"value"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, m := range metrics {
		byName[m.Name] = m.Value
	}
	if byName["service.requests"] != 2 || byName["service.cache_hits"] != 1 || byName["service.runs"] != 1 {
		t.Errorf("counters wrong: %+v", byName)
	}
	for _, want := range []string{"service.latency_p50_ms", "service.latency_p99_ms", "service.queue_depth", "service.workers"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("metric %s missing", want)
		}
	}

	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", hresp.StatusCode)
	}
}

// The sweep grid derivation is row-major with the last axis fastest, and
// oversize grids are client errors.
func TestSweepCellDerivation(t *testing.T) {
	req := SweepRequest{
		Base:     Scenario{Benchmark: "lusearch"},
		Mutators: []int{1, 2},
		Seeds:    []int64{10, 20, 30},
	}
	cells := req.Cells()
	if len(cells) != 6 {
		t.Fatalf("expanded to %d cells, want 6", len(cells))
	}
	want := []struct {
		mut  int
		seed int64
	}{{1, 10}, {1, 20}, {1, 30}, {2, 10}, {2, 20}, {2, 30}}
	for i, w := range want {
		if cells[i].Mutators != w.mut || cells[i].Seed != w.seed {
			t.Errorf("cell %d = (mut=%d seed=%d), want (%d, %d)",
				i, cells[i].Mutators, cells[i].Seed, w.mut, w.seed)
		}
	}

	s := newTestService(t, Options{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	huge := SweepRequest{Base: Scenario{Benchmark: "lusearch"}}
	for i := 0; i < 5000; i++ {
		huge.Seeds = append(huge.Seeds, int64(i))
	}
	resp := postJSON(t, srv.URL+"/sweep", huge)
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(b), "split") {
		t.Errorf("oversize sweep: status %d body %s", resp.StatusCode, b)
	}
}

// Seed 0 and seed 42 must be distinct cache keys end to end (the
// service-level face of the core seed-aliasing fix).
func TestServiceSeedZeroDistinct(t *testing.T) {
	s := newTestService(t, Options{})
	scn0 := tinyScenario()
	scn0.Seed = 0
	scn42 := tinyScenario()
	scn42.Seed = 42

	b0, o0, err := s.Run(context.Background(), scn0)
	if err != nil {
		t.Fatal(err)
	}
	b42, o42, err := s.Run(context.Background(), scn42)
	if err != nil {
		t.Fatal(err)
	}
	if o0 != OutcomeMiss || o42 != OutcomeMiss {
		t.Fatalf("outcomes %q/%q: seed 42 aliased onto seed 0's cache entry", o0, o42)
	}
	var p0, p42 Prediction
	if err := json.Unmarshal(b0, &p0); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b42, &p42); err != nil {
		t.Fatal(err)
	}
	if p0.Digest == p42.Digest {
		t.Fatalf("seed 0 and 42 share digest %s", p0.Digest)
	}
	if fmt.Sprintf("%.6f", p0.TotalMs) == fmt.Sprintf("%.6f", p42.TotalMs) &&
		p0.GCMs == p42.GCMs && p0.MinorGCs == p42.MinorGCs {
		t.Errorf("seed 0 and 42 produced identical predictions: %+v", p0)
	}
}

// TestPanickedSimulationReturnsScratch is the regression test for the
// scratch leak: a panicking simulation used to skip PutScratch (it was
// called inline after jvm.Run), stranding the worker's warm arena. The
// deferred return must leave the free-list whole.
func TestPanickedSimulationReturnsScratch(t *testing.T) {
	old := simulate
	t.Cleanup(func() { simulate = old })
	simulate = func(jvm.RunSpec) (*jvm.Result, error) { panic("injected simulation panic") }

	s := newTestService(t, Options{Workers: 1})
	_, _, err := s.Run(context.Background(), tinyScenario())
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want a simulation-panicked error", err)
	}
	if sc := s.pool.GetScratch(); sc == nil {
		t.Fatal("panicked simulation stranded its scratch: free-list is empty")
	}
}

// TestSweepClientDisconnectStopsAdmission asserts the /sweep cancellation
// contract: once the client hangs up mid-stream, the pool must stop
// receiving new cells. (Cells admitted before the disconnect may finish
// and cache — only further admission must stop.)
func TestSweepClientDisconnectStopsAdmission(t *testing.T) {
	s := newTestService(t, Options{Workers: 1, QueueCap: 8})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// 48 distinct cells (distinct seeds → distinct digests, no cache
	// help); with one worker the sweep takes long enough to disconnect
	// mid-stream.
	req := SweepRequest{Base: tinyScenario()}
	for seed := int64(1); seed <= 48; seed++ {
		req.Seeds = append(req.Seeds, seed)
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, "POST", srv.URL+"/sweep", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read one streamed line, then hang up.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("reading first sweep line: %v", err)
	}
	cancel()

	// Wait for the already-admitted tail to drain: the service must go
	// idle AND the run counter must stop moving (a job leaves the
	// inflight map just before its counter bump, so idleness alone can
	// race one final increment). Once stable, no new cells reached the
	// pool — and far fewer than the full grid ran.
	deadline := time.Now().Add(10 * time.Second)
	runs := s.runs.Load()
	stableSince := time.Now()
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		s.mu.Lock()
		idle := len(s.inflight) == 0 && len(s.queue) == 0
		s.mu.Unlock()
		if cur := s.runs.Load(); cur != runs {
			runs = cur
			stableSince = time.Now()
			continue
		}
		if idle && time.Since(stableSince) >= 500*time.Millisecond {
			break
		}
	}
	if time.Now().After(deadline) {
		t.Fatalf("pool never went quiescent after disconnect: runs still moving at %d", runs)
	}
	if runs >= 48 {
		t.Fatalf("all %d cells simulated despite mid-stream disconnect", runs)
	}
}
