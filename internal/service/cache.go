package service

import (
	"container/list"
	"sync"
)

// lruCache is a bounded map from canonical config digest to the marshaled
// response body served for it. Hits move the entry to the front; inserts
// beyond the capacity evict the least recently used entry. Values are the
// exact bytes written to the first (cold) requester, so a hit is
// byte-identical to the run that populated it.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List               // front = most recently used
	items map[string]*list.Element // digest → element whose Value is *cacheEntry
}

type cacheEntry struct {
	key  string
	body []byte
}

func newLRUCache(capacity int) *lruCache {
	if capacity <= 0 {
		capacity = 1024
	}
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached body for key, refreshing its recency.
func (c *lruCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Add stores body under key, evicting the oldest entry when full. An
// existing entry is replaced (determinism makes the bodies identical
// anyway, so replacement is only a recency refresh).
func (c *lruCache) Add(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
}

// Len reports the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
