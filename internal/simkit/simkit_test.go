package simkit

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000µs"},
		{3 * Millisecond, "3.000ms"},
		{Second + 500*Millisecond, "1.500s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v, want 2", got)
	}
	if got := (5 * Millisecond).Millis(); got != 5.0 {
		t.Errorf("Millis() = %v, want 5", got)
	}
}

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired in order %v, want [1 2 3]", order)
	}
	if s.Now() != 30 {
		t.Errorf("Now() = %v, want 30", s.Now())
	}
}

func TestEventTieBreakBySequence(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of insertion order: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New(1)
	var at Time
	s.At(50, func() {
		s.After(25, func() { at = s.Now() })
	})
	s.Run()
	if at != 75 {
		t.Errorf("After fired at %v, want 75", at)
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.At(10, func() { fired = true })
	s.Cancel(e)
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if e.Pending() {
		t.Error("cancelled event still pending")
	}
	// Cancelling again, or cancelling the zero Event, must be a no-op.
	s.Cancel(e)
	s.Cancel(Event{})
}

func TestCancelFromWithinEvent(t *testing.T) {
	s := New(1)
	fired := false
	var e2 Event
	s.At(10, func() { s.Cancel(e2) })
	e2 = s.At(20, func() { fired = true })
	s.Run()
	if fired {
		t.Error("event cancelled by earlier event still fired")
	}
}

func TestPastSchedulingClampsToNow(t *testing.T) {
	s := New(1)
	var at Time
	s.At(100, func() {
		s.At(5, func() { at = s.Now() }) // in the past
	})
	s.Run()
	if at != 100 {
		t.Errorf("past event fired at %v, want clamped to 100", at)
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []Time
	for _, tt := range []Time{10, 20, 30, 40} {
		tt := tt
		s.At(tt, func() { fired = append(fired, tt) })
	}
	s.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(25) fired %v, want events at 10, 20", fired)
	}
	if s.Now() != 25 {
		t.Errorf("Now() = %v, want 25", s.Now())
	}
	s.RunUntil(100)
	if len(fired) != 4 {
		t.Errorf("after RunUntil(100) fired %v, want all 4", fired)
	}
}

func TestRunFor(t *testing.T) {
	s := New(1)
	n := 0
	s.At(5, func() { n++ })
	s.At(15, func() { n++ })
	s.RunFor(10)
	if n != 1 || s.Now() != 10 {
		t.Errorf("RunFor(10): n=%d now=%v, want n=1 now=10", n, s.Now())
	}
}

func TestDeterministicRNG(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different random streams")
		}
	}
}

func TestClockMonotonic(t *testing.T) {
	// Property: regardless of the scheduling pattern, the clock never goes
	// backwards while firing events.
	check := func(offsets []uint16) bool {
		s := New(7)
		last := Time(-1)
		ok := true
		for _, off := range offsets {
			s.At(Time(off), func() {
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
			})
		}
		s.Run()
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFiredCount(t *testing.T) {
	s := New(1)
	for i := 0; i < 5; i++ {
		s.At(Time(i), func() {})
	}
	e := s.At(10, func() {})
	s.Cancel(e)
	s.Run()
	if s.Fired() != 5 {
		t.Errorf("Fired() = %d, want 5", s.Fired())
	}
}

func TestCoroBasic(t *testing.T) {
	s := New(1)
	c := NewCoro(s, func(yield func(int)) {
		yield(1)
		yield(2)
		yield(3)
	})
	for want := 1; want <= 3; want++ {
		v, ok := c.Next()
		if !ok || v != want {
			t.Fatalf("Next() = (%d, %v), want (%d, true)", v, ok, want)
		}
	}
	if _, ok := c.Next(); ok {
		t.Error("Next() after body return reported ok")
	}
	if !c.Done() {
		t.Error("Done() = false after completion")
	}
	// Next on a finished coroutine stays safe.
	if _, ok := c.Next(); ok {
		t.Error("Next() on finished coroutine reported ok")
	}
}

func TestCoroLockstep(t *testing.T) {
	// The body must only advance while the driver is inside Next.
	s := New(1)
	stage := 0
	c := NewCoro(s, func(yield func(int)) {
		stage = 1
		yield(0)
		stage = 2
		yield(0)
		stage = 3
	})
	if stage != 0 {
		t.Fatal("body ran before first Next")
	}
	c.Next()
	if stage != 1 {
		t.Fatalf("stage = %d after first Next, want 1", stage)
	}
	c.Next()
	if stage != 2 {
		t.Fatalf("stage = %d after second Next, want 2", stage)
	}
	c.Next()
	if stage != 3 {
		t.Fatalf("stage = %d after final Next, want 3", stage)
	}
}

func TestCoroStopReleasesGoroutine(t *testing.T) {
	s := New(1)
	cleanup := false
	c := NewCoro(s, func(yield func(int)) {
		defer func() { cleanup = true }()
		yield(1)
		yield(2)
	})
	c.Next()
	c.Stop()
	if !c.Done() {
		t.Error("Done() = false after Stop")
	}
	if _, ok := c.Next(); ok {
		t.Error("Next() after Stop reported ok")
	}
	// Stop is synchronous: the body's deferred functions have run.
	if !cleanup {
		t.Error("deferred cleanup did not run before Stop returned")
	}
	// Stop twice is a no-op.
	c.Stop()
}

func TestCoroStopBeforeStart(t *testing.T) {
	s := New(1)
	ran := false
	c := NewCoro(s, func(yield func(int)) { ran = true })
	c.Stop()
	if _, ok := c.Next(); ok {
		t.Error("Next() after Stop-before-start reported ok")
	}
	if ran {
		t.Error("body ran despite Stop before first Next")
	}
}

func TestSimCloseStopsCoros(t *testing.T) {
	s := New(1)
	var cs []*Coro[int]
	for i := 0; i < 10; i++ {
		c := NewCoro(s, func(yield func(int)) {
			for {
				yield(0)
			}
		})
		c.Next()
		cs = append(cs, c)
	}
	s.Close()
	for i, c := range cs {
		if !c.Done() {
			t.Errorf("coroutine %d not stopped by Sim.Close", i)
		}
	}
	s.Close() // idempotent
}

func TestCoroManyInterleaved(t *testing.T) {
	// Drive several coroutines in a round-robin and verify each maintains
	// independent state.
	s := New(1)
	const n = 8
	cs := make([]*Coro[int], n)
	for i := 0; i < n; i++ {
		base := i * 100
		cs[i] = NewCoro(s, func(yield func(int)) {
			for k := 0; k < 5; k++ {
				yield(base + k)
			}
		})
	}
	for k := 0; k < 5; k++ {
		for i := 0; i < n; i++ {
			v, ok := cs[i].Next()
			if !ok || v != i*100+k {
				t.Fatalf("coro %d round %d: got (%d,%v), want (%d,true)", i, k, v, ok, i*100+k)
			}
		}
	}
}

func TestCoroBodyPanicPropagatesToNext(t *testing.T) {
	// A real panic in the body (not the internal stop sentinel) must reach
	// the driver's Next call, not vanish inside the coroutine goroutine.
	c := NewCoro(nil, func(yield func(int)) {
		yield(1)
		panic("boom")
	})
	if v, ok := c.Next(); !ok || v != 1 {
		t.Fatalf("first Next = (%v, %v), want (1, true)", v, ok)
	}
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want body panic value", r)
		}
	}()
	c.Next()
	t.Error("second Next returned instead of panicking")
}
