// Package simkit provides a deterministic discrete-event simulation kernel:
// a virtual nanosecond clock, a cancellable event queue, a seeded random
// number generator, and cooperative coroutine processes.
//
// All upper layers of this repository (the CFS scheduler model, the HotSpot
// monitor model, the Parallel Scavenge engine) are built on this kernel.
// Determinism is guaranteed by (a) a total order on events — (time, sequence
// number) — and (b) the coroutine machinery, which ensures at most one
// simulated process executes at any moment.
//
// The kernel is engineered for throughput: every benchmark run replays on
// the order of 10⁵ events, and hundreds of runs back each figure, so the
// per-event cost bounds the whole experiment catalog. Events live in a
// pooled arena (pool.go) addressed by generation-checked handles, and the
// pending queue is an inlined 4-ary heap (heap4.go); in steady state the
// schedule/fire/cancel path performs no allocations.
package simkit

import (
	"fmt"
	"math/rand"

	"repro/internal/evtrace"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Convenient duration units (Time doubles as a duration type).
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders a Time using the most readable unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Event is a handle to a scheduled callback. It can be cancelled until it
// fires. Event is a small value (not a pointer): the callback's storage
// lives in the Sim's pool and is recycled once the event fires or is
// cancelled. The generation captured in the handle makes operations on a
// stale handle (one whose record has been recycled) safe no-ops. The zero
// Event is inert: not pending, and cancelling it does nothing.
type Event struct {
	s    *Sim
	gen  uint64
	slot int32
}

// At reports when the event is scheduled to fire, or 0 if the event has
// already fired or been cancelled.
func (e Event) At() Time {
	if !e.Pending() {
		return 0
	}
	return e.s.events[e.slot].at
}

// Pending reports whether the event is still scheduled.
func (e Event) Pending() bool {
	return e.s != nil && e.s.events[e.slot].gen == e.gen
}

// Sim is a discrete-event simulator instance. It is not safe for concurrent
// use; the whole simulation is single-threaded by design.
type Sim struct {
	now     Time
	seq     uint64
	pq      []heapEnt  // pending events, 4-ary min-heap by (at, seq)
	events  []eventRec // pooled event records, addressed by slot
	free    []int32    // free-list of recycled slots
	rng     *rand.Rand
	fired   uint64
	clamped uint64
	coros   []stopper // registered coroutines, for cleanup
	etr     *evtrace.Tracer
}

type stopper interface{ stop() }

// New creates a simulator with a deterministic RNG seeded by seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's deterministic random number generator.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Fired returns the number of events executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// Clamped returns the number of At calls that asked for a time in the past
// and were clamped to "now". A well-formed model never schedules into the
// past, so test suites assert this stays zero to surface latent scheduling
// bugs instead of silently hiding them.
func (s *Sim) Clamped() uint64 { return s.clamped }

// Pending returns the number of scheduled, not-yet-fired events.
func (s *Sim) Pending() int { return len(s.pq) }

// SetTracer installs an event-bus tracer (nil disables tracing). Tracing
// only records; it never perturbs the event order, clock, or RNG, so runs
// are identical with tracing on or off.
func (s *Sim) SetTracer(t *evtrace.Tracer) { s.etr = t }

// Tracer returns the installed tracer, or nil when tracing is disabled.
func (s *Sim) Tracer() *evtrace.Tracer { return s.etr }

// At schedules fn to run at absolute time t. Scheduling in the past is an
// error in the caller; it is clamped to "now" to keep the clock monotonic,
// and counted in Clamped.
func (s *Sim) At(t Time, fn func()) Event {
	if t < s.now {
		t = s.now
		s.clamped++
	}
	s.seq++
	slot := s.allocSlot(t, fn)
	s.heapPush(heapEnt{at: t, seq: s.seq, slot: slot})
	if s.etr != nil {
		s.etr.Emit(evtrace.Event{Kind: evtrace.KEvSchedule, At: int64(s.now), Core: -1, TID: -1, Arg1: int64(t)})
	}
	return Event{s: s, gen: s.events[slot].gen, slot: slot}
}

// After schedules fn to run d nanoseconds from now.
func (s *Sim) After(d Time, fn func()) Event { return s.At(s.now+d, fn) }

// Cancel removes a pending event. Cancelling a fired, already-cancelled, or
// zero Event is a no-op.
func (s *Sim) Cancel(e Event) {
	if e.s != s {
		return
	}
	rec := &s.events[e.slot]
	if rec.gen != e.gen {
		return // already fired or cancelled; the record may be reused
	}
	if s.etr != nil {
		s.etr.Emit(evtrace.Event{Kind: evtrace.KEvCancel, At: int64(s.now), Core: -1, TID: -1, Arg1: int64(rec.at)})
	}
	s.heapRemove(int(rec.hidx))
	s.freeSlot(e.slot)
}

// Step fires the next event. It returns false when the queue is empty.
func (s *Sim) Step() bool {
	if len(s.pq) == 0 {
		return false
	}
	ent := s.heapPopRoot()
	fn := s.events[ent.slot].fn
	s.freeSlot(ent.slot)
	s.now = ent.at
	s.fired++
	if s.etr != nil {
		s.etr.Emit(evtrace.Event{Kind: evtrace.KEvFire, At: int64(ent.at), Core: -1, TID: -1, Arg1: int64(ent.seq)})
	}
	fn()
	return true
}

// Run executes events until the queue is empty.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. Events scheduled beyond t remain pending.
func (s *Sim) RunUntil(t Time) {
	for len(s.pq) > 0 && s.pq[0].at <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor executes events for the next d nanoseconds of virtual time.
func (s *Sim) RunFor(d Time) { s.RunUntil(s.now + d) }

// Close stops every registered coroutine, releasing their goroutines. A Sim
// must be closed when discarded before all coroutines have finished (for
// example in tests that run many simulations).
func (s *Sim) Close() {
	for _, c := range s.coros {
		c.stop()
	}
	s.coros = nil
}

func (s *Sim) register(c stopper) { s.coros = append(s.coros, c) }
