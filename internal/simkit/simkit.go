// Package simkit provides a deterministic discrete-event simulation kernel:
// a virtual nanosecond clock, a cancellable event queue, a seeded random
// number generator, and cooperative coroutine processes.
//
// All upper layers of this repository (the CFS scheduler model, the HotSpot
// monitor model, the Parallel Scavenge engine) are built on this kernel.
// Determinism is guaranteed by (a) a total order on events — (time, sequence
// number) — and (b) the coroutine machinery, which ensures at most one
// simulated process executes at any moment.
//
// The kernel is engineered for throughput: every benchmark run replays on
// the order of 10⁵ events, and hundreds of runs back each figure, so the
// per-event cost bounds the whole experiment catalog. Events live in a
// pooled arena (pool.go) addressed by generation-checked handles, and the
// pending queue is an inlined 4-ary heap (heap4.go); in steady state the
// schedule/fire/cancel path performs no allocations.
package simkit

import (
	"fmt"
	"math/rand"

	"repro/internal/evtrace"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Convenient duration units (Time doubles as a duration type).
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders a Time using the most readable unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Event is a handle to a scheduled callback. It can be cancelled until it
// fires. Event is a small value (not a pointer): the callback's storage
// lives in the Sim's pool and is recycled once the event fires or is
// cancelled. The generation captured in the handle makes operations on a
// stale handle (one whose record has been recycled) safe no-ops. The zero
// Event is inert: not pending, and cancelling it does nothing.
type Event struct {
	s    *Sim
	gen  uint64
	slot int32
}

// At reports when the event is scheduled to fire, or 0 if the event has
// already fired or been cancelled.
func (e Event) At() Time {
	if !e.Pending() {
		return 0
	}
	return e.s.events[e.slot].at
}

// Pending reports whether the event is still scheduled.
func (e Event) Pending() bool {
	return e.s != nil && e.s.events[e.slot].gen == e.gen
}

// Sim is a discrete-event simulator instance. It is not safe for concurrent
// use; the whole simulation is single-threaded by design.
type Sim struct {
	now     Time
	seq     uint64
	pq      []heapEnt  // pending events, 4-ary min-heap by (at, seq)
	events  []eventRec // pooled event records, addressed by slot
	free    []int32    // free-list of recycled slots
	rng     *rand.Rand
	fired   uint64
	inlined uint64
	clamped uint64
	coros   []stopper // registered coroutines, for cleanup
	etr     *evtrace.Tracer

	// Continuation slot: at most one pending event staged outside the heap
	// (see AtNext). defSlot < 0 means the slot is empty.
	defSlot int32
	defEnt  heapEnt

	// limit is the active RunUntil horizon. FireInline must not advance the
	// clock past it, because staged events beyond the horizon stay pending.
	limit Time
}

// maxTime is the largest representable Time; used as the "no horizon" limit.
const maxTime = Time(1<<63 - 1)

type stopper interface{ stop() }

// New creates a simulator with a deterministic RNG seeded by seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed)), defSlot: -1, limit: maxTime}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's deterministic random number generator.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Fired returns the number of events executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// Inlined returns how many of the fired events were executed by FireInline
// (batch-dispatched without an event record), a subset of Fired.
func (s *Sim) Inlined() uint64 { return s.inlined }

// Clamped returns the number of At calls that asked for a time in the past
// and were clamped to "now". A well-formed model never schedules into the
// past, so test suites assert this stays zero to surface latent scheduling
// bugs instead of silently hiding them.
func (s *Sim) Clamped() uint64 { return s.clamped }

// Pending returns the number of scheduled, not-yet-fired events.
func (s *Sim) Pending() int {
	n := len(s.pq)
	if s.defSlot >= 0 {
		n++
	}
	return n
}

// SetTracer installs an event-bus tracer (nil disables tracing). Tracing
// only records; it never perturbs the event order, clock, or RNG, so runs
// are identical with tracing on or off.
func (s *Sim) SetTracer(t *evtrace.Tracer) { s.etr = t }

// Tracer returns the installed tracer, or nil when tracing is disabled.
func (s *Sim) Tracer() *evtrace.Tracer { return s.etr }

// At schedules fn to run at absolute time t. Scheduling in the past is an
// error in the caller; it is clamped to "now" to keep the clock monotonic,
// and counted in Clamped.
func (s *Sim) At(t Time, fn func()) Event {
	if t < s.now {
		t = s.now
		s.clamped++
	}
	s.seq++
	slot := s.allocSlot(t, fn)
	s.heapPush(heapEnt{at: t, seq: s.seq, slot: slot})
	if s.etr != nil {
		s.etr.Emit(evtrace.Event{Kind: evtrace.KEvSchedule, At: int64(s.now), Core: -1, TID: -1, Arg1: int64(t)})
	}
	return Event{s: s, gen: s.events[slot].gen, slot: slot}
}

// After schedules fn to run d nanoseconds from now.
func (s *Sim) After(d Time, fn func()) Event { return s.At(s.now+d, fn) }

// AtNext schedules fn at absolute time t, exactly like At, but stages the
// event in the Sim's one-entry continuation slot instead of pushing it onto
// the heap. The slot is the batch-dispatch fast path for self-reprogramming
// event chains (a core timer that cancels and reschedules itself on every
// continuation): while the staged event stays the earliest pending one it
// fires straight from the slot and a Cancel releases it in O(1), so a run of
// same-core continuations costs zero heap sift operations. The (at, seq)
// total order is untouched — the slot entry is assigned its sequence number
// by the same counter, Step compares it against the heap root with the same
// entBefore order, and it is pushed onto the heap ("materialized") the
// moment a later AtNext wants the slot or the heap root must fire first.
// Scheduling, firing, and cancellation are observably identical to At.
func (s *Sim) AtNext(t Time, fn func()) Event {
	if t < s.now {
		t = s.now
		s.clamped++
	}
	s.seq++
	if s.defSlot >= 0 {
		s.materializeDeferred()
	}
	slot := s.allocSlot(t, fn)
	s.events[slot].hidx = hidxDeferred
	s.defSlot = slot
	s.defEnt = heapEnt{at: t, seq: s.seq, slot: slot}
	if s.etr != nil {
		s.etr.Emit(evtrace.Event{Kind: evtrace.KEvSchedule, At: int64(s.now), Core: -1, TID: -1, Arg1: int64(t)})
	}
	return Event{s: s, gen: s.events[slot].gen, slot: slot}
}

// materializeDeferred moves the staged continuation event into the heap.
func (s *Sim) materializeDeferred() {
	ent := s.defEnt
	s.defSlot = -1
	s.heapPush(ent)
}

// Cancel removes a pending event. Cancelling a fired, already-cancelled, or
// zero Event is a no-op.
func (s *Sim) Cancel(e Event) {
	if e.s != s {
		return
	}
	rec := &s.events[e.slot]
	if rec.gen != e.gen {
		return // already fired or cancelled; the record may be reused
	}
	if s.etr != nil {
		s.etr.Emit(evtrace.Event{Kind: evtrace.KEvCancel, At: int64(s.now), Core: -1, TID: -1, Arg1: int64(rec.at)})
	}
	if rec.hidx == hidxDeferred {
		s.defSlot = -1 // release the continuation slot; no heap ops at all
	} else {
		s.heapRemove(int(rec.hidx))
	}
	s.freeSlot(e.slot)
}

// Step fires the next event. It returns false when the queue is empty.
func (s *Sim) Step() bool {
	if s.defSlot >= 0 && (len(s.pq) == 0 || entBefore(s.defEnt, s.pq[0])) {
		ent := s.defEnt
		s.defSlot = -1
		s.fire(ent)
		return true
	}
	if len(s.pq) == 0 {
		return false
	}
	s.fire(s.heapPopRoot())
	return true
}

// fire runs one dequeued event entry: release its record, advance the
// clock, and invoke the callback.
func (s *Sim) fire(ent heapEnt) {
	fn := s.events[ent.slot].fn
	s.freeSlot(ent.slot)
	s.now = ent.at
	s.fired++
	if s.etr != nil {
		s.etr.Emit(evtrace.Event{Kind: evtrace.KEvFire, At: int64(ent.at), Core: -1, TID: -1, Arg1: int64(ent.seq)})
	}
	fn()
}

// Run executes events until the queue is empty.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// FireInline performs a whole schedule-and-fire cycle at time t on behalf of
// the caller, without creating an event record: the calling callback simply
// keeps executing as if its continuation had been staged and had fired as
// the very next event. That is only sound when the continuation really would
// fire next — no staged or heap event at or before t (on a tie the existing
// event holds the smaller sequence number and must go first), and t not past
// an active RunUntil horizon — and only from the tail of the currently
// firing callback, so nothing else runs in between. FireInline returns false
// when any of those conditions fail and the caller must schedule normally.
// On success the sequence counter, fired counter, clock, and the
// KEvSchedule/KEvFire trace emissions advance exactly as an At followed by
// Step would advance them, so event streams stay byte-identical.
func (s *Sim) FireInline(t Time) bool {
	if t < s.now || t > s.limit {
		return false
	}
	if s.defSlot >= 0 && s.defEnt.at <= t {
		return false
	}
	if len(s.pq) > 0 && s.pq[0].at <= t {
		return false
	}
	s.seq++
	if s.etr != nil {
		s.etr.Emit(evtrace.Event{Kind: evtrace.KEvSchedule, At: int64(s.now), Core: -1, TID: -1, Arg1: int64(t)})
	}
	s.now = t
	s.fired++
	s.inlined++
	if s.etr != nil {
		s.etr.Emit(evtrace.Event{Kind: evtrace.KEvFire, At: int64(t), Core: -1, TID: -1, Arg1: int64(s.seq)})
	}
	return true
}

// nextAt returns the earliest pending event time across the heap and the
// continuation slot, and whether any event is pending.
func (s *Sim) nextAt() (Time, bool) {
	if len(s.pq) == 0 {
		if s.defSlot < 0 {
			return 0, false
		}
		return s.defEnt.at, true
	}
	at := s.pq[0].at
	if s.defSlot >= 0 && s.defEnt.at < at {
		at = s.defEnt.at
	}
	return at, true
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. Events scheduled beyond t remain pending.
func (s *Sim) RunUntil(t Time) {
	saved := s.limit
	s.limit = t
	defer func() { s.limit = saved }()
	for {
		at, ok := s.nextAt()
		if !ok || at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor executes events for the next d nanoseconds of virtual time.
func (s *Sim) RunFor(d Time) { s.RunUntil(s.now + d) }

// Close stops every registered coroutine, releasing their goroutines. A Sim
// must be closed when discarded before all coroutines have finished (for
// example in tests that run many simulations).
func (s *Sim) Close() {
	for _, c := range s.coros {
		c.stop()
	}
	s.coros = nil
}

func (s *Sim) register(c stopper) { s.coros = append(s.coros, c) }
