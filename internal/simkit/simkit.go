// Package simkit provides a deterministic discrete-event simulation kernel:
// a virtual nanosecond clock, a cancellable event queue, a seeded random
// number generator, and cooperative coroutine processes.
//
// All upper layers of this repository (the CFS scheduler model, the HotSpot
// monitor model, the Parallel Scavenge engine) are built on this kernel.
// Determinism is guaranteed by (a) a total order on events — (time, sequence
// number) — and (b) the coroutine machinery, which ensures at most one
// simulated process executes at any moment.
package simkit

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Convenient duration units (Time doubles as a duration type).
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders a Time using the most readable unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Event is a scheduled callback. It can be cancelled until it fires.
type Event struct {
	at   Time
	seq  uint64
	idx  int // heap index; -1 once fired or cancelled
	fn   func()
	dead bool
}

// At reports when the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Pending reports whether the event is still scheduled.
func (e *Event) Pending() bool { return e != nil && !e.dead }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulator instance. It is not safe for concurrent
// use; the whole simulation is single-threaded by design.
type Sim struct {
	now   Time
	seq   uint64
	pq    eventHeap
	rng   *rand.Rand
	fired uint64
	coros []stopper // registered coroutines, for cleanup
}

type stopper interface{ stop() }

// New creates a simulator with a deterministic RNG seeded by seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's deterministic random number generator.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Fired returns the number of events executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// At schedules fn to run at absolute time t. Scheduling in the past is an
// error in the caller; it is clamped to "now" to keep the clock monotonic.
func (s *Sim) At(t Time, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	s.seq++
	e := &Event{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.pq, e)
	return e
}

// After schedules fn to run d nanoseconds from now.
func (s *Sim) After(d Time, fn func()) *Event { return s.At(s.now+d, fn) }

// Cancel removes a pending event. Cancelling a fired or already-cancelled
// event is a no-op.
func (s *Sim) Cancel(e *Event) {
	if e == nil || e.dead {
		return
	}
	e.dead = true
	if e.idx >= 0 {
		heap.Remove(&s.pq, e.idx)
		e.idx = -1
	}
}

// Step fires the next event. It returns false when the queue is empty.
func (s *Sim) Step() bool {
	for s.pq.Len() > 0 {
		e := heap.Pop(&s.pq).(*Event)
		if e.dead {
			continue
		}
		e.dead = true
		s.now = e.at
		s.fired++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. Events scheduled beyond t remain pending.
func (s *Sim) RunUntil(t Time) {
	for s.pq.Len() > 0 {
		if next := s.pq[0]; next.dead {
			heap.Pop(&s.pq)
			continue
		} else if next.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor executes events for the next d nanoseconds of virtual time.
func (s *Sim) RunFor(d Time) { s.RunUntil(s.now + d) }

// Close stops every registered coroutine, releasing their goroutines. A Sim
// must be closed when discarded before all coroutines have finished (for
// example in tests that run many simulations).
func (s *Sim) Close() {
	for _, c := range s.coros {
		c.stop()
	}
	s.coros = nil
}

func (s *Sim) register(c stopper) { s.coros = append(s.coros, c) }
