package simkit

import (
	"math/rand"
	"sort"
	"testing"
)

// refModel is the oracle for the 4-ary heap: a plain sorted slice with the
// same (at, seq) total order. Operations are O(n) but obviously correct.
type refModel struct {
	ents []heapEnt
}

func (r *refModel) push(e heapEnt) {
	r.ents = append(r.ents, e)
	sort.Slice(r.ents, func(i, j int) bool { return entBefore(r.ents[i], r.ents[j]) })
}

func (r *refModel) popMin() heapEnt {
	e := r.ents[0]
	r.ents = r.ents[1:]
	return e
}

func (r *refModel) remove(slot int32) bool {
	for i, e := range r.ents {
		if e.slot == slot {
			r.ents = append(r.ents[:i], r.ents[i+1:]...)
			return true
		}
	}
	return false
}

// checkHeapInvariants verifies the heap property at every node and that
// every event record's hidx back-pointer matches the entry's position.
func checkHeapInvariants(t *testing.T, s *Sim) {
	t.Helper()
	n := len(s.pq)
	for i := 1; i < n; i++ {
		p := (i - 1) >> 2
		if entBefore(s.pq[i], s.pq[p]) {
			t.Fatalf("heap property violated: pq[%d]=%+v before parent pq[%d]=%+v", i, s.pq[i], p, s.pq[p])
		}
	}
	for i, e := range s.pq {
		if got := s.events[e.slot].hidx; got != int32(i) {
			t.Fatalf("hidx mismatch: pq[%d] has slot %d but events[%d].hidx = %d", i, e.slot, e.slot, got)
		}
	}
}

func TestHeapSiftAgainstReferenceModel(t *testing.T) {
	// Random mixed push / pop-min / remove workload, cross-checked against
	// the sorted-slice oracle after every operation.
	rng := rand.New(rand.NewSource(99))
	s := New(1)
	ref := &refModel{}
	live := []Event{} // handles for random removal

	for op := 0; op < 5000; op++ {
		switch k := rng.Intn(10); {
		case k < 5 || len(s.pq) == 0: // push
			at := s.now + Time(rng.Intn(1000))
			e := s.At(at, func() {})
			ref.push(heapEnt{at: at, seq: s.seq, slot: e.slot})
			live = append(live, e)
		case k < 8: // pop-min (fire)
			want := ref.popMin()
			got := s.heapPopRoot()
			if got != want {
				t.Fatalf("op %d: popped %+v, want %+v", op, got, want)
			}
			s.freeSlot(got.slot)
		default: // remove arbitrary
			i := rng.Intn(len(live))
			e := live[i]
			live = append(live[:i], live[i+1:]...)
			if !e.Pending() {
				continue // already popped by a pop-min above
			}
			if !ref.remove(e.slot) {
				t.Fatalf("op %d: oracle missing slot %d", op, e.slot)
			}
			s.Cancel(e)
		}
		// Drop fired handles the pop path invalidated.
		keep := live[:0]
		for _, e := range live {
			if e.Pending() {
				keep = append(keep, e)
			}
		}
		live = keep
		if len(s.pq) != len(ref.ents) {
			t.Fatalf("op %d: heap has %d entries, oracle %d", op, len(s.pq), len(ref.ents))
		}
		checkHeapInvariants(t, s)
	}
	// Drain: the remaining pop order must match the oracle exactly.
	for len(s.pq) > 0 {
		want := ref.popMin()
		got := s.heapPopRoot()
		if got != want {
			t.Fatalf("drain: popped %+v, want %+v", got, want)
		}
		s.freeSlot(got.slot)
		checkHeapInvariants(t, s)
	}
}

func TestHeapSiftDownReportsMovement(t *testing.T) {
	// siftDown's return value steers heapRemove (unmoved entries may need to
	// sift up instead); verify it against observed positions.
	rng := rand.New(rand.NewSource(7))
	s := New(1)
	for i := 0; i < 200; i++ {
		s.At(Time(rng.Intn(100)), func() {})
	}
	for trial := 0; trial < 200; trial++ {
		i := rng.Intn(len(s.pq))
		slot := s.pq[i].slot
		moved := s.siftDown(i)
		pos := int(s.events[slot].hidx)
		if moved != (pos != i) {
			t.Fatalf("siftDown(%d) returned %v but entry ended at %d", i, moved, pos)
		}
		checkHeapInvariants(t, s)
	}
}

func TestHeapRemoveEveryPosition(t *testing.T) {
	// Cancel from every heap position of a modest queue: exercises the
	// replace-with-last + sift-down-or-up repair at the root, interior
	// nodes, leaves, and the last element.
	for remove := 0; remove < 30; remove++ {
		s := New(1)
		events := make([]Event, 30)
		for i := range events {
			events[i] = s.At(Time((i*37)%17), func() {})
		}
		victim := s.pq[remove]
		var victimEv Event
		for _, e := range events {
			if e.slot == victim.slot {
				victimEv = e
			}
		}
		s.Cancel(victimEv)
		checkHeapInvariants(t, s)
		if victimEv.Pending() {
			t.Fatalf("remove at %d: event still pending", remove)
		}
		if len(s.pq) != 29 {
			t.Fatalf("remove at %d: heap has %d entries, want 29", remove, len(s.pq))
		}
	}
}
