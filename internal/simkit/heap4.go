package simkit

// This file implements the simulator's pending-event queue as an inlined
// 4-ary array min-heap ordered by (at, seq). It replaces container/heap:
// the entries are concrete 24-byte values compared without interface calls,
// and a 4-ary layout halves the tree depth, which matters for the deep
// queues the CFS model produces (one timer per core plus sleep, wake, and
// balance events).
//
// Each entry carries the slot of its event record in the Sim's pool; every
// move keeps the record's hidx field pointing at the entry so Cancel can
// remove an arbitrary event in O(log₄ n) without a search.

// heapEnt is one pending event in the scheduling queue.
type heapEnt struct {
	at   Time
	seq  uint64
	slot int32
}

// entBefore is the total order on events: time, then schedule sequence.
// seq is unique per Sim, so the order is strict and the pop sequence is
// independent of the heap's internal layout — the determinism contract.
func entBefore(a, b heapEnt) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// heapPush inserts e and records its final position in the event pool.
func (s *Sim) heapPush(e heapEnt) {
	s.pq = append(s.pq, e)
	s.siftUp(len(s.pq) - 1)
}

// heapPopRoot removes and returns the minimum entry.
func (s *Sim) heapPopRoot() heapEnt {
	root := s.pq[0]
	n := len(s.pq) - 1
	last := s.pq[n]
	s.pq[n] = heapEnt{}
	s.pq = s.pq[:n]
	if n > 0 {
		s.pq[0] = last
		s.events[last.slot].hidx = 0
		s.siftDown(0)
	}
	return root
}

// heapRemove removes the entry at index i (for Cancel).
func (s *Sim) heapRemove(i int) {
	n := len(s.pq) - 1
	last := s.pq[n]
	s.pq[n] = heapEnt{}
	s.pq = s.pq[:n]
	if i == n {
		return
	}
	s.pq[i] = last
	s.events[last.slot].hidx = int32(i)
	if !s.siftDown(i) {
		s.siftUp(i)
	}
}

// siftUp restores the heap property upward from i.
func (s *Sim) siftUp(i int) {
	e := s.pq[i]
	for i > 0 {
		p := (i - 1) >> 2
		pe := s.pq[p]
		if !entBefore(e, pe) {
			break
		}
		s.pq[i] = pe
		s.events[pe.slot].hidx = int32(i)
		i = p
	}
	s.pq[i] = e
	s.events[e.slot].hidx = int32(i)
}

// siftDown restores the heap property downward from i. It reports whether
// the entry moved.
func (s *Sim) siftDown(i int) bool {
	n := len(s.pq)
	e := s.pq[i]
	start := i
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		// Find the smallest of up to four children.
		end := c + 4
		if end > n {
			end = n
		}
		m, me := c, s.pq[c]
		for j := c + 1; j < end; j++ {
			if entBefore(s.pq[j], me) {
				m, me = j, s.pq[j]
			}
		}
		if !entBefore(me, e) {
			break
		}
		s.pq[i] = me
		s.events[me.slot].hidx = int32(i)
		i = m
	}
	s.pq[i] = e
	s.events[e.slot].hidx = int32(i)
	return i != start
}
