package simkit

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestAtNextMatchesAtOrder is the continuation slot's determinism oracle: a
// randomized schedule/cancel script is replayed on two simulators, one using
// At for every event and one routing a deterministic subset through AtNext.
// The (at, seq) total order promises identical fire sequences; any
// divergence in fired ids, times, or counts is a slot-ordering bug.
func TestAtNextMatchesAtOrder(t *testing.T) {
	type firing struct {
		ID int
		At Time
	}
	run := func(useSlot bool) []firing {
		s := New(7)
		rng := rand.New(rand.NewSource(99))
		var log []firing
		var evs []Event
		nextID := 0
		// Seed events that reschedule successors as they fire, mimicking
		// the kernel's timer chains.
		var schedule func(depth int)
		schedule = func(depth int) {
			id := nextID
			nextID++
			d := Time(rng.Intn(50))
			fn := func() {
				log = append(log, firing{id, s.Now()})
				if depth > 0 {
					schedule(depth - 1)
					schedule(depth - 1)
				}
			}
			at := s.Now() + d
			var e Event
			if useSlot && id%3 == 0 {
				e = s.AtNext(at, fn)
			} else {
				e = s.At(at, fn)
			}
			evs = append(evs, e)
			// Occasionally cancel an arbitrary earlier event, including
			// ones staged in the slot.
			if len(evs) > 4 && rng.Intn(5) == 0 {
				s.Cancel(evs[rng.Intn(len(evs))])
			}
		}
		for i := 0; i < 8; i++ {
			schedule(4)
		}
		s.Run()
		return log
	}
	plain := run(false)
	slotted := run(true)
	if len(plain) == 0 {
		t.Fatal("oracle fired no events")
	}
	if !reflect.DeepEqual(plain, slotted) {
		t.Fatalf("fire order diverged: %d plain vs %d slotted firings", len(plain), len(slotted))
	}
}

// TestAtNextTieBreakOrder pins the equal-timestamp case: an AtNext event
// scheduled after an At event at the same time must fire after it (seq
// order), and before a later-scheduled At event at that time.
func TestAtNextTieBreakOrder(t *testing.T) {
	s := New(1)
	var order []int
	s.At(10, func() { order = append(order, 1) })
	s.AtNext(10, func() { order = append(order, 2) })
	s.At(10, func() { order = append(order, 3) })
	s.Run()
	if !reflect.DeepEqual(order, []int{1, 2, 3}) {
		t.Fatalf("tie-break order = %v, want [1 2 3]", order)
	}
}

// TestAtNextDisplacement: a second AtNext materializes the first into the
// heap without losing or reordering it.
func TestAtNextDisplacement(t *testing.T) {
	s := New(1)
	var order []int
	e1 := s.AtNext(20, func() { order = append(order, 1) })
	e2 := s.AtNext(10, func() { order = append(order, 2) })
	if !e1.Pending() || !e2.Pending() {
		t.Fatal("both events must stay pending after displacement")
	}
	if s.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", s.Pending())
	}
	s.Run()
	if !reflect.DeepEqual(order, []int{2, 1}) {
		t.Fatalf("order = %v, want [2 1]", order)
	}
}

// TestAtNextCancel: cancelling a staged event releases the slot in O(1) and
// leaves the handle inert; a stale handle stays a no-op after slot reuse.
func TestAtNextCancel(t *testing.T) {
	s := New(1)
	fired := 0
	e := s.AtNext(10, func() { fired++ })
	if !e.Pending() || e.At() != 10 {
		t.Fatalf("staged event Pending()=%v At()=%v, want true, 10", e.Pending(), e.At())
	}
	s.Cancel(e)
	if e.Pending() || s.Pending() != 0 {
		t.Fatal("cancel of staged event did not release it")
	}
	s.Cancel(e) // double cancel: no-op
	// Reuse the slot; the stale handle must not touch the new tenant.
	e2 := s.AtNext(30, func() { fired += 10 })
	s.Cancel(e)
	if !e2.Pending() {
		t.Fatal("stale cancel hit the slot's new tenant")
	}
	s.Run()
	if fired != 10 {
		t.Fatalf("fired = %d, want 10", fired)
	}
}

// TestAtNextRunUntil: RunUntil must see a staged event as pending work both
// when it is the earliest event and when the heap root is earlier.
func TestAtNextRunUntil(t *testing.T) {
	s := New(1)
	var order []int
	s.AtNext(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.RunUntil(15)
	if !reflect.DeepEqual(order, []int{1}) || s.Now() != 15 {
		t.Fatalf("after RunUntil(15): order=%v now=%v", order, s.Now())
	}
	s.AtNext(30, func() { order = append(order, 3) })
	s.RunUntil(40)
	if !reflect.DeepEqual(order, []int{1, 2, 3}) || s.Now() != 40 {
		t.Fatalf("after RunUntil(40): order=%v now=%v", order, s.Now())
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", s.Pending())
	}
}

// TestAtNextPastClamp: AtNext clamps past times exactly like At.
func TestAtNextPastClamp(t *testing.T) {
	s := New(1)
	s.At(50, func() {
		s.AtNext(10, func() {})
	})
	s.Run()
	if s.Clamped() != 1 {
		t.Fatalf("Clamped() = %d, want 1", s.Clamped())
	}
}

// BenchmarkSimkitAtNextChain measures the self-reprogramming timer chain the
// slot exists for: one event cancels itself and reschedules via AtNext each
// firing, never touching the heap.
func BenchmarkSimkitAtNextChain(b *testing.B) {
	s := New(1)
	var e Event
	var fn func()
	n := 0
	fn = func() {
		n++
		if n < b.N {
			e = s.AtNext(s.Now()+1, fn)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e = s.AtNext(1, fn)
	for s.Step() {
	}
	_ = e
}
