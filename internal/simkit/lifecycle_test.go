package simkit

import "testing"

// These tests pin down the event-handle lifecycle at the edges the pooled
// arena introduces: handles must stay safe (strict no-ops) after their
// record has been recycled for an unrelated event.

func TestCancelThenFireSameTime(t *testing.T) {
	// An event cancelled by an earlier event at the same timestamp must not
	// fire, even though both were already in the queue for that instant.
	s := New(1)
	fired := false
	var victim Event
	s.At(10, func() { s.Cancel(victim) })
	victim = s.At(10, func() { fired = true })
	s.Run()
	if fired {
		t.Error("event cancelled at its own timestamp still fired")
	}
	if s.Fired() != 1 {
		t.Errorf("Fired() = %d, want 1", s.Fired())
	}
}

func TestCancelAfterFireIsNoOp(t *testing.T) {
	s := New(1)
	n := 0
	e := s.At(10, func() { n++ })
	s.Run()
	if n != 1 {
		t.Fatalf("event fired %d times, want 1", n)
	}
	// The handle's record is back in the pool; cancelling must not disturb
	// anything, in particular not a later event that reuses the slot.
	s.Cancel(e)
	e2 := s.At(20, func() { n += 10 })
	s.Cancel(e) // stale handle again, now with e2 occupying the slot
	s.Run()
	if n != 11 {
		t.Errorf("n = %d, want 11 (stale Cancel must not kill the slot's new tenant)", n)
	}
	_ = e2
}

func TestRescheduleFromCallback(t *testing.T) {
	// A callback that re-arms itself (the kernel-timer pattern): each firing
	// frees the record before the callback runs, so the re-arm reuses the
	// slot immediately. The chain must fire exactly n times.
	s := New(1)
	n := 0
	var rearm func()
	rearm = func() {
		n++
		if n < 5 {
			s.After(10, rearm)
		}
	}
	s.After(10, rearm)
	s.Run()
	if n != 5 {
		t.Errorf("re-arming chain fired %d times, want 5", n)
	}
	if s.Now() != 50 {
		t.Errorf("Now() = %v, want 50", s.Now())
	}
}

func TestPendingOnReusedSlot(t *testing.T) {
	// A fired handle whose slot has been recycled must report not-pending
	// and At() == 0 even while the new tenant is pending (generation check).
	s := New(1)
	e1 := s.At(10, func() {})
	s.Run()
	if e1.Pending() {
		t.Fatal("fired event still pending")
	}
	e2 := s.At(30, func() {})
	if e2.slot != e1.slot {
		t.Fatalf("test setup: expected slot reuse, got %d then %d", e1.slot, e2.slot)
	}
	if e1.Pending() {
		t.Error("stale handle reports pending after slot reuse")
	}
	if e1.At() != 0 {
		t.Errorf("stale handle At() = %v, want 0", e1.At())
	}
	if !e2.Pending() || e2.At() != 30 {
		t.Errorf("new tenant Pending()=%v At()=%v, want true, 30", e2.Pending(), e2.At())
	}
	// And cancelling the stale handle must leave the tenant alone.
	s.Cancel(e1)
	if !e2.Pending() {
		t.Error("stale Cancel removed the slot's new tenant")
	}
}

func TestCancelForeignSimIsNoOp(t *testing.T) {
	// A handle from one Sim passed to another must be ignored, even when
	// the slot and generation happen to collide.
	a, b := New(1), New(2)
	fired := false
	ea := a.At(10, func() { fired = true })
	b.At(10, func() {})
	b.Cancel(ea)
	a.Run()
	if !fired {
		t.Error("Cancel on a foreign Sim cancelled this Sim's event")
	}
}

func TestClampedCounter(t *testing.T) {
	s := New(1)
	s.At(100, func() {
		s.At(5, func() {}) // past: clamped
		s.At(100, func() {})
	})
	s.Run()
	if s.Clamped() != 1 {
		t.Errorf("Clamped() = %d, want 1", s.Clamped())
	}
}
