package simkit

// Coro is a cooperative coroutine yielding values of type T to its driver.
// It backs the simulated-thread machinery: a thread body runs inside a Coro
// and yields timed requests (compute, block, ...) to the scheduler model.
//
// Exactly one side runs at a time: the driver blocks in Next while the body
// runs, and the body blocks in yield while the driver runs. This lock-step
// handoff is what keeps the simulation deterministic and race-free even
// though each coroutine is a real goroutine.
//
// The handoff is a single unbuffered channel carrying tagged messages. The
// strict alternation means the channel never holds more than one message
// in flight and each direction costs exactly one channel operation: the
// sender hands its message straight to the blocked receiver and the
// runtime's direct-handoff path readies it without a second wakeup. The
// tags replace the old two-channel protocol (control channel + value
// channel, plus a done channel for Stop) with one channel total.
//
// A Coro must be driven from a single goroutine (the simulation loop).
type Coro[T any] struct {
	ch      chan coroMsg[T]
	dead    bool // body returned or Stop called; no more Next allowed
	stopped bool // Stop was called
}

// coroMsg is one message of the tagged resume/value protocol.
type coroMsg[T any] struct {
	v    T
	kind coroKind
}

type coroKind uint8

const (
	coroResume coroKind = iota // driver → body: run to the next yield
	coroStop                   // driver → body: unwind and exit
	coroYield                  // body → driver: v carries the yielded value
	coroDone                   // body → driver: body finished (or unwound)
)

// coroStopSentinel is the sentinel panic used to unwind a stopped body.
type coroStopSentinel struct{}

// NewCoro creates a coroutine running body. The body does not start until
// the first Next call. The body's yield function suspends it and delivers v
// to the driver. If the coroutine is registered with a Sim, Sim.Close stops
// it; otherwise Stop must be called if the body may still be suspended when
// the coroutine is discarded.
func NewCoro[T any](sim *Sim, body func(yield func(v T))) *Coro[T] {
	c := &Coro[T]{ch: make(chan coroMsg[T])}
	if sim != nil {
		sim.register(c)
	}
	go func() {
		if m := <-c.ch; m.kind == coroStop {
			// Stopped before the first resume: the body never runs.
			c.ch <- coroMsg[T]{kind: coroDone}
			return
		}
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(coroStopSentinel); !ok {
					panic(r)
				}
			}
			// Normal return or Stop unwind (after the body's own deferred
			// functions have run): hand the driver its final answer.
			c.ch <- coroMsg[T]{kind: coroDone}
		}()
		body(func(v T) {
			c.ch <- coroMsg[T]{v: v, kind: coroYield}
			if m := <-c.ch; m.kind == coroStop {
				panic(coroStopSentinel{})
			}
		})
	}()
	return c
}

// Next resumes the coroutine until its next yield. It returns (value, true)
// for a yield and (zero, false) once the body has returned. Calling Next on
// a finished or stopped coroutine returns (zero, false).
func (c *Coro[T]) Next() (T, bool) {
	if c.dead {
		var zero T
		return zero, false
	}
	c.ch <- coroMsg[T]{kind: coroResume}
	m := <-c.ch
	if m.kind == coroDone {
		c.dead = true
		var zero T
		return zero, false
	}
	return m.v, true
}

// Stop terminates a suspended coroutine, releasing its goroutine, and
// returns once the body (including its deferred functions) has finished
// unwinding. It is a no-op on a finished or already-stopped coroutine.
// Stop must not be called while the body is running (i.e. from inside the
// body).
func (c *Coro[T]) Stop() { c.stop() }

func (c *Coro[T]) stop() {
	if c.stopped {
		return
	}
	c.stopped = true
	if c.dead {
		return
	}
	c.dead = true
	c.ch <- coroMsg[T]{kind: coroStop}
	<-c.ch // coroDone: the body has finished unwinding
}

// Done reports whether the coroutine has finished or been stopped.
func (c *Coro[T]) Done() bool { return c.dead }
