package simkit

import "iter"

// Coro is a cooperative coroutine yielding values of type T to its driver.
// It backs the simulated-thread machinery: a thread body runs inside a Coro
// and yields timed requests (compute, block, ...) to the scheduler model.
//
// Exactly one side runs at a time: the driver blocks in Next while the body
// runs, and the body blocks in yield while the driver runs. This lock-step
// handoff is what keeps the simulation deterministic and race-free even
// though each coroutine is a real goroutine.
//
// The handoff rides iter.Pull, whose runtime support (coroswitch) transfers
// control from one goroutine to the other directly: the switch never parks
// the goroutine through the scheduler's run queues, so it costs a register
// save/restore rather than a channel round trip (~3x less), and it cannot
// be descheduled between the two halves of the handoff — many simulations
// packed onto few P's no longer perturb each other's switch latency. The
// previous implementation (one unbuffered channel carrying tagged
// resume/yield messages) paid two channel operations and a scheduler
// wakeup per round trip.
//
// A Coro must be driven from a single goroutine (the simulation loop).
type Coro[T any] struct {
	next    func() (T, bool)
	stopFn  func()
	dead    bool // body returned or Stop called; no more Next allowed
	stopped bool // Stop was called
}

// coroStopSentinel is the sentinel panic used to unwind a stopped body.
type coroStopSentinel struct{}

// NewCoro creates a coroutine running body. The body does not start until
// the first Next call. The body's yield function suspends it and delivers v
// to the driver. If the coroutine is registered with a Sim, Sim.Close stops
// it; otherwise Stop must be called if the body may still be suspended when
// the coroutine is discarded.
func NewCoro[T any](sim *Sim, body func(yield func(v T))) *Coro[T] {
	c := &Coro[T]{}
	if sim != nil {
		sim.register(c)
	}
	c.next, c.stopFn = iter.Pull(func(yield func(T) bool) {
		// iter.Pull signals Stop by making yield return false; our bodies
		// never inspect a yield result, so convert the signal into a
		// sentinel panic that unwinds the body (running its deferred
		// functions) and is swallowed here. Any other panic propagates
		// through iter.Pull to the driver's Next/Stop call.
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(coroStopSentinel); !ok {
					panic(r)
				}
			}
		}()
		body(func(v T) {
			if !yield(v) {
				panic(coroStopSentinel{})
			}
		})
	})
	return c
}

// Next resumes the coroutine until its next yield. It returns (value, true)
// for a yield and (zero, false) once the body has returned. Calling Next on
// a finished or stopped coroutine returns (zero, false).
func (c *Coro[T]) Next() (T, bool) {
	if c.dead {
		var zero T
		return zero, false
	}
	v, ok := c.next()
	if !ok {
		c.dead = true
	}
	return v, ok
}

// Stop terminates a suspended coroutine, releasing its goroutine, and
// returns once the body (including its deferred functions) has finished
// unwinding. It is a no-op on a finished or already-stopped coroutine.
// Stop must not be called while the body is running (i.e. from inside the
// body).
func (c *Coro[T]) Stop() { c.stop() }

func (c *Coro[T]) stop() {
	if c.stopped {
		return
	}
	c.stopped = true
	if c.dead {
		return
	}
	c.dead = true
	c.stopFn()
}

// Done reports whether the coroutine has finished or been stopped.
func (c *Coro[T]) Done() bool { return c.dead }
