package simkit

// Coro is a cooperative coroutine yielding values of type T to its driver.
// It backs the simulated-thread machinery: a thread body runs inside a Coro
// and yields timed requests (compute, block, ...) to the scheduler model.
//
// Exactly one side runs at a time: the driver blocks in Next while the body
// runs, and the body blocks in yield while the driver runs. This lock-step
// handoff is what keeps the simulation deterministic and race-free even
// though each coroutine is a real goroutine.
//
// A Coro must be driven from a single goroutine (the simulation loop).
type Coro[T any] struct {
	out     chan T
	in      chan struct{}
	done    chan struct{} // closed when the body goroutine has exited
	dead    bool          // body returned or Stop called; no more Next allowed
	stopped bool          // Stop was called (in channel closed)
}

// coroStop is the sentinel panic used to unwind a stopped coroutine body.
type coroStopSentinel struct{}

// NewCoro creates a coroutine running body. The body does not start until
// the first Next call. The body's yield function suspends it and delivers v
// to the driver. If the coroutine is registered with a Sim, Sim.Close stops
// it; otherwise Stop must be called if the body may still be suspended when
// the coroutine is discarded.
func NewCoro[T any](sim *Sim, body func(yield func(v T))) *Coro[T] {
	c := &Coro[T]{out: make(chan T), in: make(chan struct{}), done: make(chan struct{})}
	if sim != nil {
		sim.register(c)
	}
	go func() {
		defer close(c.done)
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(coroStopSentinel); !ok {
					panic(r)
				}
				return // stopped: exit silently without touching channels
			}
			close(c.out)
		}()
		if _, ok := <-c.in; !ok {
			panic(coroStopSentinel{})
		}
		body(func(v T) {
			c.out <- v
			if _, ok := <-c.in; !ok {
				panic(coroStopSentinel{})
			}
		})
	}()
	return c
}

// Next resumes the coroutine until its next yield. It returns (value, true)
// for a yield and (zero, false) once the body has returned. Calling Next on
// a finished or stopped coroutine returns (zero, false).
func (c *Coro[T]) Next() (T, bool) {
	if c.dead {
		var zero T
		return zero, false
	}
	c.in <- struct{}{}
	v, ok := <-c.out
	if !ok {
		c.dead = true
	}
	return v, ok
}

// Stop terminates a suspended coroutine, releasing its goroutine, and
// returns once the body (including its deferred functions) has finished
// unwinding. It is a no-op on a finished or already-stopped coroutine.
// Stop must not be called while the body is running (i.e. from inside the
// body).
func (c *Coro[T]) Stop() { c.stop() }

func (c *Coro[T]) stop() {
	if c.stopped {
		return
	}
	c.stopped = true
	if !c.dead {
		c.dead = true
		close(c.in)
	}
	<-c.done
}

// Done reports whether the coroutine has finished or been stopped.
func (c *Coro[T]) Done() bool { return c.dead }
