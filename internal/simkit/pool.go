package simkit

// This file implements the Sim's event pool. Sim.At used to heap-allocate
// one *Event per scheduled callback — the dominant allocation site of the
// whole simulator, at roughly one allocation per fired event. The pool
// replaces that with a free list of event records inside the Sim: steady
// state schedules, fires, and cancels events with zero allocations.
//
// Handles stay safe across reuse through generation counters: every record
// carries a gen that is incremented when the record is released (on fire or
// cancel), and an Event handle captures the gen it was created under. A
// stale handle's gen can never match a recycled record again, so Cancel and
// Pending on old handles are harmless no-ops rather than corruption.

// hidxDeferred marks a record staged in the Sim's continuation slot
// (AtNext) rather than resident in the heap.
const hidxDeferred int32 = -2

// eventRec is the pooled storage behind an Event handle.
type eventRec struct {
	fn   func()
	at   Time
	gen  uint64
	hidx int32 // index in the heap, -1 while free, hidxDeferred while staged
}

// allocSlot takes a record off the free list (or grows the pool) and
// initializes it for a callback at time t. The heap index is set by the
// subsequent heapPush.
func (s *Sim) allocSlot(t Time, fn func()) int32 {
	var slot int32
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.events = append(s.events, eventRec{})
		slot = int32(len(s.events) - 1)
	}
	rec := &s.events[slot]
	rec.fn = fn
	rec.at = t
	return slot
}

// freeSlot releases a record back to the pool, invalidating all handles to
// it by bumping the generation.
func (s *Sim) freeSlot(slot int32) {
	rec := &s.events[slot]
	rec.gen++
	rec.fn = nil
	rec.hidx = -1
	s.free = append(s.free, slot)
}
