package simkit

// Scratch holds a retired simulation's backing arrays — the event arena,
// its free list, and the pending-queue heap — so the next simulation can
// start with warm, full-sized storage instead of growing from nothing.
// The experiment runner executes dozens of independent cells per figure;
// recycling these arrays per worker removes the dominant steady-state
// allocations of a sweep (see runner.Pool's scratch free-list).
//
// A Scratch is plain data with no goroutines or cleanup. The zero value is
// ready to use: NewWith on a zero Scratch is equivalent to New.
type Scratch struct {
	pq     []heapEnt
	events []eventRec
	free   []int32
}

// NewWith creates a simulator like New, adopting sc's backing arrays. The
// scratch is emptied (its arrays now belong to the new Sim); reusing it
// before Reclaim hands the arrays back would alias two simulations, so
// callers keep one Scratch per in-flight Sim. sc may be nil.
//
// Adoption is invisible to the simulation: only slice capacities differ
// from a cold start, and nothing in the kernel branches on capacity, so a
// run is byte-identical with or without scratch.
func NewWith(seed int64, sc *Scratch) *Sim {
	s := New(seed)
	if sc != nil {
		s.pq = sc.pq[:0]
		s.events = sc.events[:0]
		s.free = sc.free[:0]
		*sc = Scratch{}
	}
	return s
}

// Reclaim harvests the Sim's backing arrays into sc for a later NewWith.
// The Sim must be finished (Close called, no more Step/At); it is unusable
// afterwards. Event callbacks still referenced from the arena are cleared
// so the retired simulation's closures (and everything they capture) are
// not kept alive by the pooled storage.
func (s *Sim) Reclaim(sc *Scratch) {
	ev := s.events[:cap(s.events)]
	clear(ev)
	sc.events = ev[:0]
	sc.pq = s.pq[:0] // heapEnt holds no pointers; truncation suffices
	sc.free = s.free[:0]
	s.pq, s.events, s.free = nil, nil, nil
}
