package simkit

import "testing"

// runScripted drives a fixed little event script and returns a fingerprint
// of the observable run: fire order, final time, RNG draws.
func runScripted(s *Sim) (fired uint64, now Time, draw int64) {
	for i := 0; i < 50; i++ {
		d := Time(s.Rand().Int63n(int64(10 * Millisecond)))
		var ev Event
		ev = s.After(d, func() {
			if s.Rand().Intn(4) == 0 {
				s.After(1*Millisecond, func() {})
			}
		})
		if i%7 == 0 {
			s.Cancel(ev)
		}
	}
	s.Run()
	return s.Fired(), s.Now(), s.Rand().Int63()
}

// TestScratchReuseIsInvisible runs the same seeded script on a cold Sim
// and on a Sim built from another run's reclaimed storage; every
// observable must match, since adoption only changes slice capacities.
func TestScratchReuseIsInvisible(t *testing.T) {
	cold := New(99)
	f0, n0, d0 := runScripted(cold)

	var sc Scratch
	warmup := New(123) // different seed: the scratch carries no state over
	runScripted(warmup)
	warmup.Close()
	warmup.Reclaim(&sc)
	if cap(sc.events) == 0 {
		t.Fatal("reclaim harvested no event arena")
	}

	warm := NewWith(99, &sc)
	f1, n1, d1 := runScripted(warm)
	if f0 != f1 || n0 != n1 || d0 != d1 {
		t.Fatalf("scratch-built run diverged: cold (fired=%d now=%v draw=%d), warm (fired=%d now=%v draw=%d)",
			f0, n0, d0, f1, n1, d1)
	}

	// Reclaim clears the pooled callbacks so retired closures are not
	// retained by the free-list.
	warm.Close()
	var sc2 Scratch
	warm.Reclaim(&sc2)
	for i, rec := range sc2.events[:cap(sc2.events)] {
		if rec.fn != nil {
			t.Fatalf("reclaimed arena slot %d still holds a callback", i)
		}
	}
}
