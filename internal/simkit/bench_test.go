package simkit

import "testing"

// Kernel micro-benchmarks. The schedule/fire and cancel paths must be
// allocation-free in steady state (the pool and heap arrays are warm after
// the first iterations); `make bench-smoke` runs these under -race, and the
// alloc tests below pin the zero-allocation claim in the regular test run.

func BenchmarkSimkitSchedule(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(10, nop)
		s.Step()
	}
}

func BenchmarkSimkitScheduleDeep(b *testing.B) {
	// Same path with a standing queue of 1024 events, so push and pop
	// actually traverse the 4-ary heap.
	s := New(1)
	for i := 0; i < 1024; i++ {
		s.After(Time(1+i), nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(2048, nop)
		s.Step()
	}
}

func BenchmarkSimkitCancel(b *testing.B) {
	s := New(1)
	for i := 0; i < 1024; i++ {
		s.After(Time(1+i), nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := s.After(512, nop)
		s.Cancel(e)
	}
}

func BenchmarkCoroSwitch(b *testing.B) {
	s := New(1)
	c := NewCoro(s, func(yield func(int)) {
		for {
			yield(0)
		}
	})
	defer c.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Next()
	}
}

func nop() {}

// The alloc assertions run as plain tests so CI catches a regression even
// when no one looks at benchmark output.

func TestScheduleFireDoesNotAllocate(t *testing.T) {
	s := New(1)
	// Warm the pool and heap backing arrays.
	for i := 0; i < 64; i++ {
		s.After(10, nop)
		s.Step()
	}
	avg := testing.AllocsPerRun(1000, func() {
		s.After(10, nop)
		s.Step()
	})
	if avg != 0 {
		t.Errorf("schedule+fire allocates %v objects per op, want 0", avg)
	}
}

func TestCancelDoesNotAllocate(t *testing.T) {
	s := New(1)
	for i := 0; i < 64; i++ {
		s.After(Time(1+i), nop)
	}
	avg := testing.AllocsPerRun(1000, func() {
		e := s.After(32, nop)
		s.Cancel(e)
	})
	if avg != 0 {
		t.Errorf("schedule+cancel allocates %v objects per op, want 0", avg)
	}
}

func TestCoroSwitchDoesNotAllocate(t *testing.T) {
	s := New(1)
	c := NewCoro(s, func(yield func(int)) {
		for {
			yield(0)
		}
	})
	defer c.Stop()
	c.Next()
	avg := testing.AllocsPerRun(1000, func() { c.Next() })
	if avg != 0 {
		t.Errorf("coroutine round trip allocates %v objects per op, want 0", avg)
	}
}
