// Package workload defines the benchmark models of the evaluation: the five
// DaCapo programs, five SPECjvm2008 programs, the three HiBench big-data
// jobs with small/large/huge data sizes, and the Cassandra server (§5.1,
// Table 2). A Profile is pure data: allocation behaviour (an objgraph
// parameterization), compute-per-work-item, scalability (a serial fraction
// executed under an application lock), big-data phase caching, and the
// Table-2 heap size. Package jvm turns profiles into running mutators.
//
// Real heaps are simulated at a per-profile scale (model bytes per real MB;
// DESIGN.md §6) chosen so every benchmark traces a few thousand objects per
// minor GC regardless of its nominal heap size.
package workload

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/objgraph"
	"repro/internal/simkit"
)

// Class distinguishes run-to-completion batch jobs from request servers.
type Class int

const (
	// Batch workloads run a fixed number of work items to completion.
	Batch Class = iota
	// Server workloads process requests from clients (Cassandra).
	Server
)

// DataSize selects a HiBench input scale (§5.5: small, large, huge).
type DataSize int

const (
	// SizeSmall is HiBench "small".
	SizeSmall DataSize = iota
	// SizeLarge is HiBench "large".
	SizeLarge
	// SizeHuge is HiBench "huge".
	SizeHuge
)

func (s DataSize) String() string {
	switch s {
	case SizeSmall:
		return "small"
	case SizeLarge:
		return "large"
	case SizeHuge:
		return "huge"
	}
	return fmt.Sprintf("DataSize(%d)", int(s))
}

// Profile describes one benchmark.
type Profile struct {
	Name  string
	Suite string // "DaCapo", "SPECjvm2008", "HiBench", "Apache"
	Class Class

	// HeapMB is the Table-2 heap size (real megabytes). MinHeapMB is the
	// benchmark's minimum heap (HeapMB is 3x it for DaCapo/SPECjvm, §5.1).
	HeapMB    int
	MinHeapMB int
	// ScalePerMB converts real megabytes to model bytes.
	ScalePerMB int64

	// Graph parameterizes the object graphs the mutators build. Its
	// RetainWindow is interpreted as an application-wide total: package jvm
	// divides it by the mutator count, so the medium-lived live set is a
	// property of the application rather than of its thread count.
	Graph objgraph.Params

	// Batch behaviour: TotalItems work items split across mutators, each
	// costing ItemCompute CPU and allocating ItemClusters object clusters.
	// SerialFrac of the compute runs under a shared application monitor
	// (Amdahl fraction: 0 = perfectly scalable).
	TotalItems   int
	ItemCompute  simkit.Time
	ItemClusters int
	SerialFrac   float64

	// Big-data phases (Spark-like): at each phase boundary the job drops
	// PhaseDropFrac of its cached RDD partitions and caches new ones until
	// the old generation holds PhaseCacheFrac of its capacity.
	Phases         int
	PhaseCacheFrac float64
	PhaseDropFrac  float64

	// Server behaviour (Class == Server).
	ServiceCompute  simkit.Time
	ServiceClusters int
}

// HeapConfig returns the model heap configuration for the profile's
// Table-2 heap size.
func (p Profile) HeapConfig() heap.Config { return p.HeapConfigMB(p.HeapMB) }

// HeapConfigMB returns the model heap configuration for an explicit real
// heap size (heap-size sweeps, Fig. 14). Layout follows Parallel Scavenge
// defaults: young = 1/3 of the heap, eden = 8/10 of young, survivors 1/10
// each, old = 2/3.
func (p Profile) HeapConfigMB(mb int) heap.Config {
	total := int64(mb) * p.ScalePerMB
	young := total / 3
	return heap.Config{
		EdenBytes:     young * 8 / 10,
		SurvivorBytes: young / 10,
		OldBytes:      total - young,
		TenureAge:     4,
	}
}

// Validate checks the profile for consistency.
func (p Profile) Validate() error {
	if p.Name == "" || p.HeapMB <= 0 || p.ScalePerMB <= 0 {
		return fmt.Errorf("workload: incomplete profile %+v", p)
	}
	if err := p.Graph.Validate(); err != nil {
		return fmt.Errorf("workload %s: %w", p.Name, err)
	}
	if p.Class == Batch && (p.TotalItems <= 0 || p.ItemCompute <= 0) {
		return fmt.Errorf("workload %s: batch profile needs items and compute", p.Name)
	}
	if p.Class == Server && p.ServiceCompute <= 0 {
		return fmt.Errorf("workload %s: server profile needs ServiceCompute", p.Name)
	}
	if p.SerialFrac < 0 || p.SerialFrac > 1 {
		return fmt.Errorf("workload %s: SerialFrac out of range", p.Name)
	}
	return nil
}

const (
	us = simkit.Microsecond
	ms = simkit.Millisecond
)

// graph builds an objgraph parameterization tersely.
func graph(size int32, fanout, stackW, retainW int, retain, attach, cross float64) objgraph.Params {
	return objgraph.Params{
		MeanObjectSize: size,
		ClusterFanout:  fanout,
		StackWindow:    stackW,
		RetainProb:     retain,
		RetainWindow:   retainW,
		OldAttachProb:  attach,
		AnchorWindow:   48, // per mutator; displaced subtrees tenure-die
		CrossRefProb:   cross,
	}
}

// Lusearch: DaCapo text search — highly scalable, allocation-intensive,
// small heap (90 MB = 3x min 30 MB), many minor GCs, severe task imbalance
// in the vanilla JVM (Fig. 4).
func Lusearch() Profile {
	return Profile{
		Name: "lusearch", Suite: "DaCapo", HeapMB: 90, MinHeapMB: 30, ScalePerMB: 73728,
		Graph:      graph(128, 4, 12, 320, 0.07, 0.08, 0.15),
		TotalItems: 60000, ItemCompute: 100 * us, ItemClusters: 3,
	}
}

// Xalan: DaCapo XSLT — scalable with moderate GC load.
func Xalan() Profile {
	return Profile{
		Name: "xalan", Suite: "DaCapo", HeapMB: 150, MinHeapMB: 50, ScalePerMB: 49152,
		Graph:      graph(128, 5, 12, 360, 0.08, 0.10, 0.20),
		TotalItems: 60000, ItemCompute: 150 * us, ItemClusters: 2, SerialFrac: 0.05,
	}
}

// H2: DaCapo in-memory database — non-scalable (transactions serialize on
// the database lock), large heap, long-lived data.
func H2() Profile {
	return Profile{
		Name: "h2", Suite: "DaCapo", HeapMB: 900, MinHeapMB: 300, ScalePerMB: 8192,
		Graph:      graph(160, 4, 16, 512, 0.20, 0.25, 0.25),
		TotalItems: 30000, ItemCompute: 380 * us, ItemClusters: 9, SerialFrac: 0.55,
	}
}

// Jython: DaCapo Python interpreter — non-scalable, small heap, frequent
// small collections.
func Jython() Profile {
	return Profile{
		Name: "jython", Suite: "DaCapo", HeapMB: 90, MinHeapMB: 30, ScalePerMB: 73728,
		Graph:      graph(96, 3, 16, 480, 0.08, 0.10, 0.20),
		TotalItems: 70000, ItemCompute: 190 * us, ItemClusters: 7, SerialFrac: 0.45,
	}
}

// Sunflow: DaCapo ray tracer — scalable and extremely allocation-heavy
// (the paper's largest GC-time improvement, 87.1%).
func Sunflow() Profile {
	return Profile{
		Name: "sunflow", Suite: "DaCapo", HeapMB: 210, MinHeapMB: 70, ScalePerMB: 32768,
		Graph:      graph(112, 9, 8, 192, 0.05, 0.06, 0.10),
		TotalItems: 60000, ItemCompute: 250 * us, ItemClusters: 3,
	}
}

// CompilerCompiler: SPECjvm2008 compiler.compiler — throughput benchmark
// with a large, well-connected live set; its remembered set is big, so root
// tasks are numerous and even, giving the lowest steal-failure rate in
// Table 1 (37.7%).
func CompilerCompiler() Profile {
	return Profile{
		Name: "compiler.compiler", Suite: "SPECjvm2008", HeapMB: 4000, MinHeapMB: 1333, ScalePerMB: 2048,
		Graph:      graph(128, 7, 20, 512, 0.25, 0.30, 0.30),
		TotalItems: 40000, ItemCompute: 280 * us, ItemClusters: 3,
	}
}

// Compress: SPECjvm2008 compress — few, large, long-lived buffers; little
// fine-grained GC work, so stealing fails often (90.3%).
func Compress() Profile {
	return Profile{
		Name: "compress", Suite: "SPECjvm2008", HeapMB: 2500, MinHeapMB: 833, ScalePerMB: 3072,
		Graph:      graph(1536, 1, 6, 64, 0.10, 0.10, 0.05),
		TotalItems: 30000, ItemCompute: 350 * us, ItemClusters: 1,
	}
}

// CryptoSignverify: SPECjvm2008 crypto.signverify — tiny transient objects,
// the highest steal-failure rate in Table 1 (93.6%).
func CryptoSignverify() Profile {
	return Profile{
		Name: "crypto.signverify", Suite: "SPECjvm2008", HeapMB: 2500, MinHeapMB: 833, ScalePerMB: 3072,
		Graph:      graph(80, 2, 8, 96, 0.04, 0.05, 0.08),
		TotalItems: 60000, ItemCompute: 180 * us, ItemClusters: 4,
	}
}

// XMLTransform: SPECjvm2008 xml.transform — mid-weight documents.
func XMLTransform() Profile {
	return Profile{
		Name: "xml.transform", Suite: "SPECjvm2008", HeapMB: 4000, MinHeapMB: 1333, ScalePerMB: 2048,
		Graph:      graph(144, 5, 16, 384, 0.15, 0.20, 0.25),
		TotalItems: 50000, ItemCompute: 240 * us, ItemClusters: 3,
	}
}

// XMLValidation: SPECjvm2008 xml.validation — large balanced trees; GC work
// parallelizes well even in the vanilla JVM (28.9% failure rate).
func XMLValidation() Profile {
	return Profile{
		Name: "xml.validation", Suite: "SPECjvm2008", HeapMB: 4000, MinHeapMB: 1333, ScalePerMB: 2048,
		Graph:      graph(128, 8, 20, 640, 0.22, 0.30, 0.30),
		TotalItems: 45000, ItemCompute: 220 * us, ItemClusters: 4,
	}
}

// hibench builds a Spark-style phased job.
func hibench(name string, size DataSize, items int, cache float64) Profile {
	p := Profile{
		Name: fmt.Sprintf("%s(%s)", name, size), Suite: "HiBench",
		HeapMB: 16384, MinHeapMB: 8192, ScalePerMB: 448,
		Graph:      graph(192, 5, 12, 384, 0.15, 0.25, 0.20),
		TotalItems: items, ItemCompute: 320 * us, ItemClusters: 3, SerialFrac: 0.08,
		Phases: 5, PhaseCacheFrac: cache, PhaseDropFrac: 0.5,
	}
	return p
}

// Kmeans returns the HiBench kmeans job at the given data size. The cached
// RDD partitions dominate the old generation; full GCs account for roughly
// two-thirds of GC time on large inputs (§5.5).
func Kmeans(size DataSize) Profile {
	switch size {
	case SizeSmall:
		return hibench("kmeans", size, 12000, 0.20)
	case SizeLarge:
		return hibench("kmeans", size, 30000, 0.45)
	default:
		return hibench("kmeans", size, 56000, 0.62)
	}
}

// Wordcount returns the HiBench wordcount job at the given data size.
func Wordcount(size DataSize) Profile {
	switch size {
	case SizeSmall:
		return hibench("wordcount", size, 10000, 0.15)
	case SizeLarge:
		return hibench("wordcount", size, 25000, 0.35)
	default:
		return hibench("wordcount", size, 45000, 0.50)
	}
}

// Pagerank returns the HiBench pagerank job. The huge data set exceeds the
// old generation and aborts with an out-of-memory error, as in the paper
// (§5.5: "pagerank with the huge dataset crashed due to out-of-memory").
func Pagerank(size DataSize) Profile {
	var p Profile
	switch size {
	case SizeSmall:
		p = hibench("pagerank", size, 12000, 0.25)
	case SizeLarge:
		p = hibench("pagerank", size, 32000, 0.55)
	default:
		p = hibench("pagerank", size, 64000, 0.97)
		p.PhaseDropFrac = 0.05 // the huge graph cannot be evicted
	}
	p.Graph.RetainProb = 0.22
	p.Graph.OldAttachProb = 0.4
	return p
}

// Cassandra returns the Cassandra server profile (8 GB heap, §5.1).
func Cassandra() Profile {
	return Profile{
		Name: "cassandra", Suite: "Apache", Class: Server,
		HeapMB: 8192, MinHeapMB: 4096, ScalePerMB: 1024,
		Graph:          graph(160, 4, 8, 512, 0.18, 0.28, 0.20),
		ServiceCompute: 220 * us, ServiceClusters: 2,
	}
}

// DaCapo returns the five DaCapo profiles in the paper's order.
func DaCapo() []Profile {
	return []Profile{H2(), Jython(), Lusearch(), Sunflow(), Xalan()}
}

// SPECjvm returns the five SPECjvm2008 profiles in the paper's order.
func SPECjvm() []Profile {
	return []Profile{CompilerCompiler(), Compress(), CryptoSignverify(), XMLTransform(), XMLValidation()}
}

// Table1Benchmarks returns the ten programs of Table 1 / Fig. 6.
func Table1Benchmarks() []Profile { return append(DaCapo(), SPECjvm()...) }

// ByName looks up a profile by benchmark name (HiBench names accept a
// "(size)" suffix; bare HiBench and cassandra names get defaults).
func ByName(name string) (Profile, error) {
	all := Table1Benchmarks()
	all = append(all,
		Kmeans(SizeSmall), Kmeans(SizeLarge), Kmeans(SizeHuge),
		Wordcount(SizeSmall), Wordcount(SizeLarge), Wordcount(SizeHuge),
		Pagerank(SizeSmall), Pagerank(SizeLarge), Pagerank(SizeHuge),
		Cassandra(),
	)
	for _, p := range all {
		if p.Name == name {
			return p, nil
		}
	}
	switch name {
	case "kmeans":
		return Kmeans(SizeLarge), nil
	case "wordcount":
		return Wordcount(SizeLarge), nil
	case "pagerank":
		return Pagerank(SizeLarge), nil
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}
