package workload

import (
	"strings"
	"testing"
)

// TestTable2HeapSizes pins the Table-2 heap configuration of the paper.
func TestTable2HeapSizes(t *testing.T) {
	want := map[string]int{
		"h2": 900, "jython": 90, "lusearch": 90, "sunflow": 210, "xalan": 150,
		"compiler.compiler": 4000, "compress": 2500, "crypto.signverify": 2500,
		"xml.transform": 4000, "xml.validation": 4000,
	}
	for _, p := range Table1Benchmarks() {
		if want[p.Name] == 0 {
			t.Errorf("unexpected benchmark %q", p.Name)
			continue
		}
		if p.HeapMB != want[p.Name] {
			t.Errorf("%s heap = %d MB, want %d (Table 2)", p.Name, p.HeapMB, want[p.Name])
		}
	}
	if Kmeans(SizeLarge).HeapMB != 16384 {
		t.Error("HiBench heap must be 16384 MB (Table 2)")
	}
	if Cassandra().HeapMB != 8192 {
		t.Error("Cassandra heap must be 8192 MB (Table 2)")
	}
}

func TestAllProfilesValidate(t *testing.T) {
	var all []Profile
	all = append(all, Table1Benchmarks()...)
	for _, sz := range []DataSize{SizeSmall, SizeLarge, SizeHuge} {
		all = append(all, Kmeans(sz), Wordcount(sz), Pagerank(sz))
	}
	all = append(all, Cassandra())
	for _, p := range all {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestHeapConfigLayout(t *testing.T) {
	p := Lusearch()
	cfg := p.HeapConfig()
	total := int64(p.HeapMB) * p.ScalePerMB
	young := cfg.EdenBytes + 2*cfg.SurvivorBytes
	if young > total/3+cfg.SurvivorBytes {
		t.Errorf("young gen %d exceeds 1/3 of heap %d", young, total)
	}
	if cfg.EdenBytes <= 0 || cfg.OldBytes < total/2 {
		t.Errorf("layout wrong: %+v", cfg)
	}
	// Sweeps scale linearly with the requested real size.
	small := p.HeapConfigMB(30)
	if small.EdenBytes*3 != cfg.EdenBytes {
		t.Errorf("30MB eden %d vs 90MB eden %d: want exact 1:3", small.EdenBytes, cfg.EdenBytes)
	}
}

func TestDaCapoAndSPECLists(t *testing.T) {
	if len(DaCapo()) != 5 || len(SPECjvm()) != 5 || len(Table1Benchmarks()) != 10 {
		t.Fatal("suite lists wrong length")
	}
	for _, p := range DaCapo() {
		if p.Suite != "DaCapo" {
			t.Errorf("%s suite = %q", p.Name, p.Suite)
		}
		if p.HeapMB != 3*p.MinHeapMB {
			t.Errorf("%s heap %d != 3x min %d (§5.1)", p.Name, p.HeapMB, p.MinHeapMB)
		}
	}
}

func TestDataSizesScaleWork(t *testing.T) {
	s, l, h := Kmeans(SizeSmall), Kmeans(SizeLarge), Kmeans(SizeHuge)
	if !(s.TotalItems < l.TotalItems && l.TotalItems < h.TotalItems) {
		t.Error("data sizes must scale TotalItems")
	}
	if !(s.PhaseCacheFrac < l.PhaseCacheFrac && l.PhaseCacheFrac < h.PhaseCacheFrac) {
		t.Error("data sizes must scale cached RDD fraction")
	}
	if SizeSmall.String() != "small" || SizeHuge.String() != "huge" {
		t.Error("DataSize strings wrong")
	}
}

func TestPagerankHugeIsOvercommitted(t *testing.T) {
	p := Pagerank(SizeHuge)
	if p.PhaseCacheFrac < 0.9 {
		t.Errorf("pagerank(huge) cache frac %.2f; must overcommit the old gen to OOM", p.PhaseCacheFrac)
	}
	if p.PhaseDropFrac > 0.1 {
		t.Error("pagerank(huge) must not evict its cache")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"lusearch", "xml.validation", "cassandra", "kmeans", "wordcount", "pagerank", "kmeans(huge)"} {
		p, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if !strings.HasPrefix(p.Name, strings.Split(name, "(")[0]) {
			t.Errorf("ByName(%q) returned %q", name, p.Name)
		}
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("ByName accepted an unknown benchmark")
	}
}

func TestServerProfileShape(t *testing.T) {
	c := Cassandra()
	if c.Class != Server {
		t.Error("cassandra must be a server profile")
	}
	if c.ServiceCompute <= 0 || c.ServiceClusters <= 0 {
		t.Error("cassandra service parameters missing")
	}
}

func TestValidateCatchesBrokenProfiles(t *testing.T) {
	p := Lusearch()
	p.SerialFrac = 2
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted SerialFrac=2")
	}
	p = Lusearch()
	p.TotalItems = 0
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted a batch profile without items")
	}
	p = Cassandra()
	p.ServiceCompute = 0
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted a server profile without service compute")
	}
}
