package taskq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDequeOwnerLIFO(t *testing.T) {
	var d Deque[int]
	for i := 1; i <= 3; i++ {
		d.PushBottom(i)
	}
	for want := 3; want >= 1; want-- {
		v, ok := d.PopBottom()
		if !ok || v != want {
			t.Fatalf("PopBottom = (%d,%v), want (%d,true)", v, ok, want)
		}
	}
	if _, ok := d.PopBottom(); ok {
		t.Error("PopBottom on empty deque succeeded")
	}
}

func TestDequeThiefFIFO(t *testing.T) {
	var d Deque[int]
	for i := 1; i <= 3; i++ {
		d.PushBottom(i)
	}
	for want := 1; want <= 3; want++ {
		v, ok := d.PopTop()
		if !ok || v != want {
			t.Fatalf("PopTop = (%d,%v), want (%d,true)", v, ok, want)
		}
	}
	if _, ok := d.PopTop(); ok {
		t.Error("PopTop on empty deque succeeded")
	}
	if d.Steals != 3 {
		t.Errorf("Steals = %d, want 3", d.Steals)
	}
}

func TestDequeMixedEnds(t *testing.T) {
	var d Deque[int]
	d.PushBottom(1)
	d.PushBottom(2)
	d.PushBottom(3)
	if v, _ := d.PopTop(); v != 1 {
		t.Errorf("PopTop = %d, want 1", v)
	}
	if v, _ := d.PopBottom(); v != 3 {
		t.Errorf("PopBottom = %d, want 3", v)
	}
	d.PushBottom(4)
	if v, _ := d.PopTop(); v != 2 {
		t.Errorf("PopTop = %d, want 2", v)
	}
	if v, _ := d.PopBottom(); v != 4 {
		t.Errorf("PopBottom = %d, want 4", v)
	}
	if !d.Empty() || d.Len() != 0 {
		t.Error("deque not empty after draining")
	}
}

func TestDequeStorageReclaimedWhenEmpty(t *testing.T) {
	var d Deque[int]
	for round := 0; round < 100; round++ {
		for i := 0; i < 10; i++ {
			d.PushBottom(i)
		}
		for i := 0; i < 10; i++ {
			d.PopTop()
		}
	}
	if cap(d.items) > 64 {
		t.Errorf("deque storage grew to %d despite resets", cap(d.items))
	}
}

// TestDequeConservation: a random sequence of operations never loses or
// duplicates a task.
func TestDequeConservation(t *testing.T) {
	prop := func(ops []uint8) bool {
		var d Deque[int]
		next := 0
		seen := map[int]int{}
		for _, op := range ops {
			switch op % 3 {
			case 0:
				d.PushBottom(next)
				next++
			case 1:
				if v, ok := d.PopBottom(); ok {
					seen[v]++
				}
			case 2:
				if v, ok := d.PopTop(); ok {
					seen[v]++
				}
			}
		}
		for d.Len() > 0 {
			v, _ := d.PopBottom()
			seen[v]++
		}
		if len(seen) != next {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// fakePool implements Pool over fixed lengths.
type fakePool []int

func (p fakePool) NumQueues() int     { return len(p) }
func (p fakePool) QueueLen(i int) int { return p[i] }

func TestBestOf2PicksLonger(t *testing.T) {
	pool := fakePool{0, 10, 2, 0}
	rng := rand.New(rand.NewSource(1))
	p := NewBestOf2()
	counts := map[int]int{}
	for i := 0; i < 1000; i++ {
		v := p.ChooseVictim(0, pool, rng)
		if v == 0 {
			t.Fatal("chose self")
		}
		counts[v]++
	}
	// Queue 1 (len 10) must dominate: it wins every pairing it appears in.
	if counts[1] < counts[2] || counts[1] < counts[3] {
		t.Errorf("longer queue not preferred: %v", counts)
	}
}

func TestBestOf2TooFewQueues(t *testing.T) {
	p := NewBestOf2()
	if v := p.ChooseVictim(0, fakePool{5}, rand.New(rand.NewSource(1))); v != -1 {
		t.Errorf("single-queue pool returned victim %d, want -1", v)
	}
}

func TestSemiRandomRemembersSuccess(t *testing.T) {
	pool := fakePool{0, 5, 5, 5}
	rng := rand.New(rand.NewSource(1))
	p := NewSemiRandom(4)
	p.RecordResult(0, 2, true)
	// With queue 2 remembered and all lengths equal, victim 2 must appear
	// at least as one of the two candidates every time; over many draws it
	// must be chosen far more often than under uniform best-of-2.
	hits := 0
	for i := 0; i < 1000; i++ {
		if p.ChooseVictim(0, pool, rng) == 2 {
			hits++
		}
	}
	if hits < 400 {
		t.Errorf("remembered victim chosen only %d/1000 times", hits)
	}
}

func TestSemiRandomGivesUpWhenBothEmpty(t *testing.T) {
	pool := fakePool{0, 0, 0, 0}
	rng := rand.New(rand.NewSource(1))
	p := NewSemiRandom(4)
	if v := p.ChooseVictim(0, pool, rng); v != -1 {
		t.Errorf("ChooseVictim on all-empty pool = %d, want -1", v)
	}
}

func TestSemiRandomForgetsFailedVictim(t *testing.T) {
	p := NewSemiRandom(4).(*semiRandom)
	p.RecordResult(0, 2, true)
	if p.lastSuccess[0] != 2 {
		t.Fatal("success not recorded")
	}
	p.RecordResult(0, 2, false)
	if p.lastSuccess[0] != -1 {
		t.Error("failure on remembered victim did not reset it")
	}
}

func TestNUMARestrictedStaysLocal(t *testing.T) {
	// Queues 0-3 on node 0, 4-7 on node 1.
	nodeOf := []int{0, 0, 0, 0, 1, 1, 1, 1}
	pool := fakePool{1, 1, 1, 1, 100, 100, 100, 100}
	rng := rand.New(rand.NewSource(1))
	p := NewNUMARestricted(nodeOf)
	for i := 0; i < 200; i++ {
		v := p.ChooseVictim(0, pool, rng)
		if v < 0 || nodeOf[v] != 0 {
			t.Fatalf("victim %d not on thief's node", v)
		}
	}
	if n := p.(*numaRestricted).LocalThreads(0); n != 4 {
		t.Errorf("LocalThreads(0) = %d, want 4", n)
	}
	if n := p.(*numaRestricted).LocalThreads(5); n != 4 {
		t.Errorf("LocalThreads(5) = %d, want 4", n)
	}
}

func TestSmartStealingSticksAndAborts(t *testing.T) {
	pool := fakePool{0, 3, 3, 3}
	rng := rand.New(rand.NewSource(1))
	p := NewSmartStealing(4)
	if !p.AbortOnFailure() {
		t.Error("SmartStealing must abort on failure")
	}
	p.RecordResult(0, 3, true)
	for i := 0; i < 50; i++ {
		if v := p.ChooseVictim(0, pool, rng); v != 3 {
			t.Fatalf("did not stick to successful victim: got %d", v)
		}
	}
	p.RecordResult(0, 3, false)
	// After failure the memory resets; victims vary again.
	varied := map[int]bool{}
	for i := 0; i < 100; i++ {
		varied[p.ChooseVictim(0, pool, rng)] = true
	}
	if len(varied) < 2 {
		t.Errorf("after reset victims did not vary: %v", varied)
	}
}

func TestStatsAggregation(t *testing.T) {
	s := NewStats(3)
	s.Attempts[0] = 10
	s.Failures[0] = 4
	s.Attempts[2] = 5
	s.Failures[2] = 5
	if s.TotalAttempts() != 15 || s.TotalFailures() != 9 {
		t.Errorf("totals = (%d,%d), want (15,9)", s.TotalAttempts(), s.TotalFailures())
	}
	if r := s.FailureRate(); r < 0.59 || r > 0.61 {
		t.Errorf("FailureRate = %v, want 0.6", r)
	}
	other := NewStats(3)
	other.Attempts[1] = 7
	s.Merge(other)
	if s.TotalAttempts() != 22 {
		t.Errorf("after merge TotalAttempts = %d, want 22", s.TotalAttempts())
	}
	if (&Stats{Attempts: []int64{0}, Failures: []int64{0}}).FailureRate() != 0 {
		t.Error("FailureRate on empty stats should be 0")
	}
}

func TestPolicyKindMake(t *testing.T) {
	nodeOf := []int{0, 0, 1, 1}
	for _, k := range []PolicyKind{KindBestOf2, KindSemiRandom, KindNUMARestricted, KindSmartStealing} {
		p := k.Make(4, nodeOf)
		if p == nil {
			t.Fatalf("Make(%v) returned nil", k)
		}
		if p.Name() != k.String() {
			t.Errorf("kind %v produced policy %q", k, p.Name())
		}
	}
	if PolicyKind(9).String() != "PolicyKind(9)" {
		t.Error("unknown kind String() wrong")
	}
}

func TestRandOtherNeverSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for self := 0; self < 5; self++ {
		for i := 0; i < 100; i++ {
			if v := randOther(self, 5, rng); v == self || v < 0 || v >= 5 {
				t.Fatalf("randOther(%d,5) = %d", self, v)
			}
		}
	}
}

// TestStatsMergeDifferentSizes: Merge used to index other's slices with
// s's length and panic when the two Stats were sized for different thread
// counts; now the receiver grows to cover the larger run.
func TestStatsMergeDifferentSizes(t *testing.T) {
	small := NewStats(2)
	small.Attempts[0], small.Failures[0] = 3, 1
	big := NewStats(4)
	big.Attempts[3], big.Failures[3] = 7, 2

	small.Merge(big) // must grow, not panic
	if len(small.Attempts) != 4 || len(small.Failures) != 4 {
		t.Fatalf("merged lengths = (%d,%d), want (4,4)", len(small.Attempts), len(small.Failures))
	}
	if small.TotalAttempts() != 10 || small.TotalFailures() != 3 {
		t.Errorf("merged totals = (%d,%d), want (10,3)", small.TotalAttempts(), small.TotalFailures())
	}
	if small.Attempts[3] != 7 {
		t.Errorf("grown slot Attempts[3] = %d, want 7", small.Attempts[3])
	}

	// Larger receiver keeps its extra thieves' counts.
	wide := NewStats(3)
	wide.Attempts[2] = 5
	wide.Merge(NewStats(1))
	if wide.Attempts[2] != 5 || len(wide.Attempts) != 3 {
		t.Errorf("merge of smaller stats disturbed receiver: %+v", wide)
	}

	wide.Merge(nil) // no-op
	if wide.TotalAttempts() != 5 {
		t.Error("Merge(nil) changed totals")
	}
}

// TestNUMARestrictedChooseVictimNoAlloc: the victim candidate lists are
// precomputed in NewNUMARestricted, so the steal hot path must not
// allocate.
func TestNUMARestrictedChooseVictimNoAlloc(t *testing.T) {
	nodeOf := []int{0, 0, 0, 0, 1, 1, 1, 1}
	var pool Pool = fakePool{3, 1, 4, 1, 5, 9, 2, 6}
	p := NewNUMARestricted(nodeOf)
	rng := rand.New(rand.NewSource(11))
	allocs := testing.AllocsPerRun(200, func() {
		if v := p.ChooseVictim(2, pool, rng); v < 0 {
			t.Fatal("no victim on a populated node")
		}
	})
	if allocs != 0 {
		t.Errorf("ChooseVictim allocates %.1f objects per call, want 0", allocs)
	}
}

func TestNUMARestrictedLoneThreadHasNoVictim(t *testing.T) {
	// Queue 2 is alone on node 1.
	p := NewNUMARestricted([]int{0, 0, 1, 0})
	if v := p.ChooseVictim(2, fakePool{4, 4, 4, 4}, rand.New(rand.NewSource(1))); v != -1 {
		t.Errorf("lone thread on its node got victim %d, want -1", v)
	}
}

// TestSemiRandomFallbackWhenRememberedDrained: when the remembered victim's
// queue is empty it is replaced by a random fallback, which must never be
// the drained queue or the thief itself, and must vary across candidates.
func TestSemiRandomFallbackWhenRememberedDrained(t *testing.T) {
	pool := fakePool{0, 5, 0, 5}
	p := NewSemiRandom(4).(*semiRandom)
	p.RecordResult(0, 2, true) // queue 2 later drains to empty
	rng := rand.New(rand.NewSource(3))
	got := map[int]bool{}
	for i := 0; i < 500; i++ {
		v := p.ChooseVictim(0, pool, rng)
		switch v {
		case 0:
			t.Fatal("chose self")
		case 2:
			t.Fatal("chose the drained remembered victim")
		case -1:
			// Both random draws can land on the empty queue; a failed
			// attempt is legal.
		default:
			got[v] = true
		}
	}
	if !got[1] || !got[3] {
		t.Errorf("random fallback did not vary victims: %v", got)
	}
}

// TestSemiRandomTieBreak pins the corrected tie rule of Algorithm 2: the
// "prefer q2" stickiness applies only to a genuinely remembered victim.
// When the remembered slot was unset, self, or empty — and q2 is just a
// second random draw — ties fall back to plain best-of-2 (first draw
// wins), exactly like bestOf2. Each case replays the rng's draw sequence
// with a reference generator to know which queues were picked.
func TestSemiRandomTieBreak(t *testing.T) {
	cases := []struct {
		name       string
		pool       fakePool
		remembered int  // lastSuccess[0] before the call
		sticky     bool // true: remembered victim must win ties
	}{
		{"remembered victim wins ties", fakePool{0, 4, 4, 4}, 2, true},
		{"remembered victim wins when longer", fakePool{0, 2, 5, 3}, 2, true},
		{"no memory: first draw wins ties", fakePool{0, 4, 4, 4}, -1, false},
		{"remembered is self: first draw wins ties", fakePool{0, 4, 4, 4}, 0, false},
		{"remembered empty: first draw wins ties", fakePool{0, 4, 4, 0}, 3, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewSemiRandom(4).(*semiRandom)
			rng := rand.New(rand.NewSource(9))
			ref := rand.New(rand.NewSource(9)) // replays the same draws
			for i := 0; i < 100; i++ {
				p.lastSuccess[0] = tc.remembered
				v := p.ChooseVictim(0, tc.pool, rng)
				q1 := randOther(0, 4, ref)
				var want int
				if tc.sticky {
					// Only q1 is drawn; the remembered victim is q2.
					q2 := tc.remembered
					if tc.pool.QueueLen(q2) >= tc.pool.QueueLen(q1) {
						want = q2
					} else {
						want = q1
					}
				} else {
					// Fallback path: q2 is a second random draw, plain
					// best-of-2 semantics (q1 keeps ties).
					q2 := randOther(0, 4, ref)
					if tc.pool.QueueLen(q1) == 0 && tc.pool.QueueLen(q2) == 0 {
						want = -1
					} else {
						want = longer(tc.pool, q1, q2)
					}
				}
				if v != want {
					t.Fatalf("iteration %d: got victim %d, want %d (q1=%d)", i, v, want, q1)
				}
			}
		})
	}
}

// TestSemiRandomStrictlyLongerRandomBeatsRemembered: stickiness prefers
// the remembered victim only on ties or when it is longer; a strictly
// longer random candidate must still win.
func TestSemiRandomStrictlyLongerRandomBeatsRemembered(t *testing.T) {
	pool := fakePool{0, 9, 1, 1} // queue 1 is strictly longest
	p := NewSemiRandom(4).(*semiRandom)
	rng := rand.New(rand.NewSource(3))
	ref := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		p.lastSuccess[0] = 2 // remembered, non-empty, but short
		v := p.ChooseVictim(0, pool, rng)
		q1 := randOther(0, 4, ref)
		want := 2
		if pool.QueueLen(q1) > pool.QueueLen(2) {
			want = q1
		}
		if v != want {
			t.Fatalf("iteration %d: got victim %d, want %d (q1=%d)", i, v, want, q1)
		}
	}
}

func TestDequeCompactsDeadPrefix(t *testing.T) {
	// A deque that is mostly stolen from must not hold its high-water-mark
	// backing array: once top passes the halfway point the live region is
	// copied down, and a grossly oversized array is reallocated smaller.
	var d Deque[int]
	const n = 1024
	for i := 0; i < n; i++ {
		d.PushBottom(i)
	}
	grown := d.Cap()
	if grown < n {
		t.Fatalf("backing array cap = %d, want >= %d", grown, n)
	}
	// Steal most of the queue, leaving a small live tail.
	for i := 0; i < n-16; i++ {
		v, ok := d.PopTop()
		if !ok || v != i {
			t.Fatalf("PopTop #%d = (%d,%v), want (%d,true)", i, v, ok, i)
		}
	}
	if d.Cap() >= grown {
		t.Errorf("cap = %d after heavy stealing, want shrunk below %d", d.Cap(), grown)
	}
	// Order of the remaining window must be intact from both ends.
	if v, _ := d.PopTop(); v != n-16 {
		t.Errorf("PopTop after compaction = %d, want %d", v, n-16)
	}
	if v, _ := d.PopBottom(); v != n-1 {
		t.Errorf("PopBottom after compaction = %d, want %d", v, n-1)
	}
	for want := n - 15; want <= n-2; want++ {
		v, ok := d.PopTop()
		if !ok || v != want {
			t.Fatalf("drain PopTop = (%d,%v), want (%d,true)", v, ok, want)
		}
	}
	if !d.Empty() {
		t.Error("deque not empty after drain")
	}
}

func TestDequeCompactionPreservesMixedOrder(t *testing.T) {
	// Interleave pushes with heavy stealing across the compaction threshold
	// and check against a reference slice model.
	var d Deque[int]
	var model []int
	next := 0
	rng := rand.New(rand.NewSource(5))
	for step := 0; step < 10000; step++ {
		switch k := rng.Intn(5); {
		case k < 2:
			d.PushBottom(next)
			model = append(model, next)
			next++
		case k < 4:
			v, ok := d.PopTop()
			wantOK := len(model) > 0
			if ok != wantOK {
				t.Fatalf("step %d: PopTop ok=%v, want %v", step, ok, wantOK)
			}
			if ok {
				if v != model[0] {
					t.Fatalf("step %d: PopTop = %d, want %d", step, v, model[0])
				}
				model = model[1:]
			}
		default:
			v, ok := d.PopBottom()
			wantOK := len(model) > 0
			if ok != wantOK {
				t.Fatalf("step %d: PopBottom ok=%v, want %v", step, ok, wantOK)
			}
			if ok {
				if v != model[len(model)-1] {
					t.Fatalf("step %d: PopBottom = %d, want %d", step, v, model[len(model)-1])
				}
				model = model[:len(model)-1]
			}
		}
		if d.Len() != len(model) {
			t.Fatalf("step %d: Len = %d, want %d", step, d.Len(), len(model))
		}
	}
}
