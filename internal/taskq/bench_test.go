package taskq

import (
	"math/rand"
	"testing"
)

// benchPool adapts a deque slice to the Pool interface.
type benchPool struct{ queues []Deque[int] }

func (p benchPool) NumQueues() int     { return len(p.queues) }
func (p benchPool) QueueLen(i int) int { return p.queues[i].Len() }

// BenchmarkStealLoop measures the engine's steal inner loop in isolation:
// per attempt one ChooseVictim draw, a PopTop on the chosen victim and the
// stats bookkeeping, exactly as pscavenge's steal task performs them. One
// op is a full cycle — reseed the victims' queues, then thieve until the
// pool is dry. The loop must not allocate (bench-guard): deque backings,
// policy state and the RNG are all reused across cycles.
func BenchmarkStealLoop(b *testing.B) {
	const (
		workers  = 8
		perQueue = 32 // below the deque's shrink threshold: no realloc churn
	)
	queues := make([]Deque[int], workers)
	// Hoisted interface conversion, as the engine does with its poolView:
	// converting per ChooseVictim call would box the struct every attempt.
	var pool Pool = benchPool{queues: queues}
	policy := NewBestOf2()
	stats := NewStats(workers)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for q := 1; q < workers; q++ {
			for j := 0; j < perQueue; j++ {
				queues[q].PushBottom(j)
			}
		}
		remaining := (workers - 1) * perQueue
		for remaining > 0 {
			victim := policy.ChooseVictim(0, pool, rng)
			stats.Attempts[0]++
			if victim >= 0 {
				if _, ok := queues[victim].PopTop(); ok {
					policy.RecordResult(0, victim, true)
					remaining--
					continue
				}
			}
			policy.RecordResult(0, victim, false)
			stats.Failures[0]++
		}
	}
	b.StopTimer()
	if stats.TotalAttempts() < int64(b.N)*(workers-1)*perQueue {
		b.Fatal("steal loop lost attempts")
	}
}
