package taskq

import "repro/internal/evtrace"

// tracedPolicy decorates a Policy so every steal attempt's outcome is
// published on the event bus. It only observes RecordResult — victim
// choice is delegated untouched — so traced runs make exactly the same
// decisions (and RNG draws) as untraced ones.
type tracedPolicy struct {
	Policy
	tr  *evtrace.Tracer
	now func() int64 // virtual clock, in ns
}

// Traced wraps p with steal-event tracing. When tr is nil it returns p
// unchanged, so the disabled path adds no indirection at all.
func Traced(p Policy, tr *evtrace.Tracer, now func() int64) Policy {
	if tr == nil {
		return p
	}
	return &tracedPolicy{Policy: p, tr: tr, now: now}
}

func (t *tracedPolicy) RecordResult(self, victim int, success bool) {
	kind := evtrace.KStealFail
	if success {
		kind = evtrace.KStealOK
	}
	t.tr.Emit(evtrace.Event{Kind: kind, At: t.now(), Core: -1,
		TID: int32(self), Arg1: int64(victim)})
	t.Policy.RecordResult(self, victim, success)
}
