// Package taskq provides the intra-GC work-distribution machinery of
// Parallel Scavenge (§2.3): the per-thread GenericTaskQueue deque holding
// fine-grained tasks, and the victim-selection policies used by work
// stealing — HotSpot's steal_best_of_2, the paper's optimized semi-random
// variant (Algorithm 2), the NUMA-restricted stealing of Gidra et al., and
// the SmartStealing heuristic of Qian et al. (both evaluated as baselines).
package taskq

// Deque is a work-stealing double-ended queue. The owner pushes and pops at
// the bottom (LIFO, depth-first locality); thieves steal from the top
// (FIFO, taking the oldest — usually largest — subtree). The simulation is
// single-threaded by construction, so no synchronization is needed; the
// semantics mirror HotSpot's GenericTaskQueue.
type Deque[T any] struct {
	items []T
	top   int // index of the oldest element

	Pushes int
	Pops   int // successful PopBottom calls (owner side)
	Steals int // successful PopTop calls
}

// Len returns the number of queued tasks.
func (d *Deque[T]) Len() int { return len(d.items) - d.top }

// Empty reports whether the deque has no tasks.
func (d *Deque[T]) Empty() bool { return d.Len() == 0 }

// PushBottom adds a task at the owner's end.
func (d *Deque[T]) PushBottom(v T) {
	d.items = append(d.items, v)
	d.Pushes++
}

// PopBottom removes the most recently pushed task (owner side).
func (d *Deque[T]) PopBottom() (T, bool) {
	var zero T
	if d.Empty() {
		d.reset()
		return zero, false
	}
	v := d.items[len(d.items)-1]
	d.items[len(d.items)-1] = zero
	d.items = d.items[:len(d.items)-1]
	d.Pops++
	if d.Empty() {
		d.reset()
	}
	return v, true
}

// PopTop removes the oldest task (thief side).
func (d *Deque[T]) PopTop() (T, bool) {
	var zero T
	if d.Empty() {
		d.reset()
		return zero, false
	}
	v := d.items[d.top]
	d.items[d.top] = zero
	d.top++
	d.Steals++
	if d.Empty() {
		d.reset()
	} else if d.top > len(d.items)/2 {
		d.compact()
	}
	return v, true
}

// Cap exposes the backing array's capacity (for tests and instrumentation).
func (d *Deque[T]) Cap() int { return cap(d.items) }

// compact copies the live region down over the dead prefix. Without it a
// heavily stolen-from deque keeps its high-water-mark backing array for the
// whole scavenge, since the prefix is only dropped on a full drain. When the
// live region has shrunk to a quarter of a genuinely large backing array,
// the array is reallocated at the live size so the memory is actually
// released. The release threshold is deliberately high: ordinary
// collections cycle a few hundred entries per queue, and shrinking those
// would make every scavenge re-grow the array it just gave back
// (steady-state collections must not allocate — see bench-guard).
func (d *Deque[T]) compact() {
	n := copy(d.items, d.items[d.top:])
	var zero T
	for i := n; i < len(d.items); i++ {
		d.items[i] = zero
	}
	d.items = d.items[:n]
	d.top = 0
	if cap(d.items) >= 1024 && n <= cap(d.items)/4 {
		shrunk := make([]T, n)
		copy(shrunk, d.items)
		d.items = shrunk
	}
}

func (d *Deque[T]) reset() {
	d.items = d.items[:0]
	d.top = 0
}
