package taskq

import (
	"fmt"
	"math/rand"
)

// Pool is the stealing policies' view of the GC threads' local queues.
type Pool interface {
	// NumQueues returns the number of GC threads (and local queues).
	NumQueues() int
	// QueueLen returns the current length of queue i.
	QueueLen(i int) int
}

// Policy selects steal victims. Implementations are per-GC (they may keep
// per-thief state) and must be deterministic given the rng.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// ChooseVictim returns the queue thief self should steal from, or -1
	// when the policy found no candidate (counted as a failed attempt).
	ChooseVictim(self int, pool Pool, rng *rand.Rand) int
	// RecordResult reports whether the attempted steal succeeded.
	RecordResult(self, victim int, success bool)
	// AbortOnFailure reports whether a failed attempt should abandon
	// stealing immediately (SmartStealing's behaviour).
	AbortOnFailure() bool
}

// Stats counts steal attempts per thief; the engine fills it. It produces
// Table 1 and Figure 9.
type Stats struct {
	Attempts []int64
	Failures []int64
}

// NewStats creates counters for n thieves.
func NewStats(n int) *Stats {
	return &Stats{Attempts: make([]int64, n), Failures: make([]int64, n)}
}

// TotalAttempts sums attempts across thieves.
func (s *Stats) TotalAttempts() int64 { return sum(s.Attempts) }

// TotalFailures sums failures across thieves.
func (s *Stats) TotalFailures() int64 { return sum(s.Failures) }

// FailureRate returns failed/total (0 when no attempts).
func (s *Stats) FailureRate() float64 {
	a := s.TotalAttempts()
	if a == 0 {
		return 0
	}
	return float64(s.TotalFailures()) / float64(a)
}

// Merge adds other's counters into s. The two Stats may come from runs
// with different thread counts: s grows to hold other's extra thieves, and
// thieves present only in s keep their counts. A nil other is a no-op.
func (s *Stats) Merge(other *Stats) {
	if other == nil {
		return
	}
	if n := len(other.Attempts); n > len(s.Attempts) {
		s.Attempts = append(s.Attempts, make([]int64, n-len(s.Attempts))...)
	}
	if n := len(other.Failures); n > len(s.Failures) {
		s.Failures = append(s.Failures, make([]int64, n-len(s.Failures))...)
	}
	for i, v := range other.Attempts {
		s.Attempts[i] += v
	}
	for i, v := range other.Failures {
		s.Failures[i] += v
	}
}

func sum(xs []int64) int64 {
	var t int64
	for _, x := range xs {
		t += x
	}
	return t
}

// --- steal_best_of_2 (HotSpot default, §2.3) -------------------------------

type bestOf2 struct{}

// NewBestOf2 returns HotSpot's default policy: pick two random queues and
// steal from the longer.
func NewBestOf2() Policy { return bestOf2{} }

func (bestOf2) Name() string                                { return "best-of-2" }
func (bestOf2) AbortOnFailure() bool                        { return false }
func (bestOf2) RecordResult(self, victim int, success bool) {}

func (bestOf2) ChooseVictim(self int, pool Pool, rng *rand.Rand) int {
	n := pool.NumQueues()
	if n < 2 {
		return -1
	}
	q1 := randOther(self, n, rng)
	q2 := randOther(self, n, rng)
	return longer(pool, q1, q2)
}

// --- semi-random stealing (the paper's Algorithm 2) ------------------------

type semiRandom struct {
	lastSuccess []int // per-thief qs; -1 = ϕ
}

// NewSemiRandom returns the paper's optimized policy: one candidate is the
// last successful victim (if it still has work), the other is random; steal
// from the longer.
func NewSemiRandom(nthreads int) Policy {
	s := &semiRandom{lastSuccess: make([]int, nthreads)}
	for i := range s.lastSuccess {
		s.lastSuccess[i] = -1
	}
	return s
}

func (s *semiRandom) Name() string         { return "semi-random" }
func (s *semiRandom) AbortOnFailure() bool { return false }

func (s *semiRandom) ChooseVictim(self int, pool Pool, rng *rand.Rand) int {
	n := pool.NumQueues()
	if n < 2 {
		return -1
	}
	q1 := randOther(self, n, rng)
	q2 := s.lastSuccess[self]
	remembered := q2 >= 0 && q2 != self && pool.QueueLen(q2) > 0
	if !remembered {
		q2 = randOther(self, n, rng)
	}
	if pool.QueueLen(q1) == 0 && pool.QueueLen(q2) == 0 {
		s.lastSuccess[self] = -1
		return -1
	}
	if remembered {
		// Prefer q2 (the remembered victim) on ties: stickiness is the
		// point of Algorithm 2.
		if pool.QueueLen(q2) >= pool.QueueLen(q1) {
			return q2
		}
		return q1
	}
	// Both candidates are random draws — the remembered victim was unset,
	// self, or empty — so there is nothing to be sticky to: fall back to
	// plain best-of-2 (first draw wins ties, like bestOf2).
	return longer(pool, q1, q2)
}

func (s *semiRandom) RecordResult(self, victim int, success bool) {
	if success {
		s.lastSuccess[self] = victim
	} else if s.lastSuccess[self] == victim {
		s.lastSuccess[self] = -1
	}
}

// --- NUMA-restricted stealing (Gidra et al., ported baseline, §5.2) --------

type numaRestricted struct {
	node     []int   // queue index -> node
	siblings [][]int // queue index -> node-local victim candidates
}

// NewNUMARestricted returns best-of-2 stealing restricted to victims on the
// thief's NUMA node, per Gidra et al.'s NUMA-aware stealing. The per-node
// sibling lists are precomputed here so ChooseVictim — the hottest loop of
// the simulation — does not allocate.
func NewNUMARestricted(nodeOf []int) Policy {
	p := &numaRestricted{node: nodeOf, siblings: make([][]int, len(nodeOf))}
	for self := range nodeOf {
		for i, n := range nodeOf {
			if i != self && n == nodeOf[self] {
				p.siblings[self] = append(p.siblings[self], i)
			}
		}
	}
	return p
}

func (p *numaRestricted) Name() string                                { return "numa-restricted" }
func (p *numaRestricted) AbortOnFailure() bool                        { return false }
func (p *numaRestricted) RecordResult(self, victim int, success bool) {}

func (p *numaRestricted) ChooseVictim(self int, pool Pool, rng *rand.Rand) int {
	local := p.siblings[self]
	if len(local) == 0 {
		return -1
	}
	q1 := local[rng.Intn(len(local))]
	q2 := local[rng.Intn(len(local))]
	return longer(pool, q1, q2)
}

// LocalThreads returns how many queues share self's node (the paper's
// N_local, used for the NUMA termination threshold 2·N_local).
func (p *numaRestricted) LocalThreads(self int) int {
	n := 0
	for i := range p.node {
		if p.node[i] == p.node[self] {
			n++
		}
	}
	return n
}

// --- SmartStealing (Qian et al., baseline, §6.1) ----------------------------

type smartStealing struct {
	lastSuccess []int
}

// NewSmartStealing returns Qian et al.'s heuristic: keep stealing from the
// same victim after a success; abort stealing immediately after a failure.
func NewSmartStealing(nthreads int) Policy {
	s := &smartStealing{lastSuccess: make([]int, nthreads)}
	for i := range s.lastSuccess {
		s.lastSuccess[i] = -1
	}
	return s
}

func (s *smartStealing) Name() string         { return "smart-stealing" }
func (s *smartStealing) AbortOnFailure() bool { return true }

func (s *smartStealing) ChooseVictim(self int, pool Pool, rng *rand.Rand) int {
	if v := s.lastSuccess[self]; v >= 0 && v != self && pool.QueueLen(v) > 0 {
		return v
	}
	n := pool.NumQueues()
	if n < 2 {
		return -1
	}
	return randOther(self, n, rng)
}

func (s *smartStealing) RecordResult(self, victim int, success bool) {
	if success {
		s.lastSuccess[self] = victim
	} else {
		s.lastSuccess[self] = -1
	}
}

// --- helpers ----------------------------------------------------------------

func randOther(self, n int, rng *rand.Rand) int {
	q := rng.Intn(n - 1)
	if q >= self {
		q++
	}
	return q
}

func longer(pool Pool, q1, q2 int) int {
	if pool.QueueLen(q2) > pool.QueueLen(q1) {
		return q2
	}
	return q1
}

// PolicyKind names a policy for configuration.
type PolicyKind int

const (
	// KindBestOf2 is HotSpot's default steal_best_of_2.
	KindBestOf2 PolicyKind = iota
	// KindSemiRandom is the paper's Algorithm 2.
	KindSemiRandom
	// KindNUMARestricted is Gidra et al.'s node-local stealing.
	KindNUMARestricted
	// KindSmartStealing is Qian et al.'s heuristic.
	KindSmartStealing
)

func (k PolicyKind) String() string {
	switch k {
	case KindBestOf2:
		return "best-of-2"
	case KindSemiRandom:
		return "semi-random"
	case KindNUMARestricted:
		return "numa-restricted"
	case KindSmartStealing:
		return "smart-stealing"
	}
	return fmt.Sprintf("PolicyKind(%d)", int(k))
}

// Make instantiates a policy for nthreads queues; nodeOf is required for
// KindNUMARestricted and ignored otherwise.
func (k PolicyKind) Make(nthreads int, nodeOf []int) Policy {
	switch k {
	case KindSemiRandom:
		return NewSemiRandom(nthreads)
	case KindNUMARestricted:
		return NewNUMARestricted(nodeOf)
	case KindSmartStealing:
		return NewSmartStealing(nthreads)
	default:
		return NewBestOf2()
	}
}
