// Package check is the online cross-layer invariant checker: it subscribes
// to the evtrace bus and validates conservation laws while the simulation
// runs. The simulator's layers each maintain redundant state (a thread is
// "on core 3's runqueue" in cfs, "owner of GCTaskManager" in jmutex,
// "executing StealTask" in pscavenge); the bus events expose enough of that
// state that an independent observer can replay it and catch any layer
// lying to another — the class of bug behind the paper's §3 pathologies.
//
// The checker is an Event subscriber, not a ring-buffer reader: it sees the
// complete stream even when the tracer's rings wrap, and it validates
// online so a violation pinpoints the first inconsistent event (by Seq),
// not a downstream symptom. It never emits, never touches the simulation's
// RNG or event queue, and keeps no references into simulator structures, so
// attaching it cannot perturb a run: golden outputs are byte-identical with
// the checker on and off (asserted by TestGoldenScale4CheckEnabled).
//
// Invariants validated (the Inv field of a Violation):
//
//	time.monotonic      instant timestamps never decrease; span ends
//	                    never precede the current instant
//	span.nonneg         spans have non-negative durations
//	sched.core-exclusive  a core never has two dispatched threads at once
//	sched.rq-membership   a runnable thread sits on exactly one runqueue;
//	                      pops only remove threads actually queued there
//	sched.rq-accounting   KRunqPush/KRunqPop queue lengths match the
//	                      replayed runqueue contents
//	sched.load-accounting KRunqPush core load matches |rq| + running
//	sched.dispatch-span   a KDispatch span covers exactly the stint its
//	                      dispatch pop started
//	sched.vruntime-mono   a core's min-vruntime never goes backwards
//	sched.migrate-queued  migrations only move threads that are neither
//	                      queued nor running
//	lock.owner          acquisitions require a free lock; releases come
//	                    from the owner (exactly one owner at a time)
//	lock.reacquire-flag the fast path's reacquire bit matches the
//	                    previous-owner history
//	lock.unblock-source unlock-chain wakeups are performed by the thread
//	                    that last released the lock
//	lock.bypass         bypass events actually bypassed queued waiters
//	term.offer-range    termination offers stay within [1, N]
//	taskq.balance       at termination, deque pushes == pops + steals
//	                    (every stolen or popped task was pushed; queues
//	                    drain exactly)
//	task.unique         every GC task is enqueued exactly once
//	task.dispatch       every fetched task was enqueued and not yet
//	                    dispatched (dispatched exactly once)
//	task.execute        every executed task was dispatched exactly once
//	task.stranded       no enqueued task is still undispatched when its
//	                    engine's termination protocol completes
//	task.undispatched   (Finish) every enqueued task was dispatched
//	task.incomplete     (Finish) every dispatched non-steal task completed
//	simkit.schedule-past  events are never scheduled into the past
//	simkit.conservation   (Finish) fires + cancels never exceed schedules
//
// Steal tasks are exempt from task.incomplete: a run that ends while a
// worker sleeps inside the termination protocol (Machine.Run returns once
// the mutators finish; Kernel.Shutdown cancels sleep timers) legitimately
// leaves that worker's StealTask span unemitted. Dispatch is still
// mandatory — termination needs every steal task running simultaneously.
//
// This package intentionally imports only evtrace, mirroring the bus's own
// no-dependency rule, so every layer above it (experiments, cmd/gcsim,
// cmd/simcheck) can attach a checker without import cycles.
package check

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/evtrace"
)

// Violation is one invariant failure, anchored to the event that exposed
// it (Seq orders it on the bus; At locates it in virtual time).
type Violation struct {
	Inv string // invariant identifier, e.g. "sched.core-exclusive"
	Seq uint64 // bus sequence number of the offending event
	At  int64  // virtual time (ns) of the offending event
	Msg string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] seq=%d t=%dns: %s", v.Inv, v.Seq, v.At, v.Msg)
}

// DefaultMaxViolations caps how many violations are retained (a single
// broken invariant upstream can cascade into thousands downstream; the
// first few are the diagnostic ones).
const DefaultMaxViolations = 64

type coreState struct {
	rq           map[int32]bool // TIDs queued on this core
	running      int32          // dispatched TID, -1 when none
	runningSince int64          // At of the dispatch pop
	minVr        int64          // last observed min-vruntime
	haveMinVr    bool
}

type threadState struct {
	onRq      int32 // core whose runqueue holds the thread, -1 when none
	runningOn int32 // core currently running the thread, -1 when none
}

type lockState struct {
	owner     int32 // owning TID, -1 when free
	lastOwner int32 // previous owner, for the reacquire flag
	haveLast  bool
}

type taskPhase uint8

const (
	taskPending taskPhase = iota // enqueued, not yet fetched
	taskDispatched
	taskDone
)

type taskState struct {
	phase taskPhase
	kind  string // task kind name from the enqueue event
}

// Checker replays the bus's event stream against an independent model of
// the scheduler, monitor, and task-queue state. Like the Tracer it serves,
// it is single-threaded: one Checker per simulation cell.
type Checker struct {
	// MaxViolations caps retained violations (0 = DefaultMaxViolations).
	MaxViolations int

	violations []Violation
	total      int // violations seen, including past the cap

	cores   map[int32]*coreState
	threads map[int32]*threadState
	locks   map[string]*lockState
	tasks   map[int64]*taskState
	// pendingByEngine counts enqueued-but-undispatched tasks per engine
	// instance (the task id's high 32 bits), so task.stranded works on
	// multi-JVM machines where terminations interleave.
	pendingByEngine map[int64]int

	schedules, fires, cancels uint64
	lastAt                    int64
	seen                      uint64 // events observed
	finished                  bool

	tr *evtrace.Tracer // for thread names in messages (may be nil)
}

// New creates an empty checker.
func New() *Checker {
	return &Checker{
		cores:           make(map[int32]*coreState),
		threads:         make(map[int32]*threadState),
		locks:           make(map[string]*lockState),
		tasks:           make(map[int64]*taskState),
		pendingByEngine: make(map[int64]int),
	}
}

// Attach subscribes the checker to tr's event stream and remembers the
// tracer for thread-name lookups in violation messages.
func (c *Checker) Attach(tr *evtrace.Tracer) {
	c.tr = tr
	tr.Subscribe(c.OnEvent)
}

// Violations returns the retained violations in detection order.
func (c *Checker) Violations() []Violation { return c.violations }

// Total returns how many violations were detected, including any past the
// retention cap.
func (c *Checker) Total() int { return c.total }

// EventsSeen returns how many bus events the checker has observed.
func (c *Checker) EventsSeen() uint64 { return c.seen }

// Err returns nil when no invariant was violated, else an error summarizing
// the first violation (and the total count).
func (c *Checker) Err() error {
	if c.total == 0 {
		return nil
	}
	return fmt.Errorf("check: %d invariant violation(s), first: %s",
		c.total, c.violations[0])
}

func (c *Checker) violate(inv string, e evtrace.Event, format string, args ...any) {
	c.total++
	max := c.MaxViolations
	if max <= 0 {
		max = DefaultMaxViolations
	}
	if len(c.violations) >= max {
		return
	}
	c.violations = append(c.violations, Violation{
		Inv: inv, Seq: e.Seq, At: e.At, Msg: fmt.Sprintf(format, args...),
	})
}

func (c *Checker) core(id int32) *coreState {
	cs := c.cores[id]
	if cs == nil {
		cs = &coreState{rq: make(map[int32]bool), running: -1}
		c.cores[id] = cs
	}
	return cs
}

func (c *Checker) thread(id int32) *threadState {
	ts := c.threads[id]
	if ts == nil {
		ts = &threadState{onRq: -1, runningOn: -1}
		c.threads[id] = ts
	}
	return ts
}

func (c *Checker) lock(name string) *lockState {
	ls := c.locks[name]
	if ls == nil {
		ls = &lockState{owner: -1, lastOwner: -1}
		c.locks[name] = ls
	}
	return ls
}

// tname renders a thread id with its registered name when known.
func (c *Checker) tname(tid int32) string {
	if n := c.tr.ThreadName(tid); n != "" {
		return fmt.Sprintf("%d(%s)", tid, n)
	}
	return strconv.Itoa(int(tid))
}

// engineOf extracts the engine instance from a task id (ids are
// instance<<32 | seq, assigned by pscavenge).
func engineOf(taskID int64) int64 { return taskID >> 32 }

// engineFromMonitor maps a GCTaskManager monitor name back to its engine
// instance ("GCTaskManager" → 0, "GCTaskManager#2" → 2).
func engineFromMonitor(name string) int64 {
	if _, suffix, ok := strings.Cut(name, "#"); ok {
		if n, err := strconv.ParseInt(suffix, 10, 64); err == nil {
			return n
		}
	}
	return 0
}

// stealKind reports whether a task kind name is a work-stealing task
// (exempt from the completed-before-termination requirement; see the
// package comment).
func stealKind(kind string) bool {
	return kind == "StealTask" || kind == "MarkStealTask"
}

// OnEvent feeds one bus event through every applicable invariant. It is
// the subscription callback installed by Attach, and may be called
// directly when replaying a recorded stream.
func (c *Checker) OnEvent(e evtrace.Event) {
	c.seen++
	c.checkTime(e)
	switch e.Kind {
	case evtrace.KEvSchedule:
		c.schedules++
		if e.Arg1 < e.At {
			c.violate("simkit.schedule-past", e,
				"event scheduled for t=%d, %dns in the past", e.Arg1, e.At-e.Arg1)
		}
	case evtrace.KEvFire:
		c.fires++
	case evtrace.KEvCancel:
		c.cancels++
		if e.Arg1 < e.At {
			c.violate("simkit.schedule-past", e,
				"cancelled event had target t=%d in the past", e.Arg1)
		}

	case evtrace.KRunqPush:
		c.onRunqPush(e)
	case evtrace.KRunqPop:
		c.onRunqPop(e)
	case evtrace.KDispatch:
		c.onDispatch(e)
	case evtrace.KMigrate:
		ts := c.thread(e.TID)
		if ts.onRq >= 0 {
			c.violate("sched.migrate-queued", e,
				"thread %s migrated %d→%d while still on core %d's runqueue",
				c.tname(e.TID), e.Arg1, e.Arg2, ts.onRq)
		}
		if ts.runningOn >= 0 {
			c.violate("sched.migrate-queued", e,
				"thread %s migrated %d→%d while running on core %d",
				c.tname(e.TID), e.Arg1, e.Arg2, ts.runningOn)
		}

	case evtrace.KLockFast:
		ls := c.lock(e.Name)
		if ls.owner >= 0 {
			c.violate("lock.owner", e,
				"%s: fast acquire by %s while owned by %s",
				e.Name, c.tname(e.TID), c.tname(ls.owner))
		}
		wantReacq := ls.haveLast && ls.lastOwner == e.TID
		if (e.Arg2 == 1) != wantReacq {
			c.violate("lock.reacquire-flag", e,
				"%s: fast acquire by %s has reacquire=%d, previous owner %s",
				e.Name, c.tname(e.TID), e.Arg2, c.tname(ls.lastOwner))
		}
		ls.owner = e.TID
	case evtrace.KLockHandoff:
		ls := c.lock(e.Name)
		if ls.owner >= 0 {
			c.violate("lock.owner", e,
				"%s: handoff to %s while owned by %s",
				e.Name, c.tname(e.TID), c.tname(ls.owner))
		}
		ls.owner = e.TID
	case evtrace.KLockRelease:
		ls := c.lock(e.Name)
		if ls.owner != e.TID {
			c.violate("lock.owner", e,
				"%s: release by %s but owner is %s",
				e.Name, c.tname(e.TID), c.tname(ls.owner))
		}
		ls.owner = -1
		ls.lastOwner, ls.haveLast = e.TID, true
	case evtrace.KLockUnblock:
		ls := c.lock(e.Name)
		if ls.haveLast && e.Arg1 != int64(ls.lastOwner) {
			c.violate("lock.unblock-source", e,
				"%s: %s woken by thread %d, but the last release was by %s",
				e.Name, c.tname(e.TID), e.Arg1, c.tname(ls.lastOwner))
		}
	case evtrace.KLockBypass:
		if e.Arg1 < 1 {
			c.violate("lock.bypass", e,
				"%s: bypass by %s with no queued waiters", e.Name, c.tname(e.TID))
		}

	case evtrace.KTermOffer:
		if e.Arg1 < 1 || e.Arg1 > e.Arg2 {
			c.violate("term.offer-range", e,
				"offer count %d outside [1, %d]", e.Arg1, e.Arg2)
		}
	case evtrace.KTermDone:
		if e.Arg1 != e.Arg2 {
			c.violate("taskq.balance", e,
				"termination with deque pushes=%d but pops+steals=%d", e.Arg1, e.Arg2)
		}
		eng := engineFromMonitor(e.Name)
		if n := c.pendingByEngine[eng]; n != 0 {
			c.violate("task.stranded", e,
				"termination of engine %d with %d enqueued task(s) never dispatched", eng, n)
		}

	case evtrace.KTaskEnqueue:
		id := e.Arg1
		if _, dup := c.tasks[id]; dup {
			c.violate("task.unique", e, "task %#x (%s) enqueued twice", id, e.Name)
			return
		}
		c.tasks[id] = &taskState{phase: taskPending, kind: e.Name}
		c.pendingByEngine[engineOf(id)]++
	case evtrace.KGetTask:
		id := e.Arg2
		ts, ok := c.tasks[id]
		switch {
		case !ok:
			c.violate("task.dispatch", e,
				"worker %d fetched task %#x (%s) that was never enqueued", e.TID, id, e.Name)
		case ts.phase != taskPending:
			c.violate("task.dispatch", e,
				"worker %d fetched task %#x (%s) twice", e.TID, id, e.Name)
		default:
			ts.phase = taskDispatched
			c.pendingByEngine[engineOf(id)]--
		}
	case evtrace.KGCTask:
		id := e.Arg1
		ts, ok := c.tasks[id]
		switch {
		case !ok:
			c.violate("task.execute", e,
				"worker %d executed task %#x (%s) that was never enqueued", e.TID, id, e.Name)
		case ts.phase == taskPending:
			c.violate("task.execute", e,
				"worker %d executed task %#x (%s) that was never dispatched", e.TID, id, e.Name)
		case ts.phase == taskDone:
			c.violate("task.execute", e,
				"worker %d executed task %#x (%s) twice", e.TID, id, e.Name)
		default:
			ts.phase = taskDone
		}
	}
}

// checkTime enforces timestamp monotonicity. Instants must never move
// backwards. Spans are emitted retrospectively (At is in the past) with
// Dur >= 0; KDispatch and KGCTask additionally end at the emission instant
// (the stint/task just finished), so their ends may not precede the newest
// instant. KGCSpan/KGCPhase are republished from a finished report and are
// exempt from the end check.
func (c *Checker) checkTime(e evtrace.Event) {
	if e.Kind.Span() {
		if e.Dur < 0 {
			c.violate("span.nonneg", e, "%s span with negative duration %d",
				e.Kind.Name(), e.Dur)
			return
		}
		if e.Kind != evtrace.KDispatch && e.Kind != evtrace.KGCTask {
			return
		}
		if end := e.At + e.Dur; end < c.lastAt {
			c.violate("time.monotonic", e,
				"%s span ends at t=%d, before the last instant t=%d",
				e.Kind.Name(), end, c.lastAt)
		}
		return
	}
	if e.At < c.lastAt {
		c.violate("time.monotonic", e, "%s at t=%d after an event at t=%d",
			e.Kind.Name(), e.At, c.lastAt)
		return
	}
	c.lastAt = e.At
}

func (c *Checker) onRunqPush(e evtrace.Event) {
	cs, ts := c.core(e.Core), c.thread(e.TID)
	if ts.onRq >= 0 {
		c.violate("sched.rq-membership", e,
			"thread %s pushed on core %d while already queued on core %d",
			c.tname(e.TID), e.Core, ts.onRq)
		if other := c.cores[ts.onRq]; other != nil {
			delete(other.rq, e.TID)
		}
	}
	if ts.runningOn >= 0 {
		c.violate("sched.rq-membership", e,
			"thread %s pushed on core %d while running on core %d",
			c.tname(e.TID), e.Core, ts.runningOn)
	}
	cs.rq[e.TID] = true
	ts.onRq = e.Core
	if int(e.Arg1) != len(cs.rq) {
		c.violate("sched.rq-accounting", e,
			"core %d push reports rq len %d, replay has %d", e.Core, e.Arg1, len(cs.rq))
	}
	load := len(cs.rq)
	if cs.running >= 0 {
		load++
	}
	if int(e.Arg2) != load {
		c.violate("sched.load-accounting", e,
			"core %d push reports load %d, replay has %d (rq=%d running=%v)",
			e.Core, e.Arg2, load, len(cs.rq), cs.running >= 0)
	}
}

func (c *Checker) onRunqPop(e evtrace.Event) {
	cs, ts := c.core(e.Core), c.thread(e.TID)
	if !cs.rq[e.TID] {
		c.violate("sched.rq-membership", e,
			"thread %s popped from core %d but is not on its runqueue",
			c.tname(e.TID), e.Core)
	}
	delete(cs.rq, e.TID)
	ts.onRq = -1
	if int(e.Arg1) != len(cs.rq) {
		c.violate("sched.rq-accounting", e,
			"core %d pop reports rq len %d, replay has %d", e.Core, e.Arg1, len(cs.rq))
	}
	if e.Arg2 == 0 {
		// Dispatch pop: the stint starts now; KDispatch closes it.
		if cs.running >= 0 {
			c.violate("sched.core-exclusive", e,
				"core %d dispatches %s while %s is still dispatched",
				e.Core, c.tname(e.TID), c.tname(cs.running))
		}
		cs.running, cs.runningSince = e.TID, e.At
		ts.runningOn = e.Core
	}
}

func (c *Checker) onDispatch(e evtrace.Event) {
	cs, ts := c.core(e.Core), c.thread(e.TID)
	switch {
	case cs.running != e.TID:
		c.violate("sched.dispatch-span", e,
			"core %d closes a stint of %s but %s is dispatched",
			e.Core, c.tname(e.TID), c.tname(cs.running))
	case e.At != cs.runningSince:
		c.violate("sched.dispatch-span", e,
			"core %d stint of %s starts at t=%d but its dispatch pop was at t=%d",
			e.Core, c.tname(e.TID), e.At, cs.runningSince)
	}
	if cs.running == e.TID {
		cs.running = -1
		ts.runningOn = -1
	}
	if cs.haveMinVr && e.Arg1 < cs.minVr {
		c.violate("sched.vruntime-mono", e,
			"core %d min-vruntime went backwards: %d after %d", e.Core, e.Arg1, cs.minVr)
	}
	cs.minVr, cs.haveMinVr = e.Arg1, true
}

// Finish runs the end-of-run conservation checks. Call it once, after the
// simulation has completed (and before reading Violations for a final
// verdict). The zero Event anchors Finish-time violations at the last
// observed instant.
func (c *Checker) Finish() {
	if c.finished {
		return
	}
	c.finished = true
	at := evtrace.Event{At: c.lastAt, Seq: 0}
	if c.fires+c.cancels > c.schedules {
		c.violate("simkit.conservation", at,
			"%d fires + %d cancels exceed %d schedules", c.fires, c.cancels, c.schedules)
	}
	// Deterministic iteration for stable reports: sort the task ids.
	ids := make([]int64, 0, len(c.tasks))
	for id := range c.tasks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ts := c.tasks[id]
		switch {
		case ts.phase == taskPending:
			c.violate("task.undispatched", at,
				"task %#x (%s) enqueued but never dispatched", id, ts.kind)
		case ts.phase == taskDispatched && !stealKind(ts.kind):
			c.violate("task.incomplete", at,
				"task %#x (%s) dispatched but never completed", id, ts.kind)
		}
	}
}

// Report renders a human-readable summary of the checker's verdict.
func (c *Checker) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "check: %d events, %d violation(s)\n", c.seen, c.total)
	for _, v := range c.violations {
		fmt.Fprintf(&b, "  %s\n", v.String())
	}
	if c.total > len(c.violations) {
		fmt.Fprintf(&b, "  ... %d more suppressed\n", c.total-len(c.violations))
	}
	return b.String()
}
