package check

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/evtrace"
	"repro/internal/jvm"
	"repro/internal/workload"
)

// TestCheckerOnRealRun: a full optimized-configuration simulation with the
// checker attached satisfies every invariant end to end.
func TestCheckerOnRealRun(t *testing.T) {
	p := workload.Lusearch()
	p.TotalItems = 1500
	tr := evtrace.New(0)
	ck := New()
	ck.Attach(tr)
	cfg := jvm.Config{Profile: p, Mutators: 8, GCThreads: 8}
	if _, err := jvm.Run(jvm.RunSpec{Config: cfg.WithOptimizations(), Seed: 7, EvTracer: tr}); err != nil {
		t.Fatal(err)
	}
	ck.Finish()
	if err := ck.Err(); err != nil {
		t.Fatalf("%v\nfull report:\n%s", err, ck.Report())
	}
	if ck.EventsSeen() == 0 {
		t.Fatal("checker saw no events; subscription broken")
	}
}

// TestSweepSmoke runs the head of the default sweep — the same cells
// `make check-invariants` and cmd/simcheck cover — and requires every cell
// clean: no invariant violations, and byte-identical checked/bare replays.
func TestSweepSmoke(t *testing.T) {
	n := 8
	if testing.Short() {
		n = 3
	}
	for _, cell := range Cells(42, n) {
		r := RunCell(cell)
		if r.Failed() {
			t.Errorf("%s", r.Summary())
		}
	}
}

// TestDigestStableAcrossRepeatedRuns: the sweep digest — the same encoding
// the gcsimd response cache hashes — must be byte-stable: digesting one
// cell's results repeatedly, and re-running the same cell from scratch,
// always yields the identical hex string. Any map-iteration order leaking
// into the digested encoding would flake this test.
func TestDigestStableAcrossRepeatedRuns(t *testing.T) {
	cell := Cells(42, 1)[0]
	results, err := runCellOnce(cell, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := digestResults(results)
	for i := 0; i < 10; i++ {
		if got := digestResults(results); got != want {
			t.Fatalf("repeated digest of one result set differs: %s != %s", got, want)
		}
	}
	rerun, err := runCellOnce(cell, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := digestResults(rerun); got != want {
		t.Fatalf("fresh replay digest differs: %s != %s", got, want)
	}
}

// TestCellsPrefixStable: cell i must not depend on the sweep length, so a
// short smoke sweep covers a prefix of the full one and any failure
// reproduces with "-cells index+1".
func TestCellsPrefixStable(t *testing.T) {
	long, short := Cells(42, 32), Cells(42, 8)
	for i := range short {
		if long[i] != short[i] {
			t.Fatalf("cell %d differs between n=8 and n=32:\n  %s\n  %s", i, short[i], long[i])
		}
	}
	if Cells(43, 1)[0] == Cells(42, 1)[0] {
		t.Fatal("different base seeds produced identical cells")
	}
}

// TestWriteViolationWindow: the pre-violation export is valid trace-event
// JSON containing only the window's events.
func TestWriteViolationWindow(t *testing.T) {
	tr := evtrace.New(0)
	ck := New()
	ck.Attach(tr)
	for i := 0; i < 100; i++ {
		tr.Emit(evtrace.Event{Kind: evtrace.KPreempt, At: int64(i), Core: 0, TID: 1})
	}
	// Seed a violation at seq 101.
	tr.Emit(evtrace.Event{Kind: evtrace.KLockRelease, At: 100, Core: -1, TID: 1, Name: "L"})
	if ck.Total() != 1 {
		t.Fatalf("expected exactly one seeded violation, got %d", ck.Total())
	}
	v := ck.Violations()[0]
	var buf bytes.Buffer
	if err := WriteViolationWindow(&buf, tr, v, 10); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("window is not valid JSON: %v", err)
	}
	instants := 0
	for _, e := range doc.TraceEvents {
		if e.Ph == "i" {
			instants++
		}
	}
	// 10 seqs of context + the violation event itself.
	if instants != 11 {
		t.Errorf("window holds %d instants, want 11 (10 context + violation)", instants)
	}
}
