package check

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/affinity"
	"repro/internal/evtrace"
	"repro/internal/gclog"
	"repro/internal/jmutex"
	"repro/internal/jvm"
	"repro/internal/ostopo"
	"repro/internal/postmortem"
	"repro/internal/simkit"
	"repro/internal/taskq"
	"repro/internal/workload"
)

// Cell is one randomized configuration of the seed-sweep property harness:
// a (seed, topology, thread counts, policy knobs) point in the space the
// paper's experiments traverse. Cells are generated deterministically from
// a base seed, so a failing cell reproduces from its Index alone.
type Cell struct {
	Index int
	Seed  int64
	Topo  string // "paper20" | "smt40" | "small8"

	GCThreads int
	Mutators  int
	BusyLoops int
	MultiJVM  bool // run two JVMs sharing the machine (§5.7)

	Mutex        jmutex.Policy
	Steal        taskq.PolicyKind
	Affinity     affinity.Mode
	TaskAffinity bool
	FastTerm     bool
}

// String renders the cell compactly for failure reports.
func (c Cell) String() string {
	multi := ""
	if c.MultiJVM {
		multi = " multi-jvm"
	}
	return fmt.Sprintf(
		"cell %d: seed=%d topo=%s gc=%d mut=%d busy=%d%s mutex=%s steal=%s aff=%s taskaff=%v fastterm=%v",
		c.Index, c.Seed, c.Topo, c.GCThreads, c.Mutators, c.BusyLoops, multi,
		c.Mutex, c.Steal, c.Affinity, c.TaskAffinity, c.FastTerm)
}

// topology materializes the cell's named topology.
func (c Cell) topology() *ostopo.Topology {
	switch c.Topo {
	case "smt40":
		return ostopo.PaperTestbedSMT()
	case "small8":
		t, err := ostopo.New(8, 1, 2)
		if err != nil {
			panic(err)
		}
		return t
	default:
		return ostopo.PaperTestbed()
	}
}

var (
	cellTopos    = []string{"paper20", "paper20", "smt40", "small8"}
	cellMutexes  = []jmutex.Policy{jmutex.PolicyHotSpot, jmutex.PolicyHotSpot, jmutex.PolicyFairFIFO, jmutex.PolicyNoFastPath, jmutex.PolicyWakeAll}
	cellSteals   = []taskq.PolicyKind{taskq.KindBestOf2, taskq.KindSemiRandom, taskq.KindNUMARestricted}
	cellAffinity = []affinity.Mode{affinity.ModeNone, affinity.ModeStatic, affinity.ModeDynamic, affinity.ModeNUMANode}
)

// Cells derives n sweep cells from baseSeed. The derivation is pure: the
// same (baseSeed, n) always yields the same matrix, and cell i is
// independent of n (prefixes agree), so "-cells 32" smokes the head of the
// same sweep "-cells 256" runs in full.
func Cells(baseSeed int64, n int) []Cell {
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = CellAt(baseSeed, i)
	}
	return cells
}

// CellAt derives sweep cell i of the baseSeed space in O(1) — the same
// cell Cells(baseSeed, n)[i] yields for any n > i. The fleet coordinator
// leans on this: a shard [lo,hi) names its cells by index alone, so any
// worker process can materialize exactly its slice of a 100k-cell space
// without deriving (or even knowing) the rest.
func CellAt(baseSeed int64, i int) Cell {
	// One private generator per cell keeps prefix stability.
	rng := rand.New(rand.NewSource(baseSeed + int64(i)*1000003))
	c := Cell{
		Index:        i,
		Seed:         baseSeed + int64(i),
		Topo:         cellTopos[rng.Intn(len(cellTopos))],
		GCThreads:    2 + rng.Intn(15), // 2..16
		Mutators:     1 + rng.Intn(12), // 1..12
		Mutex:        cellMutexes[rng.Intn(len(cellMutexes))],
		Steal:        cellSteals[rng.Intn(len(cellSteals))],
		Affinity:     cellAffinity[rng.Intn(len(cellAffinity))],
		TaskAffinity: rng.Intn(2) == 1,
		FastTerm:     rng.Intn(2) == 1,
	}
	if rng.Intn(4) == 0 {
		c.BusyLoops = 1 + rng.Intn(4)
	}
	// Every eighth cell (on average) shares its machine between two
	// JVMs, exercising the multi-instance id/monitor namespacing.
	c.MultiJVM = rng.Intn(8) == 0
	return c
}

// CellResult is the outcome of running one cell through the harness.
type CellResult struct {
	Cell       Cell
	Events     uint64 // bus events validated in the checked run
	Violations []Violation
	Total      int    // violations including any past the retention cap
	Digest     string // SHA-256 of the checked run's observable output
	BareDigest string // same digest from the uninstrumented replay
	Err        error  // simulation-level failure (OOM, deadlock, panic)

	// Drops counts events the checked run's ring sinks discarded. The
	// checker and postmortem analyzer subscribe (they always see the whole
	// stream), but a nonzero count means the retained ring — the triage
	// window WriteViolationWindow exports — is incomplete, so the sweep
	// treats it as a failure: cells are sized to fit the default ring.
	Drops uint64

	// BlameViolations lists collections whose postmortem blame buckets do
	// not sum to their pause wall time — the attribution engine's own
	// invariant, checked on every cell of the sweep.
	BlameViolations []string

	// Pathology is the postmortem classifier's verdict for the checked run
	// (§3 taxonomy family, or "healthy"). Deterministic per cell, so the
	// fleet report can merge pathology counts across the whole sweep.
	Pathology string

	// Tracer retains the checked run's event bus when the cell failed, so
	// the caller can export a pre-violation window for Perfetto triage.
	Tracer *evtrace.Tracer
}

// Failed reports whether the cell found a problem of any sort.
func (r *CellResult) Failed() bool {
	return r.Total > 0 || r.Err != nil || r.Digest != r.BareDigest ||
		r.Drops > 0 || len(r.BlameViolations) > 0
}

// Summary renders the failure modes of one result.
func (r *CellResult) Summary() string {
	if !r.Failed() {
		return fmt.Sprintf("%s: ok (%d events)", r.Cell, r.Events)
	}
	s := fmt.Sprintf("%s: FAIL", r.Cell)
	if r.Err != nil {
		s += fmt.Sprintf("\n  run error: %v", r.Err)
	}
	if r.Digest != r.BareDigest {
		s += fmt.Sprintf("\n  determinism: checked run digest %s != bare digest %s",
			short(r.Digest), short(r.BareDigest))
	}
	if r.Drops > 0 {
		s += fmt.Sprintf("\n  evtrace: %d events dropped from the ring sinks (triage window incomplete)", r.Drops)
	}
	for _, v := range r.BlameViolations {
		s += "\n  postmortem: " + v
	}
	for _, v := range r.Violations {
		s += "\n  " + v.String()
	}
	if r.Total > len(r.Violations) {
		s += fmt.Sprintf("\n  ... %d more suppressed", r.Total-len(r.Violations))
	}
	return s
}

func short(d string) string {
	if len(d) > 12 {
		return d[:12]
	}
	return d
}

// DefaultItems is the per-cell workload size RunCell simulates: lusearch
// shrunk far enough that a cell runs in tens of milliseconds while still
// triggering several full GC cycles.
const DefaultItems = 1500

// RunOptions tune how a sweep cell executes. The zero value reproduces
// RunCell's classic behaviour: the default workload size and a bare
// determinism replay.
type RunOptions struct {
	// Items overrides the cell workload's total item count (0 uses
	// DefaultItems). Fleet-scale sweeps shrink it to trade per-cell depth
	// for cell count; digests are only comparable at equal Items.
	Items int
	// SkipBare skips the uninstrumented replay. The determinism
	// differential is lost for that cell (BareDigest mirrors Digest), but
	// the cell costs one simulation instead of two — the fleet harness's
	// fast mode for very large sweeps, where cross-process digest
	// comparison still covers replay stability.
	SkipBare bool
}

// sweepProfile is the workload each cell runs (young-gen pressure scales
// with mutator count, so every cell still exercises several GCs).
func sweepProfile(items int) workload.Profile {
	p := workload.Lusearch()
	if items <= 0 {
		items = DefaultItems
	}
	p.TotalItems = items
	return p
}

// RunCell executes one cell twice — once instrumented (tracer + checker +
// heap verification) and once bare — and cross-checks the two: the checker
// must stay silent, and both runs must produce byte-identical observable
// output (the determinism differential; it simultaneously proves same-seed
// replay stability and that the checker/tracer never perturb a run).
func RunCell(cell Cell) *CellResult {
	return RunCellOpts(cell, RunOptions{})
}

// RunCellOpts is RunCell with explicit RunOptions.
func RunCellOpts(cell Cell, o RunOptions) *CellResult {
	res := &CellResult{Cell: cell}

	tr := evtrace.New(0)
	ck := New()
	ck.Attach(tr)
	an := postmortem.New()
	an.Attach(tr)
	checked, err := runCellOnce(cell, o.Items, tr)
	if err != nil {
		res.Err = err
		res.Tracer = tr
		return res
	}
	ck.Finish()
	an.Finish()
	res.Events = ck.EventsSeen()
	res.Violations = ck.Violations()
	res.Total = ck.Total()
	ex := an.Export()
	res.BlameViolations = ex.Verify()
	res.Pathology = ex.Pathology
	for _, d := range tr.Drops() {
		res.Drops += d
	}
	res.Digest = digestResults(checked)

	if o.SkipBare {
		res.BareDigest = res.Digest
		if res.Failed() {
			res.Tracer = tr
		}
		return res
	}
	bare, err := runCellOnce(cell, o.Items, nil)
	if err != nil {
		res.Err = fmt.Errorf("bare replay: %w", err)
		res.Tracer = tr
		return res
	}
	res.BareDigest = digestResults(bare)
	if res.Failed() {
		res.Tracer = tr
	}
	return res
}

// runCellOnce performs one simulation of the cell, optionally on a tracer.
// Panics (e.g. a tripped VerifyHeap assertion) surface as errors so the
// sweep reports the cell instead of dying.
func runCellOnce(cell Cell, items int, tr *evtrace.Tracer) (results []*jvm.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	cfg := jvm.Config{
		Profile:        sweepProfile(items),
		Mutators:       cell.Mutators,
		GCThreads:      cell.GCThreads,
		Affinity:       cell.Affinity,
		TaskAffinity:   cell.TaskAffinity,
		Steal:          cell.Steal,
		FastTerminator: cell.FastTerm,
		MutexPolicy:    cell.Mutex,
		VerifyHeap:     true,
	}
	topo := cell.topology()
	const maxSim = 5 * 60 * simkit.Second
	if cell.MultiJVM {
		cfgB := cfg
		cfgB.Mutators = 1 + cell.Mutators/2
		return jvm.RunMultiTraced(cell.Seed, topo, nil, cell.BusyLoops, maxSim, tr, cfg, cfgB)
	}
	res, err := jvm.Run(jvm.RunSpec{
		Config: cfg, Topo: topo, Seed: cell.Seed,
		BusyLoops: cell.BusyLoops, MaxSim: maxSim, EvTracer: tr,
	})
	if err != nil {
		return nil, err
	}
	return []*jvm.Result{res}, nil
}

// digestResults hashes everything a run reports — the per-GC reports, lock
// and steal statistics, and the aggregate times — into one hex digest.
// Byte-identical digests across replays are the determinism property the
// harness enforces.
func digestResults(results []*jvm.Result) string {
	h := sha256.New()
	for _, r := range results {
		fmt.Fprintf(h, "total=%d gc=%d mutator=%d minor=%d major=%d ops=%.6f\n",
			r.TotalTime, r.GCTime, r.MutatorTime, r.MinorGCs, r.MajorGCs, r.ThroughputOPS)
		if err := gclog.WriteRunJSON(h, r.Reports, r.Monitor, r.Steal, nil); err != nil {
			fmt.Fprintf(h, "gclog error: %v\n", err)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// WriteViolationWindow exports the slice of the cell's event bus leading up
// to (and including) the violation as Perfetto trace-event JSON: the
// pre-violation window one loads into ui.perfetto.dev to see what the
// scheduler, locks, and task queues were doing when the invariant broke.
// window is how many bus sequence numbers of context to keep (0 uses 400).
func WriteViolationWindow(w io.Writer, tr *evtrace.Tracer, v Violation, window uint64) error {
	if window == 0 {
		window = 400
	}
	lo := uint64(1)
	if v.Seq > window {
		lo = v.Seq - window
	}
	hi := v.Seq
	if hi == 0 { // Finish-time violation: export the tail of the run
		hi = ^uint64(0)
	}
	return evtrace.WritePerfettoWindow(w, tr, lo, hi)
}
