package check

import (
	"strings"
	"testing"

	"repro/internal/evtrace"
)

// run feeds a hand-built event stream through a fresh checker (via a real
// tracer subscription, so Seq assignment matches production) and runs the
// end-of-stream checks.
func run(events ...evtrace.Event) *Checker {
	tr := evtrace.New(64)
	ck := New()
	ck.Attach(tr)
	for _, e := range events {
		tr.Emit(e)
	}
	ck.Finish()
	return ck
}

func hasInv(ck *Checker, inv string) bool {
	for _, v := range ck.Violations() {
		if v.Inv == inv {
			return true
		}
	}
	return false
}

// Shorthand builders for the streams below.
func push(at int64, core, tid int32, rqLen, load int64) evtrace.Event {
	return evtrace.Event{Kind: evtrace.KRunqPush, At: at, Core: core, TID: tid, Arg1: rqLen, Arg2: load}
}
func pop(at int64, core, tid int32, rqLen, mode int64) evtrace.Event {
	return evtrace.Event{Kind: evtrace.KRunqPop, At: at, Core: core, TID: tid, Arg1: rqLen, Arg2: mode}
}
func stint(at, dur int64, core, tid int32, minVr int64) evtrace.Event {
	return evtrace.Event{Kind: evtrace.KDispatch, At: at, Dur: dur, Core: core, TID: tid, Arg1: minVr}
}

// TestInvariantsFire proves every invariant detects its seeded violation:
// each case is a minimal hand-built event stream breaking exactly one
// conservation law, and the checker must name that law.
func TestInvariantsFire(t *testing.T) {
	cases := []struct {
		name   string
		want   string // invariant that must fire
		events []evtrace.Event
	}{
		{
			name: "instant timestamps going backwards",
			want: "time.monotonic",
			events: []evtrace.Event{
				{Kind: evtrace.KPreempt, At: 100, Core: 0, TID: 1},
				{Kind: evtrace.KPreempt, At: 50, Core: 0, TID: 1},
			},
		},
		{
			name: "negative span duration",
			want: "span.nonneg",
			events: []evtrace.Event{
				{Kind: evtrace.KGCPhase, At: 100, Dur: -5, Core: -1, TID: -1, Name: "init"},
			},
		},
		{
			name: "core dispatches a second thread mid-stint",
			want: "sched.core-exclusive",
			events: []evtrace.Event{
				push(0, 0, 1, 1, 1),
				push(0, 0, 2, 2, 2),
				pop(0, 0, 1, 1, 0), // dispatch thread 1
				pop(0, 0, 2, 0, 0), // dispatch thread 2 with 1 still on-CPU
			},
		},
		{
			name: "pop of a thread not on that runqueue",
			want: "sched.rq-membership",
			events: []evtrace.Event{
				pop(0, 0, 7, 0, 0),
			},
		},
		{
			name: "thread pushed on two runqueues at once",
			want: "sched.rq-membership",
			events: []evtrace.Event{
				push(0, 0, 1, 1, 1),
				push(0, 1, 1, 1, 1),
			},
		},
		{
			name: "push reports a wrong runqueue length",
			want: "sched.rq-accounting",
			events: []evtrace.Event{
				push(0, 0, 1, 2, 1), // rq really holds 1 thread
			},
		},
		{
			name: "push reports a wrong core load",
			want: "sched.load-accounting",
			events: []evtrace.Event{
				push(0, 0, 1, 1, 5), // load is 1: one queued, none running
			},
		},
		{
			name: "dispatch span start disagrees with its pop",
			want: "sched.dispatch-span",
			events: []evtrace.Event{
				push(10, 0, 1, 1, 1),
				pop(10, 0, 1, 0, 0),
				stint(20, 5, 0, 1, 0), // stint claims to start at 20, pop was at 10
			},
		},
		{
			name: "dispatch span for a thread that is not on-CPU",
			want: "sched.dispatch-span",
			events: []evtrace.Event{
				stint(0, 10, 0, 3, 0),
			},
		},
		{
			name: "core min-vruntime going backwards",
			want: "sched.vruntime-mono",
			events: []evtrace.Event{
				push(0, 0, 1, 1, 1),
				pop(0, 0, 1, 0, 0),
				stint(0, 10, 0, 1, 100),
				push(10, 0, 1, 1, 1),
				pop(10, 0, 1, 0, 0),
				stint(10, 5, 0, 1, 50), // 50 after 100
			},
		},
		{
			name: "migration of a queued thread",
			want: "sched.migrate-queued",
			events: []evtrace.Event{
				push(0, 0, 1, 1, 1),
				{Kind: evtrace.KMigrate, At: 0, Core: 1, TID: 1, Arg1: 0, Arg2: 1},
			},
		},
		{
			name: "fast acquire of an owned lock",
			want: "lock.owner",
			events: []evtrace.Event{
				{Kind: evtrace.KLockFast, At: 0, Core: -1, TID: 1, Name: "L"},
				{Kind: evtrace.KLockFast, At: 1, Core: -1, TID: 2, Name: "L"},
			},
		},
		{
			name: "handoff of an owned lock",
			want: "lock.owner",
			events: []evtrace.Event{
				{Kind: evtrace.KLockFast, At: 0, Core: -1, TID: 1, Name: "L"},
				{Kind: evtrace.KLockHandoff, At: 1, Core: -1, TID: 2, Name: "L"},
			},
		},
		{
			name: "release by a thread that does not own the lock",
			want: "lock.owner",
			events: []evtrace.Event{
				{Kind: evtrace.KLockRelease, At: 0, Core: -1, TID: 1, Name: "L"},
			},
		},
		{
			name: "reacquire flag set without a previous owner",
			want: "lock.reacquire-flag",
			events: []evtrace.Event{
				{Kind: evtrace.KLockFast, At: 0, Core: -1, TID: 1, Name: "L", Arg2: 1},
			},
		},
		{
			name: "reacquire flag missing on an actual reacquisition",
			want: "lock.reacquire-flag",
			events: []evtrace.Event{
				{Kind: evtrace.KLockFast, At: 0, Core: -1, TID: 1, Name: "L"},
				{Kind: evtrace.KLockRelease, At: 1, Core: -1, TID: 1, Name: "L"},
				{Kind: evtrace.KLockFast, At: 2, Core: -1, TID: 1, Name: "L", Arg2: 0},
			},
		},
		{
			name: "unlock-chain wakeup from the wrong releaser",
			want: "lock.unblock-source",
			events: []evtrace.Event{
				{Kind: evtrace.KLockFast, At: 0, Core: -1, TID: 1, Name: "L"},
				{Kind: evtrace.KLockRelease, At: 1, Core: -1, TID: 1, Name: "L"},
				{Kind: evtrace.KLockUnblock, At: 2, Core: -1, TID: 2, Name: "L", Arg1: 9},
			},
		},
		{
			name: "bypass event with no queued waiters",
			want: "lock.bypass",
			events: []evtrace.Event{
				{Kind: evtrace.KLockBypass, At: 0, Core: -1, TID: 1, Name: "L", Arg1: 0},
			},
		},
		{
			name: "termination offer outside [1, N]",
			want: "term.offer-range",
			events: []evtrace.Event{
				{Kind: evtrace.KTermOffer, At: 0, Core: 0, TID: 0, Arg1: 9, Arg2: 8},
			},
		},
		{
			name: "termination with unbalanced deque counters",
			want: "taskq.balance",
			events: []evtrace.Event{
				{Kind: evtrace.KTermDone, At: 0, Core: -1, TID: -1, Arg1: 5, Arg2: 4, Name: "GCTaskManager"},
			},
		},
		{
			name: "termination with an undispatched task pending",
			want: "task.stranded",
			events: []evtrace.Event{
				{Kind: evtrace.KTaskEnqueue, At: 0, Core: 0, TID: -1, Arg1: 1, Name: "ScavengeRootsTask"},
				{Kind: evtrace.KTermDone, At: 1, Core: -1, TID: -1, Arg1: 0, Arg2: 0, Name: "GCTaskManager"},
			},
		},
		{
			name: "task enqueued twice",
			want: "task.unique",
			events: []evtrace.Event{
				{Kind: evtrace.KTaskEnqueue, At: 0, Core: 0, TID: -1, Arg1: 1, Name: "ScavengeRootsTask"},
				{Kind: evtrace.KTaskEnqueue, At: 1, Core: 0, TID: -1, Arg1: 1, Name: "ScavengeRootsTask"},
			},
		},
		{
			name: "fetch of a task that was never enqueued",
			want: "task.dispatch",
			events: []evtrace.Event{
				{Kind: evtrace.KGetTask, At: 0, Core: 0, TID: 0, Arg2: 99, Name: "ScavengeRootsTask"},
			},
		},
		{
			name: "task dispatched twice",
			want: "task.dispatch",
			events: []evtrace.Event{
				{Kind: evtrace.KTaskEnqueue, At: 0, Core: 0, TID: -1, Arg1: 1, Name: "ScavengeRootsTask"},
				{Kind: evtrace.KGetTask, At: 1, Core: 0, TID: 0, Arg2: 1, Name: "ScavengeRootsTask"},
				{Kind: evtrace.KGetTask, At: 2, Core: 0, TID: 1, Arg2: 1, Name: "ScavengeRootsTask"},
			},
		},
		{
			name: "task executed without being dispatched",
			want: "task.execute",
			events: []evtrace.Event{
				{Kind: evtrace.KTaskEnqueue, At: 0, Core: 0, TID: -1, Arg1: 1, Name: "ScavengeRootsTask"},
				{Kind: evtrace.KGCTask, At: 1, Dur: 2, Core: 0, TID: 0, Arg1: 1, Name: "ScavengeRootsTask"},
			},
		},
		{
			name: "task executed twice",
			want: "task.execute",
			events: []evtrace.Event{
				{Kind: evtrace.KTaskEnqueue, At: 0, Core: 0, TID: -1, Arg1: 1, Name: "ScavengeRootsTask"},
				{Kind: evtrace.KGetTask, At: 1, Core: 0, TID: 0, Arg2: 1, Name: "ScavengeRootsTask"},
				{Kind: evtrace.KGCTask, At: 2, Dur: 1, Core: 0, TID: 0, Arg1: 1, Name: "ScavengeRootsTask"},
				{Kind: evtrace.KGCTask, At: 4, Dur: 1, Core: 0, TID: 0, Arg1: 1, Name: "ScavengeRootsTask"},
			},
		},
		{
			name: "task never dispatched by end of run",
			want: "task.undispatched",
			events: []evtrace.Event{
				{Kind: evtrace.KTaskEnqueue, At: 0, Core: 0, TID: -1, Arg1: 1, Name: "ScavengeRootsTask"},
			},
		},
		{
			name: "non-steal task never completed by end of run",
			want: "task.incomplete",
			events: []evtrace.Event{
				{Kind: evtrace.KTaskEnqueue, At: 0, Core: 0, TID: -1, Arg1: 1, Name: "ScavengeRootsTask"},
				{Kind: evtrace.KGetTask, At: 1, Core: 0, TID: 0, Arg2: 1, Name: "ScavengeRootsTask"},
			},
		},
		{
			name: "event scheduled into the past",
			want: "simkit.schedule-past",
			events: []evtrace.Event{
				{Kind: evtrace.KEvSchedule, At: 100, Core: -1, TID: -1, Arg1: 50},
			},
		},
		{
			name: "more fires than schedules",
			want: "simkit.conservation",
			events: []evtrace.Event{
				{Kind: evtrace.KEvFire, At: 0, Core: -1, TID: -1, Arg1: 1},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ck := run(tc.events...)
			if !hasInv(ck, tc.want) {
				t.Fatalf("stream did not trigger %q; got:\n%s", tc.want, ck.Report())
			}
		})
	}
}

// TestCleanStreamHasNoViolations: a well-formed composite stream touching
// every subsystem passes silently, including the Finish checks.
func TestCleanStreamHasNoViolations(t *testing.T) {
	ck := run(
		// simkit: one schedule, one fire.
		evtrace.Event{Kind: evtrace.KEvSchedule, At: 0, Core: -1, TID: -1, Arg1: 5},
		evtrace.Event{Kind: evtrace.KEvFire, At: 5, Core: -1, TID: -1, Arg1: 1},
		// sched: two full stints with a preemption between them.
		push(5, 0, 1, 1, 1),
		pop(5, 0, 1, 0, 0),
		stint(5, 10, 0, 1, 10),
		push(15, 0, 1, 1, 1),
		pop(15, 0, 1, 0, 0),
		stint(15, 5, 0, 1, 15),
		// lock: acquire, release, reacquire with the flag set.
		evtrace.Event{Kind: evtrace.KLockFast, At: 20, Core: -1, TID: 1, Name: "L"},
		evtrace.Event{Kind: evtrace.KLockRelease, At: 21, Core: -1, TID: 1, Name: "L"},
		evtrace.Event{Kind: evtrace.KLockFast, At: 22, Core: -1, TID: 1, Name: "L", Arg2: 1},
		evtrace.Event{Kind: evtrace.KLockRelease, At: 23, Core: -1, TID: 1, Name: "L"},
		// tasks: one root task and one steal task, both dispatched; the
		// steal task legitimately never completes.
		evtrace.Event{Kind: evtrace.KTaskEnqueue, At: 24, Core: 0, TID: -1, Arg1: 1, Name: "ScavengeRootsTask"},
		evtrace.Event{Kind: evtrace.KTaskEnqueue, At: 24, Core: 0, TID: -1, Arg1: 2, Name: "StealTask"},
		evtrace.Event{Kind: evtrace.KGetTask, At: 25, Core: 0, TID: 0, Arg2: 1, Name: "ScavengeRootsTask"},
		evtrace.Event{Kind: evtrace.KGCTask, At: 25, Dur: 2, Core: 0, TID: 0, Arg1: 1, Name: "ScavengeRootsTask"},
		evtrace.Event{Kind: evtrace.KGetTask, At: 27, Core: 0, TID: 1, Arg2: 2, Name: "StealTask"},
		evtrace.Event{Kind: evtrace.KTermOffer, At: 28, Core: 0, TID: 1, Arg1: 1, Arg2: 1},
		evtrace.Event{Kind: evtrace.KTermDone, At: 28, Core: -1, TID: -1, Arg1: 3, Arg2: 3, Name: "GCTaskManager"},
		// the retrospective phase spans never trip the monotonic check.
		evtrace.Event{Kind: evtrace.KGCPhase, At: 5, Dur: 3, Core: -1, TID: -1, Name: "init"},
		evtrace.Event{Kind: evtrace.KGCSpan, At: 5, Dur: 23, Core: -1, TID: -1, Name: "minor"},
	)
	if ck.Total() != 0 {
		t.Fatalf("clean stream produced violations:\n%s", ck.Report())
	}
	if err := ck.Err(); err != nil {
		t.Fatalf("Err() = %v on a clean stream", err)
	}
}

// TestMultiEngineStranding: task.stranded is scoped per engine instance —
// engine 1's pending tasks do not fail engine 0's termination.
func TestMultiEngineStranding(t *testing.T) {
	const eng1Task = int64(1)<<32 | 1
	ck := run(
		evtrace.Event{Kind: evtrace.KTaskEnqueue, At: 0, Core: 0, TID: -1, Arg1: eng1Task, Name: "StealTask"},
		evtrace.Event{Kind: evtrace.KTermDone, At: 1, Core: -1, TID: -1, Arg1: 0, Arg2: 0, Name: "GCTaskManager"},
	)
	if hasInv(ck, "task.stranded") {
		t.Fatalf("engine 0's termination blamed for engine 1's pending task:\n%s", ck.Report())
	}
	ck = run(
		evtrace.Event{Kind: evtrace.KTaskEnqueue, At: 0, Core: 0, TID: -1, Arg1: eng1Task, Name: "StealTask"},
		evtrace.Event{Kind: evtrace.KTermDone, At: 1, Core: -1, TID: -1, Arg1: 0, Arg2: 0, Name: "GCTaskManager#1"},
	)
	if !hasInv(ck, "task.stranded") {
		t.Fatalf("engine 1's termination did not catch its own pending task:\n%s", ck.Report())
	}
}

// TestStealTaskExemptFromCompletion: a dispatched steal task left running
// at end of run is legal (the simulation ends while it sleeps inside the
// termination protocol), but dispatch is still mandatory.
func TestStealTaskExemptFromCompletion(t *testing.T) {
	ck := run(
		evtrace.Event{Kind: evtrace.KTaskEnqueue, At: 0, Core: 0, TID: -1, Arg1: 1, Name: "StealTask"},
		evtrace.Event{Kind: evtrace.KGetTask, At: 1, Core: 0, TID: 0, Arg2: 1, Name: "StealTask"},
	)
	if ck.Total() != 0 {
		t.Fatalf("dispatched steal task flagged at Finish:\n%s", ck.Report())
	}
	ck = run(
		evtrace.Event{Kind: evtrace.KTaskEnqueue, At: 0, Core: 0, TID: -1, Arg1: 1, Name: "StealTask"},
	)
	if !hasInv(ck, "task.undispatched") {
		t.Fatalf("undispatched steal task not flagged:\n%s", ck.Report())
	}
}

// TestViolationCap: a cascading failure retains only MaxViolations entries
// but still counts the total.
func TestViolationCap(t *testing.T) {
	tr := evtrace.New(8)
	ck := New()
	ck.MaxViolations = 3
	ck.Attach(tr)
	for i := 0; i < 10; i++ {
		tr.Emit(evtrace.Event{Kind: evtrace.KLockRelease, At: int64(i), Core: -1, TID: 1, Name: "L"})
	}
	if got := len(ck.Violations()); got != 3 {
		t.Errorf("retained %d violations, want 3", got)
	}
	if ck.Total() != 10 {
		t.Errorf("Total() = %d, want 10", ck.Total())
	}
	if !strings.Contains(ck.Report(), "7 more suppressed") {
		t.Errorf("Report() missing suppression note:\n%s", ck.Report())
	}
}
