// Package objgraph generates the object graphs the collector traces. Each
// benchmark profile parameterizes a mutator-side allocation model built on
// the weak generational hypothesis: mutators allocate small clusters
// (a head object plus a shallow tree of children), keep a bounded window of
// them reachable from stack roots, retain a fraction longer-term, and
// attach some retained data to old-generation anchors (exercising the write
// barrier and the remembered set).
//
// The graphs are synthetic, but the collector's work over them is real
// tracing, copying, aging and promotion over a real generational heap.
package objgraph

import (
	"fmt"
	"math/rand"

	"repro/internal/heap"
)

// Params describe one benchmark's allocation behaviour. All sizes are model
// bytes (see DESIGN.md §6 for the scale model).
type Params struct {
	// MeanObjectSize is the average object size; individual sizes are
	// uniform in [Mean/2, 3*Mean/2).
	MeanObjectSize int32
	// ClusterFanout is the number of children allocated under each cluster
	// head (the fine-grained-task fan-out the scavenger sees).
	ClusterFanout int
	// StackWindow bounds the transient stack-root window; older cluster
	// heads are dropped (becoming garbage unless retained).
	StackWindow int
	// RetainProb is the probability a cluster head is moved to the
	// mutator's retained set (medium lifetime) when it leaves the window.
	RetainProb float64
	// RetainWindow bounds the retained set; evicted heads become garbage
	// unless tenured already.
	RetainWindow int
	// OldAttachProb is the probability a retained head is linked from the
	// mutator's old-generation anchor (old→young edge, remembered set).
	OldAttachProb float64
	// AnchorWindow bounds the anchor's reference count; when full, a new
	// attachment replaces a random existing one (the displaced subtree
	// becomes tenured garbage for the next major GC). 0 = unbounded.
	AnchorWindow int
	// CrossRefProb is the probability a new cluster references another
	// live cluster head (graph, not forest).
	CrossRefProb float64
}

// Validate rejects nonsensical parameters.
func (p Params) Validate() error {
	if p.MeanObjectSize < 2 {
		return fmt.Errorf("objgraph: MeanObjectSize must be >= 2, got %d", p.MeanObjectSize)
	}
	if p.ClusterFanout < 0 || p.StackWindow < 1 || p.RetainWindow < 0 || p.AnchorWindow < 0 {
		return fmt.Errorf("objgraph: invalid windows %+v", p)
	}
	if bad(p.RetainProb) || bad(p.OldAttachProb) || bad(p.CrossRefProb) {
		return fmt.Errorf("objgraph: probabilities must be in [0,1]: %+v", p)
	}
	return nil
}

func bad(p float64) bool { return p < 0 || p > 1 }

// DefaultParams returns a generic mid-weight profile.
func DefaultParams() Params {
	return Params{
		MeanObjectSize: 256,
		ClusterFanout:  6,
		StackWindow:    24,
		RetainProb:     0.12,
		RetainWindow:   64,
		OldAttachProb:  0.15,
		AnchorWindow:   48,
		CrossRefProb:   0.2,
	}
}

// Mutator is one mutator thread's slice of the object graph: its transient
// stack roots, its retained structures, and its old-generation anchor.
//
// The stack and retained windows are FIFO ring buffers: the slice fills to
// the window size once and then pushes overwrite the oldest slot in place.
// The old shift-down representation made every steady-state push a memmove
// of the whole window — the single hottest mutator-side operation in the
// Fig10 profile. Logical (oldest-first) order is preserved through the head
// indices, so root enumeration and random-head draws are unchanged.
type Mutator struct {
	ID  int
	h   *heap.Heap
	p   Params
	rng *rand.Rand

	stack     []heap.ObjID // transient roots, FIFO ring
	stackHead int          // index of the oldest stack entry
	retained  []heap.ObjID // medium-lived roots, FIFO ring
	retHead   int          // index of the oldest retained entry
	anchor    heap.ObjID   // old-gen structure this mutator grows

	// Scratch buffers reused across calls. The heap copies child
	// references into the object record, so handing it the same backing
	// array every time is safe; roots is only read between Roots calls.
	sizes    []int32
	children []heap.ObjID
	roots    []heap.ObjID

	AllocatedBytes int64
	Clusters       int64
}

// NewMutator creates a mutator graph source. The anchor is allocated in the
// old generation immediately (it models the application's long-lived state).
func NewMutator(id int, h *heap.Heap, p Params, rng *rand.Rand) (*Mutator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &Mutator{ID: id, h: h, p: p, rng: rng}
	anchor, ok := h.AllocOld(4 * p.MeanObjectSize)
	if !ok {
		return nil, fmt.Errorf("objgraph: old generation too small for anchors")
	}
	m.anchor = anchor
	return m, nil
}

// Roots returns the mutator's current GC roots (stack + retained, oldest
// first). The anchor is *not* a root here: it is reached through the
// remembered set, exactly like tenured application state in a real minor
// GC. The returned slice is a per-mutator buffer reused by the next Roots
// call; it stays valid through a GC pause (the mutator is parked) but must
// not be held across one.
func (m *Mutator) Roots() []heap.ObjID {
	roots := m.roots[:0]
	roots = append(roots, m.stack[m.stackHead:]...)
	roots = append(roots, m.stack[:m.stackHead]...)
	roots = append(roots, m.retained[m.retHead:]...)
	roots = append(roots, m.retained[:m.retHead]...)
	m.roots = roots
	return roots
}

// Anchor returns the mutator's old-generation anchor (a major-GC root).
func (m *Mutator) Anchor() heap.ObjID { return m.anchor }

// objSize draws an object size.
func (m *Mutator) objSize() int32 {
	mean := int64(m.p.MeanObjectSize)
	return int32(mean/2 + m.rng.Int63n(mean))
}

// AllocCluster allocates one cluster (head + fanout children) and updates
// the root windows. It returns the bytes allocated, or ok=false when eden
// cannot fit the cluster (time for a minor GC); nothing is allocated then.
func (m *Mutator) AllocCluster() (bytes int64, ok bool) {
	// Pre-compute sizes so we can check capacity atomically.
	if cap(m.sizes) < 1+m.p.ClusterFanout {
		m.sizes = make([]int32, 1+m.p.ClusterFanout)
	}
	sizes := m.sizes[:1+m.p.ClusterFanout]
	var need int64
	for i := range sizes {
		sizes[i] = m.objSize()
		need += int64(sizes[i])
	}
	if m.h.EdenFull(int32(min64(need, 1<<30))) {
		return 0, false
	}
	children := m.children[:0]
	for i := 1; i < len(sizes); i++ {
		id, ok := m.h.Alloc(sizes[i])
		if !ok {
			return 0, false
		}
		children = append(children, id)
	}
	m.children = children[:0]
	head, hok := m.h.Alloc(sizes[0], children...)
	if !hok {
		return 0, false
	}
	// Occasionally link to another live head: object graphs are graphs.
	if m.rng.Float64() < m.p.CrossRefProb {
		if other := m.randomLiveHead(); other != 0 {
			m.h.AddRef(head, other)
		}
	}
	m.pushStack(head)
	m.AllocatedBytes += need
	m.Clusters++
	return need, true
}

// stackAt and retainedAt map a logical (oldest-first) index to the ring.
func (m *Mutator) stackAt(i int) heap.ObjID {
	if i += m.stackHead; i >= len(m.stack) {
		i -= len(m.stack)
	}
	return m.stack[i]
}

func (m *Mutator) retainedAt(i int) heap.ObjID {
	if i += m.retHead; i >= len(m.retained) {
		i -= len(m.retained)
	}
	return m.retained[i]
}

func (m *Mutator) randomLiveHead() heap.ObjID {
	if len(m.stack) > 0 && (len(m.retained) == 0 || m.rng.Intn(2) == 0) {
		return m.stackAt(m.rng.Intn(len(m.stack)))
	}
	if len(m.retained) > 0 {
		return m.retainedAt(m.rng.Intn(len(m.retained)))
	}
	return 0
}

// pushStack adds a new head to the stack window, retiring the oldest when
// the window is full.
func (m *Mutator) pushStack(head heap.ObjID) {
	if len(m.stack) < m.p.StackWindow {
		m.stack = append(m.stack, head)
		return
	}
	// Ring push: overwrite the oldest slot and advance the head — the
	// in-place equivalent of append+shift, without the memmove.
	old := m.stack[m.stackHead]
	m.stack[m.stackHead] = head
	if m.stackHead++; m.stackHead == len(m.stack) {
		m.stackHead = 0
	}
	if m.rng.Float64() < m.p.RetainProb && m.p.RetainWindow > 0 {
		m.pushRetained(old)
	}
	// else: the head simply becomes unreachable — young garbage.
}

// pushRetained moves a retiring head into the retained ring, possibly
// attaching it to the old-generation anchor on the way in.
func (m *Mutator) pushRetained(old heap.ObjID) {
	if m.rng.Float64() < m.p.OldAttachProb {
		// old→young edge through the write barrier. The anchor window
		// is bounded: displaced subtrees become tenured garbage.
		n := m.h.RefLen(m.anchor)
		if m.p.AnchorWindow > 0 && n >= m.p.AnchorWindow {
			m.h.SetRef(m.anchor, m.rng.Intn(n), old)
		} else {
			m.h.AddRef(m.anchor, old)
		}
	}
	if len(m.retained) < m.p.RetainWindow {
		m.retained = append(m.retained, old)
		return
	}
	// Note: the evicted head may still be reachable via the anchor; that
	// is intended (tenured garbage accumulates and is only reclaimed by a
	// major GC after anchor trimming).
	m.retained[m.retHead] = old
	if m.retHead++; m.retHead == len(m.retained) {
		m.retHead = 0
	}
}

// TrimAnchor drops roughly frac of the anchor's references, turning tenured
// data into old-generation garbage (drives major-GC reclamation).
func (m *Mutator) TrimAnchor(frac float64) {
	refs := m.h.Refs(m.anchor)
	keep := 0
	for _, r := range refs {
		if m.rng.Float64() >= frac {
			refs[keep] = r
			keep++
		}
	}
	m.h.TruncateRefs(m.anchor, keep)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
