package objgraph

import (
	"math/rand"

	"repro/internal/heap"
)

// Scratch pools the per-mutator working buffers — stack/retained root
// windows, the roots snapshot, and the AllocCluster size/child staging
// arrays — across simulation cells, indexed by mutator ID so each mutator
// gets back buffers already sized for its windows. All buffers hold ObjIDs
// or sizes (no pointers), so truncation alone recycles them. The zero value
// is ready to use.
type Scratch struct {
	muts []mutScratch
}

type mutScratch struct {
	stack    []heap.ObjID
	retained []heap.ObjID
	sizes    []int32
	children []heap.ObjID
	roots    []heap.ObjID
}

// NewMutatorWith creates a mutator like NewMutator, adopting the buffers
// pooled under the same mutator ID in sc (sc may be nil). Buffer adoption
// only changes slice capacities, never values (the ring heads start at
// zero either way), so allocation streams are byte-identical with or
// without scratch.
func NewMutatorWith(id int, h *heap.Heap, p Params, rng *rand.Rand, sc *Scratch) (*Mutator, error) {
	m, err := NewMutator(id, h, p, rng)
	if err != nil {
		return nil, err
	}
	if sc != nil && id < len(sc.muts) {
		ms := &sc.muts[id]
		m.stack = ms.stack[:0]
		m.retained = ms.retained[:0]
		m.sizes = ms.sizes[:0]
		m.children = ms.children[:0]
		m.roots = ms.roots[:0]
		*ms = mutScratch{}
	}
	return m, nil
}

// Reclaim harvests the mutator's buffers into sc for a later
// NewMutatorWith. The mutator is unusable afterwards.
func (m *Mutator) Reclaim(sc *Scratch) {
	for m.ID >= len(sc.muts) {
		sc.muts = append(sc.muts, mutScratch{})
	}
	sc.muts[m.ID] = mutScratch{
		stack:    m.stack[:0],
		retained: m.retained[:0],
		sizes:    m.sizes[:0],
		children: m.children[:0],
		roots:    m.roots[:0],
	}
	m.stack, m.retained, m.sizes, m.children, m.roots = nil, nil, nil, nil, nil
}
