package objgraph

import (
	"math/rand"
	"testing"

	"repro/internal/heap"
)

func newHeap(t *testing.T) *heap.Heap {
	t.Helper()
	h, err := heap.New(heap.Config{
		EdenBytes: 1 << 20, SurvivorBytes: 1 << 18, OldBytes: 1 << 22, TenureAge: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestParamsValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		func() Params { p := DefaultParams(); p.MeanObjectSize = 1; return p }(),
		func() Params { p := DefaultParams(); p.StackWindow = 0; return p }(),
		func() Params { p := DefaultParams(); p.RetainProb = 1.5; return p }(),
		func() Params { p := DefaultParams(); p.OldAttachProb = -0.1; return p }(),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
}

func TestMutatorAllocatesClusters(t *testing.T) {
	h := newHeap(t)
	m, err := NewMutator(0, h, DefaultParams(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := 0; i < 100; i++ {
		n, ok := m.AllocCluster()
		if !ok {
			t.Fatalf("eden full after %d clusters (unexpectedly small)", i)
		}
		total += n
	}
	eden, _, _ := h.Usage()
	if eden != total {
		t.Errorf("eden usage %d != allocated %d", eden, total)
	}
	if m.Clusters != 100 {
		t.Errorf("Clusters = %d, want 100", m.Clusters)
	}
	if len(m.Roots()) == 0 {
		t.Error("no roots after allocation")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAllocClusterReportsEdenFull(t *testing.T) {
	h, err := heap.New(heap.Config{EdenBytes: 2000, SurvivorBytes: 1000, OldBytes: 1 << 20, TenureAge: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMutator(0, h, DefaultParams(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	full := false
	for i := 0; i < 1000; i++ {
		if _, ok := m.AllocCluster(); !ok {
			full = true
			break
		}
	}
	if !full {
		t.Fatal("eden never filled")
	}
	// Nothing was partially allocated on the failing call: invariants hold.
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRootsWindowBounded(t *testing.T) {
	h := newHeap(t)
	p := DefaultParams()
	p.StackWindow = 8
	p.RetainWindow = 16
	m, _ := NewMutator(0, h, p, rand.New(rand.NewSource(2)))
	for i := 0; i < 200; i++ {
		if _, ok := m.AllocCluster(); !ok {
			t.Fatal("eden full")
		}
	}
	if len(m.Roots()) > 8+16 {
		t.Errorf("roots window = %d, want <= 24", len(m.Roots()))
	}
}

func TestGarbageIsGenerated(t *testing.T) {
	// Most clusters must become unreachable (weak generational hypothesis).
	h := newHeap(t)
	m, _ := NewMutator(0, h, DefaultParams(), rand.New(rand.NewSource(3)))
	for i := 0; i < 300; i++ {
		if _, ok := m.AllocCluster(); !ok {
			t.Fatal("eden full")
		}
	}
	roots := append(m.Roots(), m.Anchor())
	live := h.ReachableFrom(roots)
	if len(live) >= h.LiveObjects() {
		t.Errorf("no garbage generated: %d live of %d objects", len(live), h.LiveObjects())
	}
	frac := float64(len(live)) / float64(h.LiveObjects())
	if frac > 0.9 {
		t.Errorf("survival fraction %.2f too high for a generational workload", frac)
	}
}

func TestOldAttachFillsRememberedSet(t *testing.T) {
	h := newHeap(t)
	p := DefaultParams()
	p.RetainProb = 1.0
	p.OldAttachProb = 1.0
	m, _ := NewMutator(0, h, p, rand.New(rand.NewSource(4)))
	for i := 0; i < 100; i++ {
		if _, ok := m.AllocCluster(); !ok {
			t.Fatal("eden full")
		}
	}
	if len(h.RememberedSet()) == 0 {
		t.Error("old-attach never produced a remembered-set entry")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestTrimAnchorDropsReferences(t *testing.T) {
	h := newHeap(t)
	p := DefaultParams()
	p.RetainProb = 1.0
	p.OldAttachProb = 1.0
	m, _ := NewMutator(0, h, p, rand.New(rand.NewSource(5)))
	for i := 0; i < 200; i++ {
		if _, ok := m.AllocCluster(); !ok {
			t.Fatal("eden full")
		}
	}
	before := h.RefLen(m.Anchor())
	if before == 0 {
		t.Fatal("anchor has no refs to trim")
	}
	m.TrimAnchor(1.0)
	if after := h.RefLen(m.Anchor()); after != 0 {
		t.Errorf("TrimAnchor(1.0) left %d refs", after)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() (int64, int) {
		h := newHeap(t)
		m, _ := NewMutator(0, h, DefaultParams(), rand.New(rand.NewSource(42)))
		for i := 0; i < 150; i++ {
			m.AllocCluster()
		}
		return m.AllocatedBytes, len(h.RememberedSet())
	}
	a1, r1 := run()
	a2, r2 := run()
	if a1 != a2 || r1 != r2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", a1, r1, a2, r2)
	}
}

func TestNewMutatorFailsWhenOldTooSmall(t *testing.T) {
	h, err := heap.New(heap.Config{EdenBytes: 1000, SurvivorBytes: 500, OldBytes: 8, TenureAge: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMutator(0, h, DefaultParams(), rand.New(rand.NewSource(1))); err == nil {
		t.Error("NewMutator succeeded with old generation too small for the anchor")
	}
}
