package evtrace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestHistogramQuantiles(t *testing.T) {
	var h *Histogram
	h.Observe(1) // nil-safe
	if h.N() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram not inert")
	}
	h = &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	cases := []struct {
		q    float64
		want float64
	}{{0, 1}, {0.5, 50}, {0.95, 95}, {0.99, 99}, {1, 100}}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if h.N() != 100 || h.Sum() != 5050 {
		t.Errorf("N=%d Sum=%g, want 100/5050", h.N(), h.Sum())
	}
	// Observing after a quantile query (which sorts) keeps accounting right.
	h.Observe(0.5)
	if got := h.Quantile(0); got != 0.5 {
		t.Errorf("post-sort observe: Quantile(0) = %g, want 0.5", got)
	}
}

// TestRegistryExpositionGolden pins both exposition formats byte for
// byte: the JSON metric list (with histogram quantile expansion, sorted,
// counters before gauges before histograms on name ties) and the
// Prometheus text format. Each is rendered twice and must repeat
// byte-identically — the digest-stability property the service and gcjson
// consumers rely on.
func TestRegistryExpositionGolden(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("svc.runs").Set(3)
		r.Gauge("svc.ratio").Set(0.25)
		// A name collision across kinds: the tie must order deterministically.
		r.Counter("svc.shared").Set(7)
		r.Gauge("svc.shared").Set(1.5)
		h := r.Histogram("svc.lat_ms")
		for _, v := range []float64{4, 2, 8, 1} {
			h.Observe(v)
		}
		return r
	}

	wantJSON := `[{"name":"svc.lat_ms.count","value":4},` +
		`{"name":"svc.lat_ms.p50","value":2},` +
		`{"name":"svc.lat_ms.p95","value":8},` +
		`{"name":"svc.lat_ms.p99","value":8},` +
		`{"name":"svc.lat_ms.sum","value":15},` +
		`{"name":"svc.ratio","value":0.25},` +
		`{"name":"svc.runs","value":3},` +
		`{"name":"svc.shared","value":7},` +
		`{"name":"svc.shared","value":1.5}]`
	wantProm := `# TYPE svc_lat_ms summary
svc_lat_ms{quantile="0.5"} 2
svc_lat_ms{quantile="0.95"} 8
svc_lat_ms{quantile="0.99"} 8
svc_lat_ms_sum 15
svc_lat_ms_count 4
# TYPE svc_ratio gauge
svc_ratio 0.25
# TYPE svc_runs counter
svc_runs 3
# TYPE svc_shared counter
svc_shared 7
# TYPE svc_shared gauge
svc_shared 1.5
`

	r := build()
	j1, err := json.Marshal(r.Current())
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != wantJSON {
		t.Errorf("JSON exposition:\n got %s\nwant %s", j1, wantJSON)
	}
	j2, _ := json.Marshal(r.Current())
	if !bytes.Equal(j1, j2) {
		t.Error("repeated JSON marshal is not byte-identical")
	}

	var p1, p2 bytes.Buffer
	if err := r.WritePrometheus(&p1); err != nil {
		t.Fatal(err)
	}
	if p1.String() != wantProm {
		t.Errorf("Prometheus exposition:\n got:\n%s\nwant:\n%s", p1.String(), wantProm)
	}
	if err := r.WritePrometheus(&p2); err != nil {
		t.Fatal(err)
	}
	if p1.String() != p2.String() {
		t.Error("repeated Prometheus exposition is not byte-identical")
	}

	// A fresh registry built the same way must expose identically (no map
	// iteration order leaking through).
	var p3 bytes.Buffer
	if err := build().WritePrometheus(&p3); err != nil {
		t.Fatal(err)
	}
	if p3.String() != p1.String() {
		t.Error("rebuild exposition differs: map order leaked into output")
	}

	var nilReg *Registry
	nilReg.Histogram("x").Observe(1) // must not panic
	if err := nilReg.WritePrometheus(&p3); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}
}
