package evtrace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Track layout of the exported trace. Simulated cores map to one track
// each under the "cores" process, so scheduling phenomena — GC threads
// stacked on one core, serial monitor handoff, lock ownership bouncing —
// are visible as gaps and pile-ups in the Perfetto UI. OS threads
// (jmutex/simkit instants) and GC workers (taskq/pscavenge) get their own
// processes so their event streams do not clutter the core tracks.
const (
	pidCores    = 1
	pidThreads  = 2
	pidWorkers  = 3
	tidGCPhases = 1000 // the pidWorkers track holding GC/phase spans
	tidKernel   = 1001 // the pidThreads track holding simkit kernel events
)

// traceEvent is one Chrome trace-event JSON object (the subset Perfetto
// loads: metadata, complete "X" spans, and thread-scoped "i" instants).
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"` // microseconds
	Dur   *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

func micros(ns int64) float64 { return float64(ns) / 1e3 }

// WritePerfetto exports the tracer's retained events as Chrome/Perfetto
// trace-event JSON, loadable in https://ui.perfetto.dev. The output is
// deterministic for a deterministic simulation: events are ordered by
// emission and metadata by track id.
func WritePerfetto(w io.Writer, t *Tracer) error {
	if t == nil {
		return fmt.Errorf("evtrace: WritePerfetto on nil tracer")
	}
	return writePerfettoEvents(w, t, t.Events())
}

// WritePerfettoWindow exports only the retained events whose bus sequence
// number falls in [loSeq, hiSeq] — a window of the timeline around a point
// of interest (internal/check exports the pre-violation window this way
// for triage). Track metadata covers just the windowed events.
func WritePerfettoWindow(w io.Writer, t *Tracer, loSeq, hiSeq uint64) error {
	if t == nil {
		return fmt.Errorf("evtrace: WritePerfettoWindow on nil tracer")
	}
	all := t.Events()
	events := make([]Event, 0, len(all))
	for _, e := range all {
		if e.Seq >= loSeq && e.Seq <= hiSeq {
			events = append(events, e)
		}
	}
	return writePerfettoEvents(w, t, events)
}

func writePerfettoEvents(w io.Writer, t *Tracer, events []Event) error {
	out := traceFile{DisplayTimeUnit: "ms"}

	// Process/track metadata first. Track names for cores and threads are
	// discovered from the events and the thread registry.
	coreSeen := map[int32]bool{}
	workerSeen := map[int32]bool{}
	for _, e := range events {
		if e.Core >= 0 {
			coreSeen[e.Core] = true
		}
		if (e.Kind.Layer() == LayerTaskq || e.Kind == KGCTask) && e.TID >= 0 {
			workerSeen[e.TID] = true
		}
	}
	meta := func(pid, tid int, key, name string) {
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: key, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	meta(pidCores, 0, "process_name", "cores")
	meta(pidThreads, 0, "process_name", "threads")
	meta(pidWorkers, 0, "process_name", "gc-workers")
	for _, c := range sortedKeys(coreSeen) {
		meta(pidCores, int(c), "thread_name", fmt.Sprintf("cpu%02d", c))
	}
	for _, tid := range sortedKeys(t.names) {
		meta(pidThreads, int(tid), "thread_name", t.names[tid])
	}
	for _, wkr := range sortedKeys(workerSeen) {
		meta(pidWorkers, int(wkr), "thread_name", fmt.Sprintf("worker#%d", wkr))
	}
	meta(pidWorkers, tidGCPhases, "thread_name", "GC phases")
	meta(pidThreads, tidKernel, "thread_name", "simkit")

	// Per-layer drop counts travel with the file as metadata records, so a
	// consumer (cmd/tracecheck) can tell a complete export from the
	// retained tail of an overflowed ring without access to the Tracer.
	for _, l := range Layers() {
		if d := t.sinks[l].drops; d > 0 {
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: "evtrace_drops", Ph: "M", Pid: pidThreads, Tid: tidKernel,
				Args: map[string]any{"layer": l.String(), "drops": d},
			})
		}
	}

	for _, e := range events {
		out.TraceEvents = append(out.TraceEvents, convert(e))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// convert maps one bus event to its trace-event representation.
func convert(e Event) traceEvent {
	info := kindMeta[e.Kind]
	te := traceEvent{
		Cat: info.layer.String(),
		Ph:  "i",
		Ts:  micros(e.At),
	}
	if info.span {
		te.Ph = "X"
		d := micros(e.Dur)
		te.Dur = &d
	} else {
		te.Scope = "t"
	}

	// Track assignment.
	switch {
	case e.Kind == KGCSpan || e.Kind == KGCPhase:
		te.Pid, te.Tid = pidWorkers, tidGCPhases
	case info.layer == LayerTaskq || e.Kind == KGCTask:
		te.Pid, te.Tid = pidWorkers, int(e.TID)
	case e.Core >= 0:
		te.Pid, te.Tid = pidCores, int(e.Core)
	case info.layer == LayerSimkit:
		te.Pid, te.Tid = pidThreads, tidKernel
	default:
		te.Pid, te.Tid = pidThreads, int(e.TID)
	}

	// Display name: prefer the recorded name (thread, lock, or task kind)
	// qualified by the kind for non-span events.
	switch {
	case e.Kind == KDispatch || e.Kind == KGCTask || e.Kind == KGCSpan || e.Kind == KGCPhase:
		te.Name = e.Name
		if te.Name == "" {
			te.Name = info.name
		}
	case e.Name != "":
		te.Name = info.name + ":" + e.Name
	default:
		te.Name = info.name
	}

	args := map[string]any{}
	if e.TID >= 0 {
		args["tid"] = e.TID
	}
	if e.Core >= 0 {
		args["core"] = e.Core
	}
	if e.Arg1 != 0 {
		args["arg1"] = e.Arg1
	}
	if e.Arg2 != 0 {
		args["arg2"] = e.Arg2
	}
	if len(args) > 0 {
		te.Args = args
	}
	return te
}

// sortedKeys returns the keys of a map[int32]V in ascending order.
func sortedKeys[V any](m map[int32]V) []int32 {
	keys := make([]int32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
