package evtrace_test

import (
	"testing"

	"repro/internal/evtrace"
	"repro/internal/jvm"
	"repro/internal/ostopo"
	"repro/internal/simkit"
	"repro/internal/workload"
)

// TestLockProfilesMultiJVM runs two JVMs on one shared machine and checks
// the per-monitor profiles: each instance's "GCTaskManager#N" monitor
// gets its own profile, every acquisition is attributed to exactly one of
// them, and the merged (lock == "") profile agrees with their sum — the
// multi-JVM contract of the per-monitor ownership cursor.
func TestLockProfilesMultiJVM(t *testing.T) {
	p := workload.Lusearch()
	p.TotalItems = 1500
	cfg := jvm.Config{Profile: p, Mutators: 4, GCThreads: 4}
	tr := evtrace.New(0)
	_, err := jvm.RunMultiTraced(42, ostopo.PaperTestbed(), nil, 0,
		5*60*simkit.Second, tr, cfg, cfg)
	if err != nil {
		t.Fatal(err)
	}

	profiles := evtrace.BuildLockProfiles(tr)
	if len(profiles) < 2 {
		t.Fatalf("got %d monitor profiles, want >= 2 (one per JVM)", len(profiles))
	}
	var totalAcquires int
	names := map[string]bool{}
	for _, lp := range profiles {
		if names[lp.Lock] {
			t.Errorf("duplicate profile for monitor %q", lp.Lock)
		}
		names[lp.Lock] = true
		if lp.Acquires == 0 {
			t.Errorf("monitor %q recorded no acquisitions", lp.Lock)
		}
		totalAcquires += lp.Acquires
	}
	merged := evtrace.BuildLockProfile(tr, "")
	if merged.Acquires != totalAcquires {
		t.Errorf("merged profile has %d acquisitions, per-monitor sum is %d",
			merged.Acquires, totalAcquires)
	}
}
