package evtrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: KEvFire})
	tr.RegisterThread(1, "x")
	if tr.Enabled() {
		t.Error("nil tracer reports Enabled")
	}
	if tr.Len() != 0 || tr.Events() != nil || tr.LayerEvents(LayerCFS) != nil {
		t.Error("nil tracer retains events")
	}
	if tr.ThreadName(1) != "" || tr.Drops() != nil {
		t.Error("nil tracer registry not empty")
	}
}

func TestEmitOrderingAndLayerRouting(t *testing.T) {
	tr := New(16)
	tr.Emit(Event{Kind: KEvSchedule, At: 1})
	tr.Emit(Event{Kind: KDispatch, At: 2, Core: 0})
	tr.Emit(Event{Kind: KLockFast, At: 3, TID: 7, Name: "m"})
	tr.Emit(Event{Kind: KStealOK, At: 4, TID: 1})
	tr.Emit(Event{Kind: KGCSpan, At: 5, Dur: 10})

	if got := tr.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("Events not in Seq order: %v", evs)
		}
	}
	for i, want := range []Layer{LayerSimkit, LayerCFS, LayerJmutex, LayerTaskq, LayerGC} {
		if got := evs[i].Kind.Layer(); got != want {
			t.Errorf("event %d layer = %v, want %v", i, got, want)
		}
		if n := len(tr.LayerEvents(want)); n != 1 {
			t.Errorf("layer %v holds %d events, want 1", want, n)
		}
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: KEvFire, At: int64(i)})
	}
	evs := tr.LayerEvents(LayerSimkit)
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := int64(6 + i); e.At != want {
			t.Errorf("retained[%d].At = %d, want %d (oldest overwritten)", i, e.At, want)
		}
	}
	if d := tr.Drops()[LayerSimkit]; d != 6 {
		t.Errorf("drops = %d, want 6", d)
	}
}

func TestKindMetaComplete(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.Name() == "" {
			t.Errorf("kind %d has no name", k)
		}
		if k.Layer() >= numLayers {
			t.Errorf("kind %d has invalid layer", k)
		}
	}
	if len(Layers()) != numLayers {
		t.Errorf("Layers() lists %d layers, want %d", len(Layers()), numLayers)
	}
}

func TestWritePerfettoLoadableJSON(t *testing.T) {
	tr := New(64)
	tr.RegisterThread(7, "GCTaskThread#0")
	tr.Emit(Event{Kind: KEvSchedule, At: 100, Arg1: 500})
	tr.Emit(Event{Kind: KDispatch, At: 200, Dur: 300, Core: 2, TID: 7, Name: "GCTaskThread#0"})
	tr.Emit(Event{Kind: KLockFast, At: 250, TID: 7, Name: "GCTaskManager", Arg1: 3})
	tr.Emit(Event{Kind: KStealFail, At: 260, TID: 0, Arg1: -1})
	tr.Emit(Event{Kind: KGCSpan, At: 100, Dur: 900, Name: "minor", Arg1: 1})
	tr.Emit(Event{Kind: KGCPhase, At: 100, Dur: 50, Name: "init"})

	var b bytes.Buffer
	if err := WritePerfetto(&b, tr); err != nil {
		t.Fatal(err)
	}
	var f struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &f); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	cats := map[string]bool{}
	spans, instants, metas := 0, 0, 0
	for _, te := range f.TraceEvents {
		switch te.Ph {
		case "X":
			spans++
			if te.Dur == nil {
				t.Errorf("span %q missing dur", te.Name)
			}
		case "i":
			instants++
		case "M":
			metas++
		default:
			t.Errorf("unexpected ph %q", te.Ph)
		}
		if te.Cat != "" {
			cats[te.Cat] = true
		}
	}
	for _, l := range []string{"simkit", "cfs", "jmutex", "taskq", "pscavenge"} {
		if !cats[l] {
			t.Errorf("exported trace missing category %q (got %v)", l, cats)
		}
	}
	if spans != 3 || instants != 3 || metas == 0 {
		t.Errorf("spans=%d instants=%d metas=%d, want 3/3/>0", spans, instants, metas)
	}
	// The dispatch span must land on the core track.
	if !strings.Contains(b.String(), `"name":"cpu02"`) {
		t.Error("core track metadata missing")
	}
}

func TestWritePerfettoDeterministic(t *testing.T) {
	build := func() *Tracer {
		tr := New(32)
		tr.RegisterThread(3, "b")
		tr.RegisterThread(1, "a")
		tr.Emit(Event{Kind: KDispatch, At: 1, Dur: 2, Core: 1, TID: 1, Name: "a"})
		tr.Emit(Event{Kind: KDispatch, At: 3, Dur: 2, Core: 0, TID: 3, Name: "b"})
		tr.Emit(Event{Kind: KWakeup, At: 4, TID: 1, Arg1: 1})
		return tr
	}
	var b1, b2 bytes.Buffer
	if err := WritePerfetto(&b1, build()); err != nil {
		t.Fatal(err)
	}
	if err := WritePerfetto(&b2, build()); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("export is not byte-deterministic")
	}
}

func TestLockProfile(t *testing.T) {
	tr := New(64)
	tr.RegisterThread(1, "GCTaskThread#0")
	tr.RegisterThread(2, "GCTaskThread#1")
	// Owner 1 acquires 3x in a row (2 reacquires), then 2 takes over after
	// a bypass+block, then 1 again.
	tr.Emit(Event{Kind: KLockFast, At: 1, TID: 1, Name: "m"})
	tr.Emit(Event{Kind: KLockRelease, At: 2, TID: 1, Name: "m"})
	tr.Emit(Event{Kind: KLockFast, At: 3, TID: 1, Name: "m", Arg2: 1})
	tr.Emit(Event{Kind: KLockBlock, At: 4, TID: 2, Name: "m"})
	tr.Emit(Event{Kind: KLockFast, At: 5, TID: 1, Name: "m", Arg2: 1})
	tr.Emit(Event{Kind: KLockBypass, At: 5, TID: 1, Name: "m", Arg1: 1})
	tr.Emit(Event{Kind: KLockHandoff, At: 6, TID: 2, Name: "m"})
	tr.Emit(Event{Kind: KLockFast, At: 7, TID: 1, Name: "m"})
	// A different lock must be filtered out.
	tr.Emit(Event{Kind: KLockFast, At: 8, TID: 2, Name: "other"})

	p := BuildLockProfile(tr, "m")
	if p.Acquires != 5 || p.FastAcquires != 4 || p.Handoffs != 1 {
		t.Errorf("acquires=%d fast=%d handoff=%d, want 5/4/1", p.Acquires, p.FastAcquires, p.Handoffs)
	}
	if p.Bypasses != 1 || p.Blocks != 1 {
		t.Errorf("bypasses=%d blocks=%d, want 1/1", p.Bypasses, p.Blocks)
	}
	if p.PrevOwnerWins != 2 {
		t.Errorf("PrevOwnerWins = %d, want 2", p.PrevOwnerWins)
	}
	if p.MaxRun != 3 {
		t.Errorf("MaxRun = %d, want 3", p.MaxRun)
	}
	if p.RunLengths[3] != 1 || p.RunLengths[1] != 2 {
		t.Errorf("RunLengths = %v, want {3:1, 1:2}", p.RunLengths)
	}
	// Transition matrix: 1->1 twice, 1->2 once, 2->1 once.
	if got := p.Transitions[0][0]; got != 2 {
		t.Errorf("Transitions[1][1] = %d, want 2", got)
	}
	if got := p.Transitions[0][1]; got != 1 {
		t.Errorf("Transitions[1][2] = %d, want 1", got)
	}
	var b bytes.Buffer
	p.Render(&b)
	for _, want := range []string{"lock-contention profile: m", "previous owner re-acquired: 2 of 4 (50.0%)", "GCTa..#0"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("report missing %q:\n%s", want, b.String())
		}
	}
}

// TestLockProfileMergedMultiMonitor pins the per-monitor ownership
// cursor: when two monitors' acquisition streams interleave (one per JVM
// in a multi-JVM run) and profiles are merged (lock == ""), runs and
// transitions must be tracked per monitor — a single global cursor would
// fabricate cross-machine transitions no thread ever performed.
func TestLockProfileMergedMultiMonitor(t *testing.T) {
	tr := New(64)
	tr.RegisterThread(1, "GCTaskThread#0")
	tr.RegisterThread(2, "GCTaskThread#1")
	// Monitor A: tid 1 acquires three times in a row; monitor B's stream
	// (tid 2, twice) interleaves between them.
	tr.Emit(Event{Kind: KLockFast, At: 1, TID: 1, Name: "GCTaskManager"})
	tr.Emit(Event{Kind: KLockFast, At: 2, TID: 2, Name: "GCTaskManager#1"})
	tr.Emit(Event{Kind: KLockFast, At: 3, TID: 1, Name: "GCTaskManager", Arg2: 1})
	tr.Emit(Event{Kind: KLockFast, At: 4, TID: 2, Name: "GCTaskManager#1", Arg2: 1})
	tr.Emit(Event{Kind: KLockFast, At: 5, TID: 1, Name: "GCTaskManager", Arg2: 1})

	p := BuildLockProfile(tr, "")
	if p.Acquires != 5 {
		t.Fatalf("acquires = %d, want 5", p.Acquires)
	}
	// tid 1 re-acquired A twice, tid 2 re-acquired B once; nothing else.
	if p.PrevOwnerWins != 3 {
		t.Errorf("PrevOwnerWins = %d, want 3 (per-monitor cursors)", p.PrevOwnerWins)
	}
	if p.MaxRun != 3 || p.RunLengths[3] != 1 || p.RunLengths[2] != 1 {
		t.Errorf("runs = %v max %d, want {3:1, 2:1} max 3", p.RunLengths, p.MaxRun)
	}
	// Transition matrix must be purely diagonal: ownership never crossed
	// between the two machines' monitors.
	for i := range p.Transitions {
		for j, c := range p.Transitions[i] {
			if i != j && c != 0 {
				t.Errorf("fabricated cross-monitor transition [%d][%d] = %d", i, j, c)
			}
		}
	}
	if p.Transitions[0][0] != 2 || p.Transitions[1][1] != 1 {
		t.Errorf("diagonal = [%d, %d], want [2, 1]",
			p.Transitions[0][0], p.Transitions[1][1])
	}

	// The per-monitor view splits the same stream into two profiles.
	profiles := BuildLockProfiles(tr)
	if len(profiles) != 2 {
		t.Fatalf("BuildLockProfiles returned %d profiles, want 2", len(profiles))
	}
	if profiles[0].Lock != "GCTaskManager" || profiles[1].Lock != "GCTaskManager#1" {
		t.Errorf("profile names %q/%q, want sorted monitor names",
			profiles[0].Lock, profiles[1].Lock)
	}
	if profiles[0].Acquires != 3 || profiles[1].Acquires != 2 {
		t.Errorf("per-monitor acquires = %d/%d, want 3/2",
			profiles[0].Acquires, profiles[1].Acquires)
	}
}

func TestLockProfileEmpty(t *testing.T) {
	p := BuildLockProfile(nil, "m")
	if p.Acquires != 0 || p.PrevOwnerWinRate() != 0 {
		t.Error("nil-tracer profile not empty")
	}
	var b bytes.Buffer
	p.Render(&b)
	if !strings.Contains(b.String(), "no acquisitions") {
		t.Error("empty profile report missing notice")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(3)
	r.Counter("a.count").Inc()
	r.Counter("z.abs").Set(10)
	r.Gauge("m.ratio").Set(0.5)
	s := r.Snap("gc-1", 1000)
	if s.Label != "gc-1" || s.AtNs != 1000 {
		t.Errorf("snapshot header wrong: %+v", s)
	}
	want := []Metric{{"a.count", 4}, {"m.ratio", 0.5}, {"z.abs", 10}}
	if len(s.Values) != len(want) {
		t.Fatalf("snapshot values = %v", s.Values)
	}
	for i, m := range want {
		if s.Values[i] != m {
			t.Errorf("values[%d] = %v, want %v", i, s.Values[i], m)
		}
	}
	r.Counter("a.count").Inc()
	if r.History()[0].Values[0].Value != 4 {
		t.Error("snapshot not isolated from later updates")
	}
	var b bytes.Buffer
	r.Render(&b)
	if !strings.Contains(b.String(), "a.count") || !strings.Contains(b.String(), "0.500") {
		t.Errorf("Render output wrong:\n%s", b.String())
	}

	var nilReg *Registry
	nilReg.Counter("x").Inc() // must not panic
	nilReg.Gauge("y").Set(1)
	nilReg.Snap("l", 0)
	if nilReg.Current() != nil || nilReg.History() != nil {
		t.Error("nil registry not inert")
	}
}
