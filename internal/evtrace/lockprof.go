package evtrace

import (
	"fmt"
	"io"
	"sort"
)

// This file folds the jmutex event stream into the paper's §3.2 analysis:
// HotSpot's competitive handoff lets the previous owner re-acquire the
// monitor through the CAS fast path before the OnDeck heir is even
// scheduled, so ownership "sticks" to one thread for long runs and queued
// waiters start serially. The profiler makes that visible as (a) an
// ownership-transition matrix — who took the lock from whom — whose heavy
// diagonal is the re-acquisition pathology, and (b) a histogram of
// consecutive-acquisition run lengths.

// LockProfile is the folded view of one monitor's acquisition stream.
type LockProfile struct {
	Lock string

	Acquires      int // total acquisitions observed
	FastAcquires  int // via the CAS fast path
	Handoffs      int // via the queue (OnDeck / FIFO successor)
	Bypasses      int // fast acquisitions that jumped queued waiters
	Blocks        int // park events while contending
	PrevOwnerWins int // acquisitions by the immediately previous owner

	// Threads lists the contenders in first-acquisition order; the
	// transition matrix is indexed by position in this slice.
	Threads []ThreadRef
	// Transitions[i][j] counts ownership passing from Threads[i] to
	// Threads[j]; the diagonal holds consecutive re-acquisitions.
	Transitions [][]int
	// RunLengths[n] counts maximal runs of exactly n consecutive
	// acquisitions by one thread.
	RunLengths map[int]int
	// MaxRun is the longest observed consecutive-acquisition run.
	MaxRun int
	// Dropped is how many jmutex records the ring overwrote before the
	// profile's window; the profile covers the retained tail only.
	Dropped uint64
}

// ThreadRef names one contender.
type ThreadRef struct {
	TID  int32
	Name string
}

// BuildLockProfile folds the tracer's retained jmutex events for the named
// lock ("" = all locks merged) into a LockProfile. Returns an empty
// profile when tracing was disabled.
func BuildLockProfile(t *Tracer, lock string) *LockProfile {
	p := &LockProfile{Lock: lock, RunLengths: make(map[int]int)}
	if t == nil {
		return p
	}
	p.Dropped = t.Drops()[LayerJmutex]
	index := map[int32]int{}
	idxOf := func(tid int32) int {
		if i, ok := index[tid]; ok {
			return i
		}
		i := len(p.Threads)
		index[tid] = i
		name := t.ThreadName(tid)
		if name == "" {
			name = fmt.Sprintf("tid%d", tid)
		}
		p.Threads = append(p.Threads, ThreadRef{TID: tid, Name: name})
		for r := range p.Transitions {
			p.Transitions[r] = append(p.Transitions[r], 0)
		}
		p.Transitions = append(p.Transitions, make([]int, i+1))
		return i
	}

	// Ownership state is tracked per monitor name even when profiles are
	// merged (lock == ""): in a multi-JVM run each machine has its own
	// "GCTaskManager#N" monitor, and folding their interleaved acquisition
	// streams through one prev/run cursor fabricated cross-machine
	// "transitions" that no thread ever performed.
	type lockState struct {
		prev int
		run  int
	}
	states := map[string]*lockState{}
	stateOf := func(name string) *lockState {
		s := states[name]
		if s == nil {
			s = &lockState{prev: -1}
			states[name] = s
		}
		return s
	}
	endRun := func(s *lockState) {
		if s.run > 0 {
			p.RunLengths[s.run]++
			if s.run > p.MaxRun {
				p.MaxRun = s.run
			}
		}
		s.run = 0
	}
	for _, e := range t.LayerEvents(LayerJmutex) {
		if lock != "" && e.Name != lock {
			continue
		}
		switch e.Kind {
		case KLockFast, KLockHandoff:
			s := stateOf(e.Name)
			cur := idxOf(e.TID)
			p.Acquires++
			if e.Kind == KLockFast {
				p.FastAcquires++
			} else {
				p.Handoffs++
			}
			if s.prev >= 0 {
				p.Transitions[s.prev][cur]++
				if s.prev == cur {
					p.PrevOwnerWins++
				}
			}
			if cur == s.prev {
				s.run++
			} else {
				endRun(s)
				s.run = 1
			}
			s.prev = cur
		case KLockBypass:
			p.Bypasses++
		case KLockBlock:
			p.Blocks++
		}
	}
	for _, s := range states {
		endRun(s)
	}
	return p
}

// BuildLockProfiles folds the tracer's retained jmutex events into one
// profile per distinct monitor name, sorted by name — the per-machine
// view for multi-JVM runs, where every instance has its own
// "GCTaskManager#N" monitor. Returns nil when tracing was disabled or no
// jmutex events were retained.
func BuildLockProfiles(t *Tracer) []*LockProfile {
	if t == nil {
		return nil
	}
	seen := map[string]bool{}
	names := []string{}
	for _, e := range t.LayerEvents(LayerJmutex) {
		if !seen[e.Name] {
			seen[e.Name] = true
			names = append(names, e.Name)
		}
	}
	sort.Strings(names)
	out := make([]*LockProfile, len(names))
	for i, name := range names {
		out[i] = BuildLockProfile(t, name)
	}
	return out
}

// PrevOwnerWinRate is the share of (non-first) acquisitions won by the
// immediately previous owner — the paper's "previous owner always wins".
func (p *LockProfile) PrevOwnerWinRate() float64 {
	if p.Acquires <= 1 {
		return 0
	}
	return float64(p.PrevOwnerWins) / float64(p.Acquires-1)
}

// Render renders the profile as the printable §3.2 report.
func (p *LockProfile) Render(w io.Writer) {
	name := p.Lock
	if name == "" {
		name = "(all locks)"
	}
	fmt.Fprintf(w, "lock-contention profile: %s\n", name)
	if p.Dropped > 0 {
		fmt.Fprintf(w, "  (ring overwrote %d older records; profile covers the retained tail)\n", p.Dropped)
	}
	if p.Acquires == 0 {
		fmt.Fprintln(w, "  no acquisitions recorded (was tracing enabled?)")
		return
	}
	fmt.Fprintf(w, "  acquisitions: %d (fast %d, handoff %d, bypasses %d, parks %d)\n",
		p.Acquires, p.FastAcquires, p.Handoffs, p.Bypasses, p.Blocks)
	fmt.Fprintf(w, "  previous owner re-acquired: %d of %d (%.1f%%), longest run %d\n",
		p.PrevOwnerWins, p.Acquires-1, 100*p.PrevOwnerWinRate(), p.MaxRun)

	fmt.Fprintf(w, "  consecutive-acquisition runs:\n")
	for _, b := range runBuckets {
		n := 0
		for l, c := range p.RunLengths {
			if l >= b.lo && l <= b.hi {
				n += c
			}
		}
		if n > 0 {
			fmt.Fprintf(w, "    %-7s %d\n", b.label, n)
		}
	}

	// Ownership-transition matrix over the top contenders by acquisitions.
	order := make([]int, len(p.Threads))
	for i := range order {
		order[i] = i
	}
	acq := make([]int, len(p.Threads))
	for _, row := range p.Transitions {
		for j, c := range row {
			acq[j] += c
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return acq[order[a]] > acq[order[b]] })
	const topN = 8
	if len(order) > topN {
		order = order[:topN]
	}
	fmt.Fprintf(w, "  ownership transitions (from row to column, top %d threads):\n", len(order))
	fmt.Fprintf(w, "    %-16s", "")
	for _, j := range order {
		fmt.Fprintf(w, " %8s", short(p.Threads[j].Name))
	}
	fmt.Fprintln(w)
	for _, i := range order {
		fmt.Fprintf(w, "    %-16s", short(p.Threads[i].Name))
		for _, j := range order {
			fmt.Fprintf(w, " %8d", p.Transitions[i][j])
		}
		fmt.Fprintln(w)
	}
}

type runBucket struct {
	lo, hi int
	label  string
}

var runBuckets = []runBucket{
	{1, 1, "1"},
	{2, 3, "2-3"},
	{4, 7, "4-7"},
	{8, 15, "8-15"},
	{16, 63, "16-63"},
	{64, 1 << 30, ">=64"},
}

// short compacts a thread name for matrix headers.
func short(name string) string {
	if len(name) <= 8 {
		return name
	}
	// Keep the distinguishing suffix (e.g. "GCTaskThread#12" -> "GCT..#12").
	return name[:4] + ".." + name[len(name)-2:]
}
