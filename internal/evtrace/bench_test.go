package evtrace

import "testing"

// The disabled path (nil tracer) must cost zero allocations: this is the
// contract that lets every hot path carry an unconditional `if etr != nil`
// guard without an alloc/GC penalty when tracing is off.
func TestEmitDisabledZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{Kind: KDispatch, At: 1, Dur: 2, Core: 0, TID: 1, Name: "t"})
	})
	if allocs != 0 {
		t.Errorf("disabled Emit allocates %.1f/op, want 0", allocs)
	}
}

// Once a sink's ring is warm (first Emit on the layer allocated it), the
// enabled steady state must also be zero-alloc: records are copied into the
// ring in place and names are preexisting strings, never formatted.
func TestEmitEnabledSteadyStateZeroAlloc(t *testing.T) {
	tr := New(256)
	tr.Emit(Event{Kind: KDispatch}) // warm the cfs ring
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{Kind: KDispatch, At: 1, Dur: 2, Core: 0, TID: 1, Name: "t"})
	})
	if allocs != 0 {
		t.Errorf("enabled Emit allocates %.1f/op after warm-up, want 0", allocs)
	}
}

func BenchmarkEmitDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Kind: KDispatch, At: int64(i), Core: 0, TID: 1, Name: "t"})
	}
}

func BenchmarkEmitEnabled(b *testing.B) {
	tr := New(1 << 12)
	tr.Emit(Event{Kind: KDispatch})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Kind: KDispatch, At: int64(i), Core: 0, TID: 1, Name: "t"})
	}
}
