// Package evtrace is the unified cross-layer event bus of the simulator.
//
// The paper's core findings are emergent interactions across three layers —
// GC task fetching, HotSpot monitor handoff, and CFS load balancing — so a
// phenomenon like Fig. 3's ownership bouncing or §3.3's thread stacking is
// only inspectable when every layer's events land on one timeline. Each
// layer (simkit, cfs, jmutex, taskq, pscavenge) emits typed records into a
// shared Tracer; on top of the bus sit a Chrome/Perfetto trace-event
// exporter (perfetto.go), a named-metric registry (metrics.go), and a
// lock-contention profiler (lockprof.go).
//
// Overhead contract: a nil *Tracer is a valid "tracing disabled" tracer —
// every method is a no-op — and instrumented hot paths guard their single
// Emit call behind a nil check, so disabled tracing costs one predictable
// branch and zero allocations (asserted by alloc tests here and by the
// simkit kernel's zero-alloc tests). Enabled tracing appends into
// preallocated per-layer ring buffers: pooled Event records, no per-event
// allocation in steady state, oldest records overwritten when a sink is
// full. Tracing never touches the simulation's RNG or event queue, so
// enabling it cannot perturb simulated behaviour: golden outputs are
// byte-identical with tracing on and off.
//
// This package intentionally imports nothing from the rest of the
// repository (timestamps are raw int64 nanoseconds, not simkit.Time) so
// that even the bottom layer, simkit, can emit into it without an import
// cycle.
package evtrace

import "sort"

// Layer identifies which simulation layer emitted an event.
type Layer uint8

const (
	// LayerSimkit is the discrete-event kernel (schedule/fire/cancel).
	LayerSimkit Layer = iota
	// LayerCFS is the OS scheduler model (dispatch, preempt, migrate,
	// wakeup, load balancing).
	LayerCFS
	// LayerJmutex is the HotSpot monitor model (acquire, handoff, bypass,
	// block/unblock).
	LayerJmutex
	// LayerTaskq is GC task fetching and work stealing (get_task, steal
	// attempts, termination spins).
	LayerTaskq
	// LayerGC is the Parallel Scavenge engine (collection and phase spans,
	// per-task spans).
	LayerGC

	numLayers = 5
)

func (l Layer) String() string {
	switch l {
	case LayerSimkit:
		return "simkit"
	case LayerCFS:
		return "cfs"
	case LayerJmutex:
		return "jmutex"
	case LayerTaskq:
		return "taskq"
	case LayerGC:
		return "pscavenge"
	}
	return "?"
}

// Layers lists every layer in emission order.
func Layers() []Layer {
	return []Layer{LayerSimkit, LayerCFS, LayerJmutex, LayerTaskq, LayerGC}
}

// Kind is the event type. Kinds are grouped by layer; kindMeta maps each to
// its layer, display name, and phase (span vs instant).
type Kind uint8

const (
	// --- simkit ---

	// KEvSchedule: an event was scheduled (Arg1 = target time).
	KEvSchedule Kind = iota
	// KEvFire: an event fired (At = fire time, Arg1 = pending after).
	KEvFire
	// KEvCancel: a pending event was cancelled (Arg1 = its target time).
	KEvCancel

	// --- cfs ---

	// KDispatch is a span: one contiguous stint of a thread on a core
	// (At = dispatch, Dur = stint length, Core, TID, Name = thread name,
	// Arg1 = the core's min-vruntime at deschedule).
	KDispatch
	// KPreempt: a slice expiry preempted the current thread.
	KPreempt
	// KMigrate: a thread moved between cores (Arg1 = from, Arg2 = to).
	KMigrate
	// KWakeup: a blocked thread was woken (Arg1 = target core,
	// Arg2 = C-state exit latency charged).
	KWakeup
	// KNewIdlePull: new-idle balancing pulled a thread (Core = puller,
	// Arg1 = source core).
	KNewIdlePull
	// KPeriodicPull: periodic balancing pulled a thread (Core = puller,
	// Arg1 = source core, Arg2 = domain level).
	KPeriodicPull
	// KRunqPush: a thread was enqueued on a core's runqueue
	// (Arg1 = runqueue length after the push, Arg2 = core load after).
	KRunqPush
	// KRunqPop: a thread left a core's runqueue (Arg1 = runqueue length
	// after removal, Arg2 = 0 for a dispatch pop, 1 for a migration
	// removal). A dispatch pop marks the start of the on-CPU stint whose
	// KDispatch span is emitted retrospectively at deschedule.
	KRunqPop

	// --- jmutex ---

	// KLockFast: acquisition through the CAS fast path (Name = lock,
	// Arg1 = queued waiters, Arg2 = 1 when the previous owner reacquired).
	KLockFast
	// KLockBypass: a fast-path acquisition jumped over queued waiters
	// (the "bypass of OnDeck" unfairness; Arg1 = waiters bypassed).
	KLockBypass
	// KLockHandoff: acquisition after queuing (OnDeck heir or FIFO
	// successor finally won; Arg1 = waiters still queued).
	KLockHandoff
	// KLockBlock: a contender parked on the lock (Arg1 = queued waiters).
	KLockBlock
	// KLockUnblock: the unlock chain woke a queued waiter (TID = wakee).
	KLockUnblock
	// KLockRelease: the owner released the lock (Arg1 = queued waiters).
	KLockRelease

	// --- taskq ---

	// KGetTask: a GC worker fetched a task from the GCTaskManager
	// (TID = worker, Arg1 = task kind, Arg2 = unique task id,
	// Name = task kind name).
	KGetTask
	// KStealOK: a steal attempt succeeded (TID = thief, Arg1 = victim).
	KStealOK
	// KStealFail: a steal attempt failed (TID = thief, Arg1 = victim or
	// -1 when the policy found no candidate).
	KStealFail
	// KTermOffer: a worker offered termination (Arg1 = offers so far).
	KTermOffer
	// KTermSpin: one spin/yield (Arg2=0) or sleep (Arg2=1) iteration
	// inside the termination protocol.
	KTermSpin
	// KTermDone: the termination protocol completed — the parallel phase
	// is over (Arg1 = cumulative deque pushes across the engine's queues,
	// Arg2 = cumulative pops + steals; equal iff every deque is empty).
	KTermDone

	// --- pscavenge ---

	// KGCSpan is a span covering one whole collection (Name = kind,
	// Arg1 = GC sequence number).
	KGCSpan
	// KGCPhase is a nested span for one of the three GC phases
	// (Name = "init" | "parallel" | "final-sync").
	KGCPhase
	// KGCTask is a span covering one executed GC task (TID = worker,
	// Arg1 = unique task id, Name = task kind name).
	KGCTask
	// KTaskEnqueue: the VM thread enqueued one GC task on the manager
	// (Arg1 = unique task id, Arg2 = task kind, Name = task kind name).
	KTaskEnqueue
	// KWorkerBind: a GC worker thread announced itself, binding the CFS
	// thread id to its engine identity (TID = cfs thread id, Arg1 = worker
	// index, Arg2 = engine instance, Name = manager monitor name). Emitted
	// once per worker at spawn; attribution layers use it to bridge the two
	// TID namespaces (taskq/GC events carry worker indexes, cfs/jmutex
	// events carry thread ids).
	KWorkerBind

	numKinds
)

type kindInfo struct {
	layer Layer
	name  string
	span  bool // true: complete span (uses Dur); false: instant
}

var kindMeta = [numKinds]kindInfo{
	KEvSchedule:   {LayerSimkit, "ev_schedule", false},
	KEvFire:       {LayerSimkit, "ev_fire", false},
	KEvCancel:     {LayerSimkit, "ev_cancel", false},
	KDispatch:     {LayerCFS, "run", true},
	KPreempt:      {LayerCFS, "preempt", false},
	KMigrate:      {LayerCFS, "migrate", false},
	KWakeup:       {LayerCFS, "wakeup", false},
	KNewIdlePull:  {LayerCFS, "newidle_pull", false},
	KPeriodicPull: {LayerCFS, "periodic_pull", false},
	KRunqPush:     {LayerCFS, "rq_push", false},
	KRunqPop:      {LayerCFS, "rq_pop", false},
	KLockFast:     {LayerJmutex, "lock_fast", false},
	KLockBypass:   {LayerJmutex, "lock_bypass", false},
	KLockHandoff:  {LayerJmutex, "lock_handoff", false},
	KLockBlock:    {LayerJmutex, "lock_block", false},
	KLockUnblock:  {LayerJmutex, "lock_unblock", false},
	KLockRelease:  {LayerJmutex, "lock_release", false},
	KGetTask:      {LayerTaskq, "get_task", false},
	KStealOK:      {LayerTaskq, "steal_ok", false},
	KStealFail:    {LayerTaskq, "steal_fail", false},
	KTermOffer:    {LayerTaskq, "term_offer", false},
	KTermSpin:     {LayerTaskq, "term_spin", false},
	KTermDone:     {LayerTaskq, "term_done", false},
	KGCSpan:       {LayerGC, "gc", true},
	KGCPhase:      {LayerGC, "gc_phase", true},
	KGCTask:       {LayerGC, "gc_task", true},
	KTaskEnqueue:  {LayerGC, "task_enqueue", false},
	KWorkerBind:   {LayerGC, "worker_bind", false},
}

// Layer returns the layer a kind belongs to.
func (k Kind) Layer() Layer { return kindMeta[k].layer }

// Name returns the kind's short display name.
func (k Kind) Name() string { return kindMeta[k].name }

// Span reports whether events of this kind carry a duration.
func (k Kind) Span() bool { return kindMeta[k].span }

// Event is one pooled trace record. Events are small values copied into a
// ring buffer; emitting one never allocates. At/Dur are virtual
// nanoseconds (At is the span start for span kinds). Core and TID are -1
// when not applicable; Name must be a preexisting string (a thread or lock
// name, or a static kind name) — hot paths must never format one.
type Event struct {
	At   int64
	Dur  int64
	Seq  uint64 // global emission order, assigned by Emit
	Arg1 int64
	Arg2 int64
	Kind Kind
	Core int32
	TID  int32
	Name string
}

// sink is one layer's ring buffer. The buffer is allocated lazily on the
// first emit to the layer and then reused forever; when full, the oldest
// record is overwritten (the tail of a run is what the Perfetto UI and the
// lock profiler want).
type sink struct {
	buf   []Event
	next  int
	full  bool
	drops uint64
	cap   int
}

func (s *sink) put(e Event) {
	if s.buf == nil {
		s.buf = make([]Event, s.cap)
	}
	if s.full {
		s.drops++
	}
	s.buf[s.next] = e
	s.next++
	if s.next == len(s.buf) {
		s.next, s.full = 0, true
	}
}

// events appends the sink's records in emission order to out.
func (s *sink) events(out []Event) []Event {
	if s.buf == nil {
		return out
	}
	if s.full {
		out = append(out, s.buf[s.next:]...)
	}
	return append(out, s.buf[:s.next]...)
}

func (s *sink) len() int {
	if s.full {
		return len(s.buf)
	}
	return s.next
}

// DefaultSinkCap is the per-layer ring capacity used by New(0).
const DefaultSinkCap = 1 << 16

// Tracer is the event bus: one ring-buffer sink per layer plus a thread
// name registry. A nil *Tracer is valid and means "tracing disabled" —
// all methods are no-ops. A Tracer is not safe for concurrent use; like
// the simulator it serves, it is single-threaded by design (each
// simulation cell owns its own Tracer).
type Tracer struct {
	sinks [numLayers]sink
	seq   uint64
	names map[int32]string
	subs  []func(Event)
}

// New creates a tracer whose per-layer rings hold capPerSink records each
// (0 = DefaultSinkCap). Ring storage is allocated lazily per layer on
// first use.
func New(capPerSink int) *Tracer {
	if capPerSink <= 0 {
		capPerSink = DefaultSinkCap
	}
	t := &Tracer{names: make(map[int32]string)}
	for i := range t.sinks {
		t.sinks[i].cap = capPerSink
	}
	return t
}

// Enabled reports whether the tracer records events (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Emit records one event. Safe (and free) on a nil tracer. The event's
// Seq is assigned here; everything else is the caller's.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.seq++
	e.Seq = t.seq
	t.sinks[kindMeta[e.Kind].layer].put(e)
	for _, fn := range t.subs {
		fn(e)
	}
}

// Subscribe registers fn to receive every event at emission time, after
// Seq assignment and ring insertion. Unlike the ring sinks, subscribers
// see the complete stream even when old records are overwritten — this is
// what online consumers (the internal/check invariant checker) rely on.
// Subscribers must not emit; like the Tracer itself they are
// single-threaded. Safe on a nil tracer (no-op).
func (t *Tracer) Subscribe(fn func(Event)) {
	if t == nil || fn == nil {
		return
	}
	t.subs = append(t.subs, fn)
}

// RegisterThread associates a simulated thread id with its name, for the
// exporter's track labels and the lock profiler's reports. Safe on nil.
func (t *Tracer) RegisterThread(tid int32, name string) {
	if t == nil {
		return
	}
	t.names[tid] = name
}

// ThreadName returns the registered name for tid ("" when unknown).
func (t *Tracer) ThreadName(tid int32) string {
	if t == nil {
		return ""
	}
	return t.names[tid]
}

// Len returns the number of retained events across all sinks.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.sinks {
		n += t.sinks[i].len()
	}
	return n
}

// Drops returns how many records were overwritten per layer (ring full).
func (t *Tracer) Drops() map[Layer]uint64 {
	if t == nil {
		return nil
	}
	out := make(map[Layer]uint64)
	for i := range t.sinks {
		if d := t.sinks[i].drops; d > 0 {
			out[Layer(i)] = d
		}
	}
	return out
}

// LayerEvents returns one layer's retained events in emission order.
func (t *Tracer) LayerEvents(l Layer) []Event {
	if t == nil {
		return nil
	}
	return t.sinks[l].events(nil)
}

// Events returns every retained event merged across layers in global
// emission order (by Seq). Seq order equals (virtual time, emission)
// order because the simulation is single-threaded.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, t.Len())
	for i := range t.sinks {
		out = t.sinks[i].events(out)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
