package evtrace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file is the unified metrics registry: the ad-hoc counters scattered
// across the layers (jmutex.Stats, taskq.Stats, cfs.KernelStats, GCReport
// totals) publish into one named-metric namespace, snapshotted once per
// collection, so a run's counters are enumerable and machine-readable
// through a single interface instead of five struct types.
//
// Like the Tracer, a Registry is single-threaded (one per simulation) and
// every method is safe on a nil receiver, so publishing sites need no
// enablement checks beyond the one nil guard.

// Counter is a monotonic (or externally-maintained absolute) int64 metric.
type Counter struct{ v int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v += d
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Set overwrites the counter with an absolute value — used when a layer
// already maintains its own cumulative struct and republishes it.
func (c *Counter) Set(v int64) {
	if c != nil {
		c.v = v
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous float64 metric.
type Gauge struct{ v float64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a sample-accumulating distribution metric. Unlike Counter
// and Gauge it retains every observation, so exact nearest-rank quantiles
// are available at exposition time — the right trade for the registry's
// use (service latencies, pause blame), where sample counts are modest
// and quantile fidelity matters more than bounded memory.
type Histogram struct {
	samples []float64
	sum     float64
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.samples = append(h.samples, v)
	h.sum += v
	h.sorted = false
}

// N returns the number of observations.
func (h *Histogram) N() int {
	if h == nil {
		return 0
	}
	return len(h.samples)
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Quantile returns the nearest-rank q-quantile (q in [0,1]) of the
// observations, 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	idx := int(q*float64(len(h.samples)) + 0.5)
	if idx < 1 {
		idx = 1
	}
	if idx > len(h.samples) {
		idx = len(h.samples)
	}
	return h.samples[idx-1]
}

// Metric is one named value inside a snapshot.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Snapshot is the registry's full state at one instant (sorted by name).
type Snapshot struct {
	Label  string   `json:"label"` // e.g. "gc-7"
	AtNs   int64    `json:"at_ns"` // virtual time of the snapshot
	Values []Metric `json:"values"`
}

// Registry holds named counters and gauges. Names are conventionally
// dotted paths ("jmutex.fast_acquires", "taskq.steal_failures",
// "gc.copied_bytes").
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	history  []Snapshot
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the counter with the given name.
// Returns nil on a nil registry; Counter/Gauge methods on nil are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge with the given name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram with the given
// name. Returns nil on a nil registry; Histogram methods on nil are no-ops.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snap captures the registry's current state, appends it to the history,
// and returns it. Safe on nil (returns a zero Snapshot).
func (r *Registry) Snap(label string, atNs int64) Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{Label: label, AtNs: atNs, Values: r.values()}
	r.history = append(r.history, s)
	return s
}

// values returns every metric sorted by name. Metrics are collected into
// one list and sorted by (name, kind) with counters before gauges before
// histogram expansions, so any metrics sharing one name have a
// deterministic order; the former sort.Slice over map-iteration output
// left that tie to the map's iteration order, which leaked into JSON
// exports (and any digest over them) as run-to-run byte differences.
// Histograms expand into five derived values each: <name>.p50, .p95,
// .p99, .count and .sum — quantiles stay enumerable through the same
// flat Metric interface the JSON consumers already parse.
func (r *Registry) values() []Metric {
	type entry struct {
		Metric
		rank int // counter=0, gauge=1, histogram expansion=2
	}
	ents := make([]entry, 0, len(r.counters)+len(r.gauges)+5*len(r.hists))
	for name, c := range r.counters {
		ents = append(ents, entry{Metric{Name: name, Value: float64(c.v)}, 0})
	}
	for name, g := range r.gauges {
		ents = append(ents, entry{Metric{Name: name, Value: g.v}, 1})
	}
	for name, h := range r.hists {
		ents = append(ents,
			entry{Metric{Name: name + ".p50", Value: h.Quantile(0.50)}, 2},
			entry{Metric{Name: name + ".p95", Value: h.Quantile(0.95)}, 2},
			entry{Metric{Name: name + ".p99", Value: h.Quantile(0.99)}, 2},
			entry{Metric{Name: name + ".count", Value: float64(h.N())}, 2},
			entry{Metric{Name: name + ".sum", Value: h.Sum()}, 2})
	}
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].Name != ents[j].Name {
			return ents[i].Name < ents[j].Name
		}
		return ents[i].rank < ents[j].rank
	})
	out := make([]Metric, len(ents))
	for i, e := range ents {
		out[i] = e.Metric
	}
	return out
}

// Current returns the present metric values without recording a snapshot.
func (r *Registry) Current() []Metric {
	if r == nil {
		return nil
	}
	return r.values()
}

// History returns the per-collection snapshots in order.
func (r *Registry) History() []Snapshot {
	if r == nil {
		return nil
	}
	return r.history
}

// promName sanitizes a dotted registry name into the Prometheus metric
// name charset [a-zA-Z0-9_:].
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_', r == ':':
			return r
		}
		return '_'
	}, name)
}

// promValue formats a float the way the Prometheus text format expects;
// FormatFloat 'g' with precision -1 round-trips exactly, so repeated
// expositions of unchanged state are byte-identical.
func promValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples with a
// TYPE line, histograms as summaries with quantile labels plus _sum and
// _count series. Families are emitted in sorted name order (counters
// before gauges before summaries on a name tie), so the exposition is
// deterministic and repeat-scrape byte-identical for unchanged state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	type family struct {
		name string
		rank int
		emit func() error
	}
	fams := make([]family, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		n, v := promName(name), float64(c.v)
		fams = append(fams, family{name, 0, func() error {
			_, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", n, n, promValue(v))
			return err
		}})
	}
	for name, g := range r.gauges {
		n, v := promName(name), g.v
		fams = append(fams, family{name, 1, func() error {
			_, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promValue(v))
			return err
		}})
	}
	for name, h := range r.hists {
		n, h := promName(name), h
		fams = append(fams, family{name, 2, func() error {
			_, err := fmt.Fprintf(w,
				"# TYPE %s summary\n%s{quantile=\"0.5\"} %s\n%s{quantile=\"0.95\"} %s\n%s{quantile=\"0.99\"} %s\n%s_sum %s\n%s_count %d\n",
				n,
				n, promValue(h.Quantile(0.50)),
				n, promValue(h.Quantile(0.95)),
				n, promValue(h.Quantile(0.99)),
				n, promValue(h.Sum()),
				n, h.N())
			return err
		}})
	}
	sort.Slice(fams, func(i, j int) bool {
		if fams[i].name != fams[j].name {
			return fams[i].name < fams[j].name
		}
		return fams[i].rank < fams[j].rank
	})
	for _, f := range fams {
		if err := f.emit(); err != nil {
			return err
		}
	}
	return nil
}

// Render renders the current values as an aligned two-column listing.
func (r *Registry) Render(w io.Writer) {
	if r == nil {
		return
	}
	vals := r.values()
	width := 0
	for _, m := range vals {
		if len(m.Name) > width {
			width = len(m.Name)
		}
	}
	for _, m := range vals {
		if m.Value == float64(int64(m.Value)) {
			fmt.Fprintf(w, "%-*s %d\n", width, m.Name, int64(m.Value))
		} else {
			fmt.Fprintf(w, "%-*s %.3f\n", width, m.Name, m.Value)
		}
	}
}
