package evtrace

import (
	"fmt"
	"io"
	"sort"
)

// This file is the unified metrics registry: the ad-hoc counters scattered
// across the layers (jmutex.Stats, taskq.Stats, cfs.KernelStats, GCReport
// totals) publish into one named-metric namespace, snapshotted once per
// collection, so a run's counters are enumerable and machine-readable
// through a single interface instead of five struct types.
//
// Like the Tracer, a Registry is single-threaded (one per simulation) and
// every method is safe on a nil receiver, so publishing sites need no
// enablement checks beyond the one nil guard.

// Counter is a monotonic (or externally-maintained absolute) int64 metric.
type Counter struct{ v int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v += d
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Set overwrites the counter with an absolute value — used when a layer
// already maintains its own cumulative struct and republishes it.
func (c *Counter) Set(v int64) {
	if c != nil {
		c.v = v
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous float64 metric.
type Gauge struct{ v float64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Metric is one named value inside a snapshot.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Snapshot is the registry's full state at one instant (sorted by name).
type Snapshot struct {
	Label  string   `json:"label"` // e.g. "gc-7"
	AtNs   int64    `json:"at_ns"` // virtual time of the snapshot
	Values []Metric `json:"values"`
}

// Registry holds named counters and gauges. Names are conventionally
// dotted paths ("jmutex.fast_acquires", "taskq.steal_failures",
// "gc.copied_bytes").
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	history  []Snapshot
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter returns (creating if needed) the counter with the given name.
// Returns nil on a nil registry; Counter/Gauge methods on nil are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge with the given name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snap captures the registry's current state, appends it to the history,
// and returns it. Safe on nil (returns a zero Snapshot).
func (r *Registry) Snap(label string, atNs int64) Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{Label: label, AtNs: atNs, Values: r.values()}
	r.history = append(r.history, s)
	return s
}

// values returns every metric sorted by name. Counters and gauges are
// collected through sorted key slices and merged counter-first, so a
// counter and a gauge sharing one name have a deterministic order; the
// former sort.Slice over map-iteration output left that tie to the map's
// iteration order, which leaked into JSON exports (and any digest over
// them) as run-to-run byte differences.
func (r *Registry) values() []Metric {
	cnames := make([]string, 0, len(r.counters))
	for name := range r.counters {
		cnames = append(cnames, name)
	}
	sort.Strings(cnames)
	gnames := make([]string, 0, len(r.gauges))
	for name := range r.gauges {
		gnames = append(gnames, name)
	}
	sort.Strings(gnames)

	out := make([]Metric, 0, len(cnames)+len(gnames))
	ci, gi := 0, 0
	for ci < len(cnames) || gi < len(gnames) {
		if gi >= len(gnames) || (ci < len(cnames) && cnames[ci] <= gnames[gi]) {
			out = append(out, Metric{Name: cnames[ci], Value: float64(r.counters[cnames[ci]].v)})
			ci++
		} else {
			out = append(out, Metric{Name: gnames[gi], Value: r.gauges[gnames[gi]].v})
			gi++
		}
	}
	return out
}

// Current returns the present metric values without recording a snapshot.
func (r *Registry) Current() []Metric {
	if r == nil {
		return nil
	}
	return r.values()
}

// History returns the per-collection snapshots in order.
func (r *Registry) History() []Snapshot {
	if r == nil {
		return nil
	}
	return r.history
}

// Render renders the current values as an aligned two-column listing.
func (r *Registry) Render(w io.Writer) {
	if r == nil {
		return
	}
	vals := r.values()
	width := 0
	for _, m := range vals {
		if len(m.Name) > width {
			width = len(m.Name)
		}
	}
	for _, m := range vals {
		if m.Value == float64(int64(m.Value)) {
			fmt.Fprintf(w, "%-*s %d\n", width, m.Name, int64(m.Value))
		} else {
			fmt.Fprintf(w, "%-*s %.3f\n", width, m.Name, m.Value)
		}
	}
}
