package gclog

import (
	"bytes"
	"testing"

	"repro/internal/evtrace"
	"repro/internal/jmutex"
	"repro/internal/pscavenge"
	"repro/internal/taskq"
)

// runExportBytes marshals one representative full-run export.
func runExportBytes(t *testing.T, metrics []evtrace.Metric) []byte {
	t.Helper()
	var b bytes.Buffer
	steal := &taskq.Stats{Attempts: []int64{40, 35, 25}, Failures: []int64{30, 31, 20}}
	mon := jmutex.Stats{FastAcquires: 120, SlowAcquires: 14, OwnerReacquires: 96, ParkEvents: 9}
	err := WriteRunJSON(&b, []*pscavenge.GCReport{minorReport(), majorReport()}, mon, steal, metrics)
	if err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// The service cache and the simcheck sweep both digest WriteRunJSON
// output, so repeated marshals of one run must be byte-identical — no map
// iteration order (or other nondeterminism) may leak into the encoding.
// The registries are rebuilt per iteration with shuffled insertion orders
// and a counter/gauge name collision, the case whose ordering was left to
// map iteration before Registry.values() sorted both key sets explicitly.
func TestWriteRunJSONRepeatedMarshalByteIdentical(t *testing.T) {
	metricsAt := func(rot int) []evtrace.Metric {
		reg := evtrace.NewRegistry()
		names := []string{"gc.minor", "taskq.steals", "jmutex.fast", "cfs.migrations", "gc.pause_ms"}
		for i := range names {
			name := names[(i+rot)%len(names)]
			reg.Counter(name).Set(int64(7 * len(name)))
		}
		// Same-name counter and gauge: the ordering tie the old sort left
		// to map iteration order.
		reg.Gauge("gc.pause_ms").Set(1.25)
		reg.Gauge("worker.busy").Set(0.5)
		return reg.Current()
	}
	want := runExportBytes(t, metricsAt(0))
	for i := 1; i < 50; i++ {
		if got := runExportBytes(t, metricsAt(i)); !bytes.Equal(got, want) {
			t.Fatalf("marshal %d differs from first:\n%s\nvs\n%s", i, got, want)
		}
	}
}

// Registry snapshots must order a counter and a gauge with equal names
// deterministically (counter first).
func TestRegistryValuesTieOrder(t *testing.T) {
	for i := 0; i < 20; i++ {
		reg := evtrace.NewRegistry()
		if i%2 == 0 {
			reg.Gauge("dup").Set(2)
			reg.Counter("dup").Set(1)
		} else {
			reg.Counter("dup").Set(1)
			reg.Gauge("dup").Set(2)
		}
		vals := reg.Current()
		if len(vals) != 2 || vals[0].Value != 1 || vals[1].Value != 2 {
			t.Fatalf("iteration %d: tie order not counter-first: %+v", i, vals)
		}
	}
}
