package gclog

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/pscavenge"
	"repro/internal/simkit"
)

func minorReport() *pscavenge.GCReport {
	return &pscavenge.GCReport{
		Kind: pscavenge.Minor, Seq: 3,
		Start: 254 * simkit.Millisecond, End: 255 * simkit.Millisecond,
		CopiedObjects: 1200, PromotedObjects: 40, FreedBytes: 900 * 1024,
		StealAttempts: 100, StealFailures: 90,
		Before: pscavenge.HeapSnapshot{
			EdenUsed: 1700 * 1024, FromUsed: 60 * 1024, OldUsed: 3100 * 1024,
			EdenCap: 1960 * 1024, SurvivorCap: 245 * 1024, OldCap: 4900 * 1024,
		},
		After: pscavenge.HeapSnapshot{
			EdenUsed: 0, FromUsed: 240 * 1024, OldUsed: 3120 * 1024,
			EdenCap: 1960 * 1024, SurvivorCap: 245 * 1024, OldCap: 4900 * 1024,
		},
	}
}

func majorReport() *pscavenge.GCReport {
	r := minorReport()
	r.Kind = pscavenge.Major
	r.Seq = 4
	r.After.OldUsed = 2000 * 1024
	return r
}

func TestFormatMinor(t *testing.T) {
	out := Format(minorReport())
	for _, want := range []string{
		"0.254: [GC (Allocation Failure)",
		"[PSYoungGen: 1760K->240K(2205K)]",
		"4860K->3360K(7350K)",
		"0.0010000 secs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q in:\n%s", want, out)
		}
	}
}

func TestFormatMajor(t *testing.T) {
	out := Format(majorReport())
	for _, want := range []string{
		"[Full GC (Ergonomics)",
		"[ParOldGen: 3100K->2000K(4900K)]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteIncludesHeapSummary(t *testing.T) {
	var b bytes.Buffer
	Write(&b, []*pscavenge.GCReport{minorReport(), majorReport()})
	out := b.String()
	if strings.Count(out, "\n") < 4 {
		t.Fatalf("too few lines:\n%s", out)
	}
	for _, want := range []string{"Heap after GC invocations=2", "PSYoungGen", "ParOldGen"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q", want)
		}
	}
}

func TestWriteEmpty(t *testing.T) {
	var b bytes.Buffer
	Write(&b, nil)
	if b.Len() != 0 {
		t.Errorf("Write(nil) produced output: %q", b.String())
	}
}

func TestToEntryAndJSON(t *testing.T) {
	rep := minorReport()
	e := ToEntry(rep)
	if e.Kind != "minor" || e.Seq != 3 {
		t.Errorf("entry header wrong: %+v", e)
	}
	if e.YoungBeforeK != 1760 || e.YoungAfterK != 240 {
		t.Errorf("young occupancy wrong: %+v", e)
	}
	if e.PauseSec != 0.001 {
		t.Errorf("PauseSec = %v, want 0.001", e.PauseSec)
	}
	var b bytes.Buffer
	if err := WriteJSON(&b, []*pscavenge.GCReport{rep, majorReport()}); err != nil {
		t.Fatal(err)
	}
	var decoded []Entry
	if err := json.Unmarshal(b.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded) != 2 || decoded[1].Kind != "major" {
		t.Errorf("JSON roundtrip wrong: %+v", decoded)
	}
}
