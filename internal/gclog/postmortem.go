package gclog

import (
	"io"

	"repro/internal/postmortem"
)

// WritePostmortemJSON writes a run's pause postmortem as JSON — the
// observability sibling of WriteRunJSON, carrying the per-collection
// blame decomposition instead of the GC log. The schema is
// postmortem.ExportSchema; cmd/gcreport compares and verifies the files.
func WritePostmortemJSON(w io.Writer, an *postmortem.Analyzer) error {
	return an.Export().WriteJSON(w)
}
