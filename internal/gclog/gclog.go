// Package gclog formats collection reports in the style of HotSpot's
// -XX:+PrintGCDetails output, plus a machine-readable JSON export. The
// familiar format makes the simulated collector's behaviour directly
// comparable with real JVM logs:
//
//	0.254: [GC (Allocation Failure) [PSYoungGen: 1720K->240K(2150K)]
//	        4841K->3361K(7372K), 0.0009138 secs] [cores: 15, threads w/ roots: 12]
//	1.103: [Full GC (Ergonomics) [PSYoungGen: 210K->0K(2150K)]
//	        [ParOldGen: 4821K->2011K(5222K)] 5031K->2011K(7372K), 0.0041210 secs]
package gclog

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/evtrace"
	"repro/internal/jmutex"
	"repro/internal/pscavenge"
	"repro/internal/taskq"
)

// kb renders model bytes as HotSpot-style K figures.
func kb(b int64) string { return fmt.Sprintf("%dK", b/1024) }

// Format renders one collection report as a HotSpot-style log line.
func Format(rep *pscavenge.GCReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%.3f: ", rep.Start.Seconds())
	secs := rep.Pause().Seconds()
	youngCap := rep.Before.EdenCap + rep.Before.SurvivorCap
	switch rep.Kind {
	case pscavenge.Minor:
		fmt.Fprintf(&b, "[GC (Allocation Failure) [PSYoungGen: %s->%s(%s)] %s->%s(%s), %.7f secs]",
			kb(rep.Before.Young()), kb(rep.After.Young()), kb(youngCap),
			kb(rep.Before.Total()), kb(rep.After.Total()), kb(rep.Before.TotalCap()),
			secs)
	case pscavenge.Major:
		fmt.Fprintf(&b, "[Full GC (Ergonomics) [PSYoungGen: %s->%s(%s)] [ParOldGen: %s->%s(%s)] %s->%s(%s), %.7f secs]",
			kb(rep.Before.Young()), kb(rep.After.Young()), kb(youngCap),
			kb(rep.Before.OldUsed), kb(rep.After.OldUsed), kb(rep.Before.OldCap),
			kb(rep.Before.Total()), kb(rep.After.Total()), kb(rep.Before.TotalCap()),
			secs)
	}
	fmt.Fprintf(&b, " [cores: %d, threads w/ roots: %d]", rep.CoresUsed(), rep.RootTaskSpread())
	return b.String()
}

// Write renders a whole run's collections, one line each, followed by a
// HotSpot-style heap summary derived from the last report.
func Write(w io.Writer, reports []*pscavenge.GCReport) {
	for _, rep := range reports {
		fmt.Fprintln(w, Format(rep))
	}
	if n := len(reports); n > 0 {
		last := reports[n-1]
		fmt.Fprintf(w, "Heap after GC invocations=%d:\n", n)
		fmt.Fprintf(w, " PSYoungGen  total %s, used %s\n",
			kb(last.After.EdenCap+last.After.SurvivorCap), kb(last.After.Young()))
		fmt.Fprintf(w, " ParOldGen   total %s, used %s\n",
			kb(last.After.OldCap), kb(last.After.OldUsed))
	}
}

// Entry is the JSON export shape of one collection.
type Entry struct {
	Seq             int     `json:"seq"`
	Kind            string  `json:"kind"`
	StartSec        float64 `json:"start_sec"`
	PauseSec        float64 `json:"pause_sec"`
	YoungBeforeK    int64   `json:"young_before_k"`
	YoungAfterK     int64   `json:"young_after_k"`
	OldBeforeK      int64   `json:"old_before_k"`
	OldAfterK       int64   `json:"old_after_k"`
	CopiedObjects   int64   `json:"copied_objects"`
	PromotedObjects int64   `json:"promoted_objects"`
	FreedK          int64   `json:"freed_k"`
	CoresUsed       int     `json:"cores_used"`
	RootTaskSpread  int     `json:"root_task_spread"`
	StealAttempts   int64   `json:"steal_attempts"`
	StealFailures   int64   `json:"steal_failures"`
	InitSec         float64 `json:"init_sec"`
	RootTaskSec     float64 `json:"root_task_sec"`
	StealWorkSec    float64 `json:"steal_work_sec"`
	TerminationSec  float64 `json:"termination_sec"`
	FinalSyncSec    float64 `json:"final_sync_sec"`
}

// ToEntry converts a report to its JSON export shape.
func ToEntry(rep *pscavenge.GCReport) Entry {
	return Entry{
		Seq:             rep.Seq,
		Kind:            rep.Kind.String(),
		StartSec:        rep.Start.Seconds(),
		PauseSec:        rep.Pause().Seconds(),
		YoungBeforeK:    rep.Before.Young() / 1024,
		YoungAfterK:     rep.After.Young() / 1024,
		OldBeforeK:      rep.Before.OldUsed / 1024,
		OldAfterK:       rep.After.OldUsed / 1024,
		CopiedObjects:   rep.CopiedObjects,
		PromotedObjects: rep.PromotedObjects,
		FreedK:          rep.FreedBytes / 1024,
		CoresUsed:       rep.CoresUsed(),
		RootTaskSpread:  rep.RootTaskSpread(),
		StealAttempts:   rep.StealAttempts,
		StealFailures:   rep.StealFailures,
		InitSec:         rep.InitTime.Seconds(),
		RootTaskSec:     rep.RootTaskTime.Seconds(),
		StealWorkSec:    rep.StealWorkTime.Seconds(),
		TerminationSec:  rep.TerminationTime.Seconds(),
		FinalSyncSec:    rep.FinalSyncTime.Seconds(),
	}
}

// WriteJSON exports all reports as a JSON array (for external plotting).
func WriteJSON(w io.Writer, reports []*pscavenge.GCReport) error {
	entries := make([]Entry, len(reports))
	for i, rep := range reports {
		entries[i] = ToEntry(rep)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(entries)
}

// MonitorExport is the JSON shape of the GCTaskManager monitor counters.
type MonitorExport struct {
	FastAcquires         int `json:"fast_acquires"`
	SlowAcquires         int `json:"slow_acquires"`
	OwnerReacquires      int `json:"owner_reacquires"`
	Bypasses             int `json:"bypasses"`
	Handoffs             int `json:"handoffs"`
	Notifies             int `json:"notifies"`
	ParkEvents           int `json:"park_events"`
	MaxConcurrentSeekers int `json:"max_concurrent_seekers"`
}

// StealExport is the JSON shape of the run's work-stealing counters.
type StealExport struct {
	Attempts    int64   `json:"attempts"`
	Failures    int64   `json:"failures"`
	FailureRate float64 `json:"failure_rate"`
	PerThief    []int64 `json:"attempts_per_thief,omitempty"`
}

// RunExport is the full-run JSON document: the per-collection log plus the
// cross-layer counters (monitor, stealing, unified metrics).
type RunExport struct {
	Collections []Entry          `json:"collections"`
	Monitor     MonitorExport    `json:"monitor"`
	Steal       StealExport      `json:"steal"`
	Metrics     []evtrace.Metric `json:"metrics,omitempty"`
}

// WriteRunJSON exports the whole run — collections, monitor and steal
// statistics, and (when a registry was attached) the unified metrics.
func WriteRunJSON(w io.Writer, reports []*pscavenge.GCReport, mon jmutex.Stats, steal *taskq.Stats, metrics []evtrace.Metric) error {
	out := RunExport{
		Collections: make([]Entry, len(reports)),
		Monitor: MonitorExport{
			FastAcquires:         mon.FastAcquires,
			SlowAcquires:         mon.SlowAcquires,
			OwnerReacquires:      mon.OwnerReacquires,
			Bypasses:             mon.Bypasses,
			Handoffs:             mon.Handoffs,
			Notifies:             mon.Notifies,
			ParkEvents:           mon.ParkEvents,
			MaxConcurrentSeekers: mon.MaxConcurrentSeekers,
		},
		Metrics: metrics,
	}
	for i, rep := range reports {
		out.Collections[i] = ToEntry(rep)
	}
	if steal != nil {
		out.Steal = StealExport{
			Attempts:    steal.TotalAttempts(),
			Failures:    steal.TotalFailures(),
			FailureRate: steal.FailureRate(),
			PerThief:    steal.Attempts,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
