// Package cmdutil centralizes how cmd/* binaries write output files and
// exit. The bug it retires: a main that calls os.Exit on a failure path
// skips its deferred closes, so a buffered -out file is left unflushed or
// truncated — the violation window a failing simcheck run exists to
// deliver is exactly the artifact that got corrupted. Every command now
// routes its exit through Exit, which flushes and closes all registered
// outputs first, escalating the exit code if a flush fails.
package cmdutil

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
)

// Output is a buffered output destination: a file path, or stdout for ""
// or "-". The backing file is created lazily on first write, so a command
// that never produces output (simcheck with no violations) never leaves an
// empty artifact behind.
type Output struct {
	path   string
	stdout bool
	f      *os.File
	bw     *bufio.Writer
	closed bool
	err    error
}

// NewOutput validates path and returns an unopened Output. path "" or "-"
// writes to stdout. The parent directory must exist; that is checked here
// so the command fails before doing work, not after.
func NewOutput(path string) (*Output, error) {
	o := &Output{path: path}
	if path == "" || path == "-" {
		o.stdout = true
		return o, nil
	}
	// The file itself is still created lazily on first write, but the
	// parent directory is checked now: a sweepd pointed at a bad -out path
	// must fail before the hours-long sweep, not at the first report write.
	dir := filepath.Dir(path)
	fi, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("cmdutil: output %q: %w", path, err)
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("cmdutil: output %q: %q is not a directory", path, dir)
	}
	return o, nil
}

// Write implements io.Writer, opening the backing file on first use.
func (o *Output) Write(p []byte) (int, error) {
	if o.closed {
		return 0, fmt.Errorf("cmdutil: write to closed output %q", o.name())
	}
	if o.bw == nil {
		if o.stdout {
			o.bw = bufio.NewWriter(os.Stdout)
		} else {
			f, err := os.Create(o.path)
			if err != nil {
				return 0, err
			}
			o.f = f
			o.bw = bufio.NewWriter(f)
		}
	}
	return o.bw.Write(p)
}

// WrapFile adopts an already-open file into a buffered Output that Exit
// will flush and close — for commands whose open-mode policy (e.g.
// benchjson's O_EXCL snapshot protection) doesn't fit NewOutput's lazy
// create.
func WrapFile(f *os.File) *Output {
	return &Output{path: f.Name(), f: f, bw: bufio.NewWriter(f)}
}

// Created reports whether the output has been opened (i.e. something was
// written).
func (o *Output) Created() bool { return o.bw != nil }

func (o *Output) name() string {
	if o.stdout {
		return "stdout"
	}
	return o.path
}

// Close flushes and closes the output. Idempotent; the first error wins
// and is re-reported on later calls, so Exit sees a flush failure even if
// the command closed explicitly first.
func (o *Output) Close() error {
	if o.closed {
		return o.err
	}
	o.closed = true
	if o.bw != nil {
		if err := o.bw.Flush(); err != nil {
			o.err = fmt.Errorf("cmdutil: flush %s: %w", o.name(), err)
		}
	}
	if o.f != nil {
		if err := o.f.Close(); err != nil && o.err == nil {
			o.err = fmt.Errorf("cmdutil: close %s: %w", o.name(), err)
		}
	}
	return o.err
}

// Exit is the single exit path for cmd mains structured as
// os.Exit(realMain(...)): it flushes and closes every registered output,
// then returns the exit code — escalated to 1 if any output failed to
// flush, because a command that silently truncates its artifact must not
// report success.
func Exit(code int, outs ...*Output) int {
	for _, o := range outs {
		if o == nil {
			continue
		}
		if err := o.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			if code == 0 {
				code = 1
			}
		}
	}
	return code
}
