package cmdutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestOutputLazyCreation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "never-written.json")
	o, err := NewOutput(path)
	if err != nil {
		t.Fatal(err)
	}
	if o.Created() {
		t.Fatal("output reports created before any write")
	}
	if code := Exit(0, o); code != 0 {
		t.Fatalf("Exit(0) on unwritten output = %d", code)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("unwritten output left a file behind: %v", err)
	}
}

func TestNewOutputRejectsMissingParentDir(t *testing.T) {
	// A bad -out path must fail at startup, before an hours-long run, not
	// at the first (lazy) write.
	if _, err := NewOutput(filepath.Join(t.TempDir(), "no-such-dir", "out.json")); err == nil {
		t.Fatal("NewOutput accepted a path under a missing directory")
	}
	// A file where the parent directory should be is just as wrong.
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewOutput(filepath.Join(f, "out.json")); err == nil {
		t.Fatal("NewOutput accepted a path whose parent is a regular file")
	}
	// stdout sentinels skip the check entirely.
	for _, p := range []string{"", "-"} {
		if _, err := NewOutput(p); err != nil {
			t.Fatalf("NewOutput(%q) = %v, want nil", p, err)
		}
	}
}

func TestExitFlushesBufferedWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	o, err := NewOutput(path)
	if err != nil {
		t.Fatal(err)
	}
	// Small enough to sit entirely in the bufio buffer until flushed.
	payload := strings.Repeat("x", 100)
	if _, err := o.Write([]byte(payload)); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); len(got) != 0 {
		t.Fatalf("write reached disk before flush (%d bytes) — buffering assumption broken", len(got))
	}
	if code := Exit(0, o); code != 0 {
		t.Fatalf("Exit = %d, want 0", code)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != payload {
		t.Fatalf("flushed file has %d bytes, want %d", len(got), len(payload))
	}
}

func TestExitEscalatesFlushFailure(t *testing.T) {
	o, err := NewOutput(filepath.Join(t.TempDir(), "out.json"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	// Close the backing file out from under the buffer: the flush inside
	// Exit must fail, and a success exit code must escalate to 1.
	o.f.Close()
	if code := Exit(0, o); code != 1 {
		t.Fatalf("Exit(0) with failing flush = %d, want 1", code)
	}
	// A pre-existing failure exit code is preserved, not overwritten.
	o2, _ := NewOutput(filepath.Join(t.TempDir(), "out2.json"))
	o2.Write([]byte("data"))
	o2.f.Close()
	if code := Exit(3, o2); code != 3 {
		t.Fatalf("Exit(3) with failing flush = %d, want 3", code)
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	o, err := NewOutput(filepath.Join(t.TempDir(), "out.json"))
	if err != nil {
		t.Fatal(err)
	}
	o.Write([]byte("data"))
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Write([]byte("more")); err == nil {
		t.Fatal("write after close succeeded")
	}
	if err := o.Close(); err != nil {
		t.Fatalf("second close = %v, want nil (idempotent)", err)
	}
}
