package pscavenge

import (
	"repro/internal/cfs"
	"repro/internal/evtrace"
	"repro/internal/simkit"
)

// terminator implements the distributed termination protocol of §2.3: a GC
// thread that has failed enough consecutive steal attempts offers
// termination by incrementing a shared counter; while offered it
// periodically peeks for new stealable work and returns to stealing if any
// appears. The parallel phase ends when all participants have offered.
//
// The fast variant is the paper's FastParallelTaskTerminator (§4.2,
// Algorithm 2): the failed-attempts threshold adapts to the number of
// still-active (not-offered) threads, 2·N_live instead of 2·N.
type terminator struct {
	g           *Engine
	total       int
	offered     int
	done        bool
	fast        bool
	completedAt simkit.Time
	// localThreads, when > 0, replaces the threshold base with the
	// thief's node-local thread count (Gidra's NUMA termination).
	localThreads []int
}

// threshold returns the consecutive-failure count after which worker w
// offers termination. The base is N (all GC threads, §2.3); the fast
// terminator (§4.2) shrinks it to N_live (threads that have not offered),
// and Gidra's NUMA termination shrinks it to N_local (threads on w's
// node). When both are enabled they compose as 2·min(N_live, N_local) —
// each is an upper bound on the workers w could still steal from, so the
// tighter one wins; neither silently overrides the other.
func (t *terminator) threshold(w int) int {
	base := t.total
	if t.fast {
		if live := t.total - t.offered; live < base {
			base = live
		}
	}
	if t.localThreads != nil && t.localThreads[w] < base {
		base = t.localThreads[w]
	}
	if base < 1 {
		base = 1
	}
	return 2 * base
}

// peek reports whether any local queue has stealable work.
func (t *terminator) peek() bool {
	for i := range t.g.queues {
		if t.g.queues[i].Len() > 0 {
			return true
		}
	}
	return false
}

// offer enters the termination protocol for worker w. It returns true when
// the parallel phase is over, false when the worker should resume stealing
// (work reappeared). Time spent inside is the Fig. 6 "termination" share.
func (t *terminator) offer(e *cfs.Env, w int) bool {
	t.offered++
	if t.g.etr != nil {
		t.g.etr.Emit(evtrace.Event{Kind: evtrace.KTermOffer, At: int64(e.Now()),
			Core: int32(e.Core()), TID: int32(w),
			Arg1: int64(t.offered), Arg2: int64(t.total)})
	}
	if t.offered >= t.total {
		// Last offerer: re-check the queues before declaring the phase
		// over. Work pushed between this worker's final failed steal and
		// its offer (by a worker that has since offered too) would
		// otherwise be lost — declared collected without being processed.
		if t.peek() {
			t.offered--
			return false
		}
		t.complete()
		return true
	}
	spins := 0
	for !t.done {
		if t.peek() {
			t.offered--
			return false
		}
		if t.g.etr != nil {
			// Arg2 tells spinning (0) from sleeping (1) waits.
			mode := int64(0)
			if spins >= 4 {
				mode = 1
			}
			t.g.etr.Emit(evtrace.Event{Kind: evtrace.KTermSpin, At: int64(e.Now()),
				Core: int32(e.Core()), TID: int32(w), Arg1: int64(spins), Arg2: mode})
		}
		if spins < 4 {
			e.Compute(t.g.Costs.TermSpin)
			e.YieldCPU()
			spins++
			continue
		}
		e.Sleep(t.g.Costs.TermSleep)
	}
	return true
}

// complete ends the parallel phase and wakes the VM thread. The KTermDone
// event carries the engine-wide cumulative deque push and pop+steal
// counts; they are equal exactly when every local queue is empty, which is
// the conservation law termination rests on (checked by internal/check).
func (t *terminator) complete() {
	t.done = true
	t.completedAt = t.g.K.Sim.Now()
	if t.g.etr != nil {
		var pushes, pops int64
		for i := range t.g.queues {
			q := &t.g.queues[i]
			pushes += int64(q.Pushes)
			pops += int64(q.Pops + q.Steals)
		}
		// Name carries the engine's manager-monitor name so a multi-JVM
		// bus can attribute each termination to its engine.
		t.g.etr.Emit(evtrace.Event{Kind: evtrace.KTermDone, At: int64(t.completedAt),
			Core: -1, TID: -1, Arg1: pushes, Arg2: pops, Name: t.g.mgr.mon.Name})
	}
	if t.g.vmThread != nil {
		t.g.K.Unpark(t.g.vmThread)
	}
}

// barrier is the simple completion counter used by phases without stealing
// (full-GC compaction): the last finished task wakes the VM thread.
type barrier struct {
	g         *Engine
	remaining int
	start     simkit.Time
}

func (b *barrier) taskDone() {
	b.remaining--
	if b.remaining == 0 && b.g.vmThread != nil {
		b.g.K.Unpark(b.g.vmThread)
	}
}
