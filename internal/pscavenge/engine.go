package pscavenge

import (
	"fmt"

	"repro/internal/cfs"
	"repro/internal/evtrace"
	"repro/internal/heap"
	"repro/internal/jmutex"
	"repro/internal/ostopo"
	"repro/internal/simkit"
	"repro/internal/taskq"
)

// Options configure the collector.
type Options struct {
	// Threads is the GC thread count; 0 applies HotSpot's heuristic.
	Threads int
	// SpawnCore is where GC threads are created (they start stacked there,
	// like real GCTaskThreads created at JVM launch).
	SpawnCore ostopo.CoreID
	// MutexPolicy selects the GCTaskManager monitor discipline.
	MutexPolicy jmutex.Policy
	// StealKind selects the work-stealing victim policy.
	StealKind taskq.PolicyKind
	// NodeOf maps worker index to NUMA node (KindNUMARestricted only);
	// it also enables Gidra's 2·N_local termination threshold.
	NodeOf []int
	// FastTerminator enables the paper's FastParallelTaskTerminator.
	FastTerminator bool
	// TaskAffinity assigns root tasks an affinity worker and makes
	// get_task prefer matching tasks (§4.1).
	TaskAffinity bool
	// OnWorkerStart runs in each GC thread before its first get_task
	// (static/node affinity binding).
	OnWorkerStart func(e *cfs.Env, worker int)
	// OnGCWake runs in each GC thread the first time it dispatches a task
	// of a new GC cycle (dynamic affinity rebalancing, Algorithm 1).
	OnGCWake func(e *cfs.Env, worker int)
	// AdaptiveSizing enables the simple generation-resizing feedback of
	// the final synchronization phase.
	AdaptiveSizing bool
	// RecordLockLog enables the GCTaskManager monitor's acquisition log
	// (the §3.2 root-cause trace; see Engine.LockLog).
	RecordLockLog bool
	// VerifyHeap runs the heap's invariant checker after every collection
	// (accounting, space lists, remembered-set completeness) and panics on
	// a violation — the simulation analogue of -XX:+VerifyAfterGC.
	VerifyHeap bool
	// NUMA enables the memory-locality cost model: tracing or copying an
	// object homed on a remote node costs RemoteFactor times as much, and
	// a copy rehomes the object on the copying thread's node (first-touch,
	// as in NumaGiC). nil = uniform memory.
	NUMA *NUMAModel
	// Instance distinguishes engines sharing one kernel (multi-JVM
	// machines, §5.7): it suffixes the GCTaskManager monitor name and
	// namespaces task ids so one event bus carries unambiguous streams.
	Instance int
	// LoopWorkers runs the GC worker bodies as the legacy Compute-per-step
	// coroutine loops instead of driver-serviced compute plans. The two are
	// observably identical — same event stream, reports, and RNG draws
	// (TestWorkerPlanMatchesLoop) — so this exists as the oracle switch for
	// that identity test and as a debugging aid for the plan state machine.
	LoopWorkers bool
	// Costs overrides the calibration (nil = DefaultCosts).
	Costs *Costs
	// Metrics, when non-nil, receives the unified counter namespace
	// (jmutex.*, taskq.*, cfs.*, gc.*) snapshotted after every collection.
	Metrics *evtrace.Registry
}

// Engine is a Parallel Scavenge collector bound to one heap and kernel.
type Engine struct {
	K     *cfs.Kernel
	H     *heap.Heap
	Opt   Options
	Costs Costs

	mgr     *manager
	queues  []taskq.Deque[heap.ObjID]
	policy  taskq.Policy
	pool    taskq.Pool // hoisted poolView: one interface conversion, ever
	workers []*cfs.Thread
	wstates []workerState

	vmThread  *cfs.Thread
	gcSeq     int
	taskSeq   int64
	seenEpoch []int
	bar       *barrier
	etr       *evtrace.Tracer // captured from the kernel at construction

	initialEden int64

	// Per-collection scratch, recycled so steady-state collections allocate
	// nothing (the bench-guard contract of BenchmarkMinorGC). Retired
	// records sit on the pend* lists until reclaim observes every worker
	// idle on the manager's WaitSet — a termination straggler may hold
	// references into the previous cohort well past the pause — and only
	// then move to the free lists for reuse.
	taskFree  []*GCTask // recycled task records
	pendTasks []*GCTask // retired task records awaiting quiescence
	taskBuf   []*GCTask // reusable task-list backing
	partBuf   [][]heap.ObjID
	termFree  []*terminator
	pendTerms []*terminator
	barScr    barrier
	repFree   []*GCReport // rewindable reports
	pendReps  []*GCReport // reports returned via RecycleReports
	localThr  []int       // cached localThreads() (topology is fixed at New)

	// Reports holds one entry per collection, in order.
	Reports []*GCReport
	// Steal accumulates steal counters across all collections (Table 1).
	Steal *taskq.Stats
}

// NUMAModel prices remote memory accesses during collection.
type NUMAModel struct {
	Topo *ostopo.Topology
	// RemoteFactor multiplies per-object costs for cross-node accesses
	// (typical inter-socket latency ratios are 1.4-2.0).
	RemoteFactor float64
}

type poolView struct{ g *Engine }

func (p poolView) NumQueues() int     { return len(p.g.queues) }
func (p poolView) QueueLen(i int) int { return p.g.queues[i].Len() }

// New creates the collector and spawns its GC threads (all on
// Opt.SpawnCore, where they immediately block on the task-manager monitor).
func New(k *cfs.Kernel, h *heap.Heap, opt Options) *Engine {
	g := &Engine{K: k, H: h, Opt: opt, Costs: DefaultCosts()}
	if opt.Costs != nil {
		g.Costs = *opt.Costs
	}
	n := opt.Threads
	if n <= 0 {
		n = DefaultGCThreads(k.NumCPUs())
	}
	g.queues = make([]taskq.Deque[heap.ObjID], n)
	g.pool = poolView{g}
	g.etr = k.EvTracer()
	g.policy = taskq.Traced(opt.StealKind.Make(n, opt.NodeOf), g.etr,
		func() int64 { return int64(k.Sim.Now()) })
	g.Steal = taskq.NewStats(n)
	g.seenEpoch = make([]int, n)
	for i := range g.seenEpoch {
		g.seenEpoch[i] = -1
	}
	g.mgr = newManager(g, opt.MutexPolicy, opt.TaskAffinity)
	g.mgr.mon.RecordLog = opt.RecordLockLog
	g.initialEden = h.Config().EdenBytes
	g.localThr = g.localThreads()
	g.workers = make([]*cfs.Thread, n)
	g.wstates = make([]workerState, n)
	for w := 0; w < n; w++ {
		w := w
		g.workers[w] = k.Spawn(fmt.Sprintf("GCTaskThread#%d", w), opt.SpawnCore, func(e *cfs.Env) {
			if g.etr != nil {
				// Bind the CFS thread id to the engine identity: worker
				// names collide across multi-JVM instances, so attribution
				// (internal/postmortem) keys on this instead of names.
				g.etr.Emit(evtrace.Event{Kind: evtrace.KWorkerBind,
					At: int64(e.Now()), Core: int32(e.Core()), TID: int32(e.T.ID),
					Arg1: int64(w), Arg2: int64(g.Opt.Instance), Name: g.mgr.mon.Name})
			}
			if g.Opt.OnWorkerStart != nil {
				g.Opt.OnWorkerStart(e, w)
			}
			if g.Opt.LoopWorkers {
				g.workerLoop(e, w)
			} else {
				g.workerPlan(e, w)
			}
		})
	}
	return g
}

// Threads returns the number of GC threads.
func (g *Engine) Threads() int { return len(g.queues) }

// Workers exposes the GC threads (for scheduling analyses in tests).
func (g *Engine) Workers() []*cfs.Thread { return g.workers }

// Shutdown releases the GC threads; call from the VM thread when done.
func (g *Engine) Shutdown(e *cfs.Env) { g.mgr.close(e) }

func (g *Engine) workerLoop(e *cfs.Env, w int) {
	for {
		task := g.mgr.getTask(e, w)
		if task == nil {
			return
		}
		if task.rep != nil && task.rep.Seq != g.seenEpoch[w] {
			g.seenEpoch[w] = task.rep.Seq
			if g.Opt.OnGCWake != nil {
				g.Opt.OnGCWake(e, w)
			}
		}
		g.execute(e, w, task)
	}
}

func (g *Engine) execute(e *cfs.Env, w int, t *GCTask) {
	start := e.Now()
	switch t.Kind {
	case TaskOldToYoungRoots:
		g.runOldToYoung(e, w, t)
		t.rep.RootTaskTime += e.Now() - start
	case TaskScavengeRoots, TaskThreadRoots:
		g.runScavengeRoots(e, w, t)
		t.rep.RootTaskTime += e.Now() - start
	case TaskMarkRoots:
		g.runMarkRoots(e, w, t)
		t.rep.RootTaskTime += e.Now() - start
	case TaskSteal, TaskMarkSteal:
		g.runSteal(e, w, t)
	case TaskCompact:
		e.Compute(t.Work)
		t.rep.RootTaskTime += e.Now() - start
		g.bar.taskDone()
	}
	if g.etr != nil {
		// One span per executed task on the worker's track; TaskKind
		// strings are static, so this never allocates.
		g.etr.Emit(evtrace.Event{Kind: evtrace.KGCTask,
			At: int64(start), Dur: int64(e.Now() - start),
			Core: int32(e.Core()), TID: int32(w), Name: t.Kind.String(),
			Arg1: t.id})
	}
}

// newTracer returns the tracing-work batcher: tracing costs accrue per
// object and per reference, and the batcher submits them to the scheduler
// in ChunkWork-sized chunks, bounding how long a GC thread runs without a
// scheduling point.
func (g *Engine) newTracer(e *cfs.Env) cfs.Batcher { return cfs.NewBatcher(e, g.Costs.ChunkWork) }

func isYoung(sp heap.Space) bool { return sp == heap.SpaceEden || sp == heap.SpaceFrom }

// scavengeStep copies one young object and pushes its unvisited young
// children onto the worker's local queue.
func (g *Engine) scavengeStep(tr *cfs.Batcher, w int, id heap.ObjID, rep *GCReport) {
	h := g.H
	size, promoted, first := h.CopyYoung(id)
	if !first {
		return
	}
	rep.CopiedObjects++
	rep.CopiedBytes += int64(size)
	if promoted {
		rep.PromotedObjects++
	}
	cost := g.Costs.ObjCopyBase + simkit.Time(size)*g.Costs.CopyPerByte
	if g.Opt.NUMA != nil {
		cost = g.numaAdjust(tr.Env().Core(), id, cost, rep, true)
	}
	tr.Charge(cost)
	for _, r := range h.Refs(id) {
		if r == 0 {
			continue
		}
		tr.Charge(g.Costs.RefScan)
		if !h.Visited(r) && isYoung(h.SpaceOf(r)) {
			g.queues[w].PushBottom(r)
		}
	}
}

// markStep marks one object (full GC) and pushes all unvisited children.
func (g *Engine) markStep(tr *cfs.Batcher, w int, id heap.ObjID, rep *GCReport) {
	h := g.H
	size, first := h.Mark(id)
	if !first {
		return
	}
	rep.CopiedObjects++
	rep.CopiedBytes += int64(size)
	cost := g.Costs.MarkObj
	if g.Opt.NUMA != nil {
		cost = g.numaAdjust(tr.Env().Core(), id, cost, rep, false)
	}
	tr.Charge(cost)
	for _, r := range h.Refs(id) {
		if r == 0 {
			continue
		}
		tr.Charge(g.Costs.RefScan)
		if !h.Visited(r) {
			g.queues[w].PushBottom(r)
		}
	}
}

// numaAdjust applies the NUMA model to one object access: remote objects
// cost RemoteFactor times as much; a copy (rehome=true) moves the object to
// the accessing thread's node. core is the accessing thread's current core.
func (g *Engine) numaAdjust(core ostopo.CoreID, id heap.ObjID, cost simkit.Time, rep *GCReport, rehome bool) simkit.Time {
	m := g.Opt.NUMA
	myNode := m.Topo.Node(core)
	if int(g.H.NodeOf(id)) != myNode {
		rep.RemoteAccesses++
		cost = simkit.Time(float64(cost) * m.RemoteFactor)
		if rehome {
			g.H.SetNode(id, uint8(myNode))
		}
	} else {
		rep.LocalAccesses++
	}
	return cost
}

// drainLocal processes the worker's local queue to empty.
func (g *Engine) drainLocal(tr *cfs.Batcher, w int, rep *GCReport, mark bool) {
	for {
		id, ok := g.queues[w].PopBottom()
		if !ok {
			return
		}
		if mark {
			g.markStep(tr, w, id, rep)
		} else {
			g.scavengeStep(tr, w, id, rep)
		}
	}
}

func (g *Engine) runScavengeRoots(e *cfs.Env, w int, t *GCTask) {
	tr := g.newTracer(e)
	for _, id := range t.Roots {
		if id == 0 {
			continue
		}
		tr.Charge(g.Costs.RefScan)
		if !g.H.Visited(id) && isYoung(g.H.SpaceOf(id)) {
			g.queues[w].PushBottom(id)
		}
	}
	g.drainLocal(&tr, w, t.rep, false)
	tr.Flush()
}

func (g *Engine) runOldToYoung(e *cfs.Env, w int, t *GCTask) {
	tr := g.newTracer(e)
	for _, oldID := range t.Roots {
		for _, r := range g.H.Refs(oldID) {
			if r == 0 {
				continue
			}
			tr.Charge(g.Costs.RefScan)
			if !g.H.Visited(r) && isYoung(g.H.SpaceOf(r)) {
				g.queues[w].PushBottom(r)
			}
		}
	}
	g.drainLocal(&tr, w, t.rep, false)
	tr.Flush()
}

func (g *Engine) runMarkRoots(e *cfs.Env, w int, t *GCTask) {
	tr := g.newTracer(e)
	for _, id := range t.Roots {
		if id == 0 {
			continue
		}
		tr.Charge(g.Costs.RefScan)
		if !g.H.Visited(id) {
			g.queues[w].PushBottom(id)
		}
	}
	g.drainLocal(&tr, w, t.rep, true)
	tr.Flush()
}

// runSteal is the StealTask body: steal → drain → (after enough consecutive
// failures) offer termination → maybe return to stealing (§2.3, §4.2).
func (g *Engine) runSteal(e *cfs.Env, w int, t *GCTask) {
	c := g.Costs
	term := t.term
	rep := t.rep
	mark := t.Kind == TaskMarkSteal
	fails := 0
	segStart := e.Now()
	for {
		victim := g.policy.ChooseVictim(w, g.pool, e.Rand())
		g.Steal.Attempts[w]++
		rep.StealAttempts++
		e.Compute(c.StealAttempt)
		success := false
		if victim >= 0 {
			if id, ok := g.queues[victim].PopTop(); ok {
				success = true
				g.policy.RecordResult(w, victim, true)
				rep.StolenTasks++
				g.queues[w].PushBottom(id)
				tr := g.newTracer(e)
				g.drainLocal(&tr, w, rep, mark)
				tr.Flush()
				fails = 0
			}
		}
		if success {
			continue
		}
		g.policy.RecordResult(w, victim, false)
		g.Steal.Failures[w]++
		rep.StealFailures++
		fails++
		if fails >= term.threshold(w) || g.policy.AbortOnFailure() {
			rep.StealWorkTime += e.Now() - segStart
			ts := e.Now()
			finished := term.offer(e, w)
			// A straggler may observe completion only after the pause has
			// ended (it wakes among resumed mutators); clamp its share of
			// the termination phase to the pause itself.
			end := e.Now()
			if term.done && term.completedAt > ts && term.completedAt < end {
				end = term.completedAt
			}
			rep.TerminationTime += end - ts
			segStart = e.Now()
			if finished {
				return
			}
			fails = 0
		}
	}
}

// --- collection entry points (called from the VM thread) -------------------

// RunMinorGC performs one stop-the-world scavenge. The caller (VM thread)
// must have suspended the mutators. Returns the collection's report.
func (g *Engine) RunMinorGC(e *cfs.Env, roots RootSet) *GCReport {
	g.reclaim()
	g.gcSeq++
	rep := g.newReport(Minor, g.gcSeq, e.Now())
	rep.Before = g.snapshot()
	g.vmThread = e.T
	g.H.BeginMinorGC()

	tasks, term := g.buildMinorTasks(roots, rep)
	// Phase 1: initialization — root preparation while GC threads sleep.
	e.Compute(g.Costs.RootPrepBase + simkit.Time(len(tasks))*g.Costs.RootPrepPerTask)
	rep.InitTime = e.Now() - rep.Start

	g.mgr.enqueueAll(e, tasks)
	for !term.done {
		e.Park()
	}

	// Phase 3: final synchronization.
	fs := e.Now()
	e.Compute(g.Costs.FinalSync)
	rep.FreedBytes = g.H.FinishMinorGC()
	if g.Opt.AdaptiveSizing {
		g.adaptTenuring()
		g.resize()
	}
	rep.FinalSyncTime = e.Now() - fs
	rep.After = g.snapshot()
	rep.End = e.Now()
	g.taskBuf = g.retireTasks(tasks)
	g.Reports = append(g.Reports, rep)
	g.emitPhases(rep, fs)
	g.publishMetrics(rep)
	g.verify()
	return rep
}

// emitPhases publishes the collection and its three phases as nested spans
// on the GC-phases track (§2.2's decomposition: initialization, parallel,
// final synchronization).
func (g *Engine) emitPhases(rep *GCReport, fsStart simkit.Time) {
	if g.etr == nil {
		return
	}
	parStart := rep.Start + rep.InitTime
	inst := int64(g.Opt.Instance)
	g.etr.Emit(evtrace.Event{Kind: evtrace.KGCSpan, At: int64(rep.Start),
		Dur: int64(rep.End - rep.Start), Core: -1, TID: -1,
		Name: rep.Kind.String(), Arg1: int64(rep.Seq), Arg2: inst})
	g.etr.Emit(evtrace.Event{Kind: evtrace.KGCPhase, At: int64(rep.Start),
		Dur: int64(rep.InitTime), Core: -1, TID: -1, Name: "init", Arg1: int64(rep.Seq), Arg2: inst})
	g.etr.Emit(evtrace.Event{Kind: evtrace.KGCPhase, At: int64(parStart),
		Dur: int64(fsStart - parStart), Core: -1, TID: -1, Name: "parallel", Arg1: int64(rep.Seq), Arg2: inst})
	g.etr.Emit(evtrace.Event{Kind: evtrace.KGCPhase, At: int64(fsStart),
		Dur: int64(rep.End - fsStart), Core: -1, TID: -1, Name: "final-sync", Arg1: int64(rep.Seq), Arg2: inst})
}

// publishMetrics republishes the layers' counters into the unified
// registry and snapshots it, once per collection.
func (g *Engine) publishMetrics(rep *GCReport) {
	reg := g.Opt.Metrics
	if reg == nil {
		return
	}
	ms := g.mgr.mon.Stats
	reg.Counter("jmutex.fast_acquires").Set(int64(ms.FastAcquires))
	reg.Counter("jmutex.slow_acquires").Set(int64(ms.SlowAcquires))
	reg.Counter("jmutex.owner_reacquires").Set(int64(ms.OwnerReacquires))
	reg.Counter("jmutex.bypasses").Set(int64(ms.Bypasses))
	reg.Counter("jmutex.handoffs").Set(int64(ms.Handoffs))
	reg.Counter("jmutex.park_events").Set(int64(ms.ParkEvents))
	reg.Counter("jmutex.max_concurrent_seekers").Set(int64(ms.MaxConcurrentSeekers))
	reg.Counter("taskq.steal_attempts").Set(g.Steal.TotalAttempts())
	reg.Counter("taskq.steal_failures").Set(g.Steal.TotalFailures())
	reg.Gauge("taskq.steal_failure_rate").Set(g.Steal.FailureRate())
	ks := g.K.Stats
	reg.Counter("cfs.preemptions").Set(int64(ks.Preemptions))
	reg.Counter("cfs.wake_preemptions").Set(int64(ks.WakePreemptions))
	reg.Counter("cfs.newidle_pulls").Set(int64(ks.NewIdlePulls))
	reg.Counter("cfs.periodic_pulls").Set(int64(ks.PeriodicPulls))
	reg.Counter("cfs.context_switches").Set(int64(ks.ContextSwitches))
	reg.Counter("gc.collections").Set(int64(len(g.Reports)))
	reg.Counter("gc.copied_objects").Add(rep.CopiedObjects)
	reg.Counter("gc.copied_bytes").Add(rep.CopiedBytes)
	reg.Counter("gc.promoted_objects").Add(rep.PromotedObjects)
	reg.Counter("gc.freed_bytes").Add(rep.FreedBytes)
	reg.Gauge("gc.last_pause_ms").Set((rep.End - rep.Start).Millis())
	reg.Snap(fmt.Sprintf("gc-%d", rep.Seq), int64(rep.End))
}

// verify enforces Options.VerifyHeap.
func (g *Engine) verify() {
	if !g.Opt.VerifyHeap {
		return
	}
	if err := g.H.CheckInvariants(); err != nil {
		panic(fmt.Sprintf("pscavenge: heap verification failed after GC %d: %v", g.gcSeq, err))
	}
}

// snapshot captures the heap's current occupancy for GC reports.
func (g *Engine) snapshot() HeapSnapshot {
	eden, from, old := g.H.Usage()
	cfg := g.H.Config()
	return HeapSnapshot{
		EdenUsed: eden, FromUsed: from, OldUsed: old,
		EdenCap: cfg.EdenBytes, SurvivorCap: cfg.SurvivorBytes, OldCap: cfg.OldBytes,
	}
}

// reclaim moves retired task records, terminators and recycled reports to
// the free lists — but only when every GC worker is idle on the manager's
// WaitSet. A termination straggler (a worker whose TermSleep expires after
// the pause has ended) still holds its task, terminator and report
// pointers while it finishes the offer protocol; reusing those records
// under it would alias two collections. Full quiescence implies no such
// references remain: an idle worker has passed its task-done transition
// (which nils the plan's task pointer) and dropped every steal-loop frame.
// When workers are not yet quiescent the records simply stay pending and
// are reclaimed by a later collection.
func (g *Engine) reclaim() {
	if len(g.pendTasks) == 0 && len(g.pendTerms) == 0 && len(g.pendReps) == 0 {
		return
	}
	if g.mgr.mon.WaitSetLen() != len(g.workers) {
		return
	}
	g.taskFree = append(g.taskFree, g.pendTasks...)
	for i := range g.pendTasks {
		g.pendTasks[i] = nil
	}
	g.pendTasks = g.pendTasks[:0]
	g.termFree = append(g.termFree, g.pendTerms...)
	for i := range g.pendTerms {
		g.pendTerms[i] = nil
	}
	g.pendTerms = g.pendTerms[:0]
	g.repFree = append(g.repFree, g.pendReps...)
	for i := range g.pendReps {
		g.pendReps[i] = nil
	}
	g.pendReps = g.pendReps[:0]
}

// newTask pops a reclaimed task record or allocates a fresh one. Records
// are retired at phase end via retireTasks.
func (g *Engine) newTask(kind TaskKind) *GCTask {
	if n := len(g.taskFree); n > 0 {
		t := g.taskFree[n-1]
		g.taskFree = g.taskFree[:n-1]
		*t = GCTask{Kind: kind}
		return t
	}
	return &GCTask{Kind: kind}
}

// retireTasks parks a completed phase's task records on the pending list
// (reclaim recycles them once the workers are quiescent) and hands the
// truncated backing slice back for immediate reuse — the slice holds only
// pointers, which have been copied out.
func (g *Engine) retireTasks(tasks []*GCTask) []*GCTask {
	g.pendTasks = append(g.pendTasks, tasks...)
	return tasks[:0]
}

// newTerminator builds the parallel phase's terminator, reusing a
// reclaimed record when one is available. The new terminator is
// immediately parked on the pending list: it becomes reclaimable at the
// first collection start that finds the workers quiescent, which is
// necessarily after its own phase (and any stragglers) completed.
func (g *Engine) newTerminator(total int) *terminator {
	var t *terminator
	if n := len(g.termFree); n > 0 {
		t = g.termFree[n-1]
		g.termFree = g.termFree[:n-1]
	} else {
		t = new(terminator)
	}
	*t = terminator{g: g, total: total, fast: g.Opt.FastTerminator, localThreads: g.localThr}
	g.pendTerms = append(g.pendTerms, t)
	return t
}

func (g *Engine) buildMinorTasks(roots RootSet, rep *GCReport) ([]*GCTask, *terminator) {
	n := len(g.queues)
	term := g.newTerminator(n)
	tasks := g.taskBuf[:0]
	// OldToYoungRootsTask: the remembered set, striped across GC threads.
	parts := partitionInto(g.partBuf, g.H.RememberedSet(), n)
	for _, stripe := range parts {
		t := g.newTask(TaskOldToYoungRoots)
		t.Roots = stripe
		tasks = append(tasks, t)
	}
	// ScavengeRootsTask: static root categories (HotSpot enumerates ~9:
	// universe, JNI handles, threads, object synchronizer, ...).
	parts = partitionInto(parts, roots.StaticRoots, 9)
	for _, part := range parts {
		t := g.newTask(TaskScavengeRoots)
		t.Roots = part
		tasks = append(tasks, t)
	}
	g.partBuf = parts[:0]
	// ThreadRootsTask: one per mutator thread.
	for _, tr := range roots.ThreadRoots {
		t := g.newTask(TaskThreadRoots)
		t.Roots = tr
		tasks = append(tasks, t)
	}
	// StealTask: one per GC thread, after all ordinary tasks (§2.2).
	for w := 0; w < n; w++ {
		t := g.newTask(TaskSteal)
		t.term = term
		tasks = append(tasks, t)
	}
	g.finishTasks(tasks, rep)
	return tasks, term
}

// RunMajorGC performs one stop-the-world full collection: parallel marking
// with stealing, sweep, then partially-parallel compaction.
func (g *Engine) RunMajorGC(e *cfs.Env, roots RootSet) *GCReport {
	g.reclaim()
	g.gcSeq++
	n := len(g.queues)
	rep := g.newReport(Major, g.gcSeq, e.Now())
	rep.Before = g.snapshot()
	g.vmThread = e.T
	g.H.BeginMajorGC()

	// Phase 1: initialization + marking task construction.
	term := g.newTerminator(n)
	tasks := g.taskBuf[:0]
	parts := partitionInto(g.partBuf, roots.StaticRoots, 9)
	for _, part := range parts {
		t := g.newTask(TaskMarkRoots)
		t.Roots = part
		tasks = append(tasks, t)
	}
	g.partBuf = parts[:0]
	for _, tr := range roots.ThreadRoots {
		t := g.newTask(TaskMarkRoots)
		t.Roots = tr
		tasks = append(tasks, t)
	}
	for w := 0; w < n; w++ {
		t := g.newTask(TaskMarkSteal)
		t.term = term
		tasks = append(tasks, t)
	}
	g.finishTasks(tasks, rep)
	e.Compute(g.Costs.RootPrepBase + simkit.Time(len(tasks))*g.Costs.RootPrepPerTask)
	rep.InitTime = e.Now() - rep.Start

	g.mgr.enqueueAll(e, tasks)
	for !term.done {
		e.Park()
	}
	// Marking is over and its queue has drained; retire the mark records
	// (their backing slice is immediately reusable for compaction, the
	// records themselves only after worker quiescence).
	tasks = g.retireTasks(tasks)

	// Sweep dead objects, then compact: a serial summary phase on the VM
	// thread followed by parallel region tasks.
	freedOld, liveOld := g.H.FinishMajorGC()
	rep.FreedBytes = freedOld
	total := simkit.Time(liveOld) * g.Costs.CompactPerByte
	serial := simkit.Time(float64(total) * g.Costs.CompactSerialFrac)
	e.Compute(serial)
	if parallel := total - serial; parallel > 0 && n > 0 {
		g.bar = &g.barScr
		*g.bar = barrier{g: g, remaining: n, start: e.Now()}
		for w := 0; w < n; w++ {
			t := g.newTask(TaskCompact)
			t.Work = parallel / simkit.Time(n)
			tasks = append(tasks, t)
		}
		g.finishTasks(tasks, rep)
		g.mgr.enqueueAll(e, tasks)
		for g.bar.remaining > 0 {
			e.Park()
		}
		tasks = g.retireTasks(tasks)
	}

	fs := e.Now()
	e.Compute(g.Costs.FinalSync)
	rep.FinalSyncTime = e.Now() - fs
	rep.After = g.snapshot()
	rep.End = e.Now()
	g.taskBuf = tasks
	g.Reports = append(g.Reports, rep)
	g.emitPhases(rep, fs)
	g.publishMetrics(rep)
	g.verify()
	return rep
}

// finishTasks assigns report pointers, unique task ids (namespaced by
// Options.Instance so multi-JVM machines never collide on one bus), and
// (optionally) task affinity.
func (g *Engine) finishTasks(tasks []*GCTask, rep *GCReport) {
	n := len(g.queues)
	for i, t := range tasks {
		t.rep = rep
		g.taskSeq++
		t.id = int64(g.Opt.Instance)<<32 | g.taskSeq
		if g.Opt.TaskAffinity && t.Kind != TaskSteal && t.Kind != TaskMarkSteal {
			t.Affinity = i % n
		} else {
			t.Affinity = -1
		}
	}
}

// localThreads returns the per-worker node-local thread counts when NUMA
// stealing is configured (Gidra's 2·N_local termination), else nil.
func (g *Engine) localThreads() []int {
	if g.Opt.StealKind != taskq.KindNUMARestricted || g.Opt.NodeOf == nil {
		return nil
	}
	counts := make([]int, len(g.queues))
	for w := range counts {
		for v := range g.queues {
			if g.Opt.NodeOf[v] == g.Opt.NodeOf[w] {
				counts[w]++
			}
		}
	}
	return counts
}

// adaptTenuring recomputes the tenuring threshold from the survivor age
// table, as PSAdaptiveSizePolicy does: the threshold is the smallest age at
// which cumulative survivor bytes exceed TargetSurvivorRatio (50%) of the
// survivor capacity — heavy survival tenures earlier, light survival lets
// objects age longer before promotion.
func (g *Engine) adaptTenuring() {
	cfg := g.H.Config()
	target := cfg.SurvivorBytes / 2
	var cum int64
	threshold := uint8(15)
	for age, bytes := range g.H.AgeTable() {
		cum += bytes
		if cum > target {
			threshold = uint8(age)
			break
		}
	}
	if threshold < 1 {
		threshold = 1
	}
	if threshold != cfg.TenureAge {
		cfg.TenureAge = threshold
		_ = g.H.SetConfig(cfg)
	}
}

// resize applies the final-phase feedback policy (§2.1): grow eden when
// survivors indicate pressure, shrink it when the heap is mostly garbage.
func (g *Engine) resize() {
	cfg := g.H.Config()
	_, from, _ := g.H.Usage()
	surviveFrac := float64(from) / float64(cfg.SurvivorBytes)
	switch {
	case surviveFrac > 0.8 && cfg.EdenBytes < 2*g.initialEden:
		cfg.EdenBytes = cfg.EdenBytes * 11 / 10
		cfg.SurvivorBytes = cfg.SurvivorBytes * 11 / 10
	case surviveFrac < 0.1 && cfg.EdenBytes > g.initialEden/2:
		cfg.EdenBytes = cfg.EdenBytes * 19 / 20
	default:
		return
	}
	// Ignore errors: resizing below occupancy simply skips this round.
	_ = g.H.SetConfig(cfg)
}

// MonitorStats returns the GCTaskManager monitor's lock statistics.
func (g *Engine) MonitorStats() jmutex.Stats { return g.mgr.mon.Stats }

// LockLog returns the GCTaskManager monitor's acquisition log (empty unless
// Options.RecordLockLog was set).
func (g *Engine) LockLog() []jmutex.AcqEvent { return g.mgr.mon.Log }
