package pscavenge

import (
	"repro/internal/cfs"
	"repro/internal/evtrace"
	"repro/internal/heap"
	"repro/internal/simkit"
)

// This file runs the GC worker bodies as driver-serviced compute plans
// (cfs.Env.ComputePlan): the get_task fast path, per-object scavenge/mark
// tracing, the steal attempt loop, and task bookkeeping all advance inside
// the kernel's completion timer, so a worker's coroutine body is resumed
// only at the transitions that can actually block or migrate it:
//
//   - contended monitor entry (LockContended parks);
//   - the queue-empty wait between GCs (WaitFinish parks on the WaitSet);
//   - the termination protocol (offer yields the CPU and sleeps);
//   - the dynamic-affinity GC-wake hook (it may SetAffinity and migrate);
//   - shutdown (the body must return).
//
// Everything else — the CAS and unlock costs around get_task, the chunked
// tracing charges that replaced the cfs.Batcher, the per-attempt steal cost
// — is a plan slice. The state machine replays the legacy loop's operations
// at exactly the instants the loop performed them between its Compute
// yields, so the event stream, RNG draws, reports, and trace emissions are
// byte-identical to Options.LoopWorkers (asserted by the loop-vs-plan
// identity test).

// workerPC is the plan program counter: where the worker resumes when the
// current slice completes.
type workerPC uint8

const (
	// get_task: lock, queue inspection, unlock.
	wpcLock workerPC = iota
	wpcTryLock
	wpcLocked
	wpcWaitPark
	wpcShutdown
	wpcDequeued
	wpcUnlocked
	// task dispatch and completion.
	wpcExecStart
	wpcTaskDone
	// root scanning (ScavengeRoots / ThreadRoots / MarkRoots).
	wpcRootScan
	wpcRootVisit
	// remembered-set scanning (OldToYoungRoots).
	wpcOldToYoung
	wpcOldToYoungVisit
	// local-queue drain (shared by root tasks and successful steals).
	wpcDrainPop
	wpcStepRefs
	wpcStepRefVisit
	wpcFlush
	// steal loop.
	wpcStealChoose
	wpcStealResult
	wpcStealDrained
	wpcStealFlushed
)

// workerAction tells the body why the plan stopped.
type workerAction uint8

const (
	wactNone workerAction = iota
	wactLockContended
	wactWait
	wactGCWake
	wactOffer
	wactShutdown
)

// workerState is one GC worker's plan state machine.
type workerState struct {
	g    *Engine
	w    int
	th   *cfs.Thread
	plan cfs.PlanFn // bound step method, allocated once at init

	pc     workerPC
	action workerAction

	task      *GCTask
	taskStart simkit.Time

	// Chunked tracing accumulator (the plan-resident cfs.Batcher).
	acc simkit.Time

	// Root / reference iteration cursors.
	rootIdx int
	refIdx  int
	pending heap.ObjID // visit deferred across a chunk-flush slice
	curID   heap.ObjID // object whose reference list is being scanned
	mark    bool       // marking (full GC) vs scavenging semantics

	afterDrain workerPC // where wpcDrainPop goes when the queue is empty

	// Steal-loop state.
	fails    int
	victim   int
	segStart simkit.Time
	offerAt  simkit.Time
}

func (ws *workerState) init(g *Engine, w int, e *cfs.Env) {
	ws.g = g
	ws.w = w
	ws.th = e.T
	ws.pc = wpcLock
	ws.plan = ws.step
}

// workerPlan is the plan-driven worker body: it re-enters the state machine
// after every blocking transition until the manager shuts down.
func (g *Engine) workerPlan(e *cfs.Env, w int) {
	ws := &g.wstates[w]
	ws.init(g, w, e)
	for {
		e.ComputePlan(ws.plan)
		act := ws.action
		ws.action = wactNone
		switch act {
		case wactShutdown:
			return
		case wactLockContended:
			g.mgr.mon.LockContended(e)
			ws.pc = wpcLocked
		case wactWait:
			g.mgr.mon.WaitFinish(e)
			ws.pc = wpcLocked
		case wactGCWake:
			g.Opt.OnGCWake(e, w)
			ws.pc = wpcExecStart
		case wactOffer:
			ws.finishOffer(e)
		}
	}
}

// finishOffer runs the termination protocol in the body (offer spins, yields
// and sleeps) and routes the plan to the right continuation, replicating the
// tail of the legacy runSteal iteration.
func (ws *workerState) finishOffer(e *cfs.Env) {
	t := ws.task
	rep := t.rep
	finished := t.term.offer(e, ws.w)
	// A straggler may observe completion only after the pause has ended (it
	// wakes among resumed mutators); clamp its share of the termination
	// phase to the pause itself.
	end := e.Now()
	if t.term.done && t.term.completedAt > ws.offerAt && t.term.completedAt < end {
		end = t.term.completedAt
	}
	rep.TerminationTime += end - ws.offerAt
	ws.segStart = e.Now()
	if finished {
		ws.pc = wpcTaskDone
		return
	}
	ws.fails = 0
	ws.pc = wpcStealChoose
}

// step is the worker's cfs.PlanFn. Each call performs the work the legacy
// loop did between two scheduling points and returns the next plan slice; a
// (0, false) return hands control back to the body with ws.action set.
func (ws *workerState) step() (simkit.Time, bool) {
	g := ws.g
	m := g.mgr
	switch ws.pc {
	case wpcLock:
		ws.pc = wpcTryLock
		return m.mon.LockBegin(ws.th), true
	case wpcTryLock:
		if !m.mon.TryLockFast(ws.th) {
			ws.action = wactLockContended
			return 0, false
		}
		ws.pc = wpcLocked
		return 0, true
	case wpcLocked:
		if len(m.queue) == 0 {
			if m.closed {
				ws.pc = wpcShutdown
				return m.mon.UnlockBegin(ws.th), true
			}
			ws.pc = wpcWaitPark
			return m.mon.WaitBegin(ws.th), true
		}
		ws.task = m.dequeue(ws.w)
		ws.pc = wpcDequeued
		return g.Costs.TaskDequeue, true
	case wpcWaitPark:
		ws.action = wactWait
		return 0, false
	case wpcShutdown:
		m.mon.UnlockFinish(ws.th)
		ws.action = wactShutdown
		return 0, false
	case wpcDequeued:
		ws.pc = wpcUnlocked
		return m.mon.UnlockBegin(ws.th), true
	case wpcUnlocked:
		m.mon.UnlockFinish(ws.th)
		task := ws.task
		if g.etr != nil {
			g.etr.Emit(evtrace.Event{Kind: evtrace.KGetTask, At: int64(g.K.Sim.Now()),
				Core: int32(ws.th.Core()), TID: int32(ws.w), Name: task.Kind.String(),
				Arg1: int64(task.Kind), Arg2: task.id})
		}
		if task.rep != nil {
			task.rep.recordDispatch(ws.w, int(ws.th.Core()), task.Kind)
			if task.rep.Seq != g.seenEpoch[ws.w] {
				g.seenEpoch[ws.w] = task.rep.Seq
				if g.Opt.OnGCWake != nil {
					ws.action = wactGCWake
					return 0, false
				}
			}
		}
		ws.pc = wpcExecStart
		return 0, true
	case wpcExecStart:
		t := ws.task
		ws.taskStart = g.K.Sim.Now()
		ws.acc = 0
		ws.rootIdx, ws.refIdx = 0, 0
		switch t.Kind {
		case TaskOldToYoungRoots:
			ws.mark = false
			ws.afterDrain = wpcFlush
			ws.pc = wpcOldToYoung
		case TaskScavengeRoots, TaskThreadRoots:
			ws.mark = false
			ws.afterDrain = wpcFlush
			ws.pc = wpcRootScan
		case TaskMarkRoots:
			ws.mark = true
			ws.afterDrain = wpcFlush
			ws.pc = wpcRootScan
		case TaskSteal, TaskMarkSteal:
			ws.mark = t.Kind == TaskMarkSteal
			ws.fails = 0
			ws.segStart = g.K.Sim.Now()
			ws.pc = wpcStealChoose
		case TaskCompact:
			ws.pc = wpcTaskDone
			return t.Work, true
		}
		return 0, true
	case wpcTaskDone:
		t := ws.task
		now := g.K.Sim.Now()
		if t.Kind != TaskSteal && t.Kind != TaskMarkSteal {
			t.rep.RootTaskTime += now - ws.taskStart
		}
		if t.Kind == TaskCompact {
			g.bar.taskDone()
		}
		if g.etr != nil {
			g.etr.Emit(evtrace.Event{Kind: evtrace.KGCTask,
				At: int64(ws.taskStart), Dur: int64(now - ws.taskStart),
				Core: int32(ws.th.Core()), TID: int32(ws.w), Name: t.Kind.String(),
				Arg1: t.id})
		}
		ws.task = nil
		ws.pc = wpcLock
		return 0, true

	case wpcRootScan:
		t := ws.task
		for ws.rootIdx < len(t.Roots) {
			id := t.Roots[ws.rootIdx]
			ws.rootIdx++
			if id == 0 {
				continue
			}
			if d, flush := ws.charge(g.Costs.RefScan); flush {
				ws.pending = id
				ws.pc = wpcRootVisit
				return d, true
			}
			ws.visit(id)
		}
		ws.pc = wpcDrainPop
		return 0, true
	case wpcRootVisit:
		ws.visit(ws.pending)
		ws.pc = wpcRootScan
		return 0, true

	case wpcOldToYoung:
		t := ws.task
		for ws.rootIdx < len(t.Roots) {
			refs := g.H.Refs(t.Roots[ws.rootIdx])
			for ws.refIdx < len(refs) {
				r := refs[ws.refIdx]
				ws.refIdx++
				if r == 0 {
					continue
				}
				if d, flush := ws.charge(g.Costs.RefScan); flush {
					ws.pending = r
					ws.pc = wpcOldToYoungVisit
					return d, true
				}
				ws.visit(r)
			}
			ws.refIdx = 0
			ws.rootIdx++
		}
		ws.pc = wpcDrainPop
		return 0, true
	case wpcOldToYoungVisit:
		ws.visit(ws.pending)
		ws.pc = wpcOldToYoung
		return 0, true

	case wpcDrainPop:
		id, ok := g.queues[ws.w].PopBottom()
		if !ok {
			ws.pc = ws.afterDrain
			return 0, true
		}
		return ws.stepObject(id)
	case wpcStepRefs:
		refs := g.H.Refs(ws.curID)
		for ws.refIdx < len(refs) {
			r := refs[ws.refIdx]
			ws.refIdx++
			if r == 0 {
				continue
			}
			if d, flush := ws.charge(g.Costs.RefScan); flush {
				ws.pending = r
				ws.pc = wpcStepRefVisit
				return d, true
			}
			ws.visit(r)
		}
		ws.pc = wpcDrainPop
		return 0, true
	case wpcStepRefVisit:
		ws.visit(ws.pending)
		ws.pc = wpcStepRefs
		return 0, true
	case wpcFlush:
		ws.pc = wpcTaskDone
		return ws.flush(), true

	case wpcStealChoose:
		victim := g.policy.ChooseVictim(ws.w, g.pool, g.K.Sim.Rand())
		g.Steal.Attempts[ws.w]++
		ws.task.rep.StealAttempts++
		ws.victim = victim
		ws.pc = wpcStealResult
		return g.Costs.StealAttempt, true
	case wpcStealResult:
		t := ws.task
		if ws.victim >= 0 {
			if id, ok := g.queues[ws.victim].PopTop(); ok {
				g.policy.RecordResult(ws.w, ws.victim, true)
				t.rep.StolenTasks++
				g.queues[ws.w].PushBottom(id)
				ws.acc = 0 // fresh tracing batch for the stolen subgraph
				ws.afterDrain = wpcStealDrained
				ws.pc = wpcDrainPop
				return 0, true
			}
		}
		g.policy.RecordResult(ws.w, ws.victim, false)
		g.Steal.Failures[ws.w]++
		t.rep.StealFailures++
		ws.fails++
		if ws.fails >= t.term.threshold(ws.w) || g.policy.AbortOnFailure() {
			now := g.K.Sim.Now()
			t.rep.StealWorkTime += now - ws.segStart
			ws.offerAt = now
			ws.action = wactOffer
			return 0, false
		}
		ws.pc = wpcStealChoose
		return 0, true
	case wpcStealDrained:
		ws.pc = wpcStealFlushed
		return ws.flush(), true
	case wpcStealFlushed:
		ws.fails = 0
		ws.pc = wpcStealChoose
		return 0, true
	}
	panic("pscavenge: invalid worker plan state")
}

// stepObject performs the copy/mark half of one drain step (the legacy
// scavengeStep/markStep up to the reference loop) and routes to the
// reference scan, charging the object cost into the tracing batch.
func (ws *workerState) stepObject(id heap.ObjID) (simkit.Time, bool) {
	g := ws.g
	h := g.H
	rep := ws.task.rep
	var cost simkit.Time
	if ws.mark {
		size, first := h.Mark(id)
		if !first {
			return 0, true // stay in wpcDrainPop
		}
		rep.CopiedObjects++
		rep.CopiedBytes += int64(size)
		cost = g.Costs.MarkObj
		if g.Opt.NUMA != nil {
			cost = g.numaAdjust(ws.th.Core(), id, cost, rep, false)
		}
	} else {
		size, promoted, first := h.CopyYoung(id)
		if !first {
			return 0, true
		}
		rep.CopiedObjects++
		rep.CopiedBytes += int64(size)
		if promoted {
			rep.PromotedObjects++
		}
		cost = g.Costs.ObjCopyBase + simkit.Time(size)*g.Costs.CopyPerByte
		if g.Opt.NUMA != nil {
			cost = g.numaAdjust(ws.th.Core(), id, cost, rep, true)
		}
	}
	ws.curID = id
	ws.refIdx = 0
	ws.pc = wpcStepRefs
	if d, flush := ws.charge(cost); flush {
		return d, true
	}
	return 0, true
}

// charge accrues d of tracing work; when the accumulator reaches ChunkWork
// it returns the slice to submit (the Batcher.Charge threshold, verbatim).
func (ws *workerState) charge(d simkit.Time) (simkit.Time, bool) {
	ws.acc += d
	if ws.acc >= ws.g.Costs.ChunkWork {
		d = ws.acc
		ws.acc = 0
		return d, true
	}
	return 0, false
}

// flush returns the remaining accrued tracing work (Batcher.Flush).
func (ws *workerState) flush() simkit.Time {
	d := ws.acc
	ws.acc = 0
	return d
}

// visit applies the trace-child filter and pushes survivors on the worker's
// local queue: marking visits every unvisited child, scavenging only
// unvisited young ones.
func (ws *workerState) visit(r heap.ObjID) {
	h := ws.g.H
	if ws.mark {
		if !h.Visited(r) {
			ws.g.queues[ws.w].PushBottom(r)
		}
	} else if !h.Visited(r) && isYoung(h.SpaceOf(r)) {
		ws.g.queues[ws.w].PushBottom(r)
	}
}
