// Package pscavenge implements the Parallel Scavenge collector of HotSpot
// as described in §2.1–§2.3 of the paper, running on the simulated kernel:
//
//   - a GCTaskManager implemented as a HotSpot monitor protecting the global
//     GCTaskQueue (dynamic task assignment);
//   - the minor-GC task types (OldToYoungRootsTask, ScavengeRootsTask,
//     ThreadRootsTask) plus one StealTask per GC thread;
//   - per-thread GenericTaskQueue deques holding fine-grained tasks (object
//     subgraphs), stolen via a pluggable policy;
//   - the distributed termination protocol (2·N consecutive failed steals,
//     _offered_termination counter, peek-and-return) and the paper's
//     FastParallelTaskTerminator (2·N_live, Algorithm 2);
//   - a full-GC path: parallel marking with stealing, then sweep and a
//     partially-parallel compaction;
//   - per-GC reports: phase decomposition (Fig. 6), task and thread
//     distribution matrices (Figs. 4/8), steal counters (Table 1, Fig. 9).
package pscavenge

import "repro/internal/simkit"

// Costs calibrate simulated time per unit of real collector work. They are
// chosen so task lengths land in the tens-of-microseconds range and minor
// pauses in the tens-of-milliseconds range the paper reports (§2.5, §3).
type Costs struct {
	// ObjCopyBase is charged per object copied or promoted.
	ObjCopyBase simkit.Time
	// CopyPerByte is charged per byte copied (model bytes).
	CopyPerByte simkit.Time
	// RefScan is charged per reference examined.
	RefScan simkit.Time
	// MarkObj is charged per object marked in a full GC.
	MarkObj simkit.Time
	// CompactPerByte is charged per live old byte during compaction.
	CompactPerByte simkit.Time
	// CompactSerialFrac is the fraction of compaction work done serially by
	// the VM thread (summary/fixup phases); the rest is parallel region
	// work. Full GC therefore benefits less from the optimizations (§5.5).
	CompactSerialFrac float64

	// TaskDequeue is the get_task critical-section length.
	TaskDequeue simkit.Time
	// RootPrepBase + RootPrepPerTask is the VM thread's initialization
	// phase (suspending mutators, preparing tasks).
	RootPrepBase    simkit.Time
	RootPrepPerTask simkit.Time
	// FinalSync is the VM thread's final synchronization phase.
	FinalSync simkit.Time

	// StealAttempt is the cost of one steal attempt (victim inspection and
	// the CAS on its queue top).
	StealAttempt simkit.Time
	// TermSpin is one spin iteration inside the termination protocol.
	TermSpin simkit.Time
	// TermSleep is the sleep between termination re-checks (HotSpot uses
	// ~1 ms naps once yielding stops making progress).
	TermSleep simkit.Time

	// ChunkWork is the maximum accumulated tracing work submitted as one
	// Compute call; it bounds how long a GC thread runs without giving the
	// scheduler a decision point.
	ChunkWork simkit.Time
}

// DefaultCosts returns the calibration used by the evaluation.
func DefaultCosts() Costs {
	return Costs{
		ObjCopyBase:       500 * simkit.Nanosecond,
		CopyPerByte:       2 * simkit.Nanosecond, // per model byte
		RefScan:           80 * simkit.Nanosecond,
		MarkObj:           200 * simkit.Nanosecond,
		CompactPerByte:    2 * simkit.Nanosecond,
		CompactSerialFrac: 0.5,

		TaskDequeue:     300 * simkit.Nanosecond,
		RootPrepBase:    250 * simkit.Microsecond,
		RootPrepPerTask: 2 * simkit.Microsecond,
		FinalSync:       120 * simkit.Microsecond,

		StealAttempt: 400 * simkit.Nanosecond,
		TermSpin:     2 * simkit.Microsecond,
		TermSleep:    1 * simkit.Millisecond,

		ChunkWork: 8 * simkit.Microsecond,
	}
}

// DefaultGCThreads is HotSpot's heuristic for the number of GC threads
// (footnote 1): ncpus when ncpus <= 8, else 3 + ncpus*5/8.
func DefaultGCThreads(ncpus int) int {
	if ncpus <= 8 {
		return ncpus
	}
	return 3 + ncpus*5/8
}
