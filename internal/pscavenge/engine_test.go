package pscavenge

import (
	"math/rand"
	"testing"

	"repro/internal/cfs"
	"repro/internal/heap"
	"repro/internal/jmutex"
	"repro/internal/objgraph"
	"repro/internal/ostopo"
	"repro/internal/simkit"
	"repro/internal/taskq"
)

const (
	us = simkit.Microsecond
	ms = simkit.Millisecond
)

// rig is a test harness: kernel + heap + filled object graph + engine.
type rig struct {
	sim  *simkit.Sim
	k    *cfs.Kernel
	h    *heap.Heap
	g    *Engine
	muts []*objgraph.Mutator
}

func newRig(t *testing.T, seed int64, opt Options, nmut int) *rig {
	t.Helper()
	sim := simkit.New(seed)
	t.Cleanup(sim.Close)
	// The GC engine must never schedule into the past (see Sim.Clamped).
	t.Cleanup(func() {
		if n := sim.Clamped(); n != 0 {
			t.Errorf("simulation clamped %d past-scheduled events, want 0", n)
		}
	})
	k := cfs.NewKernel(sim, ostopo.PaperTestbed(), cfs.DefaultParams())
	h, err := heap.New(heap.Config{
		EdenBytes: 1 << 20, SurvivorBytes: 1 << 18, OldBytes: 1 << 22, TenureAge: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{sim: sim, k: k, h: h}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < nmut; i++ {
		m, err := objgraph.NewMutator(i, h, objgraph.DefaultParams(), rng)
		if err != nil {
			t.Fatal(err)
		}
		r.muts = append(r.muts, m)
	}
	r.g = New(k, h, opt)
	return r
}

// fillEden allocates clusters until eden is (nearly) full.
func (r *rig) fillEden(t *testing.T) {
	t.Helper()
	for i := 0; ; i = (i + 1) % len(r.muts) {
		if _, ok := r.muts[i].AllocCluster(); !ok {
			return
		}
	}
}

// roots builds the minor-GC root set from the mutators.
func (r *rig) roots() RootSet {
	rs := RootSet{}
	for _, m := range r.muts {
		rs.ThreadRoots = append(rs.ThreadRoots, m.Roots())
	}
	return rs
}

// oracleRoots returns roots for reachability checking: thread roots plus
// remembered-set entries (the anchors reach young objects only through RS).
func (r *rig) oracleRoots() []heap.ObjID {
	var roots []heap.ObjID
	for _, m := range r.muts {
		roots = append(roots, m.Roots()...)
	}
	roots = append(roots, r.h.RememberedSet()...)
	return roots
}

// runVM spawns a VM thread executing fn and drains the simulation.
func (r *rig) runVM(t *testing.T, fn func(e *cfs.Env)) {
	t.Helper()
	done := false
	vm := r.k.Spawn("VMThread", 19, func(e *cfs.Env) {
		fn(e)
		r.g.Shutdown(e)
		done = true
	})
	_ = vm
	for !done && r.sim.Now() < 60*simkit.Second {
		if !r.sim.Step() {
			break
		}
	}
	if !done {
		t.Fatalf("VM thread did not finish by %v", r.sim.Now())
	}
	// Workers must exit after shutdown; step until they do (bounded).
	workersDone := func() bool {
		for _, w := range r.g.Workers() {
			if w.State() != cfs.StateDone {
				return false
			}
		}
		return true
	}
	for i := 0; i < 500_000 && !workersDone() && r.sim.Step(); i++ {
	}
	for _, w := range r.g.Workers() {
		if w.State() != cfs.StateDone {
			t.Fatalf("GC worker %s stuck in %v after shutdown", w.Name, w.State())
		}
	}
	// Stop recurring balance timers so the event queue can drain fully.
	r.k.Shutdown()
	for r.sim.Step() {
	}
}

func TestDefaultGCThreadsHeuristic(t *testing.T) {
	cases := map[int]int{1: 1, 4: 4, 8: 8, 16: 13, 20: 15, 40: 28}
	for ncpus, want := range cases {
		if got := DefaultGCThreads(ncpus); got != want {
			t.Errorf("DefaultGCThreads(%d) = %d, want %d", ncpus, got, want)
		}
	}
}

func TestMinorGCPreservesOracleLiveSet(t *testing.T) {
	r := newRig(t, 1, Options{}, 8)
	r.fillEden(t)
	wantLive := r.h.ReachableFrom(r.oracleRoots())
	roots := r.roots()
	var rep *GCReport
	r.runVM(t, func(e *cfs.Env) {
		rep = r.g.RunMinorGC(e, roots)
	})
	if rep == nil {
		t.Fatal("no report")
	}
	// Every oracle-live young object must still exist (from-space or
	// promoted); eden must be empty.
	for id := range wantLive {
		sp := r.h.SpaceOf(id)
		if sp == heap.SpaceNone || sp == heap.SpaceEden {
			t.Fatalf("live object %d lost (space %v)", id, sp)
		}
	}
	edenUsed, _, _ := r.h.Usage()
	if edenUsed != 0 {
		t.Errorf("eden not empty after minor GC: %d bytes", edenUsed)
	}
	if err := r.h.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if rep.FreedBytes <= 0 {
		t.Error("no garbage freed — workload must generate garbage")
	}
	if rep.CopiedObjects <= 0 {
		t.Error("nothing copied")
	}
}

func TestMinorGCReportStructure(t *testing.T) {
	r := newRig(t, 2, Options{}, 8)
	r.fillEden(t)
	roots := r.roots()
	var rep *GCReport
	r.runVM(t, func(e *cfs.Env) { rep = r.g.RunMinorGC(e, roots) })
	if rep.Pause() <= 0 {
		t.Error("non-positive pause")
	}
	if rep.InitTime <= 0 || rep.FinalSyncTime <= 0 {
		t.Errorf("init=%v final=%v, want positive", rep.InitTime, rep.FinalSyncTime)
	}
	if rep.RootTaskTime <= 0 {
		t.Error("no root task time recorded")
	}
	if rep.StealWorkTime+rep.TerminationTime <= 0 {
		t.Error("no steal/termination time recorded")
	}
	// Steal tasks: exactly one per GC thread was enqueued and executed.
	stealCount := 0
	for _, row := range rep.TasksByThread {
		stealCount += row[TaskSteal]
	}
	if stealCount != r.g.Threads() {
		t.Errorf("%d StealTasks executed, want %d", stealCount, r.g.Threads())
	}
	if rep.StealAttempts <= 0 {
		t.Error("no steal attempts")
	}
	if rep.CoresUsed() < 1 {
		t.Error("CoresUsed < 1")
	}
}

func TestEachWorkerRunsExactlyOneStealTask(t *testing.T) {
	r := newRig(t, 3, Options{}, 6)
	r.fillEden(t)
	roots := r.roots()
	var rep *GCReport
	r.runVM(t, func(e *cfs.Env) { rep = r.g.RunMinorGC(e, roots) })
	for w, row := range rep.TasksByThread {
		if row[TaskSteal] != 1 {
			t.Errorf("worker %d executed %d StealTasks, want exactly 1", w, row[TaskSteal])
		}
	}
}

func TestMajorGCCollectsOldGarbage(t *testing.T) {
	r := newRig(t, 4, Options{}, 6)
	// Run several fill+minor cycles to tenure data, then cut anchors.
	for cycle := 0; cycle < 6; cycle++ {
		r.fillEden(t)
		roots := r.roots()
		done := false
		vm := r.k.Spawn("VM", 19, func(e *cfs.Env) {
			r.g.RunMinorGC(e, roots)
			done = true
		})
		_ = vm
		for !done && r.sim.Step() {
		}
	}
	_, _, oldBefore := r.h.Usage()
	if oldBefore == 0 {
		t.Fatal("nothing tenured; test needs old-generation data")
	}
	// Cut most anchor references: tenured data becomes garbage.
	for _, m := range r.muts {
		m.TrimAnchor(0.9)
	}
	var rep *GCReport
	majorRoots := RootSet{}
	for _, m := range r.muts {
		majorRoots.ThreadRoots = append(majorRoots.ThreadRoots, m.Roots())
		majorRoots.StaticRoots = append(majorRoots.StaticRoots, m.Anchor())
	}
	r.runVM(t, func(e *cfs.Env) { rep = r.g.RunMajorGC(e, majorRoots) })
	if rep.Kind != Major {
		t.Error("report kind not major")
	}
	if rep.FreedBytes <= 0 {
		t.Errorf("major GC freed %d bytes, want > 0", rep.FreedBytes)
	}
	_, _, oldAfter := r.h.Usage()
	if oldAfter >= oldBefore {
		t.Errorf("old gen %d -> %d: no reclamation", oldBefore, oldAfter)
	}
	// Anchors must survive.
	for _, m := range r.muts {
		if r.h.SpaceOf(m.Anchor()) != heap.SpaceOld {
			t.Error("anchor lost by major GC")
		}
	}
	if err := r.h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAllMutexPoliciesComplete(t *testing.T) {
	for _, pol := range []jmutex.Policy{
		jmutex.PolicyHotSpot, jmutex.PolicyFairFIFO, jmutex.PolicyNoFastPath, jmutex.PolicyWakeAll,
	} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			r := newRig(t, 5, Options{MutexPolicy: pol}, 4)
			r.fillEden(t)
			roots := r.roots()
			var rep *GCReport
			r.runVM(t, func(e *cfs.Env) { rep = r.g.RunMinorGC(e, roots) })
			if rep == nil || rep.CopiedObjects == 0 {
				t.Fatal("GC did not complete properly")
			}
		})
	}
}

func TestAllStealPoliciesComplete(t *testing.T) {
	nodeOf := make([]int, 15)
	for i := range nodeOf {
		nodeOf[i] = i % 2
	}
	for _, kind := range []taskq.PolicyKind{
		taskq.KindBestOf2, taskq.KindSemiRandom, taskq.KindNUMARestricted, taskq.KindSmartStealing,
	} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			opt := Options{StealKind: kind}
			if kind == taskq.KindNUMARestricted {
				opt.NodeOf = nodeOf
			}
			r := newRig(t, 6, opt, 4)
			r.fillEden(t)
			roots := r.roots()
			var rep *GCReport
			r.runVM(t, func(e *cfs.Env) { rep = r.g.RunMinorGC(e, roots) })
			if rep == nil || rep.CopiedObjects == 0 {
				t.Fatal("GC did not complete")
			}
		})
	}
}

func TestFastTerminatorReducesStealFailures(t *testing.T) {
	run := func(fast bool) int64 {
		r := newRig(t, 7, Options{FastTerminator: fast}, 6)
		r.fillEden(t)
		roots := r.roots()
		var rep *GCReport
		r.runVM(t, func(e *cfs.Env) { rep = r.g.RunMinorGC(e, roots) })
		return rep.StealFailures
	}
	std := run(false)
	fst := run(true)
	if fst >= std {
		t.Errorf("fast terminator failures %d >= standard %d", fst, std)
	}
}

func TestAffinityHooksInvoked(t *testing.T) {
	started := map[int]bool{}
	woke := map[int]bool{}
	opt := Options{
		OnWorkerStart: func(e *cfs.Env, w int) { started[w] = true },
		OnGCWake:      func(e *cfs.Env, w int) { woke[w] = true },
	}
	r := newRig(t, 8, opt, 6)
	r.fillEden(t)
	roots := r.roots()
	r.runVM(t, func(e *cfs.Env) { r.g.RunMinorGC(e, roots) })
	if len(started) != r.g.Threads() {
		t.Errorf("OnWorkerStart called for %d workers, want %d", len(started), r.g.Threads())
	}
	if len(woke) != r.g.Threads() {
		t.Errorf("OnGCWake called for %d workers, want %d", len(woke), r.g.Threads())
	}
}

func TestStaticBindingImprovesDistribution(t *testing.T) {
	run := func(bind bool) (*GCReport, int) {
		opt := Options{}
		if bind {
			opt.OnWorkerStart = func(e *cfs.Env, w int) {
				e.SetAffinity(ostopo.CoreID(w % 20))
			}
			opt.TaskAffinity = true
		}
		r := newRig(t, 9, opt, 8)
		r.fillEden(t)
		roots := r.roots()
		var rep *GCReport
		r.runVM(t, func(e *cfs.Env) { rep = r.g.RunMinorGC(e, roots) })
		return rep, rep.CoresUsed()
	}
	_, coresVanilla := run(false)
	repBound, coresBound := run(true)
	if coresBound <= coresVanilla {
		t.Errorf("binding did not increase cores used: %d vs %d", coresBound, coresVanilla)
	}
	if repBound.RootTaskSpread() < 4 {
		t.Errorf("with task affinity only %d threads ran root tasks", repBound.RootTaskSpread())
	}
}

func TestVanillaGCStacksThreads(t *testing.T) {
	// The headline pathology: on an idle 20-core machine, a vanilla minor
	// GC exercises only a few cores.
	r := newRig(t, 10, Options{}, 8)
	r.fillEden(t)
	roots := r.roots()
	var rep *GCReport
	r.runVM(t, func(e *cfs.Env) { rep = r.g.RunMinorGC(e, roots) })
	if rep.CoresUsed() > 6 {
		t.Errorf("vanilla GC used %d cores; expected heavy stacking (few cores)", rep.CoresUsed())
	}
	if rep.RootTaskSpread() > 6 {
		t.Errorf("root tasks spread over %d threads; expected concentration", rep.RootTaskSpread())
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (simkit.Time, int64, int64) {
		r := newRig(t, 11, Options{}, 6)
		r.fillEden(t)
		roots := r.roots()
		var rep *GCReport
		r.runVM(t, func(e *cfs.Env) { rep = r.g.RunMinorGC(e, roots) })
		return rep.Pause(), rep.StealAttempts, rep.CopiedBytes
	}
	p1, a1, c1 := run()
	p2, a2, c2 := run()
	if p1 != p2 || a1 != a2 || c1 != c2 {
		t.Errorf("non-deterministic GC: (%v,%d,%d) vs (%v,%d,%d)", p1, a1, c1, p2, a2, c2)
	}
}

func TestAggregateReports(t *testing.T) {
	reports := []*GCReport{
		{Kind: Minor, Start: 0, End: 10 * ms, StealAttempts: 5, StealFailures: 2},
		{Kind: Major, Start: 20 * ms, End: 50 * ms, StealAttempts: 7, StealFailures: 7},
	}
	all := Aggregate(reports, GCKind(-1))
	if all.Count != 2 || all.TotalPause != 40*ms || all.StealAttempts != 12 {
		t.Errorf("Aggregate(all) = %+v", all)
	}
	minor := Aggregate(reports, Minor)
	if minor.Count != 1 || minor.TotalPause != 10*ms {
		t.Errorf("Aggregate(minor) = %+v", minor)
	}
}

func TestTaskKindStrings(t *testing.T) {
	kinds := []TaskKind{TaskOldToYoungRoots, TaskScavengeRoots, TaskThreadRoots, TaskSteal, TaskMarkRoots, TaskMarkSteal, TaskCompact}
	for _, k := range kinds {
		if k.String() == "?" {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if Minor.String() != "minor" || Major.String() != "major" {
		t.Error("GCKind strings wrong")
	}
}

func TestPartition(t *testing.T) {
	ids := make([]heap.ObjID, 10)
	for i := range ids {
		ids[i] = heap.ObjID(i + 1)
	}
	parts := partition(ids, 3)
	if len(parts) != 3 {
		t.Fatalf("partition into %d parts, want 3", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 10 {
		t.Errorf("partition lost elements: %d of 10", total)
	}
	if partition(nil, 3) != nil {
		t.Error("partition(nil) != nil")
	}
	if got := partition(ids[:2], 5); len(got) != 2 {
		t.Errorf("partition of 2 into 5 = %d parts, want 2", len(got))
	}
}

func TestAdaptiveSizing(t *testing.T) {
	opt := Options{AdaptiveSizing: true}
	r := newRig(t, 12, opt, 6)
	before := r.h.Config().EdenBytes
	r.fillEden(t)
	roots := r.roots()
	r.runVM(t, func(e *cfs.Env) { r.g.RunMinorGC(e, roots) })
	after := r.h.Config().EdenBytes
	if after == 0 {
		t.Fatal("config lost")
	}
	// Either direction is fine; it must stay within policy bounds.
	if after > 2*before || after < before/2 {
		t.Errorf("resize out of bounds: %d -> %d", before, after)
	}
}

func TestNUMAModelChargesRemoteAccesses(t *testing.T) {
	// With the NUMA model on, tracing must classify accesses and cost more
	// overall than the uniform-memory run of the same workload.
	run := func(numa bool) (*GCReport, simkit.Time) {
		opt := Options{}
		if numa {
			opt.NUMA = &NUMAModel{Topo: ostopo.PaperTestbed(), RemoteFactor: 2.0}
		}
		r := newRig(t, 21, opt, 8)
		// Home all objects on node 1 so the (stacked, node-0) GC threads
		// must reach across the interconnect.
		r.h.SetAllocNode(1)
		r.fillEden(t)
		roots := r.roots()
		var rep *GCReport
		r.runVM(t, func(e *cfs.Env) { rep = r.g.RunMinorGC(e, roots) })
		return rep, rep.Pause()
	}
	uni, uniPause := run(false)
	num, numPause := run(true)
	if uni.RemoteAccesses != 0 || uni.LocalAccesses != 0 {
		t.Error("uniform-memory run classified accesses")
	}
	if num.RemoteAccesses == 0 {
		t.Fatal("NUMA run recorded no remote accesses")
	}
	if num.RemoteAccessRatio() < 0.5 {
		t.Errorf("remote ratio %.2f; objects homed remotely should dominate", num.RemoteAccessRatio())
	}
	if numPause <= uniPause {
		t.Errorf("NUMA pause %v not above uniform pause %v despite 2x remote cost", numPause, uniPause)
	}
}

func TestNUMACopyRehomesObjects(t *testing.T) {
	opt := Options{NUMA: &NUMAModel{Topo: ostopo.PaperTestbed(), RemoteFactor: 1.5}}
	r := newRig(t, 22, opt, 4)
	r.h.SetAllocNode(1)
	r.fillEden(t)
	roots := r.roots()
	r.runVM(t, func(e *cfs.Env) { r.g.RunMinorGC(e, roots) })
	// Survivors were copied by node-0-resident GC threads (spawn core 0):
	// at least some must have been rehomed to node 0.
	rehomed := 0
	for _, m := range r.muts {
		for _, id := range m.Roots() {
			if r.h.SpaceOf(id) != heap.SpaceNone && r.h.NodeOf(id) == 0 {
				rehomed++
			}
		}
	}
	if rehomed == 0 {
		t.Error("no surviving object was rehomed to the copying thread's node")
	}
}

func TestVerifyHeapPanicsOnCorruption(t *testing.T) {
	r := newRig(t, 23, Options{VerifyHeap: true}, 4)
	r.fillEden(t)
	roots := r.roots()
	var recovered any
	done := false
	r.k.Spawn("VM", 19, func(e *cfs.Env) {
		defer func() {
			recovered = recover()
			done = true
		}()
		// Corrupt the heap behind the collector's back: an old object with
		// a young reference but no remembered-set entry. The target is a
		// rooted young object so it survives the collection young.
		oldObj, ok := r.h.AllocOld(64)
		if !ok {
			t.Error("AllocOld failed")
		}
		young := r.muts[0].Roots()[0]
		r.h.AddRefUnsafe(oldObj, young) // bypasses the barrier
		r.g.RunMinorGC(e, roots)
	})
	for !done && r.sim.Step() {
	}
	if recovered == nil {
		t.Error("VerifyHeap did not catch a remembered-set violation")
	}
}

func TestTaskAffinityPreferredDequeue(t *testing.T) {
	// With task affinity on, get_task must hand a worker its own task when
	// one is queued, in queue order otherwise.
	r := newRig(t, 24, Options{TaskAffinity: true, Threads: 4}, 4)
	m := r.g.mgr
	mkTask := func(aff int) *GCTask {
		return &GCTask{Kind: TaskScavengeRoots, Affinity: aff}
	}
	m.queue = []*GCTask{mkTask(2), mkTask(1), mkTask(-1)}
	if got := m.dequeue(1); got.Affinity != 1 {
		t.Errorf("worker 1 got task with affinity %d, want 1", got.Affinity)
	}
	if got := m.dequeue(3); got.Affinity != 2 {
		t.Errorf("worker 3 (no matching task) got affinity %d, want head task (2)", got.Affinity)
	}
	// Without task affinity, strictly FIFO.
	m.taskAffinity = false
	m.queue = []*GCTask{mkTask(2), mkTask(1)}
	if got := m.dequeue(1); got.Affinity != 2 {
		t.Errorf("FIFO dequeue returned affinity %d, want head (2)", got.Affinity)
	}
}

func TestMinorTasksCarryAffinityRoundRobin(t *testing.T) {
	r := newRig(t, 25, Options{TaskAffinity: true, Threads: 5}, 6)
	r.fillEden(t)
	rep := newGCReport(Minor, 1, 5, 20, 0)
	tasks, _ := r.g.buildMinorTasks(r.roots(), rep)
	seen := map[int]bool{}
	for _, task := range tasks {
		switch task.Kind {
		case TaskSteal:
			if task.Affinity != -1 {
				t.Error("steal tasks must not carry affinity")
			}
		default:
			seen[task.Affinity] = true
		}
	}
	for w := 0; w < 5; w++ {
		if !seen[w] {
			t.Errorf("no root task assigned affinity %d (round-robin incomplete)", w)
		}
	}
}

func TestAdaptiveTenuringRespondsToSurvivorPressure(t *testing.T) {
	// Heavy survivor occupancy must lower the tenuring threshold (promote
	// earlier); light occupancy must keep it high.
	mk := func(retainedClusters int) uint8 {
		sim := simkit.New(26)
		defer sim.Close()
		k := cfs.NewKernel(sim, ostopo.PaperTestbed(), cfs.DefaultParams())
		h, err := heap.New(heap.Config{
			EdenBytes: 1 << 20, SurvivorBytes: 64 << 10, OldBytes: 1 << 22, TenureAge: 15,
		})
		if err != nil {
			t.Fatal(err)
		}
		gp := objgraph.DefaultParams()
		gp.StackWindow = retainedClusters
		gp.RetainWindow = retainedClusters
		gp.RetainProb = 0
		m, err := objgraph.NewMutator(0, h, gp, rand.New(rand.NewSource(26)))
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, ok := m.AllocCluster(); !ok {
				break
			}
		}
		g := New(k, h, Options{AdaptiveSizing: true})
		done := false
		k.Spawn("VM", 19, func(e *cfs.Env) {
			g.RunMinorGC(e, RootSet{ThreadRoots: [][]heap.ObjID{m.Roots()}})
			g.Shutdown(e)
			done = true
		})
		for !done && sim.Step() {
		}
		return h.Config().TenureAge
	}
	heavy := mk(64) // survivors overflow half the survivor space
	light := mk(2)  // tiny live set
	if heavy >= light {
		t.Errorf("tenuring threshold: heavy survival %d >= light survival %d; want earlier tenuring under pressure", heavy, light)
	}
	if light < 10 {
		t.Errorf("light survival threshold %d; want near the 15 ceiling", light)
	}
}
