package pscavenge

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cfs"
	"repro/internal/evtrace"
	"repro/internal/heap"
	"repro/internal/objgraph"
	"repro/internal/ostopo"
	"repro/internal/simkit"
)

// runWorkerScript drives a fixed fill/minor/fill/minor/major schedule with
// full event-bus tracing and returns the complete event stream, the GC
// reports, and the kernel counters. loop selects the legacy Compute-per-step
// worker bodies (true) or the plan-driven state machines (false).
func runWorkerScript(t *testing.T, loop bool) ([]evtrace.Event, []*GCReport, cfs.KernelStats) {
	t.Helper()
	sim := simkit.New(31)
	t.Cleanup(sim.Close)
	tr := evtrace.New(1 << 20)
	sim.SetTracer(tr)
	k := cfs.NewKernel(sim, ostopo.PaperTestbed(), cfs.DefaultParams())
	k.SetEvTracer(tr)
	h, err := heap.New(heap.Config{
		EdenBytes: 1 << 20, SurvivorBytes: 1 << 18, OldBytes: 1 << 22, TenureAge: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	var muts []*objgraph.Mutator
	for i := 0; i < 6; i++ {
		m, err := objgraph.NewMutator(i, h, objgraph.DefaultParams(), rng)
		if err != nil {
			t.Fatal(err)
		}
		muts = append(muts, m)
	}
	g := New(k, h, Options{LoopWorkers: loop})

	fill := func() {
		for i := 0; ; i = (i + 1) % len(muts) {
			if _, ok := muts[i].AllocCluster(); !ok {
				return
			}
		}
	}
	roots := func() RootSet {
		rs := RootSet{}
		for _, m := range muts {
			rs.ThreadRoots = append(rs.ThreadRoots, m.Roots())
		}
		return rs
	}

	done := false
	k.Spawn("VMThread", 19, func(e *cfs.Env) {
		fill()
		g.RunMinorGC(e, roots())
		fill()
		g.RunMinorGC(e, roots())
		major := RootSet{}
		for _, m := range muts {
			major.ThreadRoots = append(major.ThreadRoots, m.Roots())
			major.StaticRoots = append(major.StaticRoots, m.Anchor())
		}
		g.RunMajorGC(e, major)
		g.Shutdown(e)
		done = true
	})
	for !done && sim.Now() < 60*simkit.Second {
		if !sim.Step() {
			break
		}
	}
	if !done {
		t.Fatalf("VM thread did not finish by %v", sim.Now())
	}
	k.Shutdown()
	for sim.Step() {
	}
	if n := sim.Clamped(); n != 0 {
		t.Fatalf("simulation clamped %d past-scheduled events, want 0", n)
	}
	return tr.Events(), g.Reports, k.Stats
}

// TestWorkerPlanMatchesLoop is the loop-vs-plan identity oracle for the GC
// worker state machines: the plan-driven workers must replay the legacy
// coroutine loop's behavior exactly. Every bus event (kernel dispatches,
// scheduler timers, monitor hand-offs, task dispatches, steal traffic) and
// every report field must match; only the elision counters — how the work
// was serviced, not what work happened — may differ.
func TestWorkerPlanMatchesLoop(t *testing.T) {
	evLoop, repLoop, ksLoop := runWorkerScript(t, true)
	evPlan, repPlan, ksPlan := runWorkerScript(t, false)

	if len(evLoop) != len(evPlan) {
		t.Fatalf("event stream length diverged: loop=%d plan=%d", len(evLoop), len(evPlan))
	}
	for i := range evLoop {
		if evLoop[i] != evPlan[i] {
			t.Fatalf("event %d diverged:\nloop: %+v\nplan: %+v", i, evLoop[i], evPlan[i])
		}
	}
	if !reflect.DeepEqual(repLoop, repPlan) {
		t.Errorf("GC reports diverged:\nloop: %+v\nplan: %+v", repLoop, repPlan)
	}

	if ksPlan.BodyResumes >= ksLoop.BodyResumes {
		t.Errorf("plan workers did not reduce body resumes: loop=%d plan=%d",
			ksLoop.BodyResumes, ksPlan.BodyResumes)
	}
	if ksPlan.BurstElisions <= ksLoop.BurstElisions {
		t.Errorf("plan workers produced no extra burst elisions: loop=%d plan=%d",
			ksLoop.BurstElisions, ksPlan.BurstElisions)
	}
	// Everything except the elision bookkeeping must be identical.
	ksLoop.BodyResumes, ksPlan.BodyResumes = 0, 0
	ksLoop.PlanElisions, ksPlan.PlanElisions = 0, 0
	ksLoop.BurstElisions, ksPlan.BurstElisions = 0, 0
	if ksLoop != ksPlan {
		t.Errorf("kernel stats diverged beyond elision counters:\nloop: %+v\nplan: %+v", ksLoop, ksPlan)
	}
}
