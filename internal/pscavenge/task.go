package pscavenge

import (
	"repro/internal/heap"
	"repro/internal/simkit"
)

// TaskKind distinguishes the GC task types of §2.2.
type TaskKind int

const (
	// TaskOldToYoungRoots scans a stripe of the remembered set.
	TaskOldToYoungRoots TaskKind = iota
	// TaskScavengeRoots scans a partition of the static/global roots.
	TaskScavengeRoots
	// TaskThreadRoots scans one mutator thread's stack roots.
	TaskThreadRoots
	// TaskSteal is the work-stealing + termination task (one per GC thread).
	TaskSteal
	// TaskMarkRoots marks from a root partition (full GC).
	TaskMarkRoots
	// TaskMarkSteal is the stealing task of the full-GC marking phase.
	TaskMarkSteal
	// TaskCompact is one parallel compaction region task (full GC).
	TaskCompact

	numTaskKinds = 7
)

func (k TaskKind) String() string {
	switch k {
	case TaskOldToYoungRoots:
		return "OldToYoungRootsTask"
	case TaskScavengeRoots:
		return "ScavengeRootsTask"
	case TaskThreadRoots:
		return "ThreadRootsTask"
	case TaskSteal:
		return "StealTask"
	case TaskMarkRoots:
		return "MarkRootsTask"
	case TaskMarkSteal:
		return "MarkStealTask"
	case TaskCompact:
		return "CompactTask"
	}
	return "?"
}

// GCTask is an entry of the global GCTaskQueue.
type GCTask struct {
	Kind     TaskKind
	Roots    []heap.ObjID // root partition (root task kinds)
	Affinity int          // preferred GC thread, -1 = none (§4.1 task affinity)
	Work     simkit.Time  // precomputed work (TaskCompact)

	term *terminator // the GC cycle's terminator (steal kinds)
	rep  *GCReport   // the GC cycle this task belongs to
	id   int64       // unique task id for trace conservation checking
}

// RootSet carries the roots of one collection.
type RootSet struct {
	// ThreadRoots holds each mutator thread's stack/local roots.
	ThreadRoots [][]heap.ObjID
	// StaticRoots holds global roots (classes, statics, JNI handles...).
	StaticRoots []heap.ObjID
}

// partition splits ids into at most n non-empty chunks of balanced size.
func partition(ids []heap.ObjID, n int) [][]heap.ObjID {
	return partitionInto(nil, ids, n)
}

// partitionInto is partition with a reusable destination buffer: the result
// aliases dst's backing array when it has the capacity. The caller must not
// reuse dst while the result is still live.
func partitionInto(dst [][]heap.ObjID, ids []heap.ObjID, n int) [][]heap.ObjID {
	out := dst[:0]
	if len(ids) == 0 || n <= 0 {
		return out
	}
	if n > len(ids) {
		n = len(ids)
	}
	chunk := (len(ids) + n - 1) / n
	for i := 0; i < len(ids); i += chunk {
		end := i + chunk
		if end > len(ids) {
			end = len(ids)
		}
		out = append(out, ids[i:end])
	}
	return out
}
