package pscavenge

import (
	"fmt"

	"repro/internal/cfs"
	"repro/internal/evtrace"
	"repro/internal/jmutex"
)

// manager is the GCTaskManager of §2.2: a HotSpot monitor protecting the
// global GCTaskQueue. GC threads fetch one task at a time (dynamic task
// assignment); when the queue is empty they sleep on the monitor's WaitSet
// until the next GC's NotifyAll.
type manager struct {
	g            *Engine
	mon          *jmutex.Monitor
	queue        []*GCTask
	closed       bool
	taskAffinity bool
}

func newManager(g *Engine, policy jmutex.Policy, taskAffinity bool) *manager {
	// On a multi-JVM machine (Options.Instance > 0) each engine's monitor
	// gets a distinct name, so lock events on the shared bus never mix two
	// monitors' ownership streams. A single JVM keeps the bare HotSpot name
	// (what gcsim -lockprofile and the §3.2 traces look up).
	name := "GCTaskManager"
	if g.Opt.Instance > 0 {
		name = fmt.Sprintf("GCTaskManager#%d", g.Opt.Instance)
	}
	return &manager{
		g:            g,
		mon:          jmutex.New(g.K, name, policy),
		taskAffinity: taskAffinity,
	}
}

// getTask returns the next GC task for worker w, blocking between GCs.
// A nil return means the manager was shut down.
func (m *manager) getTask(e *cfs.Env, w int) *GCTask {
	m.mon.Lock(e)
	for len(m.queue) == 0 {
		if m.closed {
			m.mon.Unlock(e)
			return nil
		}
		m.mon.Wait(e)
	}
	task := m.dequeue(w)
	e.Compute(m.g.Costs.TaskDequeue) // the critical section's work
	m.mon.Unlock(e)
	if m.g.etr != nil {
		m.g.etr.Emit(evtrace.Event{Kind: evtrace.KGetTask, At: int64(e.Now()),
			Core: int32(e.Core()), TID: int32(w), Name: task.Kind.String(),
			Arg1: int64(task.Kind), Arg2: task.id})
	}
	if task.rep != nil {
		task.rep.recordDispatch(w, int(e.Core()), task.Kind)
	}
	return task
}

// dequeue removes the task at the remove end, preferring (when task
// affinity is enabled, §4.1) a task whose affinity matches the requesting
// worker.
func (m *manager) dequeue(w int) *GCTask {
	idx := 0
	if m.taskAffinity {
		for i, t := range m.queue {
			if t.Affinity == w {
				idx = i
				break
			}
		}
	}
	task := m.queue[idx]
	m.queue = append(m.queue[:idx], m.queue[idx+1:]...)
	return task
}

// enqueueAll adds a GC cycle's tasks and wakes the GC threads (NotifyAll
// transfers them from the WaitSet to cxq asleep; the unlock chain then
// wakes them one OnDeck at a time — §2.4).
func (m *manager) enqueueAll(e *cfs.Env, tasks []*GCTask) {
	m.mon.Lock(e)
	m.queue = append(m.queue, tasks...)
	if m.g.etr != nil {
		// One enqueue event per task: the dispatch side of the
		// every-task-dispatched-exactly-once conservation law.
		for _, t := range tasks {
			m.g.etr.Emit(evtrace.Event{Kind: evtrace.KTaskEnqueue, At: int64(e.Now()),
				Core: int32(e.Core()), TID: -1, Name: t.Kind.String(),
				Arg1: t.id, Arg2: int64(t.Kind)})
		}
	}
	m.mon.NotifyAll(e)
	m.mon.Unlock(e)
}

// close shuts the manager down, releasing all sleeping GC threads.
func (m *manager) close(e *cfs.Env) {
	m.mon.Lock(e)
	m.closed = true
	m.mon.NotifyAll(e)
	m.mon.Unlock(e)
}
