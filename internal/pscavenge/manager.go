package pscavenge

import (
	"repro/internal/cfs"
	"repro/internal/evtrace"
	"repro/internal/jmutex"
)

// manager is the GCTaskManager of §2.2: a HotSpot monitor protecting the
// global GCTaskQueue. GC threads fetch one task at a time (dynamic task
// assignment); when the queue is empty they sleep on the monitor's WaitSet
// until the next GC's NotifyAll.
type manager struct {
	g            *Engine
	mon          *jmutex.Monitor
	queue        []*GCTask
	closed       bool
	taskAffinity bool
}

func newManager(g *Engine, policy jmutex.Policy, taskAffinity bool) *manager {
	return &manager{
		g:            g,
		mon:          jmutex.New(g.K, "GCTaskManager", policy),
		taskAffinity: taskAffinity,
	}
}

// getTask returns the next GC task for worker w, blocking between GCs.
// A nil return means the manager was shut down.
func (m *manager) getTask(e *cfs.Env, w int) *GCTask {
	m.mon.Lock(e)
	for len(m.queue) == 0 {
		if m.closed {
			m.mon.Unlock(e)
			return nil
		}
		m.mon.Wait(e)
	}
	task := m.dequeue(w)
	e.Compute(m.g.Costs.TaskDequeue) // the critical section's work
	m.mon.Unlock(e)
	if m.g.etr != nil {
		m.g.etr.Emit(evtrace.Event{Kind: evtrace.KGetTask, At: int64(e.Now()),
			Core: int32(e.Core()), TID: int32(w), Name: task.Kind.String(),
			Arg1: int64(task.Kind), Arg2: int64(len(m.queue))})
	}
	if task.rep != nil {
		task.rep.recordDispatch(w, int(e.Core()), task.Kind)
	}
	return task
}

// dequeue removes the task at the remove end, preferring (when task
// affinity is enabled, §4.1) a task whose affinity matches the requesting
// worker.
func (m *manager) dequeue(w int) *GCTask {
	idx := 0
	if m.taskAffinity {
		for i, t := range m.queue {
			if t.Affinity == w {
				idx = i
				break
			}
		}
	}
	task := m.queue[idx]
	m.queue = append(m.queue[:idx], m.queue[idx+1:]...)
	return task
}

// enqueueAll adds a GC cycle's tasks and wakes the GC threads (NotifyAll
// transfers them from the WaitSet to cxq asleep; the unlock chain then
// wakes them one OnDeck at a time — §2.4).
func (m *manager) enqueueAll(e *cfs.Env, tasks []*GCTask) {
	m.mon.Lock(e)
	m.queue = append(m.queue, tasks...)
	m.mon.NotifyAll(e)
	m.mon.Unlock(e)
}

// close shuts the manager down, releasing all sleeping GC threads.
func (m *manager) close(e *cfs.Env) {
	m.mon.Lock(e)
	m.closed = true
	m.mon.NotifyAll(e)
	m.mon.Unlock(e)
}
