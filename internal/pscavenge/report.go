package pscavenge

import "repro/internal/simkit"

// GCKind distinguishes minor (scavenge) from major (full) collections.
type GCKind int

const (
	// Minor is a young-generation scavenge.
	Minor GCKind = iota
	// Major is a full collection (mark + sweep + compact).
	Major
)

func (k GCKind) String() string {
	if k == Major {
		return "major"
	}
	return "minor"
}

// GCReport captures one collection's behaviour: the Fig. 6 phase
// decomposition, the Fig. 4/8 distribution matrices, and Table 1 steal
// counters.
type GCReport struct {
	Kind  GCKind
	Seq   int
	Start simkit.Time
	End   simkit.Time

	// Phase decomposition (aggregated over GC threads for the parallel
	// shares, VM-thread time for init/final — Fig. 6).
	InitTime        simkit.Time // phase 1: initialization
	RootTaskTime    simkit.Time // phase 2: all non-steal tasks
	StealWorkTime   simkit.Time // phase 2: StealTask, stealing + stolen work
	TerminationTime simkit.Time // phase 2: StealTask, termination protocol
	FinalSyncTime   simkit.Time // phase 3: final synchronization

	// Distribution matrices.
	TasksByThread   [][]int // [thread][TaskKind] executed counts (Fig. 4a/8b)
	GetTaskByCore   [][]int // [thread][core] successful get_task calls (Fig. 4b/8a)
	ThreadsWithWork int     // threads that executed at least one non-steal task

	// Steal accounting for this GC.
	StealAttempts int64
	StealFailures int64
	StolenTasks   int64

	// Collection results.
	CopiedObjects   int64
	CopiedBytes     int64
	PromotedObjects int64
	FreedBytes      int64

	// NUMA locality (when the NUMA cost model is enabled).
	LocalAccesses  int64
	RemoteAccesses int64

	// Heap occupancy around the collection (model bytes).
	Before HeapSnapshot
	After  HeapSnapshot
}

// RemoteAccessRatio returns remote/(local+remote) object accesses.
func (r *GCReport) RemoteAccessRatio() float64 {
	total := r.LocalAccesses + r.RemoteAccesses
	if total == 0 {
		return 0
	}
	return float64(r.RemoteAccesses) / float64(total)
}

// HeapSnapshot captures space occupancy and capacity at one instant.
type HeapSnapshot struct {
	EdenUsed, FromUsed, OldUsed  int64
	EdenCap, SurvivorCap, OldCap int64
}

// Young returns the young-generation occupancy (eden + from survivor).
func (s HeapSnapshot) Young() int64 { return s.EdenUsed + s.FromUsed }

// Total returns the whole-heap occupancy.
func (s HeapSnapshot) Total() int64 { return s.EdenUsed + s.FromUsed + s.OldUsed }

// TotalCap returns the whole-heap capacity.
func (s HeapSnapshot) TotalCap() int64 { return s.EdenCap + 2*s.SurvivorCap + s.OldCap }

func newGCReport(kind GCKind, seq, threads, cores int, start simkit.Time) *GCReport {
	r := &GCReport{Kind: kind, Seq: seq, Start: start}
	r.TasksByThread = make([][]int, threads)
	r.GetTaskByCore = make([][]int, threads)
	for i := 0; i < threads; i++ {
		r.TasksByThread[i] = make([]int, numTaskKinds)
		r.GetTaskByCore[i] = make([]int, cores)
	}
	return r
}

// newReport pops a recycled report (see RecycleReports) and rewinds it, or
// allocates a fresh one. The engine's geometry (threads, cores) is fixed at
// New, so pooled matrices always fit; the check guards against a pool
// polluted by a foreign report.
func (g *Engine) newReport(kind GCKind, seq int, start simkit.Time) *GCReport {
	threads, cores := len(g.queues), g.K.NumCPUs()
	for n := len(g.repFree); n > 0; n = len(g.repFree) {
		r := g.repFree[n-1]
		g.repFree[n-1] = nil
		g.repFree = g.repFree[:n-1]
		if len(r.TasksByThread) != threads ||
			(threads > 0 && len(r.GetTaskByCore[0]) != cores) {
			continue
		}
		tbt, gtc := r.TasksByThread, r.GetTaskByCore
		for i := range tbt {
			for j := range tbt[i] {
				tbt[i][j] = 0
			}
			for j := range gtc[i] {
				gtc[i][j] = 0
			}
		}
		*r = GCReport{Kind: kind, Seq: seq, Start: start,
			TasksByThread: tbt, GetTaskByCore: gtc}
		return r
	}
	return newGCReport(kind, seq, threads, cores, start)
}

// RecycleReports returns every accumulated report — including its
// distribution matrices — to the engine's pool and truncates Reports.
// Callers that consume reports as they go (benchmark loops, long-lived
// services that aggregate and discard) use this to make steady-state
// collections allocation-free; the recycled reports must no longer be
// referenced. Reports first sit on the pending list: a termination
// straggler may still be adding its clamped termination share to the last
// report, so reuse waits for worker quiescence (Engine.reclaim).
func (g *Engine) RecycleReports() {
	for i, r := range g.Reports {
		g.pendReps = append(g.pendReps, r)
		g.Reports[i] = nil
	}
	g.Reports = g.Reports[:0]
}

func (r *GCReport) recordDispatch(worker, core int, kind TaskKind) {
	r.TasksByThread[worker][kind]++
	if core >= 0 && core < len(r.GetTaskByCore[worker]) {
		r.GetTaskByCore[worker][core]++
	}
}

// Pause is the stop-the-world duration of this collection.
func (r *GCReport) Pause() simkit.Time { return r.End - r.Start }

// CoresUsed counts distinct cores on which get_task succeeded — the
// concurrency the collection actually achieved.
func (r *GCReport) CoresUsed() int {
	if len(r.GetTaskByCore) == 0 {
		return 0
	}
	used := make([]bool, len(r.GetTaskByCore[0]))
	n := 0
	for _, row := range r.GetTaskByCore {
		for c, v := range row {
			if v > 0 && !used[c] {
				used[c] = true
				n++
			}
		}
	}
	return n
}

// RootTaskSpread counts GC threads that executed at least one root (non-
// steal) task — the task-balance measure behind Fig. 4(a)/8(b).
func (r *GCReport) RootTaskSpread() int {
	n := 0
	for _, row := range r.TasksByThread {
		if row[TaskOldToYoungRoots]+row[TaskScavengeRoots]+row[TaskThreadRoots]+row[TaskMarkRoots] > 0 {
			n++
		}
	}
	return n
}

// Totals aggregates a slice of reports.
type Totals struct {
	Count           int
	TotalPause      simkit.Time
	InitTime        simkit.Time
	RootTaskTime    simkit.Time
	StealWorkTime   simkit.Time
	TerminationTime simkit.Time
	FinalSyncTime   simkit.Time
	StealAttempts   int64
	StealFailures   int64
	CopiedBytes     int64
	FreedBytes      int64
}

// Aggregate sums reports (optionally filtered by kind; pass -1 for all).
func Aggregate(reports []*GCReport, kind GCKind) Totals {
	var t Totals
	for _, r := range reports {
		if kind >= 0 && r.Kind != kind {
			continue
		}
		t.Count++
		t.TotalPause += r.Pause()
		t.InitTime += r.InitTime
		t.RootTaskTime += r.RootTaskTime
		t.StealWorkTime += r.StealWorkTime
		t.TerminationTime += r.TerminationTime
		t.FinalSyncTime += r.FinalSyncTime
		t.StealAttempts += r.StealAttempts
		t.StealFailures += r.StealFailures
		t.CopiedBytes += r.CopiedBytes
		t.FreedBytes += r.FreedBytes
	}
	return t
}
