package pscavenge

import (
	"math/rand"
	"testing"

	"repro/internal/cfs"
	"repro/internal/heap"
	"repro/internal/objgraph"
	"repro/internal/ostopo"
	"repro/internal/simkit"
)

// BenchmarkMinorGC measures one full engine scavenge — task construction,
// manager dispatch, plan-driven workers, stealing, termination and the
// final sweep — on a steadily refilled eden. The mutator refill runs off
// the timer (as in heap.BenchmarkMinorGCTrace); the timed region is the
// stop-the-world pause machinery itself. Steady-state collections must not
// allocate: task records, terminators and reports are recycled via the
// engine's quiescence-gated pools (bench-guard enforces 0 allocs/op).
func BenchmarkMinorGC(b *testing.B) {
	sim := simkit.New(7)
	defer sim.Close()
	k := cfs.NewKernel(sim, ostopo.PaperTestbed(), cfs.DefaultParams())
	h, err := heap.New(heap.Config{
		EdenBytes: 1 << 20, SurvivorBytes: 1 << 18, OldBytes: 1 << 26, TenureAge: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var muts []*objgraph.Mutator
	for i := 0; i < 6; i++ {
		m, err := objgraph.NewMutator(i, h, objgraph.DefaultParams(), rng)
		if err != nil {
			b.Fatal(err)
		}
		muts = append(muts, m)
	}
	g := New(k, h, Options{})

	fill := func() {
		for i := 0; ; i = (i + 1) % len(muts) {
			if _, ok := muts[i].AllocCluster(); !ok {
				return
			}
		}
	}
	// Root sets are rebuilt in place each collection (mutator Roots()
	// reuses its scratch, so only the slice headers change).
	rs := RootSet{ThreadRoots: make([][]heap.ObjID, len(muts))}
	minorRoots := func() RootSet {
		for i, m := range muts {
			rs.ThreadRoots[i] = m.Roots()
		}
		return RootSet{ThreadRoots: rs.ThreadRoots}
	}
	majorRoots := func() RootSet {
		minorRoots()
		rs.StaticRoots = rs.StaticRoots[:0]
		for _, m := range muts {
			rs.StaticRoots = append(rs.StaticRoots, m.Anchor())
		}
		return RootSet{ThreadRoots: rs.ThreadRoots, StaticRoots: rs.StaticRoots}
	}

	done := false
	k.Spawn("VMThread", 19, func(e *cfs.Env) {
		// The inter-GC mutator phase, off the timer: advance the sim past
		// the termination stragglers' sleeps so every worker is back on
		// the WaitSet (reclaim's quiescence condition, as in a real cell
		// where mutators run for many milliseconds between pauses), wipe
		// the old generation before it makes remembered-set scans
		// quadratic, and refill eden.
		quiesce := func() {
			e.Sleep(4 * g.Costs.TermSleep)
			if _, _, old := h.Usage(); old > 16<<20 {
				g.RunMajorGC(e, majorRoots())
				e.Sleep(4 * g.Costs.TermSleep)
			}
			fill()
		}
		// Warm up: reach steady-state pool and arena capacities (several
		// rounds so reclaimed records from earlier rounds get reused).
		for i := 0; i < 4; i++ {
			quiesce()
			g.RunMinorGC(e, minorRoots())
			g.RecycleReports()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			quiesce()
			b.StartTimer()
			g.RunMinorGC(e, minorRoots())
			g.RecycleReports()
		}
		b.StopTimer()
		g.Shutdown(e)
		done = true
	})
	for !done && sim.Step() {
	}
	if !done {
		b.Fatal("VM thread did not finish")
	}
	k.Shutdown()
	for sim.Step() {
	}
}
