package pscavenge

import "testing"

// TestTerminatorFastThreshold covers the FastParallelTaskTerminator's
// adaptive threshold (§4.2, Algorithm 2): 2·N_live, where N_live is the
// number of threads that have not yet offered termination. As offers
// accumulate, the remaining thieves give up after fewer failed attempts.
func TestTerminatorFastThreshold(t *testing.T) {
	tm := &terminator{total: 8, fast: true}
	for _, tc := range []struct {
		offered, want int
	}{
		{0, 16}, // nobody offered: same as the default 2·N
		{3, 10}, // 5 live threads
		{6, 4},
		{7, 2},  // one live thread left
		{8, 2},  // live clamps to 1: threshold never reaches zero
		{12, 2}, // even past total (defensive), still 2
	} {
		tm.offered = tc.offered
		if got := tm.threshold(0); got != tc.want {
			t.Errorf("fast threshold with offered=%d: got %d, want %d", tc.offered, got, tc.want)
		}
	}
}

// TestTerminatorDefaultThresholdIgnoresOffers: the vanilla terminator uses
// a fixed 2·N however many threads have already offered.
func TestTerminatorDefaultThresholdIgnoresOffers(t *testing.T) {
	tm := &terminator{total: 8}
	for _, offered := range []int{0, 4, 7} {
		tm.offered = offered
		if got := tm.threshold(3); got != 16 {
			t.Errorf("default threshold with offered=%d: got %d, want 16", offered, got)
		}
	}
}

// TestTerminatorNUMAThreshold: with per-thief local-thread counts set
// (Gidra's NUMA termination), the threshold is 2·N_local for that thief.
func TestTerminatorNUMAThreshold(t *testing.T) {
	tm := &terminator{total: 8, localThreads: []int{4, 4, 4, 4, 2, 2, 2, 2}}
	if got := tm.threshold(1); got != 8 {
		t.Errorf("NUMA threshold for thief 1 = %d, want 8", got)
	}
	if got := tm.threshold(5); got != 4 {
		t.Errorf("NUMA threshold for thief 5 = %d, want 4", got)
	}
}

// TestTerminatorFastNUMAThreshold: FastTerminator and NUMA termination
// compose as 2·min(N_live, N_local) — each bounds the set of queues the
// thief could still steal from, so the tighter bound wins. Previously
// `fast` short-circuited and silently ignored localThreads.
func TestTerminatorFastNUMAThreshold(t *testing.T) {
	tm := &terminator{total: 8, fast: true, localThreads: []int{4, 4, 4, 4, 2, 2, 2, 2}}
	for _, tc := range []struct {
		offered, thief, want int
	}{
		{0, 0, 8},  // live=8, local=4: local is tighter
		{0, 5, 4},  // live=8, local=2
		{5, 0, 6},  // live=3, local=4: live is tighter
		{5, 5, 4},  // live=3, local=2
		{7, 0, 2},  // live=1
		{8, 5, 2},  // live clamps to 1, local=2: threshold never 0
		{12, 0, 2}, // defensive: past total
	} {
		tm.offered = tc.offered
		if got := tm.threshold(tc.thief); got != tc.want {
			t.Errorf("fast+NUMA threshold offered=%d thief=%d: got %d, want %d",
				tc.offered, tc.thief, got, tc.want)
		}
	}
}
