// Package schedtrace renders cfs.Trace recordings as ASCII timelines —
// cores down the side, time across — so scheduling phenomena like the
// paper's GC thread stacking are visible at a glance:
//
//	cpu00 |MMMMMMMMMM----GGGGGGGGGGGGGGGGGGGGGG----MMMMMMMMM|
//	cpu01 |MMMMMMMMMM----------------G-------------MMMMMMMMM|
//	cpu02 |MMMMMMMMMM------------------------------MMMMMMMMM|
//	        ^ mutators stop        ^ one core does all GC work
//
// Threads are classified by name: G = GC thread, V = VM thread,
// M = mutator, B = busy loop, o = other; '-' is idle.
package schedtrace

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/cfs"
	"repro/internal/simkit"
)

// Classify maps a thread name to its timeline rune.
func Classify(name string) byte {
	switch {
	case strings.HasPrefix(name, "GCTaskThread"):
		return 'G'
	case strings.HasPrefix(name, "VMThread"):
		return 'V'
	case strings.HasPrefix(name, "mutator"):
		return 'M'
	case strings.HasPrefix(name, "busyloop"):
		return 'B'
	default:
		return 'o'
	}
}

// Options configure rendering.
type Options struct {
	// Width is the number of time buckets (default 100).
	Width int
	// Legend appends the classification legend (default true when zero
	// value is used via Render).
	Legend bool
}

// Render writes an ASCII timeline of tr over [from, to) to w, one row per
// core. Each bucket shows the class of the thread that ran longest in it.
func Render(w io.Writer, tr *cfs.Trace, cores int, from, to simkit.Time, opt Options) {
	width := opt.Width
	if width <= 0 {
		width = 100
	}
	if to <= from {
		fmt.Fprintln(w, "(empty trace window)")
		return
	}
	bucket := (to - from) / simkit.Time(width)
	if bucket <= 0 {
		bucket = 1
	}
	// rows[core][bucket] -> accumulated run time per class.
	type cell map[byte]simkit.Time
	rows := make([][]cell, cores)
	for c := range rows {
		rows[c] = make([]cell, width)
	}
	for _, s := range tr.Window(from, to) {
		core := int(s.Core)
		if core < 0 || core >= cores {
			continue
		}
		cls := Classify(s.Thread.Name)
		start, end := s.Start, s.End // already clipped to [from, to) by Window
		for t := start; t < end; {
			bi := int((t - from) / bucket)
			if bi >= width {
				break
			}
			bEnd := from + simkit.Time(bi+1)*bucket
			if bEnd > end {
				bEnd = end
			}
			if rows[core][bi] == nil {
				rows[core][bi] = cell{}
			}
			rows[core][bi][cls] += bEnd - t
			t = bEnd
		}
	}
	fmt.Fprintf(w, "time %v .. %v (%v per column)\n", from, to, bucket)
	for c := 0; c < cores; c++ {
		var b strings.Builder
		for bi := 0; bi < width; bi++ {
			ch := byte('-')
			var best simkit.Time
			for cls, d := range rows[c][bi] {
				if d > best {
					best, ch = d, cls
				}
			}
			b.WriteByte(ch)
		}
		fmt.Fprintf(w, "cpu%02d |%s|\n", c, b.String())
	}
	if opt.Legend {
		fmt.Fprintln(w, "legend: G=GC thread  V=VM thread  M=mutator  B=busy loop  o=other  -=idle")
	}
}

// CoresActive counts distinct cores on which threads of the given class
// ran within [from, to).
func CoresActive(tr *cfs.Trace, class byte, from, to simkit.Time) int {
	seen := map[int]bool{}
	for _, s := range tr.Window(from, to) {
		if Classify(s.Thread.Name) == class {
			seen[int(s.Core)] = true
		}
	}
	return len(seen)
}

// Validate checks trace invariants: per-core segments must not overlap,
// and no thread may run on two cores at once. It returns the first
// violation found, or nil.
func Validate(tr *cfs.Trace) error {
	type span struct {
		start, end simkit.Time
		seg        cfs.Segment
	}
	byCore := map[int][]span{}
	byThread := map[*cfs.Thread][]span{}
	for _, s := range tr.Segments {
		end := s.End
		if end < 0 {
			continue // still open
		}
		if end < s.Start {
			return fmt.Errorf("schedtrace: segment with negative length on cpu%d", s.Core)
		}
		byCore[int(s.Core)] = append(byCore[int(s.Core)], span{s.Start, end, s})
		byThread[s.Thread] = append(byThread[s.Thread], span{s.Start, end, s})
	}
	check := func(kind string, spans []span) error {
		// Spans are appended in time order by construction; verify.
		for i := 1; i < len(spans); i++ {
			if spans[i].start < spans[i-1].end {
				return fmt.Errorf("schedtrace: overlapping %s segments at %v (%s vs %s)",
					kind, spans[i].start, spans[i-1].seg.Thread.Name, spans[i].seg.Thread.Name)
			}
		}
		return nil
	}
	for c, spans := range byCore {
		if err := check(fmt.Sprintf("cpu%d", c), spans); err != nil {
			return err
		}
	}
	for t, spans := range byThread {
		if err := check("thread "+t.Name, spans); err != nil {
			return err
		}
	}
	return nil
}
