package schedtrace

import (
	"strings"
	"testing"

	"repro/internal/cfs"
	"repro/internal/ostopo"
	"repro/internal/simkit"
)

const ms = simkit.Millisecond

func tracedKernel(t *testing.T, cores int) (*simkit.Sim, *cfs.Kernel, *cfs.Trace) {
	t.Helper()
	sim := simkit.New(1)
	t.Cleanup(sim.Close)
	topo := &ostopo.Topology{PhysCores: cores, SMTWays: 1, Nodes: 1}
	k := cfs.NewKernel(sim, topo, cfs.DefaultParams())
	tr := cfs.NewTrace()
	k.SetTrace(tr)
	return sim, k, tr
}

func TestClassify(t *testing.T) {
	cases := map[string]byte{
		"GCTaskThread#3": 'G',
		"VMThread":       'V',
		"mutator#12":     'M',
		"busyloop#0":     'B',
		"whatever":       'o',
	}
	for name, want := range cases {
		if got := Classify(name); got != want {
			t.Errorf("Classify(%q) = %c, want %c", name, got, want)
		}
	}
}

func TestTraceRecordsSegments(t *testing.T) {
	sim, k, tr := tracedKernel(t, 2)
	th := k.Spawn("mutator#0", 0, func(e *cfs.Env) {
		e.Compute(2 * ms)
		e.Sleep(1 * ms)
		e.Compute(2 * ms)
	})
	for th.State() != cfs.StateDone && sim.Step() {
	}
	tr.CloseOpen(sim.Now())
	if len(tr.Segments) < 2 {
		t.Fatalf("expected >= 2 segments (sleep splits the run), got %d", len(tr.Segments))
	}
	if got := tr.BusyTime(th); got != th.CPUTime {
		t.Errorf("BusyTime = %v, CPUTime = %v; must agree", got, th.CPUTime)
	}
	if err := Validate(tr); err != nil {
		t.Error(err)
	}
}

func TestTraceBusyTimeMatchesCPUTimeUnderContention(t *testing.T) {
	sim, k, tr := tracedKernel(t, 2)
	var ths []*cfs.Thread
	for i := 0; i < 5; i++ {
		ths = append(ths, k.Spawn("mutator#x", 0, func(e *cfs.Env) {
			for j := 0; j < 10; j++ {
				e.Compute(1 * ms)
				e.Sleep(simkit.Time(j%3) * 100 * simkit.Microsecond)
			}
		}))
	}
	done := func() bool {
		for _, th := range ths {
			if th.State() != cfs.StateDone {
				return false
			}
		}
		return true
	}
	for !done() && sim.Step() {
	}
	tr.CloseOpen(sim.Now())
	if err := Validate(tr); err != nil {
		t.Fatal(err)
	}
	for i, th := range ths {
		if tr.BusyTime(th) != th.CPUTime {
			t.Errorf("thread %d: trace busy %v != CPUTime %v", i, tr.BusyTime(th), th.CPUTime)
		}
	}
}

func TestRenderTimeline(t *testing.T) {
	sim, k, tr := tracedKernel(t, 3)
	th := k.Spawn("GCTaskThread#0", 1, func(e *cfs.Env) { e.Compute(10 * ms) })
	for th.State() != cfs.StateDone && sim.Step() {
	}
	tr.CloseOpen(sim.Now())
	var b strings.Builder
	Render(&b, tr, 3, 0, 10*ms, Options{Width: 20, Legend: true})
	out := b.String()
	if !strings.Contains(out, "cpu01 |GGGGGGGGGGGGGGGGGGGG|") {
		t.Errorf("cpu01 row should be all G:\n%s", out)
	}
	if !strings.Contains(out, "cpu00 |--------------------|") {
		t.Errorf("cpu00 row should be idle:\n%s", out)
	}
	if !strings.Contains(out, "legend:") {
		t.Error("legend missing")
	}
}

func TestRenderEmptyWindow(t *testing.T) {
	var b strings.Builder
	Render(&b, cfs.NewTrace(), 2, 10, 10, Options{})
	if !strings.Contains(b.String(), "empty trace window") {
		t.Error("empty window not reported")
	}
}

func TestCoresActive(t *testing.T) {
	sim, k, tr := tracedKernel(t, 4)
	var ths []*cfs.Thread
	for i := 0; i < 3; i++ {
		ths = append(ths, k.Spawn("GCTaskThread#x", ostopo.CoreID(i), func(e *cfs.Env) {
			e.Compute(1 * ms)
		}))
	}
	done := func() bool {
		for _, th := range ths {
			if th.State() != cfs.StateDone {
				return false
			}
		}
		return true
	}
	for !done() && sim.Step() {
	}
	tr.CloseOpen(sim.Now())
	if n := CoresActive(tr, 'G', 0, sim.Now()); n != 3 {
		t.Errorf("CoresActive(G) = %d, want 3", n)
	}
	if n := CoresActive(tr, 'M', 0, sim.Now()); n != 0 {
		t.Errorf("CoresActive(M) = %d, want 0", n)
	}
}

func TestWindowFiltering(t *testing.T) {
	sim, k, tr := tracedKernel(t, 1)
	th := k.Spawn("mutator#0", 0, func(e *cfs.Env) {
		e.Compute(2 * ms)
		e.Sleep(2 * ms)
		e.Compute(2 * ms)
	})
	for th.State() != cfs.StateDone && sim.Step() {
	}
	tr.CloseOpen(sim.Now())
	// Only the first compute overlaps [0, 2ms).
	if n := len(tr.Window(0, 2*ms)); n != 1 {
		t.Errorf("Window(0,2ms) = %d segments, want 1", n)
	}
	// The sleep gap [2.1ms, 3.9ms) overlaps nothing.
	if n := len(tr.Window(2*ms+200_000, 4*ms-200_000)); n != 0 {
		t.Errorf("sleep-gap window = %d segments, want 0", n)
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	tr := cfs.NewTrace()
	// Forge overlapping segments directly.
	sim := simkit.New(1)
	defer sim.Close()
	topo := &ostopo.Topology{PhysCores: 1, SMTWays: 1, Nodes: 1}
	k := cfs.NewKernel(sim, topo, cfs.DefaultParams())
	th := k.Spawn("x", 0, func(e *cfs.Env) {})
	tr.Segments = []cfs.Segment{
		{Core: 0, Thread: th, Start: 0, End: 10},
		{Core: 0, Thread: th, Start: 5, End: 15},
	}
	if err := Validate(tr); err == nil {
		t.Error("Validate missed an overlap")
	}
}

// TestKernelConservationProperty is a property test over random workloads:
// (1) trace invariants hold (no overlaps, no bilocation);
// (2) per-thread trace busy time equals the kernel's CPUTime accounting;
// (3) total busy time never exceeds cores × wall time (no CPU is conjured);
// (4) every thread received exactly the CPU it asked for (work conservation
//
//	at the request level: bodies finish only when their work is done).
func TestKernelConservationProperty(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		sim := simkit.New(seed)
		topo := &ostopo.Topology{PhysCores: 4, SMTWays: 1, Nodes: 2}
		k := cfs.NewKernel(sim, topo, cfs.DefaultParams())
		tr := cfs.NewTrace()
		k.SetTrace(tr)
		rng := sim.Rand()
		type spec struct {
			th   *cfs.Thread
			want simkit.Time
		}
		var specs []spec
		for i := 0; i < 10; i++ {
			chunks := 5 + rng.Intn(20)
			var want simkit.Time
			var plan []simkit.Time
			for c := 0; c < chunks; c++ {
				d := simkit.Time(1+rng.Intn(2000)) * simkit.Microsecond
				plan = append(plan, d)
				want += d
			}
			core := ostopo.CoreID(rng.Intn(topo.NumCPUs()))
			sleepy := rng.Intn(2) == 0
			th := k.Spawn("mutator#p", core, func(e *cfs.Env) {
				for _, d := range plan {
					e.Compute(d)
					if sleepy {
						e.Sleep(simkit.Time(1+e.Rand().Intn(500)) * simkit.Microsecond)
					}
				}
			})
			specs = append(specs, spec{th, want})
		}
		for {
			done := true
			for _, s := range specs {
				if s.th.State() != cfs.StateDone {
					done = false
					break
				}
			}
			if done || !sim.Step() {
				break
			}
		}
		tr.CloseOpen(sim.Now())
		if err := Validate(tr); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var totalBusy simkit.Time
		for _, s := range specs {
			if s.th.State() != cfs.StateDone {
				t.Fatalf("seed %d: thread not done", seed)
			}
			busy := tr.BusyTime(s.th)
			if busy != s.th.CPUTime {
				t.Errorf("seed %d: trace busy %v != CPUTime %v", seed, busy, s.th.CPUTime)
			}
			// CPUTime covers the requested work plus charged context-switch
			// overhead; it must never be below the requested work.
			if s.th.CPUTime < s.want {
				t.Errorf("seed %d: CPUTime %v below requested work %v", seed, s.th.CPUTime, s.want)
			}
			totalBusy += busy
		}
		if cap := simkit.Time(topo.NumCPUs()) * sim.Now(); totalBusy > cap {
			t.Errorf("seed %d: total busy %v exceeds machine capacity %v", seed, totalBusy, cap)
		}
		sim.Close()
	}
}

func TestRenderDegenerateWidths(t *testing.T) {
	sim, k, tr := tracedKernel(t, 1)
	th := k.Spawn("GCTaskThread#0", 0, func(e *cfs.Env) { e.Compute(10) })
	for th.State() != cfs.StateDone && sim.Step() {
	}
	tr.CloseOpen(sim.Now())

	// Window shorter than the width: the bucket size clamps to 1 time
	// unit, so only the first len(window) columns can be non-idle.
	var b strings.Builder
	Render(&b, tr, 1, 0, 5, Options{Width: 20})
	out := b.String()
	if !strings.Contains(out, "cpu00 |GGGGG") {
		t.Errorf("sub-width window misrendered:\n%s", out)
	}
	if strings.Count(out, "G") != 5 {
		t.Errorf("want exactly 5 busy columns for a 5-unit window:\n%s", out)
	}

	// Width 1: the whole window is a single bucket.
	b.Reset()
	Render(&b, tr, 1, 0, 10, Options{Width: 1})
	if !strings.Contains(b.String(), "cpu00 |G|") {
		t.Errorf("width-1 render wrong:\n%s", b.String())
	}
}

func TestRenderSingleCoreAndEmptyTrace(t *testing.T) {
	// A valid window over a trace with no segments renders all-idle rows
	// rather than reporting an empty window.
	var b strings.Builder
	Render(&b, cfs.NewTrace(), 1, 0, 10*ms, Options{Width: 10})
	out := b.String()
	if !strings.Contains(out, "cpu00 |----------|") {
		t.Errorf("empty trace should render an idle row:\n%s", out)
	}
	if strings.Contains(out, "cpu01") {
		t.Errorf("single-core render produced extra rows:\n%s", out)
	}
	if strings.Contains(out, "legend:") {
		t.Error("legend rendered without being requested")
	}

	// Inverted windows are reported, not rendered.
	b.Reset()
	Render(&b, cfs.NewTrace(), 1, 10, 0, Options{})
	if !strings.Contains(b.String(), "empty trace window") {
		t.Error("inverted window not reported")
	}
}
