package core

import (
	"testing"

	"repro/internal/workload"
)

// quick returns a fast-running custom profile for API tests.
func quick() Profile {
	p := workload.Lusearch()
	p.TotalItems = 2000
	return p
}

func TestRunByBenchmarkName(t *testing.T) {
	r, err := Run(Config{Benchmark: "jython", Profile: Profile{}, Mutators: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Benchmark != "jython" || r.MinorGCs == 0 {
		t.Errorf("unexpected result: %s, %d GCs", r.Benchmark, r.MinorGCs)
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if _, err := Run(Config{Benchmark: "nope"}); err == nil {
		t.Error("Run accepted unknown benchmark")
	}
}

func TestRunCustomProfile(t *testing.T) {
	r, err := Run(Config{Profile: quick(), Mutators: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalTime <= 0 {
		t.Error("no time elapsed")
	}
}

func TestCompareShowsImprovement(t *testing.T) {
	van, opt, err := Compare(Config{Profile: quick(), Mutators: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if opt.GCTime >= van.GCTime {
		t.Errorf("optimized GC %v not better than vanilla %v", opt.GCTime, van.GCTime)
	}
}

func TestOptimizationLevels(t *testing.T) {
	for _, o := range []Optimizations{OptNone, OptAffinity, OptSteal, OptAll} {
		r, err := Run(Config{Profile: quick(), Mutators: 16, Optimizations: o, Seed: 4})
		if err != nil {
			t.Fatalf("%v: %v", o, err)
		}
		if r.MinorGCs == 0 {
			t.Errorf("%v: no GCs", o)
		}
		if o.String() == "" {
			t.Error("empty optimization name")
		}
	}
	if Optimizations(9).String() != "Optimizations(9)" {
		t.Error("unknown Optimizations String wrong")
	}
}

func TestBenchmarksCatalog(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 20 { // 10 Table-1 + 9 HiBench variants + cassandra
		t.Errorf("Benchmarks() returned %d entries, want 20", len(bs))
	}
	names := map[string]bool{}
	for _, b := range bs {
		if names[b.Name] {
			t.Errorf("duplicate benchmark %q", b.Name)
		}
		names[b.Name] = true
	}
}

func TestExperimentsCatalogAndRun(t *testing.T) {
	es := Experiments()
	if len(es) != 20 {
		t.Errorf("Experiments() returned %d entries, want 20", len(es))
	}
	r, err := RunExperiment("fig4", 7, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) == 0 || r.String() == "" {
		t.Error("experiment produced no output")
	}
	if _, err := RunExperiment("nope", 7, 20); err == nil {
		t.Error("RunExperiment accepted unknown id")
	}
}

func TestSMTAndBusyLoopKnobs(t *testing.T) {
	r, err := Run(Config{Profile: quick(), Mutators: 16, SMT: true, BusyLoops: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.MinorGCs == 0 {
		t.Error("no GCs with SMT+interference")
	}
}

func TestServerConfig(t *testing.T) {
	r, err := Run(Config{Benchmark: "cassandra", Mutators: 8, Clients: 16, Requests: 500, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if r.Latency.N() != 500 {
		t.Errorf("answered %d requests, want 500", r.Latency.N())
	}
}

func TestKnobCatalogs(t *testing.T) {
	if len(AffinityModes) != 4 || len(StealPolicies) != 4 || len(MutexPolicies) != 4 {
		t.Error("knob catalogs incomplete")
	}
}
