// Package core is the library's public face: it ties the simulated
// multicore kernel, the generational heap, the Parallel Scavenge collector
// and the benchmark workload models into one entry point, and exposes the
// paper's contribution — coordinated GC thread affinity (Algorithm 1) and
// adaptive semi-random work stealing (Algorithm 2) — as configuration.
//
// Quick start:
//
//	res, err := core.Run(core.Config{Benchmark: "lusearch", Mutators: 16})
//	opt, err := core.Run(core.Config{Benchmark: "lusearch", Mutators: 16,
//	    Optimizations: core.OptAll})
//	fmt.Println(res.GCTime, "->", opt.GCTime)
//
// For full control (scheduler parameters, mutex policies, custom workload
// profiles, co-running JVMs) use the subsystem packages directly; the type
// aliases below are the stable names for their option types.
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/affinity"
	"repro/internal/cfs"
	"repro/internal/experiments"
	"repro/internal/jmutex"
	"repro/internal/jvm"
	"repro/internal/ostopo"
	"repro/internal/simkit"
	"repro/internal/taskq"
	"repro/internal/workload"
)

// Aliases for the subsystem option types, so callers need only this
// package for common configuration.
type (
	// Profile is a benchmark workload description (see package workload).
	Profile = workload.Profile
	// Result is a completed run's metrics (see package jvm).
	Result = jvm.Result
	// Topology describes the simulated machine (see package ostopo).
	Topology = ostopo.Topology
	// SchedParams are the CFS model's tunables (see package cfs).
	SchedParams = cfs.Params
	// Time is virtual time in nanoseconds.
	Time = simkit.Time
)

// Optimizations selects which of the paper's fixes are enabled.
type Optimizations int

const (
	// OptNone is the vanilla HotSpot configuration.
	OptNone Optimizations = iota
	// OptAffinity enables dynamic GC thread affinity + task affinity
	// ("w/ GC-affinity" in Fig. 10).
	OptAffinity
	// OptSteal enables semi-random stealing + fast termination
	// ("w/ steal" in Fig. 10).
	OptSteal
	// OptAll enables both ("together").
	OptAll
)

func (o Optimizations) String() string {
	switch o {
	case OptNone:
		return "vanilla"
	case OptAffinity:
		return "w/ GC-affinity"
	case OptSteal:
		return "w/ steal"
	case OptAll:
		return "together"
	}
	return fmt.Sprintf("Optimizations(%d)", int(o))
}

// Config describes one simulated JVM run.
type Config struct {
	// Benchmark names a built-in workload ("lusearch", "xml.validation",
	// "kmeans(large)", "cassandra", ...). Leave empty to use Profile.
	Benchmark string
	// Profile is a custom workload; ignored when Benchmark is set.
	Profile Profile

	// Mutators is the number of application threads (default 16).
	Mutators int
	// GCThreads overrides HotSpot's heuristic (default: 3+ncpus*5/8 above
	// 8 CPUs).
	GCThreads int
	// HeapMB overrides the benchmark's Table-2 heap size.
	HeapMB int

	// Optimizations selects the paper's fixes.
	Optimizations Optimizations

	// Clients/Requests configure server benchmarks (cassandra).
	Clients  int
	Requests int

	// BusyLoops adds CPU-bound interference threads (§5.7).
	BusyLoops int
	// SMT enables hyperthreading on the simulated testbed (§5.8).
	SMT bool

	// Seed makes the whole simulation deterministic. Every value —
	// including 0 — is a distinct, runnable seed; callers that want the
	// conventional default should pass DefaultSeed explicitly (the CLI
	// flag defaults do).
	Seed int64
}

// DefaultSeed is the conventional seed used by the CLI tools, examples,
// and committed fixtures. The library itself never rewrites Config.Seed:
// historically BuildRunSpec silently replaced Seed 0 with 42, which made
// seed 0 unrunnable and aliased two distinct Configs onto one result —
// fatal for any cache keyed by a config digest.
const DefaultSeed int64 = 42

// Canonical returns the normalized form of the configuration: the exact
// Config that Run executes, with every ignored field zeroed so that two
// Configs describing the same run compare (and digest) equal, and two
// Configs describing different runs never collapse onto one form.
//
// Normalizations applied:
//   - Benchmark set → the inline Profile is ignored by Run, so it is
//     zeroed (a stray Profile must not split the cache key).
//   - Benchmark of a batch workload → Clients/Requests are server-only
//     knobs and are zeroed.
//   - Seed is preserved verbatim; canonical forms are injective over
//     seeds (seed 0 stays seed 0).
//
// Canonical is idempotent. Run and Digest both operate on the canonical
// form, so cfg and cfg.Canonical() always produce identical results.
func (c Config) Canonical() Config {
	if c.Benchmark != "" {
		c.Profile = Profile{}
		if p, err := workload.ByName(c.Benchmark); err == nil && p.Class != workload.Server {
			c.Clients, c.Requests = 0, 0
		}
	} else if c.Profile.Class != workload.Server {
		c.Clients, c.Requests = 0, 0
	}
	return c
}

// Digest returns the canonical configuration digest: a SHA-256 over a
// field-stable encoding of Canonical(). Equal digests mean "Run would
// execute the identical simulation", which is what makes digest-keyed
// response caches (cmd/gcsimd) sound. The encoding is an explicit
// field-order rendering — no map iteration anywhere — so the digest is
// byte-stable across processes and repeated calls.
func (c Config) Digest() string {
	n := c.Canonical()
	h := sha256.New()
	// %#v renders structs in declaration order with explicit field names
	// and recurses into the nested value-only types (Profile,
	// objgraph.Params); none of the Config tree contains maps or
	// pointers, so the rendering is deterministic.
	fmt.Fprintf(h, "gcsim-config/v1|%#v", n)
	return hex.EncodeToString(h.Sum(nil))
}

// Run executes one simulated JVM to completion.
func Run(cfg Config) (*Result, error) {
	spec, err := BuildRunSpec(cfg)
	if err != nil {
		return nil, err
	}
	return jvm.Run(spec)
}

// BuildRunSpec resolves a Config into the jvm.RunSpec that Run would
// execute, so callers (e.g. the CLI) can attach observability hooks —
// an event tracer, a metrics registry, a scheduling timeline — before
// running.
func BuildRunSpec(cfg Config) (jvm.RunSpec, error) {
	cfg = cfg.Canonical()
	p := cfg.Profile
	if cfg.Benchmark != "" {
		var err error
		p, err = workload.ByName(cfg.Benchmark)
		if err != nil {
			return jvm.RunSpec{}, err
		}
	}
	jcfg := jvm.Config{
		Profile:   p,
		Mutators:  cfg.Mutators,
		GCThreads: cfg.GCThreads,
		HeapMB:    cfg.HeapMB,
		Clients:   cfg.Clients,
		Requests:  cfg.Requests,
		Seed:      cfg.Seed,
	}
	switch cfg.Optimizations {
	case OptAffinity:
		jcfg = jcfg.WithAffinityOnly()
	case OptSteal:
		jcfg = jcfg.WithStealOnly()
	case OptAll:
		jcfg = jcfg.WithOptimizations()
	}
	topo := ostopo.PaperTestbed()
	if cfg.SMT {
		topo = ostopo.PaperTestbedSMT()
	}
	return jvm.RunSpec{
		Config:    jcfg,
		Topo:      topo,
		Seed:      cfg.Seed,
		BusyLoops: cfg.BusyLoops,
	}, nil
}

// Compare runs a configuration vanilla and with all optimizations, and
// returns both results — the one-call version of the paper's headline
// experiment.
func Compare(cfg Config) (vanilla, optimized *Result, err error) {
	cfg.Optimizations = OptNone
	vanilla, err = Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	cfg.Optimizations = OptAll
	optimized, err = Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	return vanilla, optimized, nil
}

// Benchmarks returns all built-in benchmark profiles.
func Benchmarks() []Profile {
	out := workload.Table1Benchmarks()
	for _, sz := range []workload.DataSize{workload.SizeSmall, workload.SizeLarge, workload.SizeHuge} {
		out = append(out, workload.Kmeans(sz), workload.Wordcount(sz), workload.Pagerank(sz))
	}
	return append(out, workload.Cassandra())
}

// Experiments lists the reproducible paper artifacts (tables/figures).
func Experiments() []experiments.Experiment { return experiments.All() }

// RunExperiment regenerates one paper artifact by id ("fig10", "tab1", ...).
// scale divides workload sizes (1 = the full configuration).
func RunExperiment(id string, seed int64, scale int) (*experiments.Result, error) {
	e, err := experiments.ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run(experiments.Options{Seed: seed, Scale: scale}), nil
}

// Expose the enum-ish knobs for advanced callers assembling jvm.Config
// directly.
var (
	// AffinityModes lists the GC thread placement schemes.
	AffinityModes = []affinity.Mode{affinity.ModeNone, affinity.ModeStatic, affinity.ModeDynamic, affinity.ModeNUMANode}
	// StealPolicies lists the work-stealing victim policies.
	StealPolicies = []taskq.PolicyKind{taskq.KindBestOf2, taskq.KindSemiRandom, taskq.KindNUMARestricted, taskq.KindSmartStealing}
	// MutexPolicies lists the monitor disciplines.
	MutexPolicies = []jmutex.Policy{jmutex.PolicyHotSpot, jmutex.PolicyFairFIFO, jmutex.PolicyNoFastPath, jmutex.PolicyWakeAll}
)
