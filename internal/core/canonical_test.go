package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"repro/internal/gclog"
)

// resultDigest hashes everything a run reports, the same way the simcheck
// sweep digests cells.
func resultDigest(t *testing.T, cfg Config) string {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "total=%d gc=%d minor=%d major=%d ops=%.6f\n",
		res.TotalTime, res.GCTime, res.MinorGCs, res.MajorGCs, res.ThroughputOPS)
	if err := gclog.WriteRunJSON(h, res.Reports, res.Monitor, res.Steal, nil); err != nil {
		t.Fatalf("WriteRunJSON: %v", err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Seed 0 is a real seed: it must run (not alias to the default 42), and it
// must produce a different simulation than seed 42. This is the regression
// test for BuildRunSpec's former `if seed == 0 { seed = 42 }` rewrite.
func TestSeedZeroIsDistinctAndRunnable(t *testing.T) {
	base := Config{Profile: quick(), Mutators: 4, GCThreads: 4}

	cfg0 := base
	cfg0.Seed = 0
	cfg42 := base
	cfg42.Seed = 42

	spec0, err := BuildRunSpec(cfg0)
	if err != nil {
		t.Fatal(err)
	}
	if spec0.Seed != 0 || spec0.Config.Seed != 0 {
		t.Fatalf("BuildRunSpec rewrote seed 0 to %d/%d", spec0.Seed, spec0.Config.Seed)
	}

	d0 := resultDigest(t, cfg0)
	d42 := resultDigest(t, cfg42)
	if d0 == d42 {
		t.Fatalf("seed 0 and seed 42 alias to one result digest %s", d0)
	}
	// Same-seed replay stays deterministic.
	if again := resultDigest(t, cfg0); again != d0 {
		t.Fatalf("seed 0 replay digest changed: %s != %s", again, d0)
	}
}

// Canonical forms must be injective over seeds: distinct seeds may never
// collapse onto one canonical form or one digest.
func TestCanonicalInjectiveOverSeeds(t *testing.T) {
	base := Config{Benchmark: "lusearch", Mutators: 16}
	seen := map[string]int64{}
	for _, seed := range []int64{-2, -1, 0, 1, 2, 41, 42, 43, 1 << 40} {
		c := base
		c.Seed = seed
		if got := c.Canonical().Seed; got != seed {
			t.Errorf("Canonical rewrote seed %d to %d", seed, got)
		}
		d := c.Digest()
		if prev, dup := seen[d]; dup {
			t.Errorf("seeds %d and %d share digest %s", prev, seed, d)
		}
		seen[d] = seed
	}
}

func TestCanonicalIdempotentAndStable(t *testing.T) {
	cfg := Config{Benchmark: "cassandra", Mutators: 8, Clients: 64, Requests: 5000, Seed: 7}
	once := cfg.Canonical()
	if twice := once.Canonical(); twice != once {
		t.Fatalf("Canonical not idempotent: %+v != %+v", twice, once)
	}
	if a, b := cfg.Digest(), cfg.Digest(); a != b {
		t.Fatalf("Digest not stable across calls: %s != %s", a, b)
	}
}

// A stray inline Profile next to a named Benchmark is ignored by Run, so
// it must not split the digest; server-only knobs on a batch benchmark
// likewise.
func TestCanonicalZeroesIgnoredFields(t *testing.T) {
	plain := Config{Benchmark: "lusearch", Mutators: 16, Seed: 3}
	noisy := plain
	noisy.Profile = quick() // ignored: Benchmark wins
	if plain.Digest() != noisy.Digest() {
		t.Errorf("ignored Profile split the digest")
	}

	batch := Config{Benchmark: "lusearch", Mutators: 16, Seed: 3, Clients: 64, Requests: 9999}
	if batch.Digest() != plain.Digest() {
		t.Errorf("server-only Clients/Requests split a batch benchmark's digest")
	}

	// On a server benchmark Clients/Requests are load-bearing.
	srvA := Config{Benchmark: "cassandra", Clients: 32, Requests: 1000, Seed: 3}
	srvB := srvA
	srvB.Clients = 64
	if srvA.Digest() == srvB.Digest() {
		t.Errorf("cassandra client counts alias to one digest")
	}
}

// Distinct knobs must produce distinct digests (a spot check across every
// Config axis the service cache keys on).
func TestDigestSeparatesKnobs(t *testing.T) {
	base := Config{Benchmark: "lusearch", Mutators: 16, Seed: 42}
	seen := map[string]bool{base.Digest(): true}
	for _, v := range []Config{
		{Benchmark: "xml.validation", Mutators: 16, Seed: 42},
		{Benchmark: "lusearch", Mutators: 8, Seed: 42},
		{Benchmark: "lusearch", Mutators: 16, GCThreads: 4, Seed: 42},
		{Benchmark: "lusearch", Mutators: 16, HeapMB: 200, Seed: 42},
		{Benchmark: "lusearch", Mutators: 16, Optimizations: OptAll, Seed: 42},
		{Benchmark: "lusearch", Mutators: 16, BusyLoops: 2, Seed: 42},
		{Benchmark: "lusearch", Mutators: 16, SMT: true, Seed: 42},
	} {
		d := v.Digest()
		if seen[d] {
			t.Errorf("config %+v digest collides", v)
		}
		seen[d] = true
	}
}
