package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ReportSchema names the merged sweep report format.
const ReportSchema = "gcsim-sweep/v1"

// Report is the merged, machine-readable result of one fleet sweep. It is
// a pure function of the sweep definition (base seed, cell count, items)
// and the per-cell records — byte-identical however the sweep was
// executed. Execution facts (worker count, steals, wall time) are
// deliberately absent; they live in Stats and on stderr.
type Report struct {
	Schema   string `json:"schema"`
	BaseSeed int64  `json:"base_seed"`
	Cells    int    `json:"cells"`
	Items    int    `json:"items,omitempty"`
	Bare     bool   `json:"bare,omitempty"` // bare-metal replay digests included

	// Partial is the number of recorded cells when the sweep was drained
	// before completion; omitted (zero) for a full sweep.
	Partial int `json:"partial,omitempty"`

	Failed     int    `json:"failed"`
	Events     uint64 `json:"events"`
	Violations int    `json:"violations"`
	Drops      uint64 `json:"drops"`

	// Pathologies counts cells per postmortem classifier verdict,
	// serialized with sorted keys (json.Marshal sorts map keys).
	Pathologies map[string]int `json:"pathologies,omitempty"`

	// SweepDigest is sha256 over "index:digest\n" lines in index order —
	// one line summarizing the whole sweep, comparable across runs.
	SweepDigest string `json:"sweep_digest"`

	Rows []CellRecord `json:"rows"`
}

// BuildReport folds an index-sorted record slice into a Report.
// full is the intended cell count; when fewer records exist the report is
// marked Partial.
func BuildReport(baseSeed int64, full, items int, bare bool, records []CellRecord) *Report {
	rep := &Report{
		Schema:   ReportSchema,
		BaseSeed: baseSeed,
		Cells:    full,
		Items:    items,
		Bare:     bare,
		Rows:     records,
	}
	if len(records) < full {
		rep.Partial = len(records)
	}
	h := sha256.New()
	for _, r := range records {
		fmt.Fprintf(h, "%d:%s\n", r.Index, r.Digest)
		rep.Events += r.Events
		rep.Violations += r.Violations
		rep.Drops += r.Drops
		if r.Failed {
			rep.Failed++
		}
		if r.Pathology != "" {
			if rep.Pathologies == nil {
				rep.Pathologies = make(map[string]int)
			}
			rep.Pathologies[r.Pathology]++
		}
	}
	rep.SweepDigest = hex.EncodeToString(h.Sum(nil))
	return rep
}

// WriteJSON writes the report as indented JSON with a trailing newline —
// the exact bytes the determinism matrix compares.
func (rep *Report) WriteJSON(w io.Writer) error {
	// Rows are required sorted; enforce rather than trust.
	sort.Slice(rep.Rows, func(i, j int) bool { return rep.Rows[i].Index < rep.Rows[j].Index })
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
