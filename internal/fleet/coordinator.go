package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"sort"
	"sync"
	"time"
)

// ErrDrained is wrapped into Run's error when the sweep was stopped by
// context cancellation (SIGTERM drain) before every cell completed. The
// partial Result returned alongside it holds every record collected.
var ErrDrained = errors.New("fleet: sweep drained before completion")

// Config describes one fleet sweep.
type Config struct {
	// Cells is the size of the cell space [0, Cells).
	Cells int

	// Payloads optionally carries one opaque JSON payload per cell
	// (len == Cells). Nil for self-deriving spaces where the index alone
	// names the cell (check.CellAt).
	Payloads []json.RawMessage

	// Workers is the number of worker processes (<= 0 means 1).
	Workers int

	// Shards is the number of contiguous shards the cell space is cut
	// into (<= 0 means 4x Workers, the classic over-partitioning that
	// gives stealing something to rebalance). More shards = finer-grained
	// balancing, more dispatch traffic.
	Shards int

	// Inflight caps shards concurrently assigned to one worker (<= 0
	// means 2: one running, one prefetched so the worker never idles a
	// pipe round-trip between shards). Restriction, not oversubscription:
	// queue depth beyond that only hides progress from the balancer.
	Inflight int

	// MinSteal is the smallest remaining tail worth stealing (<= 0 means
	// 2 cells). Smaller remainders finish faster locally than a steal
	// round-trip.
	MinSteal int

	// DisableSteal turns cross-shard work stealing off (for measuring
	// what stealing buys).
	DisableSteal bool

	// Heartbeat is the ping interval and the cadence of deadline checks
	// (<= 0 means 500ms).
	Heartbeat time.Duration

	// Deadline is the per-worker progress deadline: a worker holding
	// cells that delivers no record for this long is declared hung,
	// killed, and its shards re-dispatched (<= 0 means 30s). Must exceed
	// the worst single-cell simulation time.
	Deadline time.Duration

	// Retries bounds how many times one shard may be re-dispatched after
	// worker failures before the sweep aborts (<= 0 means 3).
	Retries int

	// Command builds worker process i. The process must speak the worker
	// protocol on its stdin/stdout (ServeWorker). Stderr is inherited.
	Command func(i int) (*exec.Cmd, error)

	// OnRecord, when set, observes each cell record as it first arrives
	// (arrival order — not deterministic; the merged Result is).
	OnRecord func(CellRecord)

	// Log, when set, receives coordinator progress diagnostics.
	Log io.Writer
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Shards <= 0 {
		c.Shards = 4 * c.Workers
	}
	if c.Shards > c.Cells && c.Cells > 0 {
		c.Shards = c.Cells
	}
	if c.Inflight <= 0 {
		c.Inflight = 2
	}
	if c.MinSteal <= 0 {
		c.MinSteal = 2
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 500 * time.Millisecond
	}
	if c.Deadline <= 0 {
		c.Deadline = 30 * time.Second
	}
	if c.Retries <= 0 {
		c.Retries = 3
	}
	return c
}

// Stats count what the coordinator did and survived. They describe the
// execution, not the result, so they live outside the deterministic
// report.
type Stats struct {
	Workers      int
	Shards       int
	Steals       int // successful cross-shard steals (non-empty tail moved)
	Redispatches int // shard remainders re-queued after a worker loss
	WorkerDeaths int // workers lost to exit/EOF while holding cells
	WorkerHangs  int // workers killed by the progress deadline
	Drained      bool
}

// Result is a completed (or drained) sweep: records sorted by cell index
// plus execution stats.
type Result struct {
	Records []CellRecord
	Stats   Stats
}

// shard is the coordinator's view of one contiguous cell range.
type shard struct {
	id       int
	lo, hi   int // current bounds; hi shrinks when the tail is stolen
	next     int // first index without a record
	retries  int
	worker   int  // owning worker, -1 when pending
	stealing bool // a MsgSteal is outstanding
}

func (s *shard) remaining() int { return s.hi - s.next }

// worker is the coordinator's view of one worker process.
type worker struct {
	id           int
	cmd          *exec.Cmd
	stdin        io.WriteCloser
	out          *outbox
	alive        bool
	hello        bool
	assigned     map[int]*shard
	lastProgress time.Time
}

// outbox is an unbounded per-worker send queue drained by a dedicated
// writer goroutine. The coordinator goroutine must never block on a
// worker's stdin: a MsgShard frame for a payload sweep can be megabytes,
// and a worker whose stdout pipe is also full would close the cycle
// coordinator→stdin / worker→stdout / reader→events / coordinator and
// deadlock the sweep. Unbounded is safe: outstanding traffic per worker
// is a handful of shard assignments (Inflight-capped) plus pings, and a
// worker that stops reading is killed by the progress deadline.
type outbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*Envelope
	closed bool
}

func newOutbox() *outbox {
	ob := &outbox{}
	ob.cond = sync.NewCond(&ob.mu)
	return ob
}

// put enqueues one frame; frames queued after close are dropped (the
// worker is dead, its shards are already re-queued).
func (ob *outbox) put(env *Envelope) {
	ob.mu.Lock()
	if !ob.closed {
		ob.queue = append(ob.queue, env)
		ob.cond.Signal()
	}
	ob.mu.Unlock()
}

// get blocks for the next frame; ok=false means the outbox closed and the
// writer goroutine should exit.
func (ob *outbox) get() (*Envelope, bool) {
	ob.mu.Lock()
	defer ob.mu.Unlock()
	for len(ob.queue) == 0 && !ob.closed {
		ob.cond.Wait()
	}
	if len(ob.queue) == 0 {
		return nil, false
	}
	env := ob.queue[0]
	ob.queue = ob.queue[1:]
	return env, true
}

func (ob *outbox) close() {
	ob.mu.Lock()
	ob.closed = true
	ob.cond.Broadcast()
	ob.mu.Unlock()
}

// event is one message (or failure) from a worker's reader goroutine.
type event struct {
	wid int
	env Envelope
	err error
}

type coordinator struct {
	cfg     Config
	workers []*worker
	shards  []*shard
	pending []*shard // FIFO of unassigned shards
	records []*CellRecord
	got     int
	events  chan event
	stats   Stats
	pingSeq uint64
}

// Run executes one sweep: partition [0,Cells) into shards, spawn workers,
// dispatch, steal, recover, merge. Cancelling ctx triggers a graceful
// drain: no new cells start, in-flight cells finish and are collected,
// and Run returns the partial Result with an ErrDrained error.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Cells <= 0 {
		return nil, fmt.Errorf("fleet: no cells to sweep")
	}
	if cfg.Payloads != nil && len(cfg.Payloads) != cfg.Cells {
		return nil, fmt.Errorf("fleet: %d payloads for %d cells", len(cfg.Payloads), cfg.Cells)
	}
	if cfg.Command == nil {
		return nil, fmt.Errorf("fleet: Config.Command is required")
	}

	co := &coordinator{
		cfg:     cfg,
		records: make([]*CellRecord, cfg.Cells),
		events:  make(chan event, 4*cfg.Workers),
	}
	co.partition()
	if err := co.spawnAll(); err != nil {
		co.killAll()
		return nil, err
	}
	defer co.killAll()
	return co.loop(ctx)
}

// partition cuts [0,Cells) into Shards contiguous ranges whose sizes
// differ by at most one — deterministic, so "shard 7 of this sweep" names
// the same cells everywhere.
func (co *coordinator) partition() {
	n, s := co.cfg.Cells, co.cfg.Shards
	base, extra := n/s, n%s
	lo := 0
	for i := 0; i < s; i++ {
		size := base
		if i < extra {
			size++
		}
		sh := &shard{id: i, lo: lo, hi: lo + size, next: lo, worker: -1}
		co.shards = append(co.shards, sh)
		co.pending = append(co.pending, sh)
		lo += size
	}
	co.stats.Shards = s
}

func (co *coordinator) logf(format string, args ...any) {
	if co.cfg.Log != nil {
		fmt.Fprintf(co.cfg.Log, "fleet: "+format+"\n", args...)
	}
}

func (co *coordinator) spawnAll() error {
	for i := 0; i < co.cfg.Workers; i++ {
		w, err := co.spawn(i)
		if err != nil {
			return fmt.Errorf("fleet: spawn worker %d: %w", i, err)
		}
		co.workers = append(co.workers, w)
	}
	co.stats.Workers = len(co.workers)
	return nil
}

func (co *coordinator) spawn(i int) (*worker, error) {
	cmd, err := co.cfg.Command(i)
	if err != nil {
		return nil, err
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	w := &worker{
		id: i, cmd: cmd, stdin: stdin, out: newOutbox(), alive: true,
		assigned:     make(map[int]*shard),
		lastProgress: time.Now(),
	}
	go func() {
		r := stdout
		for {
			var env Envelope
			err := ReadMsg(r, &env)
			if err != nil {
				co.events <- event{wid: i, err: err}
				return
			}
			co.events <- event{wid: i, env: env}
		}
	}()
	// Writer goroutine: drains the outbox onto stdin so the coordinator
	// never blocks on a full pipe. A failed write surfaces as an error
	// event (same path as a reader EOF) and reaps the worker.
	go func() {
		for {
			env, ok := w.out.get()
			if !ok {
				return
			}
			if err := WriteMsg(stdin, env); err != nil {
				w.out.close()
				co.events <- event{wid: i, err: fmt.Errorf("stdin write: %w", err)}
				return
			}
		}
	}()
	return w, nil
}

// send queues one frame for a worker's writer goroutine. Write failures
// are detected asynchronously: the writer surfaces an error event and the
// event loop reaps the worker, re-queueing its shards.
func (co *coordinator) send(w *worker, env *Envelope) {
	if !w.alive {
		return
	}
	w.out.put(env)
}

// loop is the coordinator main loop: one goroutine owns all state;
// worker readers only feed the events channel.
func (co *coordinator) loop(ctx context.Context) (*Result, error) {
	ticker := time.NewTicker(co.cfg.Heartbeat)
	defer ticker.Stop()
	draining := false
	done := ctx.Done()

	co.dispatch()
	for co.got < co.cfg.Cells {
		select {
		case ev := <-co.events:
			if ev.wid < 0 {
				// Drain cut-off sentinel: in-flight cells did not land within
				// one deadline (a worker hung mid-drain). Cut and return the
				// partial result instead of waiting forever.
				co.logf("drain deadline expired with %d cells still in flight; cutting", co.inFlight())
				return co.result(), fmt.Errorf("%w: drain deadline expired: %d of %d cells done", ErrDrained, co.got, co.cfg.Cells)
			}
			if ev.err != nil {
				co.reapWorker(co.workers[ev.wid], false)
			} else {
				co.handle(co.workers[ev.wid], &ev.env)
			}
		case <-ticker.C:
			// No pings while draining: workers are finishing a last cell and
			// exiting, and a ping racing a clean exit turns its bye into a
			// spurious write-failure death in the stats.
			if !draining {
				co.pingSeq++
				for _, w := range co.workers {
					if w.alive {
						co.send(w, &Envelope{Type: MsgPing, Seq: co.pingSeq})
					}
				}
				co.checkDeadlines()
			}
		case <-done:
			// Nil the channel so this permanently-ready case never selects
			// again — otherwise the loop busy-spins at full CPU for the
			// whole drain.
			done = nil
			draining = true
			co.stats.Drained = true
			co.logf("drain requested; stopping dispatch, collecting in-flight cells")
			for _, w := range co.workers {
				co.send(w, &Envelope{Type: MsgDrain})
			}
			// Give in-flight cells one deadline to land, then cut.
			go func() {
				time.Sleep(co.cfg.Deadline)
				co.events <- event{wid: -1}
			}()
		}
		if draining {
			if co.inFlight() == 0 {
				return co.result(), fmt.Errorf("%w: %d of %d cells done", ErrDrained, co.got, co.cfg.Cells)
			}
			continue
		}
		if !co.dispatch() {
			return co.result(), fmt.Errorf("fleet: sweep failed: %d of %d cells done, no workers left or shard retries exhausted", co.got, co.cfg.Cells)
		}
	}
	return co.result(), nil
}

// inFlight counts cells assigned to live workers and not yet recorded.
func (co *coordinator) inFlight() int {
	n := 0
	for _, w := range co.workers {
		if !w.alive {
			continue
		}
		for _, sh := range w.assigned {
			n += sh.remaining()
		}
	}
	return n
}

// handle processes one worker message.
func (co *coordinator) handle(w *worker, env *Envelope) {
	switch env.Type {
	case MsgHello:
		w.hello = true
		if env.Seq != ProtoVersion {
			co.logf("worker %d protocol version %d != %d; reaping", w.id, env.Seq, ProtoVersion)
			co.reapWorker(w, false)
		}
	case MsgPong:
		// Liveness only; progress is tracked by records.
	case MsgCell:
		if env.Record == nil {
			return
		}
		w.lastProgress = time.Now()
		co.record(*env.Record)
		if sh, ok := w.assigned[env.Shard]; ok {
			if i := env.Record.Index; i >= sh.next && i < sh.hi {
				sh.next = i + 1
			}
		}
	case MsgShardDone:
		w.lastProgress = time.Now()
		sh, ok := w.assigned[env.Shard]
		if !ok {
			return
		}
		delete(w.assigned, env.Shard)
		sh.worker = -1
		// Defensive: a shard-done with unrecorded cells (a worker that
		// skipped) re-queues the gap instead of silently losing cells.
		if sh.next < sh.hi {
			co.logf("worker %d finished shard %d with %d cells unrecorded; re-queueing", w.id, sh.id, sh.remaining())
			co.requeue(sh)
		}
	case MsgStolen:
		sh, ok := w.assigned[env.Shard]
		if !ok {
			return
		}
		sh.stealing = false
		if env.Hi <= env.Cut { // empty steal: victim had nothing left
			return
		}
		w.lastProgress = time.Now()
		// The victim now owns [lo, Cut); [Cut, Hi) returns to the pool as
		// a fresh shard and is dispatched to whoever is idle.
		sh.hi = env.Cut
		child := &shard{
			id: len(co.shards), lo: env.Cut, hi: env.Hi, next: env.Cut,
			worker: -1, retries: sh.retries,
		}
		co.shards = append(co.shards, child)
		co.pending = append(co.pending, child)
		co.stats.Steals++
		co.logf("stole cells [%d,%d) of shard %d from worker %d", env.Cut, env.Hi, env.Shard, w.id)
		if sh.next >= sh.hi {
			delete(w.assigned, sh.id)
			sh.worker = -1
		}
	case MsgBye:
		// Clean exit (drain acknowledgement); reap without re-dispatch
		// panic — remaining shards re-queue normally.
		co.reapWorker(w, true)
	}
}

// record stores one cell record, first writer wins. Records are
// deterministic per index, so a duplicate from a re-dispatched shard is
// byte-equal anyway; keeping the first makes that a non-event.
func (co *coordinator) record(rec CellRecord) {
	if rec.Index < 0 || rec.Index >= len(co.records) || co.records[rec.Index] != nil {
		return
	}
	r := rec
	co.records[rec.Index] = &r
	co.got++
	if co.cfg.OnRecord != nil {
		co.cfg.OnRecord(rec)
	}
}

// reapWorker marks a worker dead, kills the process, and re-queues the
// unfinished remainder of every shard it held. clean says the worker said
// goodbye (drain) rather than dying.
func (co *coordinator) reapWorker(w *worker, clean bool) {
	if !w.alive {
		return
	}
	w.alive = false
	w.out.close()
	w.stdin.Close() // also unblocks a writer goroutine stuck mid-frame
	if w.cmd.Process != nil {
		w.cmd.Process.Kill()
	}
	go w.cmd.Wait() // reap the child; exit status is not interesting here
	if !clean && len(w.assigned) > 0 {
		co.stats.WorkerDeaths++
	}
	for id, sh := range w.assigned {
		delete(w.assigned, id)
		sh.worker = -1
		sh.stealing = false
		if sh.next < sh.hi {
			sh.retries++
			co.stats.Redispatches++
			co.logf("worker %d lost with cells [%d,%d) of shard %d; re-dispatch attempt %d",
				w.id, sh.next, sh.hi, sh.id, sh.retries)
			co.requeue(sh)
		}
	}
}

// requeue returns a shard remainder to the pending pool as-is (its next
// pointer already excludes recorded cells).
func (co *coordinator) requeue(sh *shard) {
	co.pending = append(co.pending, sh)
}

// checkDeadlines kills workers that hold cells but have made no progress
// for the configured deadline — the hung-worker detector (a crashed
// worker is caught faster, by EOF).
func (co *coordinator) checkDeadlines() {
	for _, w := range co.workers {
		if !w.alive || len(w.assigned) == 0 {
			continue
		}
		if time.Since(w.lastProgress) > co.cfg.Deadline {
			co.logf("worker %d made no progress for %v; declaring it hung", w.id, co.cfg.Deadline)
			co.stats.WorkerHangs++
			co.reapWorker(w, false)
		}
	}
}

// dispatch hands pending shards to live workers under the in-flight cap,
// then triggers steals for idle workers. Returns false when the sweep can
// no longer finish: cells remain but no live worker can receive work, or
// a shard ran out of retries.
func (co *coordinator) dispatch() bool {
	for len(co.pending) > 0 {
		sh := co.pending[0]
		if sh.retries > co.cfg.Retries {
			co.logf("shard %d exceeded %d re-dispatches; aborting", sh.id, co.cfg.Retries)
			return false
		}
		w := co.pickWorker()
		if w == nil {
			break // every live worker is at its in-flight cap
		}
		co.pending = co.pending[1:]
		sh.worker = w.id
		w.assigned[sh.id] = sh
		env := &Envelope{Type: MsgShard, Shard: sh.id, Lo: sh.next, Hi: sh.hi}
		if co.cfg.Payloads != nil {
			env.Payloads = co.cfg.Payloads[sh.next:sh.hi]
		}
		co.send(w, env)
	}
	if co.alive() == 0 {
		return co.got >= co.cfg.Cells
	}
	if len(co.pending) == 0 && !co.cfg.DisableSteal {
		co.maybeSteal()
	}
	return true
}

func (co *coordinator) alive() int {
	n := 0
	for _, w := range co.workers {
		if w.alive {
			n++
		}
	}
	return n
}

// pickWorker returns the live worker with the fewest assigned shards
// still under the in-flight cap (nil when none).
func (co *coordinator) pickWorker() *worker {
	var best *worker
	for _, w := range co.workers {
		if !w.alive || !w.hello || len(w.assigned) >= co.cfg.Inflight {
			continue
		}
		if best == nil || len(w.assigned) < len(best.assigned) {
			best = w
		}
	}
	return best
}

// maybeSteal asks the straggler with the largest remaining tail to yield
// half of it when some worker is idle and nothing is pending — dynamic
// load balancing across shards, per Wang et al.
func (co *coordinator) maybeSteal() {
	idle := false
	for _, w := range co.workers {
		if w.alive && w.hello && len(w.assigned) == 0 {
			idle = true
			break
		}
	}
	if !idle {
		return
	}
	var victim *shard
	var victimW *worker
	for _, w := range co.workers {
		if !w.alive {
			continue
		}
		for _, sh := range w.assigned {
			if sh.stealing {
				continue
			}
			if victim == nil || sh.remaining() > victim.remaining() {
				victim, victimW = sh, w
			}
		}
	}
	if victim == nil || victim.remaining() < 2*co.cfg.MinSteal {
		return
	}
	keep := victim.next + victim.remaining()/2
	victim.stealing = true
	co.send(victimW, &Envelope{Type: MsgSteal, Shard: victim.id, Cut: keep})
}

// killAll terminates every worker process.
func (co *coordinator) killAll() {
	for _, w := range co.workers {
		if w.alive {
			w.alive = false
			w.out.close()
			w.stdin.Close()
			if w.cmd.Process != nil {
				w.cmd.Process.Kill()
			}
			w.cmd.Wait()
		}
	}
}

// result assembles the index-sorted record slice.
func (co *coordinator) result() *Result {
	res := &Result{Stats: co.stats}
	for _, r := range co.records {
		if r != nil {
			res.Records = append(res.Records, *r)
		}
	}
	sort.Slice(res.Records, func(i, j int) bool { return res.Records[i].Index < res.Records[j].Index })
	return res
}
