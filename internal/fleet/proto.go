// Package fleet is the sharded multi-process sweep engine: a coordinator
// that partitions a prefix-stable cell space into shards and dispatches
// them to worker processes speaking length-prefixed JSON over their
// stdin/stdout, with cross-shard work stealing for stragglers, bounded
// per-worker in-flight caps, heartbeat/deadline failure detection, and
// bounded re-dispatch of shards lost to crashed or hung workers.
//
// The paper's own medicine, applied to our harness: the experiment runner
// used to fan a few hundred cells across one process's cores with a
// static submission order, which serializes exactly the way HotSpot's GC
// task distribution does when work and scheduling interact badly. The
// fleet layer scales the same cell spaces (check.Cells,
// experiments.GridIndexes) to 100k+ cells across processes, and keeps
// determinism as the fleet-level correctness oracle: the merged
// gcsim-sweep/v1 report is byte-identical regardless of shard count,
// worker count, steal interleaving, or injected worker kills.
package fleet

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// ProtoVersion is the coordinator/worker wire protocol version; the
// worker's hello carries it and the coordinator refuses a mismatch.
const ProtoVersion = 1

// MaxFrame bounds one protocol frame. Frames beyond it are a protocol
// error, not an allocation: a corrupt or malicious length prefix cannot
// make ReadMsg allocate gigabytes.
const MaxFrame = 16 << 20

// MsgType tags one protocol envelope.
type MsgType string

// Coordinator→worker: MsgShard assigns cells [Lo,Hi) as shard Shard
// (Payloads optionally carries one opaque JSON payload per cell);
// MsgSteal asks the worker to give back the unstarted tail of shard
// Shard, cutting no earlier than Cut; MsgPing probes liveness; MsgDrain
// asks the worker to finish its current cell, stop, and exit.
//
// Worker→coordinator: MsgHello announces readiness (Seq carries the
// protocol version); MsgCell delivers one cell's record; MsgShardDone
// marks shard Shard fully executed; MsgStolen answers a MsgSteal with the
// actual cut point (cells [Cut,Hi) now belong to the coordinator again);
// MsgPong answers a ping; MsgBye announces a clean exit.
const (
	MsgHello     MsgType = "hello"
	MsgShard     MsgType = "shard"
	MsgCell      MsgType = "cell"
	MsgShardDone MsgType = "shard_done"
	MsgSteal     MsgType = "steal"
	MsgStolen    MsgType = "stolen"
	MsgPing      MsgType = "ping"
	MsgPong      MsgType = "pong"
	MsgDrain     MsgType = "drain"
	MsgBye       MsgType = "bye"
)

// Envelope is the one wire message shape. Which fields are meaningful
// depends on Type (see the MsgType docs); unused fields stay zero and are
// omitted from the encoding.
type Envelope struct {
	Type MsgType `json:"type"`

	Shard int `json:"shard,omitempty"`
	Lo    int `json:"lo,omitempty"`
	Hi    int `json:"hi,omitempty"`
	Cut   int `json:"cut,omitempty"`

	// Seq is the ping/pong correlation counter, and the protocol version
	// on MsgHello.
	Seq uint64 `json:"seq,omitempty"`

	// Record is the cell result on MsgCell.
	Record *CellRecord `json:"record,omitempty"`

	// Payloads optionally carries one opaque per-cell payload for each
	// index in [Lo,Hi) of a MsgShard. Empty for self-deriving cell spaces
	// (check.CellAt needs only the index).
	Payloads []json.RawMessage `json:"payloads,omitempty"`

	// Err carries a worker-side infrastructure error on MsgBye.
	Err string `json:"err,omitempty"`
}

// CellRecord is one cell's merged-report row — everything the coordinator
// needs to fold a cell into the gcsim-sweep/v1 report. Every field is a
// deterministic function of the cell index (and the sweep's fixed
// configuration), never of which worker ran it or when: that is what
// makes the merged report byte-identical across shard counts, worker
// counts, steal interleavings, and injected kills.
type CellRecord struct {
	Index int `json:"index"`

	// Digest is the cell's observable-output digest (check sweeps), or
	// empty for payload sweeps that only carry a Body.
	Digest string `json:"digest,omitempty"`

	Events     uint64 `json:"events,omitempty"`
	Violations int    `json:"violations,omitempty"`
	Drops      uint64 `json:"drops,omitempty"`
	Pathology  string `json:"pathology,omitempty"`

	Failed  bool   `json:"failed,omitempty"`
	Summary string `json:"summary,omitempty"`

	// Body is the cell's opaque result for payload sweeps (e.g. a gcsimd
	// prediction); empty for check sweeps.
	Body json.RawMessage `json:"body,omitempty"`
}

// WriteMsg frames env as a 4-byte big-endian length followed by its JSON
// encoding. The caller serializes concurrent writers.
func WriteMsg(w io.Writer, env *Envelope) error {
	body, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("fleet: marshal %s: %w", env.Type, err)
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("fleet: %s frame is %d bytes, max %d", env.Type, len(body), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadMsg reads one frame into env. Garbage input — an oversized or zero
// length prefix, a truncated frame, bytes that are not JSON, JSON that is
// not an envelope, or an envelope without a type — is an error, never a
// panic or an unbounded allocation. io.EOF is returned untouched at a
// clean frame boundary so callers can distinguish an orderly close from
// corruption.
func ReadMsg(r io.Reader, env *Envelope) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("fleet: short frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return fmt.Errorf("fleet: frame length %d out of range (1..%d)", n, MaxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return fmt.Errorf("fleet: truncated %d-byte frame: %w", n, err)
	}
	*env = Envelope{}
	if err := json.Unmarshal(body, env); err != nil {
		return fmt.Errorf("fleet: bad frame: %w", err)
	}
	if env.Type == "" {
		return fmt.Errorf("fleet: frame missing type")
	}
	return nil
}
