package fleet

import (
	"encoding/json"

	"repro/internal/check"
)

// CheckRunner adapts the check-package cell space to the fleet worker: the
// cell index alone names the cell (check.CellAt is prefix-stable and O(1)
// in the index), so no payloads travel on the wire.
func CheckRunner(baseSeed int64, opts check.RunOptions) RunFunc {
	return func(index int, _ json.RawMessage) (CellRecord, error) {
		cell := check.CellAt(baseSeed, index)
		res := check.RunCellOpts(cell, opts)
		return checkRecord(index, res), nil
	}
}

// checkRecord flattens a CellResult into its report row. Every field is a
// deterministic function of the cell (Summary includes the cell string and
// violation text, never timing), which is what the byte-identity oracle
// rides on.
func checkRecord(index int, res *check.CellResult) CellRecord {
	rec := CellRecord{
		Index:      index,
		Digest:     res.Digest,
		Events:     res.Events,
		Violations: res.Total + len(res.BlameViolations),
		Drops:      res.Drops,
		Pathology:  res.Pathology,
	}
	if res.Failed() {
		rec.Failed = true
		rec.Summary = res.Summary()
	}
	return rec
}
