package fleet

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"

	"repro/internal/check"
)

// The recovery and determinism tests need real worker *processes* — the
// failure modes under test (os.Exit mid-shard, a hang that keeps
// answering pings) do not exist in-process. TestMain turns the test
// binary into a protocol worker when FLEET_TEST_WORKER is set, so tests
// re-exec themselves as the fleet.
func TestMain(m *testing.M) {
	if mode := os.Getenv("FLEET_TEST_WORKER"); mode != "" {
		os.Exit(testWorkerMain(mode))
	}
	os.Exit(m.Run())
}

func testWorkerMain(mode string) int {
	var opts WorkerOptions
	opts.KillAfter, _ = strconv.Atoi(os.Getenv("FLEET_TEST_KILL"))
	opts.HangAfter, _ = strconv.Atoi(os.Getenv("FLEET_TEST_HANG"))
	var run RunFunc
	switch mode {
	case "check":
		seed, _ := strconv.ParseInt(os.Getenv("FLEET_TEST_SEED"), 10, 64)
		items, _ := strconv.Atoi(os.Getenv("FLEET_TEST_ITEMS"))
		run = CheckRunner(seed, check.RunOptions{Items: items, SkipBare: true})
	case "echo":
		// Trivial deterministic cells: digest is a pure function of the
		// index. Fast enough to exercise coordination, not simulation.
		run = func(index int, _ json.RawMessage) (CellRecord, error) {
			sum := sha256.Sum256([]byte(fmt.Sprintf("cell-%d", index)))
			return CellRecord{Index: index, Digest: hex.EncodeToString(sum[:]), Events: uint64(index)}, nil
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown FLEET_TEST_WORKER mode %q\n", mode)
		return 2
	}
	if err := ServeWorker(os.Stdin, os.Stdout, run, opts); err != nil {
		fmt.Fprintln(os.Stderr, "fleet test worker:", err)
		return 1
	}
	return 0
}

// selfCommand builds worker processes by re-execing the test binary.
// faultEnv, if non-empty, is applied to worker 0 only — one faulty
// worker among healthy peers, the recovery scenario the issue names.
func selfCommand(t testing.TB, mode string, env []string, faultEnv ...string) func(int) (*exec.Cmd, error) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	return func(i int) (*exec.Cmd, error) {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), "FLEET_TEST_WORKER="+mode)
		cmd.Env = append(cmd.Env, env...)
		if i == 0 {
			cmd.Env = append(cmd.Env, faultEnv...)
		}
		cmd.Stderr = os.Stderr
		return cmd, nil
	}
}

const (
	matrixSeed  = 42
	matrixItems = 150
	matrixCells = 48
)

func checkEnv() []string {
	return []string{
		"FLEET_TEST_SEED=" + strconv.Itoa(matrixSeed),
		"FLEET_TEST_ITEMS=" + strconv.Itoa(matrixItems),
	}
}

// reportBytes runs one sweep and renders the merged gcsim-sweep/v1
// report — the exact bytes the determinism oracle compares.
func reportBytes(t *testing.T, cfg Config) ([]byte, *Result) {
	t.Helper()
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("fleet.Run(workers=%d shards=%d): %v", cfg.Workers, cfg.Shards, err)
	}
	rep := BuildReport(matrixSeed, cfg.Cells, matrixItems, false, res.Records)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes(), res
}

// TestReportByteIdenticalAcrossMatrix is the tentpole oracle: the merged
// report must not depend on how the sweep was sharded, how many worker
// processes ran it, or how stealing interleaved them.
func TestReportByteIdenticalAcrossMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns many worker processes")
	}
	baseline, _ := reportBytes(t, Config{
		Cells: matrixCells, Workers: 1, Shards: 1, DisableSteal: true,
		Command: selfCommand(t, "check", checkEnv()),
	})
	if !bytes.Contains(baseline, []byte(ReportSchema)) {
		t.Fatalf("baseline report missing schema %q", ReportSchema)
	}
	for _, shards := range []int{1, 4, 16} {
		for _, workers := range []int{1, 2, 8} {
			name := fmt.Sprintf("shards=%d/workers=%d", shards, workers)
			got, _ := reportBytes(t, Config{
				Cells: matrixCells, Workers: workers, Shards: shards,
				Command: selfCommand(t, "check", checkEnv()),
			})
			if !bytes.Equal(got, baseline) {
				t.Errorf("%s: report differs from baseline (%d vs %d bytes)", name, len(got), len(baseline))
			}
		}
	}
}

// TestWorkerKillRecovered injects a mid-shard os.Exit into worker 0 and
// requires the survivors to re-run its lost cells, byte-identically.
func TestWorkerKillRecovered(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	baseline, _ := reportBytes(t, Config{
		Cells: matrixCells, Workers: 1, Shards: 1, DisableSteal: true,
		Command: selfCommand(t, "check", checkEnv()),
	})
	got, res := reportBytes(t, Config{
		Cells: matrixCells, Workers: 2, Shards: 8,
		Command: selfCommand(t, "check", checkEnv(), "FLEET_TEST_KILL=3"),
	})
	if !bytes.Equal(got, baseline) {
		t.Errorf("report with injected kill differs from baseline")
	}
	if res.Stats.WorkerDeaths == 0 {
		t.Errorf("expected at least one worker death, stats=%+v", res.Stats)
	}
	if res.Stats.Redispatches == 0 {
		t.Errorf("expected shard re-dispatch after kill, stats=%+v", res.Stats)
	}
}

// TestWorkerHangRecovered injects a hang (the worker claims a cell,
// stops, but keeps answering pings) and requires the progress deadline —
// not the liveness check — to rescue the shard.
func TestWorkerHangRecovered(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out a progress deadline")
	}
	baseline, _ := reportBytes(t, Config{
		Cells: matrixCells, Workers: 1, Shards: 1, DisableSteal: true,
		Command: selfCommand(t, "check", checkEnv()),
	})
	got, res := reportBytes(t, Config{
		Cells: matrixCells, Workers: 2, Shards: 8,
		Heartbeat: 50 * time.Millisecond, Deadline: time.Second,
		Command: selfCommand(t, "check", checkEnv(), "FLEET_TEST_HANG=2"),
	})
	if !bytes.Equal(got, baseline) {
		t.Errorf("report with injected hang differs from baseline")
	}
	if res.Stats.WorkerHangs == 0 {
		t.Errorf("expected the deadline to declare a hang, stats=%+v", res.Stats)
	}
}

// TestStealRebalances gives one worker the whole cell space as a single
// shard and requires the idle peer to steal part of it, without
// perturbing the report.
func TestStealRebalances(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	baseline, _ := reportBytes(t, Config{
		Cells: matrixCells, Workers: 1, Shards: 1, DisableSteal: true,
		Command: selfCommand(t, "check", checkEnv()),
	})
	got, res := reportBytes(t, Config{
		Cells: matrixCells, Workers: 2, Shards: 1,
		Heartbeat: 50 * time.Millisecond,
		Command:   selfCommand(t, "check", checkEnv()),
	})
	if !bytes.Equal(got, baseline) {
		t.Errorf("report with stealing differs from baseline")
	}
	if res.Stats.Steals == 0 {
		t.Errorf("expected at least one steal with 1 shard across 2 workers, stats=%+v", res.Stats)
	}
}

// TestDrainReturnsPartial cancels the sweep context up front: the
// coordinator must stop dispatching, collect what is in flight, and
// return a partial, index-sorted result wrapped in ErrDrained.
func TestDrainReturnsPartial(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, Config{
		Cells: 64, Workers: 1, Shards: 16, Deadline: 5 * time.Second,
		Command: selfCommand(t, "echo", nil),
	})
	if !errors.Is(err, ErrDrained) {
		t.Fatalf("want ErrDrained, got %v", err)
	}
	if res == nil || !res.Stats.Drained {
		t.Fatalf("want drained stats, got %+v", res)
	}
	if len(res.Records) >= 64 {
		t.Errorf("drain collected all %d cells; expected a partial result", len(res.Records))
	}
	for i := 1; i < len(res.Records); i++ {
		if res.Records[i-1].Index >= res.Records[i].Index {
			t.Fatalf("partial records not index-sorted at %d", i)
		}
	}
	rep := BuildReport(matrixSeed, 64, 0, false, res.Records)
	if rep.Partial != len(res.Records) {
		t.Errorf("Partial=%d, want %d", rep.Partial, len(res.Records))
	}
}

// TestDrainDeadlineCuts hangs the only worker, then drains mid-sweep: the
// in-flight cells can never land, so the drain deadline must cut the
// sweep and return the partial result wrapped in ErrDrained. (Regression:
// the cut-off sentinel used to be handled as a worker event and indexed
// workers[-1], panicking the coordinator instead of returning.)
func TestDrainDeadlineCuts(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes and waits out a drain deadline")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := Run(ctx, Config{
		Cells: 32, Workers: 1, Shards: 2,
		Heartbeat: 50 * time.Millisecond, Deadline: 500 * time.Millisecond,
		Command: selfCommand(t, "echo", nil, "FLEET_TEST_HANG=1"),
		// Drain as soon as the first record lands, while the worker still
		// holds (and will never finish) the rest of its shard.
		OnRecord: func(CellRecord) { cancel() },
	})
	if !errors.Is(err, ErrDrained) {
		t.Fatalf("want ErrDrained from the drain deadline, got %v", err)
	}
	if res == nil || !res.Stats.Drained {
		t.Fatalf("want drained stats, got %+v", res)
	}
	if n := len(res.Records); n == 0 || n >= 32 {
		t.Errorf("got %d records, want a non-empty partial result", n)
	}
}

// TestRetriesExhaustedFails runs a single worker that always crashes:
// once the shard burns its re-dispatch budget the sweep must fail
// loudly instead of spinning.
func TestRetriesExhaustedFails(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	_, err := Run(context.Background(), Config{
		Cells: 16, Workers: 1, Shards: 2, Retries: 1,
		Command: selfCommand(t, "echo", nil, "FLEET_TEST_KILL=1"),
	})
	if err == nil || errors.Is(err, ErrDrained) {
		t.Fatalf("want a sweep-failed error, got %v", err)
	}
}

// BenchmarkFleetSweep measures coordinator throughput (cells/sec) with
// trivial cells — protocol and dispatch overhead, not simulation time.
func BenchmarkFleetSweep(b *testing.B) {
	cells := b.N
	if cells < 64 {
		cells = 64
	}
	b.ResetTimer()
	start := time.Now()
	res, err := Run(context.Background(), Config{
		Cells: cells, Workers: 2,
		Command: selfCommand(b, "echo", nil),
	})
	if err != nil {
		b.Fatalf("fleet.Run: %v", err)
	}
	if len(res.Records) != cells {
		b.Fatalf("got %d records, want %d", len(res.Records), cells)
	}
	b.ReportMetric(float64(cells)/time.Since(start).Seconds(), "cells/sec")
}
