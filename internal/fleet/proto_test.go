package fleet

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	in := Envelope{
		Type: MsgShard, Shard: 7, Lo: 10, Hi: 20,
		Payloads: []json.RawMessage{
			json.RawMessage(`{"a":1}`),
			json.RawMessage(`null`),
		},
	}
	var buf bytes.Buffer
	if err := WriteMsg(&buf, &in); err != nil {
		t.Fatalf("WriteMsg: %v", err)
	}
	var out Envelope
	if err := ReadMsg(&buf, &out); err != nil {
		t.Fatalf("ReadMsg: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("roundtrip mismatch:\n in=%+v\nout=%+v", in, out)
	}

	// A record-bearing frame survives too.
	rec := CellRecord{Index: 3, Digest: "abc", Events: 9, Violations: 1,
		Failed: true, Summary: "boom", Body: json.RawMessage(`{"x":2}`)}
	in = Envelope{Type: MsgCell, Shard: 1, Record: &rec}
	buf.Reset()
	if err := WriteMsg(&buf, &in); err != nil {
		t.Fatalf("WriteMsg: %v", err)
	}
	if err := ReadMsg(&buf, &out); err != nil {
		t.Fatalf("ReadMsg: %v", err)
	}
	if out.Record == nil || !reflect.DeepEqual(*out.Record, rec) {
		t.Fatalf("record mismatch: %+v", out.Record)
	}
}

// frame builds a length-prefixed frame with an arbitrary (possibly lying)
// length header.
func frame(length uint32, body []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], length)
	return append(hdr[:], body...)
}

func TestReadMsgGarbageInput(t *testing.T) {
	valid, _ := json.Marshal(Envelope{Type: MsgPing, Seq: 1})
	cases := []struct {
		name string
		in   []byte
		want string // substring of the expected error; "" means io.EOF
	}{
		{"empty input is clean EOF", nil, ""},
		{"zero length prefix", frame(0, nil), "out of range"},
		{"oversized length prefix", frame(MaxFrame+1, nil), "out of range"},
		{"truncated header", []byte{0, 0}, "short frame header"},
		{"truncated body", frame(100, []byte("only a few bytes")), "truncated"},
		{"body is not JSON", frame(9, []byte("not json!")), "bad frame"},
		{"body is JSON but not an envelope", frame(7, []byte(`[1,2,3]`)), "bad frame"},
		{"envelope missing type", frame(2, []byte(`{}`)), "missing type"},
		{"valid frame then truncated next header", append(frame(uint32(len(valid)), valid), 0, 1), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := bytes.NewReader(tc.in)
			var env Envelope
			err := ReadMsg(r, &env)
			if tc.name == "valid frame then truncated next header" {
				if err != nil {
					t.Fatalf("first frame should parse, got %v", err)
				}
				if err = ReadMsg(r, &env); err == nil ||
					!strings.Contains(err.Error(), "short frame header") {
					t.Fatalf("second read: want short-header error, got %v", err)
				}
				return
			}
			if tc.want == "" {
				if !errors.Is(err, io.EOF) {
					t.Fatalf("want io.EOF, got %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestWriteMsgRejectsOversizedFrame(t *testing.T) {
	big := make([]byte, MaxFrame)
	for i := range big {
		big[i] = 'a'
	}
	env := Envelope{Type: MsgCell, Record: &CellRecord{
		Index: 1, Body: json.RawMessage(`"` + string(big) + `"`),
	}}
	if err := WriteMsg(io.Discard, &env); err == nil {
		t.Fatal("want oversized-frame error, got nil")
	}
}

// FuzzReadMsg asserts the codec never panics or over-allocates on
// arbitrary bytes: every input yields either a parsed envelope with a
// non-empty type or an error.
func FuzzReadMsg(f *testing.F) {
	valid, _ := json.Marshal(Envelope{Type: MsgShard, Shard: 1, Lo: 0, Hi: 4})
	f.Add(frame(uint32(len(valid)), valid))
	f.Add(frame(0, nil))
	f.Add(frame(1<<31, nil))
	f.Add([]byte("garbage with no header at all"))
	f.Add(frame(4, []byte(`{}`)))
	f.Fuzz(func(t *testing.T, data []byte) {
		var env Envelope
		err := ReadMsg(bytes.NewReader(data), &env)
		if err == nil && env.Type == "" {
			t.Fatal("nil error but empty envelope type")
		}
	})
}
