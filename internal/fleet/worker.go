package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// RunFunc executes one cell. index names the cell in the sweep's
// prefix-stable space; payload is the opaque per-cell payload of payload
// sweeps (nil for self-deriving spaces). The returned record's Index must
// equal index. An error is folded into a Failed record, so one broken
// cell never takes its shard's worker down.
type RunFunc func(index int, payload json.RawMessage) (CellRecord, error)

// WorkerOptions carry the fault-injection knobs of the recovery harness.
// Zero values inject nothing.
type WorkerOptions struct {
	// KillAfter > 0 crashes the process (os.Exit, no goodbye, mid-shard)
	// after that many cells have completed — the coordinator must detect
	// the EOF and re-dispatch the rest of the shard.
	KillAfter int
	// HangAfter > 0 stops executing cells after that many have completed
	// while keeping the process alive and answering pings — the
	// coordinator's progress deadline, not its liveness check, must
	// catch it.
	HangAfter int
}

// workerState is the shared state between the worker's control-message
// reader and its cell-executing main loop.
type workerState struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*workerShard // FIFO of assigned shards; queue[0] is current
	drain  bool           // finish the current cell, then exit
	closed bool           // coordinator went away (EOF on stdin)

	wmu sync.Mutex // serializes frames onto stdout
	out io.Writer
}

// workerShard is one assigned shard as the worker sees it: next is the
// first cell not yet started, hi shrinks when the coordinator steals the
// tail.
type workerShard struct {
	id       int
	next, hi int
	payloads []json.RawMessage // nil, or one payload per original [lo,hi) cell
	lo       int               // original lo, to index payloads
}

func (ws *workerState) send(env *Envelope) error {
	ws.wmu.Lock()
	defer ws.wmu.Unlock()
	return WriteMsg(ws.out, env)
}

// ServeWorker runs the worker side of the protocol: read shard
// assignments and control messages from in, execute cells with run, and
// stream records to out. It returns when the coordinator drains it, when
// in reaches EOF (the coordinator died — workers never outlive their
// coordinator), or on a protocol error.
func ServeWorker(in io.Reader, out io.Writer, run RunFunc, opts WorkerOptions) error {
	ws := &workerState{out: out}
	ws.cond = sync.NewCond(&ws.mu)

	if err := ws.send(&Envelope{Type: MsgHello, Seq: ProtoVersion}); err != nil {
		return err
	}

	// The reader goroutine keeps consuming control traffic while the main
	// loop simulates: pings are answered immediately (liveness stays
	// observable even mid-cell, which is how the coordinator tells a hung
	// worker from a dead one), and steal requests are answered against
	// the live shard state, so a straggler yields its unstarted tail
	// without waiting for its current cell.
	readErr := make(chan error, 1)
	go func() {
		readErr <- ws.readLoop(in)
	}()

	err := ws.mainLoop(run, opts)
	// Unblock the reader's pipe read by exiting; the coordinator closes
	// our stdin once it sees the bye.
	if err != nil {
		return err
	}
	select {
	case err := <-readErr:
		if err != nil && err != io.EOF {
			return err
		}
	default:
	}
	return nil
}

// readLoop consumes coordinator frames until EOF or error.
func (ws *workerState) readLoop(in io.Reader) error {
	for {
		var env Envelope
		if err := ReadMsg(in, &env); err != nil {
			ws.mu.Lock()
			ws.closed = true
			ws.cond.Broadcast()
			ws.mu.Unlock()
			if err == io.EOF {
				return io.EOF
			}
			return err
		}
		switch env.Type {
		case MsgPing:
			ws.send(&Envelope{Type: MsgPong, Seq: env.Seq})
		case MsgShard:
			ws.mu.Lock()
			ws.queue = append(ws.queue, &workerShard{
				id: env.Shard, next: env.Lo, hi: env.Hi,
				payloads: env.Payloads, lo: env.Lo,
			})
			ws.cond.Broadcast()
			ws.mu.Unlock()
		case MsgSteal:
			ws.steal(env.Shard, env.Cut)
		case MsgDrain:
			ws.mu.Lock()
			ws.drain = true
			ws.cond.Broadcast()
			ws.mu.Unlock()
		default:
			// Unknown control frames are ignored for forward compatibility.
		}
	}
}

// steal answers a coordinator steal request for shard id: cut the shard's
// unstarted tail no earlier than keep (the coordinator's proposed split
// point) and hand it back. The reply's Cut is authoritative — the worker
// will run exactly [original lo, Cut), the coordinator re-owns [Cut, hi).
func (ws *workerState) steal(id, keep int) {
	ws.mu.Lock()
	cut := -1
	hi := -1
	for _, sh := range ws.queue {
		if sh.id != id {
			continue
		}
		cut = keep
		if cut < sh.next {
			cut = sh.next // never un-run a started cell
		}
		if cut > sh.hi {
			cut = sh.hi // nothing left to give
		}
		hi = sh.hi
		sh.hi = cut
		break
	}
	ws.mu.Unlock()
	if cut < 0 {
		// Shard already finished (or never ours): nothing to yield. Hi==Cut
		// tells the coordinator the steal came up empty.
		ws.send(&Envelope{Type: MsgStolen, Shard: id, Cut: 0, Hi: 0})
		return
	}
	ws.send(&Envelope{Type: MsgStolen, Shard: id, Cut: cut, Hi: hi})
}

// mainLoop claims cells from the assigned shards in order and executes
// them. One cell at a time: the worker's in-process concurrency is the
// coordinator's to control by how many shards it keeps in flight, not
// something the worker multiplies on its own.
func (ws *workerState) mainLoop(run RunFunc, opts WorkerOptions) error {
	ran := 0
	for {
		ws.mu.Lock()
		for {
			// Drop exhausted shards, announcing each completion.
			for len(ws.queue) > 0 && ws.queue[0].next >= ws.queue[0].hi {
				done := ws.queue[0]
				ws.queue = ws.queue[1:]
				ws.mu.Unlock()
				if err := ws.send(&Envelope{Type: MsgShardDone, Shard: done.id}); err != nil {
					return err
				}
				ws.mu.Lock()
			}
			if ws.drain || ws.closed || len(ws.queue) > 0 {
				break
			}
			ws.cond.Wait()
		}
		if ws.drain || ws.closed {
			drained := ws.drain
			ws.mu.Unlock()
			if drained {
				return ws.send(&Envelope{Type: MsgBye})
			}
			return nil // coordinator vanished; exit quietly
		}
		sh := ws.queue[0]
		idx := sh.next
		sh.next++
		var payload json.RawMessage
		if sh.payloads != nil && idx-sh.lo < len(sh.payloads) {
			payload = sh.payloads[idx-sh.lo]
		}
		ws.mu.Unlock()

		if opts.HangAfter > 0 && ran >= opts.HangAfter {
			// Injected hang: the cell was claimed but never runs and never
			// reports. Pings keep flowing from the reader goroutine, so only
			// the coordinator's progress deadline can rescue the shard.
			// (Sleeping, not select{}: once the coordinator closes stdin the
			// reader exits, and a bare select would trip the runtime's
			// deadlock detector while we wait to be killed.)
			for {
				time.Sleep(time.Hour)
			}
		}

		rec := runOne(run, idx, payload)
		ran++
		if err := ws.send(&Envelope{Type: MsgCell, Shard: sh.id, Record: &rec}); err != nil {
			return err
		}

		if opts.KillAfter > 0 && ran >= opts.KillAfter {
			// Injected crash: no goodbye, no flush of anything else — the
			// hardest failure the coordinator has to absorb.
			os.Exit(3)
		}
	}
}

// runOne executes one cell, converting errors and panics into a Failed
// record so a poisoned cell is reported, not fatal.
func runOne(run RunFunc, idx int, payload json.RawMessage) (rec CellRecord) {
	defer func() {
		if r := recover(); r != nil {
			rec = CellRecord{Index: idx, Failed: true,
				Summary: fmt.Sprintf("worker panic: %v", r)}
		}
	}()
	rec, err := run(idx, payload)
	if err != nil {
		return CellRecord{Index: idx, Failed: true, Summary: err.Error()}
	}
	rec.Index = idx
	return rec
}
