// Package stats provides the small statistics toolkit the evaluation needs:
// sample histograms with percentiles (request latency), mean/normalization
// helpers, and plain-text table rendering for the experiment reports.
package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Histogram collects float64 samples and answers quantile queries. It keeps
// all samples (the evaluation's request counts are modest). All methods are
// safe for concurrent use: quantile queries sort a cached copy of the
// samples under a mutex instead of reordering them in place, so concurrent
// readers (e.g. two experiment cells rendering the same result) never race.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  []float64 // cached ascending copy of samples; nil when stale
}

// Add records a sample.
func (h *Histogram) Add(v float64) {
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.sorted = nil
	h.mu.Unlock()
}

// N returns the sample count.
func (h *Histogram) N() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var s float64
	for _, v := range h.samples {
		s += v
	}
	return s / float64(len(h.samples))
}

// Percentile returns the p-th percentile (p in [0,100]) using the
// nearest-rank method; 0 when empty.
func (h *Histogram) Percentile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	if h.sorted == nil {
		h.sorted = append(make([]float64, 0, len(h.samples)), h.samples...)
		sort.Float64s(h.sorted)
	}
	if p <= 0 {
		return h.sorted[0]
	}
	if p >= 100 {
		return h.sorted[len(h.sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(h.sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return h.sorted[rank]
}

// Each calls fn with every recorded sample in insertion order. The mutex
// is held across the iteration, so fn must not call back into h.
func (h *Histogram) Each(fn func(float64)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, v := range h.samples {
		fn(v)
	}
}

// Median is Percentile(50).
func (h *Histogram) Median() float64 { return h.Percentile(50) }

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() float64 { return h.Percentile(100) }

// Table renders aligned plain-text tables for experiment output.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// RenderCSV writes the table as CSV (for external plotting). The title is
// emitted as a comment line.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if t.Title != "" {
		fmt.Fprintf(w, "# %s\n", t.Title)
	}
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	if err := cw.WriteAll(t.rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Ratio returns a/b, or 0 when b is 0 — for normalized-to-vanilla columns.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Improvement returns the relative improvement of optimized over baseline
// for a lower-is-better metric, e.g. 0.30 = 30% faster.
func Improvement(baseline, optimized float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (baseline - optimized) / baseline
}
