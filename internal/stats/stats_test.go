package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Percentile(50) != 0 || h.N() != 0 {
		t.Error("empty histogram must return zeros")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		h.Add(v)
	}
	if h.N() != 5 {
		t.Errorf("N = %d, want 5", h.N())
	}
	if h.Mean() != 3 {
		t.Errorf("Mean = %v, want 3", h.Mean())
	}
	if h.Median() != 3 {
		t.Errorf("Median = %v, want 3", h.Median())
	}
	if h.Max() != 5 {
		t.Errorf("Max = %v, want 5", h.Max())
	}
	if h.Percentile(0) != 1 {
		t.Errorf("P0 = %v, want 1", h.Percentile(0))
	}
	if h.Percentile(100) != 5 {
		t.Errorf("P100 = %v, want 5", h.Percentile(100))
	}
}

func TestHistogramAddAfterQuery(t *testing.T) {
	var h Histogram
	h.Add(10)
	_ = h.Median()
	h.Add(1)
	if h.Median() != 1 {
		t.Errorf("Median after re-add = %v, want 1 (nearest-rank of 2 samples)", h.Median())
	}
}

func TestPercentileNearestRank(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if got := h.Percentile(99); got != 99 {
		t.Errorf("P99 = %v, want 99", got)
	}
	if got := h.Percentile(50); got != 50 {
		t.Errorf("P50 = %v, want 50", got)
	}
	if got := h.Percentile(1); got != 1 {
		t.Errorf("P1 = %v, want 1", got)
	}
}

func TestPercentileMonotonic(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			h.Add(rng.NormFloat64() * 100)
		}
		last := math.Inf(-1)
		for p := 0.0; p <= 100; p += 2.5 {
			v := h.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPercentileMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var h Histogram
	var vals []float64
	for i := 0; i < 333; i++ {
		v := rng.Float64() * 1000
		h.Add(v)
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	for _, p := range []float64{10, 25, 50, 75, 90, 95, 99, 99.9} {
		rank := int(math.Ceil(p/100*float64(len(vals)))) - 1
		if got := h.Percentile(p); got != vals[rank] {
			t.Errorf("P%v = %v, want %v", p, got, vals[rank])
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Demo", "name", "value", "ratio")
	tab.AddRow("alpha", 42, 0.12345)
	tab.AddRow("beta-long-name", 7, 1.5)
	out := tab.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "0.123") {
		t.Error("float not formatted to 3 decimals")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns aligned: each data line at least as wide as the header line.
	if len(lines[3]) < len("beta-long-name") {
		t.Error("column alignment broken")
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tab := NewTable("", "a")
	tab.AddRow(1)
	if strings.Contains(tab.String(), "==") {
		t.Error("untitled table rendered a title line")
	}
}

func TestRatioAndImprovement(t *testing.T) {
	if Ratio(3, 4) != 0.75 {
		t.Error("Ratio wrong")
	}
	if Ratio(3, 0) != 0 {
		t.Error("Ratio by zero must be 0")
	}
	if got := Improvement(100, 60); got != 0.4 {
		t.Errorf("Improvement(100,60) = %v, want 0.4", got)
	}
	if Improvement(0, 10) != 0 {
		t.Error("Improvement with zero baseline must be 0")
	}
}

func TestRenderCSV(t *testing.T) {
	tab := NewTable("Demo", "name", "value")
	tab.AddRow("a,b", 1) // comma must be quoted
	tab.AddRow("c", 2.5)
	var b strings.Builder
	if err := tab.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "# Demo\n") {
		t.Errorf("missing title comment:\n%s", out)
	}
	if !strings.Contains(out, "name,value") {
		t.Error("missing header row")
	}
	if !strings.Contains(out, `"a,b",1`) {
		t.Errorf("comma cell not quoted:\n%s", out)
	}
}

// TestHistogramConcurrentReads is the -race regression test for the
// in-place sort Percentile used to perform: concurrent quantile queries on
// a shared Histogram must not race with each other or with Mean.
func TestHistogramConcurrentReads(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 2000; i++ {
		h.Add(float64((i * 7919) % 997))
	}
	want95 := h.Percentile(95)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if got := h.Percentile(95); got != want95 {
					t.Errorf("concurrent Percentile(95) = %v, want %v", got, want95)
					return
				}
				h.Median()
				h.Mean()
				h.Max()
				h.N()
			}
		}()
	}
	wg.Wait()
}

func TestHistogramAddInvalidatesSortedCache(t *testing.T) {
	h := &Histogram{}
	h.Add(5)
	h.Add(9)
	if got := h.Percentile(0); got != 5 {
		t.Fatalf("Percentile(0) = %v, want 5", got)
	}
	h.Add(1) // smaller than everything seen; cache must refresh
	if got := h.Percentile(0); got != 1 {
		t.Errorf("Percentile(0) after Add = %v, want 1", got)
	}
	if got := h.Percentile(100); got != 9 {
		t.Errorf("Percentile(100) = %v, want 9", got)
	}
}
