// Package repro_test holds the benchmark harness: one testing.B benchmark
// per table and figure of the paper's evaluation, plus the two ablations.
// Each benchmark regenerates its artifact through the experiment runner
// (internal/experiments) and reports domain metrics (simulated GC time,
// pauses, steal failure rates) alongside the usual ns/op.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The benchmarks use a reduced workload scale so the whole suite finishes
// in minutes; `go run ./cmd/experiments -scale 1` regenerates the artifacts
// at the full evaluation configuration (see EXPERIMENTS.md).
package repro_test

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/jvm"
	"repro/internal/runner"
	"repro/internal/workload"
)

// benchScale divides workload sizes for the benchmark harness.
const benchScale = 10

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var tables int
	for i := 0; i < b.N; i++ {
		res := e.Run(experiments.Options{Seed: 42 + int64(i), Scale: benchScale})
		tables = len(res.Tables)
	}
	b.ReportMetric(float64(tables), "tables")
}

// --- analysis artifacts (§3) ------------------------------------------------

// BenchmarkFig3a regenerates Fig. 3(a): DaCapo time breakdown vs mutators.
func BenchmarkFig3a(b *testing.B) { benchExperiment(b, "fig3a") }

// BenchmarkFig3b regenerates Fig. 3(b): kmeans small/large vs mutators.
func BenchmarkFig3b(b *testing.B) { benchExperiment(b, "fig3b") }

// BenchmarkFig3c regenerates Fig. 3(c): GC scalability vs GC threads.
func BenchmarkFig3c(b *testing.B) { benchExperiment(b, "fig3c") }

// BenchmarkFig3d regenerates Fig. 3(d): Cassandra latency vs clients.
func BenchmarkFig3d(b *testing.B) { benchExperiment(b, "fig3d") }

// BenchmarkFig4 regenerates Fig. 4: vanilla task/thread imbalance.
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig6 regenerates Fig. 6: minor GC time decomposition.
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkTable1 regenerates Table 1: steal attempts and failures.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "tab1") }

// --- evaluation artifacts (§5) ----------------------------------------------

// BenchmarkFig8 regenerates Fig. 8: optimized task/thread balance.
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Fig. 9: default vs optimized stealing.
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Fig. 10: overall and GC improvement.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Fig. 11: NUMA baselines comparison.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12 regenerates Fig. 12: overall and GC scalability.
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13 regenerates Fig. 13: Spark and Cassandra results.
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14 regenerates Fig. 14: heap-size sweeps.
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkFig15 regenerates Fig. 15: multi-application environments.
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }

// BenchmarkFig16 regenerates Fig. 16: the effect of SMT.
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16") }

// BenchmarkAblationMutex regenerates the §4.1 rejected-mutex-fixes ablation.
func BenchmarkAblationMutex(b *testing.B) { benchExperiment(b, "abl1") }

// BenchmarkAblationSmartSteal regenerates the §6.1 stealing-policy ablation.
func BenchmarkAblationSmartSteal(b *testing.B) { benchExperiment(b, "abl2") }

// --- headline micro-comparisons ----------------------------------------------

// benchRun measures a single JVM configuration end to end and reports the
// simulated GC metrics.
func benchRun(b *testing.B, cfg jvm.Config) {
	b.Helper()
	var gcMS, pauses float64
	var minor int
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		r, err := jvm.Run(jvm.RunSpec{Config: cfg, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		gcMS = r.GCTime.Millis()
		minor = r.MinorGCs
		if r.MinorGCs > 0 {
			pauses = r.MinorGCTime.Millis() / float64(r.MinorGCs)
		}
	}
	b.ReportMetric(gcMS, "simGC-ms")
	b.ReportMetric(pauses, "simPause-ms")
	b.ReportMetric(float64(minor), "minorGCs")
}

func benchProfile() workload.Profile {
	p := workload.Lusearch()
	p.TotalItems /= benchScale
	return p
}

// BenchmarkVanillaJVM runs lusearch on the vanilla JVM (the paper's
// baseline: stacked GC threads, unfair monitor, best-of-2 stealing).
func BenchmarkVanillaJVM(b *testing.B) {
	benchRun(b, jvm.Config{Profile: benchProfile(), Mutators: 16})
}

// BenchmarkOptimizedJVM runs lusearch with both of the paper's
// optimizations (dynamic affinity + semi-random stealing).
func BenchmarkOptimizedJVM(b *testing.B) {
	benchRun(b, jvm.Config{Profile: benchProfile(), Mutators: 16}.WithOptimizations())
}

// BenchmarkAblationNUMA regenerates the NUMA memory-locality ablation
// (an extension beyond the paper; see EXPERIMENTS.md).
func BenchmarkAblationNUMA(b *testing.B) { benchExperiment(b, "abl3") }

// --- parallel experiment runner -----------------------------------------------

// benchRunnerJobs regenerates Fig. 10 (60 simulation cells) at -scale 4
// with the given worker-pool bound; comparing the Serial and Parallel
// variants shows the runner's wall-clock speedup. On a machine with >= 4
// cores the parallel variant is expected to finish >= 2x faster; output is
// byte-identical either way (TestParallelRenderIdentical asserts this).
func benchRunnerJobs(b *testing.B, jobs int) {
	b.Helper()
	e, err := experiments.ByID("fig10")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		e.Run(experiments.Options{Seed: 42, Scale: 4, Jobs: jobs})
	}
	b.ReportMetric(float64(runner.New(jobs).Workers()), "jobs")
}

// BenchmarkExperimentRunnerSerial runs the Fig. 10 cells one at a time.
func BenchmarkExperimentRunnerSerial(b *testing.B) { benchRunnerJobs(b, 1) }

// BenchmarkExperimentRunnerParallel fans the Fig. 10 cells out across
// GOMAXPROCS workers.
func BenchmarkExperimentRunnerParallel(b *testing.B) { benchRunnerJobs(b, 0) }

// BenchmarkFig5 regenerates the §3.2 lock-acquisition trace.
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }
