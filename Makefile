# Developer / CI entry points. `make check` is the CI gate: it checks
# formatting, vets the tree, and runs every test under the race detector,
# covering the parallel experiment runner and the concurrency-sensitive
# stats/taskq paths.

GO ?= go

.PHONY: build test race vet fmt-check bench check check-invariants results \
	bench-smoke bench-guard bench-baseline bench-benchstat bench-compare \
	trace-smoke bench-json benchjson-smoke serve-smoke postmortem-smoke \
	fleet-smoke profile-fig10

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fail when any file is not gofmt-clean (prints the offending files).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Race-detector pass; the heavy full-scale determinism test auto-skips
# under -race (its quick variant still runs).
race:
	$(GO) test -race ./...

check: fmt-check vet race check-invariants bench-smoke bench-guard benchjson-smoke serve-smoke postmortem-smoke fleet-smoke

# Correctness harness: race-test the checker package itself, then run a
# 32-cell smoke slice of the seed-sweep property harness (a prefix of the
# 256-cell sweep, so any failure reproduces with `simcheck -cells <i+1>`).
check-invariants:
	$(GO) vet ./internal/check/ ./cmd/simcheck/
	$(GO) test -race ./internal/check/
	$(GO) run ./cmd/simcheck -cells 32

bench:
	$(GO) test -bench=. -benchmem

# One iteration of each simkit kernel micro-benchmark under the race
# detector: a fast smoke test that the schedule/cancel/coroutine hot paths
# still run clean, without waiting for a full benchmark pass.
bench-smoke:
	$(GO) test -race -run XXX -benchtime=1x -benchmem \
		-bench 'BenchmarkSimkitSchedule$$|BenchmarkSimkitCancel$$|BenchmarkCoroSwitch$$' \
		./internal/simkit/

# Zero-allocation guard: the kernel, heap, postmortem, steal-loop and
# whole-scavenge micro-benchmarks must report 0 allocs/op. 1000 iterations
# amortize one-time setup; any steady-state allocation on these hot paths
# fails the build before it can show up as a Fig10 regression.
bench-guard:
	@out=$$(mktemp); \
	{ $(GO) test -run XXX -benchtime=1000x -benchmem \
		-bench 'BenchmarkSimkitSchedule$$|BenchmarkSimkitCancel$$|BenchmarkCoroSwitch$$' \
		./internal/simkit/ && \
	  $(GO) test -run XXX -benchtime=1000x -benchmem \
		-bench 'BenchmarkHeapAlloc$$|BenchmarkMinorGCTrace$$' \
		./internal/heap/ && \
	  $(GO) test -run XXX -benchtime=1000x -benchmem \
		-bench 'BenchmarkPostmortemAttribution$$|BenchmarkPostmortemDisabled$$' \
		./internal/postmortem/ && \
	  $(GO) test -run XXX -benchtime=1000x -benchmem \
		-bench 'BenchmarkStealLoop$$' \
		./internal/taskq/ && \
	  $(GO) test -run XXX -benchtime=1000x -benchmem \
		-bench 'BenchmarkMinorGC$$' \
		./internal/pscavenge/ ; } > $$out || { cat $$out; rm -f $$out; exit 1; }; \
	cat $$out; \
	awk '$$NF == "allocs/op" && $$(NF-1)+0 > 0 \
		{bad=1; print "ALLOC REGRESSION:", $$0} END {exit bad}' $$out; \
	rc=$$?; rm -f $$out; exit $$rc

# Machine-readable benchmark snapshot: run the tier-1 benchmark subset
# (simkit kernel micros at full benchtime plus the Fig10 / vanilla /
# optimized macros at one iteration each) and convert the output to
# BENCH_<yyyymmdd>.json via cmd/benchjson. Commit the file to extend the
# perf trajectory; the format is documented in EXPERIMENTS.md. An existing
# same-day snapshot is never clobbered — rerun with
# `make bench-json BENCHJSON_FLAGS=-force` to replace it deliberately.
BENCH_JSON_OUT ?= BENCH_$(shell date +%Y%m%d).json
BENCHJSON_FLAGS ?=
bench-json:
	{ $(GO) test -run XXX -benchmem \
		-bench 'BenchmarkSimkitSchedule$$|BenchmarkSimkitScheduleDeep$$|BenchmarkSimkitCancel$$|BenchmarkCoroSwitch$$' \
		./internal/simkit/ ; \
	  $(GO) test -run XXX -benchmem \
		-bench 'BenchmarkHeapAlloc$$|BenchmarkMinorGCTrace$$' \
		./internal/heap/ ; \
	  $(GO) test -run XXX -benchmem \
		-bench 'BenchmarkStealLoop$$' \
		./internal/taskq/ ; \
	  $(GO) test -run XXX -benchmem \
		-bench 'BenchmarkMinorGC$$' \
		./internal/pscavenge/ ; \
	  $(GO) test -run XXX -benchtime 1x -benchmem \
		-bench 'BenchmarkFig10$$|BenchmarkVanillaJVM$$|BenchmarkOptimizedJVM$$' . ; \
	  $(GO) test -run XXX -benchtime 1x -benchmem \
		-bench 'BenchmarkFleetSweep$$' ./internal/fleet/ ; } \
	| $(GO) run ./cmd/benchjson $(BENCHJSON_FLAGS) -o $(BENCH_JSON_OUT)
	@echo "wrote $(BENCH_JSON_OUT)"

# Compare two bench-json snapshots: per-benchmark ns/op, B/op and
# allocs/op deltas, non-zero exit when any ns/op regression exceeds
# BENCH_REGRESS percent. Defaults to the two most recent committed
# snapshots; override with `make bench-compare BENCH_OLD=... BENCH_NEW=...`.
BENCH_REGRESS ?= 10
BENCH_OLD ?= $(shell ls BENCH_*.json 2>/dev/null | sort | tail -2 | head -1)
BENCH_NEW ?= $(shell ls BENCH_*.json 2>/dev/null | sort | tail -1)
bench-compare:
	@if [ -z "$(BENCH_OLD)" ] || [ "$(BENCH_OLD)" = "$(BENCH_NEW)" ]; then \
		echo "bench-compare: need two BENCH_*.json snapshots (have: $(BENCH_NEW))"; \
		exit 2; fi
	$(GO) run ./cmd/benchjson compare -regress $(BENCH_REGRESS) $(BENCH_OLD) $(BENCH_NEW)

# Fast CI gate for the benchmark tooling: the parser's unit tests, then a
# one-iteration coro-switch micro piped through the real tool.
benchjson-smoke:
	$(GO) test ./cmd/benchjson/
	$(GO) test -run XXX -benchtime=1x -benchmem -bench 'BenchmarkCoroSwitch$$' \
		./internal/simkit/ | $(GO) run ./cmd/benchjson > /dev/null

# Profile the Fig10 macro benchmark: run it a few iterations with CPU and
# heap profiling into profiles/ (gitignored) and print the top-10 flat
# entries of each, so a perf investigation starts from data rather than
# guesswork. Open interactively with:
#   go tool pprof profiles/fig10.test profiles/fig10.cpu.pprof
PROFILE_DIR ?= profiles
PROFILE_BENCHTIME ?= 3x
profile-fig10:
	mkdir -p $(PROFILE_DIR)
	$(GO) test -run XXX -benchtime $(PROFILE_BENCHTIME) -benchmem \
		-bench 'BenchmarkFig10$$' \
		-cpuprofile $(PROFILE_DIR)/fig10.cpu.pprof \
		-memprofile $(PROFILE_DIR)/fig10.mem.pprof \
		-o $(PROFILE_DIR)/fig10.test .
	@echo "--- top 10 by CPU ---"
	$(GO) tool pprof -top -nodecount=10 \
		$(PROFILE_DIR)/fig10.test $(PROFILE_DIR)/fig10.cpu.pprof
	@echo "--- top 10 by allocated space ---"
	$(GO) tool pprof -top -nodecount=10 -sample_index=alloc_space \
		$(PROFILE_DIR)/fig10.test $(PROFILE_DIR)/fig10.mem.pprof

# benchstat workflow: record kernel + macro benchmarks before a change,
# then compare after. benchstat is optional; without it, diff the files.
# (For comparing committed bench-json snapshots, see bench-compare above.)
#   make bench-baseline        # writes bench-baseline.txt
#   ... hack ...
#   make bench-benchstat       # writes bench-new.txt, runs benchstat
BENCH_PKGS = ./internal/simkit/ .
BENCH_COUNT ?= 5

bench-baseline:
	$(GO) test -run XXX -bench . -benchmem -count $(BENCH_COUNT) $(BENCH_PKGS) \
		| tee bench-baseline.txt

bench-benchstat:
	$(GO) test -run XXX -bench . -benchmem -count $(BENCH_COUNT) $(BENCH_PKGS) \
		| tee bench-new.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat bench-baseline.txt bench-new.txt; \
	else \
		echo "benchstat not installed; compare bench-baseline.txt and bench-new.txt manually"; \
	fi

# gcsimd cache-contract smoke test, race-enabled: boots an in-process
# server, POSTs the same scenario twice (must be miss then hit with
# byte-identical bodies and matching /metrics counters), replays a sweep
# from cache, and load-generates both paths — the cached path must beat
# the cold path by >= 10x RPS.
serve-smoke:
	$(GO) run -race ./cmd/gcsimd -selftest -n 100

# Observability smoke test: a small traced gcsim run must export a
# Perfetto file containing events from all five instrumented layers
# (tracecheck exits non-zero otherwise), and the full scale-4 evaluation
# with tracing enabled must still match the committed golden fixture.
TRACE_SMOKE_OUT ?= /tmp/gcsim-trace-smoke.json
trace-smoke:
	$(GO) run ./cmd/gcsim -bench lusearch -mutators 8 -gcthreads 4 \
		-evtrace $(TRACE_SMOKE_OUT) -lockprofile -metrics
	$(GO) run ./cmd/tracecheck $(TRACE_SMOKE_OUT)
	$(GO) test -run 'TestGoldenScale4TracingEnabled' ./internal/experiments/

# Pause-postmortem smoke test: run a reduced checked cell with blame
# attribution, write the postmortem JSON, verify its internal invariant
# (buckets sum to each pause's wall time) and parseability with gcreport,
# and run the attribution unit suite plus the scale-4 golden check — the
# proof that attaching the analyzer never changes simulation output.
# The second cell is plan-heavy: 16 GC threads, so nearly every worker
# transition inside the pause runs through the plan-driven state machine
# (contended lock entries, queue-empty waits, termination offers) rather
# than coroutine resumes — the attribution must still account for every
# nanosecond of each pause.
POSTMORTEM_SMOKE_OUT ?= /tmp/gcsim-postmortem-smoke.json
POSTMORTEM_SMOKE_OUT2 ?= /tmp/gcsim-postmortem-smoke-plan.json
postmortem-smoke:
	$(GO) run ./cmd/gcsim -bench lusearch -mutators 8 -gcthreads 4 \
		-check -postmortem -postmortem-json $(POSTMORTEM_SMOKE_OUT)
	$(GO) run ./cmd/gcreport -verify $(POSTMORTEM_SMOKE_OUT)
	$(GO) run ./cmd/gcsim -bench lusearch -mutators 16 -gcthreads 16 \
		-check -postmortem -postmortem-json $(POSTMORTEM_SMOKE_OUT2)
	$(GO) run ./cmd/gcreport -verify $(POSTMORTEM_SMOKE_OUT2)
	$(GO) test ./internal/postmortem/
	$(GO) test -run 'TestGoldenScale4PostmortemEnabled' ./internal/experiments/

# Fleet determinism smoke test, race-enabled: a 1k-cell multi-process
# sweep with a mid-shard worker kill injected must produce a clean report
# (exit 0 requires zero failed cells, violations, and drops) that is
# byte-identical to an unperturbed single-worker run of the same cell
# space — the gcsim-sweep/v1 determinism oracle as a CI gate. The fleet
# unit suite (protocol fuzz corpus, recovery matrix) runs under -race via
# `make race`; this target exercises the real sweepd binary end to end.
FLEET_SMOKE_DIR ?= /tmp/gcsim-fleet-smoke
fleet-smoke:
	rm -rf $(FLEET_SMOKE_DIR) && mkdir -p $(FLEET_SMOKE_DIR)
	$(GO) build -race -o $(FLEET_SMOKE_DIR)/sweepd ./cmd/sweepd
	$(FLEET_SMOKE_DIR)/sweepd -cells 1000 -workers 1 -shards 1 -no-steal \
		-items 150 -skip-bare -quiet -out $(FLEET_SMOKE_DIR)/baseline.json
	$(FLEET_SMOKE_DIR)/sweepd -cells 1000 -workers 2 -kill-worker-after 5 \
		-items 150 -skip-bare -out $(FLEET_SMOKE_DIR)/killed.json
	cmp $(FLEET_SMOKE_DIR)/baseline.json $(FLEET_SMOKE_DIR)/killed.json
	@rm -rf $(FLEET_SMOKE_DIR); echo "fleet-smoke: reports byte-identical under injected worker kill"

# Regenerate the committed full evaluation output (seed 42, all cores);
# EXPERIMENTS.md explains how to read it.
results:
	$(GO) run ./cmd/experiments -run all -scale 1 \
		-o internal/experiments/testdata/results_full.txt
