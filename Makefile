# Developer / CI entry points. `make check` is the CI gate: it vets the
# tree and runs every test under the race detector, covering the parallel
# experiment runner and the concurrency-sensitive stats/taskq paths.

GO ?= go

.PHONY: build test race vet bench check results

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass; the heavy full-scale determinism test auto-skips
# under -race (its quick variant still runs).
race:
	$(GO) test -race ./...

check: vet race

bench:
	$(GO) test -bench=. -benchmem

# Regenerate the full evaluation output (seed 42, all cores).
results:
	$(GO) run ./cmd/experiments -run all -scale 1 -o results_full.txt
