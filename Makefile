# Developer / CI entry points. `make check` is the CI gate: it checks
# formatting, vets the tree, and runs every test under the race detector,
# covering the parallel experiment runner and the concurrency-sensitive
# stats/taskq paths.

GO ?= go

.PHONY: build test race vet fmt-check bench check check-invariants results \
	bench-smoke bench-baseline bench-compare trace-smoke bench-json \
	benchjson-smoke serve-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fail when any file is not gofmt-clean (prints the offending files).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Race-detector pass; the heavy full-scale determinism test auto-skips
# under -race (its quick variant still runs).
race:
	$(GO) test -race ./...

check: fmt-check vet race check-invariants bench-smoke benchjson-smoke serve-smoke

# Correctness harness: race-test the checker package itself, then run a
# 32-cell smoke slice of the seed-sweep property harness (a prefix of the
# 256-cell sweep, so any failure reproduces with `simcheck -cells <i+1>`).
check-invariants:
	$(GO) vet ./internal/check/ ./cmd/simcheck/
	$(GO) test -race ./internal/check/
	$(GO) run ./cmd/simcheck -cells 32

bench:
	$(GO) test -bench=. -benchmem

# One iteration of each simkit kernel micro-benchmark under the race
# detector: a fast smoke test that the schedule/cancel/coroutine hot paths
# still run clean, without waiting for a full benchmark pass.
bench-smoke:
	$(GO) test -race -run XXX -benchtime=1x -benchmem \
		-bench 'BenchmarkSimkitSchedule$$|BenchmarkSimkitCancel$$|BenchmarkCoroSwitch$$' \
		./internal/simkit/

# Machine-readable benchmark snapshot: run the tier-1 benchmark subset
# (simkit kernel micros at full benchtime plus the Fig10 / vanilla /
# optimized macros at one iteration each) and convert the output to
# BENCH_<yyyymmdd>.json via cmd/benchjson. Commit the file to extend the
# perf trajectory; the format is documented in EXPERIMENTS.md. An existing
# same-day snapshot is never clobbered — rerun with
# `make bench-json BENCHJSON_FLAGS=-force` to replace it deliberately.
BENCH_JSON_OUT ?= BENCH_$(shell date +%Y%m%d).json
BENCHJSON_FLAGS ?=
bench-json:
	{ $(GO) test -run XXX -benchmem \
		-bench 'BenchmarkSimkitSchedule$$|BenchmarkSimkitScheduleDeep$$|BenchmarkSimkitCancel$$|BenchmarkCoroSwitch$$' \
		./internal/simkit/ ; \
	  $(GO) test -run XXX -benchtime 1x -benchmem \
		-bench 'BenchmarkFig10$$|BenchmarkVanillaJVM$$|BenchmarkOptimizedJVM$$' . ; } \
	| $(GO) run ./cmd/benchjson $(BENCHJSON_FLAGS) -o $(BENCH_JSON_OUT)
	@echo "wrote $(BENCH_JSON_OUT)"

# Fast CI gate for the benchmark tooling: the parser's unit tests, then a
# one-iteration coro-switch micro piped through the real tool.
benchjson-smoke:
	$(GO) test ./cmd/benchjson/
	$(GO) test -run XXX -benchtime=1x -benchmem -bench 'BenchmarkCoroSwitch$$' \
		./internal/simkit/ | $(GO) run ./cmd/benchjson > /dev/null

# benchstat workflow: record kernel + macro benchmarks before a change,
# then compare after. benchstat is optional; without it, diff the files.
#   make bench-baseline        # writes bench-baseline.txt
#   ... hack ...
#   make bench-compare         # writes bench-new.txt, runs benchstat
BENCH_PKGS = ./internal/simkit/ .
BENCH_COUNT ?= 5

bench-baseline:
	$(GO) test -run XXX -bench . -benchmem -count $(BENCH_COUNT) $(BENCH_PKGS) \
		| tee bench-baseline.txt

bench-compare:
	$(GO) test -run XXX -bench . -benchmem -count $(BENCH_COUNT) $(BENCH_PKGS) \
		| tee bench-new.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat bench-baseline.txt bench-new.txt; \
	else \
		echo "benchstat not installed; compare bench-baseline.txt and bench-new.txt manually"; \
	fi

# gcsimd cache-contract smoke test, race-enabled: boots an in-process
# server, POSTs the same scenario twice (must be miss then hit with
# byte-identical bodies and matching /metrics counters), replays a sweep
# from cache, and load-generates both paths — the cached path must beat
# the cold path by >= 10x RPS.
serve-smoke:
	$(GO) run -race ./cmd/gcsimd -selftest -n 100

# Observability smoke test: a small traced gcsim run must export a
# Perfetto file containing events from all five instrumented layers
# (tracecheck exits non-zero otherwise), and the full scale-4 evaluation
# with tracing enabled must still match the committed golden fixture.
TRACE_SMOKE_OUT ?= /tmp/gcsim-trace-smoke.json
trace-smoke:
	$(GO) run ./cmd/gcsim -bench lusearch -mutators 8 -gcthreads 4 \
		-evtrace $(TRACE_SMOKE_OUT) -lockprofile -metrics
	$(GO) run ./cmd/tracecheck $(TRACE_SMOKE_OUT)
	$(GO) test -run 'TestGoldenScale4TracingEnabled' ./internal/experiments/

# Regenerate the committed full evaluation output (seed 42, all cores);
# EXPERIMENTS.md explains how to read it.
results:
	$(GO) run ./cmd/experiments -run all -scale 1 \
		-o internal/experiments/testdata/results_full.txt
